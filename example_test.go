package anondyn_test

import (
	"fmt"

	"anondyn"
	"anondyn/internal/core"
)

// The headline result as four lines: the worst-case adversary for 40
// anonymous nodes, the optimal counter, and the exact bound.
func Example() {
	wc, err := anondyn.WorstCaseAdversary(40)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := anondyn.CountOnMultigraph(wc.Schedule, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Count, res.Rounds, anondyn.LowerBoundRounds(40))
	// Output: 40 5 5
}

// LowerBoundRounds is the exact form of Theorem 1: ⌊log₃(2n+1)⌋ + 1.
func ExampleLowerBoundRounds() {
	for _, n := range []int{1, 4, 13, 40, 121, 364} {
		fmt.Printf("n=%d: %d rounds\n", n, anondyn.LowerBoundRounds(n))
	}
	// Output:
	// n=1: 2 rounds
	// n=4: 3 rounds
	// n=13: 4 rounds
	// n=40: 5 rounds
	// n=121: 6 rounds
	// n=364: 7 rounds
}

// WorstCasePair builds two networks of different sizes whose leaders see
// exactly the same thing — Lemma 5 made concrete.
func ExampleWorstCasePair() {
	pair, err := anondyn.WorstCasePair(13)
	if err != nil {
		fmt.Println(err)
		return
	}
	va, _ := pair.M.LeaderView(pair.Rounds)
	vb, _ := pair.MPrime.LeaderView(pair.Rounds)
	fmt.Println(pair.M.W(), pair.MPrime.W(), va.Equal(vb))
	// Output: 13 14 true
}

// SolveCountInterval exposes the leader's residual uncertainty: the exact
// set of network sizes consistent with what it has seen.
func ExampleSolveCountInterval() {
	pair, err := anondyn.WorstCasePair(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	for r := 1; r <= pair.Rounds; r++ {
		view, _ := pair.M.LeaderView(r)
		iv, _ := anondyn.SolveCountInterval(view)
		fmt.Printf("after round %d: %s\n", r, iv)
	}
	// Output:
	// after round 1: [3,6]
	// after round 2: [4,5]
}

// The chain-composition bound of Corollary 1 in closed form.
func ExampleMaxIndistinguishableRounds() {
	n := 1000
	t := anondyn.MaxIndistinguishableRounds(n)
	fmt.Printf("the adversary hides one node among %d for %d rounds; threshold size %d\n",
		n, t, core.MinSizeForRounds(t))
	// Output: the adversary hides one node among 1000 for 6 rounds; threshold size 364
}
