// Benchmarks: one testing.B per reproduced artifact, matching the
// per-experiment index in DESIGN.md. Run all of them with
//
//	go test -bench=. -benchmem
//
// The absolute times are machine facts about this implementation; the
// experiment *outcomes* (who wins, where the crossovers fall) are asserted
// inside each benchmark body, so a benchmark run doubles as a verification
// pass of the reproduction.
package anondyn_test

import (
	"context"
	"fmt"
	"testing"

	"anondyn"
	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dissemination"
	"anondyn/internal/dynet"
	"anondyn/internal/experiments"
	"anondyn/internal/figures"
	"anondyn/internal/graph"
	"anondyn/internal/kernel"
	"anondyn/internal/runtime"
)

// BenchmarkFigure1Flood re-measures the Figure 1 caption: flooding on the
// reconstructed G(PD)_2 example takes 4 rounds from v0.
func BenchmarkFigure1Flood(b *testing.B) {
	f, err := figures.NewFigure1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft, err := dynet.FloodTime(f.Net, f.V0, 0, 50)
		if err != nil {
			b.Fatal(err)
		}
		if ft != 4 {
			b.Fatalf("flood time %d, want 4", ft)
		}
	}
}

// BenchmarkFigure2Transform measures the Lemma 1 transformation on the
// Figure 2 instance (build + structural check).
func BenchmarkFigure2Transform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := figures.NewFigure2()
		if err != nil {
			b.Fatal(err)
		}
		if f.Net.N() != 7 {
			b.Fatalf("N = %d", f.Net.N())
		}
	}
}

// BenchmarkFigure3Indist checks the round-0 indistinguishable pair.
func BenchmarkFigure3Indist(b *testing.B) {
	f, err := figures.NewFigure3()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va, err := f.M.LeaderView(1)
		if err != nil {
			b.Fatal(err)
		}
		vb, err := f.MPrime.LeaderView(1)
		if err != nil {
			b.Fatal(err)
		}
		if !va.Equal(vb) {
			b.Fatal("Figure 3 views differ")
		}
	}
}

// BenchmarkFigure4Indist checks the round-1 indistinguishable pair.
func BenchmarkFigure4Indist(b *testing.B) {
	f, err := figures.NewFigure4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va, err := f.M.LeaderView(2)
		if err != nil {
			b.Fatal(err)
		}
		vb, err := f.MPrime.LeaderView(2)
		if err != nil {
			b.Fatal(err)
		}
		if !va.Equal(vb) {
			b.Fatal("Figure 4 views differ")
		}
	}
}

// BenchmarkLemma2KernelDim measures exact-rank elimination of M_r and
// asserts dim ker = 1, per round index.
func BenchmarkLemma2KernelDim(b *testing.B) {
	for r := 0; r <= 3; r++ {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := kernel.Matrix(r, 2)
				if err != nil {
					b.Fatal(err)
				}
				if dim := len(m.KernelBasis()); dim != 1 {
					b.Fatalf("dim = %d", dim)
				}
			}
		})
	}
}

// BenchmarkLemma3KernelShape measures the closed-form kernel construction
// and its recursion check.
func BenchmarkLemma3KernelShape(b *testing.B) {
	for r := 1; r <= 8; r += 7 {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prev := kernel.ClosedFormKernel(r - 1)
				want := prev.Append(prev).Append(prev.Neg())
				if !kernel.ClosedFormKernel(r).Equal(want) {
					b.Fatal("recursion fails")
				}
			}
		})
	}
}

// BenchmarkLemma4Sums measures the kernel-sum identities.
func BenchmarkLemma4Sums(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for r := 0; r <= 8; r++ {
			k := kernel.ClosedFormKernel(r)
			if k.Sum().Int64() != 1 {
				b.Fatal("Σk != 1")
			}
			if k.SumNegative().Cmp(kernel.KernelSumNegative(r)) != 0 {
				b.Fatal("Σ⁻k mismatch")
			}
		}
	}
}

// BenchmarkTheorem1Sweep builds and verifies the adversarial pair across a
// size sweep.
func BenchmarkTheorem1Sweep(b *testing.B) {
	for _, n := range []int{4, 40, 364, 3280} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pair, err := anondyn.WorstCasePair(n)
				if err != nil {
					b.Fatal(err)
				}
				if err := pair.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem2Counter measures the leader-state counter against the
// worst-case adversary and asserts termination exactly at the bound.
func BenchmarkTheorem2Counter(b *testing.B) {
	for _, n := range []int{4, 40, 364} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			want := anondyn.LowerBoundRounds(n)
			for i := 0; i < b.N; i++ {
				res, err := core.WorstCaseCountRounds(n)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != want || res.Count != n {
					b.Fatalf("got (%d, %d), want (%d rounds, count %d)", res.Rounds, res.Count, want, n)
				}
			}
		})
	}
}

// BenchmarkCorollary1Chain measures chain-delayed counting.
func BenchmarkCorollary1Chain(b *testing.B) {
	for _, tc := range []struct{ n, delay int }{{13, 3}, {121, 8}} {
		tc := tc
		b.Run(fmt.Sprintf("n=%d/delay=%d", tc.n, tc.delay), func(b *testing.B) {
			want := core.ChainLowerBoundRounds(tc.n, tc.delay)
			for i := 0; i < b.N; i++ {
				res, err := core.ChainCountRounds(tc.n, tc.delay)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != want {
					b.Fatalf("rounds %d, want %d", res.Rounds, want)
				}
			}
		})
	}
}

// BenchmarkDiscussionOracle measures the degree-oracle O(1) counter across
// sizes; rounds must stay at 2.
func BenchmarkDiscussionOracle(b *testing.B) {
	for _, outer := range []int{9, 81, 729} {
		outer := outer
		b.Run(fmt.Sprintf("outer=%d", outer), func(b *testing.B) {
			net, v1, v2 := oracleNet(outer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count, rounds, err := counting.OracleCount(net, 0, v1, v2, runtime.RunSequential)
				if err != nil {
					b.Fatal(err)
				}
				if count != 3+outer || rounds != 2 {
					b.Fatalf("count %d rounds %d", count, rounds)
				}
			}
		})
	}
}

func oracleNet(outer int) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	const k = 2
	n := 1 + k + outer
	v1 := []graph.NodeID{1, 2}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		return g
	})
	return net, v1, v2
}

// BenchmarkGapFloodVsCount runs flooding and counting on the same
// worst-case network and asserts the gap's direction.
func BenchmarkGapFloodVsCount(b *testing.B) {
	for _, n := range []int{40, 364} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			wc, err := anondyn.WorstCaseAdversary(n)
			if err != nil {
				b.Fatal(err)
			}
			initial, err := dissemination.SingleSource(wc.Net.N(), int(wc.Layout.Leader), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl, err := dissemination.Run(wc.Net, initial, dissemination.Unlimited, 100, runtime.RunSequential)
				if err != nil {
					b.Fatal(err)
				}
				cnt, err := core.WorstCaseCountRounds(n)
				if err != nil {
					b.Fatal(err)
				}
				if cnt.Rounds <= fl.Rounds {
					b.Fatalf("no gap: count %d, flood %d", cnt.Rounds, fl.Rounds)
				}
			}
		})
	}
}

// BenchmarkAblationK3 measures the k=3 kernel growth check.
func BenchmarkAblationK3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m3, err := kernel.Matrix(0, 3)
		if err != nil {
			b.Fatal(err)
		}
		if dim := len(m3.KernelBasis()); dim != 4 {
			b.Fatalf("k=3 kernel dim %d, want 4", dim)
		}
	}
}

// BenchmarkAblationStar measures one-round star counting.
func BenchmarkAblationStar(b *testing.B) {
	for _, n := range []int{20, 500} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			star, err := graph.Star(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			net := dynet.NewStatic(star)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count, rounds, err := counting.StarCount(net, 0, runtime.RunSequential)
				if err != nil {
					b.Fatal(err)
				}
				if count != n || rounds != 1 {
					b.Fatalf("count %d rounds %d", count, rounds)
				}
			}
		})
	}
}

// BenchmarkEngines compares the sequential and concurrent engines on the
// same workload — an ablation of the execution substrate itself.
func BenchmarkEngines(b *testing.B) {
	for name, run := range map[string]counting.Runner{
		"sequential": runtime.RunSequential,
		"concurrent": runtime.RunConcurrent,
	} {
		run := run
		b.Run(name, func(b *testing.B) {
			net, v1, v2 := oracleNet(81)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := counting.OracleCount(net, 0, v1, v2, run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentSuite runs the complete reproduction harness once per
// iteration — the end-to-end cost of re-verifying the whole paper.
func BenchmarkExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAll(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if !experiments.AllMatch(rows) {
			b.Fatal("mismatch")
		}
	}
}
