// Adaptive: the omniscient adversary at work.
//
// The paper's adversary "has access to nodes' local variables" and picks
// each round's topology to maximally hinder the algorithm. This example
// runs a flood against two adversaries on the same node set:
//
//   - a fair random-churn adversary — the flood finishes in a few rounds;
//   - the adaptive delaying adversary, which inspects each round's
//     broadcasts, keeps the informed and uninformed nodes in separate
//     cliques, and admits exactly one crossing edge: the flood crawls, one
//     node per round, even though every snapshot has diameter <= 3.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// floodProc is a minimal flooding process broadcasting token possession.
type floodProc struct {
	has bool
}

func (f *floodProc) Send(int) runtime.Message { return f.has }

func (f *floodProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if b, ok := m.(bool); ok && b {
			f.has = true
			return
		}
	}
}

// delayer builds the adaptive worst-case topology from the round's
// broadcasts.
func delayer(n int) func(r int, outbox []runtime.Message) *graph.Graph {
	return func(_ int, outbox []runtime.Message) *graph.Graph {
		var informed, uninformed []graph.NodeID
		for v := 0; v < n; v++ {
			if b, ok := outbox[v].(bool); ok && b {
				informed = append(informed, graph.NodeID(v))
			} else {
				uninformed = append(uninformed, graph.NodeID(v))
			}
		}
		g := graph.New(n)
		clique := func(nodes []graph.NodeID) {
			for i := range nodes {
				for j := i + 1; j < len(nodes); j++ {
					_ = g.AddEdge(nodes[i], nodes[j])
				}
			}
		}
		clique(informed)
		clique(uninformed)
		if len(informed) > 0 && len(uninformed) > 0 {
			_ = g.AddEdge(informed[0], uninformed[0])
		}
		return g
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 16
	measure := func(adaptive func(int, []runtime.Message) *graph.Graph, net dynet.Dynamic) (int, error) {
		procs := make([]runtime.Process, n)
		for i := range procs {
			procs[i] = &floodProc{has: i == 0}
		}
		all := func(int) bool {
			for _, p := range procs {
				if !p.(*floodProc).has {
					return false
				}
			}
			return true
		}
		cfg := &runtime.Config{
			Net:       net,
			Adaptive:  adaptive,
			Procs:     procs,
			MaxRounds: 10 * n,
			Stop:      all,
		}
		return runtime.RunConcurrent(cfg)
	}

	churn, err := dynet.NewRandomChurn(n, 0.3, 7)
	if err != nil {
		return err
	}
	fair, err := measure(nil, churn)
	if err != nil {
		return err
	}
	worst, err := measure(delayer(n), dynet.NewStatic(graph.Complete(n)))
	if err != nil {
		return err
	}
	fmt.Printf("flood over %d nodes:\n", n)
	fmt.Printf("  fair random churn      : %2d rounds\n", fair)
	fmt.Printf("  omniscient adversary   : %2d rounds (= n-1, one victim per round)\n", worst)
	fmt.Println("\nevery adversarial snapshot is connected with diameter <= 3; the")
	fmt.Println("slowness comes entirely from the adversary reading the nodes' states.")
	return nil
}
