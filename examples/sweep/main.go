// Sweep: running an experiment campaign programmatically.
//
// A campaign is a declarative spec — protocol × size grid × trials ×
// campaign seed — that the engine expands into independent jobs, executes
// on a work-stealing worker pool, and streams to an append-only JSONL
// journal as jobs complete. This example shows the full lifecycle:
//
//  1. run a campaign with a journal and watch results stream in;
//  2. kill it mid-flight (a job budget stands in for SIGKILL) and observe
//     that completed jobs are already durable;
//  3. resume: the journal's jobs are not re-executed, the rest run, and
//     the aggregated table is byte-identical to an uninterrupted run —
//     because every job's RNG seed is a pure function of (campaign seed,
//     size, trial), not of scheduling, worker count, or resume boundaries;
//  4. sweep a custom protocol by registering a ProtoFunc.
//
// Run with:
//
//	go run ./examples/sweep
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"anondyn/internal/core"
	"anondyn/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "sweep-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "campaign.jsonl")
	ctx := context.Background()

	spec := sweep.Spec{
		Name:    "example",
		Proto:   sweep.ProtoMDBLCount, // Monte-Carlo counting trials
		Sizes:   []int{13, 40, 121},
		Trials:  8,
		Horizon: 10,
		Seed:    2026,
	}

	// 1+2. Start the campaign, but budget only 10 of its 24 jobs — the
	// same shape as a SIGKILL partway through a long grid.
	fmt.Println("-- interrupted campaign --")
	rep, err := sweep.RunCampaign(ctx, spec, sweep.CampaignOptions{
		Workers:     4,
		JournalPath: journal,
		MaxJobs:     10,
	})
	if !errors.Is(err, sweep.ErrJobLimit) {
		return fmt.Errorf("expected the job budget to stop the campaign, got %v", err)
	}
	fmt.Printf("stopped early: %v\n", err)
	durable, err := sweep.ReadJournal(journal)
	if err != nil {
		return err
	}
	fmt.Printf("journal already holds %d completed jobs (executed %d)\n\n", len(durable), rep.Executed)

	// 3. Resume: journaled jobs are skipped, the rest execute, and the
	// aggregation is what one uninterrupted run would have printed.
	fmt.Println("-- resumed campaign --")
	rep, err = sweep.RunCampaign(ctx, spec, sweep.CampaignOptions{
		Workers:     4,
		JournalPath: journal,
		Resume:      true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("resumed %d jobs from the journal, executed the remaining %d\n",
		rep.Resumed, rep.Executed)
	fmt.Print(sweep.FormatTable(rep.Stats))

	// 4. A custom protocol: measure the adversarial worst case per size
	// by registering a ProtoFunc and naming it in the spec. (The built-in
	// sweep.ProtoMDBLWorst does this too; the point is the mechanism.)
	sweep.Register("bound-gap", func(ctx context.Context, job sweep.Job) (sweep.Result, error) {
		res, err := core.WorstCaseCountRounds(job.N)
		if err != nil {
			return sweep.Result{}, err
		}
		gap := res.Rounds - core.LowerBoundRounds(job.N)
		return sweep.Result{Rounds: gap, Count: res.Count}, nil
	})
	fmt.Println("\n-- custom protocol: worst case minus bound (always 0) --")
	rep, err = sweep.RunCampaign(ctx, sweep.Spec{
		Name: "bound-gap", Proto: "bound-gap",
		Sizes: []int{13, 40, 121}, Trials: 1, Horizon: 1, Seed: 1,
	}, sweep.CampaignOptions{Workers: 3})
	if err != nil {
		return err
	}
	fmt.Print(sweep.FormatTable(rep.Stats))
	return nil
}
