// Degreeoracle: the knowledge cliff of the paper's Discussion section.
//
// The same counting problem, the same G(PD)_2 topology class, two models:
//
//   - anonymous broadcast only: the worst-case adversary forces
//     ⌊log₃(2n+1)⌋ + 1 rounds (Theorem 2);
//   - plus a local degree oracle (each node learns |N(v,r)| before
//     sending): an exact count in 2 rounds, at every size.
//
// This example sweeps network sizes and prints both columns side by side.
//
// Run with:
//
//	go run ./examples/degreeoracle
package main

import (
	"fmt"
	"log"

	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// restrictedPD2 builds a restricted G(PD)_2 network: leader 0, two relays,
// outer nodes attached to rotating relay subsets and never to each other.
func restrictedPD2(outer int) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	const k = 2
	n := 1 + k + outer
	v1 := []graph.NodeID{1, 2}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		return g
	})
	return net, v1, v2
}

func run() error {
	fmt.Printf("%8s  %28s  %24s\n", "|W|", "anonymous (worst case) rounds", "with degree oracle")
	for _, n := range []int{3, 9, 27, 81, 243, 729} {
		anon, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return err
		}
		net, v1, v2 := restrictedPD2(n)
		count, rounds, err := counting.OracleCount(net, 0, v1, v2, runtime.RunSequential)
		if err != nil {
			return err
		}
		if count != 1+2+n {
			return fmt.Errorf("oracle miscounted: %d for |V|=%d", count, 1+2+n)
		}
		fmt.Printf("%8d  %28d  %24d\n", n, anon.Rounds, rounds)
	}
	fmt.Println("\nanonymous rounds grow as ⌊log₃(2n+1)⌋+1; the oracle column is flat —")
	fmt.Println("one bit of pre-send local knowledge removes the entire cost of anonymity.")
	return nil
}
