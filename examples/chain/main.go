// Chain: Corollary 1 as a running distributed system.
//
// The paper's D + Ω(log |V|) bound composes a static chain with the
// worst-case 𝒢(PD)₂ core. This example builds that exact network — leader,
// chain, two labeled relays, n anonymous nodes — and runs the
// full-information counting protocol on the goroutine-per-node engine:
// relays observe, chain nodes forward, and the leader re-solves its linear
// system every round until exactly one network size remains.
//
// Run with:
//
//	go run ./examples/chain
package main

import (
	"fmt"
	"log"

	"anondyn/internal/chainnet"
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("%6s %7s %7s %14s %16s\n", "|W|", "chain", "delay", "measured", "delay+bound")
	for _, tc := range []struct{ n, chainLen int }{
		{4, 0}, {4, 4}, {13, 2}, {40, 6}, {121, 10},
	} {
		nw, err := chainnet.Build(tc.n, tc.chainLen)
		if err != nil {
			return err
		}
		// Confirm the composed network's shape: a PD_(chain+2) dynamic
		// graph, connected every round.
		horizon := nw.Schedule.Horizon()
		h, err := dynet.PDClass(nw.Net, nw.Leader, horizon)
		if err != nil {
			return err
		}
		if h != tc.chainLen+2 {
			return fmt.Errorf("PD class %d, want %d", h, tc.chainLen+2)
		}
		bound := core.LowerBoundRounds(tc.n)
		res, err := chainnet.RunCount(nw, bound+nw.Delay()+5, runtime.RunConcurrent)
		if err != nil {
			return err
		}
		if res.Count != tc.n {
			return fmt.Errorf("counted %d, want %d", res.Count, tc.n)
		}
		fmt.Printf("%6d %7d %7d %14d %16d\n",
			tc.n, tc.chainLen, nw.Delay(), res.Rounds, nw.Delay()+bound)
	}
	fmt.Println("\nmeasured = delay + ⌊log₃(2n+1)⌋ + 1 on every row: the chain adds its")
	fmt.Println("latency D-term and anonymity adds its logarithmic surcharge, exactly as")
	fmt.Println("Corollary 1 predicts.")
	return nil
}
