// Quickstart: count an anonymous dynamic network.
//
// This example builds a worst-case 𝒢(PD)₂ dynamic network of 13 anonymous
// nodes (plus a leader and two relays), runs the exact leader-state counting
// algorithm against it, and shows that the algorithm terminates precisely at
// the paper's lower bound ⌊log₃(2n+1)⌋ + 1 — no algorithm can do better.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 13 // nodes to count

	// Ask the worst-case adversary for the hardest network of size n:
	// the Lemma 5 schedule, transformed into a persistent-distance-2
	// dynamic graph.
	wc, err := core.WorstCaseAdversary(n)
	if err != nil {
		return err
	}
	fmt.Printf("worst-case network: %d nodes total (leader + %d relays + %d counted)\n",
		wc.Net.N(), len(wc.Layout.V1), len(wc.Layout.V2))

	// Sanity: it really is a G(PD)_2 network and every round is connected.
	rounds := wc.Schedule.Horizon()
	if h, err := dynet.PDClass(wc.Net, wc.Layout.Leader, rounds); err != nil {
		return err
	} else {
		fmt.Printf("persistent-distance class: G(PD)_%d\n", h)
	}
	if err := dynet.VerifyIntervalConnectivity(wc.Net, rounds); err != nil {
		return err
	}

	// Watch the leader's uncertainty shrink round by round: the set of
	// network sizes consistent with its view.
	for r := 1; r <= rounds; r++ {
		iv, err := core.CountInterval(wc.Schedule, r)
		if err != nil {
			return err
		}
		fmt.Printf("after round %d the leader knows |W| ∈ %s\n", r, iv)
		if iv.Unique() {
			break
		}
	}

	// Run the counter end to end.
	res, err := core.CountOnMultigraph(wc.Schedule, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("counted %d nodes in %d rounds\n", res.Count, res.Rounds)
	fmt.Printf("theorem 1 bound for n=%d: %d rounds — the counter is optimal\n",
		n, core.LowerBoundRounds(n))
	return nil
}
