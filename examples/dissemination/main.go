// Dissemination: the gap between spreading information and counting it.
//
// On the same worst-case anonymous dynamic network, this example measures
// (a) how long flooding takes to deliver a message from the leader to every
// node (bounded by the dynamic diameter D, constant in |V|), and (b) how
// long exact counting takes (D-ish plus the Ω(log |V|) anonymity surcharge).
// It also shows the classic one-token-per-round restriction slowing
// dissemination down, for contrast with the paper's unlimited-bandwidth
// model.
//
// Run with:
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"

	"anondyn/internal/core"
	"anondyn/internal/dissemination"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("%8s  %8s  %8s  %14s\n", "|W|", "flood", "D", "count rounds")
	for _, n := range []int{4, 13, 40, 121, 364} {
		wc, err := core.WorstCaseAdversary(n)
		if err != nil {
			return err
		}
		horizon := wc.Schedule.Horizon()
		d, err := dynet.DynamicDiameter(wc.Net, horizon, 500)
		if err != nil {
			return err
		}
		initial, err := dissemination.SingleSource(wc.Net.N(), int(wc.Layout.Leader), 1)
		if err != nil {
			return err
		}
		fl, err := dissemination.Run(wc.Net, initial, dissemination.Unlimited, 500, runtime.RunSequential)
		if err != nil {
			return err
		}
		cnt, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %8d  %8d  %14d\n", n, fl.Rounds, d, cnt.Rounds)
	}

	fmt.Println("\nflooding stays within the (constant) dynamic diameter while counting")
	fmt.Println("rounds keep growing: that difference is the cost of anonymity.")

	// Bandwidth contrast: k tokens through a path, unlimited vs one per
	// round.
	const k, hops = 8, 6
	net := dynet.NewStatic(graph.Path(hops))
	initial, err := dissemination.SingleSource(hops, 0, k)
	if err != nil {
		return err
	}
	unl, err := dissemination.Run(net, initial, dissemination.Unlimited, 1000, runtime.RunSequential)
	if err != nil {
		return err
	}
	lim, err := dissemination.Run(net, initial, dissemination.OneTokenPerRound, 1000, runtime.RunSequential)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d tokens across a %d-node path: unlimited bandwidth %d rounds, "+
		"one-token-per-round %d rounds\n", k, hops, unl.Rounds, lim.Rounds)
	return nil
}
