// Cancellation: stopping a synchronous execution cleanly.
//
// The paper's model runs for as many rounds as the adversary can sustain —
// on large sizes that is a long time, so the engines accept a
// context.Context and stop at round granularity. This example shows the
// three ways a run ends early, on the goroutine-per-node engine:
//
//  1. the caller's context is canceled (here: a wall-clock timeout) and the
//     run returns at the next round boundary with the rounds it completed;
//  2. a single round overruns Config.RoundDeadline — in a synchronous model
//     a round that cannot complete is an execution fault, reported as a
//     typed *RoundDeadlineError;
//  3. a process panics, and instead of crashing the program the engine
//     recovers it into a *ProcessPanicError naming the node and round.
//
// In all three cases every node goroutine is joined before the engine
// returns: canceling a run never leaks goroutines.
//
// Run with:
//
//	go run ./examples/cancellation
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	rt "runtime"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// tick is a minimal process: it broadcasts its round number and can be
// told to dawdle or blow up at a chosen round.
type tick struct {
	slowAt  int           // sleep in this round's receive phase (-1: never)
	delay   time.Duration // how long to sleep
	panicAt int           // panic in this round's send phase (-1: never)
}

func (p *tick) Send(r int) runtime.Message {
	if r == p.panicAt {
		panic("protocol bug: unexpected state")
	}
	return r
}

func (p *tick) Receive(r int, msgs []runtime.Message) {
	if r == p.slowAt {
		time.Sleep(p.delay)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 16
	ring, err := graph.Cycle(n)
	if err != nil {
		return err
	}
	net := dynet.NewStatic(ring)

	cfg := func(mk func(i int) *tick) *runtime.Config {
		procs := make([]runtime.Process, n)
		for i := range procs {
			procs[i] = mk(i)
		}
		return &runtime.Config{Net: net, Procs: procs, MaxRounds: 1 << 20}
	}
	never := func(int) *tick { return &tick{slowAt: -1, panicAt: -1} }

	before := rt.NumGoroutine()

	// 1. A deadline on the whole run: rounds take ~5ms each, the context
	// expires mid-run, and the engine reports how far it got.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	slow := cfg(never)
	slow.OnRound = func(int) { time.Sleep(5 * time.Millisecond) }
	rounds, err := runtime.RunConcurrentCtx(ctx, slow)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("want a deadline error, got rounds=%d err=%v", rounds, err)
	}
	fmt.Printf("canceled run     : stopped after %d completed rounds: %v\n", rounds, err)

	// 2. A per-round budget: node 5 stalls round 3 for 200ms against a
	// 25ms round deadline, and the engine names the offending round.
	stall := cfg(func(i int) *tick {
		p := never(i)
		if i == 5 {
			p.slowAt, p.delay = 3, 200*time.Millisecond
		}
		return p
	})
	stall.RoundDeadline = 25 * time.Millisecond
	rounds, err = runtime.RunConcurrentCtx(context.Background(), stall)
	var de *runtime.RoundDeadlineError
	if !errors.As(err, &de) {
		return fmt.Errorf("want a *RoundDeadlineError, got rounds=%d err=%v", rounds, err)
	}
	fmt.Printf("round overrun    : round %d blew its %v budget\n", de.Round, de.Limit)

	// 3. A panicking process: node 7 panics in round 2's send phase; the
	// engine isolates it and returns a typed error instead of crashing.
	buggy := cfg(func(i int) *tick {
		p := never(i)
		if i == 7 {
			p.panicAt = 2
		}
		return p
	})
	rounds, err = runtime.RunConcurrentCtx(context.Background(), buggy)
	var pe *runtime.ProcessPanicError
	if !errors.As(err, &pe) {
		return fmt.Errorf("want a *ProcessPanicError, got rounds=%d err=%v", rounds, err)
	}
	fmt.Printf("isolated panic   : node %d panicked in round %d: %v\n", pe.Node, pe.Round, pe.Value)

	// All node goroutines were joined on every path above.
	deadline := time.Now().Add(time.Second)
	for rt.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("goroutines       : %d before, %d after — nothing leaked\n", before, rt.NumGoroutine())
	return nil
}
