// Indistinguishable: reconstruct the paper's Figures 3 and 4 and then let
// the adversary scale the trick to any size.
//
// Two anonymous dynamic multigraphs of different sizes can present the
// leader with byte-identical views. This example prints the shared views of
// the Figure 3 pair (sizes 2 vs 4, one round) and the Figure 4 pair (sizes
// 4 vs 5, two rounds), then builds the general Lemma 5 pair for n = 40 and
// shows the views staying identical for ⌊log₃(81)⌋ = 4 rounds before
// diverging.
//
// Run with:
//
//	go run ./examples/indistinguishable
package main

import (
	"fmt"
	"log"

	"anondyn/internal/core"
	"anondyn/internal/figures"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Figure 3: one round, sizes 2 and 4. ---
	f3, err := figures.NewFigure3()
	if err != nil {
		return err
	}
	v3a, err := f3.M.LeaderView(1)
	if err != nil {
		return err
	}
	v3b, err := f3.MPrime.LeaderView(1)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 — round 0:")
	fmt.Printf("  M  (|W|=%d) leader view: %s\n", f3.M.W(), v3a.Canonical())
	fmt.Printf("  M' (|W|=%d) leader view: %s\n", f3.MPrime.W(), v3b.Canonical())
	fmt.Printf("  identical: %v\n\n", v3a.Equal(v3b))

	// --- Figure 4: two rounds, sizes 4 and 5. ---
	f4, err := figures.NewFigure4()
	if err != nil {
		return err
	}
	v4a, err := f4.M.LeaderView(2)
	if err != nil {
		return err
	}
	v4b, err := f4.MPrime.LeaderView(2)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 — rounds 0..1:")
	fmt.Printf("  M  (|W|=%d) leader view: %s\n", f4.M.W(), v4a.Canonical())
	fmt.Printf("  M' (|W|=%d) leader view: %s\n", f4.MPrime.W(), v4b.Canonical())
	fmt.Printf("  identical: %v\n\n", v4a.Equal(v4b))

	// --- The general machine: n = 40. ---
	const n = 40
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return err
	}
	if err := pair.Verify(); err != nil {
		return err
	}
	fmt.Printf("Lemma 5 pair for n=%d: sizes %d and %d\n", n, pair.M.W(), pair.MPrime.W())
	fmt.Printf("  views verified identical through %d completed rounds\n", pair.Rounds)

	ext, err := pair.Extend(3)
	if err != nil {
		return err
	}
	for r := 1; r <= pair.Rounds+1; r++ {
		va, err := ext.M.LeaderView(r)
		if err != nil {
			return err
		}
		vb, err := ext.MPrime.LeaderView(r)
		if err != nil {
			return err
		}
		fmt.Printf("  after round %d: views equal = %v\n", r, va.Equal(vb))
	}
	div, found := ext.FirstDivergence()
	if !found {
		return fmt.Errorf("pair never diverged")
	}
	fmt.Printf("  first divergence at round %d = ⌊log₃(2·%d+1)⌋ + 1\n", div, n)
	return nil
}
