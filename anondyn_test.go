package anondyn_test

import (
	"testing"

	"anondyn"
)

func TestFacadeBounds(t *testing.T) {
	if got := anondyn.LowerBoundRounds(40); got != 5 {
		t.Fatalf("LowerBoundRounds(40) = %d, want 5", got)
	}
	if got := anondyn.MaxIndistinguishableRounds(40); got != 4 {
		t.Fatalf("MaxIndistinguishableRounds(40) = %d, want 4", got)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The doc-comment tour, as a test.
	wc, err := anondyn.WorstCaseAdversary(40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := anondyn.CountOnMultigraph(wc.Schedule, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 40 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.Rounds != anondyn.LowerBoundRounds(40) {
		t.Fatalf("rounds = %d, want %d", res.Rounds, anondyn.LowerBoundRounds(40))
	}
}

func TestFacadePairAndSolver(t *testing.T) {
	pair, err := anondyn.WorstCasePair(13)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Verify(); err != nil {
		t.Fatal(err)
	}
	view, err := pair.M.LeaderView(pair.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := anondyn.SolveCountInterval(view)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Unique() {
		t.Fatalf("worst-case view should stay ambiguous, got %v", iv)
	}
	if iv.MinSize > 13 || iv.MaxSize < 14 {
		t.Fatalf("interval %v excludes the pair", iv)
	}
}
