module anondyn

go 1.22
