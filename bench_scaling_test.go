// Scaling benchmarks: how the reproduction's algorithmic cores behave as
// instances grow. These complement the per-artifact benchmarks in
// bench_test.go with size sweeps.
package anondyn_test

import (
	"context"
	"fmt"
	goruntime "runtime"
	"testing"

	"anondyn/internal/chainnet"
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
	"anondyn/internal/sweep"
)

// BenchmarkIntervalSolverScaling measures the O(3^t) interval solver over
// growing view depths on worst-case schedules.
func BenchmarkIntervalSolverScaling(b *testing.B) {
	for _, rounds := range []int{2, 4, 6, 8} {
		rounds := rounds
		b.Run(fmt.Sprintf("t=%d", rounds), func(b *testing.B) {
			n := core.MinSizeForRounds(rounds)
			pair, err := core.IndistinguishablePair(n, rounds)
			if err != nil {
				b.Fatal(err)
			}
			view, err := pair.M.LeaderView(rounds)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv, err := kernel.SolveCountInterval(view)
				if err != nil {
					b.Fatal(err)
				}
				if iv.Unique() {
					b.Fatal("worst-case view should stay ambiguous")
				}
			}
		})
	}
}

// BenchmarkEnumerateSizesK3 measures the general-k enumerator on small
// k = 3 instances.
func BenchmarkEnumerateSizesK3(b *testing.B) {
	mg, err := multigraph.Random(3, 3, 2, 7)
	if err != nil {
		b.Fatal(err)
	}
	view, err := mg.LeaderView(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernel.EnumerateSizes(view, 3, kernel.EnumLimits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaderView measures leader-state reconstruction over growing
// schedules.
func BenchmarkLeaderView(b *testing.B) {
	for _, w := range []int{10, 100, 1000} {
		w := w
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			mg, err := multigraph.Random(2, w, 6, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mg.LeaderView(6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChainEndToEnd measures the full message-passing Corollary 1
// system.
func BenchmarkChainEndToEnd(b *testing.B) {
	for _, tc := range []struct{ n, chain int }{{13, 2}, {40, 5}} {
		tc := tc
		b.Run(fmt.Sprintf("n=%d/chain=%d", tc.n, tc.chain), func(b *testing.B) {
			bound := core.LowerBoundRounds(tc.n)
			for i := 0; i < b.N; i++ {
				nw, err := chainnet.Build(tc.n, tc.chain)
				if err != nil {
					b.Fatal(err)
				}
				res, err := chainnet.RunCount(nw, bound+nw.Delay()+5, runtime.RunSequential)
				if err != nil {
					b.Fatal(err)
				}
				if res.Count != tc.n {
					b.Fatalf("count %d", res.Count)
				}
			}
		})
	}
}

// BenchmarkFloodDelayingAdversary measures the maximally-delaying oblivious
// adversary.
func BenchmarkFloodDelayingAdversary(b *testing.B) {
	for _, n := range []int{10, 100} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fd, err := dynet.NewFloodDelaying(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft, err := dynet.FloodTime(fd, 0, 0, 5*n)
				if err != nil {
					b.Fatal(err)
				}
				if ft != n-1 {
					b.Fatalf("flood time %d", ft)
				}
			}
		})
	}
}

// BenchmarkWorstCasePairConstruction measures building + verifying the
// Lemma 5 adversarial pair at the largest bench size.
func BenchmarkWorstCasePairConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pair, err := core.WorstCasePair(3280)
		if err != nil {
			b.Fatal(err)
		}
		if pair.Rounds != 8 {
			b.Fatalf("rounds %d", pair.Rounds)
		}
	}
}

// BenchmarkIncrementalVsBatch compares the incremental solver against
// re-solving from scratch each round, over a 6-round worst-case view.
func BenchmarkIncrementalVsBatch(b *testing.B) {
	n := core.MinSizeForRounds(6)
	pair, err := core.IndistinguishablePair(n, 6)
	if err != nil {
		b.Fatal(err)
	}
	view, err := pair.M.LeaderView(6)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch-per-round", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for rounds := 1; rounds <= 6; rounds++ {
				if _, err := kernel.SolveCountInterval(view[:rounds]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := kernel.NewIncrementalSolver()
			for rounds := 0; rounds < 6; rounds++ {
				if _, err := solver.AddRound(view[rounds]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepEngine measures campaign throughput (jobs/sec) on the
// work-stealing pool at 1, 4, and NumCPU workers — the baseline every
// future scaling PR (distributed backends, caching, larger grids) must
// beat. The workload is the Monte-Carlo counting trial behind the figures.
func BenchmarkSweepEngine(b *testing.B) {
	var workerCounts []int
	for _, w := range []int{1, 4, goruntime.NumCPU()} {
		dup := false
		for _, seen := range workerCounts {
			dup = dup || seen == w
		}
		if !dup {
			workerCounts = append(workerCounts, w)
		}
	}
	spec := sweep.Spec{
		Name: "bench", Proto: sweep.ProtoMDBLCount,
		Sizes: []int{40, 121}, Trials: 16, Horizon: 10, Seed: 7,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := sweep.Run(context.Background(), jobs, sweep.MDBLCount, sweep.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Executed != len(jobs) {
					b.Fatalf("executed %d/%d", rep.Executed, len(jobs))
				}
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkStructuredMatVec measures the matrix-free M_r product at depths
// the dense matrix cannot reach.
func BenchmarkStructuredMatVec(b *testing.B) {
	for _, r := range []int{6, 8, 10} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			k := kernel.ClosedFormKernel(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prod, err := kernel.StructuredMulVec(r, 2, k)
				if err != nil {
					b.Fatal(err)
				}
				if !prod.IsZero() {
					b.Fatal("M_r k_r != 0")
				}
			}
		})
	}
}
