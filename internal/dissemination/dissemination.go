// Package dissemination implements k-token dissemination protocols over
// dynamic networks — the problem the paper contrasts counting against. With
// the model's unlimited bandwidth, flooding completes within the dynamic
// diameter D rounds; with the classic one-token-per-round restriction of
// Kuhn, Lynch and Oshman [9], dissemination slows down to Ω(n + k) style
// costs. The headline gap experiment runs flooding and the exact counter on
// the same worst-case network: dissemination finishes in D rounds while
// counting needs D + Ω(log |V|).
package dissemination

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anondyn/internal/dynet"
	"anondyn/internal/runtime"
)

// Token identifies a disseminated token.
type Token int

// tokenSet is a set of tokens with a canonical sorted encoding.
type tokenSet map[Token]struct{}

func (s tokenSet) add(t Token) { s[t] = struct{}{} }

func (s tokenSet) sorted() []Token {
	out := make([]Token, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func encodeTokens(ts []Token) string {
	var sb strings.Builder
	for i, t := range ts {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(t)))
	}
	return sb.String()
}

// canon canonicalizes dissemination messages.
func canon(m runtime.Message) string {
	switch v := m.(type) {
	case nil:
		return ""
	case []Token:
		return "t:" + encodeTokens(v)
	default:
		return runtime.DefaultCanon(m)
	}
}

// floodProc broadcasts its entire token set every round (unlimited
// bandwidth) and unions everything it hears.
type floodProc struct {
	tokens tokenSet
}

func (p *floodProc) Send(int) runtime.Message { return p.tokens.sorted() }

func (p *floodProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if ts, ok := m.([]Token); ok {
			for _, t := range ts {
				p.tokens.add(t)
			}
		}
	}
}

// forwardProc broadcasts exactly one owned token per round — the
// token-forwarding restriction of [9]. It cycles through its owned tokens
// in sorted order, resuming the cycle as its set grows.
type forwardProc struct {
	tokens tokenSet
	cursor int
}

func (p *forwardProc) Send(int) runtime.Message {
	owned := p.tokens.sorted()
	if len(owned) == 0 {
		return nil
	}
	t := owned[p.cursor%len(owned)]
	p.cursor++
	return []Token{t}
}

func (p *forwardProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if ts, ok := m.([]Token); ok {
			for _, t := range ts {
				p.tokens.add(t)
			}
		}
	}
}

// Mode selects the bandwidth regime.
type Mode int

const (
	// Unlimited lets every node broadcast its whole token set each round
	// (the paper's model).
	Unlimited Mode = iota + 1
	// OneTokenPerRound restricts each broadcast to a single token (the
	// token-forwarding model of [9]).
	OneTokenPerRound
)

// Result reports a dissemination run.
type Result struct {
	// Rounds is the number of rounds until every node held every token.
	Rounds int
	// Tokens is the number of distinct tokens disseminated.
	Tokens int
}

// Run disseminates the given initial token assignment (initial[i] lists the
// tokens node i starts with) over the dynamic network until every node
// holds every token, using the requested bandwidth mode and engine. It
// errors if dissemination does not complete within maxRounds.
func Run(net dynet.Dynamic, initial [][]Token, mode Mode, maxRounds int, run func(*runtime.Config) (int, error)) (Result, error) {
	n := net.N()
	if len(initial) != n {
		return Result{}, fmt.Errorf("dissemination: %d initial assignments for %d nodes", len(initial), n)
	}
	if mode != Unlimited && mode != OneTokenPerRound {
		return Result{}, fmt.Errorf("dissemination: unknown mode %d", mode)
	}
	universe := make(tokenSet)
	holders := make([]tokenSet, n)
	procs := make([]runtime.Process, n)
	for i := range initial {
		ts := make(tokenSet, len(initial[i]))
		for _, t := range initial[i] {
			ts.add(t)
			universe.add(t)
		}
		holders[i] = ts
		if mode == Unlimited {
			procs[i] = &floodProc{tokens: ts}
		} else {
			procs[i] = &forwardProc{tokens: ts}
		}
	}
	if len(universe) == 0 {
		return Result{}, fmt.Errorf("dissemination: no tokens to disseminate")
	}
	complete := func() bool {
		for _, h := range holders {
			if len(h) != len(universe) {
				return false
			}
		}
		return true
	}
	if complete() {
		return Result{Rounds: 0, Tokens: len(universe)}, nil
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canon,
		MaxRounds: maxRounds,
		Stop:      func(int) bool { return complete() },
	}
	rounds, err := run(cfg)
	if err != nil {
		return Result{}, err
	}
	if !complete() {
		return Result{}, fmt.Errorf("dissemination: incomplete after %d rounds", rounds)
	}
	return Result{Rounds: rounds, Tokens: len(universe)}, nil
}

// SingleSource assigns k tokens to one source node and none elsewhere;
// convenience for flood-time experiments.
func SingleSource(n, src, k int) ([][]Token, error) {
	if src < 0 || src >= n {
		return nil, fmt.Errorf("dissemination: source %d out of range [0,%d)", src, n)
	}
	if k < 1 {
		return nil, fmt.Errorf("dissemination: need at least one token, got %d", k)
	}
	initial := make([][]Token, n)
	for t := 0; t < k; t++ {
		initial[src] = append(initial[src], Token(t))
	}
	return initial, nil
}

// OnePerNode assigns token i to node i — the classic all-to-all k = n token
// dissemination instance whose completion, in networks with IDs, solves
// counting [1].
func OnePerNode(n int) [][]Token {
	initial := make([][]Token, n)
	for i := range initial {
		initial[i] = []Token{Token(i)}
	}
	return initial
}
