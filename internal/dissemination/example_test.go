package dissemination_test

import (
	"fmt"

	"anondyn/internal/dissemination"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// With unlimited bandwidth, all-to-all token dissemination completes
// within the dynamic diameter: 4 rounds on a static 5-node path.
func ExampleRun() {
	net := dynet.NewStatic(graph.Path(5))
	res, err := dissemination.Run(net, dissemination.OnePerNode(5),
		dissemination.Unlimited, 100, runtime.RunSequential)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Rounds, res.Tokens)
	// Output: 4 5
}
