package dissemination

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func TestFloodSingleSourceMatchesFloodTime(t *testing.T) {
	// Unlimited-bandwidth dissemination from a single source completes in
	// exactly dynet.FloodTime rounds, for several topologies.
	nets := map[string]dynet.Dynamic{
		"path":     dynet.NewStatic(graph.Path(6)),
		"complete": dynet.NewStatic(graph.Complete(6)),
	}
	star, err := graph.Star(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	nets["star"] = dynet.NewStatic(star)
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			initial, err := SingleSource(net.N(), 0, 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(net, initial, Unlimited, 100, runtime.RunSequential)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dynet.FloodTime(net, 0, 0, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != want {
				t.Fatalf("dissemination took %d rounds, flood time is %d", res.Rounds, want)
			}
			if res.Tokens != 3 {
				t.Fatalf("tokens = %d, want 3", res.Tokens)
			}
		})
	}
}

func TestFloodAllToAllWithinDynamicDiameter(t *testing.T) {
	net, err := dynet.NewRandomChurn(10, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, OnePerNode(10), Unlimited, 100, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dynet.DynamicDiameter(net, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > d {
		t.Fatalf("all-to-all flooding took %d rounds, dynamic diameter is %d", res.Rounds, d)
	}
}

func TestOneTokenPerRoundSlower(t *testing.T) {
	// On a static path with k tokens at one end, the restricted protocol
	// needs more rounds than unlimited flooding.
	net := dynet.NewStatic(graph.Path(5))
	const k = 6
	initial, err := SingleSource(5, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	unl, err := Run(net, initial, Unlimited, 1000, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	lim, err := Run(net, initial, OneTokenPerRound, 1000, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if lim.Rounds <= unl.Rounds {
		t.Fatalf("restricted (%d rounds) not slower than unlimited (%d rounds)", lim.Rounds, unl.Rounds)
	}
}

func TestOneTokenPerRoundCompletes(t *testing.T) {
	net, err := dynet.NewRandomChurn(8, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, OnePerNode(8), OneTokenPerRound, 2000, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 8 {
		t.Fatalf("tokens = %d, want 8", res.Tokens)
	}
}

func TestRunEnginesAgree(t *testing.T) {
	net := dynet.NewStatic(graph.Path(6))
	initial, err := SingleSource(6, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(net, initial, Unlimited, 100, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, initial, Unlimited, 100, runtime.RunConcurrent)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("engines disagree: %+v vs %+v", a, b)
	}
}

func TestRunErrors(t *testing.T) {
	net := dynet.NewStatic(graph.Path(3))
	if _, err := Run(net, make([][]Token, 2), Unlimited, 10, runtime.RunSequential); err == nil {
		t.Fatal("wrong assignment length should error")
	}
	initial := make([][]Token, 3)
	if _, err := Run(net, initial, Unlimited, 10, runtime.RunSequential); err == nil {
		t.Fatal("no tokens should error")
	}
	good, err := SingleSource(3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(net, good, Mode(99), 10, runtime.RunSequential); err == nil {
		t.Fatal("unknown mode should error")
	}
	// Disconnected network never completes.
	disc := dynet.NewStatic(graph.New(3))
	if _, err := Run(disc, good, Unlimited, 5, runtime.RunSequential); err == nil {
		t.Fatal("incomplete dissemination should error")
	}
}

func TestRunAlreadyComplete(t *testing.T) {
	net := dynet.NewStatic(graph.Path(2))
	initial := [][]Token{{1}, {1}}
	res, err := Run(net, initial, Unlimited, 10, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("already-complete dissemination took %d rounds", res.Rounds)
	}
}

func TestSingleSourceErrors(t *testing.T) {
	if _, err := SingleSource(3, 5, 1); err == nil {
		t.Fatal("bad source should error")
	}
	if _, err := SingleSource(3, 0, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestCanonEncoding(t *testing.T) {
	if got := canon([]Token{3, 1, 2}); got != "t:3,1,2" {
		t.Fatalf("canon = %q", got)
	}
	if got := canon(nil); got != "" {
		t.Fatalf("canon(nil) = %q", got)
	}
	if canon(42) == "" {
		t.Fatal("fallback canon empty")
	}
}

func TestTokenSetSorted(t *testing.T) {
	s := make(tokenSet)
	for _, v := range []Token{5, 1, 3} {
		s.add(v)
	}
	got := s.sorted()
	want := []Token{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}
