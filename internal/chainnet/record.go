package chainnet

import (
	"anondyn/internal/runtime"
	"anondyn/internal/trace"
)

// RecordTrace runs the full-information protocol on the network for a
// fixed number of rounds under the trace recorder (sequential engine, as
// recording requires) and returns the complete execution record.
//
// Comparing the leader transcript (node 0) of a Lemma 5 pair's two
// recordings shows byte-identical views through the indistinguishability
// horizon — the message-level form of Theorem 1.
func RecordTrace(nw *Network, rounds int) (*trace.Trace, error) {
	procs := make([]runtime.Process, nw.N())
	procs[nw.Leader] = newLeaderProc()
	for _, c := range nw.Chain {
		procs[c] = newChainProc()
	}
	for j, r := range nw.Relays {
		procs[r] = &relayProc{label: j + 1}
	}
	for _, w := range nw.W {
		procs[w] = &wProc{}
	}
	cfg := &runtime.Config{
		Net:       nw.Net,
		Procs:     procs,
		Canon:     canon,
		MaxRounds: rounds,
	}
	rec, wrapped, err := trace.NewRecorder(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := runtime.RunSequential(wrapped); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}
