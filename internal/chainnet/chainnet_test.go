package chainnet

import (
	"testing"
	"testing/quick"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

func TestBuildStructure(t *testing.T) {
	nw, err := Build(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 1+3+2+4 {
		t.Fatalf("N = %d, want 10", nw.N())
	}
	if nw.Delay() != 4 {
		t.Fatalf("Delay = %d, want 4", nw.Delay())
	}
	// Persistent distances: chain node i at distance i+1..., relays at
	// chainLen+1, W at chainLen+2.
	horizon := nw.Schedule.Horizon()
	dist, err := dynet.VerifyPersistentDistance(nw.Net, nw.Leader, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range nw.Chain {
		if dist[c] != i+1 {
			t.Fatalf("chain node %d at distance %d, want %d", c, dist[c], i+1)
		}
	}
	for _, r := range nw.Relays {
		if dist[r] != 4 {
			t.Fatalf("relay %d at distance %d, want 4", r, dist[r])
		}
	}
	for _, w := range nw.W {
		if dist[w] != 5 {
			t.Fatalf("W node %d at distance %d, want 5", w, dist[w])
		}
	}
	if err := dynet.VerifyIntervalConnectivity(nw.Net, horizon); err != nil {
		t.Fatal(err)
	}
}

func TestBuildZeroChainIsPD2(t *testing.T) {
	nw, err := Build(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dynet.PDClass(nw.Net, nw.Leader, nw.Schedule.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("PD class = %d, want 2", h)
	}
	if nw.Delay() != 1 {
		t.Fatalf("Delay = %d, want 1", nw.Delay())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := Build(4, -1); err == nil {
		t.Fatal("negative chain should error")
	}
	k3, err := multigraph.Random(3, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromSchedule(k3, 0); err == nil {
		t.Fatal("k=3 schedule should error")
	}
	empty, err := multigraph.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromSchedule(empty, 0); err == nil {
		t.Fatal("zero-horizon schedule should error")
	}
}

// TestRunCountMatchesCorollary1 is the end-to-end Corollary 1 experiment:
// the message-passing leader terminates at exactly delay + bound rounds,
// with the correct count, for a grid of sizes and chain lengths.
func TestRunCountMatchesCorollary1(t *testing.T) {
	for _, tc := range []struct{ n, chainLen int }{
		{1, 0}, {4, 0}, {4, 2}, {13, 0}, {13, 3}, {40, 5},
	} {
		nw, err := Build(tc.n, tc.chainLen)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.chainLen, err)
		}
		bound := core.LowerBoundRounds(tc.n)
		budget := bound + nw.Delay() + 5
		res, err := RunCount(nw, budget, runtime.RunSequential)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.chainLen, err)
		}
		if res.Count != tc.n {
			t.Fatalf("n=%d m=%d: counted %d", tc.n, tc.chainLen, res.Count)
		}
		if want := bound + nw.Delay(); res.Rounds != want {
			t.Fatalf("n=%d m=%d: %d rounds, want %d", tc.n, tc.chainLen, res.Rounds, want)
		}
	}
}

func TestRunCountEnginesAgree(t *testing.T) {
	nw, err := Build(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	budget := core.LowerBoundRounds(13) + nw.Delay() + 5
	seq, err := RunCount(nw, budget, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh network: processes are stateful, so rebuild.
	nw2, err := Build(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	con, err := RunCount(nw2, budget, runtime.RunConcurrent)
	if err != nil {
		t.Fatal(err)
	}
	if seq != con {
		t.Fatalf("engines disagree: %+v vs %+v", seq, con)
	}
}

func TestRunCountBudgetTooSmall(t *testing.T) {
	nw, err := Build(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCount(nw, 3, runtime.RunSequential); err == nil {
		t.Fatal("insufficient budget should error")
	}
}

// TestRunCountBenignSchedule runs the protocol over a benign schedule: all
// nodes on label {1} forever. The count resolves as soon as the first
// complete observation crosses the chain.
func TestRunCountBenignSchedule(t *testing.T) {
	labels := make([][]multigraph.LabelSet, 5)
	for v := range labels {
		labels[v] = []multigraph.LabelSet{
			multigraph.SetOf(1), multigraph.SetOf(1), multigraph.SetOf(1),
		}
	}
	m, err := multigraph.New(2, labels)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := BuildFromSchedule(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCount(nw, 20, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 5 {
		t.Fatalf("counted %d, want 5", res.Count)
	}
	// Benign bound: 1 round of observation + delay 3.
	if want := 1 + nw.Delay(); res.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Rounds, want)
	}
}

// TestWStateTrackingMatchesSchedule verifies the protocol's W nodes
// reconstruct exactly the schedule's label histories (the model alignment
// behind Definition 6).
func TestWStateTrackingMatchesSchedule(t *testing.T) {
	nw, err := Build(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]runtime.Process, nw.N())
	procs[nw.Leader] = newLeaderProc()
	for _, c := range nw.Chain {
		procs[c] = newChainProc()
	}
	for j, r := range nw.Relays {
		procs[r] = &relayProc{label: j + 1}
	}
	wProcs := make([]*wProc, len(nw.W))
	for i, w := range nw.W {
		wProcs[i] = &wProc{}
		procs[w] = wProcs[i]
	}
	rounds := nw.Schedule.Horizon()
	cfg := &runtime.Config{Net: nw.Net, Procs: procs, Canon: canon, MaxRounds: rounds}
	if _, err := runtime.RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	for i, wp := range wProcs {
		want, err := nw.Schedule.StateOf(i, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if !wp.history.Equal(want) {
			t.Fatalf("W %d history %v, schedule says %v", i, wp.history, want)
		}
	}
}

func TestFactCanonicalDeterministic(t *testing.T) {
	f := fact{Round: 2, Label: 1, States: map[string]int{"3": 2, "1": 1}}
	a := f.canonical()
	b := f.canonical()
	if a != b {
		t.Fatal("fact canonical not deterministic")
	}
	if a == "" {
		t.Fatal("empty canonical")
	}
}

func TestCanonMessageKinds(t *testing.T) {
	msgs := []runtime.Message{
		nil,
		stateMsg{StateKey: "1.2"},
		relayBeacon{Label: 1},
		forwardMsg{},
		42,
	}
	seen := map[string]bool{}
	for _, m := range msgs[1:] {
		c := canon(m)
		if c == "" {
			t.Fatalf("canon(%v) empty", m)
		}
		if seen[c] {
			t.Fatalf("canon collision for %v", m)
		}
		seen[c] = true
	}
	if canon(nil) != "" {
		t.Fatal("canon(nil) should be empty")
	}
}

// TestLeaderRejectsInconsistentFacts injects fabricated relay facts that no
// legal execution could produce: the leader's solver detects the
// inconsistency (empty interval) and refuses to terminate, rather than
// emitting a wrong count.
func TestLeaderRejectsInconsistentFacts(t *testing.T) {
	lp := newLeaderProc()
	// Round 0: one node on each label.
	lp.Receive(0, []runtime.Message{
		relayBeacon{Label: 1, Facts: []fact{{Round: 0, Label: 1, States: map[string]int{"": 1}}}},
		relayBeacon{Label: 2, Facts: []fact{{Round: 0, Label: 2, States: map[string]int{"": 1}}}},
	})
	if _, done := lp.Output(); done {
		t.Fatal("leader terminated on an ambiguous single round")
	}
	// Round 1: claim a node whose state was {2} on relay 1 AND a node
	// whose state was {1} on relay 2, while round 0 showed only one node
	// per label — inconsistent multiplicities.
	k1 := multigraph.History{multigraph.SetOf(1)}.Key()
	k2 := multigraph.History{multigraph.SetOf(2)}.Key()
	lp.Receive(1, []runtime.Message{
		relayBeacon{Label: 1, Facts: []fact{{Round: 1, Label: 1, States: map[string]int{k2: 5}}}},
		relayBeacon{Label: 2, Facts: []fact{{Round: 1, Label: 2, States: map[string]int{k1: 5}}}},
	})
	if _, done := lp.Output(); done {
		t.Fatal("leader terminated on inconsistent facts")
	}
}

// Property: for random small (n, chainLen), the end-to-end protocol
// terminates at exactly delay + bound with the right count.
func TestRunCountProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(rawN, rawC uint8) bool {
		n := int(rawN%20) + 1
		chainLen := int(rawC % 4)
		nw, err := Build(n, chainLen)
		if err != nil {
			return false
		}
		bound := core.LowerBoundRounds(n)
		res, err := RunCount(nw, bound+nw.Delay()+5, runtime.RunSequential)
		if err != nil {
			return false
		}
		return res.Count == n && res.Rounds == bound+nw.Delay()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
