package chainnet

import (
	"fmt"
	"sort"
	"strings"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

// fact is one relay observation: at round Round, the relay carrying Label
// saw the given multiset of neighbor states (state key → count). Facts are
// the unit of forwarding; they carry no node identities.
type fact struct {
	Round  int
	Label  int
	States map[string]int
}

// key identifies a fact uniquely (one fact per (round, label)).
func (f fact) key() [2]int { return [2]int{f.Round, f.Label} }

// canonical renders a fact deterministically.
func (f fact) canonical() string {
	keys := make([]string, 0, len(f.States))
	for k := range f.States {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "f%d/%d{", f.Round, f.Label)
	for _, k := range keys {
		fmt.Fprintf(&sb, "[%s]x%d;", k, f.States[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Message types of the protocol.
type (
	// relayBeacon is what a relay broadcasts: its label (so W nodes can
	// record their label sets) and every fact it has produced.
	relayBeacon struct {
		Label int
		Facts []fact
	}
	// forwardMsg is what chain nodes (and the leader, vacuously)
	// broadcast: the union of facts heard so far.
	forwardMsg struct {
		Facts []fact
	}
	// stateMsg is what a W node broadcasts: its current state key.
	stateMsg struct {
		StateKey string
	}
)

// canon canonicalizes protocol messages for deterministic delivery.
func canon(m runtime.Message) string {
	switch v := m.(type) {
	case nil:
		return ""
	case stateMsg:
		return "w:" + v.StateKey
	case relayBeacon:
		return "r" + encodeFacts(v.Label, v.Facts)
	case forwardMsg:
		return "c" + encodeFacts(0, v.Facts)
	default:
		return runtime.DefaultCanon(m)
	}
}

func encodeFacts(label int, facts []fact) string {
	parts := make([]string, len(facts))
	for i, f := range facts {
		parts[i] = f.canonical()
	}
	sort.Strings(parts)
	return fmt.Sprintf("%d|%s", label, strings.Join(parts, ","))
}

// wProc is a counted node: it broadcasts its label-set history and learns
// its round-r label set from the relay beacons delivered in round r.
type wProc struct {
	history multigraph.History
}

func (p *wProc) Send(int) runtime.Message {
	return stateMsg{StateKey: p.history.Key()}
}

func (p *wProc) Receive(_ int, msgs []runtime.Message) {
	var ls multigraph.LabelSet
	for _, m := range msgs {
		if rb, ok := m.(relayBeacon); ok {
			ls |= multigraph.SetOf(rb.Label)
		}
	}
	p.history = p.history.Extend(ls)
}

// relayProc carries a fixed label. Each round it broadcasts its label and
// all facts produced so far; on receive it turns the heard W states into
// the fact for that round.
type relayProc struct {
	label int
	facts []fact
}

func (p *relayProc) Send(int) runtime.Message {
	out := make([]fact, len(p.facts))
	copy(out, p.facts)
	return relayBeacon{Label: p.label, Facts: out}
}

func (p *relayProc) Receive(r int, msgs []runtime.Message) {
	states := make(map[string]int)
	for _, m := range msgs {
		if sm, ok := m.(stateMsg); ok {
			states[sm.StateKey]++
		}
	}
	p.facts = append(p.facts, fact{Round: r, Label: p.label, States: states})
}

// chainProc forwards the union of all facts it has heard.
type chainProc struct {
	facts map[[2]int]fact
}

func newChainProc() *chainProc { return &chainProc{facts: make(map[[2]int]fact)} }

func (p *chainProc) Send(int) runtime.Message {
	out := make([]fact, 0, len(p.facts))
	for _, f := range p.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Label < out[j].Label
	})
	return forwardMsg{Facts: out}
}

func (p *chainProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		switch v := m.(type) {
		case relayBeacon:
			for _, f := range v.Facts {
				p.facts[f.key()] = f
			}
		case forwardMsg:
			for _, f := range v.Facts {
				p.facts[f.key()] = f
			}
		}
	}
}

// leaderProc accumulates facts, reassembles the (delayed) leader view, and
// solves for the set of consistent sizes after every round. Completed
// rounds are fed to an incremental solver, so each protocol round costs
// only the newest level of the state tree.
type leaderProc struct {
	facts  map[[2]int]fact
	solver *kernel.IncrementalSolver
	count  int
	done   bool
}

func newLeaderProc() *leaderProc {
	return &leaderProc{
		facts:  make(map[[2]int]fact),
		solver: kernel.NewIncrementalSolver(),
	}
}

func (p *leaderProc) Send(int) runtime.Message { return nil }

func (p *leaderProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		switch v := m.(type) {
		case relayBeacon:
			for _, f := range v.Facts {
				p.facts[f.key()] = f
			}
		case forwardMsg:
			for _, f := range v.Facts {
				p.facts[f.key()] = f
			}
		}
	}
	if p.done {
		return
	}
	// Feed newly completed rounds (facts from both labels present) to the
	// incremental solver in order.
	for {
		r := p.solver.Rounds()
		f1, ok1 := p.facts[[2]int{r, 1}]
		f2, ok2 := p.facts[[2]int{r, 2}]
		if !ok1 || !ok2 {
			return
		}
		obs := make(multigraph.Observation)
		for state, c := range f1.States {
			obs[multigraph.ObsKey{Label: 1, StateKey: state}] = c
		}
		for state, c := range f2.States {
			obs[multigraph.ObsKey{Label: 2, StateKey: state}] = c
		}
		iv, err := p.solver.AddRound(obs)
		if err != nil {
			return // malformed observations; wait (cannot happen with honest relays)
		}
		if iv.Unique() {
			p.count = iv.MinSize
			p.done = true
			return
		}
	}
}

// Output implements runtime.Outputter.
func (p *leaderProc) Output() (int, bool) { return p.count, p.done }

// CountResult reports a full protocol run.
type CountResult struct {
	// Count is the leader's output |W|.
	Count int
	// Rounds is the number of completed rounds until the leader
	// terminated.
	Rounds int
}

// RunCount executes the full-information protocol on the network with the
// given engine and returns the leader's count and termination round.
func RunCount(nw *Network, maxRounds int, run func(*runtime.Config) (int, error)) (CountResult, error) {
	procs := make([]runtime.Process, nw.N())
	procs[nw.Leader] = newLeaderProc()
	for _, c := range nw.Chain {
		procs[c] = newChainProc()
	}
	for j, r := range nw.Relays {
		procs[r] = &relayProc{label: j + 1}
	}
	for _, w := range nw.W {
		procs[w] = &wProc{}
	}
	cfg := &runtime.Config{
		Net:       nw.Net,
		Procs:     procs,
		Canon:     canon,
		MaxRounds: maxRounds,
	}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(nw.Leader), run)
	if err != nil {
		return CountResult{}, err
	}
	if !ok {
		return CountResult{}, fmt.Errorf("chainnet: leader did not terminate within %d rounds", maxRounds)
	}
	return CountResult{Count: value, Rounds: rounds}, nil
}
