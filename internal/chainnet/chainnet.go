// Package chainnet realizes Corollary 1 as an actual message-passing
// system. It builds the paper's chain composition — the leader separated
// from a worst-case 𝒢(PD)₂ core by a static chain — and runs a
// full-information protocol on the runtime engine:
//
//	leader — c₁ — c₂ — … — c_m — {R₁, R₂} ⇄ W (adversarial schedule)
//
//	W nodes   broadcast their label-set history each round and learn their
//	          round-r label set from the relay beacons they hear;
//	relays    emit one observation fact per round — (round, label,
//	          multiset of neighbor states) — plus all earlier facts;
//	chain     nodes forward the union of all facts they have heard;
//	leader    reassembles the delayed leader view and solves its linear
//	          system (kernel.SolveCountInterval) each round, terminating
//	          when exactly one network size remains consistent.
//
// Every relay beacon crosses m+1 hops to reach the leader, so the count
// lands exactly delay = m+1 rounds after the ℳ(DBL)₂ bound: measured
// rounds = (m+1) + ⌊log₃(2n+1)⌋ + 1, the paper's D + Ω(log |V|) with the
// D-term made concrete. (In Lemma 1 the leader's memory is merged with the
// relays', hiding one hop; keeping the processes separate costs the honest
// extra round.)
package chainnet

import (
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/multigraph"
)

// Network is a chain-composed Corollary 1 instance.
type Network struct {
	// Net is the dynamic graph.
	Net dynet.Dynamic
	// Leader is always node 0.
	Leader graph.NodeID
	// Chain lists the static chain nodes c₁..c_m in leader-to-core order.
	Chain []graph.NodeID
	// Relays holds the two labeled relay nodes (label j at Relays[j-1]).
	Relays []graph.NodeID
	// W holds the counted nodes.
	W []graph.NodeID
	// Schedule is the underlying ℳ(DBL)₂ schedule driving the relay-W
	// edges.
	Schedule *multigraph.Multigraph
}

// Delay returns the observation latency of the composition: the number of
// hops a relay fact needs to reach the leader, m+1.
func (nw *Network) Delay() int { return len(nw.Chain) + 1 }

// N returns the total node count.
func (nw *Network) N() int { return 1 + len(nw.Chain) + len(nw.Relays) + len(nw.W) }

// Build constructs the chain-composed network for n counted nodes and a
// static chain of chainLen intermediate nodes (chainLen = 0 attaches the
// relays directly to the leader). The relay-W edges follow the worst-case
// Lemma 5 schedule for size n, extended past its divergence point.
func Build(n, chainLen int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("chainnet: need n >= 1, got %d", n)
	}
	if chainLen < 0 {
		return nil, fmt.Errorf("chainnet: negative chain length %d", chainLen)
	}
	pair, err := core.WorstCasePair(n)
	if err != nil {
		return nil, fmt.Errorf("chainnet: build schedule: %w", err)
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return nil, fmt.Errorf("chainnet: extend schedule: %w", err)
	}
	return buildFromSchedule(ext.M, chainLen)
}

// buildFromSchedule wires an arbitrary ℳ(DBL)₂ schedule behind a chain.
func buildFromSchedule(m *multigraph.Multigraph, chainLen int) (*Network, error) {
	if m.K() != 2 {
		return nil, fmt.Errorf("chainnet: schedule must have k=2, got %d", m.K())
	}
	if m.Horizon() == 0 {
		return nil, fmt.Errorf("chainnet: zero-horizon schedule")
	}
	nw := &Network{Leader: 0, Schedule: m}
	next := graph.NodeID(1)
	for i := 0; i < chainLen; i++ {
		nw.Chain = append(nw.Chain, next)
		next++
	}
	for j := 0; j < 2; j++ {
		nw.Relays = append(nw.Relays, next)
		next++
	}
	for v := 0; v < m.W(); v++ {
		nw.W = append(nw.W, next)
		next++
	}
	total := int(next)

	static := make([]graph.Edge, 0, chainLen+2)
	prev := nw.Leader
	for _, c := range nw.Chain {
		static = append(static, graph.Edge{U: prev, V: c})
		prev = c
	}
	static = append(static,
		graph.Edge{U: prev, V: nw.Relays[0]},
		graph.Edge{U: prev, V: nw.Relays[1]},
	)

	horizon := m.Horizon()
	snapshot := func(r int) *graph.Graph {
		if r < 0 {
			r = 0
		}
		if r >= horizon {
			r = horizon - 1
		}
		g := graph.New(total)
		for _, e := range static {
			if err := g.AddEdge(e.U, e.V); err != nil {
				panic(err) // unreachable: all indices in range by construction
			}
		}
		for v := range nw.W {
			ls, err := m.LabelsAt(v, r)
			if err != nil {
				panic(err) // unreachable: r clamped to horizon
			}
			for _, j := range ls.Labels() {
				if err := g.AddEdge(nw.Relays[j-1], nw.W[v]); err != nil {
					panic(err) // unreachable
				}
			}
		}
		return g
	}
	nw.Net = dynet.NewFunc(total, snapshot)
	return nw, nil
}

// BuildFromSchedule exposes buildFromSchedule for tests and tools that
// supply their own schedule (e.g. benign schedules, or the M′ twin).
func BuildFromSchedule(m *multigraph.Multigraph, chainLen int) (*Network, error) {
	return buildFromSchedule(m, chainLen)
}
