package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"anondyn/internal/obs"
)

// Journal is the campaign's durable result stream: one JSON-encoded Result
// per line, appended (and fsynced) as each job completes. The file is the
// unit of resume — a killed campaign restarts with ReadJournal's keys as
// Options.Done and recomputes only what is missing. The journal is
// append-only and idempotent by job key: a key is written at most once per
// campaign, and re-running a finished campaign with resume writes nothing.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	// appendNS, when non-nil, records the wall time of each Append —
	// write plus fsync, the campaign's durability tax. Set via Observe.
	appendNS *obs.Histogram
}

// Observe routes append+fsync latency into col's obs.SweepJournalAppendNS
// histogram. A nil collector detaches the journal from observation again;
// either way the append path itself is unchanged.
func (j *Journal) Observe(col *obs.Collector) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendNS = col.Histogram(obs.SweepJournalAppendNS)
}

// OpenJournal opens the journal at path. With resume, existing rows are
// kept and new rows append after them; otherwise the file is truncated and
// the campaign starts from zero.
func OpenJournal(path string, resume bool) (*Journal, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one completed result and syncs it to stable storage, so a
// result the engine reported done survives any subsequent kill.
func (j *Journal) Append(r Result) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: encode journal row %s: %w", r.Key, err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	start := j.appendNS.Start()
	defer j.appendNS.Stop(start)
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("sweep: append journal row %s: %w", r.Key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads a journal's completed results keyed by job key — the
// Options.Done input of a resumed run. A missing file is an empty journal.
// A torn final line (the process was killed mid-append) is dropped: its job
// simply re-runs. Anything else malformed, and any duplicated job key, is
// an error — a duplicate means some job executed twice, which the resume
// contract forbids, so the audit fails loudly rather than silently keeping
// either row.
func ReadJournal(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Result{}, nil
		}
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	done := make(map[string]Result)
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-1 {
				break // torn tail from a mid-append kill; the job re-runs
			}
			return nil, fmt.Errorf("sweep: journal %s line %d: %w", path, i+1, err)
		}
		if r.Key == "" {
			return nil, fmt.Errorf("sweep: journal %s line %d has no job key", path, i+1)
		}
		if _, dup := done[r.Key]; dup {
			return nil, fmt.Errorf("sweep: journal %s line %d: job %s appears twice — some job was executed twice", path, i+1, r.Key)
		}
		done[r.Key] = r
	}
	return done, nil
}
