package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"anondyn/internal/obs"
)

// Journal is the campaign's durable result stream: one JSON-encoded Result
// per line, appended (and fsynced) as each job completes. The file is the
// unit of resume — a killed campaign restarts with ReadJournal's keys as
// Options.Done and recomputes only what is missing. The journal is
// append-only and idempotent by job key: a key is written at most once per
// campaign, and re-running a finished campaign with resume writes nothing.
//
// Durability convention: a row's trailing newline is its commit marker. A
// kill can land mid-write, leaving a torn tail — any final bytes not ending
// in '\n', or a final line that does not parse as a Result. Torn bytes are
// never data: ReadJournal ignores them and OpenJournal(resume) truncates
// them before appending, so the job behind a torn row simply re-runs and
// re-appends. Without the truncation a fresh append would concatenate onto
// the torn fragment and manufacture a mid-file unparseable line that no
// later resume could ever forgive.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	// appendNS, when non-nil, records the wall time of each Append —
	// write plus fsync, the campaign's durability tax. Set via Observe.
	appendNS *obs.Histogram
}

// Observe routes append+fsync latency into col's obs.SweepJournalAppendNS
// histogram. A nil collector detaches the journal from observation again;
// either way the append path itself is unchanged.
func (j *Journal) Observe(col *obs.Collector) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendNS = col.Histogram(obs.SweepJournalAppendNS)
}

// OpenJournal opens the journal at path. With resume, existing rows are
// kept — after any torn tail left by a mid-append kill is truncated away —
// and new rows append after them; otherwise the file is truncated and the
// campaign starts from zero.
func OpenJournal(path string, resume bool) (*Journal, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
		if err := truncateTornTail(path); err != nil {
			return nil, err
		}
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// truncateTornTail removes a torn tail before a resume appends to the file:
// everything after the last committed row (the last newline-terminated line
// that is blank or parses as a keyed Result) is cut. Committed rows are
// never touched — mid-file corruption is left in place for ReadJournal's
// audit to report loudly rather than silently amputated. The truncation is
// fsynced so a kill immediately after the repair cannot resurrect the tail.
func truncateTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("sweep: repair journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var size, cleanEnd int64
	for {
		line, err := br.ReadBytes('\n')
		size += int64(len(line))
		if terminated := len(line) > 0 && line[len(line)-1] == '\n'; terminated {
			if trimmed := bytes.TrimSpace(line); len(trimmed) == 0 || parseRow(trimmed) == nil {
				cleanEnd = size
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("sweep: repair journal %s: %w", path, err)
		}
	}
	if cleanEnd == size {
		return nil
	}
	if err := f.Truncate(cleanEnd); err != nil {
		return fmt.Errorf("sweep: truncate torn journal tail %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync repaired journal %s: %w", path, err)
	}
	return nil
}

// parseRow decodes one journal line into a Result, requiring the job key
// that makes the row addressable; it reports nil on success. It is the
// single definition of "valid row" shared by the reader and the repair.
func parseRow(line []byte) error {
	var r Result
	if err := json.Unmarshal(line, &r); err != nil {
		return err
	}
	if r.Key == "" {
		return errors.New("row has no job key")
	}
	return nil
}

// Append writes one completed result and syncs it to stable storage, so a
// result the engine reported done survives any subsequent kill.
func (j *Journal) Append(r Result) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: encode journal row %s: %w", r.Key, err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	start := j.appendNS.Start()
	defer j.appendNS.Stop(start)
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("sweep: append journal row %s: %w", r.Key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads a journal's completed results keyed by job key — the
// Options.Done input of a resumed run. A missing file is an empty journal.
//
// The file is streamed line by line, so resume memory is bounded by one row
// regardless of journal size (and rows longer than any fixed scanner token
// cap read fine). A torn tail from a mid-append kill — the last non-empty
// line failing to parse, wherever bytes.Split-style accounting would have
// placed it relative to a trailing newline, or any final unterminated
// bytes — is dropped: its job simply re-runs. Anything malformed that is
// *followed* by more data, and any duplicated job key, is an error — a
// duplicate means some job executed twice, which the resume contract
// forbids, so the audit fails loudly rather than silently keeping either
// row.
func ReadJournal(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Result{}, nil
		}
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	defer f.Close()

	done := make(map[string]Result)
	br := bufio.NewReader(f)
	lineNo := 0
	// A parse failure is only forgivable if nothing non-empty follows it —
	// i.e. it is the journal's last non-empty line, hence a torn tail. The
	// error is held here until a later line proves it mid-file.
	var torn error
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return nil, fmt.Errorf("sweep: read journal %s: %w", path, rerr)
		}
		lineNo++
		terminated := len(line) > 0 && line[len(line)-1] == '\n'
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			if torn != nil {
				return nil, torn // the torn line was not the tail after all
			}
			var r Result
			switch {
			case !terminated:
				// Unterminated final bytes never committed (the newline is
				// the commit marker): torn tail, dropped.
			case json.Unmarshal(trimmed, &r) != nil || r.Key == "":
				torn = fmt.Errorf("sweep: journal %s line %d: %v", path, lineNo, parseRow(trimmed))
			default:
				if _, dup := done[r.Key]; dup {
					return nil, fmt.Errorf("sweep: journal %s line %d: job %s appears twice — some job was executed twice", path, lineNo, r.Key)
				}
				done[r.Key] = r
			}
		}
		if errors.Is(rerr, io.EOF) {
			return done, nil
		}
	}
}
