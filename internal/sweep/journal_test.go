package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Result{
		{Key: "a", Proto: "p", N: 5, Trial: 0, Rounds: 3, Count: 5},
		{Key: "b", Proto: "p", N: 5, Trial: 1, Rounds: -1, Failed: true, Err: "unresolved"},
	}
	for _, r := range rows {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || done["a"] != rows[0] || done["b"] != rows[1] {
		t.Fatalf("round trip = %+v", done)
	}
}

func TestReadJournalMissingFileIsEmpty(t *testing.T) {
	done, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(done) != 0 {
		t.Fatalf("missing journal: %v, %v", done, err)
	}
}

func TestReadJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"key":"a","proto":"p","n":5,"trial":0,"rounds":3}` + "\n" + `{"key":"b","pro`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done["a"].Rounds != 3 {
		t.Fatalf("torn tail not dropped: %+v", done)
	}
}

func TestReadJournalAuditsDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	row := `{"key":"a","proto":"p","n":5,"trial":0,"rounds":3}` + "\n"
	if err := os.WriteFile(path, []byte(row+row), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate key must fail the audit, got %v", err)
	}
}

func TestReadJournalRejectsMalformedMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := "garbage\n" + `{"key":"a","rounds":3}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("malformed middle line must error")
	}
}

// The resume contract, end to end: kill a campaign mid-flight with a
// context cancel, restart it with resume, and require (1) the merged
// results are byte-identical to an uninterrupted run, (2) no journaled job
// executed twice, and (3) the stitched journal passes the duplicate-key
// audit.
func TestCampaignKillAndResumeByteIdentical(t *testing.T) {
	spec := Spec{Name: "resume-drill", Proto: "drill", Sizes: []int{4, 6, 8}, Trials: 5, Horizon: 3, Seed: 11}

	// The drill protocol records who executed what, so the test can prove
	// non-re-execution rather than assume it.
	var mu sync.Mutex
	executions := make(map[string]int)
	Register("drill", func(_ context.Context, job Job) (Result, error) {
		mu.Lock()
		executions[job.Key]++
		mu.Unlock()
		return Result{Rounds: int(uint64(job.Seed) % 97)}, nil
	})

	dir := t.TempDir()

	// Reference: one uninterrupted run.
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 3, JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTable(ref.Stats)

	// Interrupted run: the job limit models a SIGKILL after 6 jobs.
	mu.Lock()
	executions = make(map[string]int)
	mu.Unlock()
	path := filepath.Join(dir, "j.jsonl")
	part, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 2, JournalPath: path, MaxJobs: 6})
	if !errors.Is(err, ErrJobLimit) {
		t.Fatalf("want ErrJobLimit, got %v", err)
	}
	if part.Executed == 0 || part.Executed >= 15 {
		t.Fatalf("interrupted run executed %d jobs", part.Executed)
	}
	journaled, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(journaled) != part.Executed {
		t.Fatalf("journal holds %d rows, engine completed %d", len(journaled), part.Executed)
	}

	// Resume and finish.
	resumed, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 2, JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(journaled) || resumed.Executed != 15-len(journaled) {
		t.Fatalf("resumed=%d executed=%d journaled=%d", resumed.Resumed, resumed.Executed, len(journaled))
	}

	// (1) Byte-identical aggregated output and identical per-job results.
	if got := FormatTable(resumed.Stats); got != refTable {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", got, refTable)
	}
	for i := range ref.Results {
		if ref.Results[i] != resumed.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ref.Results[i], resumed.Results[i])
		}
	}

	// (2) No job executed twice across kill + resume.
	mu.Lock()
	defer mu.Unlock()
	for key, n := range executions {
		if n != 1 {
			t.Fatalf("job %s executed %d times", key, n)
		}
	}
	if _, rerun := func() (string, bool) {
		for key := range journaled {
			if executions[key] > 1 {
				return key, true
			}
		}
		return "", false
	}(); rerun {
		t.Fatal("a journaled job re-executed on resume")
	}

	// (3) The stitched journal passes the duplicate-key audit and covers
	// every job exactly once.
	final, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 15 {
		t.Fatalf("final journal holds %d rows, want 15", len(final))
	}
}
