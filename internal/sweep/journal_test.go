package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Result{
		{Key: "a", Proto: "p", N: 5, Trial: 0, Rounds: 3, Count: 5},
		{Key: "b", Proto: "p", N: 5, Trial: 1, Rounds: -1, Failed: true, Err: "unresolved"},
	}
	for _, r := range rows {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || done["a"] != rows[0] || done["b"] != rows[1] {
		t.Fatalf("round trip = %+v", done)
	}
}

func TestReadJournalMissingFileIsEmpty(t *testing.T) {
	done, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(done) != 0 {
		t.Fatalf("missing journal: %v, %v", done, err)
	}
}

func TestReadJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"key":"a","proto":"p","n":5,"trial":0,"rounds":3}` + "\n" + `{"key":"b","pro`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done["a"].Rounds != 3 {
		t.Fatalf("torn tail not dropped: %+v", done)
	}
}

func TestReadJournalAuditsDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	row := `{"key":"a","proto":"p","n":5,"trial":0,"rounds":3}` + "\n"
	if err := os.WriteFile(path, []byte(row+row), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate key must fail the audit, got %v", err)
	}
}

func TestReadJournalRejectsMalformedMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := "garbage\n" + `{"key":"a","rounds":3}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("malformed middle line must error")
	}
}

// The resume contract, end to end: kill a campaign mid-flight with a
// context cancel, restart it with resume, and require (1) the merged
// results are byte-identical to an uninterrupted run, (2) no journaled job
// executed twice, and (3) the stitched journal passes the duplicate-key
// audit.
func TestCampaignKillAndResumeByteIdentical(t *testing.T) {
	spec := Spec{Name: "resume-drill", Proto: "drill", Sizes: []int{4, 6, 8}, Trials: 5, Horizon: 3, Seed: 11}

	// The drill protocol records who executed what, so the test can prove
	// non-re-execution rather than assume it.
	var mu sync.Mutex
	executions := make(map[string]int)
	Register("drill", func(_ context.Context, job Job) (Result, error) {
		mu.Lock()
		executions[job.Key]++
		mu.Unlock()
		return Result{Rounds: int(uint64(job.Seed) % 97)}, nil
	})

	dir := t.TempDir()

	// Reference: one uninterrupted run.
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 3, JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTable(ref.Stats)

	// Interrupted run: the job limit models a SIGKILL after 6 jobs.
	mu.Lock()
	executions = make(map[string]int)
	mu.Unlock()
	path := filepath.Join(dir, "j.jsonl")
	part, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 2, JournalPath: path, MaxJobs: 6})
	if !errors.Is(err, ErrJobLimit) {
		t.Fatalf("want ErrJobLimit, got %v", err)
	}
	if part.Executed == 0 || part.Executed >= 15 {
		t.Fatalf("interrupted run executed %d jobs", part.Executed)
	}
	journaled, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(journaled) != part.Executed {
		t.Fatalf("journal holds %d rows, engine completed %d", len(journaled), part.Executed)
	}

	// Resume and finish.
	resumed, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 2, JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(journaled) || resumed.Executed != 15-len(journaled) {
		t.Fatalf("resumed=%d executed=%d journaled=%d", resumed.Resumed, resumed.Executed, len(journaled))
	}

	// (1) Byte-identical aggregated output and identical per-job results.
	if got := FormatTable(resumed.Stats); got != refTable {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", got, refTable)
	}
	for i := range ref.Results {
		if ref.Results[i] != resumed.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ref.Results[i], resumed.Results[i])
		}
	}

	// (2) No job executed twice across kill + resume.
	mu.Lock()
	defer mu.Unlock()
	for key, n := range executions {
		if n != 1 {
			t.Fatalf("job %s executed %d times", key, n)
		}
	}
	if _, rerun := func() (string, bool) {
		for key := range journaled {
			if executions[key] > 1 {
				return key, true
			}
		}
		return "", false
	}(); rerun {
		t.Fatal("a journaled job re-executed on resume")
	}

	// (3) The stitched journal passes the duplicate-key audit and covers
	// every job exactly once.
	final, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 15 {
		t.Fatalf("final journal holds %d rows, want 15", len(final))
	}
}

// The satellite-1 regression: a mid-append kill leaves a torn fragment; a
// resume must truncate it before appending, or the fresh row concatenates
// onto the fragment and manufactures a mid-file unparseable line that every
// later resume rejects. The drill is two full kill → resume cycles: the
// journal must stay byte-identical to a never-killed one throughout.
func TestOpenJournalResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	rowA := Result{Key: "a", Proto: "p", N: 5, Rounds: 3}
	rowB := Result{Key: "b", Proto: "p", N: 5, Trial: 1, Rounds: 4}
	rowC := Result{Key: "c", Proto: "p", N: 5, Trial: 2, Rounds: 5}

	append1 := func(r Result) {
		t.Helper()
		j, err := OpenJournal(path, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	tearTail := func(fragment string) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(fragment); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	clean := func(want ...Result) string {
		t.Helper()
		var sb strings.Builder
		for _, r := range want {
			data, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(data)
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	append1(rowA)
	tearTail(`{"key":"b","pro`) // kill #1 lands mid-append
	append1(rowB)               // resume #1 must repair, then append
	if data, err := os.ReadFile(path); err != nil || string(data) != clean(rowA, rowB) {
		t.Fatalf("after resume 1 journal is not clean (%v):\n%q\nwant\n%q", err, data, clean(rowA, rowB))
	}
	tearTail(`{"key":"c","proto":"p","n":5,`) // kill #2
	append1(rowC)                             // resume #2
	if data, err := os.ReadFile(path); err != nil || string(data) != clean(rowA, rowB, rowC) {
		t.Fatalf("after resume 2 journal is not clean (%v):\n%q\nwant\n%q", err, data, clean(rowA, rowB, rowC))
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || done["a"] != rowA || done["b"] != rowB || done["c"] != rowC {
		t.Fatalf("audit after two kill/resume cycles = %+v, %v", done, err)
	}
}

// An unterminated final line that happens to parse is still torn — the
// trailing newline is the commit marker. Keeping it as done while the next
// append concatenates onto it would both corrupt the file and lose the row,
// so both the reader and the resume repair drop it and let the job re-run.
func TestJournalUnterminatedParseableTailIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"key":"a","proto":"p","n":5,"rounds":3}` + "\n" + `{"key":"b","proto":"p","n":5,"rounds":4}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done["a"].Rounds != 3 {
		t.Fatalf("uncommitted tail not dropped: %+v", done)
	}
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rowB := Result{Key: "b", Proto: "p", N: 5, Rounds: 4}
	if err := j.Append(rowB); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	done, err = ReadJournal(path)
	if err != nil || len(done) != 2 || done["b"] != rowB {
		t.Fatalf("after repair+append: %+v, %v", done, err)
	}
}

// The satellite-2 table test: every torn-write prefix of a valid row —
// including the lengths where the fragment ends in a newline byte, which
// puts it at len(lines)-2 under bytes.Split accounting — must read as a
// dropped tail, never as a mid-file error.
func TestReadJournalTornPrefixTable(t *testing.T) {
	first := `{"key":"a","proto":"p","n":5,"rounds":3}` + "\n"
	// Err carries an escaped newline so the marshaled buffer itself is an
	// interesting boundary; the fragment "...unresolved\" + '\n'" is the
	// off-by-trailing-newline shape the old i==len(lines)-1 check missed.
	full, err := json.Marshal(Result{Key: "b", Proto: "p", N: 5, Trial: 1, Rounds: -1, Failed: true, Err: "unresolved"})
	if err != nil {
		t.Fatal(err)
	}
	full = append(full, '\n')
	for k := 0; k <= len(full); k++ {
		content := first + string(full[:k])
		// A fragment that is itself a complete committed row is not torn.
		complete := k == len(full)
		path := filepath.Join(t.TempDir(), "j.jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		done, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("prefix %d/%d: ReadJournal: %v", k, len(full), err)
		}
		want := 1
		if complete {
			want = 2
		}
		if len(done) != want || done["a"].Rounds != 3 {
			t.Fatalf("prefix %d/%d: got %d rows %+v, want %d", k, len(full), len(done), done, want)
		}
		// The resume repair agrees with the reader: after truncation and a
		// fresh append the journal is byte-clean.
		j, err := OpenJournal(path, true)
		if err != nil {
			t.Fatalf("prefix %d/%d: open: %v", k, len(full), err)
		}
		rowC := Result{Key: "c", Proto: "p", N: 5, Trial: 2, Rounds: 9}
		if err := j.Append(rowC); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		done, err = ReadJournal(path)
		if err != nil {
			t.Fatalf("prefix %d/%d: audit after repair+append: %v", k, len(full), err)
		}
		if len(done) != want+1 || done["c"] != rowC {
			t.Fatalf("prefix %d/%d: after repair+append got %+v", k, len(full), done)
		}
	}
}

// A torn fragment that ends in a newline is forgiven only as the last
// non-empty line; the same fragment mid-file stays a loud error.
func TestReadJournalTornLineWithTrailingNewline(t *testing.T) {
	good := `{"key":"a","proto":"p","n":5,"rounds":3}` + "\n"
	torn := `{"key":"b","pro` + "\n"
	tail := filepath.Join(t.TempDir(), "tail.jsonl")
	if err := os.WriteFile(tail, []byte(good+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := ReadJournal(tail)
	if err != nil || len(done) != 1 {
		t.Fatalf("newline-terminated torn tail must be forgiven: %+v, %v", done, err)
	}
	mid := filepath.Join(t.TempDir(), "mid.jsonl")
	if err := os.WriteFile(mid, []byte(torn+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(mid); err == nil {
		t.Fatal("the same torn line mid-file must fail the audit")
	}
}

// The satellite-3 equivalence check: the streaming reader must agree with a
// slurp-and-split loader on a well-formed journal — including rows far past
// bufio.Scanner's 64KB default token cap, which is why the reader must not
// be a Scanner.
func TestReadJournalStreamingMatchesSlurp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for i := 0; i < 50; i++ {
		r := Result{Key: fmt.Sprintf("job-%03d", i), Proto: "p", N: i + 1, Trial: i, Rounds: i * 3}
		if i == 17 {
			// One row whose line is ~128KB: twice the scanner token cap.
			r.Failed, r.Rounds = true, -1
			r.Err = strings.Repeat("x", 128<<10)
		}
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// The reference loader: the pre-streaming semantics on a clean file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[string]Result)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		ref[r.Key] = r
	}
	if len(got) != len(ref) || len(got) != len(want) {
		t.Fatalf("streaming read %d rows, slurp %d, appended %d", len(got), len(ref), len(want))
	}
	for _, r := range want {
		if got[r.Key] != ref[r.Key] || got[r.Key] != r {
			t.Fatalf("row %s differs: stream %+v slurp %+v", r.Key, got[r.Key], ref[r.Key])
		}
	}
}

// The campaign-level repro from the issue: kill mid-append, resume, kill
// again, resume again — the journal must pass the audit and the final
// output must match an uninterrupted campaign.
func TestCampaignResumeAfterTornTail(t *testing.T) {
	spec := Spec{Name: "torn-drill", Proto: "torn-drill", Sizes: []int{4, 6}, Trials: 3, Horizon: 3, Seed: 5}
	Register("torn-drill", func(_ context.Context, job Job) (Result, error) {
		return Result{Rounds: int(uint64(job.Seed) % 53)}, nil
	})
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 1, JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "j.jsonl")
	for _, kill := range []int{2, 4} { // two kill/resume cycles
		_, err := RunCampaign(context.Background(), spec, CampaignOptions{
			Workers: 1, JournalPath: path, Resume: true, MaxJobs: kill - countRows(t, path),
		})
		if !errors.Is(err, ErrJobLimit) {
			t.Fatalf("drill kill: want ErrJobLimit, got %v", err)
		}
		// The kill lands mid-append: a torn fragment after the last row.
		f, ferr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			t.Fatal(ferr)
		}
		if _, err := f.WriteString(`{"key":"torn-drill/se`); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fin, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 1, JournalPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable(fin.Stats), FormatTable(ref.Stats); got != want {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", got, want)
	}
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(ref.Results) {
		t.Fatalf("final journal holds %d rows, want %d", len(done), len(ref.Results))
	}
}

func countRows(t *testing.T, path string) int {
	t.Helper()
	done, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(done)
}
