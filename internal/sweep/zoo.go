package sweep

import (
	"context"
	"fmt"

	"anondyn/internal/counting"
	"anondyn/internal/runtime"
)

// The zoo campaign: every comparable counting algorithm from the
// counting.Registry measured on a pinned adversary family, so one journal
// holds the rounds-vs-n comparison the paper's cost-of-anonymity question
// is about. For the worst-case protos Job.N is |W| and every proto reports
// the total network size |V| = |W| + 3 as its count; the adversary-family
// protos take Job.N as the total node count. The protos are deterministic
// — the worst-case schedule ignores Job.Seed, the family schedules are
// pure functions of it — so the frozen EXPERIMENTS.md rows are
// reproducible byte-for-byte.

// Registered zoo protocol names. The first six run on the worst-case
// ℳ(DBL)₂ → 𝒢(PD)₂ family (degreeoracle included: Lemma 1's image is
// restricted, so the O(1) counter's flat-4-rounds row sits next to the
// Θ(log n) and Θ(n) curves it contrasts with). The last three measure the
// diversity families: the history-tree counter on T-interval and
// randomized dynamics, and push-sum estimation on join/leave churn. The
// oracle and star entries are absent by design: their model requirements
// (layout side-channel, 𝒢(PD)₁) add nothing over degreeoracle here.
const (
	ProtoZooHistTree     = "zoo-histtree"
	ProtoZooIDCount      = "zoo-idcount"
	ProtoZooIncremental  = "zoo-incremental"
	ProtoZooLeaderState  = "zoo-leaderstate"
	ProtoZooUpperBound   = "zoo-upperbound"
	ProtoZooDegreeOracle = "zoo-degreeoracle"
	ProtoZooTInterval    = "zoo-tinterval"
	ProtoZooJoinLeave    = "zoo-joinleave"
	ProtoZooRandomized   = "zoo-randomized"
)

// zooProto pairs a registry algorithm with the adversary-instance builder
// its campaign measures it on.
type zooProto struct {
	algo  string
	build func(job Job) (*counting.Instance, error)
}

func worstCaseBuild(job Job) (*counting.Instance, error) {
	return counting.WorstCaseInstance(job.N)
}

var zooProtos = map[string]zooProto{
	ProtoZooHistTree:     {"histtree", worstCaseBuild},
	ProtoZooIDCount:      {"idcount", worstCaseBuild},
	ProtoZooIncremental:  {"incremental", worstCaseBuild},
	ProtoZooLeaderState:  {"leaderstate", worstCaseBuild},
	ProtoZooUpperBound:   {"upperbound", worstCaseBuild},
	ProtoZooDegreeOracle: {"degreeoracle", worstCaseBuild},
	ProtoZooTInterval: {"histtree", func(job Job) (*counting.Instance, error) {
		return counting.TIntervalInstance(job.N, 3, job.Seed)
	}},
	ProtoZooJoinLeave: {"pushsum", func(job Job) (*counting.Instance, error) {
		return counting.JoinLeaveInstance(job.N, job.Seed)
	}},
	ProtoZooRandomized: {"histtree", func(job Job) (*counting.Instance, error) {
		return counting.RandomizedInstance(job.N, job.Seed)
	}},
}

// ZooAlgorithms maps each zoo proto to its registry algorithm.
var ZooAlgorithms = func() map[string]string {
	out := make(map[string]string, len(zooProtos))
	for proto, zp := range zooProtos {
		out[proto] = zp.algo
	}
	return out
}()

// WorstCaseZooProtos lists the protos measured on the worst-case family,
// whose counts are unit-consistent at |V| = |W| + 3.
func WorstCaseZooProtos() []string {
	return []string{ProtoZooHistTree, ProtoZooIDCount, ProtoZooIncremental,
		ProtoZooLeaderState, ProtoZooUpperBound, ProtoZooDegreeOracle}
}

func init() {
	for proto, zp := range zooProtos {
		proto, zp := proto, zp
		Register(proto, func(ctx context.Context, job Job) (Result, error) {
			return zooRun(ctx, job, zp)
		})
	}
}

// zooRun executes one registry algorithm on the proto's instance at size
// job.N. An exact algorithm returning a wrong count is an execution fault
// (it would falsify the algorithm's correctness claim), as is an upper
// bound below the truth; an over-counting upper bound and a push-sum
// estimate are the expected measurements and are recorded as-is.
func zooRun(ctx context.Context, job Job, zp zooProto) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	inst, err := zp.build(job)
	if err != nil {
		return Result{}, err
	}
	if job.Horizon > inst.Horizon {
		inst.Horizon = job.Horizon
	}
	entry, err := counting.Lookup(zp.algo)
	if err != nil {
		return Result{}, err
	}
	res := Result{Key: job.Key, Proto: job.Proto, N: job.N, Trial: job.Trial}
	out, err := counting.RunAlgorithm(zp.algo, inst, counting.Runner(runtime.RunSequential))
	if err != nil {
		res.Rounds = -1
		res.Failed = true
		res.Err = err.Error()
		return res, nil
	}
	switch entry.Semantics {
	case counting.SemExact:
		if out.Count != inst.TrueN {
			return Result{}, fmt.Errorf("sweep: %s counted %d on %s (|V| = %d)",
				job.Key, out.Count, inst.Name, inst.TrueN)
		}
	case counting.SemUpperBound:
		if out.Count < inst.TrueN {
			return Result{}, fmt.Errorf("sweep: %s bound %d below the true size %d",
				job.Key, out.Count, inst.TrueN)
		}
	}
	res.Rounds = out.Rounds
	res.Count = out.Count
	return res, nil
}

// BuiltinSet returns a named built-in multi-spec campaign set — several
// specs whose journal rows share one file and aggregate into one combined
// table:
//
//   - "zoo": the comparative counting-algorithm campaign frozen into
//     EXPERIMENTS.md — six registry algorithms on the worst-case family
//     plus the three adversary-diversity specs. The incremental counter's
//     grid stops earlier: its round count grows cubically, so the larger
//     sizes would dominate the whole campaign's wall time without adding
//     information; the join/leave grid stops at the same point because
//     push-sum's convergence rounds grow with the churn horizon.
//   - "zoo-smoke": a seconds-scale subset for CI.
func BuiltinSet(name string) ([]Spec, bool) {
	switch name {
	case "zoo":
		full := []int{4, 13, 40, 121}
		short := []int{4, 13, 40}
		return []Spec{
			{Name: "zoo-histtree", Proto: ProtoZooHistTree, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-idcount", Proto: ProtoZooIDCount, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-incremental", Proto: ProtoZooIncremental, Sizes: short, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-leaderstate", Proto: ProtoZooLeaderState, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-upperbound", Proto: ProtoZooUpperBound, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-degreeoracle", Proto: ProtoZooDegreeOracle, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-tinterval", Proto: ProtoZooTInterval, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-joinleave", Proto: ProtoZooJoinLeave, Sizes: short, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-randomized", Proto: ProtoZooRandomized, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
		}, true
	case "zoo-smoke":
		sizes := []int{4, 7}
		return []Spec{
			{Name: "zoo-histtree", Proto: ProtoZooHistTree, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-idcount", Proto: ProtoZooIDCount, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-incremental", Proto: ProtoZooIncremental, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-leaderstate", Proto: ProtoZooLeaderState, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-upperbound", Proto: ProtoZooUpperBound, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-degreeoracle", Proto: ProtoZooDegreeOracle, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-tinterval", Proto: ProtoZooTInterval, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-joinleave", Proto: ProtoZooJoinLeave, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-randomized", Proto: ProtoZooRandomized, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
		}, true
	}
	return nil, false
}
