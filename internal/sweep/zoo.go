package sweep

import (
	"context"
	"fmt"

	"anondyn/internal/counting"
	"anondyn/internal/runtime"
)

// The zoo campaign: every comparable counting algorithm from the
// counting.Registry measured on the same worst-case ℳ(DBL)₂ → 𝒢(PD)₂
// family, so one journal holds the rounds-vs-n comparison the paper's
// cost-of-anonymity question is about. Job.N is |W|; every proto reports
// the total network size |V| = |W| + 3 as its count. The protos are
// deterministic (the worst-case schedule ignores Job.Seed), so the frozen
// EXPERIMENTS.md rows are reproducible byte-for-byte.

// Registered zoo protocol names, one per comparable registry algorithm.
// The oracle, star, and push-sum entries are absent by design: their model
// requirements (degree oracle, 𝒢(PD)₁, fair adversary) do not hold on the
// worst-case family, which is exactly what counting.Requirements encodes.
const (
	ProtoZooHistTree    = "zoo-histtree"
	ProtoZooIDCount     = "zoo-idcount"
	ProtoZooIncremental = "zoo-incremental"
	ProtoZooLeaderState = "zoo-leaderstate"
	ProtoZooUpperBound  = "zoo-upperbound"
)

// ZooAlgorithms maps each zoo proto to its registry algorithm.
var ZooAlgorithms = map[string]string{
	ProtoZooHistTree:    "histtree",
	ProtoZooIDCount:     "idcount",
	ProtoZooIncremental: "incremental",
	ProtoZooLeaderState: "leaderstate",
	ProtoZooUpperBound:  "upperbound",
}

func init() {
	for proto, algo := range ZooAlgorithms {
		proto, algo := proto, algo
		Register(proto, func(ctx context.Context, job Job) (Result, error) {
			return zooRun(ctx, job, algo)
		})
	}
}

// zooRun executes one registry algorithm on the worst-case instance of
// size job.N. An exact algorithm returning a wrong count is an execution
// fault (it would falsify the algorithm's correctness claim), as is an
// upper bound below the truth; an over-counting upper bound is the
// expected measurement and is recorded as-is.
func zooRun(ctx context.Context, job Job, algo string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	inst, err := counting.WorstCaseInstance(job.N)
	if err != nil {
		return Result{}, err
	}
	if job.Horizon > inst.Horizon {
		inst.Horizon = job.Horizon
	}
	entry, err := counting.Lookup(algo)
	if err != nil {
		return Result{}, err
	}
	res := Result{Key: job.Key, Proto: job.Proto, N: job.N, Trial: job.Trial}
	out, err := counting.RunAlgorithm(algo, inst, counting.Runner(runtime.RunSequential))
	if err != nil {
		res.Rounds = -1
		res.Failed = true
		res.Err = err.Error()
		return res, nil
	}
	switch entry.Semantics {
	case counting.SemExact:
		if out.Count != inst.TrueN {
			return Result{}, fmt.Errorf("sweep: %s counted %d on the size-%d worst case (|V| = %d)",
				job.Key, out.Count, job.N, inst.TrueN)
		}
	case counting.SemUpperBound:
		if out.Count < inst.TrueN {
			return Result{}, fmt.Errorf("sweep: %s bound %d below the true size %d",
				job.Key, out.Count, inst.TrueN)
		}
	}
	res.Rounds = out.Rounds
	res.Count = out.Count
	return res, nil
}

// BuiltinSet returns a named built-in multi-spec campaign set — several
// specs whose journal rows share one file and aggregate into one combined
// table:
//
//   - "zoo": the comparative counting-algorithm campaign frozen into
//     EXPERIMENTS.md — five registry algorithms on the worst-case family.
//     The incremental counter's grid stops earlier: its round count grows
//     cubically, so the larger sizes would dominate the whole campaign's
//     wall time without adding information.
//   - "zoo-smoke": a seconds-scale subset for CI.
func BuiltinSet(name string) ([]Spec, bool) {
	switch name {
	case "zoo":
		full := []int{4, 13, 40, 121}
		short := []int{4, 13, 40}
		return []Spec{
			{Name: "zoo-histtree", Proto: ProtoZooHistTree, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-idcount", Proto: ProtoZooIDCount, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-incremental", Proto: ProtoZooIncremental, Sizes: short, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-leaderstate", Proto: ProtoZooLeaderState, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-upperbound", Proto: ProtoZooUpperBound, Sizes: full, Trials: 1, Horizon: 1, Seed: 99},
		}, true
	case "zoo-smoke":
		sizes := []int{4, 7}
		return []Spec{
			{Name: "zoo-histtree", Proto: ProtoZooHistTree, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-idcount", Proto: ProtoZooIDCount, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-incremental", Proto: ProtoZooIncremental, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-leaderstate", Proto: ProtoZooLeaderState, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
			{Name: "zoo-upperbound", Proto: ProtoZooUpperBound, Sizes: sizes, Trials: 1, Horizon: 1, Seed: 99},
		}, true
	}
	return nil, false
}
