package sweep

import (
	"fmt"
	"testing"
)

func TestDistributionPercentileConvention(t *testing.T) {
	// seq(n) = [1, 2, ..., n], so the element at rank index i is i+1 and
	// every expectation below is readable directly off the convention
	// Pxx = sample[xx*(n-1)/100].
	seq := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	cases := []struct {
		name          string
		rounds        []int
		p50, p90, p99 int
		min, max      int
		failures      int
	}{
		{name: "empty", rounds: nil},
		{name: "all failures", rounds: []int{-1, -1, -1}, failures: 3},
		{name: "single", rounds: []int{7}, p50: 7, p90: 7, p99: 7, min: 7, max: 7},
		{name: "single with failures", rounds: []int{-1, 7, -1}, p50: 7, p90: 7, p99: 7, min: 7, max: 7, failures: 2},
		{name: "two", rounds: []int{3, 9}, p50: 3, p90: 3, p99: 3, min: 3, max: 9},
		// 10 samples: indices 4, 8, 8.
		{name: "ten", rounds: seq(10), p50: 5, p90: 9, p99: 9, min: 1, max: 10},
		// 11 samples: 50*10/100 = 5, 90*10/100 = 9, 99*10/100 = 9.
		{name: "eleven", rounds: seq(11), p50: 6, p90: 10, p99: 10, min: 1, max: 11},
		// 100 samples: 99*99/100 = 98 — and float 0.99*99 = 98.01 agrees.
		{name: "hundred", rounds: seq(100), p50: 50, p90: 90, p99: 99, min: 1, max: 100},
		// 101 samples: the ranks are exact integers (50, 90, 99), the case
		// where float arithmetic under-indexed: 0.99*100 truncated to 98.
		{name: "hundred and one", rounds: seq(101), p50: 51, p90: 91, p99: 100, min: 1, max: 101},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Distribution(tc.rounds)
			if d.Trials != len(tc.rounds) || d.Failures != tc.failures {
				t.Fatalf("trials/failures = %d/%d, want %d/%d", d.Trials, d.Failures, len(tc.rounds), tc.failures)
			}
			got := [5]int{d.P50, d.P90, d.P99, d.Min, d.Max}
			want := [5]int{tc.p50, tc.p90, tc.p99, tc.min, tc.max}
			if got != want {
				t.Fatalf("p50/p90/p99/min/max = %v, want %v", got, want)
			}
		})
	}
}

func TestDistributionMeanSkipsFailures(t *testing.T) {
	d := Distribution([]int{2, -1, 4})
	if d.Mean != 3.0 {
		t.Fatalf("mean = %v, want 3.0 (failures excluded)", d.Mean)
	}
	if d.Trials != 3 || d.Failures != 1 {
		t.Fatalf("trials/failures = %d/%d, want 3/1", d.Trials, d.Failures)
	}
}

// The two renderings must agree column for column; these goldens lock the
// layout, including the min column the table historically dropped.
func TestFormatGoldens(t *testing.T) {
	stats := []GroupStat{
		{Proto: "mdbl-count", N: 13, Dist: Dist{Trials: 4, Mean: 2.25, Min: 2, Max: 3, P50: 2, P90: 3, P99: 3}},
		{Proto: "mdbl-count", N: 40, Dist: Dist{Trials: 4, Failures: 1, Mean: 3, Min: 3, Max: 3, P50: 3, P90: 3, P99: 3}},
	}
	wantTable := "" +
		"proto                    n  trials      mean    min    p50    p90    p99    max  failures\n" +
		"mdbl-count              13       4      2.25      2      2      3      3      3         0\n" +
		"mdbl-count              40       4      3.00      3      3      3      3      3         1\n"
	if got := FormatTable(stats); got != wantTable {
		t.Errorf("FormatTable:\n%q\nwant:\n%q", got, wantTable)
	}
	wantCSV := "" +
		"proto,n,trials,mean,min,p50,p90,p99,max,failures\n" +
		"mdbl-count,13,4,2.250,2,2,3,3,3,0\n" +
		"mdbl-count,40,4,3.000,3,3,3,3,3,1\n"
	if got := FormatCSV(stats); got != wantCSV {
		t.Errorf("FormatCSV:\n%q\nwant:\n%q", got, wantCSV)
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	mk := func(proto string, n, rounds int, failed bool) Result {
		return Result{Proto: proto, N: n, Rounds: rounds, Failed: failed}
	}
	results := []Result{
		mk("b", 10, 3, false),
		mk("a", 20, 5, false),
		mk("a", 10, 2, false),
		mk("a", 10, 4, false),
		mk("a", 10, 0, true),
	}
	want := Aggregate(results)
	// Reversed arrival order must aggregate identically.
	rev := make([]Result, len(results))
	for i, r := range results {
		rev[len(results)-1-i] = r
	}
	got := Aggregate(rev)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("aggregation is order-dependent:\n%v\nvs\n%v", got, want)
	}
	if len(want) != 3 || want[0].Proto != "a" || want[0].N != 10 || want[0].Failures != 1 {
		t.Fatalf("unexpected aggregation: %v", want)
	}
}
