package sweep

// splitmix64 is Vigna's SplitMix64 finalizer: a bijective avalanche mixer
// whose output stream passes BigCrush. It is the standard way to expand one
// user-facing seed into many statistically independent per-job seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// JobSeed derives the RNG seed for one job from the campaign seed and the
// job's grid coordinates (conventionally size then trial index). Every
// coordinate is folded through SplitMix64, so nearby campaign seeds and
// nearby coordinates yield unrelated streams — unlike the additive
// baseSeed+i scheme this replaces, whose per-size streams were identical
// and whose adjacent campaigns overlapped trial-for-trial. A resumed shard
// recomputes exactly the seed the original run used, because the seed
// depends only on (campaign seed, coordinates), never on execution order
// or on a shared rand.Source.
func JobSeed(campaign int64, coords ...uint64) int64 {
	s := splitmix64(uint64(campaign))
	for _, c := range coords {
		s = splitmix64(s ^ splitmix64(c))
	}
	return int64(s)
}
