package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"anondyn/internal/obs"
	"anondyn/internal/sweep"
)

// The HTTP API. All bodies are JSON; errors are {"error": "..."} with a
// 4xx/5xx status. Routes:
//
//	POST /campaigns                 submit a campaign (spec, specs, or set)
//	GET  /campaigns                 list campaigns with live progress
//	GET  /campaigns/{id}            one campaign's status
//	GET  /campaigns/{id}/stream     chunked JSONL of journal rows, following
//	                                appends until the campaign is terminal
//	GET  /campaigns/{id}/results    aggregated per-(proto, n) distributions
//	GET  /campaigns/{id}/metrics    the campaign's collector snapshot
//	POST /campaigns/{id}/cancel     stop a queued or running campaign
//	GET  /metrics                   daemon + per-campaign snapshots
//	GET  /healthz                   liveness probe
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /campaigns/{id}/metrics", s.handleCampaignMetrics)
	s.mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// SubmitRequest is the submission body. Exactly one of Set, Spec, or Specs
// selects the work; the rest tune the run.
type SubmitRequest struct {
	// Set names a built-in multi-spec set (sweep.BuiltinSet): "zoo",
	// "zoo-smoke".
	Set string `json:"set,omitempty"`
	// Spec is one inline campaign spec.
	Spec *sweep.Spec `json:"spec,omitempty"`
	// Specs is an explicit multi-spec campaign sharing one journal.
	Specs []sweep.Spec `json:"specs,omitempty"`
	// Workers overrides the daemon's default per-campaign pool size.
	Workers int `json:"workers,omitempty"`
	// Retries overrides the daemon's default per-job retry budget.
	Retries int `json:"retries,omitempty"`
	// ThrottleMS sleeps this long before every executed job — the
	// resume-drill knob that keeps a fast campaign in flight long enough
	// for a kill/restart drill to land mid-campaign.
	ThrottleMS int `json:"throttle_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad submission body: %w", err))
		return
	}
	m, err := buildMeta(req, s.workers, s.retries)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.submit(m)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errServerClosed) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, c.status())
}

// buildMeta validates a submission into a durable record: the spec source
// is unambiguous, every spec expands, every proto is registered, and job
// keys are unique across the whole set (the specs share one journal, whose
// audit would otherwise report false duplicates).
func buildMeta(req SubmitRequest, defWorkers, defRetries int) (Meta, error) {
	m := Meta{
		Set:        req.Set,
		Workers:    req.Workers,
		Retries:    req.Retries,
		ThrottleMS: req.ThrottleMS,
	}
	if m.Workers == 0 {
		m.Workers = defWorkers
	}
	if m.Retries == 0 {
		m.Retries = defRetries
	}
	if m.Workers < 0 || m.Retries < 0 || m.ThrottleMS < 0 {
		return Meta{}, errors.New("workers, retries, and throttle_ms must be >= 0")
	}
	sources := 0
	switch {
	case req.Set != "":
		sources++
		specs, ok := sweep.BuiltinSet(req.Set)
		if !ok {
			if spec, okOne := sweep.Builtin(req.Set); okOne {
				specs, ok = []sweep.Spec{spec}, true
			}
		}
		if !ok {
			return Meta{}, fmt.Errorf("unknown built-in set %q (have: figures, smoke, zoo, zoo-smoke)", req.Set)
		}
		m.Specs = specs
	case req.Spec != nil:
		sources++
		m.Specs = []sweep.Spec{*req.Spec}
	case len(req.Specs) > 0:
		sources++
		m.Specs = req.Specs
	}
	if req.Spec != nil && len(req.Specs) > 0 {
		sources++
	}
	if req.Set != "" && (req.Spec != nil || len(req.Specs) > 0) {
		sources++
	}
	if sources != 1 {
		return Meta{}, errors.New(`submission needs exactly one of "set", "spec", or "specs"`)
	}
	keys := make(map[string]string)
	for _, spec := range m.Specs {
		if _, ok := sweep.Proto(spec.Proto); !ok {
			return Meta{}, fmt.Errorf("spec %q names unregistered protocol %q", spec.Name, spec.Proto)
		}
		jobs, err := spec.Jobs()
		if err != nil {
			return Meta{}, err
		}
		for _, job := range jobs {
			if prev, dup := keys[job.Key]; dup {
				return Meta{}, fmt.Errorf("specs %q and %q collide on job key %s (one shared journal per campaign)", prev, spec.Name, job.Key)
			}
			keys[job.Key] = spec.Name
		}
		m.TotalJobs += len(jobs)
	}
	return m, nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	all := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		all = append(all, c)
	}
	s.mu.Unlock()
	statuses := make([]Status, 0, len(all))
	for _, c := range all {
		statuses = append(statuses, c.status())
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID < statuses[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": statuses})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *campaign {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
	}
	return c
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c := s.lookup(w, r); c != nil {
		writeJSON(w, http.StatusOK, c.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	if m, err := c.requestCancel(s.m.canceled); err != nil {
		httpError(w, http.StatusConflict, err)
	} else {
		writeJSON(w, http.StatusOK, m)
	}
}

// handleResults serves the campaign's aggregates, recomputed from the
// journal so the response always reflects exactly the durable rows (the
// read is also the audit: a corrupt journal is a loud 500, not a quiet
// table). ?format=table or ?format=csv render the text forms the CLI
// prints; the default is JSON.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	rows, err := sweep.ReadJournal(c.journal)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	results := make([]sweep.Result, 0, len(rows))
	for _, res := range rows {
		results = append(results, res)
	}
	stats := sweep.Aggregate(results)
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"id":    c.snapshot().ID,
			"state": c.snapshot().State,
			"rows":  len(results),
			"stats": stats,
		})
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, sweep.FormatTable(stats))
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_, _ = io.WriteString(w, sweep.FormatCSV(stats))
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json, table, csv)", r.URL.Query().Get("format")))
	}
}

// handleStream serves the journal as chunked JSONL, straight off the file:
// every committed (newline-terminated) row already present, then new rows
// as they append, until the campaign reaches a terminal state or the client
// goes away. Torn bytes at the tail are never emitted — the stream shares
// the journal's commit marker.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	s.m.streams.Add(1)
	defer s.m.streams.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	var off int64
	emit := func() bool {
		n, wrote, err := copyCommittedRows(w, c.journal, off)
		if err != nil {
			return false // client gone or journal unreadable; just stop
		}
		off = n
		if wrote {
			flusher.Flush()
		}
		return true
	}
	if !emit() {
		return
	}
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			emit() // final drain: rows between the last tick and the close
			return
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			if !emit() {
				return
			}
		}
	}
}

// copyCommittedRows writes every complete line of path starting at offset
// off to w and returns the new offset. Memory is bounded by one row; an
// unterminated tail (a row mid-append) is left for the next call.
func copyCommittedRows(w io.Writer, path string, off int64) (int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return off, false, nil // journal not created yet
		}
		return off, false, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return off, false, err
	}
	br := bufio.NewReader(f)
	wrote := false
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return off, wrote, rerr
		}
		if len(line) > 0 && line[len(line)-1] == '\n' {
			if _, err := w.Write(line); err != nil {
				return off, wrote, err
			}
			off += int64(len(line))
			wrote = true
		}
		if rerr != nil {
			return off, wrote, nil
		}
	}
}

// handleCampaignMetrics serves one campaign's collector snapshot (queue
// depth, jobs/sec, per-job and journal append+fsync latency) through the
// shared obs.Handler.
func (s *Server) handleCampaignMetrics(w http.ResponseWriter, r *http.Request) {
	if c := s.lookup(w, r); c != nil {
		obs.Handler(c.col).ServeHTTP(w, r)
	}
}

// handleMetrics serves the daemon's own snapshot plus every campaign's,
// keyed by ID — one scrape shows service health and per-campaign engine
// throughput side by side.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	cols := make(map[string]*obs.Collector, len(s.campaigns))
	for id, c := range s.campaigns {
		ids = append(ids, id)
		cols[id] = c.col
	}
	s.mu.Unlock()
	payload := struct {
		Daemon    *obs.Snapshot            `json:"daemon"`
		Campaigns map[string]*obs.Snapshot `json:"campaigns"`
	}{
		Daemon:    s.col.Snapshot(),
		Campaigns: make(map[string]*obs.Snapshot, len(ids)),
	}
	for _, id := range ids {
		payload.Campaigns[id] = cols[id].Snapshot()
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.campaigns)
	closed := s.closed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        !closed,
		"campaigns": n,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
