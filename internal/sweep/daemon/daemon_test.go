package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anondyn/internal/obs"
	"anondyn/internal/sweep"
)

// testClient wraps one daemon instance behind an httptest server.
type testClient struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newTestClient(t *testing.T, dir string, cfg Config) *testClient {
	t.Helper()
	cfg.Dir = dir
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testClient{t: t, srv: srv, ts: httptest.NewServer(srv.Handler())}
}

func (tc *testClient) close() {
	tc.ts.Close()
	if err := tc.srv.Close(); err != nil {
		tc.t.Errorf("server close: %v", err)
	}
}

func (tc *testClient) post(path string, body any, wantCode int) map[string]any {
	tc.t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := http.Post(tc.ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		tc.t.Fatalf("POST %s: status %d, want %d: %s", path, resp.StatusCode, wantCode, payload)
	}
	var out map[string]any
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &out); err != nil {
			tc.t.Fatalf("POST %s: bad JSON %q: %v", path, payload, err)
		}
	}
	return out
}

func (tc *testClient) get(path string, wantCode int) map[string]any {
	tc.t.Helper()
	resp, err := http.Get(tc.ts.URL + path)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		tc.t.Fatalf("GET %s: status %d, want %d: %s", path, resp.StatusCode, wantCode, payload)
	}
	var out map[string]any
	if err := json.Unmarshal(payload, &out); err != nil {
		tc.t.Fatalf("GET %s: bad JSON %q: %v", path, payload, err)
	}
	return out
}

// waitState polls a campaign's status until it reaches want.
func (tc *testClient) waitState(id string, want State) map[string]any {
	tc.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := tc.get("/campaigns/"+id, http.StatusOK)
		if st["state"] == string(want) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	tc.t.Fatalf("campaign %s never reached state %s", id, want)
	return nil
}

// waitProgress polls until at least n jobs are journaled.
func (tc *testClient) waitProgress(id string, n int) {
	tc.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := tc.get("/campaigns/"+id, http.StatusOK)
		if int(st["live_done_jobs"].(float64)) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tc.t.Fatalf("campaign %s never journaled %d jobs", id, n)
}

// The basic service loop: submit a spec over HTTP, watch it run to done,
// stream the full journal, fetch aggregates in all three formats, and see
// the campaign's engine metrics on both metrics endpoints.
func TestDaemonSubmitStreamResults(t *testing.T) {
	sweep.Register("daemon-basic-drill", func(_ context.Context, job sweep.Job) (sweep.Result, error) {
		return sweep.Result{Rounds: job.N * 10, Count: job.N}, nil
	})
	tc := newTestClient(t, t.TempDir(), Config{Workers: 2})
	defer tc.close()

	spec := sweep.Spec{Name: "basic", Proto: "daemon-basic-drill", Sizes: []int{3, 5, 7}, Trials: 4, Horizon: 2, Seed: 1}
	created := tc.post("/campaigns", map[string]any{"spec": spec}, http.StatusCreated)
	id := created["id"].(string)
	if created["state"] != string(StateQueued) && created["state"] != string(StateRunning) {
		t.Fatalf("fresh campaign state = %v", created["state"])
	}
	if int(created["total_jobs"].(float64)) != 12 {
		t.Fatalf("total_jobs = %v, want 12", created["total_jobs"])
	}
	st := tc.waitState(id, StateDone)
	if int(st["live_done_jobs"].(float64)) != 12 {
		t.Fatalf("done campaign live_done_jobs = %v", st["live_done_jobs"])
	}

	// The stream endpoint replays the whole journal for a finished
	// campaign and then closes.
	resp, err := http.Get(tc.ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r sweep.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("stream row %q: %v", sc.Text(), err)
		}
		if r.Rounds != r.N*10 {
			t.Fatalf("streamed row %+v", r)
		}
		rows++
	}
	if rows != 12 {
		t.Fatalf("stream delivered %d rows, want 12", rows)
	}

	res := tc.get("/campaigns/"+id+"/results", http.StatusOK)
	if int(res["rows"].(float64)) != 12 || len(res["stats"].([]any)) != 3 {
		t.Fatalf("results = %v", res)
	}
	for _, format := range []string{"table", "csv"} {
		r2, err := http.Get(tc.ts.URL + "/campaigns/" + id + "/results?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if !strings.Contains(string(text), "daemon-basic-drill") {
			t.Fatalf("%s output missing proto:\n%s", format, text)
		}
	}

	// Engine metrics landed in the campaign's own collector.
	cm := tc.get("/campaigns/"+id+"/metrics", http.StatusOK)
	if got := cm["counters"].(map[string]any)[obs.SweepJobs]; got != float64(12) {
		t.Fatalf("campaign %s = %v, want 12", obs.SweepJobs, got)
	}
	dm := tc.get("/metrics", http.StatusOK)
	daemonCounters := dm["daemon"].(map[string]any)["counters"].(map[string]any)
	if daemonCounters[obs.DaemonCampaignsSubmitted] != float64(1) || daemonCounters[obs.DaemonCampaignsDone] != float64(1) {
		t.Fatalf("daemon counters = %v", daemonCounters)
	}
	if _, ok := dm["campaigns"].(map[string]any)[id]; !ok {
		t.Fatalf("combined /metrics missing campaign %s: %v", id, dm)
	}
	health := tc.get("/healthz", http.StatusOK)
	if health["ok"] != true {
		t.Fatalf("healthz = %v", health)
	}
}

// A named built-in set resolves server-side, shares one journal, and lands
// the same row count the CLI produces.
func TestDaemonSubmitBuiltinSet(t *testing.T) {
	tc := newTestClient(t, t.TempDir(), Config{Workers: 2})
	defer tc.close()
	created := tc.post("/campaigns", map[string]any{"set": "zoo-smoke", "workers": 2}, http.StatusCreated)
	id := created["id"].(string)
	if int(created["total_jobs"].(float64)) != 18 { // 9 specs × 2 sizes × 1 trial
		t.Fatalf("zoo-smoke total_jobs = %v, want 18", created["total_jobs"])
	}
	tc.waitState(id, StateDone)
	done, err := sweep.ReadJournal(filepath.Join(tc.srv.dir, id, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 18 {
		t.Fatalf("zoo-smoke journal holds %d rows, want 18", len(done))
	}
}

// The tentpole's acceptance drill: submit, stream a prefix, kill the daemon
// mid-campaign, restart on the same data directory, and require the resumed
// campaign to complete with a journal byte-identical to an uninterrupted
// run's (Workers=1 pins append order to job order).
func TestDaemonKillRestartResumesByteIdentical(t *testing.T) {
	var started atomic.Int64
	gate := make(chan struct{})
	sweep.Register("daemon-block-drill", func(ctx context.Context, job sweep.Job) (sweep.Result, error) {
		if started.Add(1) > 2 {
			select {
			case <-gate:
			case <-ctx.Done():
				return sweep.Result{}, ctx.Err()
			}
		}
		return sweep.Result{Rounds: job.N + job.Trial}, nil
	})
	spec := sweep.Spec{Name: "drill", Proto: "daemon-block-drill", Sizes: []int{3, 5, 7}, Trials: 2, Horizon: 1, Seed: 9}

	dir := t.TempDir()
	tc := newTestClient(t, dir, Config{})
	created := tc.post("/campaigns", map[string]any{"spec": spec, "workers": 1}, http.StatusCreated)
	id := created["id"].(string)

	// A live streamer must see the first two rows before the kill.
	streamResp, err := http.Get(tc.ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(chan int, 1)
	go func() {
		defer streamResp.Body.Close()
		n := 0
		sc := bufio.NewScanner(streamResp.Body)
		for n < 2 && sc.Scan() {
			n++
		}
		streamed <- n
	}()
	tc.waitProgress(id, 2)
	if n := <-streamed; n != 2 {
		t.Fatalf("streamer saw %d rows before the kill, want 2", n)
	}

	// Kill: Close cancels the run mid-campaign; the durable state stays
	// "running", which is what re-queues it at the next startup.
	tc.close()
	journal := filepath.Join(dir, "campaigns", id, "journal.jsonl")
	prefix, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sweep.ReadJournal(journal); len(got) != 2 {
		t.Fatalf("pre-restart journal holds %d rows, want 2", len(got))
	}
	meta, err := readMeta(filepath.Join(dir, "campaigns", id))
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateRunning {
		t.Fatalf("killed campaign persisted state %q, want running", meta.State)
	}

	// Restart: the campaign resumes without re-executing journaled jobs.
	close(gate)
	tc2 := newTestClient(t, dir, Config{})
	defer tc2.close()
	st := tc2.waitState(id, StateDone)
	if int(st["live_done_jobs"].(float64)) != 6 {
		t.Fatalf("resumed campaign finished with live_done_jobs = %v, want 6", st["live_done_jobs"])
	}
	dm := tc2.get("/metrics", http.StatusOK)
	if got := dm["daemon"].(map[string]any)["counters"].(map[string]any)[obs.DaemonCampaignsResumed]; got != float64(1) {
		t.Fatalf("%s = %v, want 1", obs.DaemonCampaignsResumed, got)
	}

	final, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// The committed prefix survives the kill byte-for-byte...
	if !bytes.HasPrefix(final, prefix) {
		t.Fatalf("resume rewrote the committed prefix:\n%q\nvs\n%q", final, prefix)
	}
	// ...and the whole file matches an uninterrupted single-worker run.
	refDir := t.TempDir()
	tcRef := newTestClient(t, refDir, Config{})
	defer tcRef.close()
	refCreated := tcRef.post("/campaigns", map[string]any{"spec": spec, "workers": 1}, http.StatusCreated)
	refID := refCreated["id"].(string)
	tcRef.waitState(refID, StateDone)
	ref, err := os.ReadFile(filepath.Join(refDir, "campaigns", refID, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatalf("resumed journal differs from uninterrupted reference:\n%q\nvs\n%q", final, ref)
	}
	if _, err := sweep.ReadJournal(journal); err != nil {
		t.Fatalf("final journal fails the audit: %v", err)
	}
}

// A killed daemon that tore a journal row mid-append must repair it on
// restart: the fragment is truncated, its job re-runs, and the audit stays
// clean — the satellite bugfixes exercised through the service layer.
func TestDaemonRestartRepairsTornJournal(t *testing.T) {
	sweep.Register("daemon-torn-drill", func(_ context.Context, job sweep.Job) (sweep.Result, error) {
		return sweep.Result{Rounds: job.N}, nil
	})
	spec := sweep.Spec{Name: "torn", Proto: "daemon-torn-drill", Sizes: []int{4, 6}, Trials: 2, Horizon: 1, Seed: 3}

	dir := t.TempDir()
	tc := newTestClient(t, dir, Config{})
	created := tc.post("/campaigns", map[string]any{"spec": spec, "workers": 1}, http.StatusCreated)
	id := created["id"].(string)
	tc.waitState(id, StateDone)
	tc.close()

	// Forge the kill-mid-append aftermath: non-terminal state, torn tail.
	cdir := filepath.Join(dir, "campaigns", id)
	meta, err := readMeta(cdir)
	if err != nil {
		t.Fatal(err)
	}
	meta.State = StateRunning
	if err := writeMeta(cdir, meta); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(cdir, "journal.jsonl")
	clean, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last committed row and leave a fragment of it.
	lines := bytes.SplitAfter(clean, []byte("\n"))
	torn := append(bytes.Join(lines[:len(lines)-2], nil), lines[len(lines)-2][:9]...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	tc2 := newTestClient(t, dir, Config{})
	defer tc2.close()
	tc2.waitState(id, StateDone)
	final, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, clean) {
		t.Fatalf("repaired journal differs from the clean run:\n%q\nvs\n%q", final, clean)
	}
}

// Cancellation: a running campaign settles to canceled, keeps its journaled
// rows, and is not re-queued by a restart; canceling twice conflicts.
func TestDaemonCancel(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	sweep.Register("daemon-cancel-drill", func(ctx context.Context, job sweep.Job) (sweep.Result, error) {
		if job.Trial > 0 {
			select {
			case <-gate:
			case <-ctx.Done():
				return sweep.Result{}, ctx.Err()
			}
		}
		return sweep.Result{Rounds: 1}, nil
	})
	spec := sweep.Spec{Name: "cancelme", Proto: "daemon-cancel-drill", Sizes: []int{5}, Trials: 4, Horizon: 1, Seed: 2}

	dir := t.TempDir()
	tc := newTestClient(t, dir, Config{})
	created := tc.post("/campaigns", map[string]any{"spec": spec, "workers": 1}, http.StatusCreated)
	id := created["id"].(string)
	tc.waitProgress(id, 1)
	tc.post("/campaigns/"+id+"/cancel", nil, http.StatusOK)
	st := tc.waitState(id, StateCanceled)
	if st["error"] == "" {
		t.Fatalf("canceled campaign carries no cause: %v", st)
	}
	tc.post("/campaigns/"+id+"/cancel", nil, http.StatusConflict)
	tc.close()

	tc2 := newTestClient(t, dir, Config{})
	defer tc2.close()
	st2 := tc2.get("/campaigns/"+id, http.StatusOK)
	if st2["state"] != string(StateCanceled) {
		t.Fatalf("canceled campaign resurrected as %v", st2["state"])
	}
	dm := tc2.get("/metrics", http.StatusOK)
	if got := dm["daemon"].(map[string]any)["counters"].(map[string]any)[obs.DaemonCampaignsResumed]; got != nil && got != float64(0) {
		t.Fatalf("canceled campaign was re-queued: %v", got)
	}
}

// MaxCampaigns bounds concurrency, not admission: with one slot, a second
// submission waits in queued until the first finishes, then runs.
func TestDaemonMaxCampaignsQueues(t *testing.T) {
	gate := make(chan struct{})
	sweep.Register("daemon-slot-drill", func(ctx context.Context, _ sweep.Job) (sweep.Result, error) {
		select {
		case <-gate:
			return sweep.Result{Rounds: 1}, nil
		case <-ctx.Done():
			return sweep.Result{}, ctx.Err()
		}
	})
	sweep.Register("daemon-fast-drill", func(_ context.Context, _ sweep.Job) (sweep.Result, error) {
		return sweep.Result{Rounds: 1}, nil
	})
	tc := newTestClient(t, t.TempDir(), Config{MaxCampaigns: 1})
	defer tc.close()

	a := tc.post("/campaigns", map[string]any{"spec": sweep.Spec{
		Name: "slot", Proto: "daemon-slot-drill", Sizes: []int{3}, Trials: 1, Horizon: 1, Seed: 1}}, http.StatusCreated)["id"].(string)
	tc.waitState(a, StateRunning)
	b := tc.post("/campaigns", map[string]any{"spec": sweep.Spec{
		Name: "fast", Proto: "daemon-fast-drill", Sizes: []int{3}, Trials: 1, Horizon: 1, Seed: 1}}, http.StatusCreated)["id"].(string)
	time.Sleep(50 * time.Millisecond) // give a buggy scheduler room to misbehave
	if st := tc.get("/campaigns/"+b, http.StatusOK); st["state"] != string(StateQueued) {
		t.Fatalf("second campaign state = %v with one slot busy, want queued", st["state"])
	}
	close(gate)
	tc.waitState(a, StateDone)
	tc.waitState(b, StateDone)
}

// Submission validation: every malformed body is a 400 before anything is
// enqueued, unknown campaigns are 404s, and a closed server refuses with
// 503.
func TestDaemonValidationAndErrors(t *testing.T) {
	tc := newTestClient(t, t.TempDir(), Config{})
	okSpec := sweep.Spec{Name: "v", Proto: sweep.ProtoMDBLCount, Sizes: []int{3}, Trials: 1, Horizon: 2, Seed: 1}
	for name, body := range map[string]any{
		"empty":          map[string]any{},
		"set and spec":   map[string]any{"set": "smoke", "spec": okSpec},
		"unknown set":    map[string]any{"set": "no-such-set"},
		"unknown proto":  map[string]any{"spec": sweep.Spec{Name: "x", Proto: "nope", Sizes: []int{3}, Trials: 1, Horizon: 1}},
		"invalid spec":   map[string]any{"spec": sweep.Spec{Name: "x", Proto: sweep.ProtoMDBLCount, Trials: 1, Horizon: 1}},
		"duplicate keys": map[string]any{"specs": []sweep.Spec{okSpec, okSpec}},
		"negative knob":  map[string]any{"spec": okSpec, "throttle_ms": -1},
	} {
		if list := tc.get("/campaigns", http.StatusOK); len(list["campaigns"].([]any)) != 0 {
			t.Fatalf("%s: campaigns leaked into the queue: %v", name, list)
		}
		tc.post("/campaigns", body, http.StatusBadRequest)
	}
	// Unknown fields fail loudly, same as spec files.
	resp, err := http.Post(tc.ts.URL+"/campaigns", "application/json", strings.NewReader(`{"sepc":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd field accepted: %d", resp.StatusCode)
	}
	tc.get("/campaigns/c999999", http.StatusNotFound)
	tc.post("/campaigns/c999999/cancel", nil, http.StatusNotFound)
	tc.close()
	resp, err = http.Post(tc.ts.URL+"/campaigns", "application/json", strings.NewReader(`{"set":"smoke"}`))
	if err == nil { // the listener may already be down, which is also fine
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("closed server accepted a submission: %d", resp.StatusCode)
		}
	}
}

// The heavy-traffic shape: N concurrent submitters and M streamers per
// campaign against one daemon, race detector on in CI. Every campaign must
// complete, every stream must deliver the full journal, and every journal
// must pass the audit.
func TestDaemonConcurrentClients(t *testing.T) {
	sweep.Register("daemon-load-drill", func(_ context.Context, job sweep.Job) (sweep.Result, error) {
		return sweep.Result{Rounds: int(uint64(job.Seed) % 31)}, nil
	})
	tc := newTestClient(t, t.TempDir(), Config{MaxCampaigns: 4, Workers: 2})
	defer tc.close()

	const submitters, streamers = 4, 3
	const jobsPer = 6 // 2 sizes × 3 trials
	var wg sync.WaitGroup
	ids := make([]string, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := sweep.Spec{
				Name: fmt.Sprintf("load-%d", i), Proto: "daemon-load-drill",
				Sizes: []int{3 + i, 9 + i}, Trials: 3, Horizon: 1, Seed: int64(100 + i),
			}
			created := tc.post("/campaigns", map[string]any{"spec": spec}, http.StatusCreated)
			id := created["id"].(string)
			ids[i] = id
			var inner sync.WaitGroup
			for s := 0; s < streamers; s++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					resp, err := http.Get(tc.ts.URL + "/campaigns/" + id + "/stream")
					if err != nil {
						t.Error(err)
						return
					}
					defer resp.Body.Close()
					rows := 0
					sc := bufio.NewScanner(resp.Body)
					for sc.Scan() {
						rows++
					}
					if rows != jobsPer {
						t.Errorf("campaign %s: streamer saw %d rows, want %d", id, rows, jobsPer)
					}
				}()
			}
			// A poller hammering status and the combined metrics endpoint
			// while the campaign runs.
			inner.Add(1)
			go func() {
				defer inner.Done()
				for j := 0; j < 20; j++ {
					tc.get("/campaigns/"+id, http.StatusOK)
					tc.get("/metrics", http.StatusOK)
				}
			}()
			tc.waitState(id, StateDone)
			inner.Wait()
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		done, err := sweep.ReadJournal(filepath.Join(tc.srv.dir, id, "journal.jsonl"))
		if err != nil {
			t.Fatalf("campaign %s journal audit: %v", id, err)
		}
		if len(done) != jobsPer {
			t.Fatalf("campaign %s journal holds %d rows, want %d", id, len(done), jobsPer)
		}
	}
	if list := tc.get("/campaigns", http.StatusOK); len(list["campaigns"].([]any)) != submitters {
		t.Fatalf("list shows %d campaigns, want %d", len(list["campaigns"].([]any)), submitters)
	}
}

// The throttle knob slows executed jobs (widening the kill window for
// drills) but never resumed ones.
func TestDaemonThrottleAppliesToExecutedJobsOnly(t *testing.T) {
	sweep.Register("daemon-throttle-drill", func(_ context.Context, _ sweep.Job) (sweep.Result, error) {
		return sweep.Result{Rounds: 1}, nil
	})
	spec := sweep.Spec{Name: "thr", Proto: "daemon-throttle-drill", Sizes: []int{3}, Trials: 4, Horizon: 1, Seed: 1}
	tc := newTestClient(t, t.TempDir(), Config{})
	defer tc.close()
	start := time.Now()
	id := tc.post("/campaigns", map[string]any{"spec": spec, "workers": 1, "throttle_ms": 30}, http.StatusCreated)["id"].(string)
	tc.waitState(id, StateDone)
	if elapsed := time.Since(start); elapsed < 4*30*time.Millisecond {
		t.Fatalf("throttled campaign finished in %v, want >= 120ms", elapsed)
	}
}
