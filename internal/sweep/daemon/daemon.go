// Package daemon grows the sweep engine into a long-running campaign
// service: campaigns become HTTP requests, not CLI invocations. A Server
// accepts spec submissions (inline specs or named built-in sets such as
// "zoo-smoke"), queues them durably under a data directory, executes each
// on the existing work-stealing worker pool with its journal streamed to
// <datadir>/campaigns/<id>/journal.jsonl, and serves list/inspect, live
// JSONL result streams, aggregates, cancellation, and per-campaign metrics.
//
// Durability is the journal's: every completed job is fsynced before it is
// reported, the trailing newline is the commit marker, and a resume
// truncates any torn tail before appending (see sweep.OpenJournal). The
// campaign queue layers on top — a campaign's meta.json is fsynced before
// the submission is acknowledged and on every state transition — so a
// daemon killed at any instant restarts with every acknowledged campaign
// intact and every non-terminal one re-queued, recomputing only the jobs
// whose rows never committed. Results are pure functions of (spec, job), so
// the resumed campaign's journal is byte-identical to an uninterrupted
// one's up to append order, and exactly identical when Workers is 1.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"anondyn/internal/obs"
	"anondyn/internal/sweep"
)

// Config tunes a Server.
type Config struct {
	// Dir is the daemon's data directory; campaigns live under
	// Dir/campaigns/<id>/. It is created if missing.
	Dir string
	// MaxCampaigns bounds concurrently *running* campaigns; further
	// submissions queue. <= 0 means 2.
	MaxCampaigns int
	// Workers is the default per-campaign worker-pool size when a
	// submission does not set its own; <= 0 means GOMAXPROCS.
	Workers int
	// Retries is the default per-job retry budget for submissions that do
	// not set their own.
	Retries int
	// Obs, if non-nil, receives the daemon's own counters (submissions,
	// completions, HTTP requests). Nil gives the daemon a private
	// collector — a service is always observable, unlike a CLI run. Each
	// campaign additionally gets its own collector for engine metrics
	// (queue depth, jobs/sec, journal append latency), served on /metrics.
	Obs *obs.Collector
}

// Server is the campaign service. Create with New, expose Handler on an
// http.Server, and Close to stop: in-flight campaigns observe the
// cancellation, keep their durable "running" state, and resume at the next
// startup.
type Server struct {
	dir     string
	workers int
	retries int
	col     *obs.Collector
	m       daemonMetrics
	mux     *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	nextID    int
	campaigns map[string]*campaign
}

// daemonMetrics bundles the service-level handles (the engine-level ones
// live in each campaign's collector).
type daemonMetrics struct {
	submitted *obs.Counter
	resumed   *obs.Counter
	done      *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	active    *obs.Gauge
	requests  *obs.Counter
	streams   *obs.Gauge
}

// campaign is one submitted campaign's in-memory face over its durable
// meta.json + journal.jsonl pair.
type campaign struct {
	dir     string
	journal string
	col     *obs.Collector

	// completed tracks journaled rows live: seeded from the journal when
	// the runner starts, incremented per executed job.
	completed atomic.Int64
	// done is closed when the campaign reaches a terminal state — the
	// stream endpoint's end-of-campaign signal. It stays open through a
	// daemon shutdown: an interrupted campaign is not over.
	done chan struct{}

	mu         sync.Mutex
	meta       Meta
	cancelRun  context.CancelFunc // non-nil while running
	userCancel bool               // distinguishes cancel requests from shutdown
}

// New builds a Server over cfg.Dir, re-queues every campaign a previous
// daemon left unfinished, and starts their runners immediately — callers
// that only want the HTTP face still get the resume semantics.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("daemon: Config.Dir is required")
	}
	root := filepath.Join(cfg.Dir, "campaigns")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: create data directory: %w", err)
	}
	maxC := cfg.MaxCampaigns
	if maxC <= 0 {
		maxC = 2
	}
	col := cfg.Obs
	if col == nil {
		col = obs.New()
	}
	s := &Server{
		dir:       root,
		workers:   cfg.Workers,
		retries:   cfg.Retries,
		col:       col,
		sem:       make(chan struct{}, maxC),
		campaigns: make(map[string]*campaign),
		m: daemonMetrics{
			submitted: col.Counter(obs.DaemonCampaignsSubmitted),
			resumed:   col.Counter(obs.DaemonCampaignsResumed),
			done:      col.Counter(obs.DaemonCampaignsDone),
			failed:    col.Counter(obs.DaemonCampaignsFailed),
			canceled:  col.Counter(obs.DaemonCampaignsCanceled),
			active:    col.Gauge(obs.DaemonCampaignsActive),
			requests:  col.Counter(obs.DaemonHTTPRequests),
			streams:   col.Gauge(obs.DaemonStreamClients),
		},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.routes()

	metas, maxID, err := scanCampaigns(root)
	if err != nil {
		return nil, err
	}
	s.nextID = maxID + 1
	for _, m := range metas {
		c := s.register(m)
		if m.State.Terminal() {
			close(c.done)
			continue
		}
		// Unfinished campaign from a killed daemon: back to the queue. The
		// durable state stays as-is until the runner persists "running".
		c.meta.State = StateQueued
		s.m.resumed.Inc()
		s.spawn(c)
	}
	return s, nil
}

// register wires a campaign into the in-memory table (s.mu must not be
// held). Each campaign gets its own collector so /metrics can attribute
// queue depth, jobs/sec, and journal append latency per campaign.
func (s *Server) register(m Meta) *campaign {
	c := &campaign{
		dir:     filepath.Join(s.dir, m.ID),
		journal: filepath.Join(s.dir, m.ID, "journal.jsonl"),
		col:     obs.New(),
		done:    make(chan struct{}),
		meta:    m,
	}
	s.mu.Lock()
	s.campaigns[m.ID] = c
	s.mu.Unlock()
	return c
}

// spawn starts c's runner goroutine under the server's wait group.
func (s *Server) spawn(c *campaign) {
	s.wg.Add(1)
	go s.run(c)
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops accepting submissions, cancels running campaigns, and waits
// for their runners. Interrupted campaigns keep their non-terminal durable
// state, so a later New on the same directory resumes them — Close is the
// graceful spelling of a kill, not a different outcome.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// submit durably enqueues a validated campaign and starts its runner.
func (s *Server) submit(m Meta) (*campaign, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errServerClosed
	}
	m.ID = fmt.Sprintf("c%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()

	m.State = StateQueued
	dir := filepath.Join(s.dir, m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: create campaign directory: %w", err)
	}
	// The acknowledgement barrier: once meta.json is durable the campaign
	// survives any kill, so only now may the API answer 201.
	if err := writeMeta(dir, m); err != nil {
		return nil, err
	}
	c := s.register(m)
	s.m.submitted.Inc()
	s.spawn(c)
	return c, nil
}

var errServerClosed = errors.New("daemon: server is shutting down")

// run is a campaign's runner: wait for a slot, execute every member spec
// into the shared journal (always in resume mode — the journal is the one
// source of what is already done), and persist the terminal state.
func (s *Server) run(c *campaign) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-s.ctx.Done():
		return // still queued on disk; the next daemon re-queues it
	}
	if c.canceledWhileQueued() {
		return
	}
	runCtx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if err := c.transition(StateRunning, cancel); err != nil {
		s.fail(c, err)
		return
	}
	s.m.active.Add(1)
	defer s.m.active.Add(-1)

	// Pre-audit: the journal must be readable before any spec runs; its
	// row count seeds the live progress counter across restarts. The
	// reader tolerates a torn tail (the resume open truncates it).
	prior, err := sweep.ReadJournal(c.journal)
	if err != nil {
		s.fail(c, err)
		return
	}
	c.completed.Store(int64(len(prior)))

	meta := c.snapshot()
	for _, spec := range meta.Specs {
		_, err = sweep.RunCampaign(runCtx, spec, sweep.CampaignOptions{
			Workers:     meta.Workers,
			MaxRetries:  meta.Retries,
			JournalPath: c.journal,
			Resume:      true,
			Obs:         c.col,
			Throttle:    time.Duration(meta.ThrottleMS) * time.Millisecond,
			OnResult:    func(sweep.Result) { c.completed.Add(1) },
		})
		if err != nil {
			break
		}
	}
	switch {
	case err == nil:
		c.finish(StateDone, nil)
		s.m.done.Inc()
	case c.isUserCancel():
		c.finish(StateCanceled, err)
		s.m.canceled.Inc()
	case s.ctx.Err() != nil:
		// Daemon shutdown: the campaign is interrupted, not over. Its
		// durable state stays "running", which the next startup re-queues.
	default:
		s.fail(c, err)
	}
}

func (s *Server) fail(c *campaign, err error) {
	c.finish(StateFailed, err)
	s.m.failed.Inc()
	fmt.Fprintf(os.Stderr, "daemon: campaign %s failed: %v\n", c.snapshot().ID, err)
}

// transition moves the campaign to running and persists it.
func (c *campaign) transition(st State, cancel context.CancelFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.meta.State = st
	c.cancelRun = cancel
	return writeMeta(c.dir, c.meta)
}

// finish persists a terminal state and signals streamers. A persist failure
// on an otherwise-finished campaign is reported but does not undo the
// result — the journal, the durable truth, is already complete.
func (c *campaign) finish(st State, cause error) {
	c.mu.Lock()
	c.meta.State = st
	if cause != nil {
		c.meta.Error = cause.Error()
	}
	c.meta.DoneJobs = int(c.completed.Load())
	c.cancelRun = nil
	if err := writeMeta(c.dir, c.meta); err != nil {
		fmt.Fprintf(os.Stderr, "daemon: persisting campaign %s state %s: %v\n", c.meta.ID, st, err)
	}
	c.mu.Unlock()
	close(c.done)
}

// requestCancel implements the cancel endpoint: a queued campaign cancels
// immediately; a running one has its context canceled and settles to
// canceled when the engine unwinds. Terminal campaigns are left alone.
func (c *campaign) requestCancel(counter *obs.Counter) (Meta, error) {
	c.mu.Lock()
	switch {
	case c.meta.State.Terminal():
		m := c.meta
		c.mu.Unlock()
		return m, fmt.Errorf("campaign %s is already %s", m.ID, m.State)
	case c.meta.State == StateQueued:
		c.userCancel = true
		c.meta.State = StateCanceled
		c.meta.Error = "canceled before start"
		err := writeMeta(c.dir, c.meta)
		m := c.meta
		c.mu.Unlock()
		counter.Inc()
		close(c.done)
		return m, err
	default: // running
		c.userCancel = true
		cancel := c.cancelRun
		m := c.meta
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return m, nil
	}
}

// canceledWhileQueued reports (and absorbs) a cancel that landed before the
// runner got a slot; the cancel path already persisted and signaled.
func (c *campaign) canceledWhileQueued() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta.State == StateCanceled
}

func (c *campaign) isUserCancel() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.userCancel
}

// snapshot returns a copy of the durable record.
func (c *campaign) snapshot() Meta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta
}

// Status is a campaign's API view: the durable record plus live progress.
type Status struct {
	Meta
	// LiveDoneJobs is the journaled-row count right now (meta.DoneJobs is
	// only as fresh as the last persisted transition).
	LiveDoneJobs int `json:"live_done_jobs"`
}

func (c *campaign) status() Status {
	st := Status{Meta: c.snapshot()}
	st.LiveDoneJobs = int(c.completed.Load())
	if st.LiveDoneJobs < st.DoneJobs {
		st.LiveDoneJobs = st.DoneJobs
	}
	return st
}
