package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"anondyn/internal/sweep"
)

// State is a campaign's position in the service lifecycle.
type State string

const (
	// StateQueued: accepted and durable, waiting for a runner slot.
	StateQueued State = "queued"
	// StateRunning: executing on the worker pool. A daemon killed in this
	// state re-queues the campaign at the next startup — the journal holds
	// every completed job, so the resume recomputes only what is missing.
	StateRunning State = "running"
	// StateDone: every job completed and aggregates are servable.
	StateDone State = "done"
	// StateFailed: an execution fault survived the retry budget. Failed
	// campaigns are not re-queued at startup; the fault is deterministic
	// until the code or spec changes.
	StateFailed State = "failed"
	// StateCanceled: stopped by a cancel request. Completed jobs stay in
	// the journal but the campaign is never resumed.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final — never re-queued at startup.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Meta is the durable record of one submitted campaign — the unit of the
// daemon's persistent queue. It is written (fsynced, atomically via rename)
// to <dir>/meta.json before the submission is acknowledged and on every
// state transition, so the set of meta files *is* the queue: a restarted
// daemon re-queues exactly the campaigns whose state is not terminal and
// resumes them from their journals.
type Meta struct {
	// ID is the campaign's identity — its directory name and API handle.
	ID string `json:"id"`
	// Set names the built-in spec set submitted, when one was ("zoo",
	// "zoo-smoke"); informational.
	Set string `json:"set,omitempty"`
	// Specs are the member campaigns, run in order into one shared journal.
	Specs []sweep.Spec `json:"specs"`
	// Workers, Retries, and ThrottleMS are the sweep.CampaignOptions the
	// runner applies (zero values defer to the engine defaults; ThrottleMS
	// is the per-job resume-drill delay).
	Workers    int `json:"workers,omitempty"`
	Retries    int `json:"retries,omitempty"`
	ThrottleMS int `json:"throttle_ms,omitempty"`
	// TotalJobs is the campaign's job count across all specs, fixed at
	// submission (specs are pure data, so the expansion never changes).
	TotalJobs int `json:"total_jobs"`
	// State is the lifecycle position as of the last persisted transition.
	State State `json:"state"`
	// Error describes why a failed or canceled campaign stopped.
	Error string `json:"error,omitempty"`
	// DoneJobs is the journaled-row count at the last persisted transition;
	// the live count is served by the status endpoint while running.
	DoneJobs int `json:"done_jobs"`
}

const metaFile = "meta.json"

// writeMeta persists m under dir durably: written to a temp file, fsynced,
// renamed over meta.json, and the directory fsynced — a kill at any point
// leaves either the old record or the new one, never a torn mixture.
func writeMeta(dir string, m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: encode campaign %s meta: %w", m.ID, err)
	}
	tmp := filepath.Join(dir, metaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("daemon: write campaign %s meta: %w", m.ID, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("daemon: write campaign %s meta: %w", m.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("daemon: sync campaign %s meta: %w", m.ID, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("daemon: close campaign %s meta: %w", m.ID, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, metaFile)); err != nil {
		return fmt.Errorf("daemon: commit campaign %s meta: %w", m.ID, err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readMeta loads the durable record under dir.
func readMeta(dir string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return Meta{}, fmt.Errorf("daemon: read campaign meta: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("daemon: decode campaign meta %s: %w", dir, err)
	}
	return m, nil
}

// scanCampaigns loads every persisted campaign under root (the daemon's
// campaigns directory), sorted by ID, and reports the highest numeric ID
// suffix seen so new submissions continue the sequence across restarts.
// A directory without a readable meta.json is an error — the queue must
// not silently forget a campaign that was acknowledged as durable.
func scanCampaigns(root string) ([]Meta, int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("daemon: scan campaigns: %w", err)
	}
	var metas []Meta
	maxID := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := readMeta(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, 0, err
		}
		if m.ID != e.Name() {
			return nil, 0, fmt.Errorf("daemon: campaign directory %s holds meta for %q", e.Name(), m.ID)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(m.ID, "c")); err == nil && n > maxID {
			maxID = n
		}
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	return metas, maxID, nil
}
