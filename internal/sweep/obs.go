package sweep

import "anondyn/internal/obs"

// engineMetrics bundles the handles the worker pool touches. With
// observability disabled every field is nil and every operation is a
// single branch — the engine's throughput is unchanged (locked by
// TestDisabledObsAddsNoAllocations and BenchmarkSweepEngine).
type engineMetrics struct {
	jobs       *obs.Counter   // jobs executed by this process
	retries    *obs.Counter   // re-attempts after execution faults
	queueDepth *obs.Gauge     // pending jobs not yet completed
	jobNS      *obs.Histogram // per-job wall time
}

// newEngineMetrics resolves the run's collector: the explicit Options.Obs
// when set, else the process-wide collector (nil when the process runs
// unobserved). Handle lookup happens once per Run, never per job.
func newEngineMetrics(col *obs.Collector) engineMetrics {
	if col == nil {
		col = obs.Global()
	}
	if col == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		jobs:       col.Counter(obs.SweepJobs),
		retries:    col.Counter(obs.SweepRetries),
		queueDepth: col.Gauge(obs.SweepQueueDepth),
		jobNS:      col.Histogram(obs.SweepJobNS),
	}
}
