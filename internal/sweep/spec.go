// Package sweep is the experiment-campaign engine: it expands a declarative
// campaign spec (protocol × size grid × trials × seed policy) into
// independent jobs, executes them on a work-stealing worker pool with
// per-job deterministic RNG seeds, panic isolation, and bounded retries,
// streams completed jobs to an append-only JSONL journal so a killed
// campaign resumes instead of recomputing, and folds journal rows back into
// the distribution summaries the figure tables are built from.
//
// The engine exists because the paper's claims only separate empirically at
// large n and many trials: the Theorem 1 horizon ⌊log₃(2n+1)⌋−1 grows with
// size while random schedules stay flat, so the interesting regime is
// exactly the one a monolithic single-worker run cannot reach. Results are
// deterministic functions of (campaign seed, job coordinates) — never of
// worker count, scheduling order, or resume boundaries — so a resumed
// campaign is byte-identical to an uninterrupted one.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Spec declares a campaign: one protocol swept over a size grid, with a
// fixed number of trials per size. The spec is pure data — expanding it
// with Jobs is deterministic, so two processes holding the same spec agree
// on the job set and on every job's key and seed, which is what makes the
// journal's job keys meaningful across runs.
type Spec struct {
	// Name labels the campaign in diagnostics.
	Name string `json:"name"`
	// Proto names the registered protocol function to run per job.
	Proto string `json:"proto"`
	// Sizes is the network-size grid.
	Sizes []int `json:"sizes"`
	// Trials is the number of independent trials per size.
	Trials int `json:"trials"`
	// Horizon bounds the rounds of each trial.
	Horizon int `json:"horizon"`
	// Seed is the campaign seed; per-job seeds derive from it via JobSeed.
	Seed int64 `json:"seed"`
}

// Validate checks the spec is executable.
func (s *Spec) Validate() error {
	if s.Proto == "" {
		return fmt.Errorf("sweep: spec %q has no protocol", s.Name)
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("sweep: spec %q has an empty size grid", s.Name)
	}
	seen := make(map[int]bool, len(s.Sizes))
	for _, n := range s.Sizes {
		if n < 1 {
			return fmt.Errorf("sweep: spec %q has size %d < 1", s.Name, n)
		}
		if seen[n] {
			return fmt.Errorf("sweep: spec %q repeats size %d (job keys must be unique)", s.Name, n)
		}
		seen[n] = true
	}
	if s.Trials < 1 {
		return fmt.Errorf("sweep: spec %q needs trials >= 1, got %d", s.Name, s.Trials)
	}
	if s.Horizon < 1 {
		return fmt.Errorf("sweep: spec %q needs horizon >= 1, got %d", s.Name, s.Horizon)
	}
	return nil
}

// Jobs expands the spec into its independent jobs, in canonical order
// (sizes in grid order, trials ascending). Job keys embed the protocol,
// campaign seed, size, and trial, so a journal row written by one run
// identifies the same job in any other run of the same spec.
func (s *Spec) Jobs() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(s.Sizes)*s.Trials)
	for _, n := range s.Sizes {
		for t := 0; t < s.Trials; t++ {
			jobs = append(jobs, Job{
				Key:     fmt.Sprintf("%s/seed=%d/n=%d/t=%d", s.Proto, s.Seed, n, t),
				Proto:   s.Proto,
				N:       n,
				Trial:   t,
				Horizon: s.Horizon,
				Seed:    JobSeed(s.Seed, uint64(n), uint64(t)),
			})
		}
	}
	return jobs, nil
}

// ParseSpec decodes a JSON campaign spec, rejecting unknown fields so a
// typo in a spec file fails loudly instead of silently running defaults.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: bad spec: %w", err)
	}
	return s, s.Validate()
}

// LoadSpec reads a campaign spec: a built-in name (see Builtin) or a path
// to a JSON file.
func LoadSpec(nameOrPath string) (Spec, error) {
	if s, ok := Builtin(nameOrPath); ok {
		return s, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return Spec{}, fmt.Errorf("sweep: spec %q is neither a built-in campaign nor a readable file: %w", nameOrPath, err)
	}
	return ParseSpec(data)
}

// Builtin returns a named built-in campaign:
//
//   - "figures": the Figure-reproduction grid — the S1 study's sizes and
//     trial count, the grid cmd/experiments runs sequentially today.
//   - "smoke": a seconds-scale grid for CI and resume drills.
func Builtin(name string) (Spec, bool) {
	switch name {
	case "figures":
		return Spec{
			Name: "figures", Proto: ProtoMDBLCount,
			Sizes: []int{13, 40, 121, 364}, Trials: 40, Horizon: 10, Seed: 99,
		}, true
	case "smoke":
		return Spec{
			Name: "smoke", Proto: ProtoMDBLCount,
			Sizes: []int{5, 9}, Trials: 4, Horizon: 8, Seed: 7,
		}, true
	}
	return Spec{}, false
}
