package sweep

import (
	"context"
	"fmt"
	"sync"

	"anondyn/internal/core"
	"anondyn/internal/multigraph"
)

// Job is one independent unit of campaign work. Jobs carry everything a
// protocol function needs, so any worker (in this process or a resumed one)
// executes a job identically.
type Job struct {
	// Key identifies the job across runs; the journal is idempotent by it.
	Key string `json:"key"`
	// Proto names the protocol function.
	Proto string `json:"proto"`
	// N is the network size.
	N int `json:"n"`
	// Trial is the trial index within (Proto, N).
	Trial int `json:"trial"`
	// Horizon bounds the trial's rounds.
	Horizon int `json:"horizon"`
	// Seed is the job's private RNG seed, derived via JobSeed.
	Seed int64 `json:"seed"`
}

// Result is one completed job, as stored in the journal. It deliberately
// carries no timestamps or worker identifiers: a Result is a pure function
// of its Job, which is what makes resumed and fresh runs byte-identical.
type Result struct {
	Key   string `json:"key"`
	Proto string `json:"proto"`
	N     int    `json:"n"`
	Trial int    `json:"trial"`
	// Rounds is the measured rounds-to-completion, -1 when Failed.
	Rounds int `json:"rounds"`
	// Count is the protocol's output (the counted size), when it has one.
	Count int `json:"count,omitempty"`
	// Failed marks a protocol-level failure (e.g. the count never resolved
	// within the horizon) — a measurement, not an execution error.
	Failed bool `json:"failed,omitempty"`
	// Err describes the protocol-level failure.
	Err string `json:"err,omitempty"`
}

// ProtoFunc executes one job. A returned error is an execution fault (the
// engine retries it up to Options.MaxRetries, then aborts the campaign);
// protocol-level failure is reported by Result.Failed instead, and counts
// as a completed measurement.
type ProtoFunc func(ctx context.Context, job Job) (Result, error)

// ProtoMDBLCount is the registered name of MDBLCount.
const ProtoMDBLCount = "mdbl-count"

// ProtoMDBLWorst is the registered name of MDBLWorstCase.
const ProtoMDBLWorst = "mdbl-worstcase"

var (
	registryMu sync.RWMutex
	registry   = map[string]ProtoFunc{
		ProtoMDBLCount: MDBLCount,
		ProtoMDBLWorst: MDBLWorstCase,
	}
)

// Register adds a protocol function under name, overwriting any previous
// registration, so campaigns can sweep caller-defined workloads.
func Register(name string, fn ProtoFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = fn
}

// Proto looks up a registered protocol function.
func Proto(name string) (ProtoFunc, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	fn, ok := registry[name]
	return fn, ok
}

// MDBLCount runs the leader-state counter on one uniformly random ℳ(DBL)₂
// schedule of size job.N drawn from job.Seed — the Monte-Carlo trial behind
// the S1 study and cmd/study. An unresolved count within the horizon is a
// Failed result; a wrong count is an execution fault (it would falsify
// Theorem 2's correctness side).
func MDBLCount(ctx context.Context, job Job) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m, err := multigraph.Random(2, job.N, job.Horizon, job.Seed)
	if err != nil {
		return Result{}, err
	}
	res := Result{Key: job.Key, Proto: job.Proto, N: job.N, Trial: job.Trial}
	cr, err := core.CountOnMultigraph(m, job.Horizon)
	if err != nil {
		res.Rounds = -1
		res.Failed = true
		res.Err = err.Error()
		return res, nil
	}
	if cr.Count != job.N {
		return Result{}, fmt.Errorf("sweep: %s counted %d on a size-%d schedule", job.Key, cr.Count, job.N)
	}
	res.Rounds = cr.Rounds
	res.Count = cr.Count
	return res, nil
}

// MDBLWorstCase measures the counter against the kernel-tuned adversarial
// schedule for size job.N. It is deterministic (the seed is unused), so
// campaigns pair it with MDBLCount to put the worst case next to the
// average case in one journal.
func MDBLWorstCase(ctx context.Context, job Job) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cr, err := core.WorstCaseCountRounds(job.N)
	if err != nil {
		return Result{}, err
	}
	if cr.Count != job.N {
		return Result{}, fmt.Errorf("sweep: %s worst-case counted %d on size %d", job.Key, cr.Count, job.N)
	}
	return Result{
		Key: job.Key, Proto: job.Proto, N: job.N, Trial: job.Trial,
		Rounds: cr.Rounds, Count: cr.Count,
	}, nil
}
