package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Name: "t", Proto: ProtoMDBLCount,
		Sizes: []int{3, 5, 9}, Trials: 4, Horizon: 6, Seed: 42,
	}
}

func TestSpecJobsExpansion(t *testing.T) {
	s := validSpec()
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.Sizes) * s.Trials; len(jobs) != want {
		t.Fatalf("expanded to %d jobs, want %d", len(jobs), want)
	}
	// Canonical order: sizes in grid order, trials ascending; keys unique
	// and self-describing; seeds match the derivation.
	seen := map[string]bool{}
	i := 0
	for _, n := range s.Sizes {
		for trial := 0; trial < s.Trials; trial++ {
			j := jobs[i]
			i++
			if j.N != n || j.Trial != trial || j.Proto != s.Proto || j.Horizon != s.Horizon {
				t.Errorf("job %d = %+v, want n=%d trial=%d", i-1, j, n, trial)
			}
			if want := fmt.Sprintf("%s/seed=%d/n=%d/t=%d", s.Proto, s.Seed, n, trial); j.Key != want {
				t.Errorf("job key %q, want %q", j.Key, want)
			}
			if seen[j.Key] {
				t.Errorf("duplicate job key %q", j.Key)
			}
			seen[j.Key] = true
			if want := JobSeed(s.Seed, uint64(n), uint64(trial)); j.Seed != want {
				t.Errorf("job %s seed %d, want %d", j.Key, j.Seed, want)
			}
		}
	}
}

func TestSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no-proto", func(s *Spec) { s.Proto = "" }},
		{"empty-grid", func(s *Spec) { s.Sizes = nil }},
		{"duplicate-size", func(s *Spec) { s.Sizes = []int{3, 5, 3} }},
		{"size-zero", func(s *Spec) { s.Sizes = []int{0, 3} }},
		{"no-trials", func(s *Spec) { s.Trials = 0 }},
		{"no-horizon", func(s *Spec) { s.Horizon = 0 }},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, s)
		}
		if _, err := s.Jobs(); err == nil {
			t.Errorf("%s: Jobs expanded an invalid spec", c.name)
		}
	}
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	good := []byte(`{"name":"x","proto":"` + ProtoMDBLCount + `","sizes":[3,5],"trials":2,"horizon":4,"seed":1}`)
	s, err := ParseSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || len(s.Sizes) != 2 {
		t.Errorf("parsed %+v", s)
	}
	// Unknown fields fail loudly — a typo must not silently run defaults.
	typo := []byte(`{"name":"x","proto":"` + ProtoMDBLCount + `","sizes":[3],"trails":2,"horizon":4}`)
	if _, err := ParseSpec(typo); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Decodes but fails validation.
	invalid := []byte(`{"name":"x","proto":"` + ProtoMDBLCount + `","sizes":[],"trials":2,"horizon":4}`)
	if _, err := ParseSpec(invalid); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestLoadSpec(t *testing.T) {
	for _, name := range []string{"figures", "smoke"} {
		s, err := LoadSpec(name)
		if err != nil {
			t.Fatalf("built-in %q: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", name, err)
		}
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	content := `{"name":"file","proto":"` + ProtoMDBLCount + `","sizes":[3],"trials":1,"horizon":2,"seed":5}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "file" || s.Seed != 5 {
		t.Errorf("loaded %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("unknown built-in reported ok")
	}
}
