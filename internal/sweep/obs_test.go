package sweep

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"anondyn/internal/obs"
)

// The engine-side zero-cost contract: with no collector, resolving the
// metric handles and driving every per-job operation allocates nothing.
func TestDisabledObsAddsNoAllocations(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	if allocs := testing.AllocsPerRun(100, func() {
		m := newEngineMetrics(nil)
		start := m.jobNS.Start()
		m.jobs.Inc()
		m.retries.Inc()
		m.queueDepth.Add(-1)
		m.jobNS.Stop(start)
	}); allocs != 0 {
		t.Fatalf("disabled obs sites allocate %v allocs/op, want 0", allocs)
	}
}

func TestRunObsCounts(t *testing.T) {
	col := obs.New()
	rep, err := Run(context.Background(), testJobs(12), double, Options{Workers: 3, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 12 {
		t.Fatalf("executed %d, want 12", rep.Executed)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.SweepJobs]; got != 12 {
		t.Errorf("%s = %d, want 12", obs.SweepJobs, got)
	}
	if got := snap.Counters[obs.SweepRetries]; got != 0 {
		t.Errorf("%s = %d, want 0", obs.SweepRetries, got)
	}
	// The queue drains to zero when every job completes.
	if got := snap.Gauges[obs.SweepQueueDepth]; got != 0 {
		t.Errorf("%s = %d, want 0 after drain", obs.SweepQueueDepth, got)
	}
	if h := snap.Histograms[obs.SweepJobNS]; h.Count != 12 {
		t.Errorf("job histogram count = %d, want 12", h.Count)
	}
}

func TestRunObsCountsRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := func(_ context.Context, job Job) (Result, error) {
		if job.Trial == 3 && calls.Add(1) == 1 {
			panic("transient")
		}
		return Result{Rounds: job.Trial}, nil
	}
	col := obs.New()
	if _, err := Run(context.Background(), testJobs(8), flaky, Options{Workers: 2, MaxRetries: 1, Obs: col}); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.SweepRetries]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.SweepRetries, got)
	}
	if got := snap.Counters[obs.SweepJobs]; got != 8 {
		t.Errorf("%s = %d, want 8", obs.SweepJobs, got)
	}
}

func TestJournalObserveRecordsAppendLatency(t *testing.T) {
	col := obs.New()
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Observe(col)
	for i := 0; i < 3; i++ {
		if err := j.Append(Result{Key: testJobs(3)[i].Key, Rounds: i}); err != nil {
			t.Fatal(err)
		}
	}
	h := col.Snapshot().Histograms[obs.SweepJournalAppendNS]
	if h.Count != 3 || h.Sum <= 0 {
		t.Fatalf("append histogram = %+v, want 3 timed fsynced appends", h)
	}
}

// RunCampaign falls back to the process-wide collector when no explicit
// collector is given — the -metrics flag path end to end.
func TestRunCampaignObsGlobalFallback(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	col := obs.New()
	obs.Set(col)

	spec, err := LoadSpec("smoke")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCampaign(context.Background(), spec, CampaignOptions{
		Workers:     2,
		JournalPath: filepath.Join(t.TempDir(), "j.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.SweepJobs]; got != int64(rep.Executed) {
		t.Errorf("%s = %d, want %d", obs.SweepJobs, got, rep.Executed)
	}
	if h := snap.Histograms[obs.SweepJournalAppendNS]; h.Count == 0 {
		t.Error("journal append histogram empty under global fallback")
	}
	// The smoke campaign's MDBL trials run through the incremental kernel
	// solver, so per-round solve metrics must appear too.
	if h := snap.Histograms[obs.KernelRoundNS]; h.Count == 0 {
		t.Error("kernel per-round histogram empty under global fallback")
	}
}
