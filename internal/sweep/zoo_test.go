package sweep

import (
	"context"
	"strings"
	"testing"
)

func TestBuiltinSetNames(t *testing.T) {
	for _, name := range []string{"zoo", "zoo-smoke"} {
		specs, ok := BuiltinSet(name)
		if !ok {
			t.Fatalf("BuiltinSet(%q) missing", name)
		}
		if len(specs) != 9 {
			t.Fatalf("BuiltinSet(%q) has %d specs, want 9 (six worst-case protos plus three adversary-diversity protos)", name, len(specs))
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", name, s.Name, err)
			}
			if _, ok := Proto(s.Proto); !ok {
				t.Fatalf("%s/%s: proto %q not registered", name, s.Name, s.Proto)
			}
			if seen[s.Proto] {
				t.Fatalf("%s repeats proto %q (journal keys would collide)", name, s.Proto)
			}
			seen[s.Proto] = true
		}
	}
	if _, ok := BuiltinSet("figures"); ok {
		t.Fatal("single-spec builtins must not resolve as sets")
	}
}

// Every worst-case zoo proto must produce the unit-consistent measurement
// on the worst-case family: exact algorithms count |V| = |W| + 3 exactly
// (a wrong count is an execution fault that would abort the campaign),
// the upper bound is >= |V|.
func TestZooProtosOnWorstCase(t *testing.T) {
	ctx := context.Background()
	const w = 4 // |W|; total |V| = 7
	for _, proto := range WorstCaseZooProtos() {
		fn, ok := Proto(proto)
		if !ok {
			t.Fatalf("proto %q not registered", proto)
		}
		job := Job{Key: proto + "/test", Proto: proto, N: w, Trial: 0, Horizon: 1, Seed: 1}
		res, err := fn(ctx, job)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Failed {
			t.Fatalf("%s: failed: %s", proto, res.Err)
		}
		if ZooAlgorithms[proto] == "upperbound" {
			if res.Count < w+3 {
				t.Fatalf("%s: bound %d below |V| = %d", proto, res.Count, w+3)
			}
		} else if res.Count != w+3 {
			t.Fatalf("%s: count = %d, want |V| = %d", proto, res.Count, w+3)
		}
		if res.Rounds < 1 {
			t.Fatalf("%s: rounds = %d", proto, res.Rounds)
		}
	}
	if got, want := len(WorstCaseZooProtos())+3, len(ZooAlgorithms); got != want {
		t.Fatalf("worst-case protos + 3 family protos = %d, registry has %d", got, want)
	}
}

// The adversary-diversity protos measure the family instances directly:
// Job.N is the total node count. The history-tree protos are exact
// (zooRun itself aborts on a wrong count, so reaching a result proves
// exactness); the push-sum proto records an estimate, which only needs to
// be a positive measurement with at least one round of work behind it.
func TestZooFamilyProtos(t *testing.T) {
	ctx := context.Background()
	const n = 7
	for _, tc := range []struct {
		proto string
		exact bool
	}{
		{ProtoZooTInterval, true},
		{ProtoZooRandomized, true},
		{ProtoZooJoinLeave, false},
	} {
		fn, ok := Proto(tc.proto)
		if !ok {
			t.Fatalf("proto %q not registered", tc.proto)
		}
		job := Job{Key: tc.proto + "/test", Proto: tc.proto, N: n, Trial: 0, Horizon: 1, Seed: 42}
		res, err := fn(ctx, job)
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		if res.Failed {
			t.Fatalf("%s: failed: %s", tc.proto, res.Err)
		}
		if tc.exact && res.Count != n {
			t.Fatalf("%s: count = %d, want %d", tc.proto, res.Count, n)
		}
		if !tc.exact && res.Count < 1 {
			t.Fatalf("%s: estimate = %d, want a positive measurement", tc.proto, res.Count)
		}
		if res.Rounds < 1 {
			t.Fatalf("%s: rounds = %d", tc.proto, res.Rounds)
		}
		// The family schedules are pure functions of the job seed, so the
		// frozen rows are reproducible.
		again, err := fn(ctx, job)
		if err != nil {
			t.Fatalf("%s rerun: %v", tc.proto, err)
		}
		if again.Rounds != res.Rounds || again.Count != res.Count {
			t.Fatalf("%s nondeterministic: (%d,%d) vs (%d,%d)",
				tc.proto, res.Count, res.Rounds, again.Count, again.Rounds)
		}
	}
}

// The zoo's frozen comparison rests on the protos being deterministic:
// the same job must measure the same rounds on every run.
func TestZooProtosDeterministic(t *testing.T) {
	ctx := context.Background()
	fn, _ := Proto(ProtoZooHistTree)
	job := Job{Key: "det", Proto: ProtoZooHistTree, N: 7, Trial: 0, Horizon: 1, Seed: 5}
	a, err := fn(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	job.Seed = 99 // the worst-case family ignores the seed
	b, err := fn(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Count != b.Count {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a.Count, a.Rounds, b.Count, b.Rounds)
	}
}

func TestZooCampaignEndToEnd(t *testing.T) {
	specs, _ := BuiltinSet("zoo-smoke")
	var all []Result
	for _, spec := range specs {
		rep, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		all = append(all, rep.Results...)
	}
	stats := Aggregate(all)
	if len(stats) != 18 { // 9 protos × 2 sizes
		t.Fatalf("combined table has %d rows, want 18", len(stats))
	}
	table := FormatTable(stats)
	for proto := range ZooAlgorithms {
		if !strings.Contains(table, proto) {
			t.Fatalf("combined table missing %s:\n%s", proto, table)
		}
	}
}
