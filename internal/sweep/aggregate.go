package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist is a distribution summary of per-trial round counts, the shape
// every figure table in this reproduction is built from.
type Dist struct {
	// Trials is the sample size, including failures.
	Trials int
	// Failures counts trials that never resolved (Rounds < 0).
	Failures int
	// Mean is the sample mean over resolved trials.
	Mean float64
	// Min and Max bound the resolved sample.
	Min, Max int
	// P50, P90, P99 are percentiles of the resolved sample.
	P50, P90, P99 int
}

// Distribution summarizes raw round counts; a negative count marks a
// failed trial. It is the single definition of the repository's summary
// statistics — montecarlo's Summary is computed through it.
//
// Percentile convention: Pxx is the sorted resolved sample's element at
// index ⌊xx·(len-1)/100⌋, computed in exact integer arithmetic (the
// nearest-rank-below rule; float multiplication would under-index exact
// ranks — 0.99 has no finite binary representation, so 0.99*100 truncates
// to 98). Edge cases: with no resolved trials Mean, Min, Max, and every
// percentile are 0 (Failures still counts); with one resolved trial every
// percentile equals that value.
func Distribution(rounds []int) Dist {
	d := Dist{Trials: len(rounds), Min: math.MaxInt}
	var ok []int
	total := 0
	for _, r := range rounds {
		if r < 0 {
			d.Failures++
			continue
		}
		ok = append(ok, r)
		total += r
		if r < d.Min {
			d.Min = r
		}
		if r > d.Max {
			d.Max = r
		}
	}
	if len(ok) == 0 {
		d.Min = 0
		return d
	}
	d.Mean = float64(total) / float64(len(ok))
	sort.Ints(ok)
	q := func(pNum int) int {
		return ok[pNum*(len(ok)-1)/100]
	}
	d.P50, d.P90, d.P99 = q(50), q(90), q(99)
	return d
}

// GroupStat is the aggregated distribution of one (protocol, size) cell of
// a campaign grid.
type GroupStat struct {
	Proto string
	N     int
	Dist
}

// Aggregate folds completed results into per-(protocol, size) distribution
// rows, sorted by protocol then size. The fold is order-independent: the
// same set of journal rows aggregates identically whether it was produced
// by one uninterrupted run or stitched together across resumes.
func Aggregate(results []Result) []GroupStat {
	type cell struct {
		proto string
		n     int
	}
	rounds := make(map[cell][]int)
	for _, r := range results {
		c := cell{r.Proto, r.N}
		if r.Failed {
			rounds[c] = append(rounds[c], -1)
		} else {
			rounds[c] = append(rounds[c], r.Rounds)
		}
	}
	cells := make([]cell, 0, len(rounds))
	for c := range rounds {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].proto != cells[j].proto {
			return cells[i].proto < cells[j].proto
		}
		return cells[i].n < cells[j].n
	})
	stats := make([]GroupStat, 0, len(cells))
	for _, c := range cells {
		// Trials within a cell arrive in scheduling order; sort them so
		// the distribution input is canonical (it is order-insensitive
		// anyway, but canonical inputs keep the fold auditable).
		rs := rounds[c]
		sort.Ints(rs)
		stats = append(stats, GroupStat{Proto: c.proto, N: c.n, Dist: Distribution(rs)})
	}
	return stats
}

// FormatTable renders group stats as an aligned text table, carrying the
// same columns in the same order as FormatCSV so the two renderings of a
// campaign never disagree on what was measured.
func FormatTable(stats []GroupStat) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s  %8s  %6s  %8s  %5s  %5s  %5s  %5s  %5s  %8s\n",
		"proto", "n", "trials", "mean", "min", "p50", "p90", "p99", "max", "failures")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%-16s  %8d  %6d  %8.2f  %5d  %5d  %5d  %5d  %5d  %8d\n",
			s.Proto, s.N, s.Trials, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Failures)
	}
	return sb.String()
}

// FormatCSV renders group stats as CSV for downstream plotting.
func FormatCSV(stats []GroupStat) string {
	var sb strings.Builder
	sb.WriteString("proto,n,trials,mean,min,p50,p90,p99,max,failures\n")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%s,%d,%d,%.3f,%d,%d,%d,%d,%d,%d\n",
			s.Proto, s.N, s.Trials, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Failures)
	}
	return sb.String()
}
