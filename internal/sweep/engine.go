package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"anondyn/internal/obs"
)

// Options tunes one engine run.
type Options struct {
	// Workers sets the pool size; <= 0 means GOMAXPROCS. Worker count
	// never affects results, only wall-clock time: every job's outcome is
	// a pure function of the job itself.
	Workers int
	// MaxRetries is how many times a job is re-attempted after an
	// execution fault (an error or panic from the protocol function)
	// before the fault aborts the campaign. 0 means fail on the first
	// fault. Context cancellation is never retried.
	MaxRetries int
	// Journal, if non-nil, receives every job completed by this run,
	// streamed as the job finishes. Jobs satisfied from Done are not
	// re-appended — the journal is append-only and idempotent by job key.
	Journal *Journal
	// Done holds results of jobs completed by a previous run (normally
	// ReadJournal's output). Matching jobs are not re-executed.
	Done map[string]Result
	// MaxJobs, if positive, stops the run after this many jobs have been
	// executed by this process (resumed jobs do not count). The run then
	// fails with ErrJobLimit; the journal keeps what completed. It exists
	// to drill the kill/resume path deterministically.
	MaxJobs int
	// OnResult, if non-nil, observes each executed result. Calls are
	// serialized but arrive in completion order, not job order.
	OnResult func(Result)
	// Obs, if non-nil, receives engine metrics (queue depth, executed
	// jobs, retries, per-job wall time). Nil falls back to the
	// process-wide collector (obs.Global), which is nil — and therefore
	// free — unless the process opted in.
	Obs *obs.Collector
}

// ErrJobLimit reports that Options.MaxJobs stopped the run early.
var ErrJobLimit = errors.New("sweep: job limit reached")

// JobPanicError reports that a protocol function panicked. The engine
// isolates the panic to the offending job: it is retried like any other
// execution fault, and exhausting retries aborts the campaign with this
// error instead of crashing the process.
type JobPanicError struct {
	// Job is the job whose protocol function panicked.
	Job Job
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, for diagnostics.
	Stack []byte
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("sweep: job %s panicked: %v", e.Job.Key, e.Value)
}

// Report summarizes a Run.
type Report struct {
	// Results holds one result per job, in job order. Complete only when
	// Run returned nil; on error it is partial and positions of
	// unfinished jobs hold zero Results.
	Results []Result
	// Executed counts jobs run by this process.
	Executed int
	// Resumed counts jobs satisfied from Options.Done.
	Resumed int
}

// Run executes the jobs on a work-stealing worker pool and returns their
// results in job order. Each worker owns a shard of the job list and, when
// its shard drains, steals from the back of the fullest neighbor — so an
// uneven grid (one slow size, many fast ones) still saturates the pool.
//
// The first unrecoverable fault (a protocol error or panic surviving
// MaxRetries, a journal write failure, or the context being canceled)
// stops the run: no new jobs start, in-flight jobs finish or observe the
// cancellation, and the fault is returned after all workers have joined.
// Jobs completed before the fault are already in the journal, which is
// what makes -resume safe after SIGKILL, not just after clean shutdown.
func Run(ctx context.Context, jobs []Job, fn ProtoFunc, opts Options) (*Report, error) {
	rep := &Report{Results: make([]Result, len(jobs))}
	keys := make(map[string]int, len(jobs))
	var pending []int
	for i, job := range jobs {
		if job.Key == "" {
			return rep, fmt.Errorf("sweep: job %d has an empty key", i)
		}
		if prev, dup := keys[job.Key]; dup {
			return rep, fmt.Errorf("sweep: jobs %d and %d share key %s", prev, i, job.Key)
		}
		keys[job.Key] = i
		if r, ok := opts.Done[job.Key]; ok {
			rep.Results[i] = normalize(r, job)
			rep.Resumed++
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return rep, ctx.Err()
	}

	e := &engine{
		jobs: jobs, fn: fn, opts: opts, results: rep.Results,
		m: newEngineMetrics(opts.Obs),
	}
	e.ctx, e.cancel = context.WithCancel(ctx)
	defer e.cancel()
	// Queue depth starts at the pending count and drains to zero (or
	// freezes where a fault stopped the run).
	e.m.queueDepth.Set(int64(len(pending)))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	e.shards = make([]shard, workers)
	for i, idx := range pending {
		s := &e.shards[i*workers/len(pending)]
		s.queue = append(s.queue, idx)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.work(w)
		}(w)
	}
	wg.Wait()

	rep.Executed = int(e.completed.Load())
	if err := e.err(); err != nil {
		return rep, fmt.Errorf("sweep: stopped after %d/%d jobs: %w",
			rep.Executed+rep.Resumed, len(jobs), err)
	}
	return rep, nil
}

// shard is one worker's mutex-protected deque of job indices. The owner
// pops from the front; thieves take from the back, where the stolen work
// is farthest from what the owner touches next.
type shard struct {
	mu    sync.Mutex
	queue []int
}

func (s *shard) popFront() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return 0, false
	}
	idx := s.queue[0]
	s.queue = s.queue[1:]
	return idx, true
}

func (s *shard) popBack() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return 0, false
	}
	idx := s.queue[len(s.queue)-1]
	s.queue = s.queue[:len(s.queue)-1]
	return idx, true
}

type engine struct {
	jobs    []Job
	fn      ProtoFunc
	opts    Options
	results []Result
	shards  []shard
	m       engineMetrics

	ctx    context.Context
	cancel context.CancelFunc
	// started gates Options.MaxJobs; completed counts results written.
	started   atomic.Int64
	completed atomic.Int64

	mu       sync.Mutex
	firstErr error
}

// fail records the first fault and stops the run.
func (e *engine) fail(err error) {
	e.mu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.mu.Unlock()
	e.cancel()
}

func (e *engine) err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstErr
}

// work drains worker w's own shard, then steals; it exits when every shard
// is empty (jobs never spawn jobs, so empty-everywhere means done) or the
// run is stopped.
func (e *engine) work(w int) {
	for {
		if err := e.ctx.Err(); err != nil {
			e.fail(err) // no-op when the stop began with an earlier fault
			return
		}
		idx, ok := e.shards[w].popFront()
		if !ok {
			idx, ok = e.steal(w)
		}
		if !ok {
			return
		}
		if !e.runJob(idx) {
			return
		}
	}
}

func (e *engine) steal(w int) (int, bool) {
	for off := 1; off < len(e.shards); off++ {
		if idx, ok := e.shards[(w+off)%len(e.shards)].popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}

// runJob executes one job with bounded retries; it reports whether the
// worker should keep going.
func (e *engine) runJob(idx int) bool {
	if n := e.started.Add(1); e.opts.MaxJobs > 0 && n > int64(e.opts.MaxJobs) {
		e.fail(ErrJobLimit)
		return false
	}
	job := e.jobs[idx]
	var lastErr error
	for attempt := 0; attempt <= e.opts.MaxRetries; attempt++ {
		if err := e.ctx.Err(); err != nil {
			e.fail(err)
			return false
		}
		if attempt > 0 {
			e.m.retries.Inc()
		}
		jobStart := e.m.jobNS.Start()
		res, err := guarded(e.ctx, e.fn, job)
		e.m.jobNS.Stop(jobStart)
		if err == nil {
			res = normalize(res, job)
			if e.opts.Journal != nil {
				if jerr := e.opts.Journal.Append(res); jerr != nil {
					e.fail(jerr)
					return false
				}
			}
			e.results[idx] = res
			e.completed.Add(1)
			e.m.jobs.Inc()
			e.m.queueDepth.Add(-1)
			if e.opts.OnResult != nil {
				e.mu.Lock()
				e.opts.OnResult(res)
				e.mu.Unlock()
			}
			return true
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.fail(err)
			return false
		}
		lastErr = err
	}
	e.fail(fmt.Errorf("sweep: job %s failed after %d attempts: %w",
		job.Key, e.opts.MaxRetries+1, lastErr))
	return false
}

// guarded invokes fn, converting a panic into a *JobPanicError so one bad
// job cannot take down the campaign (or the caller's process).
func guarded(ctx context.Context, fn ProtoFunc, job Job) (res Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = Result{}, &JobPanicError{Job: job, Value: rec, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, job)
}

// normalize stamps the job's identity onto its result, so journal rows
// always self-identify even if a protocol function forgets the bookkeeping
// fields.
func normalize(r Result, job Job) Result {
	r.Key, r.Proto, r.N, r.Trial = job.Key, job.Proto, job.N, job.Trial
	return r
}

// ForEach runs fn(i) for i in [0, n) on the work-stealing pool and returns
// the first error. It is the engine's loop-shaped face: experiment sweeps
// that iterate a size grid use it to gain parallelism without adopting the
// journal machinery.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("i=%d", i), Trial: i}
	}
	_, err := Run(ctx, jobs, func(ctx context.Context, job Job) (Result, error) {
		return Result{}, fn(ctx, job.Trial)
	}, Options{Workers: workers})
	return err
}
