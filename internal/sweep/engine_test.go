package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// testJobs builds n trivial jobs whose protocol doubles the trial index.
func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("job/%d", i), Proto: "double", N: 1, Trial: i}
	}
	return jobs
}

func double(_ context.Context, job Job) (Result, error) {
	return Result{Rounds: 2 * job.Trial}, nil
}

func TestRunResultsInJobOrderAnyWorkerCount(t *testing.T) {
	want, err := Run(context.Background(), testJobs(37), double, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		got, err := Run(context.Background(), testJobs(37), double, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("workers=%d: results differ from single-worker run", workers)
		}
		if got.Executed != 37 || got.Resumed != 0 {
			t.Fatalf("workers=%d: executed=%d resumed=%d", workers, got.Executed, got.Resumed)
		}
	}
	for i, r := range want.Results {
		if r.Rounds != 2*i || r.Key != fmt.Sprintf("job/%d", i) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

// Work stealing: a single pathological shard (all slow jobs land on one
// worker's chunk) must still be drained by the other workers. We make the
// first chunk's jobs block until every other job has completed, which can
// only happen if thieves steal the blocked worker's remaining queue.
func TestWorkStealingDrainsSlowShard(t *testing.T) {
	const jobs, workers = 32, 4
	var fastDone atomic.Int64
	fastTotal := int64(jobs - jobs/workers)
	release := make(chan struct{})
	var once sync.Once
	fn := func(ctx context.Context, job Job) (Result, error) {
		if job.Trial < jobs/workers { // the first worker's own chunk
			select {
			case <-release:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			return Result{Rounds: job.Trial}, nil
		}
		if fastDone.Add(1) == fastTotal {
			once.Do(func() { close(release) })
		}
		return Result{Rounds: job.Trial}, nil
	}
	rep, err := Run(context.Background(), testJobs(jobs), fn, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != jobs {
		t.Fatalf("executed %d, want %d", rep.Executed, jobs)
	}
}

func TestRunPanicIsolationAndRetry(t *testing.T) {
	var calls atomic.Int64
	flaky := func(_ context.Context, job Job) (Result, error) {
		if job.Trial == 3 && calls.Add(1) == 1 {
			panic("transient protocol bug")
		}
		return Result{Rounds: job.Trial}, nil
	}
	// Without retries the panic aborts the campaign as a typed error.
	calls.Store(0)
	_, err := Run(context.Background(), testJobs(8), flaky, Options{Workers: 2})
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want JobPanicError, got %v", err)
	}
	if pe.Job.Trial != 3 || pe.Value != "transient protocol bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %+v", pe)
	}
	// With one retry the transient panic is absorbed.
	calls.Store(0)
	rep, err := Run(context.Background(), testJobs(8), flaky, Options{Workers: 2, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 8 || rep.Results[3].Rounds != 3 {
		t.Fatalf("retry run = %+v", rep)
	}
}

func TestRunBoundedRetriesExhaust(t *testing.T) {
	var calls atomic.Int64
	broken := func(_ context.Context, job Job) (Result, error) {
		if job.Trial == 0 {
			calls.Add(1)
			return Result{}, errors.New("deterministic fault")
		}
		return Result{}, nil
	}
	_, err := Run(context.Background(), testJobs(1), broken, Options{Workers: 1, MaxRetries: 2})
	if err == nil || calls.Load() != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 attempts", err, calls.Load())
	}
}

func TestRunCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	fn := func(ctx context.Context, job Job) (Result, error) {
		if executed.Add(1) == 3 {
			cancel()
		}
		return Result{Rounds: job.Trial}, nil
	}
	rep, err := Run(ctx, testJobs(1000), fn, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep.Executed >= 1000 {
		t.Fatal("cancellation did not stop the run")
	}
}

func TestRunMaxJobsLimit(t *testing.T) {
	rep, err := Run(context.Background(), testJobs(20), double, Options{Workers: 1, MaxJobs: 5})
	if !errors.Is(err, ErrJobLimit) {
		t.Fatalf("want ErrJobLimit, got %v", err)
	}
	if rep.Executed != 5 {
		t.Fatalf("executed %d, want exactly 5", rep.Executed)
	}
}

func TestRunDoneSkipsJobs(t *testing.T) {
	jobs := testJobs(10)
	var executed sync.Map
	fn := func(_ context.Context, job Job) (Result, error) {
		executed.Store(job.Key, true)
		return Result{Rounds: 2 * job.Trial}, nil
	}
	done := map[string]Result{
		jobs[2].Key: {Rounds: 4},
		jobs[7].Key: {Rounds: 14},
	}
	rep, err := Run(context.Background(), jobs, fn, Options{Workers: 3, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 8 || rep.Resumed != 2 {
		t.Fatalf("executed=%d resumed=%d", rep.Executed, rep.Resumed)
	}
	for _, key := range []string{jobs[2].Key, jobs[7].Key} {
		if _, ran := executed.Load(key); ran {
			t.Fatalf("done job %s was re-executed", key)
		}
	}
	// Resumed rows are normalized: identity fields restored from the job.
	if rep.Results[2].Key != jobs[2].Key || rep.Results[2].Rounds != 4 {
		t.Fatalf("resumed result = %+v", rep.Results[2])
	}
}

func TestRunRejectsDuplicateKeys(t *testing.T) {
	jobs := testJobs(3)
	jobs[2].Key = jobs[0].Key
	if _, err := Run(context.Background(), jobs, double, Options{}); err == nil {
		t.Fatal("duplicate keys must be rejected")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 100, 4, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	wantErr := errors.New("boom")
	err := ForEach(context.Background(), 10, 2, func(_ context.Context, i int) error {
		if i == 5 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := ForEach(context.Background(), 0, 2, nil); err != nil {
		t.Fatalf("empty ForEach: %v", err)
	}
}

// The engine's determinism contract end to end on a real protocol: the
// same spec produces identical aggregated stats at any worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	spec, _ := Builtin("smoke")
	base, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5} {
		got, err := RunCampaign(context.Background(), spec, CampaignOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if FormatTable(got.Stats) != FormatTable(base.Stats) {
			t.Fatalf("workers=%d: stats differ:\n%s\nvs\n%s", w, FormatTable(got.Stats), FormatTable(base.Stats))
		}
		if !reflect.DeepEqual(got.Results, base.Results) {
			t.Fatalf("workers=%d: per-job results differ", w)
		}
	}
}
