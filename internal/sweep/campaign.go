package sweep

import (
	"context"
	"fmt"

	"anondyn/internal/obs"
)

// CampaignOptions tunes RunCampaign.
type CampaignOptions struct {
	// Workers, MaxRetries, MaxJobs, OnResult, and Obs are passed to Run.
	// Obs additionally observes the journal's append+fsync latency.
	Workers    int
	MaxRetries int
	MaxJobs    int
	OnResult   func(Result)
	Obs        *obs.Collector
	// JournalPath, if non-empty, streams completed jobs to this JSONL
	// file. With Resume, the file's existing rows are loaded first and
	// their jobs are not re-executed; without it the file is truncated.
	JournalPath string
	Resume      bool
}

// CampaignReport is a finished (or interrupted) campaign.
type CampaignReport struct {
	// Spec is the campaign that ran.
	Spec Spec
	// Results holds the per-job results in canonical job order; partial
	// when Err was returned.
	Results []Result
	// Stats is the per-(protocol, size) aggregation; nil on interruption.
	Stats []GroupStat
	// Executed and Resumed count jobs run here vs restored from the
	// journal.
	Executed, Resumed int
}

// RunCampaign is the end-to-end campaign entry point: expand the spec into
// jobs, restore completed jobs from the journal when resuming, execute the
// rest on the worker pool, and aggregate. On interruption the report is
// returned alongside the error with whatever completed — all of it already
// durable in the journal.
func RunCampaign(ctx context.Context, spec Spec, opts CampaignOptions) (*CampaignReport, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	fn, ok := Proto(spec.Proto)
	if !ok {
		return nil, fmt.Errorf("sweep: spec %q names unknown protocol %q", spec.Name, spec.Proto)
	}
	runOpts := Options{
		Workers:    opts.Workers,
		MaxRetries: opts.MaxRetries,
		MaxJobs:    opts.MaxJobs,
		OnResult:   opts.OnResult,
		Obs:        opts.Obs,
	}
	col := opts.Obs
	if col == nil {
		col = obs.Global()
	}
	if opts.JournalPath != "" {
		if opts.Resume {
			done, err := ReadJournal(opts.JournalPath)
			if err != nil {
				return nil, err
			}
			runOpts.Done = done
		}
		j, err := OpenJournal(opts.JournalPath, opts.Resume)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if col != nil {
			j.Observe(col)
		}
		runOpts.Journal = j
	}
	rep, err := Run(ctx, jobs, fn, runOpts)
	out := &CampaignReport{
		Spec:     spec,
		Results:  rep.Results,
		Executed: rep.Executed,
		Resumed:  rep.Resumed,
	}
	if err != nil {
		return out, fmt.Errorf("campaign %s: %w", spec.Name, err)
	}
	out.Stats = Aggregate(rep.Results)
	return out, nil
}
