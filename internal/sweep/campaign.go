package sweep

import (
	"context"
	"fmt"
	"time"

	"anondyn/internal/obs"
)

// CampaignOptions tunes RunCampaign.
type CampaignOptions struct {
	// Workers, MaxRetries, MaxJobs, OnResult, and Obs are passed to Run.
	// Obs additionally observes the journal's append+fsync latency.
	Workers    int
	MaxRetries int
	MaxJobs    int
	OnResult   func(Result)
	Obs        *obs.Collector
	// JournalPath, if non-empty, streams completed jobs to this JSONL
	// file. With Resume, any torn tail left by a mid-append kill is
	// truncated away, the file's remaining rows are loaded, and their jobs
	// are not re-executed; without it the file is truncated to empty.
	JournalPath string
	Resume      bool
	// Throttle, if positive, sleeps this long (cancellably) before every
	// executed job. It is a resume-drill knob: fast campaigns finish before
	// a kill can land mid-flight, so drills that exercise the kill/restart
	// path widen the window with an artificial per-job cost. Resumed jobs
	// never pay it — they do not execute.
	Throttle time.Duration
}

// CampaignReport is a finished (or interrupted) campaign.
type CampaignReport struct {
	// Spec is the campaign that ran.
	Spec Spec
	// Results holds the per-job results in canonical job order; partial
	// when Err was returned.
	Results []Result
	// Stats is the per-(protocol, size) aggregation; nil on interruption.
	Stats []GroupStat
	// Executed and Resumed count jobs run here vs restored from the
	// journal.
	Executed, Resumed int
}

// RunCampaign is the end-to-end campaign entry point: expand the spec into
// jobs, restore completed jobs from the journal when resuming, execute the
// rest on the worker pool, and aggregate. On interruption the report is
// returned alongside the error with whatever completed — all of it already
// durable in the journal.
func RunCampaign(ctx context.Context, spec Spec, opts CampaignOptions) (*CampaignReport, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	fn, ok := Proto(spec.Proto)
	if !ok {
		return nil, fmt.Errorf("sweep: spec %q names unknown protocol %q", spec.Name, spec.Proto)
	}
	if opts.Throttle > 0 {
		inner := fn
		throttle := opts.Throttle
		fn = func(ctx context.Context, job Job) (Result, error) {
			select {
			case <-ctx.Done():
				return Result{}, ctx.Err()
			case <-time.After(throttle):
			}
			return inner(ctx, job)
		}
	}
	runOpts := Options{
		Workers:    opts.Workers,
		MaxRetries: opts.MaxRetries,
		MaxJobs:    opts.MaxJobs,
		OnResult:   opts.OnResult,
		Obs:        opts.Obs,
	}
	col := opts.Obs
	if col == nil {
		col = obs.Global()
	}
	if opts.JournalPath != "" {
		// Open before read: a resume open truncates any torn tail first, so
		// the Done set below can never include a row whose bytes are about
		// to be repaired away.
		j, err := OpenJournal(opts.JournalPath, opts.Resume)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if opts.Resume {
			done, err := ReadJournal(opts.JournalPath)
			if err != nil {
				return nil, err
			}
			runOpts.Done = done
		}
		if col != nil {
			j.Observe(col)
		}
		runOpts.Journal = j
	}
	rep, err := Run(ctx, jobs, fn, runOpts)
	out := &CampaignReport{
		Spec:     spec,
		Results:  rep.Results,
		Executed: rep.Executed,
		Resumed:  rep.Resumed,
	}
	if err != nil {
		return out, fmt.Errorf("campaign %s: %w", spec.Name, err)
	}
	out.Stats = Aggregate(rep.Results)
	return out, nil
}
