package sweep

import "testing"

// TestJobSeedGolden pins the seed derivation. These constants are the
// regression contract of the deterministic-seeding audit: any change to
// JobSeed silently invalidates every journal ever written (a resumed shard
// would re-run jobs with different randomness than the original), so a
// change here must be deliberate and must bump the job-key format too.
func TestJobSeedGolden(t *testing.T) {
	cases := []struct {
		campaign int64
		coords   []uint64
		want     int64
	}{
		{0, nil, -2152535657050944081},
		{1, nil, -7995527694508729151},
		{99, []uint64{13, 0}, -6189885106580444584},
		{99, []uint64{13, 1}, 333879284195039717},
		{99, []uint64{40, 0}, 2791007223798703295},
		{42, []uint64{10, 5}, 5507234253053449660},
		{-1, []uint64{3, 7}, -2352594499993002662},
	}
	for _, c := range cases {
		if got := JobSeed(c.campaign, c.coords...); got != c.want {
			t.Errorf("JobSeed(%d, %v) = %d, want %d", c.campaign, c.coords, got, c.want)
		}
	}
}

// Adjacent campaign seeds and adjacent coordinates must give unrelated
// seeds — the failure mode of the old baseSeed+i scheme was exactly that
// campaign 99's trial 1 equaled campaign 100's trial 0.
func TestJobSeedNoAdditiveCollisions(t *testing.T) {
	seen := make(map[int64][2]int64)
	for campaign := int64(0); campaign < 50; campaign++ {
		for trial := uint64(0); trial < 50; trial++ {
			s := JobSeed(campaign, 13, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: campaign=%d trial=%d vs campaign=%d trial=%d",
					campaign, trial, prev[0], prev[1])
			}
			seen[s] = [2]int64{campaign, int64(trial)}
		}
	}
}

// Seeds must depend only on (campaign, coords): the spec expansion must
// assign every job the seed JobSeed derives from its coordinates.
func TestSpecJobsSeedsMatchDerivation(t *testing.T) {
	spec := Spec{Name: "t", Proto: ProtoMDBLCount, Sizes: []int{5, 9}, Trials: 3, Horizon: 4, Seed: 123}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	for _, j := range jobs {
		want := JobSeed(spec.Seed, uint64(j.N), uint64(j.Trial))
		if j.Seed != want {
			t.Errorf("job %s seed %d, want %d", j.Key, j.Seed, want)
		}
	}
}
