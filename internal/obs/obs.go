// Package obs is the repository's zero-cost-when-disabled observability
// layer: named counters, gauges, and duration histograms behind nil-checkable
// handles, aggregated by a Collector and exported as a JSON snapshot.
//
// The contract every instrumented hot path relies on:
//
//	disabled = nil collector = nil handles = no allocation, no atomics.
//
// Every method on *Collector, *Counter, *Gauge, and *Histogram is safe on a
// nil receiver and returns immediately, so instrumentation sites read
//
//	m.rounds.Inc()          // one predictable branch when disabled
//	start := m.roundNS.Start() // no time.Now() call when disabled
//	...
//	m.roundNS.Stop(start)
//
// with no guards at the call site and zero allocations on the disabled
// path — a property locked by TestDisabledHandlesAllocateNothing and the
// runtime round-loop benchmark.
//
// A Collector is either passed explicitly (runtime.Config.Obs,
// sweep.Options.Obs) or installed process-wide with Enable/Set for code
// with no plumbing path (linalg elimination, the kernel solvers). Global()
// returns nil unless a collector was installed, so un-instrumented
// processes — every binary run without -metrics/-pprof — stay on the nil
// fast path everywhere.
//
// All handle operations are atomic and safe for concurrent use; registering
// a name twice returns the same handle.
package obs

import (
	"sync"
	"time"
)

// Metric names used by the instrumented packages. They live here, not in
// the packages that emit them, so the full vocabulary of a snapshot is
// documented in one place.
const (
	// Runtime engine (internal/runtime): the round-execution hot loop.
	RuntimeRounds    = "runtime.rounds"             // counter: rounds completed
	RuntimeMessages  = "runtime.messages_delivered" // counter: inbox messages delivered
	RuntimeRoundNS   = "runtime.round_ns"           // histogram: per-round wall time
	RuntimePanics    = "runtime.process_panics"     // counter: runs aborted by a process panic
	RuntimeCancels   = "runtime.cancels"            // counter: runs stopped by context cancellation
	RuntimeDeadlines = "runtime.deadline_overruns"  // counter: runs aborted by Config.RoundDeadline
	RuntimeShards    = "runtime.engine_shards"      // gauge: worker count of the last sharded run

	// Sweep engine (internal/sweep): campaign throughput and durability.
	SweepJobs            = "sweep.jobs_executed"     // counter: jobs executed by this process
	SweepRetries         = "sweep.job_retries"       // counter: re-attempts after an execution fault
	SweepQueueDepth      = "sweep.queue_depth"       // gauge: pending jobs not yet completed
	SweepJobNS           = "sweep.job_ns"            // histogram: per-job wall time
	SweepJournalAppendNS = "sweep.journal_append_ns" // histogram: journal append+fsync latency

	// Sweep daemon (internal/sweep/daemon): the campaign service. The
	// engine-level metrics above are additionally recorded per campaign in
	// each campaign's own collector, exposed on the daemon's /metrics.
	DaemonCampaignsSubmitted = "daemon.campaigns_submitted" // counter: campaigns accepted over HTTP
	DaemonCampaignsResumed   = "daemon.campaigns_resumed"   // counter: unfinished campaigns re-queued at startup
	DaemonCampaignsDone      = "daemon.campaigns_done"      // counter: campaigns that completed
	DaemonCampaignsFailed    = "daemon.campaigns_failed"    // counter: campaigns stopped by an execution fault
	DaemonCampaignsCanceled  = "daemon.campaigns_canceled"  // counter: campaigns stopped by a cancel request
	DaemonCampaignsActive    = "daemon.campaigns_active"    // gauge: campaigns running right now
	DaemonHTTPRequests       = "daemon.http_requests"       // counter: API requests served
	DaemonStreamClients      = "daemon.stream_clients"      // gauge: journal streams currently open

	// Exact linear algebra (internal/linalg): rational elimination.
	LinalgPivots   = "linalg.elimination_pivots" // counter: pivots consumed by rref
	LinalgPeakBits = "linalg.peak_bits"          // gauge: peak big.Int bit-length seen in a pivot row

	// Kernel solvers (internal/kernel): the leader's counting rule.
	KernelSolverCalls = "kernel.solver_calls" // counter: full view solves (SolveCountInterval)
	KernelRounds      = "kernel.rounds"       // counter: incremental observations folded in
	KernelRoundNS     = "kernel.round_ns"     // histogram: per-round incremental solve time

	// Property-testing harness (internal/check): randomized verification.
	CheckInstances   = "check.instances_generated" // counter: instances drawn by generators
	CheckEvals       = "check.oracle_evals"        // counter: oracle checks evaluated
	CheckFailures    = "check.failures"            // counter: oracle checks that fired
	CheckShrinkSteps = "check.shrink_steps"        // counter: candidate instances tried while shrinking
)

// Collector owns a process- or run-scoped registry of named metrics. The
// zero value is not usable; construct with New. A nil *Collector is the
// disabled state: every method no-ops and every handle accessor returns a
// nil handle.
type Collector struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an enabled, empty collector. Its uptime (the denominator of
// snapshot rates such as jobs/sec) starts now.
func New() *Collector {
	return &Collector{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// collector it returns a nil handle, whose methods all no-op.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.counters[name]
	if !ok {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// Gauge returns the named gauge, creating it on first use. Nil collector,
// nil handle.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.gauges[name]
	if !ok {
		g = &Gauge{}
		c.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil
// collector, nil handle.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[name]
	if !ok {
		h = newHistogram()
		c.hists[name] = h
	}
	return h
}
