package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are safe
// on a nil receiver (the disabled state) and for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta (negative deltas are permitted but unconventional).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level: queue depth, peak bit-length, pool size.
// All methods are safe on a nil receiver and for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current level — a
// monotone high-water mark (peak big.Int bit-length, max queue depth).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level; 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds values v with
// bit-length i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0). 64
// buckets cover the full int64 range, so Observe never clamps.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed distribution, sized for
// nanosecond durations but unit-agnostic. All methods are safe on a nil
// receiver and for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps a sample to its log2 bucket: 0 for v <= 0, else the
// bit-length of v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u != 0; u >>= 1 {
		b++
	}
	return b
}

// Start begins timing a duration sample. On a nil handle it returns the
// zero Time without consulting the clock, so a disabled timing site costs
// one branch.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop records the nanoseconds elapsed since start (a Start result). A nil
// handle no-ops, pairing with the nil Start.
func (h *Histogram) Stop(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of samples recorded; 0 on a nil handle.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}
