package obs

import "net/http"

// Handler serves the collector's live JSON snapshot over HTTP — the single
// implementation behind the -pprof debug server's /metrics route and the
// sweep daemon's per-campaign metrics endpoints. A nil collector serves
// "null", the same convention as WriteFile: an observed-but-empty process is
// distinguishable from a missing endpoint.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		data, err := c.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
	})
}
