package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	c := New()
	ctr := c.Counter("x.count")
	ctr.Inc()
	ctr.Add(4)
	if got := ctr.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c.Counter("x.count") != ctr {
		t.Fatal("re-registering a counter must return the same handle")
	}

	g := c.Gauge("x.depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax(3) lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax(11) = %d, want 11", got)
	}

	h := c.Histogram("x.ns")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	var c *Collector
	// Every accessor on a nil collector returns a nil handle; every
	// operation on a nil handle is a no-op. None of this may panic.
	ctr := c.Counter(RuntimeRounds)
	ctr.Inc()
	ctr.Add(10)
	if ctr.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := c.Gauge(SweepQueueDepth)
	g.Set(5)
	g.Add(1)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := c.Histogram(RuntimeRoundNS)
	start := h.Start()
	if !start.IsZero() {
		t.Fatal("nil histogram Start must not consult the clock")
	}
	h.Stop(start)
	h.Observe(42)
	if h.Count() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	if c.Snapshot() != nil {
		t.Fatal("nil collector snapshot must be nil")
	}
}

// TestDisabledHandlesAllocateNothing locks the package contract: with a
// nil collector, a full set of instrumentation operations allocates
// nothing. This is what lets the runtime round loop and the sweep engine
// carry instrumentation unconditionally.
func TestDisabledHandlesAllocateNothing(t *testing.T) {
	var c *Collector
	ctr := c.Counter(RuntimeRounds)
	g := c.Gauge(SweepQueueDepth)
	h := c.Histogram(RuntimeRoundNS)
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Inc()
		ctr.Add(3)
		g.Set(1)
		g.SetMax(2)
		start := h.Start()
		h.Stop(start)
		h.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f/op, want 0", allocs)
	}
}

// Enabled steady-state operations must not allocate either (registration
// may; per-event operations may not), so enabling metrics never changes
// the allocation profile of a hot loop.
func TestEnabledHandlesAllocateNothingSteadyState(t *testing.T) {
	c := New()
	ctr := c.Counter(RuntimeRounds)
	g := c.Gauge(SweepQueueDepth)
	h := c.Histogram(RuntimeRoundNS)
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Inc()
		g.SetMax(7)
		h.Observe(123)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state instrumentation allocated %.1f/op, want 0", allocs)
	}
}

func TestHistogramSnapshotStatistics(t *testing.T) {
	c := New()
	h := c.Histogram("t.ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := c.Snapshot().Histograms["t.ns"]
	if s.Count != 100 || s.Min != 1 || s.Max != 100 || s.Sum != 5050 {
		t.Fatalf("snapshot = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	// Log2 buckets give upper bounds: the true p50 is 50, its bucket's
	// upper bound is 63; p99 is 99 -> bucket le=127.
	if s.P50 != 63 || s.P90 != 127 || s.P99 != 127 {
		t.Fatalf("quantiles = p50:%d p90:%d p99:%d", s.P50, s.P90, s.P99)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", total)
	}
}

func TestHistogramEmptyAndNegativeSamples(t *testing.T) {
	c := New()
	empty := c.Snapshot()
	if len(empty.Histograms) != 0 {
		t.Fatalf("unexpected histograms: %v", empty.Names())
	}
	h := c.Histogram("t.ns")
	hs := c.Snapshot().Histograms["t.ns"]
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 {
		t.Fatalf("empty histogram snapshot = %+v", hs)
	}
	h.Observe(-5)
	h.Observe(0)
	hs = c.Snapshot().Histograms["t.ns"]
	if hs.Count != 2 || hs.Min != -5 || hs.Max != 0 {
		t.Fatalf("non-positive samples snapshot = %+v", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 0 || hs.Buckets[0].Count != 2 {
		t.Fatalf("non-positive samples must land in the le=0 bucket: %+v", hs.Buckets)
	}
}

func TestBucketOfBoundaries(t *testing.T) {
	cases := map[int64]int{
		math.MinInt64: 0, -1: 0, 0: 0,
		1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4,
		math.MaxInt64: 63,
	}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSnapshotRates(t *testing.T) {
	c := New()
	c.start = time.Now().Add(-2 * time.Second) // pin a nonzero uptime
	c.Counter(SweepJobs).Add(100)
	s := c.Snapshot()
	if s.UptimeSeconds < 2 {
		t.Fatalf("uptime = %v", s.UptimeSeconds)
	}
	rate := s.Rates[SweepJobs]
	if rate <= 0 || rate > 50.5 {
		t.Fatalf("jobs/sec = %v, want ~<=50", rate)
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	c := New()
	c.Counter(RuntimeRounds).Add(7)
	c.Gauge(SweepQueueDepth).Set(3)
	c.Histogram(RuntimeRoundNS).Observe(1500)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if s.Counters[RuntimeRounds] != 7 || s.Gauges[SweepQueueDepth] != 3 {
		t.Fatalf("round-trip lost values: %+v", s)
	}
	if s.Histograms[RuntimeRoundNS].Count != 1 {
		t.Fatalf("round-trip lost histogram: %+v", s.Histograms)
	}

	// A nil collector writes JSON null — an explicit "nothing collected".
	var disabled *Collector
	nullPath := filepath.Join(t.TempDir(), "null.json")
	if err := disabled.WriteFile(nullPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(nullPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "null\n" {
		t.Fatalf("nil snapshot file = %q, want null", raw)
	}
}

func TestGlobalInstallAndReset(t *testing.T) {
	prev := Global()
	defer Set(prev)
	Set(nil)
	if Global() != nil {
		t.Fatal("global must start nil")
	}
	c := Enable()
	if Global() != c {
		t.Fatal("Enable must install the returned collector")
	}
	Set(nil)
	if Global() != nil {
		t.Fatal("Set(nil) must disable the global collector")
	}
}

func TestConcurrentUseIsRaceClean(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := c.Counter(SweepJobs)
			g := c.Gauge(SweepQueueDepth)
			h := c.Histogram(SweepJobNS)
			for i := 0; i < 500; i++ {
				ctr.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				h.Observe(int64(i % 37))
				if i%100 == 0 {
					_ = c.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Counters[SweepJobs] != 8*500 {
		t.Fatalf("counter = %d, want %d", s.Counters[SweepJobs], 8*500)
	}
	if s.Histograms[SweepJobNS].Count != 8*500 {
		t.Fatalf("histogram count = %d", s.Histograms[SweepJobNS].Count)
	}
}

func BenchmarkDisabledCounterInc(b *testing.B) {
	var c *Collector
	ctr := c.Counter(RuntimeRounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
	}
}

func BenchmarkDisabledHistogramStartStop(b *testing.B) {
	var c *Collector
	h := c.Histogram(RuntimeRoundNS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Stop(h.Start())
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := New().Histogram(RuntimeRoundNS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
