package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Snapshot is a point-in-time JSON view of a collector — the payload of the
// -metrics flag and of the /metrics endpoint served with -pprof. Metric
// reads are atomic per metric but the snapshot as a whole is not a
// consistent cut; it is a diagnostic artifact, not a ledger.
type Snapshot struct {
	// UptimeSeconds is the collector's age, the denominator of Rates.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Counters holds every counter's current value by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Rates holds value/uptime for every counter, in events per second
	// (e.g. sweep.jobs_executed -> jobs/sec).
	Rates map[string]float64 `json:"rates_per_sec,omitempty"`
	// Gauges holds every gauge's current level by name.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds every histogram's distribution by name.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot summarizes one histogram. Min/Max/Sum/Mean are exact;
// the percentiles are upper bounds read off the log2 buckets (within 2x of
// the true value), which is the precision latency triage needs.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	// Buckets lists the non-empty log2 buckets in ascending order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty log2 bucket: Count samples v with v <= Le (and
// greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot captures the collector's current state. On a nil collector it
// returns nil, which JSON-encodes as null.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{
		UptimeSeconds: time.Since(c.start).Seconds(),
		Counters:      make(map[string]int64, len(c.counters)),
		Rates:         make(map[string]float64, len(c.counters)),
		Gauges:        make(map[string]int64, len(c.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(c.hists)),
	}
	for name, ctr := range c.counters {
		v := ctr.Value()
		s.Counters[name] = v
		if s.UptimeSeconds > 0 {
			s.Rates[name] = float64(v) / s.UptimeSeconds
		}
	}
	for name, g := range c.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range c.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if hs.Count == 0 {
		return hs
	}
	hs.Min = h.min.Load()
	hs.Max = h.max.Load()
	hs.Mean = float64(hs.Sum) / float64(hs.Count)

	counts := make([]int64, histBuckets)
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// Upper bound of bucket i is 2^i - 1 (bucket 0: v <= 0).
	le := func(i int) int64 {
		if i == 0 {
			return 0
		}
		if i >= 63 {
			return int64(^uint64(0) >> 1)
		}
		return int64(1)<<i - 1
	}
	quantile := func(p float64) int64 {
		// Nearest-rank over the bucketed sample, in exact integer
		// arithmetic (see sweep.Distribution for the same convention).
		rank := int64(p*100)*(total-1)/100 + 1
		seen := int64(0)
		for i := 0; i < histBuckets; i++ {
			seen += counts[i]
			if seen >= rank {
				return le(i)
			}
		}
		return hs.Max
	}
	hs.P50, hs.P90, hs.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	for i := 0; i < histBuckets; i++ {
		if counts[i] > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: le(i), Count: counts[i]})
		}
	}
	return hs
}

// MarshalIndent renders the snapshot as stable, human-diffable JSON
// (encoding/json sorts map keys).
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Names returns the sorted union of all metric names in the snapshot,
// mostly for tests and summaries.
func (s *Snapshot) Names() []string {
	if s == nil {
		return nil
	}
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteFile snapshots the collector and writes it to path as indented
// JSON — the implementation of the shared -metrics flag. A nil collector
// writes "null", making an empty run distinguishable from a missing file.
func (c *Collector) WriteFile(path string) error {
	data, err := c.Snapshot().MarshalIndent()
	if err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}
