package obs

import "sync/atomic"

// global is the process-wide collector, nil unless installed. It exists for
// instrumentation sites with no plumbing path to a per-run collector — the
// exact linear algebra inside linalg.rref and the kernel solvers, which are
// called from deep inside protocol code. Everything that can take a
// collector explicitly (runtime.Config.Obs, sweep.Options.Obs) should; the
// global is the fallback they also default to.
var global atomic.Pointer[Collector]

// Enable installs a fresh collector as the process-wide default and
// returns it. It is what the shared -metrics/-pprof flags call once at
// startup.
func Enable() *Collector {
	c := New()
	global.Store(c)
	return c
}

// Set installs c (possibly nil, which disables global collection again).
// Tests use it to scope a collector to one test and restore the previous
// state afterwards.
func Set(c *Collector) {
	global.Store(c)
}

// Global returns the process-wide collector, or nil when observability is
// disabled — the common case, and the one every hot path is optimized for.
func Global() *Collector {
	return global.Load()
}
