package naming

import (
	"fmt"
	"testing"

	"anondyn/internal/runtime"
)

// namerProc is a deterministic "naming attempt": it folds everything it
// hears into a running state string and would output that state as its
// name. Twins must end with identical names.
type namerProc struct {
	state string
}

func (p *namerProc) Send(r int) runtime.Message {
	return fmt.Sprintf("s%d:%s", r, p.state)
}

func (p *namerProc) Receive(r int, msgs []runtime.Message) {
	for _, m := range msgs {
		if s, ok := m.(string); ok {
			p.state += "|" + s
		}
	}
	p.state = fmt.Sprintf("h(%d,%d)", len(p.state), r) // fold to keep it short
}

func TestTwinWitnessTranscriptsIdentical(t *testing.T) {
	for _, extras := range []int{0, 1, 4} {
		w, err := RunTwinWitness(extras, 6, func(int) runtime.Process {
			return &namerProc{}
		})
		if err != nil {
			t.Fatalf("extras=%d: %v", extras, err)
		}
		if !w.TranscriptsEqual {
			t.Fatalf("extras=%d: twins distinguished — naming would be possible", extras)
		}
		if w.TwinA == w.TwinB {
			t.Fatalf("degenerate twins: %d", w.TwinA)
		}
	}
}

func TestTwinWitnessFinalStatesEqual(t *testing.T) {
	// Beyond transcripts: the twins' actual process states coincide.
	var procs []*namerProc
	w, err := RunTwinWitness(3, 5, func(int) runtime.Process {
		p := &namerProc{}
		procs = append(procs, p)
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs[w.TwinA].state != procs[w.TwinB].state {
		t.Fatalf("twin states differ: %q vs %q", procs[w.TwinA].state, procs[w.TwinB].state)
	}
	// A non-twin node generally diverges.
	if len(procs) > w.TwinB+1 {
		other := procs[len(procs)-1]
		if other.state == procs[w.TwinA].state {
			t.Log("note: non-twin coincidentally matched; acceptable but unusual")
		}
	}
}

func TestTwinWitnessErrors(t *testing.T) {
	f := func(int) runtime.Process { return &namerProc{} }
	if _, err := RunTwinWitness(-1, 3, f); err == nil {
		t.Fatal("negative extras should error")
	}
	if _, err := RunTwinWitness(1, 0, f); err == nil {
		t.Fatal("zero rounds should error")
	}
	if _, err := RunTwinWitness(1, 3, nil); err == nil {
		t.Fatal("nil factory should error")
	}
}
