// Package naming makes the naming impossibility executable. Naming —
// assigning distinct identifiers to all nodes — is the companion problem
// to counting in [15, 16]. In the anonymous broadcast model it is
// impossible whenever the adversary keeps two nodes *twinned*: nodes whose
// label-set histories coincide receive identical inboxes in every round of
// ANY deterministic protocol, so their states, and hence their chosen
// names, stay equal forever. RunTwinWitness runs a protocol of the
// caller's choice on the 𝒢(PD)₂ realization of a twinned schedule and
// checks the twins' transcripts byte-for-byte.
package naming

import (
	"fmt"

	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
	"anondyn/internal/trace"
)

// TwinWitness reports the outcome of a twin run.
type TwinWitness struct {
	// TwinA and TwinB are the node indices (in the PD₂ network) of the
	// twinned pair.
	TwinA, TwinB int
	// Rounds is the number of recorded rounds.
	Rounds int
	// TranscriptsEqual is true iff the twins saw identical inboxes in
	// every round — which forces any deterministic protocol to give them
	// identical outputs (no naming).
	TranscriptsEqual bool
}

// RunTwinWitness builds a schedule in which nodes 0 and 1 of W share every
// label set (twins), realizes it as a 𝒢(PD)₂ network, runs the given
// process factory for `rounds` rounds under the recorder, and compares the
// twins' transcripts. The factory is called once per node; any
// deterministic protocol can be plugged in.
func RunTwinWitness(extraNodes, rounds int, factory func(node int) runtime.Process) (*TwinWitness, error) {
	if extraNodes < 0 {
		return nil, fmt.Errorf("core: negative extraNodes %d", extraNodes)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("core: rounds must be >= 1, got %d", rounds)
	}
	if factory == nil {
		return nil, fmt.Errorf("core: nil process factory")
	}
	// Twins follow an arbitrary non-constant schedule; extras differ.
	twinRow := make([]multigraph.LabelSet, rounds)
	for r := range twinRow {
		switch r % 3 {
		case 0:
			twinRow[r] = multigraph.SetOf(1)
		case 1:
			twinRow[r] = multigraph.SetOf(1, 2)
		default:
			twinRow[r] = multigraph.SetOf(2)
		}
	}
	labels := [][]multigraph.LabelSet{twinRow, append([]multigraph.LabelSet(nil), twinRow...)}
	for i := 0; i < extraNodes; i++ {
		row := make([]multigraph.LabelSet, rounds)
		for r := range row {
			if (r+i)%2 == 0 {
				row[r] = multigraph.SetOf(2)
			} else {
				row[r] = multigraph.SetOf(1)
			}
		}
		labels = append(labels, row)
	}
	m, err := multigraph.New(2, labels)
	if err != nil {
		return nil, err
	}
	net, layout, err := m.ToPD2()
	if err != nil {
		return nil, err
	}
	procs := make([]runtime.Process, net.N())
	for i := range procs {
		procs[i] = factory(i)
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		MaxRounds: rounds,
	}
	rec, wrapped, err := trace.NewRecorder(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := runtime.RunSequential(wrapped); err != nil {
		return nil, err
	}
	a, b := int(layout.V2[0]), int(layout.V2[1])
	ta, err := rec.Trace().Transcript(a)
	if err != nil {
		return nil, err
	}
	tb, err := rec.Trace().Transcript(b)
	if err != nil {
		return nil, err
	}
	eq := true
	for r := 0; r < rounds; r++ {
		if ta[r] != tb[r] {
			eq = false
			break
		}
	}
	return &TwinWitness{TwinA: a, TwinB: b, Rounds: rounds, TranscriptsEqual: eq}, nil
}
