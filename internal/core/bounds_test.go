package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMaxIndistinguishableRoundsTable(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, 0},
		{-3, 0},
		{1, 1}, // Σ⁻k_0 = 1
		{2, 1},
		{3, 1},
		{4, 2}, // Σ⁻k_1 = 4 (paper: n >= 4 has two round-1 solutions)
		{12, 2},
		{13, 3}, // Σ⁻k_2 = 13
		{39, 3},
		{40, 4}, // Σ⁻k_3 = 40
		{121, 5},
		{1000, 6},
	}
	for _, tc := range cases {
		if got := MaxIndistinguishableRounds(tc.n); got != tc.want {
			t.Errorf("MaxIndistinguishableRounds(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestLowerBoundRoundsMatchesPaperExamples(t *testing.T) {
	// The paper observes: for n <= 3 the leader can count in 2 rounds;
	// for n >= 4 two round-1-indistinguishable solutions exist.
	if got := LowerBoundRounds(3); got != 2 {
		t.Fatalf("LowerBoundRounds(3) = %d, want 2", got)
	}
	if got := LowerBoundRounds(4); got != 3 {
		t.Fatalf("LowerBoundRounds(4) = %d, want 3", got)
	}
}

func TestMinSizeForRoundsInverse(t *testing.T) {
	for tt := 0; tt <= 10; tt++ {
		n := MinSizeForRounds(tt)
		if tt == 0 {
			if n != 0 {
				t.Fatalf("MinSizeForRounds(0) = %d", n)
			}
			continue
		}
		if got := MaxIndistinguishableRounds(n); got != tt {
			t.Fatalf("MaxIndistinguishableRounds(MinSizeForRounds(%d)=%d) = %d", tt, n, got)
		}
		if got := MaxIndistinguishableRounds(n - 1); got != tt-1 {
			t.Fatalf("size %d should sustain only %d rounds, got %d", n-1, tt-1, got)
		}
	}
	if MinSizeForRounds(-1) != 0 {
		t.Fatal("negative rounds should give 0")
	}
}

func TestLowerBoundGrowsLogarithmically(t *testing.T) {
	// T(3n+1) = T(n)+1 when n = (3^t-1)/2 exactly; more loosely, tripling
	// n increases the bound by exactly one for saturated sizes.
	for tt := 1; tt <= 8; tt++ {
		n := MinSizeForRounds(tt)
		nNext := MinSizeForRounds(tt + 1)
		if nNext != 3*n+1 {
			t.Fatalf("saturated sizes: got %d after %d, want %d", nNext, n, 3*n+1)
		}
	}
}

func TestLowerBoundRoundsBig(t *testing.T) {
	for _, n := range []int{0, 1, 4, 13, 40, 1000, 88573} {
		want := int64(LowerBoundRounds(n))
		got := LowerBoundRoundsBig(big.NewInt(int64(n)))
		if got.Int64() != want {
			t.Fatalf("LowerBoundRoundsBig(%d) = %s, want %d", n, got, want)
		}
	}
	// A size far beyond int range: n = (3^100-1)/2 saturates T = 100
	// indistinguishable rounds, so the bound is 101.
	huge := new(big.Int).Exp(big.NewInt(3), big.NewInt(100), nil)
	huge.Rsh(huge, 1)
	got := LowerBoundRoundsBig(huge)
	if got.Int64() != 101 {
		t.Fatalf("LowerBoundRoundsBig((3^100-1)/2) = %s, want 101", got)
	}
}

func TestChainLowerBoundRounds(t *testing.T) {
	if got := ChainLowerBoundRounds(4, 5); got != 5+3 {
		t.Fatalf("ChainLowerBoundRounds(4,5) = %d, want 8", got)
	}
	if got := ChainLowerBoundRounds(4, -1); got != LowerBoundRounds(4) {
		t.Fatalf("negative delay should clamp to 0, got %d", got)
	}
}

// The Corollary 1 sum must saturate rather than wrap when delay is near
// MaxInt (delay + bound previously overflowed to a negative round count).
func TestChainLowerBoundRoundsSaturates(t *testing.T) {
	bound := LowerBoundRounds(4) // 3
	// Exact at the last representable sum.
	if got := ChainLowerBoundRounds(4, math.MaxInt-bound); got != math.MaxInt {
		t.Fatalf("ChainLowerBoundRounds(4, MaxInt-%d) = %d, want MaxInt", bound, got)
	}
	for _, delay := range []int{math.MaxInt - bound + 1, math.MaxInt - 1, math.MaxInt} {
		got := ChainLowerBoundRounds(4, delay)
		if got != math.MaxInt {
			t.Errorf("ChainLowerBoundRounds(4, %d) = %d, want MaxInt saturation", delay, got)
		}
		if got < 0 {
			t.Errorf("ChainLowerBoundRounds(4, %d) wrapped negative: %d", delay, got)
		}
	}
	// Saturation also holds when the bound itself is large (huge n).
	if got := ChainLowerBoundRounds(math.MaxInt, math.MaxInt); got != math.MaxInt {
		t.Errorf("ChainLowerBoundRounds(MaxInt, MaxInt) = %d, want MaxInt", got)
	}
}

// TestMaxIndistinguishableRoundsHugeSizes is the overflow regression test:
// the old implementation compared pow*3 <= 2*n+1 in native int, which wraps
// for n > MaxInt/2 (and for pow near MaxInt), silently truncating the loop.
// The exact big-integer bound is the oracle.
func TestMaxIndistinguishableRoundsHugeSizes(t *testing.T) {
	sizes := []int{
		math.MaxInt/2 - 2,
		math.MaxInt/2 - 1,
		math.MaxInt / 2, // first size where 2n+1 wraps
		math.MaxInt/2 + 1,
		math.MaxInt/2 + 2,
		math.MaxInt - 1,
		math.MaxInt,
	}
	// Also pin every threshold neighborhood representable in int.
	for tt := 1; ; tt++ {
		th := MinSizeForRounds(tt)
		if th == math.MaxInt {
			break
		}
		sizes = append(sizes, th-1, th, th+1)
	}
	for _, n := range sizes {
		want := new(big.Int).Sub(LowerBoundRoundsBig(big.NewInt(int64(n))), big.NewInt(1))
		if got := MaxIndistinguishableRounds(n); int64(got) != want.Int64() {
			t.Errorf("MaxIndistinguishableRounds(%d) = %d, want %s", n, got, want)
		}
	}
}

// TestMinSizeForRoundsSaturates verifies the inverse saturates cleanly
// instead of wrapping: beyond the largest representable threshold it
// returns MaxInt, preserving MinSizeForRounds(t) <= n ⇔
// MaxIndistinguishableRounds(n) >= t for all int n.
func TestMinSizeForRoundsSaturates(t *testing.T) {
	tMax := MaxIndistinguishableRounds(math.MaxInt)
	last := MinSizeForRounds(tMax)
	if last == math.MaxInt || last <= 0 {
		t.Fatalf("threshold for t=%d should be exact, got %d", tMax, last)
	}
	if got := MinSizeForRounds(tMax + 1); got != math.MaxInt {
		t.Fatalf("MinSizeForRounds(%d) = %d, want saturation at MaxInt", tMax+1, got)
	}
	if got := MinSizeForRounds(10_000); got != math.MaxInt {
		t.Fatalf("MinSizeForRounds(10000) = %d, want saturation at MaxInt", got)
	}
	// The exact thresholds must still match the closed form (3^t-1)/2.
	pow := big.NewInt(1)
	three := big.NewInt(3)
	for tt := 1; tt <= tMax; tt++ {
		pow.Mul(pow, three)
		want := new(big.Int).Sub(pow, big.NewInt(1))
		want.Rsh(want, 1)
		if !want.IsInt64() && math.MaxInt == math.MaxInt64 {
			t.Fatalf("threshold for t=%d unexpectedly exceeds int64", tt)
		}
		if got := MinSizeForRounds(tt); int64(got) != want.Int64() {
			t.Errorf("MinSizeForRounds(%d) = %d, want %s", tt, got, want)
		}
	}
}

// Property: the bound is monotone in n and increases by at most 1 when n
// increases by 1.
func TestBoundMonotoneProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw % 5000)
		a := MaxIndistinguishableRounds(n)
		b := MaxIndistinguishableRounds(n + 1)
		return b >= a && b <= a+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
