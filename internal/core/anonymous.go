package core

import (
	"fmt"

	"anondyn/internal/multigraph"
)

// This file works out the upper-bound side of the paper's Lemma 1 remark.
// The lemma drops the V₁ identifiers to argue "without identifiers the
// leader cannot realize if messages of two successive rounds arrive from
// the same node of V₁" — anonymity can only make counting harder. Here we
// show the converse direction for full-information relays: if each
// (anonymous) relay broadcasts its complete observation history every
// round, the leader can THREAD the streams by content — a history received
// at round r+1 extends exactly one history received at round r, unless the
// two relays' histories are identical, in which case the labeling is
// irrelevant because the leader view is label-symmetric. Counting with
// anonymous relays therefore terminates at exactly the same round as with
// labeled relays: the Ω(log |V|) bound is about the anonymity of the
// counted nodes, not of the relay layer.

// RelayStream is one relay's observation history: States[r] maps a node
// state key to the number of attached nodes in that state at round r.
type RelayStream struct {
	States []map[string]int
}

// prefixOf reports whether s's first n rounds equal t's first n rounds.
func (s *RelayStream) prefixOf(t *RelayStream, n int) bool {
	if len(s.States) < n || len(t.States) < n {
		return false
	}
	for r := 0; r < n; r++ {
		if len(s.States[r]) != len(t.States[r]) {
			return false
		}
		for k, v := range s.States[r] {
			if t.States[r][k] != v {
				return false
			}
		}
	}
	return true
}

// RelayStreams extracts the two relays' observation histories from a
// ℳ(DBL)₂ schedule, through the given number of rounds.
func RelayStreams(m *multigraph.Multigraph, rounds int) ([2]*RelayStream, error) {
	var streams [2]*RelayStream
	if m.K() != 2 {
		return streams, fmt.Errorf("core: relay streams need k=2, got %d", m.K())
	}
	if rounds < 0 || rounds > m.Horizon() {
		return streams, fmt.Errorf("core: rounds %d out of range [0,%d]", rounds, m.Horizon())
	}
	streams[0] = &RelayStream{States: make([]map[string]int, rounds)}
	streams[1] = &RelayStream{States: make([]map[string]int, rounds)}
	for r := 0; r < rounds; r++ {
		streams[0].States[r] = make(map[string]int)
		streams[1].States[r] = make(map[string]int)
		obs, err := m.LeaderObservation(r)
		if err != nil {
			return streams, err
		}
		for key, count := range obs {
			streams[key.Label-1].States[r][key.StateKey] = count
		}
	}
	return streams, nil
}

// ThreadStreams simulates the anonymous leader: it receives, at each round
// r, the unordered pair of relay histories of length r+1 and threads them
// into two persistent streams. It returns the reconstructed labeled leader
// view (with an arbitrary but consistent label assignment) and whether any
// round's threading was ambiguous (identical histories — harmless, since
// the view is then label-symmetric).
//
// The input is the ground-truth streams; the function only ever inspects
// them the way the anonymous leader could: via the per-round unordered
// pair of prefixes.
func ThreadStreams(streams [2]*RelayStream, rounds int) (multigraph.LeaderView, bool, error) {
	if streams[0] == nil || streams[1] == nil {
		return nil, false, fmt.Errorf("core: nil relay stream")
	}
	if len(streams[0].States) < rounds || len(streams[1].States) < rounds {
		return nil, false, fmt.Errorf("core: streams cover %d and %d rounds, need %d",
			len(streams[0].States), len(streams[1].States), rounds)
	}
	// The anonymous leader's threads: thread j currently holds the
	// length-r history of one physical relay. At round r it receives the
	// unordered pair of length-(r+1) histories; a received history can be
	// matched to a thread iff it extends the thread's prefix. The swapped
	// assignment is also consistent exactly when the two relays'
	// histories coincide through round r — and in that case we
	// deliberately TAKE the swap (the maximally wrong choice), so the
	// tests prove the reconstructed labeling is immaterial.
	assign := [2]int{0, 1} // thread j currently follows streams[assign[j]]
	ambiguous := false
	for r := 0; r < rounds; r++ {
		if streams[0].prefixOf(streams[1], r) {
			// Threads are identical through round r: relabeling is legal.
			ambiguous = true
			assign[0], assign[1] = assign[1], assign[0]
		}
	}
	swapped := assign[0] == 1
	view := make(multigraph.LeaderView, rounds)
	for r := 0; r < rounds; r++ {
		obs := make(multigraph.Observation)
		for j := 0; j < 2; j++ {
			for key, count := range streams[assign[j]].States[r] {
				if swapped {
					// A global relabeling renames the labels inside the
					// reported node states too, keeping the
					// reconstructed view a legal execution's view.
					key = swapKeyLabels(key)
				}
				obs[multigraph.ObsKey{Label: j + 1, StateKey: key}] = count
			}
		}
		view[r] = obs
	}
	return view, ambiguous, nil
}

// swapKeyLabels applies the label transposition 1<->2 to every label set in
// a state key: masks 1 and 2 swap, mask 3 ({1,2}) is fixed.
func swapKeyLabels(key string) string {
	if key == "" {
		return key
	}
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '1':
			out = append(out, '2')
		case '2':
			out = append(out, '1')
		default:
			out = append(out, key[i])
		}
	}
	return string(out)
}

// AnonymousCountRounds runs the anonymous-relay leader on a schedule: it
// threads the relay streams round by round and terminates as soon as the
// reconstructed view pins the count. By the label-symmetry argument above
// it terminates at exactly the same round as CountOnMultigraph.
func AnonymousCountRounds(m *multigraph.Multigraph, maxRounds int) (CountResult, error) {
	limit := maxRounds
	if h := m.Horizon(); h < limit {
		limit = h
	}
	streams, err := RelayStreams(m, limit)
	if err != nil {
		return CountResult{}, err
	}
	for rounds := 1; rounds <= limit; rounds++ {
		view, _, err := ThreadStreams(streams, rounds)
		if err != nil {
			return CountResult{}, err
		}
		iv, err := countIntervalOfView(view)
		if err != nil {
			return CountResult{}, err
		}
		if iv.Unique() {
			return CountResult{Count: iv.MinSize, Rounds: rounds}, nil
		}
	}
	return CountResult{}, fmt.Errorf("core: anonymous count not determined within %d rounds", limit)
}
