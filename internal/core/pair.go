package core

import (
	"fmt"
	"math/big"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// Pair is a pair of ℳ(DBL)ₖ multigraphs of sizes n and n+1 whose leader
// views are identical through Rounds completed rounds — the constructive
// witness of Lemma 5, produced by the worst-case adversary (k = 2 in the
// paper; IndistinguishablePairK generalizes the alphabet).
type Pair struct {
	// M has |W| = N, MPrime has |W| = N+1.
	M, MPrime *multigraph.Multigraph
	// N is the size of the smaller multigraph.
	N int
	// Rounds is the number of completed rounds through which the two
	// leader views coincide.
	Rounds int
}

// IndistinguishablePair constructs, for a network of size n, the Lemma 5
// adversarial pair sustained for the requested number of completed rounds
// (1 ≤ rounds ≤ MaxIndistinguishableRounds(n)).
//
// The construction follows the proof: with r = rounds-1, place one node on
// each history in the negative support of the kernel k_r (Σ⁻k_r of them),
// park any surplus nodes on the first negative history, and obtain the
// (n+1)-sized twin by adding k_r — which, by M_r k_r = 0, leaves every
// leader observation unchanged. Both configurations are realizable because
// every entry stays non-negative.
func IndistinguishablePair(n, rounds int) (*Pair, error) {
	return IndistinguishablePairK(n, rounds, 2)
}

// WorstCasePair is IndistinguishablePair at the maximum sustainable number
// of rounds for size n.
func WorstCasePair(n int) (*Pair, error) {
	return IndistinguishablePair(n, MaxIndistinguishableRounds(n))
}

// Verify checks the pair's defining properties: sizes n and n+1, identical
// leader views through Rounds rounds, and — as a sanity check on the
// algebra — that the difference of the two count vectors is exactly the
// kernel vector k_{Rounds-1}.
func (p *Pair) Verify() error {
	if p.M.W() != p.N || p.MPrime.W() != p.N+1 {
		return fmt.Errorf("core: sizes are %d and %d, want %d and %d",
			p.M.W(), p.MPrime.W(), p.N, p.N+1)
	}
	va, err := p.M.LeaderView(p.Rounds)
	if err != nil {
		return fmt.Errorf("core: view of M: %w", err)
	}
	vb, err := p.MPrime.LeaderView(p.Rounds)
	if err != nil {
		return fmt.Errorf("core: view of M': %w", err)
	}
	if !va.Equal(vb) {
		return fmt.Errorf("core: leader views differ within %d rounds", p.Rounds)
	}
	ca, err := p.M.HistoryCounts(p.Rounds)
	if err != nil {
		return err
	}
	cb, err := p.MPrime.HistoryCounts(p.Rounds)
	if err != nil {
		return err
	}
	kv, err := kernel.ClosedFormKernelK(p.Rounds-1, p.M.K())
	if err != nil {
		return err
	}
	for i := range ca {
		if big.NewInt(int64(cb[i]-ca[i])).Cmp(kv[i]) != 0 {
			return fmt.Errorf("core: count difference at history %d is %d, want kernel %s",
				i, cb[i]-ca[i], kv[i])
		}
	}
	return nil
}

// Extend returns a copy of the pair in which both multigraphs run `extra`
// additional rounds with every node on label set {1}. The extension keeps
// both multigraphs legal; the views remain equal through p.Rounds rounds
// and — because the deterministic extension concentrates the kernel
// difference onto histories the new observations separate — become
// distinguishable at round p.Rounds+1. FirstDivergence locates the split.
func (p *Pair) Extend(extra int) (*Pair, error) {
	if extra < 0 {
		return nil, fmt.Errorf("core: negative extension %d", extra)
	}
	fill := multigraph.SetOf(1)
	m, err := p.M.Extended(extra, fill)
	if err != nil {
		return nil, err
	}
	mp, err := p.MPrime.Extended(extra, fill)
	if err != nil {
		return nil, err
	}
	return &Pair{M: m, MPrime: mp, N: p.N, Rounds: p.Rounds}, nil
}

// FirstDivergence returns the smallest number of completed rounds at which
// the two leader views differ, or (0, false) if they coincide through both
// horizons' minimum.
func (p *Pair) FirstDivergence() (int, bool) {
	limit := p.M.Horizon()
	if h := p.MPrime.Horizon(); h < limit {
		limit = h
	}
	for rounds := 1; rounds <= limit; rounds++ {
		va, err := p.M.LeaderView(rounds)
		if err != nil {
			return 0, false
		}
		vb, err := p.MPrime.LeaderView(rounds)
		if err != nil {
			return 0, false
		}
		if !va.Equal(vb) {
			return rounds, true
		}
	}
	return 0, false
}
