package core

import (
	"errors"
	"fmt"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// solveNextRound folds round `r` of m into the solver, preferring the
// indexed observation stream (no per-round maps or string keys) and falling
// back to the string-keyed LeaderObservation path when the stream is
// unavailable or has exhausted its int64 index capacity. It returns the
// possibly-nil stream so callers thread the fallback state through their
// loop.
func solveNextRound(m *multigraph.Multigraph, solver *kernel.IncrementalSolver, stream *multigraph.ObservationStream, r int) (kernel.Interval, *multigraph.ObservationStream, error) {
	if stream != nil {
		entries, err := stream.Next()
		if err == nil {
			iv, err := solver.AddRoundIndexed(entries)
			return iv, stream, err
		}
		if !errors.Is(err, multigraph.ErrIndexCapacity) {
			return kernel.Interval{}, nil, err
		}
		stream = nil // string path from this round on
	}
	obs, err := m.LeaderObservation(r)
	if err != nil {
		return kernel.Interval{}, nil, err
	}
	iv, err := solver.AddRound(obs)
	return iv, nil, err
}

// CountResult reports a terminating run of the leader-state counter.
type CountResult struct {
	// Count is the leader's output, |W|.
	Count int
	// Rounds is the number of completed rounds after which the count
	// became uniquely determined.
	Rounds int
}

// CountOnMultigraph runs the optimal leader-state counting algorithm on a
// ℳ(DBL)₂ multigraph: after each round the leader solves its linear system
// (kernel.SolveCountInterval) and terminates as soon as exactly one network
// size is consistent with its view. maxRounds bounds the attempt; the
// multigraph's schedule is consulted for at most min(maxRounds, horizon)
// rounds.
//
// On worst-case (Lemma 5) schedules termination happens exactly at round
// MaxIndistinguishableRounds(n)+1 once the schedule diverges; on benign
// schedules (e.g. all nodes on a single label) it can be as early as round
// 1 — the lower bound is about the adversary, not about every network.
func CountOnMultigraph(m *multigraph.Multigraph, maxRounds int) (CountResult, error) {
	if m.K() != 2 {
		return CountResult{}, fmt.Errorf("core: leader-state counter requires k=2, got k=%d", m.K())
	}
	limit := maxRounds
	if h := m.Horizon(); h < limit {
		limit = h
	}
	solver := kernel.NewIncrementalSolver()
	stream, err := m.NewObservationStream()
	if err != nil {
		return CountResult{}, err
	}
	for rounds := 1; rounds <= limit; rounds++ {
		var iv kernel.Interval
		iv, stream, err = solveNextRound(m, solver, stream, rounds-1)
		if err != nil {
			return CountResult{}, err
		}
		if iv.Empty {
			return CountResult{}, fmt.Errorf("core: inconsistent view at round %d", rounds)
		}
		if iv.Unique() {
			return CountResult{Count: iv.MinSize, Rounds: rounds}, nil
		}
	}
	return CountResult{}, fmt.Errorf("core: count not determined within %d rounds", limit)
}

// CountInterval returns the leader's residual uncertainty after the given
// number of completed rounds on m: the interval of consistent sizes.
func CountInterval(m *multigraph.Multigraph, rounds int) (kernel.Interval, error) {
	view, err := m.LeaderView(rounds)
	if err != nil {
		return kernel.Interval{}, err
	}
	return kernel.SolveCountInterval(view)
}

// countIntervalOfView solves a pre-assembled view (used by the anonymous
// leader, whose view is reconstructed by stream threading).
func countIntervalOfView(view multigraph.LeaderView) (kernel.Interval, error) {
	return kernel.SolveCountInterval(view)
}

// UncertaintyTrajectory returns the leader's interval of consistent sizes
// after each of the first `rounds` rounds on m — the raw series behind the
// "watch the interval collapse" narrative, plot-ready.
func UncertaintyTrajectory(m *multigraph.Multigraph, rounds int) ([]kernel.Interval, error) {
	if rounds < 1 || rounds > m.Horizon() {
		return nil, fmt.Errorf("core: rounds %d out of range [1,%d]", rounds, m.Horizon())
	}
	solver := kernel.NewIncrementalSolver()
	// The stream requires k=2; on other alphabets stay on the string path.
	stream, _ := m.NewObservationStream()
	out := make([]kernel.Interval, 0, rounds)
	for r := 0; r < rounds; r++ {
		var iv kernel.Interval
		var err error
		iv, stream, err = solveNextRound(m, solver, stream, r)
		if err != nil {
			return nil, err
		}
		out = append(out, iv)
	}
	return out, nil
}

// WorstCaseCountRounds constructs the worst-case schedule for size n
// (the Lemma 5 configuration extended until it diverges) and measures the
// exact round at which the leader-state counter terminates on it. The
// result is the empirical counterpart of Theorem 1: it always equals
// LowerBoundRounds(n) for n in the exactly-saturated sizes, and never beats
// the bound for any n.
func WorstCaseCountRounds(n int) (CountResult, error) {
	if n < 1 {
		return CountResult{}, fmt.Errorf("core: need n >= 1, got %d", n)
	}
	pair, err := WorstCasePair(n)
	if err != nil {
		return CountResult{}, err
	}
	// Extend far enough for the count to resolve: after the schedules
	// diverge the interval collapses within a round or two.
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return CountResult{}, err
	}
	res, err := CountOnMultigraph(ext.M, ext.M.Horizon())
	if err != nil {
		return CountResult{}, err
	}
	if res.Count != n {
		return CountResult{}, fmt.Errorf("core: counter returned %d on a size-%d network", res.Count, n)
	}
	return res, nil
}

// ChainCountRounds models the Corollary 1 composition: the 𝒢(PD)₂ core runs
// the worst-case schedule for size n, but every leader observation is
// delayed by `delay` rounds while it crosses the static chain. It returns
// the first round at which the (delayed) view pins the count — at least
// delay + LowerBoundRounds(n).
func ChainCountRounds(n, delay int) (CountResult, error) {
	if n < 1 {
		return CountResult{}, fmt.Errorf("core: need n >= 1, got %d", n)
	}
	if delay < 0 {
		return CountResult{}, fmt.Errorf("core: negative delay %d", delay)
	}
	pair, err := WorstCasePair(n)
	if err != nil {
		return CountResult{}, err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return CountResult{}, err
	}
	m := ext.M
	for rounds := 1; rounds <= m.Horizon()+delay; rounds++ {
		avail := rounds - delay
		if avail < 1 {
			continue
		}
		if avail > m.Horizon() {
			avail = m.Horizon()
		}
		view, err := m.LeaderView(avail)
		if err != nil {
			return CountResult{}, err
		}
		iv, err := kernel.SolveCountInterval(view)
		if err != nil {
			return CountResult{}, err
		}
		if iv.Unique() {
			return CountResult{Count: iv.MinSize, Rounds: rounds}, nil
		}
	}
	return CountResult{}, fmt.Errorf("core: chain count not determined for n=%d delay=%d", n, delay)
}
