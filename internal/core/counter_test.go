package core

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/multigraph"
)

func TestCountOnMultigraphBenignSchedule(t *testing.T) {
	// All nodes on {1}: counted in a single round.
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CountOnMultigraph(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || res.Rounds != 1 {
		t.Fatalf("result = %+v, want count 3 in 1 round", res)
	}
}

func TestCountOnMultigraphRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m, err := multigraph.Random(2, int(2+seed%8), 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CountOnMultigraph(m, 8)
		if err != nil {
			// A random schedule may legitimately stay ambiguous for all
			// 8 rounds, but with 8 rounds and ≤ 9 nodes that would defy
			// the bound: Σ⁻k_7 = 3280 >> 9 means ambiguity requires a
			// carefully tuned schedule, so treat failure as unexpected
			// unless the interval is genuinely wide.
			iv, ierr := CountInterval(m, 8)
			if ierr != nil {
				t.Fatal(ierr)
			}
			t.Fatalf("seed=%d: counter failed (%v); residual interval %v", seed, err, iv)
		}
		if res.Count != m.W() {
			t.Fatalf("seed=%d: counted %d, want %d", seed, res.Count, m.W())
		}
	}
}

func TestCountOnMultigraphRejectsK3(t *testing.T) {
	m, err := multigraph.Random(3, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountOnMultigraph(m, 5); err == nil {
		t.Fatal("k=3 should be rejected by the k=2 solver")
	}
}

func TestWorstCaseCountRoundsMatchesTheorem1(t *testing.T) {
	// The measured termination round equals the exact lower bound for
	// every size: the bound is tight and the counter optimal.
	for n := 1; n <= 45; n++ {
		res, err := WorstCaseCountRounds(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Count != n {
			t.Fatalf("n=%d: counted %d", n, res.Count)
		}
		if want := LowerBoundRounds(n); res.Rounds != want {
			t.Fatalf("n=%d: counted in %d rounds, bound says %d", n, res.Rounds, want)
		}
	}
}

func TestWorstCaseCountRoundsErrors(t *testing.T) {
	if _, err := WorstCaseCountRounds(0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestChainCountRounds(t *testing.T) {
	for _, tc := range []struct{ n, delay int }{
		{4, 0}, {4, 3}, {13, 5}, {1, 2},
	} {
		res, err := ChainCountRounds(tc.n, tc.delay)
		if err != nil {
			t.Fatalf("n=%d delay=%d: %v", tc.n, tc.delay, err)
		}
		if res.Count != tc.n {
			t.Fatalf("n=%d delay=%d: counted %d", tc.n, tc.delay, res.Count)
		}
		if want := ChainLowerBoundRounds(tc.n, tc.delay); res.Rounds != want {
			t.Fatalf("n=%d delay=%d: %d rounds, want %d", tc.n, tc.delay, res.Rounds, want)
		}
	}
}

func TestChainCountRoundsErrors(t *testing.T) {
	if _, err := ChainCountRounds(0, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := ChainCountRounds(4, -1); err == nil {
		t.Fatal("negative delay should error")
	}
}

func TestCountIntervalWidthOnWorstCase(t *testing.T) {
	// On the unextended worst-case schedule the interval never collapses:
	// at its final round it still contains at least n and n+1.
	p, err := WorstCasePair(13)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := CountInterval(p.M, p.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Unique() {
		t.Fatalf("worst-case interval collapsed early: %v", iv)
	}
}

func TestWorstCaseAdversaryNetwork(t *testing.T) {
	wc, err := WorstCaseAdversary(7)
	if err != nil {
		t.Fatal(err)
	}
	// The network is a valid G(PD)_2: persistent distances 0/1/2 and
	// 1-interval connectivity over the schedule horizon.
	rounds := wc.Schedule.Horizon()
	h, err := dynet.PDClass(wc.Net, wc.Layout.Leader, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("PD class = %d, want 2", h)
	}
	if err := dynet.VerifyIntervalConnectivity(wc.Net, rounds); err != nil {
		t.Fatal(err)
	}
	if got := len(wc.Layout.V2); got != 7 {
		t.Fatalf("V2 size = %d, want 7", got)
	}
	// Round-tripping the network through FromPD2 recovers the schedule's
	// leader view.
	back, err := multigraph.FromPD2(wc.Net, wc.Layout.Leader, wc.Layout.V1, wc.Layout.V2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := back.LeaderView(rounds)
	vb, _ := wc.Schedule.LeaderView(rounds)
	if !va.Equal(vb) {
		t.Fatal("PD2 network does not reproduce the schedule view")
	}
}

func TestWorstCaseAdversaryError(t *testing.T) {
	if _, err := WorstCaseAdversary(0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestUncertaintyTrajectory(t *testing.T) {
	p, err := WorstCasePair(13)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := p.Extend(2)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := UncertaintyTrajectory(ext.M, ext.M.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != ext.M.Horizon() {
		t.Fatalf("trajectory length %d", len(traj))
	}
	// Widths weakly decrease and the final interval is the unique truth.
	for i := 1; i < len(traj); i++ {
		if traj[i].Width() > traj[i-1].Width() {
			t.Fatalf("widened at %d: %v -> %v", i, traj[i-1], traj[i])
		}
	}
	last := traj[len(traj)-1]
	if !last.Unique() || last.MinSize != 13 {
		t.Fatalf("final interval %v", last)
	}
	if _, err := UncertaintyTrajectory(ext.M, 0); err == nil {
		t.Fatal("rounds=0 should error")
	}
	if _, err := UncertaintyTrajectory(ext.M, 99); err == nil {
		t.Fatal("rounds beyond horizon should error")
	}
}
