package core

import (
	"fmt"
	"math"

	"anondyn/internal/multigraph"
)

// General-k worst-case adversary: the Lemma-5 pair construction on ℳ(DBL)ₖ
// for any alphabet size k >= 2. The k = 2 entry points in pair.go delegate
// here, so the paper's construction is the special case rather than a
// separate code path.

// MaxIndistinguishableRoundsK generalizes MaxIndistinguishableRounds to
// alphabet size k: the largest T with Σ⁻k_{T-1} = (B^T - 1)/2 <= n for
// B = 2^k - 1 symbols, i.e. T(n) = ⌊log_B(2n+1)⌋. Larger alphabets shrink
// the sustainable window — more labels give the leader more observational
// resolution per round — which is why the paper's Ω(log n) bound is stated
// against the weakest k = 2 alphabet. Exact for every int n; k outside
// [2, multigraph.MaxK] returns 0.
func MaxIndistinguishableRoundsK(n, k int) int {
	if n <= 0 || k < 2 || k > multigraph.MaxK {
		return 0
	}
	b := multigraph.SymbolCount(k)
	step := (b - 1) / 2
	t := 0
	s := step // s = (B^(t+1) - 1)/2, the threshold for sustaining t+1 rounds
	for s <= n {
		t++
		if s > (math.MaxInt-step)/b {
			break
		}
		s = b*s + step
	}
	return t
}

// MinSizeForRoundsK is the inverse threshold at alphabet size k: the least
// n sustaining T completed rounds, (B^T - 1)/2, saturating at math.MaxInt.
func MinSizeForRoundsK(t, k int) int {
	if t <= 0 || k < 2 || k > multigraph.MaxK {
		return 0
	}
	b := multigraph.SymbolCount(k)
	step := (b - 1) / 2
	s := step
	for i := 1; i < t; i++ {
		if s > (math.MaxInt-step)/b {
			return math.MaxInt
		}
		s = b*s + step
	}
	return s
}

// IndistinguishablePairK constructs the Lemma-5 adversarial pair on ℳ(DBL)ₖ:
// two multigraphs of sizes n and n+1 over alphabet size k whose leader views
// coincide through the requested completed rounds
// (1 <= rounds <= MaxIndistinguishableRoundsK(n, k)). The count vectors come
// from multigraph.IndistinguishableCounts — one node per negative-sign
// history, surplus parked on the first, twin shifted by the kernel — exactly
// the k = 2 proof with the product-form kernel in place of Lemma 3.
func IndistinguishablePairK(n, rounds, k int) (*Pair, error) {
	if k < 2 || k > multigraph.MaxK {
		return nil, fmt.Errorf("core: alphabet size %d out of range [2,%d]", k, multigraph.MaxK)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("core: rounds must be >= 1, got %d", rounds)
	}
	if maxR := MaxIndistinguishableRoundsK(n, k); rounds > maxR {
		return nil, fmt.Errorf("core: size %d sustains at most %d indistinguishable rounds at k=%d, requested %d",
			n, maxR, k, rounds)
	}
	counts, countsPrime, err := multigraph.IndistinguishableCounts(k, rounds, n)
	if err != nil {
		return nil, err
	}
	m, err := multigraph.FromHistoryCounts(k, rounds, counts)
	if err != nil {
		return nil, fmt.Errorf("core: build M: %w", err)
	}
	mp, err := multigraph.FromHistoryCounts(k, rounds, countsPrime)
	if err != nil {
		return nil, fmt.Errorf("core: build M': %w", err)
	}
	return &Pair{M: m, MPrime: mp, N: n, Rounds: rounds}, nil
}

// WorstCasePairK is IndistinguishablePairK at the maximum sustainable
// number of rounds for size n and alphabet size k.
func WorstCasePairK(n, k int) (*Pair, error) {
	return IndistinguishablePairK(n, MaxIndistinguishableRoundsK(n, k), k)
}
