package core

import (
	"testing"
	"testing/quick"
)

func TestIndistinguishableFamilySmall(t *testing.T) {
	// The Figure 3 regime: n=2, 1 round → sizes {2,3,4}.
	fam, err := IndistinguishableFamily(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Verify(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4}
	if len(fam.Sizes) != len(want) {
		t.Fatalf("sizes = %v, want %v", fam.Sizes, want)
	}
	for i := range want {
		if fam.Sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", fam.Sizes, want)
		}
	}
}

func TestIndistinguishableFamilyContainsPair(t *testing.T) {
	for _, n := range []int{1, 4, 13, 40} {
		rounds := MaxIndistinguishableRounds(n)
		fam, err := IndistinguishableFamily(n, rounds)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := fam.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		hasN, hasN1 := false, false
		for _, s := range fam.Sizes {
			if s == n {
				hasN = true
			}
			if s == n+1 {
				hasN1 = true
			}
		}
		if !hasN || !hasN1 {
			t.Fatalf("n=%d: family sizes %v missing the pair", n, fam.Sizes)
		}
	}
}

func TestIndistinguishableFamilyErrors(t *testing.T) {
	if _, err := IndistinguishableFamily(3, 2); err == nil {
		t.Fatal("unsustainable rounds should error")
	}
	if _, err := IndistinguishableFamily(4, 0); err == nil {
		t.Fatal("rounds=0 should error")
	}
}

func TestFamilyVerifyCatchesCorruption(t *testing.T) {
	fam, err := IndistinguishableFamily(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fam.Sizes[0]++
	if err := fam.Verify(); err == nil {
		t.Fatal("Verify accepted a corrupted family")
	}
	fam.Sizes = fam.Sizes[1:]
	if err := fam.Verify(); err == nil {
		t.Fatal("Verify accepted mismatched lengths")
	}
}

// Property: for any n, the maximal-round family is contiguous and its
// width is at least 2 (the pair) — the leader can never pin the count at
// the horizon.
func TestFamilyWidthProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%60) + 1
		fam, err := IndistinguishableFamily(n, MaxIndistinguishableRounds(n))
		if err != nil {
			return false
		}
		if len(fam.Sizes) < 2 {
			return false
		}
		for i := 1; i < len(fam.Sizes); i++ {
			if fam.Sizes[i] != fam.Sizes[i-1]+1 {
				return false
			}
		}
		return fam.Verify() == nil
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
