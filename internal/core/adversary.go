package core

import (
	"fmt"

	"anondyn/internal/dynet"
	"anondyn/internal/multigraph"
)

// WorstCaseNetwork bundles the worst-case 𝒢(PD)₂ dynamic graph for a given
// W-size with its layout metadata.
type WorstCaseNetwork struct {
	// Net is the dynamic graph: leader + 2 anonymous relays + n nodes in
	// V₂, produced by the Lemma 1 transformation of the worst-case
	// multigraph.
	Net dynet.Dynamic
	// Layout maps the multigraph roles onto node IDs.
	Layout *multigraph.PD2Layout
	// Schedule is the underlying ℳ(DBL)₂ multigraph.
	Schedule *multigraph.Multigraph
}

// WorstCaseAdversary builds the worst-case persistent-distance-2 dynamic
// network for n counted nodes: the adversary plays the Lemma 5 schedule
// (extended past its divergence point so the execution is well-defined for
// any horizon), transformed into 𝒢(PD)₂ by Lemma 1. Any counting algorithm
// on the resulting network needs at least LowerBoundRounds(n) rounds.
//
// The adversary is oblivious — the schedule is fixed up front — which only
// strengthens the bound: even this weak adversary forces Ω(log n) rounds.
func WorstCaseAdversary(n int) (*WorstCaseNetwork, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need n >= 1, got %d", n)
	}
	pair, err := WorstCasePair(n)
	if err != nil {
		return nil, err
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		return nil, err
	}
	net, layout, err := ext.M.ToPD2()
	if err != nil {
		return nil, err
	}
	return &WorstCaseNetwork{Net: net, Layout: layout, Schedule: ext.M}, nil
}
