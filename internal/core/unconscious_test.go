package core

import (
	"testing"

	"anondyn/internal/multigraph"
)

func worstCaseExtended(t *testing.T, n int) *multigraph.Multigraph {
	t.Helper()
	pair, err := WorstCasePair(n)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := pair.Extend(pair.Rounds + 2)
	if err != nil {
		t.Fatal(err)
	}
	return ext.M
}

func TestUnconsciousNeverBeatsConsciousOnPairSchedules(t *testing.T) {
	// On the worst-case schedule with extras parked on the negative
	// support, the truth is the interval minimum well before collapse:
	// GuessMin stabilizes earlier than conscious termination.
	for _, n := range []int{4, 13, 40} {
		m := worstCaseExtended(t, n)
		res, err := UnconsciousCount(m, GuessMin, m.Horizon())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.ConsciousAt != LowerBoundRounds(n) {
			t.Fatalf("n=%d: conscious at %d, want %d", n, res.ConsciousAt, LowerBoundRounds(n))
		}
		if res.CorrectFrom > res.ConsciousAt {
			t.Fatalf("n=%d: guess stabilized at %d, after conscious %d", n, res.CorrectFrom, res.ConsciousAt)
		}
		// Once conscious, the guess is the unique size.
		last := res.Guesses[len(res.Guesses)-1]
		if last != n {
			t.Fatalf("n=%d: final guess %d", n, last)
		}
	}
}

func TestUnconsciousPoliciesDiffer(t *testing.T) {
	// GuessMax on the worst-case schedule is WRONG until the collapse:
	// the adversary's twin of size n+1 is the maximum, so conscious and
	// eventual correctness coincide exactly at the bound.
	m := worstCaseExtended(t, 13)
	minRes, err := UnconsciousCount(m, GuessMin, m.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	maxRes, err := UnconsciousCount(m, GuessMax, m.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if maxRes.CorrectFrom != maxRes.ConsciousAt {
		t.Fatalf("GuessMax stabilized at %d, conscious %d — the adversary's twin should fool it until collapse",
			maxRes.CorrectFrom, maxRes.ConsciousAt)
	}
	if minRes.CorrectFrom >= maxRes.CorrectFrom {
		t.Fatalf("GuessMin (%d) should stabilize before GuessMax (%d) on this schedule",
			minRes.CorrectFrom, maxRes.CorrectFrom)
	}
}

func TestUnconsciousMidPolicy(t *testing.T) {
	m := worstCaseExtended(t, 4)
	res, err := UnconsciousCount(m, GuessMid, m.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if res.Guesses[len(res.Guesses)-1] != 4 {
		t.Fatalf("final mid guess = %d", res.Guesses[len(res.Guesses)-1])
	}
}

func TestUnconsciousErrors(t *testing.T) {
	m := worstCaseExtended(t, 4)
	if _, err := UnconsciousCount(m, GuessPolicy(99), m.Horizon()); err == nil {
		t.Fatal("unknown policy should error")
	}
	k3, err := multigraph.Random(3, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnconsciousCount(k3, GuessMin, 2); err == nil {
		t.Fatal("k=3 should error")
	}
	// Truncated run: conscious never fires.
	if _, err := UnconsciousCount(m, GuessMin, 1); err == nil {
		t.Fatal("too-short run should error")
	}
}
