// Package core packages the paper's primary contribution as a library: the
// Ω(log |V|) counting lower bound for anonymous dynamic networks in
// 𝒢(PD)₂ and ℳ(DBL)ₖ (Theorems 1-2), the D + Ω(log |V|) corollary, the
// worst-case adversary that realizes the bound by constructing
// indistinguishable network pairs (Lemma 5), and the leader-state counting
// algorithm whose termination round matches the bound exactly.
package core

import (
	"math"
	"math/big"
)

// MaxIndistinguishableRounds returns the largest number of completed rounds
// T(n) for which the worst-case adversary can keep two ℳ(DBL)₂ multigraphs
// of sizes n and n+1 indistinguishable to the leader: the largest T with
// Σ⁻k_{T-1} = (3^T - 1)/2 ≤ n, i.e. T(n) = ⌊log₃(2n+1)⌋ (Lemma 5 in
// completed-round form). For n = 0 it returns 0: a lone leader hears
// silence and knows it immediately. The result is exact for every int n,
// including n near math.MaxInt.
func MaxIndistinguishableRounds(n int) int {
	if n <= 0 {
		return 0
	}
	// Largest T with 3^T <= 2n+1. Since 3^T is odd, that is equivalent to
	// the threshold form (3^T - 1)/2 <= n, which never needs the 2n+1
	// intermediate (2n+1 wraps for n > (MaxInt-1)/2). The thresholds obey
	// s(T+1) = 3*s(T) + 1, and the loop keeps s <= n, so s itself cannot
	// overflow; the explicit guard stops before the one multiplication
	// that would.
	t := 0
	s := 1 // s = (3^(t+1) - 1)/2, the threshold for sustaining t+1 rounds
	for s <= n {
		t++
		if s > (math.MaxInt-1)/3 {
			// The next threshold exceeds MaxInt >= n: no further rounds.
			break
		}
		s = 3*s + 1
	}
	return t
}

// LowerBoundRounds returns the minimum number of completed rounds after
// which ANY counting algorithm can output |W| = n on ℳ(DBL)₂ (and hence, by
// Lemma 1, on 𝒢(PD)₂): MaxIndistinguishableRounds(n) + 1. This is the
// paper's Theorem 1/Theorem 2 bound, Ω(log n), in exact form.
func LowerBoundRounds(n int) int {
	return MaxIndistinguishableRounds(n) + 1
}

// MinSizeForRounds is the inverse of MaxIndistinguishableRounds: the least
// network size n for which the adversary can sustain indistinguishability
// for T completed rounds, namely Σ⁻k_{T-1} = (3^T - 1)/2. When the exact
// threshold exceeds math.MaxInt (t > MaxIndistinguishableRounds(MaxInt))
// the result saturates at math.MaxInt, so the invariant
// MinSizeForRounds(t) <= n ⇔ MaxIndistinguishableRounds(n) >= t holds for
// every representable n.
func MinSizeForRounds(t int) int {
	if t <= 0 {
		return 0
	}
	s := 1 // s = (3^i - 1)/2 after i iterations, via s(i+1) = 3*s(i) + 1
	for i := 1; i < t; i++ {
		if s > (math.MaxInt-1)/3 {
			return math.MaxInt
		}
		s = 3*s + 1
	}
	return s
}

// LowerBoundRoundsBig is LowerBoundRounds for arbitrarily large sizes.
func LowerBoundRoundsBig(n *big.Int) *big.Int {
	if n.Sign() <= 0 {
		return big.NewInt(1)
	}
	target := new(big.Int).Lsh(n, 1) // 2n
	target.Add(target, big.NewInt(1))
	t := int64(0)
	pow := big.NewInt(1)
	three := big.NewInt(3)
	next := new(big.Int)
	for {
		next.Mul(pow, three)
		if next.Cmp(target) > 0 {
			break
		}
		pow.Set(next)
		t++
	}
	return big.NewInt(t + 1)
}

// ChainLowerBoundRounds returns the Corollary 1 bound for a network with
// dynamic diameter D built by the paper's chain composition: the leader is
// separated from the 𝒢(PD)₂ core by a static chain, so every observation
// reaches it delay rounds late and counting needs at least
// delay + LowerBoundRounds(n) rounds, where delay = D - 2 is the extra
// distance beyond the PD₂ core's own depth. The sum saturates at
// math.MaxInt: a delay near MaxInt must not wrap the bound negative.
func ChainLowerBoundRounds(n, delay int) int {
	if delay < 0 {
		delay = 0
	}
	bound := LowerBoundRounds(n)
	if delay > math.MaxInt-bound {
		return math.MaxInt
	}
	return delay + bound
}
