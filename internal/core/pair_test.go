package core

import (
	"testing"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

func TestIndistinguishablePairSmall(t *testing.T) {
	// n=2, 1 round: the Figure 3 situation (sizes 2 and 3 here — the
	// construction parks the surplus on the first negative history).
	p, err := IndistinguishablePair(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.M.W() != 2 || p.MPrime.W() != 3 {
		t.Fatalf("sizes = %d, %d", p.M.W(), p.MPrime.W())
	}
}

func TestIndistinguishablePairPaperFigure4(t *testing.T) {
	// n=4, 2 rounds: the Figure 4 regime — sizes 4 and 5 with identical
	// views through round 1 (two completed rounds).
	p, err := IndistinguishablePair(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	va, err := p.M.LeaderView(2)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := p.MPrime.LeaderView(2)
	if err != nil {
		t.Fatal(err)
	}
	if !va.Equal(vb) {
		t.Fatal("Figure 4 pair views differ")
	}
}

func TestIndistinguishablePairErrors(t *testing.T) {
	if _, err := IndistinguishablePair(4, 0); err == nil {
		t.Fatal("rounds=0 should error")
	}
	if _, err := IndistinguishablePair(3, 2); err == nil {
		t.Fatal("n=3 cannot sustain 2 rounds")
	}
	if _, err := IndistinguishablePair(0, 1); err == nil {
		t.Fatal("n=0 cannot sustain any rounds")
	}
}

func TestWorstCasePairSweep(t *testing.T) {
	// For every n up to a few kernel thresholds, the worst-case pair
	// verifies and sustains exactly MaxIndistinguishableRounds(n).
	for n := 1; n <= 45; n++ {
		p, err := WorstCasePair(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Rounds != MaxIndistinguishableRounds(n) {
			t.Fatalf("n=%d: pair rounds %d, want %d", n, p.Rounds, MaxIndistinguishableRounds(n))
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestExtendDivergesExactlyAfterBound(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 13, 20, 40} {
		p, err := WorstCasePair(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ext, err := p.Extend(3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		div, found := ext.FirstDivergence()
		if !found {
			t.Fatalf("n=%d: extended pair never diverges", n)
		}
		if div != p.Rounds+1 {
			t.Fatalf("n=%d: diverged at round %d, want %d", n, div, p.Rounds+1)
		}
	}
}

func TestExtendZeroAndNegative(t *testing.T) {
	p, err := WorstCasePair(4)
	if err != nil {
		t.Fatal(err)
	}
	same, err := p.Extend(0)
	if err != nil {
		t.Fatal(err)
	}
	if same.M.Horizon() != p.M.Horizon() {
		t.Fatal("Extend(0) changed horizon")
	}
	if _, err := p.Extend(-1); err == nil {
		t.Fatal("negative extension should error")
	}
}

func TestFirstDivergenceIdenticalPair(t *testing.T) {
	p, err := WorstCasePair(4)
	if err != nil {
		t.Fatal(err)
	}
	// Unextended pair: views coincide through the whole horizon.
	if div, found := p.FirstDivergence(); found {
		t.Fatalf("unextended pair diverged at %d", div)
	}
}

func TestVerifyCatchesCorruptedPair(t *testing.T) {
	p, err := WorstCasePair(4)
	if err != nil {
		t.Fatal(err)
	}
	// Replace M' with a multigraph of the wrong size.
	bad, err := multigraph.Random(2, 9, p.Rounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := &Pair{M: p.M, MPrime: bad, N: p.N, Rounds: p.Rounds}
	if err := corrupt.Verify(); err == nil {
		t.Fatal("Verify accepted a corrupted pair")
	}
	// Wrong size field.
	wrongN := &Pair{M: p.M, MPrime: p.MPrime, N: p.N + 1, Rounds: p.Rounds}
	if err := wrongN.Verify(); err == nil {
		t.Fatal("Verify accepted a mislabeled pair")
	}
}

func TestPairSolverSeesBothSizes(t *testing.T) {
	// The count interval on the worst-case view must contain both n and
	// n+1 — the operational statement of indistinguishability.
	for _, n := range []int{1, 4, 13, 25} {
		p, err := WorstCasePair(n)
		if err != nil {
			t.Fatal(err)
		}
		view, err := p.M.LeaderView(p.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := kernel.SolveCountInterval(view)
		if err != nil {
			t.Fatal(err)
		}
		if iv.MinSize > n || iv.MaxSize < n+1 {
			t.Fatalf("n=%d: interval %v excludes the pair", n, iv)
		}
	}
}
