package core

import (
	"testing"

	"anondyn/internal/multigraph"
)

func TestRelayStreamsContents(t *testing.T) {
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1), multigraph.SetOf(1, 2)},
		{multigraph.SetOf(2), multigraph.SetOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := RelayStreams(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	emptyKey := multigraph.History{}.Key()
	if streams[0].States[0][emptyKey] != 1 || streams[1].States[0][emptyKey] != 1 {
		t.Fatalf("round-0 streams wrong: %+v / %+v", streams[0].States[0], streams[1].States[0])
	}
	// Round 1: relay 1 hears node 0 (state [{1}]); relay 2 hears both.
	s1 := multigraph.History{multigraph.SetOf(1)}.Key()
	s2 := multigraph.History{multigraph.SetOf(2)}.Key()
	if streams[0].States[1][s1] != 1 || len(streams[0].States[1]) != 1 {
		t.Fatalf("relay 1 round 1 = %v", streams[0].States[1])
	}
	if streams[1].States[1][s1] != 1 || streams[1].States[1][s2] != 1 {
		t.Fatalf("relay 2 round 1 = %v", streams[1].States[1])
	}
}

func TestRelayStreamsErrors(t *testing.T) {
	k3, err := multigraph.Random(3, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RelayStreams(k3, 1); err == nil {
		t.Fatal("k=3 should error")
	}
	k2, err := multigraph.Random(2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RelayStreams(k2, 5); err == nil {
		t.Fatal("rounds beyond horizon should error")
	}
}

func TestThreadStreamsReconstructsView(t *testing.T) {
	// On random schedules the threaded view must yield the same
	// consistent-size interval as the ground-truth labeled view.
	for seed := int64(0); seed < 20; seed++ {
		m, err := multigraph.Random(2, int(2+seed%7), 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := RelayStreams(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		for rounds := 1; rounds <= 4; rounds++ {
			threaded, _, err := ThreadStreams(streams, rounds)
			if err != nil {
				t.Fatal(err)
			}
			ivAnon, err := countIntervalOfView(threaded)
			if err != nil {
				t.Fatal(err)
			}
			ivTrue, err := CountInterval(m, rounds)
			if err != nil {
				t.Fatal(err)
			}
			if ivAnon != ivTrue {
				t.Fatalf("seed=%d rounds=%d: anonymous interval %v != labeled %v", seed, rounds, ivAnon, ivTrue)
			}
		}
	}
}

func TestThreadStreamsErrors(t *testing.T) {
	if _, _, err := ThreadStreams([2]*RelayStream{nil, nil}, 1); err == nil {
		t.Fatal("nil streams should error")
	}
	s := &RelayStream{States: []map[string]int{{}}}
	if _, _, err := ThreadStreams([2]*RelayStream{s, s}, 5); err == nil {
		t.Fatal("too-short streams should error")
	}
}

func TestAnonymousCountMatchesLabeledOnWorstCase(t *testing.T) {
	// The worst-case schedules are label-symmetric (maximally ambiguous
	// threading), and the anonymous leader still terminates at exactly
	// the bound with the correct count.
	for _, n := range []int{1, 4, 13, 40} {
		pair, err := WorstCasePair(n)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := pair.Extend(pair.Rounds + 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := AnonymousCountRounds(ext.M, ext.M.Horizon())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Count != n {
			t.Fatalf("n=%d: anonymous counter got %d", n, res.Count)
		}
		if want := LowerBoundRounds(n); res.Rounds != want {
			t.Fatalf("n=%d: anonymous counter took %d rounds, labeled bound %d", n, res.Rounds, want)
		}
	}
}

func TestAnonymousThreadingAmbiguityDetected(t *testing.T) {
	// A fully symmetric schedule: both relays see identical histories, so
	// every round's threading is ambiguous.
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1), multigraph.SetOf(1)},
		{multigraph.SetOf(2), multigraph.SetOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := RelayStreams(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ambiguous, err := ThreadStreams(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ambiguous {
		t.Fatal("symmetric schedule should be ambiguous to thread")
	}
	// An asymmetric schedule: distinguishable immediately after round 0?
	// Round-0 observations differ when the label multiplicities differ.
	m2, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1), multigraph.SetOf(1)},
		{multigraph.SetOf(1), multigraph.SetOf(1)},
		{multigraph.SetOf(2), multigraph.SetOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams2, err := RelayStreams(m2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ambiguous2, err := ThreadStreams(streams2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 prefixes (length 0) are vacuously equal, so the first
	// threading step is always "ambiguous"; rounds beyond differ.
	if !ambiguous2 {
		t.Fatal("round-0 threading is always trivially ambiguous")
	}
}

func TestAnonymousCountBenignSchedule(t *testing.T) {
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
		{multigraph.SetOf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnonymousCountRounds(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || res.Rounds != 1 {
		t.Fatalf("result = %+v", res)
	}
}
