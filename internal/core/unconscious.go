package core

import (
	"fmt"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// The conscious/unconscious distinction of Di Luna et al. [12]: a
// *conscious* counting algorithm knows when its output is correct and
// terminates (CountOnMultigraph); an *unconscious* one keeps emitting a
// guess that is eventually forever-correct, without ever being sure.
// Our natural unconscious guess is an endpoint of the leader's interval;
// these functions measure how much earlier the guess stabilizes on the
// truth compared with conscious termination — on worst-case schedules the
// two coincide only at the final collapse, while on typical schedules the
// guess is often correct rounds before the leader can know it.

// GuessPolicy selects the unconscious guess from the current interval.
type GuessPolicy int

const (
	// GuessMin outputs the smallest consistent size.
	GuessMin GuessPolicy = iota + 1
	// GuessMax outputs the largest consistent size.
	GuessMax
	// GuessMid outputs the midpoint of the interval.
	GuessMid
)

func (p GuessPolicy) pick(iv kernel.Interval) (int, error) {
	switch p {
	case GuessMin:
		return iv.MinSize, nil
	case GuessMax:
		return iv.MaxSize, nil
	case GuessMid:
		return (iv.MinSize + iv.MaxSize) / 2, nil
	default:
		return 0, fmt.Errorf("core: unknown guess policy %d", p)
	}
}

// UnconsciousResult compares unconscious guessing with conscious
// termination on one schedule.
type UnconsciousResult struct {
	// CorrectFrom is the first round from which the guess equals the true
	// size at every subsequent examined round (eventual correctness).
	CorrectFrom int
	// ConsciousAt is the round at which the conscious counter terminates.
	ConsciousAt int
	// Guesses records the guess after each round, for inspection.
	Guesses []int
}

// UnconsciousCount runs the guessing leader alongside the conscious one on
// the same schedule.
func UnconsciousCount(m *multigraph.Multigraph, policy GuessPolicy, maxRounds int) (UnconsciousResult, error) {
	if m.K() != 2 {
		return UnconsciousResult{}, fmt.Errorf("core: unconscious counter requires k=2, got %d", m.K())
	}
	limit := maxRounds
	if h := m.Horizon(); h < limit {
		limit = h
	}
	res := UnconsciousResult{CorrectFrom: -1, ConsciousAt: -1}
	inc := kernel.NewIncrementalSolver()
	truth := m.W()
	for rounds := 1; rounds <= limit; rounds++ {
		view, err := m.LeaderView(rounds)
		if err != nil {
			return UnconsciousResult{}, err
		}
		iv, err := inc.AddRound(view[rounds-1])
		if err != nil {
			return UnconsciousResult{}, err
		}
		if iv.Empty {
			return UnconsciousResult{}, fmt.Errorf("core: inconsistent view at round %d", rounds)
		}
		guess, err := policy.pick(iv)
		if err != nil {
			return UnconsciousResult{}, err
		}
		res.Guesses = append(res.Guesses, guess)
		if guess == truth {
			if res.CorrectFrom == -1 {
				res.CorrectFrom = rounds
			}
		} else {
			res.CorrectFrom = -1 // correctness must be *eventual*, not lucky
		}
		if iv.Unique() && res.ConsciousAt == -1 {
			res.ConsciousAt = rounds
		}
	}
	if res.ConsciousAt == -1 {
		return UnconsciousResult{}, fmt.Errorf("core: conscious counter did not terminate within %d rounds", limit)
	}
	if res.CorrectFrom == -1 {
		return UnconsciousResult{}, fmt.Errorf("core: guess never stabilized on the truth within %d rounds", limit)
	}
	return res, nil
}
