package core

import (
	"fmt"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// Family is the complete one-parameter family of Lemma 5: every network
// size consistent with a single worst-case leader view, each witnessed by a
// concrete multigraph. Members[i] has size Sizes[i]; all members produce
// the identical View.
type Family struct {
	// Rounds is the number of completed rounds the shared view covers.
	Rounds int
	// Sizes lists the consistent sizes in increasing order.
	Sizes []int
	// Members holds one multigraph per size.
	Members []*multigraph.Multigraph
	// View is the shared leader view.
	View multigraph.LeaderView
}

// IndistinguishableFamily constructs every multigraph consistent with the
// worst-case view for size n at the requested number of rounds: the
// solution line s + t·k_{rounds-1} clipped to non-negative configurations.
// The family's width is the leader's exact residual uncertainty — at the
// maximum sustainable rounds it always contains at least the sizes n and
// n+1.
func IndistinguishableFamily(n, rounds int) (*Family, error) {
	pair, err := IndistinguishablePair(n, rounds)
	if err != nil {
		return nil, err
	}
	view, err := pair.M.LeaderView(rounds)
	if err != nil {
		return nil, err
	}
	iv, err := kernel.SolveCountInterval(view)
	if err != nil {
		return nil, err
	}
	if iv.Empty || iv.Unbounded {
		return nil, fmt.Errorf("core: internal: degenerate interval %v for the worst-case view", iv)
	}
	fam := &Family{Rounds: rounds, View: view}
	// n(c0) = total - c0 decreases in c0; enumerate c0 over the feasible
	// range by scanning for feasibility.
	for size := iv.MinSize; size <= iv.MaxSize; size++ {
		// Recover the c0 realizing this size. ForcedConfiguration is
		// linear in c0, and n = total - c0, so c0 = (n_max - size) + lo
		// for some base; rather than recompute offsets, scan.
		found := false
		for c0 := 0; c0 <= iv.MaxSize+1; c0++ {
			counts, err := kernel.ForcedConfiguration(view, c0)
			if err != nil {
				continue
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != size {
				continue
			}
			m, err := multigraph.FromHistoryCounts(2, rounds, counts)
			if err != nil {
				return nil, err
			}
			fam.Sizes = append(fam.Sizes, size)
			fam.Members = append(fam.Members, m)
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("core: internal: no witness for consistent size %d", size)
		}
	}
	return fam, nil
}

// Verify checks that every member has its declared size and produces the
// shared view.
func (f *Family) Verify() error {
	if len(f.Sizes) != len(f.Members) {
		return fmt.Errorf("core: family has %d sizes but %d members", len(f.Sizes), len(f.Members))
	}
	want := f.View.Canonical()
	for i, m := range f.Members {
		if m.W() != f.Sizes[i] {
			return fmt.Errorf("core: member %d has size %d, declared %d", i, m.W(), f.Sizes[i])
		}
		view, err := m.LeaderView(f.Rounds)
		if err != nil {
			return err
		}
		if view.Canonical() != want {
			return fmt.Errorf("core: member %d (size %d) produces a different view", i, f.Sizes[i])
		}
	}
	return nil
}
