package core_test

import (
	"fmt"

	"anondyn/internal/core"
)

// The exact lower bound as a table — the paper's Theorem 1.
func ExampleLowerBoundRounds() {
	for t := 1; t <= 5; t++ {
		n := core.MinSizeForRounds(t)
		fmt.Printf("n >= %d sustains %d indistinguishable rounds\n", n, t)
	}
	// Output:
	// n >= 1 sustains 1 indistinguishable rounds
	// n >= 4 sustains 2 indistinguishable rounds
	// n >= 13 sustains 3 indistinguishable rounds
	// n >= 40 sustains 4 indistinguishable rounds
	// n >= 121 sustains 5 indistinguishable rounds
}

// The Lemma 5 adversary in action: two networks, one leader view.
func ExampleWorstCasePair() {
	pair, err := core.WorstCasePair(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	va, _ := pair.M.LeaderView(pair.Rounds)
	vb, _ := pair.MPrime.LeaderView(pair.Rounds)
	fmt.Printf("sizes %d and %d, views equal through %d rounds: %v\n",
		pair.M.W(), pair.MPrime.W(), pair.Rounds, va.Equal(vb))
	// Output: sizes 4 and 5, views equal through 2 rounds: true
}

// The whole one-parameter family of Lemma 5, not just the pair.
func ExampleIndistinguishableFamily() {
	fam, err := core.IndistinguishableFamily(2, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(fam.Sizes)
	// Output: [2 3 4]
}

// The optimal counter terminates exactly at the bound on the worst case.
func ExampleCountOnMultigraph() {
	res, err := core.WorstCaseCountRounds(13)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("counted %d in %d rounds (bound %d)\n",
		res.Count, res.Rounds, core.LowerBoundRounds(13))
	// Output: counted 13 in 4 rounds (bound 4)
}
