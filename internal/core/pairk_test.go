package core

import (
	"testing"
)

// TestIndistinguishablePairKVerifies builds the general-k pair across
// alphabet sizes and sustainable round counts and runs the full Verify —
// sizes, identical leader views, count difference equal to the kernel.
func TestIndistinguishablePairKVerifies(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for rounds := 1; rounds <= 2; rounds++ {
			n := MinSizeForRoundsK(rounds, k) + 3
			p, err := IndistinguishablePairK(n, rounds, k)
			if err != nil {
				t.Fatalf("k=%d rounds=%d n=%d: %v", k, rounds, n, err)
			}
			if p.M.K() != k || p.MPrime.K() != k {
				t.Fatalf("k=%d: built alphabet %d/%d", k, p.M.K(), p.MPrime.K())
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("k=%d rounds=%d n=%d: %v", k, rounds, n, err)
			}
		}
	}
}

// TestPairKDivergesAtExactlyRoundsPlusOne: after extending with the
// all-{1} fill, the views must split at exactly Rounds+1 for every k — the
// tightness half of the lower bound, generalized.
func TestPairKDivergesAtExactlyRoundsPlusOne(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		rounds := 2
		if k == 4 {
			rounds = 1
		}
		n := MinSizeForRoundsK(rounds, k) + 1
		p, err := IndistinguishablePairK(n, rounds, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ext, err := p.Extend(2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		div, ok := ext.FirstDivergence()
		if !ok || div != rounds+1 {
			t.Errorf("k=%d: divergence at %d (ok=%v), want exactly %d", k, div, ok, rounds+1)
		}
	}
}

// TestMaxIndistinguishableRoundsK pins the threshold algebra: the k = 2
// case must agree with the existing function everywhere, and across k the
// round/size inverses must be consistent.
func TestMaxIndistinguishableRoundsK(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 12, 13, 40, 121, 1000000} {
		if got, want := MaxIndistinguishableRoundsK(n, 2), MaxIndistinguishableRounds(n); got != want {
			t.Errorf("n=%d: k=2 generalization says %d, existing says %d", n, got, want)
		}
	}
	for _, k := range []int{2, 3, 4, 5} {
		for tr := 1; tr <= 4; tr++ {
			threshold := MinSizeForRoundsK(tr, k)
			if got := MaxIndistinguishableRoundsK(threshold, k); got < tr {
				t.Errorf("k=%d: threshold size %d sustains %d rounds, want >= %d", k, threshold, got, tr)
			}
			if threshold > 1 {
				if got := MaxIndistinguishableRoundsK(threshold-1, k); got >= tr {
					t.Errorf("k=%d: size %d below threshold sustains %d rounds, want < %d", k, threshold-1, got, tr)
				}
			}
		}
	}
	// Larger alphabets strictly shrink the window once n is big enough.
	if MaxIndistinguishableRoundsK(121, 3) >= MaxIndistinguishableRoundsK(121, 2) {
		t.Error("k=3 should sustain strictly fewer rounds than k=2 at n=121")
	}
	if MaxIndistinguishableRoundsK(10, 1) != 0 || MaxIndistinguishableRoundsK(10, 99) != 0 {
		t.Error("out-of-range k should report 0 rounds")
	}
}

// TestIndistinguishablePairKRejects covers validation paths.
func TestIndistinguishablePairKRejects(t *testing.T) {
	if _, err := IndistinguishablePairK(5, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := IndistinguishablePairK(5, 0, 2); err == nil {
		t.Error("rounds=0 accepted")
	}
	if _, err := IndistinguishablePairK(2, 2, 2); err == nil {
		t.Error("unsustainable rounds accepted (n=2 sustains only 1 round at k=2)")
	}
	if _, err := WorstCasePairK(MinSizeForRoundsK(1, 3), 3); err != nil {
		t.Errorf("WorstCasePairK at exact threshold: %v", err)
	}
}
