package figures

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/kernel"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

func TestFigure1Properties(t *testing.T) {
	f, err := NewFigure1()
	if err != nil {
		t.Fatal(err)
	}
	// The caption's claims, machine-checked.
	// (1) The graph is in G(PD)_2 with the leader at the center.
	h, err := dynet.PDClass(f.Net, f.Leader, 3*f.Period)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("PD class = %d, want 2", h)
	}
	// (2) 1-interval connectivity.
	if err := dynet.VerifyIntervalConnectivity(f.Net, 3*f.Period); err != nil {
		t.Fatal(err)
	}
	// (3) Dynamic diameter D = 4.
	d, err := dynet.DynamicDiameter(f.Net, f.Period, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Fatalf("D = %d, want 4", d)
	}
	// (4) A flood from v0 at round 0 reaches v3 at round 3 and no earlier:
	// the flood takes 4 rounds in total.
	ft, err := dynet.FloodTime(f.Net, f.V0, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ft != 4 {
		t.Fatalf("flood from v0 took %d rounds, want 4", ft)
	}
}

func TestFigure1FloodTrace(t *testing.T) {
	// Trace the flood wavefront: v3 must be uninformed through round 2
	// and informed at round 3. We reconstruct the wavefront manually.
	f, err := NewFigure1()
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{int(f.V0): true}
	informedAt := -1
	for r := 0; r < 8 && informedAt == -1; r++ {
		g := f.Net.Snapshot(r)
		var newly []int
		for v := 0; v < g.N(); v++ {
			if has[v] {
				continue
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if has[int(u)] {
					newly = append(newly, v)
					break
				}
			}
		}
		for _, v := range newly {
			has[v] = true
			if v == int(f.V3) {
				informedAt = r
			}
		}
	}
	if informedAt != 3 {
		t.Fatalf("v3 informed at round %d, want 3", informedAt)
	}
}

func TestFigure2Properties(t *testing.T) {
	f, err := NewFigure2()
	if err != nil {
		t.Fatal(err)
	}
	// Node v carries edge label set {1,2,3} (the caption's example).
	s, err := f.M.LabelsAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != multigraph.SetOf(1, 2, 3) {
		t.Fatalf("L(v) = %v, want {1,2,3}", s)
	}
	// Transformed graph: leader + 3 relays + 3 W-nodes, PD_2, and the
	// relay for label j is adjacent exactly to the nodes whose label set
	// contains j.
	if f.Net.N() != 7 {
		t.Fatalf("N = %d, want 7", f.Net.N())
	}
	g := f.Net.Snapshot(0)
	for j := 1; j <= 3; j++ {
		relay := f.Layout.V1[j-1]
		for w := 0; w < f.M.W(); w++ {
			ls, err := f.M.LabelsAt(w, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.HasEdge(relay, f.Layout.V2[w]); got != ls.Has(j) {
				t.Fatalf("relay %d vs node %d: edge=%v, label=%v", j, w, got, ls.Has(j))
			}
		}
	}
	// Round-trip through FromPD2 recovers the multigraph.
	back, err := multigraph.FromPD2(f.Net, f.Layout.Leader, f.Layout.V1, f.Layout.V2, 1)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := back.LeaderView(1)
	vb, _ := f.M.LeaderView(1)
	if !va.Equal(vb) {
		t.Fatal("transformation round trip lost information")
	}
}

func TestFigure3Properties(t *testing.T) {
	f, err := NewFigure3()
	if err != nil {
		t.Fatal(err)
	}
	if f.M.W() != 2 || f.MPrime.W() != 4 {
		t.Fatalf("sizes = %d, %d; want 2, 4", f.M.W(), f.MPrime.W())
	}
	va, err := f.M.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := f.MPrime.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	if !va.Equal(vb) {
		t.Fatal("Figure 3 pair distinguishable at round 0")
	}
	// The relationship is s' = s + 2k_0.
	ca, _ := f.M.HistoryCounts(1)
	cb, _ := f.MPrime.HistoryCounts(1)
	k0 := kernel.ClosedFormKernel(0)
	for i := range ca {
		if int64(cb[i]-ca[i]) != 2*k0[i].Int64() {
			t.Fatalf("s' - s != 2k_0 at %d", i)
		}
	}
	// Both satisfy m_0 = M_0 s with m_0 = [2 2] (paper Equation 3).
	m0, err := kernel.Matrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := kernel.TrueSolutionVector(f.M, 0)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := m0.MulVec(sv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(linalg.VecFromInts(2, 2)) {
		t.Fatalf("m_0 = %s, want [2 2]", prod)
	}
}

func TestFigure4Properties(t *testing.T) {
	f, err := NewFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if f.M.W() != 4 || f.MPrime.W() != 5 {
		t.Fatalf("sizes = %d, %d; want 4, 5", f.M.W(), f.MPrime.W())
	}
	va, err := f.M.LeaderView(2)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := f.MPrime.LeaderView(2)
	if err != nil {
		t.Fatal(err)
	}
	if !va.Equal(vb) {
		t.Fatal("Figure 4 pair distinguishable within 2 rounds")
	}
	// s' - s = k_1 exactly.
	ca, _ := f.M.HistoryCounts(2)
	cb, _ := f.MPrime.HistoryCounts(2)
	k1 := kernel.ClosedFormKernel(1)
	for i := range ca {
		if int64(cb[i]-ca[i]) != k1[i].Int64() {
			t.Fatalf("s' - s != k_1 at history %d", i)
		}
	}
	// The paper's claim m_1 = M_1 s_1 = M_1 s_1' holds.
	m1, err := kernel.Matrix(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := kernel.TrueSolutionVector(f.M, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := kernel.TrueSolutionVector(f.MPrime, 1)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m1.MulVec(sa)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m1.MulVec(sb)
	if err != nil {
		t.Fatal(err)
	}
	if !pa.Equal(pb) {
		t.Fatal("M_1 s_1 != M_1 s_1'")
	}
	// The count interval after 2 rounds covers both 4 and 5.
	iv, err := kernel.SolveCountInterval(va)
	if err != nil {
		t.Fatal(err)
	}
	if iv.MinSize > 4 || iv.MaxSize < 5 {
		t.Fatalf("interval %v excludes {4,5}", iv)
	}
}
