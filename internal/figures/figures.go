// Package figures reconstructs the paper's four figures as executable
// fixtures. Each constructor returns the exact object drawn in the paper
// (or, for Figure 1, a reconstruction with the same stated properties), and
// the package tests machine-check every property the paper's captions
// claim. The experiment harness and benchmarks reuse these fixtures.
package figures

import (
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/multigraph"
)

// Figure1 reproduces "an example of a graph belonging to 𝒢(PD)₂ along three
// rounds" with dynamic diameter D = 4, in which a flood started by node v₀
// at round 0 reaches node v₃ at round 3.
//
// The paper prints the drawing but not an edge list, so this is a minimal
// reconstruction with the caption's exact properties: leader v_l = 0,
// V₁ = {1, 2}, V₂ = {3, 4, 5}, topology cycling with period 3. V0 (the
// flood source of the caption) is node 3; the flood's last recipients,
// informed at round 3, are nodes 4 and 5 (either plays the caption's v₃).
type Figure1 struct {
	// Net is the cyclic dynamic graph.
	Net dynet.Dynamic
	// Leader is v_l.
	Leader graph.NodeID
	// V0 is the flood source of the caption.
	V0 graph.NodeID
	// V3 is a node first informed at round 3.
	V3 graph.NodeID
	// Period is the topology cycle length (3 drawn rounds).
	Period int
}

// NewFigure1 builds the Figure 1 fixture.
func NewFigure1() (*Figure1, error) {
	base := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}
	mk := func(extra ...graph.Edge) (*graph.Graph, error) {
		return graph.FromEdges(6, append(append([]graph.Edge(nil), base...), extra...))
	}
	g0, err := mk(graph.Edge{U: 2, V: 3}, graph.Edge{U: 1, V: 4}, graph.Edge{U: 1, V: 5})
	if err != nil {
		return nil, err
	}
	g1, err := mk(graph.Edge{U: 2, V: 3}, graph.Edge{U: 1, V: 4}, graph.Edge{U: 1, V: 5})
	if err != nil {
		return nil, err
	}
	g2, err := mk(graph.Edge{U: 1, V: 3}, graph.Edge{U: 1, V: 4}, graph.Edge{U: 1, V: 5})
	if err != nil {
		return nil, err
	}
	net, err := dynet.NewCyclic([]*graph.Graph{g0, g1, g2})
	if err != nil {
		return nil, err
	}
	return &Figure1{Net: net, Leader: 0, V0: 3, V3: 5, Period: 3}, nil
}

// Figure2 reproduces the transformation example of Figure 2: an ℳ(DBL)₃
// multigraph at one round, in which the highlighted node v has edge label
// set {1, 2, 3}, together with its 𝒢(PD)₂ image under the Lemma 1
// transformation.
type Figure2 struct {
	// M is the ℳ(DBL)₃ instance; node 0 is the figure's node v.
	M *multigraph.Multigraph
	// Net and Layout are the transformed 𝒢(PD)₂ dynamic graph.
	Net    dynet.Dynamic
	Layout *multigraph.PD2Layout
}

// NewFigure2 builds the Figure 2 fixture: W = {v, w₁, w₂} with
// L(v) = {1,2,3}, L(w₁) = {1}, L(w₂) = {2,3} at round r.
func NewFigure2() (*Figure2, error) {
	m, err := multigraph.New(3, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2, 3)},
		{multigraph.SetOf(1)},
		{multigraph.SetOf(2, 3)},
	})
	if err != nil {
		return nil, err
	}
	net, layout, err := m.ToPD2()
	if err != nil {
		return nil, err
	}
	return &Figure2{M: m, Net: net, Layout: layout}, nil
}

// Figure3 reproduces the indistinguishable round-0 pair of Figure 3:
// M with s₀ = [0 0 2] (two nodes, both on {1,2}; |W| = 2) and
// M′ with s₀′ = s₀ + 2k₀ = [2 2 0] (|W| = 4). Both generate the leader
// state |(1,[⊥])| = |(2,[⊥])| = 2.
type Figure3 struct {
	M, MPrime *multigraph.Multigraph
}

// NewFigure3 builds the Figure 3 fixture.
func NewFigure3() (*Figure3, error) {
	m, err := multigraph.FromHistoryCounts(2, 1, []int{0, 0, 2})
	if err != nil {
		return nil, err
	}
	mp, err := multigraph.FromHistoryCounts(2, 1, []int{2, 2, 0})
	if err != nil {
		return nil, err
	}
	return &Figure3{M: m, MPrime: mp}, nil
}

// Figure4 reproduces the indistinguishable round-1 pair of Figure 4, using
// the solution vectors printed in Section 4.2:
// s₁ = [0 0 1 0 0 1 1 1 0] (|W| = 4) and s₁′ = s₁ + k₁ =
// [1 1 0 1 1 0 0 0 1] (|W| = 5). The two multigraphs induce the same
// leader state S(v_l, 1) = m₁.
type Figure4 struct {
	M, MPrime *multigraph.Multigraph
}

// NewFigure4 builds the Figure 4 fixture.
func NewFigure4() (*Figure4, error) {
	m, err := multigraph.FromHistoryCounts(2, 2, []int{0, 0, 1, 0, 0, 1, 1, 1, 0})
	if err != nil {
		return nil, err
	}
	mp, err := multigraph.FromHistoryCounts(2, 2, []int{1, 1, 0, 1, 1, 0, 0, 0, 1})
	if err != nil {
		return nil, err
	}
	return &Figure4{M: m, MPrime: mp}, nil
}
