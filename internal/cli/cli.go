// Package cli holds the conventions shared by the anondyn command-line
// binaries: a run context wired to SIGINT/SIGTERM, the -timeout flag
// semantics, and the common exit-code discipline — 0 for success, 1 for a
// usage error (bad flags or arguments), 2 for a runtime failure (an
// execution, verification, or I/O error after a well-formed invocation) —
// with all diagnostics printed to stderr and results to stdout.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Exit codes shared by every binary in cmd/.
const (
	ExitSuccess = 0
	ExitUsage   = 1
	ExitRuntime = 2
)

// UsageError marks an error as a bad invocation, mapping it to ExitUsage.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError from a format string.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// WrapUsage marks err as a usage error. nil and flag.ErrHelp (which must
// keep exiting 0, since -h is a successful invocation) pass through
// unchanged, so it can wrap a flag.FlagSet.Parse result directly.
func WrapUsage(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &UsageError{Err: err}
}

// IsUsage reports whether err is marked as a usage error.
func IsUsage(err error) bool {
	var ue *UsageError
	return errors.As(err, &ue)
}

// ExitCode maps a command run function's error to the exit-code convention.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return ExitSuccess
	case IsUsage(err):
		return ExitUsage
	default:
		return ExitRuntime
	}
}

// WithTimeout derives the run context from the -timeout flag value: a
// nonpositive duration means no time limit. The returned cancel function
// must always be called.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// Main runs a binary's run function under the shared conventions: the
// context is canceled on SIGINT/SIGTERM (so a second signal kills the
// process with Go's default behavior), errors are reported on stderr
// prefixed with the binary name, and the process exits with ExitCode(err).
// It does not return.
func Main(name string, run func(ctx context.Context, args []string, out io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	// os.Exit skips deferred flushes, so force the results stream to
	// stable storage here: partial output printed before a non-zero exit
	// (an interrupted run's completed rows) must be durable — resumed
	// campaigns trust it. Sync fails benignly on terminals and pipes.
	_ = os.Stdout.Sync()
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	os.Exit(ExitCode(err))
}
