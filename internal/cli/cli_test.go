package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"
)

func TestExitCodeConvention(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, ExitSuccess},
		{"help is success", flag.ErrHelp, ExitSuccess},
		{"wrapped help is success", fmt.Errorf("parse: %w", flag.ErrHelp), ExitSuccess},
		{"usage", Usagef("-n must be >= 1, got %d", 0), ExitUsage},
		{"wrapped usage", fmt.Errorf("outer: %w", Usagef("bad")), ExitUsage},
		{"runtime failure", errors.New("verification failed"), ExitRuntime},
		{"canceled run is a runtime failure", context.Canceled, ExitRuntime},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestWrapUsage(t *testing.T) {
	if WrapUsage(nil) != nil {
		t.Fatal("WrapUsage(nil) should stay nil")
	}
	if err := WrapUsage(flag.ErrHelp); !errors.Is(err, flag.ErrHelp) || IsUsage(err) {
		t.Fatalf("WrapUsage(ErrHelp) = %v, should pass through unmarked", err)
	}
	base := errors.New("unknown flag")
	err := WrapUsage(base)
	if !IsUsage(err) || !errors.Is(err, base) {
		t.Fatalf("WrapUsage(%v) = %v, want a UsageError wrapping it", base, err)
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("nonpositive timeout must not set a deadline")
	}
	ctx2, cancel2 := WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("positive timeout must set a deadline")
	}
	ctx3, cancel3 := WithTimeout(context.Background(), time.Nanosecond)
	defer cancel3()
	select {
	case <-ctx3.Done():
	case <-time.After(time.Second):
		t.Fatal("tiny timeout never expired")
	}
	if !errors.Is(ctx3.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx err = %v", ctx3.Err())
	}
}
