package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn/internal/obs"
)

func newObsFlagSet() (*flag.FlagSet, *ObsConfig) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, ObsFlags(fs)
}

func TestObsFlagsDisabledIsNoop(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	fs, cfg := newObsFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Start(); err != nil {
		t.Fatal(err)
	}
	if obs.Global() != nil {
		t.Fatal("Start without flags installed a global collector")
	}
	if err := cfg.Finish(nil); err != nil {
		t.Fatal(err)
	}
}

func TestObsFlagsMetricsSnapshot(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)

	path := filepath.Join(t.TempDir(), "m.json")
	fs, cfg := newObsFlagSet()
	if err := fs.Parse([]string{"-metrics", path}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Start(); err != nil {
		t.Fatal(err)
	}
	col := obs.Global()
	if col == nil {
		t.Fatal("-metrics did not install a global collector")
	}
	col.Counter("test.events").Add(7)
	if err := cfg.Finish(nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, data)
	}
	if snap.Counters["test.events"] != 7 {
		t.Fatalf("snapshot counters = %v, want test.events=7", snap.Counters)
	}
}

// Finish must preserve the run's own error over a snapshot-write failure,
// but surface the write failure when the run succeeded.
func TestObsFinishErrorPrecedence(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)

	badPath := filepath.Join(t.TempDir(), "no-such-dir", "m.json")
	fs, cfg := newObsFlagSet()
	if err := fs.Parse([]string{"-metrics", badPath}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Start(); err != nil {
		t.Fatal(err)
	}
	runErr := fmt.Errorf("the run failed")
	if got := cfg.Finish(runErr); got != runErr {
		t.Fatalf("Finish(runErr) = %v, want the run error", got)
	}
	// A fresh config against the same bad path, now with a clean run.
	fs2, cfg2 := newObsFlagSet()
	if err := fs2.Parse([]string{"-metrics", badPath}); err != nil {
		t.Fatal(err)
	}
	if err := cfg2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := cfg2.Finish(nil); got == nil {
		t.Fatal("Finish(nil) swallowed the snapshot write failure")
	}
}

func TestObsFlagsPprofServer(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)

	fs, cfg := newObsFlagSet()
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cfg.Finish(nil); err != nil {
			t.Fatal(err)
		}
	}()
	addr := cfg.Addr()
	if addr == "" {
		t.Fatal("no listen address after Start")
	}
	obs.Global().Counter("test.live").Inc()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "test.live") {
			t.Fatalf("/metrics missing live counter:\n%s", body)
		}
	}
}

func TestObsFlagsBadPprofAddrIsUsageError(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)

	fs, cfg := newObsFlagSet()
	if err := fs.Parse([]string{"-pprof", "not-an-address:-1"}); err != nil {
		t.Fatal(err)
	}
	err := cfg.Start()
	if err == nil {
		t.Fatal("bad -pprof address accepted")
	}
	if !IsUsage(err) {
		t.Fatalf("bad -pprof address should be a usage error, got %v", err)
	}
	_ = cfg.Finish(nil)
}
