package cli

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"anondyn/internal/obs"
)

// ObsConfig carries the shared observability flags every anondyn binary
// accepts. With neither flag set, nothing is installed and the process runs
// with the nil (zero-cost) collector; either flag enables the process-wide
// collector so instrumented hot paths start recording.
type ObsConfig struct {
	// MetricsPath, when non-empty, is where Finish writes a JSON snapshot
	// of every counter, gauge, and histogram recorded during the run.
	MetricsPath string
	// PprofAddr, when non-empty, serves /debug/pprof/*, /debug/vars
	// (expvar), and a live /metrics JSON snapshot on that address for the
	// duration of the run.
	PprofAddr string

	col  *obs.Collector
	srv  *http.Server
	addr string
}

// Addr returns the debug server's actual listen address (resolving a :0
// port), or "" when no server is running.
func (o *ObsConfig) Addr() string {
	if o == nil {
		return ""
	}
	return o.addr
}

// ObsFlags registers the shared -metrics and -pprof flags on fs and returns
// the config they populate. Call Start after fs.Parse and defer Finish.
func ObsFlags(fs *flag.FlagSet) *ObsConfig {
	o := &ObsConfig{}
	fs.StringVar(&o.MetricsPath, "metrics", "", "write a JSON metrics snapshot to this `file` on exit")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve /debug/pprof, /debug/vars, and /metrics on this `addr` (e.g. localhost:6060)")
	return o
}

// Start installs the process-wide collector if either flag was given and
// brings up the debug HTTP server if -pprof was. A bad -pprof address is a
// usage error. With neither flag set it is a no-op.
func (o *ObsConfig) Start() error {
	if o == nil || (o.MetricsPath == "" && o.PprofAddr == "") {
		return nil
	}
	o.col = obs.Enable()
	if o.PprofAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", o.PprofAddr)
	if err != nil {
		return Usagef("-pprof: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", obs.Handler(o.col))
	o.addr = ln.Addr().String()
	o.srv = &http.Server{Handler: mux}
	go func() { _ = o.srv.Serve(ln) }()
	return nil
}

// Finish tears down the debug server and writes the -metrics snapshot.
// It passes runErr through so commands can wrap their run body as
// `defer func() { err = obsCfg.Finish(err) }()`: the run's own error always
// wins, but a snapshot write failure surfaces on otherwise-successful runs
// rather than vanishing.
func (o *ObsConfig) Finish(runErr error) error {
	if o == nil {
		return runErr
	}
	if o.srv != nil {
		_ = o.srv.Close()
		o.srv = nil
	}
	if o.col != nil && o.MetricsPath != "" {
		if werr := o.col.WriteFile(o.MetricsPath); werr != nil && runErr == nil {
			return fmt.Errorf("cli: writing -metrics snapshot: %w", werr)
		}
	}
	return runErr
}
