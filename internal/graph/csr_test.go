package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20) + 1
		g := RandomConnected(n, 0.3, rng)
		c, err := g.CSR(nil)
		if err != nil {
			t.Fatalf("CSR: %v", err)
		}
		if c.N() != n {
			t.Fatalf("CSR has %d nodes, want %d", c.N(), n)
		}
		if c.Total() != 2*g.M() {
			t.Fatalf("CSR total %d, want %d", c.Total(), 2*g.M())
		}
		for v := 0; v < n; v++ {
			if c.Degree(NodeID(v)) != g.Degree(NodeID(v)) {
				t.Fatalf("node %d: CSR degree %d, graph degree %d", v, c.Degree(NodeID(v)), g.Degree(NodeID(v)))
			}
			want := g.Neighbors(NodeID(v))
			got := c.Neighbors(NodeID(v))
			if len(got) != len(want) {
				t.Fatalf("node %d: CSR row %v, graph %v", v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d: CSR row %v, graph %v", v, got, want)
				}
			}
		}
	}
}

func TestCSRReuseNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(40, 0.2, rng)
	c, err := g.CSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := g.CSR(c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state CSR conversion allocates %.1f times per call, want 0", allocs)
	}
}

func TestCSREmpty(t *testing.T) {
	c, err := New(0).CSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 0 || c.Total() != 0 {
		t.Fatalf("empty CSR: n=%d total=%d", c.N(), c.Total())
	}
	if got := c.Degree(0); got != 0 {
		t.Errorf("out-of-range degree = %d, want 0", got)
	}
	if nb := c.Neighbors(0); nb != nil {
		t.Errorf("out-of-range neighbors = %v, want nil", nb)
	}
	var zero CSR
	if zero.N() != 0 || zero.Total() != 0 {
		t.Errorf("zero CSR: n=%d total=%d", zero.N(), zero.Total())
	}
	// A zero-value CSR lacks even the single offset an empty graph carries;
	// it is not a valid snapshot.
	if err := zero.Validate(); err == nil {
		t.Error("zero-value CSR validated clean, want error")
	}
}

func TestCSRValidateRejectsCorruption(t *testing.T) {
	base := func() *CSR {
		return &CSR{Offsets: []int{0, 1, 3, 4}, Nbrs: []NodeID{1, 0, 2, 1}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base CSR invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"offsets-short", func(c *CSR) { c.Offsets = c.Offsets[:3] }},
		{"offsets-nonzero-start", func(c *CSR) { c.Offsets[0] = 1 }},
		{"offsets-decreasing", func(c *CSR) { c.Offsets[2] = 0 }},
		{"total-mismatch", func(c *CSR) { c.Offsets[3] = 5 }},
		{"saturated-total", func(c *CSR) { c.Offsets[3] = math.MaxInt }},
		{"neighbor-out-of-range", func(c *CSR) { c.Nbrs[0] = 9 }},
		{"neighbor-negative", func(c *CSR) { c.Nbrs[0] = -1 }},
		{"self-loop", func(c *CSR) { c.Nbrs[0] = 0 }},
		{"row-unsorted", func(c *CSR) { c.Nbrs[1], c.Nbrs[2] = c.Nbrs[2], c.Nbrs[1] }},
		{"row-duplicate", func(c *CSR) { c.Nbrs[2] = 0 }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt CSR", tc.name)
		}
	}
}

// TestSatAddSaturates pins the overflow convention: size arithmetic near
// MaxInt saturates instead of wrapping, matching multigraph.HistoryCount.
func TestSatAddSaturates(t *testing.T) {
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxInt, 0, math.MaxInt},
		{math.MaxInt, 1, math.MaxInt},
		{math.MaxInt - 1, 1, math.MaxInt},
		{math.MaxInt - 1, 2, math.MaxInt},
		{math.MaxInt / 2, math.MaxInt/2 + 2, math.MaxInt},
	}
	for _, tc := range cases {
		if got := satAdd(tc.a, tc.b); got != tc.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
