package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. The name parameter becomes
// the graph name; highlight marks a node (typically the leader) with a
// doublecircle shape. Useful for debugging adversary constructions.
func (g *Graph) DOT(name string, highlight NodeID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.n; v++ {
		shape := "circle"
		if NodeID(v) == highlight {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [shape=%s];\n", v, shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -- n%d;\n", e.U, e.V)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
