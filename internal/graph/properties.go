package graph

import "sort"

// DegreeSequence returns the multiset of node degrees in descending order —
// the standard graph invariant, useful for validating adversary
// constructions and degree-bound claims.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		seq[v] = g.Degree(NodeID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

// MaxDegree returns the largest node degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// IsRegular reports whether every node has the same degree, returning that
// degree. The empty graph is vacuously 0-regular.
func (g *Graph) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if g.Degree(NodeID(v)) != d {
			return 0, false
		}
	}
	return d, true
}

// Bipartition attempts to 2-color the graph. On success it returns the
// color classes (sorted ascending); bipartite layered networks — such as
// the restricted 𝒢(PD)₂ instances with no intra-layer edges — always
// succeed. Isolated nodes land in the first class.
func (g *Graph) Bipartition() (a, b []NodeID, ok bool) {
	color := make([]int, g.n) // 0 unvisited, 1 or 2
	queue := make([]NodeID, 0, g.n)
	for start := 0; start < g.n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if color[v] == 0 {
					color[v] = 3 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return nil, nil, false
				}
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if color[v] == 1 {
			a = append(a, NodeID(v))
		} else {
			b = append(b, NodeID(v))
		}
	}
	return a, b, true
}

// InducedSubgraph returns the subgraph induced by the given nodes, with
// nodes relabeled 0..len(nodes)-1 in the given order. Unknown nodes are
// ignored. Useful for inspecting a layer of a PD network in isolation.
func (g *Graph) InducedSubgraph(nodes []NodeID) *Graph {
	idx := make(map[NodeID]int, len(nodes))
	kept := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= g.n {
			continue
		}
		if _, dup := idx[v]; dup {
			continue
		}
		idx[v] = len(kept)
		kept = append(kept, v)
	}
	sub := New(len(kept))
	for _, u := range kept {
		for v := range g.adj[u] {
			j, ok := idx[v]
			if ok && idx[u] < j {
				_ = sub.AddEdge(NodeID(idx[u]), NodeID(j))
			}
		}
	}
	return sub
}
