package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegreeSequence(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	got := g.DegreeSequence()
	want := []int{3, 2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", got, want)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	if d := New(0).MaxDegree(); d != 0 {
		t.Fatalf("empty MaxDegree = %d", d)
	}
	star, err := Star(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := star.MaxDegree(); d != 5 {
		t.Fatalf("star MaxDegree = %d, want 5", d)
	}
}

func TestIsRegular(t *testing.T) {
	if d, ok := Complete(4).IsRegular(); !ok || d != 3 {
		t.Fatalf("K4 regular = (%d, %v)", d, ok)
	}
	cyc, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := cyc.IsRegular(); !ok || d != 2 {
		t.Fatalf("C5 regular = (%d, %v)", d, ok)
	}
	if _, ok := Path(4).IsRegular(); ok {
		t.Fatal("path should not be regular")
	}
	if d, ok := New(0).IsRegular(); !ok || d != 0 {
		t.Fatal("empty graph should be 0-regular")
	}
}

func TestBipartition(t *testing.T) {
	// A path is bipartite with alternating classes.
	a, b, ok := Path(5).Bipartition()
	if !ok {
		t.Fatal("path should be bipartite")
	}
	if len(a)+len(b) != 5 {
		t.Fatalf("classes %v / %v do not cover", a, b)
	}
	// Odd cycle is not bipartite.
	c5, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c5.Bipartition(); ok {
		t.Fatal("C5 should not be bipartite")
	}
	// Even cycle is.
	c6, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c6.Bipartition(); !ok {
		t.Fatal("C6 should be bipartite")
	}
	// Disconnected graphs are handled per component.
	g := New(4)
	_ = g.AddEdge(0, 1)
	if _, _, ok := g.Bipartition(); !ok {
		t.Fatal("disconnected bipartite graph rejected")
	}
}

func TestBipartitionClassesValid(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%10) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 0.2, rng)
		a, b, ok := g.Bipartition()
		if !ok {
			return true // nothing to check; non-bipartite is legal
		}
		inA := map[NodeID]bool{}
		for _, v := range a {
			inA[v] = true
		}
		for _, e := range g.Edges() {
			if inA[e.U] == inA[e.V] {
				return false // an edge inside a class
			}
		}
		return len(a)+len(b) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	sub := g.InducedSubgraph([]NodeID{0, 1, 2})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced = %v", sub)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("induced edges wrong: %v", sub)
	}
	// Out-of-range and duplicate nodes are ignored.
	sub2 := g.InducedSubgraph([]NodeID{0, 0, 9, 1})
	if sub2.N() != 2 || !sub2.HasEdge(0, 1) {
		t.Fatalf("induced with junk input = %v", sub2)
	}
}
