package graph

import (
	"fmt"
	"math/rand"
)

// Star returns a star graph on n nodes with node `center` at the center.
// Star graphs are exactly the G(PD)_1 topologies: the adversary cannot
// change a star without disconnecting it, so the leader counts in one round.
func Star(n int, center NodeID) (*Graph, error) {
	g := New(n)
	if n == 0 {
		return g, nil
	}
	if err := g.check(center); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		if NodeID(v) == center {
			continue
		}
		if err := g.AddEdge(center, NodeID(v)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		// Endpoints are in range and distinct by construction.
		_ = g.AddEdge(NodeID(v), NodeID(v+1))
	}
	return g
}

// Cycle returns the cycle graph 0-1-...-(n-1)-0. n must be at least 3.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs at least 3 nodes, got %d", n)
	}
	g := Path(n)
	if err := g.AddEdge(NodeID(n-1), 0); err != nil {
		return nil, err
	}
	return g, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = g.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return g
}

// RandomConnected returns a connected graph on n nodes: a uniformly random
// spanning tree (random Prüfer-free attachment) plus each extra edge added
// independently with probability p. The rng drives all randomness so results
// are reproducible.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	// Random attachment tree: node i attaches to a uniform earlier node.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		_ = g.AddEdge(NodeID(perm[i]), NodeID(perm[j]))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(NodeID(u), NodeID(v)) && rng.Float64() < p {
				_ = g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

// Layered builds a graph stratified by distance from node 0 ("the leader"):
// layer sizes give the number of nodes at each distance 1..len(sizes); every
// node in layer i has at least one neighbor in layer i-1 (chosen by rng) and
// no edges skip layers or stay inside a layer unless intra is true.
// extra in [0,1] adds additional random cross-layer edges with that
// probability. The result is a valid single-round snapshot of a PD_h graph
// with h = len(sizes).
func Layered(sizes []int, intra bool, extra float64, rng *rand.Rand) (*Graph, []int, error) {
	n := 1
	for i, s := range sizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("graph: layer %d has non-positive size %d", i+1, s)
		}
		n += s
	}
	g := New(n)
	// layerOf[v] = distance layer of node v; node 0 is the leader at layer 0.
	layerOf := make([]int, n)
	start := 1
	prev := []NodeID{0}
	for li, s := range sizes {
		cur := make([]NodeID, 0, s)
		for v := start; v < start+s; v++ {
			layerOf[v] = li + 1
			cur = append(cur, NodeID(v))
			// Mandatory uplink keeps the node at distance exactly li+1.
			up := prev[rng.Intn(len(prev))]
			if err := g.AddEdge(NodeID(v), up); err != nil {
				return nil, nil, err
			}
			// Optional extra uplinks.
			for _, u := range prev {
				if u != up && rng.Float64() < extra {
					if err := g.AddEdge(NodeID(v), u); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		if intra {
			for i := 0; i < len(cur); i++ {
				for j := i + 1; j < len(cur); j++ {
					if rng.Float64() < extra {
						if err := g.AddEdge(cur[i], cur[j]); err != nil {
							return nil, nil, err
						}
					}
				}
			}
		}
		prev = cur
		start += s
	}
	return g, layerOf, nil
}
