package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
}

func TestNewZeroNodes(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("empty graph should be connected by convention")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} not present in both directions")
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d after duplicate adds, want 1", g.M())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name string
		u, v NodeID
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddEdge(tc.u, tc.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tc.u, tc.v)
			}
		})
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
	// Removing an absent edge is a no-op.
	if err := g.RemoveEdge(0, 2); err != nil {
		t.Fatalf("removing absent edge: %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	for _, v := range []NodeID{4, 2, 3, 1} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(0)
	want := []NodeID{1, 2, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
}

func TestNeighborsOutOfRange(t *testing.T) {
	g := New(2)
	if nb := g.Neighbors(5); nb != nil {
		t.Fatalf("Neighbors(5) = %v, want nil", nb)
	}
	if d := g.Degree(-1); d != 0 {
		t.Fatalf("Degree(-1) = %d, want 0", d)
	}
}

func TestEdgesCanonicalOrder(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(3, 1)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(1, 0)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range edges {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	_ = c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutation of clone leaked into original")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	b := MustFromEdges(3, []Edge{{1, 2}, {0, 1}})
	c := MustFromEdges(3, []Edge{{0, 1}})
	d := MustFromEdges(4, []Edge{{0, 1}, {1, 2}})
	if !a.Equal(b) {
		t.Fatal("a should equal b")
	}
	if a.Equal(c) {
		t.Fatal("a should not equal c (different edges)")
	}
	if a.Equal(d) {
		t.Fatal("a should not equal d (different node count)")
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2}
	c := e.Canonical()
	if c.U != 2 || c.V != 5 {
		t.Fatalf("Canonical() = %v", c)
	}
	if e.String() != "{2,5}" {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestFromEdgesError(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("FromEdges with bad edge should error")
	}
}

func TestMustFromEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromEdges did not panic on invalid edge")
		}
	}()
	MustFromEdges(2, []Edge{{0, 0}})
}

func TestString(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	want := "n=3 edges=[{0,1} {1,2}]"
	if got := g.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: for any random graph, M() equals half the degree sum
// (handshake lemma) and every listed edge is reported by HasEdge.
func TestHandshakeLemmaProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 0.3, rng)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(NodeID(v))
		}
		if sum != 2*g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is always Equal and mutating the clone never changes
// the original edge count.
func TestClonePropertyQuick(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%15) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 0.2, rng)
		c := g.Clone()
		if !g.Equal(c) {
			return false
		}
		before := g.M()
		// Remove every edge from the clone.
		for _, e := range c.Edges() {
			_ = c.RemoveEdge(e.U, e.V)
		}
		return g.M() == before && c.M() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
