package graph

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row adjacency view of a graph: the neighbors
// of node v are Nbrs[Offsets[v]:Offsets[v+1]], in ascending order. It is the
// flat-memory representation the sharded round engine consumes — at 10⁶
// nodes the map-based Graph adjacency costs hundreds of megabytes and a
// pointer chase per edge, while a CSR is two contiguous arrays.
//
// Invariants (checked by Validate):
//
//	len(Offsets) == N()+1, Offsets[0] == 0, Offsets non-decreasing,
//	Offsets[N()] == len(Nbrs), every row strictly ascending and in range,
//	no self-loops.
//
// A CSR is a snapshot view: producers (Graph.CSR, dynet implementations)
// may reuse the backing arrays for the next snapshot, so a CSR is valid
// only until its producer is asked for another one — the same ownership
// rule the engine applies to inbox slices.
type CSR struct {
	Offsets []int
	Nbrs    []NodeID
}

// N returns the number of nodes.
func (c *CSR) N() int {
	if len(c.Offsets) == 0 {
		return 0
	}
	return len(c.Offsets) - 1
}

// Degree returns the number of neighbors of v. Out-of-range v has degree 0.
func (c *CSR) Degree(v NodeID) int {
	if v < 0 || int(v) >= c.N() {
		return 0
	}
	return c.Offsets[v+1] - c.Offsets[v]
}

// Neighbors returns the neighbors of v in ascending order. The returned
// slice aliases the CSR's backing array; callers must not modify it.
func (c *CSR) Neighbors(v NodeID) []NodeID {
	if v < 0 || int(v) >= c.N() {
		return nil
	}
	return c.Nbrs[c.Offsets[v]:c.Offsets[v+1]:c.Offsets[v+1]]
}

// Total returns the total adjacency size Offsets[N()] (twice the edge
// count for an undirected graph).
func (c *CSR) Total() int {
	if len(c.Offsets) == 0 {
		return 0
	}
	return c.Offsets[len(c.Offsets)-1]
}

// Validate checks the CSR invariants in full: offset shape and monotonicity
// (which also rejects a saturated/overflowed offset sum, since a saturated
// Offsets[N()] cannot equal len(Nbrs)), row sortedness, neighbor range, and
// self-loop freedom. O(n + E); the engine runs it once per ingested
// snapshot.
func (c *CSR) Validate() error {
	n := c.N()
	if len(c.Offsets) != n+1 {
		return fmt.Errorf("graph: csr has %d offsets for %d nodes", len(c.Offsets), n)
	}
	if n == 0 {
		if len(c.Nbrs) != 0 {
			return fmt.Errorf("graph: empty csr has %d neighbor entries", len(c.Nbrs))
		}
		return nil
	}
	if c.Offsets[0] != 0 {
		return fmt.Errorf("graph: csr offsets start at %d, want 0", c.Offsets[0])
	}
	for v := 0; v < n; v++ {
		if c.Offsets[v+1] < c.Offsets[v] {
			return fmt.Errorf("graph: csr offsets decrease at node %d (%d -> %d)", v, c.Offsets[v], c.Offsets[v+1])
		}
	}
	if c.Offsets[n] != len(c.Nbrs) {
		return fmt.Errorf("graph: csr claims %d adjacency entries, backing array has %d", c.Offsets[n], len(c.Nbrs))
	}
	for v := 0; v < n; v++ {
		row := c.Nbrs[c.Offsets[v]:c.Offsets[v+1]]
		for i, u := range row {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: csr node %d has out-of-range neighbor %d", v, u)
			}
			if u == NodeID(v) {
				return fmt.Errorf("graph: csr self-loop at node %d", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: csr row %d not strictly ascending at position %d", v, i)
			}
		}
	}
	return nil
}

// satAdd adds non-negative sizes, saturating at MaxInt instead of wrapping —
// the same convention as multigraph.HistoryCount. A saturated offset sum is
// detected downstream: Validate rejects any CSR whose Offsets[N()] does not
// match its backing array, and no array of MaxInt messages is allocatable.
func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// CSR converts the graph to CSR form, reusing the arrays of `reuse` when it
// is non-nil (pass the previous round's CSR back in to make steady-state
// conversion allocation-free). Offset accumulation saturates at MaxInt per
// the HistoryCount convention; a saturated result fails the final Validate
// and is reported as an error rather than returned.
func (g *Graph) CSR(reuse *CSR) (*CSR, error) {
	c := reuse
	if c == nil {
		c = &CSR{}
	}
	n := g.N()
	c.Offsets = append(c.Offsets[:0], 0)
	c.Nbrs = c.Nbrs[:0]
	total := 0
	for v := 0; v < n; v++ {
		total = satAdd(total, g.Degree(NodeID(v)))
		c.Offsets = append(c.Offsets, total)
		c.Nbrs = g.NeighborsAppend(NodeID(v), c.Nbrs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
