// Package graph provides undirected simple graphs used as per-round
// snapshots of a dynamic network.
//
// A Graph is a set of nodes {0, ..., n-1} together with a set of
// bidirectional edges. Graphs are the G_r in the paper's Definition 1: a
// dynamic graph is an infinite sequence of these snapshots, one per
// synchronous round. All analysis needed by the reproduction — BFS
// distances, connectivity, distance partitions, flooding — lives here.
package graph

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node within a graph. Nodes are dense integers in
// [0, N). Identity is a property of the simulation harness, not of the
// algorithms under test: anonymous protocols never observe NodeIDs.
type NodeID int

// Edge is an undirected edge between two nodes. The zero value is the
// self-loop {0,0}, which is never valid in a simple graph.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered so that U <= V.
// Two edges are the same undirected edge iff their canonical forms are equal.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// String renders the edge as "{u,v}" in canonical order.
func (e Edge) String() string {
	c := e.Canonical()
	return fmt.Sprintf("{%d,%d}", c.U, c.V)
}

// Graph is an undirected simple graph over nodes 0..n-1.
// The zero value is an empty graph with no nodes; use New.
//
// Reads are safe for concurrent use; mutation (AddEdge, RemoveEdge) must
// not race with readers — the same contract as the adjacency maps. The
// first sorted-neighbor traversal builds a CSR index of the adjacency
// (offsets + concatenated sorted neighbor lists) which subsequent
// traversals reuse; the runtime engines walk every node's neighborhood
// each round, so the index turns that hot path from per-round map
// iteration and sorting into a copy of a precomputed slice. Mutators drop
// the index.
type Graph struct {
	n   int
	adj []map[NodeID]struct{}
	csr atomic.Pointer[csrIndex]
}

// csrIndex is the frozen adjacency: neighbors of v, in ascending order,
// are nbrs[off[v]:off[v+1]].
type csrIndex struct {
	off  []int32
	nbrs []NodeID
}

// index returns the CSR adjacency, building it on first use. Concurrent
// first calls may build duplicate indexes; one wins the CAS and the rest
// are discarded — all are equal, so readers never observe inconsistency.
func (g *Graph) index() *csrIndex {
	if idx := g.csr.Load(); idx != nil {
		return idx
	}
	idx := &csrIndex{off: make([]int32, g.n+1)}
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	idx.nbrs = make([]NodeID, 0, total)
	for v := 0; v < g.n; v++ {
		base := len(idx.nbrs)
		for u := range g.adj[v] {
			idx.nbrs = append(idx.nbrs, u)
		}
		slices.Sort(idx.nbrs[base:])
		idx.off[v+1] = int32(len(idx.nbrs))
	}
	g.csr.CompareAndSwap(nil, idx)
	return idx
}

// New returns an empty graph with n nodes and no edges.
// n must be non-negative; New panics otherwise (programmer error).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	adj := make([]map[NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[NodeID]struct{})
	}
	return &Graph{n: n, adj: adj}
}

// FromEdges builds a graph with n nodes and the given edges.
// It returns an error if any edge endpoint is out of range or a self-loop.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error. Intended for tests and
// for statically-known fixtures such as the paper's figures.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

func (g *Graph) check(v NodeID) error {
	if v < 0 || int(v) >= g.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, g.n)
	}
	return nil
}

// AddEdge inserts the undirected edge {u,v}. Adding an existing edge is a
// no-op. Self-loops and out-of-range endpoints are errors.
func (g *Graph) AddEdge(u, v NodeID) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.csr.Store(nil)
	return nil
}

// RemoveEdge deletes the undirected edge {u,v} if present.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.csr.Store(nil)
	return nil
}

// HasEdge reports whether {u,v} is an edge. Out-of-range nodes have no edges.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns |N(v)|, the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	if v < 0 || int(v) >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in ascending order.
// The returned slice is a copy; callers may modify it freely.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if v < 0 || int(v) >= g.n {
		return nil
	}
	return g.NeighborsAppend(v, make([]NodeID, 0, len(g.adj[v])))
}

// NeighborsAppend appends the neighbors of v to dst in ascending order and
// returns the extended slice: the allocation-free variant of Neighbors for
// hot loops (the runtime engines call it once per node per round with a
// reused buffer). Out-of-range v appends nothing.
func (g *Graph) NeighborsAppend(v NodeID, dst []NodeID) []NodeID {
	if v < 0 || int(v) >= g.n {
		return dst
	}
	idx := g.index()
	return append(dst, idx.nbrs[idx.off[v]:idx.off[v+1]]...)
}

// Edges returns all edges in canonical order (sorted by (U,V)).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

// Equal reports whether g and h have the same node count and edge set.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := h.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n=<N> edges=[{a,b} {c,d} ...]".
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d edges=[", g.n)
	for i, e := range g.Edges() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.String())
	}
	sb.WriteByte(']')
	return sb.String()
}
