package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSDistancesPath(t *testing.T) {
	g := Path(5)
	dist := g.BFSDistances(0)
	for v, d := range dist {
		if d != v {
			t.Fatalf("dist[%d] = %d, want %d", v, d, v)
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1)
	dist := g.BFSDistances(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("disconnected nodes should be Unreachable, got %v", dist)
	}
}

func TestBFSDistancesBadSource(t *testing.T) {
	g := New(3)
	dist := g.BFSDistances(7)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatalf("out-of-range source should leave all Unreachable, got %v", dist)
		}
	}
}

func TestDistance(t *testing.T) {
	g := Path(4)
	if d := g.Distance(0, 3); d != 3 {
		t.Fatalf("Distance(0,3) = %d, want 3", d)
	}
	if d := g.Distance(0, 9); d != Unreachable {
		t.Fatalf("Distance to out-of-range = %d, want Unreachable", d)
	}
}

func TestConnected(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", Path(5), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"complete", Complete(4), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Connected(); got != tc.want {
				t.Fatalf("Connected() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Path(5)
	if ecc := g.Eccentricity(0); ecc != 4 {
		t.Fatalf("Eccentricity(0) = %d, want 4", ecc)
	}
	if ecc := g.Eccentricity(2); ecc != 2 {
		t.Fatalf("Eccentricity(2) = %d, want 2", ecc)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Diameter() = %d, want 4", d)
	}
	disc := New(3)
	if d := disc.Diameter(); d != Unreachable {
		t.Fatalf("Diameter of disconnected = %d, want Unreachable", d)
	}
}

func TestDistancePartition(t *testing.T) {
	// Star: leader at center, all others at distance 1 — a PD_1 topology.
	g, err := Star(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	part := g.DistancePartition(0)
	if len(part[0]) != 1 || part[0][0] != 0 {
		t.Fatalf("layer 0 = %v", part[0])
	}
	if len(part[1]) != 4 {
		t.Fatalf("layer 1 = %v, want 4 nodes", part[1])
	}
}

func TestCountPaths(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3 has two shortest paths 0->3.
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if got := g.CountPaths(0, 3); got != 2 {
		t.Fatalf("CountPaths(0,3) = %d, want 2", got)
	}
	if got := g.CountPaths(0, 0); got != 1 {
		t.Fatalf("CountPaths(0,0) = %d, want 1", got)
	}
}

func TestCountPathsUnreachable(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	if got := g.CountPaths(0, 2); got != 0 {
		t.Fatalf("CountPaths to unreachable = %d, want 0", got)
	}
	if got := g.CountPaths(-1, 2); got != 0 {
		t.Fatalf("CountPaths bad source = %d, want 0", got)
	}
}

func TestStarGenerators(t *testing.T) {
	g, err := Star(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 5 {
		t.Fatalf("center degree = %d, want 5", g.Degree(2))
	}
	for v := 0; v < 6; v++ {
		if v != 2 && g.Degree(NodeID(v)) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", v, g.Degree(NodeID(v)))
		}
	}
	if _, err := Star(3, 9); err == nil {
		t.Fatal("Star with out-of-range center should error")
	}
	empty, err := Star(0, 0)
	if err != nil || empty.N() != 0 {
		t.Fatalf("Star(0,0) = (%v, %v)", empty, err)
	}
}

func TestCycle(t *testing.T) {
	g, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if g.Degree(NodeID(v)) != 2 {
			t.Fatalf("cycle node %d degree = %d, want 2", v, g.Degree(NodeID(v)))
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) should error")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Fatalf("K5 has %d edges, want 10", g.M())
	}
	if g.Diameter() != 1 {
		t.Fatalf("K5 diameter = %d, want 1", g.Diameter())
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30) + 1
		g := RandomConnected(n, rng.Float64()*0.5, rng)
		if !g.Connected() {
			t.Fatalf("trial %d: RandomConnected(%d) disconnected", trial, n)
		}
	}
}

func TestLayeredDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{3, 5, 2}
	g, layerOf, err := Layered(sizes, true, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSDistances(0)
	for v := 0; v < g.N(); v++ {
		if dist[v] != layerOf[v] {
			t.Fatalf("node %d at distance %d, want layer %d", v, dist[v], layerOf[v])
		}
	}
}

func TestLayeredBadSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Layered([]int{2, 0}, false, 0, rng); err == nil {
		t.Fatal("Layered with zero layer size should error")
	}
}

// Property: in Layered graphs, every node's BFS distance from the leader
// equals its layer, for arbitrary seeds and shapes. This is the static
// precondition for persistent-distance dynamic graphs.
func TestLayeredDistanceProperty(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{int(a%5) + 1, int(b%5) + 1}
		g, layerOf, err := Layered(sizes, true, rng.Float64(), rng)
		if err != nil {
			return false
		}
		dist := g.BFSDistances(0)
		for v := 0; v < g.N(); v++ {
			if dist[v] != layerOf[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 1}})
	dot := g.DOT("fig 1", 0)
	for _, want := range []string{"graph fig_1 {", "n0 [shape=doublecircle];", "n1 [shape=circle];", "n0 -- n1;"} {
		if !contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if d := g.DOT("", 0); !contains(d, "graph G {") {
		t.Fatalf("empty name should render as G:\n%s", d)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: distance is symmetric on undirected graphs, and satisfies the
// triangle inequality through any intermediate node.
func TestDistanceMetricProperties(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%10) + 3
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 0.25, rng)
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		w := NodeID(rng.Intn(n))
		duv := g.Distance(u, v)
		if g.Distance(v, u) != duv {
			return false
		}
		return duv <= g.Distance(u, w)+g.Distance(w, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
