package graph

// Unreachable is the distance reported for nodes with no path to the source.
const Unreachable = -1

// BFSDistances returns d_r(src, v) for every node v: the minimum number of
// edges on a path from src to v, or Unreachable if no path exists.
func (g *Graph) BFSDistances(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || int(src) >= g.n {
		return dist
	}
	dist[src] = 0
	idx := g.index()
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range idx.nbrs[idx.off[u]:idx.off[u+1]] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the length of a shortest path between u and v,
// or Unreachable if none exists.
func (g *Graph) Distance(u, v NodeID) int {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return Unreachable
	}
	return g.BFSDistances(u)[v]
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFSDistances(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum distance from v to any node, or
// Unreachable if some node cannot be reached from v.
func (g *Graph) Eccentricity(v NodeID) int {
	dist := g.BFSDistances(v)
	ecc := 0
	for _, d := range dist {
		if d == Unreachable {
			return Unreachable
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the static diameter of the graph: the maximum pairwise
// distance, or Unreachable if the graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		ecc := g.Eccentricity(NodeID(v))
		if ecc == Unreachable {
			return Unreachable
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DistancePartition groups nodes by their distance from src.
// The result maps distance d to the ascending list of nodes at distance d.
// Unreachable nodes are grouped under the key Unreachable.
//
// This is the paper's partition {V_0, V_1, ..., V_h} of a PD_h graph.
func (g *Graph) DistancePartition(src NodeID) map[int][]NodeID {
	dist := g.BFSDistances(src)
	part := make(map[int][]NodeID)
	for v, d := range dist {
		part[d] = append(part[d], NodeID(v))
	}
	return part
}

// CountPaths returns |P(r)_{u,v}|-style information restricted to shortest
// paths: the number of distinct shortest paths between u and v. It is used
// by tests that exercise the "multiple dynamic paths" ambiguity the paper's
// introduction describes. Returns 0 if v is unreachable from u.
func (g *Graph) CountPaths(u, v NodeID) int {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return 0
	}
	dist := g.BFSDistances(u)
	if dist[v] == Unreachable {
		return 0
	}
	count := make([]int, g.n)
	count[u] = 1
	// Process nodes in order of increasing distance.
	order := make([]NodeID, 0, g.n)
	for w := 0; w < g.n; w++ {
		if dist[w] != Unreachable {
			order = append(order, NodeID(w))
		}
	}
	// Simple counting sort by distance.
	byDist := make([][]NodeID, g.n+1)
	for _, w := range order {
		byDist[dist[w]] = append(byDist[dist[w]], w)
	}
	for d := 1; d <= g.n; d++ {
		for _, w := range byDist[d] {
			for p := range g.adj[w] {
				if dist[p] == d-1 {
					count[w] += count[p]
				}
			}
		}
	}
	return count[v]
}
