package runtime

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/obs"
)

// quietProc exercises send, canonical delivery, and receive without
// retaining anything, so the engine's own allocations dominate.
type quietProc struct{ seen bool }

func (p *quietProc) Send(int) Message {
	if p.seen {
		return 1
	}
	return 0
}

func (p *quietProc) Receive(_ int, msgs []Message) {
	for _, m := range msgs {
		if m == 1 {
			p.seen = true
		}
	}
}

func quietCanon(m Message) string {
	if m == 1 {
		return "1"
	}
	return "0"
}

// TestRoundLoopStepAllocCeiling locks the steady-state allocation budget of
// one sequential round (send, inbox assembly into engine-owned scratch,
// receive). The per-step cost is isolated by differencing a short and a
// long run, which cancels the per-run setup (procs, config, scratch).
func TestRoundLoopStepAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	const n, shortR, longR = 16, 4, 24
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	net := dynet.NewStatic(g)
	run := func(rounds int) {
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &quietProc{seen: i == 0}
		}
		cfg := &Config{Net: net, Procs: procs, MaxRounds: rounds, Canon: quietCanon}
		if _, err := RunSequential(cfg); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(20, func() { run(shortR) })
	long := testing.AllocsPerRun(20, func() { run(longR) })
	perStep := (long - short) / float64(longR-shortR)
	// With the reused round scratch a steady-state step allocates nothing;
	// the ceiling of 2 leaves room for incidental growth of the scratch
	// slices while still catching any reintroduced per-round allocation
	// (the pre-scratch engine allocated hundreds per step).
	if perStep > 2 {
		t.Fatalf("sequential round step allocates %.2f/step, want <= 2", perStep)
	}
}
