package runtime

import (
	"context"
	"time"

	"anondyn/internal/graph"
)

// RunSequential executes the configured computation in a single goroutine,
// processing nodes in ascending order within each phase. It returns the
// number of completed rounds. The run ends when Stop returns true or
// MaxRounds rounds have completed, whichever is first.
//
// RunSequential and RunConcurrent implement the same semantics; the
// sequential engine is the reference implementation and is fully
// deterministic. RunSequential is RunSequentialCtx over
// context.Background().
func RunSequential(cfg *Config) (int, error) {
	return RunSequentialCtx(context.Background(), cfg)
}

// RunSequentialCtx is RunSequential under a context. The context is checked
// at the top of every round and between the send and receive phases; once
// it is done, the run stops with the completed-round count and an error
// wrapping ctx.Err(). If Config.RoundDeadline is positive, a round whose
// wall-clock time exceeds it aborts the run with a *RoundDeadlineError. A
// panicking process aborts the run with a *ProcessPanicError instead of
// propagating the panic.
func RunSequentialCtx(ctx context.Context, cfg *Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	m := cfg.metrics()
	n := cfg.Net.N()
	outbox := make([]Message, n)
	sc := newAssembler(cfg, n)
	for r := 0; r < cfg.MaxRounds; r++ {
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			return r, canceled(r, err)
		}
		obsStart := m.roundNS.Start()
		var roundStart time.Time
		if cfg.RoundDeadline > 0 {
			roundStart = time.Now()
		}
		var g *graph.Graph
		if cfg.Adaptive == nil {
			var err error
			if g, err = cfg.topology(r, nil); err != nil {
				return r, err
			}
			// Degree oracle (Discussion model): degree known before Send.
			for v := 0; v < n; v++ {
				if da, ok := cfg.Procs[v].(DegreeAware); ok {
					deg := g.Degree(graph.NodeID(v))
					if err := guardSetDegree(da, v, r, deg); err != nil {
						m.panics.Inc()
						return r, err
					}
				}
			}
		}
		// Send phase.
		for v := 0; v < n; v++ {
			if err := guardSend(cfg.Procs[v], v, r, outbox); err != nil {
				m.panics.Inc()
				return r, err
			}
		}
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			return r, canceled(r, err)
		}
		if cfg.Adaptive != nil {
			// The omniscient adversary fixes the topology knowing the
			// round's broadcasts.
			var err error
			if g, err = cfg.topology(r, outbox); err != nil {
				return r, err
			}
		}
		// Receive phase.
		inboxes := sc.assemble(g, outbox)
		if m.messages != nil {
			m.messages.Add(delivered(inboxes))
		}
		for v := 0; v < n; v++ {
			msgs := inboxes[v]
			if cfg.CopyInboxes {
				// Caller-owned delivery: the process may retain this slice.
				msgs = append([]Message(nil), msgs...)
			}
			if err := guardReceive(cfg.Procs[v], v, r, msgs); err != nil {
				m.panics.Inc()
				return r, err
			}
		}
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			return r, canceled(r, err)
		}
		if cfg.RoundDeadline > 0 && time.Since(roundStart) > cfg.RoundDeadline {
			m.deadlines.Inc()
			return r, &RoundDeadlineError{Round: r, Limit: cfg.RoundDeadline}
		}
		m.rounds.Inc()
		m.roundNS.Stop(obsStart)
		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if cfg.Stop != nil && cfg.Stop(r) {
			return r + 1, nil
		}
	}
	return cfg.MaxRounds, nil
}

// RunUntilOutput runs the computation with the given engine until the
// process at node `leader` reports a terminal output via the Outputter
// interface, or maxRounds elapse. It returns the output value and the number
// of rounds used. If the leader never terminates, ok is false. Pass an
// engine produced by SequentialEngine or ConcurrentEngine to run under a
// context.
func RunUntilOutput(cfg *Config, leader int, run Engine) (value, rounds int, ok bool, err error) {
	if leader < 0 || leader >= len(cfg.Procs) {
		return 0, 0, false, errIndex(leader, len(cfg.Procs))
	}
	out, isOut := cfg.Procs[leader].(Outputter)
	if !isOut {
		return 0, 0, false, errNotOutputter(leader)
	}
	inner := *cfg
	inner.Stop = func(r int) bool {
		if cfg.Stop != nil && cfg.Stop(r) {
			return true
		}
		_, done := out.Output()
		return done
	}
	rounds, err = run(&inner)
	if err != nil {
		return 0, rounds, false, err
	}
	value, ok = out.Output()
	return value, rounds, ok, nil
}
