package runtime

import "anondyn/internal/graph"

// RunSequential executes the configured computation in a single goroutine,
// processing nodes in ascending order within each phase. It returns the
// number of completed rounds. The run ends when Stop returns true or
// MaxRounds rounds have completed, whichever is first.
//
// RunSequential and RunConcurrent implement the same semantics; the
// sequential engine is the reference implementation and is fully
// deterministic.
func RunSequential(cfg *Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	n := cfg.Net.N()
	outbox := make([]Message, n)
	for r := 0; r < cfg.MaxRounds; r++ {
		var g *graph.Graph
		if cfg.Adaptive == nil {
			var err error
			if g, err = cfg.topology(r, nil); err != nil {
				return r, err
			}
			// Degree oracle (Discussion model): degree known before Send.
			for v := 0; v < n; v++ {
				if da, ok := cfg.Procs[v].(DegreeAware); ok {
					da.SetDegree(r, g.Degree(graph.NodeID(v)))
				}
			}
		}
		// Send phase.
		for v := 0; v < n; v++ {
			outbox[v] = cfg.Procs[v].Send(r)
		}
		if cfg.Adaptive != nil {
			// The omniscient adversary fixes the topology knowing the
			// round's broadcasts.
			var err error
			if g, err = cfg.topology(r, outbox); err != nil {
				return r, err
			}
		}
		// Receive phase.
		inboxes := assembleInboxes(cfg, g, outbox)
		for v := 0; v < n; v++ {
			cfg.Procs[v].Receive(r, inboxes[v])
		}
		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if cfg.Stop != nil && cfg.Stop(r) {
			return r + 1, nil
		}
	}
	return cfg.MaxRounds, nil
}

// RunUntilOutput runs the computation with the given engine until the
// process at node `leader` reports a terminal output via the Outputter
// interface, or maxRounds elapse. It returns the output value and the number
// of rounds used. If the leader never terminates, ok is false.
func RunUntilOutput(cfg *Config, leader int, run func(*Config) (int, error)) (value, rounds int, ok bool, err error) {
	if leader < 0 || leader >= len(cfg.Procs) {
		return 0, 0, false, errIndex(leader, len(cfg.Procs))
	}
	out, isOut := cfg.Procs[leader].(Outputter)
	if !isOut {
		return 0, 0, false, errNotOutputter(leader)
	}
	inner := *cfg
	inner.Stop = func(r int) bool {
		if cfg.Stop != nil && cfg.Stop(r) {
			return true
		}
		_, done := out.Output()
		return done
	}
	rounds, err = run(&inner)
	if err != nil {
		return 0, rounds, false, err
	}
	value, ok = out.Output()
	return value, rounds, ok, nil
}
