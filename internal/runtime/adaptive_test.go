package runtime

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// adaptiveDelayer is the state-aware version of the flood-delaying
// adversary: it inspects the round's broadcasts to find the informed set
// and admits exactly one new node per round. Unlike the precommitted
// dynet.FloodDelaying, it needs no knowledge of the protocol's schedule —
// only of the states, which is exactly the paper's omniscient adversary.
func adaptiveDelayer(n int) func(r int, outbox []Message) *graph.Graph {
	return func(r int, outbox []Message) *graph.Graph {
		informed := make([]graph.NodeID, 0, n)
		uninformed := make([]graph.NodeID, 0, n)
		for v := 0; v < n; v++ {
			if b, ok := outbox[v].(bool); ok && b {
				informed = append(informed, graph.NodeID(v))
			} else {
				uninformed = append(uninformed, graph.NodeID(v))
			}
		}
		g := graph.New(n)
		clique := func(nodes []graph.NodeID) {
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					_ = g.AddEdge(nodes[i], nodes[j])
				}
			}
		}
		clique(informed)
		clique(uninformed)
		if len(informed) > 0 && len(uninformed) > 0 {
			_ = g.AddEdge(informed[0], uninformed[0])
		}
		return g
	}
}

func TestAdaptiveAdversaryDelaysFlood(t *testing.T) {
	for name, engine := range map[string]func(*Config) (int, error){
		"sequential": RunSequential,
		"concurrent": RunConcurrent,
	} {
		t.Run(name, func(t *testing.T) {
			const n = 10
			procs := newFloodProcs(n, 0)
			all := func(int) bool {
				for _, p := range procs {
					if !p.(*floodProc).has {
						return false
					}
				}
				return true
			}
			cfg := &Config{
				Net:       dynet.NewStatic(graph.Complete(n)), // ignored topology, supplies N
				Adaptive:  adaptiveDelayer(n),
				Procs:     procs,
				MaxRounds: 5 * n,
				Stop:      all,
			}
			rounds, err := engine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// One new node per round: n-1 rounds, the maximum any
			// adversary can force with connected snapshots.
			if rounds != n-1 {
				t.Fatalf("flood completed in %d rounds, want %d", rounds, n-1)
			}
		})
	}
}

func TestAdaptiveNilGraphErrors(t *testing.T) {
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Adaptive:  func(int, []Message) *graph.Graph { return nil },
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 3,
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("nil adaptive graph should error")
	}
	if _, err := RunConcurrent(cfg); err == nil {
		t.Fatal("nil adaptive graph should error (concurrent)")
	}
}

func TestAdaptiveWrongSizeErrors(t *testing.T) {
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Adaptive:  func(int, []Message) *graph.Graph { return graph.Path(3) },
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 3,
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("wrong-size adaptive graph should error")
	}
}

func TestAdaptiveSeesCurrentBroadcasts(t *testing.T) {
	// The adversary must receive the outbox of the round it is shaping.
	var seen [][]Message
	cfg := &Config{
		Net: dynet.NewStatic(graph.Path(2)),
		Adaptive: func(r int, outbox []Message) *graph.Graph {
			cp := append([]Message(nil), outbox...)
			seen = append(seen, cp)
			return graph.Path(2)
		},
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 3,
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("adversary consulted %d times", len(seen))
	}
	// Round 0 already shows the flood source broadcasting true.
	if len(seen[0]) != 2 || seen[0][0] != true || seen[0][1] != false {
		t.Fatalf("round 0 outbox = %v", seen[0])
	}
	// By round 1 both nodes broadcast true.
	if seen[1][1] != true {
		t.Fatalf("round 1 outbox = %v", seen[1])
	}
}

func TestAdaptiveRejectsDegreeOracle(t *testing.T) {
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Adaptive:  func(int, []Message) *graph.Graph { return graph.Path(2) },
		Procs:     []Process{&degreeProc{}, &degreeProc{}},
		MaxRounds: 2,
	}
	if _, err := RunSequential(cfg); err == nil {
		t.Fatal("DegreeAware + Adaptive should be rejected")
	}
	if _, err := RunConcurrent(cfg); err == nil {
		t.Fatal("DegreeAware + Adaptive should be rejected (concurrent)")
	}
}
