package runtime

import (
	"cmp"
	"context"
	"fmt"
	"math"
	goruntime "runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// RunSharded executes the configured computation on a fixed pool of
// Config.Shards worker goroutines (GOMAXPROCS when zero), each iterating a
// contiguous partition of the node range. It implements the same semantics
// as RunSequential — same round counts, same delivery order, same errors —
// but with per-node state in flat struct-of-arrays buffers and message
// delivery assembled by index ranges into one engine-owned arena instead of
// per-node slices, which is what keeps a 10⁶-node round loop allocation-free
// in steady state.
//
// Delivery order is the sequential engine's exactly: each inbox lists
// senders sorted by (canonical key, node id). The engine computes one global
// canonical order of the round's senders and has each shard replay it
// against its own receivers, so no per-inbox sort — and no string
// comparison beyond the per-round distinct-key sort — happens at all.
//
// Topology is consumed in CSR form. Networks implementing dynet.CSRDynamic
// are queried natively (no map-based graphs are ever materialized — the
// million-node path); any other Dynamic or an adaptive adversary is
// converted per snapshot with graph.(*Graph).CSR, cached while the snapshot
// pointer is unchanged. RunSharded is RunShardedCtx over
// context.Background().
func RunSharded(cfg *Config) (int, error) {
	return RunShardedCtx(context.Background(), cfg)
}

// ShardedEngine binds ctx to the sharded worker-pool engine.
func ShardedEngine(ctx context.Context) Engine {
	return func(cfg *Config) (int, error) { return RunShardedCtx(ctx, cfg) }
}

// shardedMaxNodes bounds the node count of the sharded engine: node indices
// are packed into int32 arrays (order, per-shard key indices), which halves
// the struct-of-arrays footprint at the scales the engine exists for.
const shardedMaxNodes = math.MaxInt32

// shardBounds returns the node range [lo, hi) owned by shard s of nw over n
// nodes: sizes differ by at most one, earlier shards take the remainder.
// The usual s*n/nw formula overflows int when n approaches MaxInt; this
// form multiplies s (≤ nw) by base (≤ n/nw), which cannot overflow.
func shardBounds(n, nw, s int) (lo, hi int) {
	base, rem := n/nw, n%nw
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// shardState is one worker's partition plus its send-phase key census: the
// distinct canonical keys seen among its own senders, in first-seen order
// (deterministic: nodes are iterated ascending), with per-key counts. The
// coordinator merges the censuses into the global canonical ranking and
// hands back, per local key, the placement cursor into the global order
// array. It is generic over the canonical key type — string for
// Config.Canon, uint64 for the Config.CanonKey fast path — so the uint64
// path never materializes a key string anywhere in the round.
type shardState[K cmp.Ordered] struct {
	lo, hi int
	node   int // node currently executing protocol code, for panic attribution

	localMap  map[K]int32 // canonical key -> local census index
	localKeys []K         // census index -> key, first-seen order
	localCnt  []int32     // census index -> own senders with that key
	toGlobal  []int32     // census index -> coordinator's distinct-key index
	placePos  []int32     // census index -> next free slot in the order array
}

// keyRankSorter sorts the distinct-key permutation by key. It is a stored
// sort.Interface so the per-round sort allocates nothing.
type keyRankSorter[K cmp.Ordered] struct {
	keys []K
	perm []int32
}

func (s *keyRankSorter[K]) Len() int           { return len(s.perm) }
func (s *keyRankSorter[K]) Less(i, j int) bool { return s.keys[s.perm[i]] < s.keys[s.perm[j]] }
func (s *keyRankSorter[K]) Swap(i, j int)      { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }

// phase identifiers sent over the start channels.
const (
	phaseSend    = 1 // degree oracle, Send, canonical keys, key census
	phasePlace   = 2 // scatter own senders into the global canonical order
	phaseDeliver = 3 // fill own receivers' arena ranges, run Receive
)

// RunShardedCtx validates the configuration and dispatches to the key-typed
// engine body: the uint64 census path when Config.CanonKey is set, the
// string path otherwise. Both instantiations execute identical semantics.
func RunShardedCtx(ctx context.Context, cfg *Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.CanonKey != nil {
		return runShardedCtx(ctx, cfg, cfg.CanonKey)
	}
	return runShardedCtx(ctx, cfg, cfg.canon())
}

func runShardedCtx[K cmp.Ordered](ctx context.Context, cfg *Config, canon func(Message) K) (int, error) {
	m := cfg.metrics()
	n := cfg.Net.N()
	if n == 0 || cfg.MaxRounds == 0 {
		return 0, nil
	}
	if n > shardedMaxNodes {
		return 0, fmt.Errorf("runtime: sharded engine supports at most %d nodes, got %d", shardedMaxNodes, n)
	}
	nw := cfg.Shards
	if nw == 0 {
		nw = goruntime.GOMAXPROCS(0)
	}
	if nw > n {
		nw = n
	}
	m.shards.Set(int64(nw))

	var (
		// Struct-of-arrays node state, reused every round.
		outbox = make([]Message, n)
		keys   = make([]K, n)
		kidx   = make([]int32, n) // per node: census index within its shard
		order  = make([]int32, n) // senders in canonical (key, id) order
		cur    = make([]int, n)   // per node: next write offset into flat
		flat   []Message          // delivery arena, one range per receiver

		da    = make([]DegreeAware, n)
		anyDA bool

		shards = make([]shardState[K], nw)

		// Coordinator distinct-key scratch, reused every round.
		gIdx   = make(map[K]int32)
		dKeys  []K
		dTotal []int32
		acc    []int32
		sorter keyRankSorter[K]

		// Topology state. csr is the round's snapshot; the conversion
		// cache holds while the map-graph pointer is unchanged.
		csr    *graph.CSR
		csrBuf *graph.CSR
		lastG  *graph.Graph
		round  int
	)
	for v := 0; v < n; v++ {
		if d, ok := cfg.Procs[v].(DegreeAware); ok {
			da[v] = d
			anyDA = true
		}
	}
	for s := range shards {
		lo, hi := shardBounds(n, nw, s)
		shards[s] = shardState[K]{lo: lo, hi: hi, localMap: make(map[K]int32)}
	}
	csrDyn, _ := cfg.Net.(dynet.CSRDynamic)
	if cfg.Adaptive != nil {
		csrDyn = nil // adaptive snapshots arrive as map graphs
	}

	// snapshotCSR resolves round r's topology in CSR form. g is the
	// adaptive adversary's graph (nil otherwise).
	snapshotCSR := func(r int, g *graph.Graph) error {
		if csrDyn != nil {
			c := csrDyn.SnapshotCSR(r)
			if c == nil {
				return fmt.Errorf("runtime: nil CSR snapshot at round %d", r)
			}
			if err := c.Validate(); err != nil {
				return fmt.Errorf("runtime: invalid CSR snapshot at round %d: %w", r, err)
			}
			if c.N() != n {
				return fmt.Errorf("runtime: CSR snapshot at round %d has %d nodes, want %d", r, c.N(), n)
			}
			csr = c
			return nil
		}
		if g == nil {
			var err error
			if g, err = cfg.topology(r, nil); err != nil {
				return err
			}
		}
		if g == lastG && csr != nil {
			return nil
		}
		c, err := g.CSR(csrBuf)
		if err != nil {
			return fmt.Errorf("runtime: snapshot at round %d: %w", r, err)
		}
		csr, csrBuf, lastG = c, c, g
		return nil
	}

	var (
		start     = make([]chan int, nw)
		phaseDone = make(chan struct{}, nw)
		panics    = make(chan *ProcessPanicError, nw)
		workerWG  sync.WaitGroup
	)
	for s := range start {
		start[s] = make(chan int, 1)
	}

	runPhase := func(sh *shardState[K], ph int) {
		r := round
		switch ph {
		case phaseSend:
			if anyDA && cfg.Adaptive == nil {
				// Degree oracle (Discussion model), a separate pass before
				// any Send, as in the sequential engine.
				for v := sh.lo; v < sh.hi; v++ {
					if d := da[v]; d != nil {
						sh.node = v
						d.SetDegree(r, csr.Degree(graph.NodeID(v)))
					}
				}
			}
			clear(sh.localMap)
			sh.localKeys = sh.localKeys[:0]
			sh.localCnt = sh.localCnt[:0]
			for v := sh.lo; v < sh.hi; v++ {
				sh.node = v
				outbox[v] = cfg.Procs[v].Send(r)
				k := canon(outbox[v])
				keys[v] = k
				li, ok := sh.localMap[k]
				if !ok {
					li = int32(len(sh.localKeys))
					sh.localMap[k] = li
					sh.localKeys = append(sh.localKeys, k)
					sh.localCnt = append(sh.localCnt, 0)
				}
				sh.localCnt[li]++
				kidx[v] = li
			}
		case phasePlace:
			for v := sh.lo; v < sh.hi; v++ {
				li := kidx[v]
				order[sh.placePos[li]] = int32(v)
				sh.placePos[li]++
			}
		case phaseDeliver:
			off := csr.Offsets
			for v := sh.lo; v < sh.hi; v++ {
				cur[v] = off[v]
			}
			// Replay the global canonical sender order against this
			// shard's receivers: each owned inbox range fills in exactly
			// the (key, id)-sorted order, with no per-inbox sort.
			for _, u := range order {
				row := csr.Nbrs[off[u]:off[u+1]]
				a := lowerBound(row, sh.lo)
				b := lowerBound(row, sh.hi)
				if a == b {
					continue
				}
				msg := outbox[u]
				for _, w := range row[a:b] {
					flat[cur[w]] = msg
					cur[w]++
				}
			}
			for v := sh.lo; v < sh.hi; v++ {
				msgs := flat[off[v]:off[v+1]:off[v+1]]
				if cfg.CopyInboxes {
					msgs = append([]Message(nil), msgs...)
				}
				sh.node = v
				cfg.Procs[v].Receive(r, msgs)
			}
		}
	}

	worker := func(s int) {
		defer workerWG.Done()
		sh := &shards[s]
		defer func() {
			if rec := recover(); rec != nil {
				// A panicking worker reports instead of its phase token; the
				// coordinator's barrier collects one signal per worker and
				// aborts the round.
				panics <- &ProcessPanicError{Node: sh.node, Round: round, Value: rec, Stack: debug.Stack()}
			}
		}()
		for ph := range start[s] {
			runPhase(sh, ph)
			phaseDone <- struct{}{}
		}
	}
	workerWG.Add(nw)
	for s := 0; s < nw; s++ {
		go worker(s)
	}
	stopWorkers := func() {
		for s := range start {
			close(start[s])
		}
		workerWG.Wait()
	}

	for r := 0; r < cfg.MaxRounds; r++ {
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			stopWorkers()
			return r, canceled(r, err)
		}
		obsStart := m.roundNS.Start()
		var (
			roundTimer *time.Timer
			deadlineC  <-chan time.Time
		)
		if cfg.RoundDeadline > 0 {
			roundTimer = time.NewTimer(cfg.RoundDeadline)
			deadlineC = roundTimer.C
		}
		// barrier collects exactly one signal — a phase token or a panic
		// report — per worker, so phases never bleed into each other. A
		// panicking worker is dead, so after any panic the run must abort;
		// waiting for all signals first makes the choice deterministic: the
		// lowest panicking node wins, as in the sequential engine. Context
		// and deadline aborts stop waiting early; the in-flight workers
		// park on the buffered token channel and are joined by fail.
		barrier := func() error {
			var first *ProcessPanicError
			for i := 0; i < nw; i++ {
				select {
				case <-phaseDone:
				case p := <-panics:
					if first == nil || p.Node < first.Node {
						first = p
					}
				case <-ctx.Done():
					return canceled(r, ctx.Err())
				case <-deadlineC:
					return &RoundDeadlineError{Round: r, Limit: cfg.RoundDeadline}
				}
			}
			if first != nil {
				return first
			}
			return nil
		}
		fail := func(err error) (int, error) {
			if roundTimer != nil {
				roundTimer.Stop()
			}
			m.recordFailure(err)
			stopWorkers()
			return r, err
		}
		release := func(ph int) {
			for s := range start {
				start[s] <- ph
			}
		}

		round = r
		if cfg.Adaptive == nil {
			if err := snapshotCSR(r, nil); err != nil {
				if roundTimer != nil {
					roundTimer.Stop()
				}
				stopWorkers()
				return r, err
			}
		}
		release(phaseSend)
		if err := barrier(); err != nil {
			return fail(err)
		}
		if err := ctx.Err(); err != nil {
			return fail(canceled(r, err))
		}
		if cfg.Adaptive != nil {
			// The omniscient adversary fixes the topology knowing the
			// round's broadcasts.
			g, err := cfg.topology(r, outbox)
			if err != nil {
				return fail(err)
			}
			if err := snapshotCSR(r, g); err != nil {
				return fail(err)
			}
		}

		// Merge the shard key censuses into the global canonical ranking
		// and reserve, for every (distinct key, shard) pair, its slot range
		// in the order array. All cross-shard coordination happens here, on
		// integer indices; the only string comparisons are the distinct-key
		// sort.
		clear(gIdx)
		dKeys = dKeys[:0]
		dTotal = dTotal[:0]
		for s := range shards {
			sh := &shards[s]
			sh.toGlobal = sh.toGlobal[:0]
			for li, k := range sh.localKeys {
				gi, ok := gIdx[k]
				if !ok {
					gi = int32(len(dKeys))
					gIdx[k] = gi
					dKeys = append(dKeys, k)
					dTotal = append(dTotal, 0)
				}
				dTotal[gi] += sh.localCnt[li]
				sh.toGlobal = append(sh.toGlobal, gi)
			}
		}
		sorter.keys = dKeys
		sorter.perm = sorter.perm[:0]
		for gi := range dKeys {
			sorter.perm = append(sorter.perm, int32(gi))
		}
		sort.Stable(&sorter)
		if cap(acc) < len(dKeys) {
			acc = make([]int32, len(dKeys))
		} else {
			acc = acc[:len(dKeys)]
		}
		// No zeroing: every distinct key appears in perm, so every entry
		// is assigned below before it is read.
		running := int32(0)
		for _, gi := range sorter.perm {
			acc[gi] = running
			running += dTotal[gi]
		}
		for s := range shards {
			sh := &shards[s]
			sh.placePos = sh.placePos[:0]
			for li, gi := range sh.toGlobal {
				sh.placePos = append(sh.placePos, acc[gi])
				acc[gi] += sh.localCnt[li]
			}
		}
		release(phasePlace)
		if err := barrier(); err != nil {
			return fail(err)
		}

		total := csr.Total()
		if cap(flat) < total {
			flat = make([]Message, total)
		} else {
			flat = flat[:total]
		}
		if m.messages != nil {
			m.messages.Add(int64(total))
		}
		release(phaseDeliver)
		if err := barrier(); err != nil {
			return fail(err)
		}
		if err := ctx.Err(); err != nil {
			return fail(canceled(r, err))
		}
		if roundTimer != nil {
			if !roundTimer.Stop() {
				// The deadline elapsed while the barriers were already
				// satisfied: the round still overran its budget.
				return fail(&RoundDeadlineError{Round: r, Limit: cfg.RoundDeadline})
			}
		}
		m.rounds.Inc()
		m.roundNS.Stop(obsStart)
		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if cfg.Stop != nil && cfg.Stop(r) {
			stopWorkers()
			return r + 1, nil
		}
	}
	stopWorkers()
	return cfg.MaxRounds, nil
}

// lowerBound returns the first index in the ascending row whose node id is
// >= x. Hand-rolled instead of sort.Search so the delivery loop stays free
// of closure allocations.
func lowerBound(row []graph.NodeID, x int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(row[mid]) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
