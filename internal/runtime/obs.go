package runtime

import (
	"context"
	"errors"

	"anondyn/internal/obs"
)

// engineMetrics bundles the handles the round loop touches. With
// observability disabled every field is nil and every operation is a
// single predictable branch — no allocation, no clock reads (the
// "disabled = nil collector" contract, locked by
// TestDisabledObsAddsNoAllocations).
type engineMetrics struct {
	rounds    *obs.Counter   // completed rounds
	messages  *obs.Counter   // inbox messages delivered
	roundNS   *obs.Histogram // per-round wall time
	panics    *obs.Counter   // runs aborted by a process panic
	cancels   *obs.Counter   // runs stopped by context cancellation
	deadlines *obs.Counter   // runs aborted by Config.RoundDeadline
	shards    *obs.Gauge     // worker count of the last sharded run
}

// metrics resolves the run's collector: Config.Obs when set, else the
// process-wide collector (nil when the process runs unobserved). Handle
// lookup happens once per run, never per round.
func (c *Config) metrics() engineMetrics {
	col := c.Obs
	if col == nil {
		col = obs.Global()
	}
	if col == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		rounds:    col.Counter(obs.RuntimeRounds),
		messages:  col.Counter(obs.RuntimeMessages),
		roundNS:   col.Histogram(obs.RuntimeRoundNS),
		panics:    col.Counter(obs.RuntimePanics),
		cancels:   col.Counter(obs.RuntimeCancels),
		deadlines: col.Counter(obs.RuntimeDeadlines),
		shards:    col.Gauge(obs.RuntimeShards),
	}
}

// recordFailure classifies a run-aborting error into the panic, deadline,
// or cancel counter. The concurrent engine funnels every abort path
// through it; the sequential engine increments at each site directly.
func (m engineMetrics) recordFailure(err error) {
	if err == nil {
		// Return before the errors.As targets are declared: their address
		// is taken below, so they are heap-allocated, and the nil path
		// must stay allocation-free.
		return
	}
	var pe *ProcessPanicError
	if errors.As(err, &pe) {
		m.panics.Inc()
		return
	}
	var de *RoundDeadlineError
	if errors.As(err, &de) {
		m.deadlines.Inc()
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		m.cancels.Inc()
	}
}

// delivered counts the messages in a round's inboxes. Only called when the
// messages counter is live.
func delivered(inboxes [][]Message) int64 {
	total := int64(0)
	for _, in := range inboxes {
		total += int64(len(in))
	}
	return total
}
