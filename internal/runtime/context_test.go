package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// hookProc wraps a flooding process with per-call hooks, used to trigger
// cancellations, sleeps, and panics from inside protocol code.
type hookProc struct {
	inner     Process
	onSend    func(r int)
	onReceive func(r int)
}

func (h *hookProc) Send(r int) Message {
	if h.onSend != nil {
		h.onSend(r)
	}
	return h.inner.Send(r)
}

func (h *hookProc) Receive(r int, msgs []Message) {
	if h.onReceive != nil {
		h.onReceive(r)
	}
	h.inner.Receive(r, msgs)
}

// engines lists both context-aware engines; every scenario below must
// behave identically under each.
var engines = []struct {
	name string
	run  func(context.Context, *Config) (int, error)
}{
	{"sequential", RunSequentialCtx},
	{"concurrent", RunConcurrentCtx},
}

// TestContextPathsEnginesAgree drives the cancellation, deadline, and panic
// exit paths through both engines and asserts they return the same round
// count and the same error for the same schedule.
func TestContextPathsEnginesAgree(t *testing.T) {
	const n = 6
	cases := []struct {
		name string
		// setup builds a fresh config and the context for one run.
		setup func() (context.Context, *Config)
		// wantRounds is the expected completed-round count.
		wantRounds int
		// check validates the returned error.
		check func(t *testing.T, err error)
	}{
		{
			name: "pre-canceled context",
			setup: func() (context.Context, *Config) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx, &Config{
					Net:       dynet.NewStatic(graph.Complete(n)),
					Procs:     newFloodProcs(n, 0),
					MaxRounds: 5,
				}
			},
			wantRounds: 0,
			check: func(t *testing.T, err error) {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			},
		},
		{
			name: "canceled from inside Send of round 2",
			setup: func() (context.Context, *Config) {
				ctx, cancel := context.WithCancel(context.Background())
				procs := newFloodProcs(n, 0)
				procs[3] = &hookProc{inner: procs[3], onSend: func(r int) {
					if r == 2 {
						cancel()
					}
				}}
				return ctx, &Config{
					Net:       dynet.NewStatic(graph.Complete(n)),
					Procs:     procs,
					MaxRounds: 5,
				}
			},
			wantRounds: 2,
			check: func(t *testing.T, err error) {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			},
		},
		{
			name: "canceled from inside Receive of round 1",
			setup: func() (context.Context, *Config) {
				ctx, cancel := context.WithCancel(context.Background())
				procs := newFloodProcs(n, 0)
				procs[0] = &hookProc{inner: procs[0], onReceive: func(r int) {
					if r == 1 {
						cancel()
					}
				}}
				return ctx, &Config{
					Net:       dynet.NewStatic(graph.Complete(n)),
					Procs:     procs,
					MaxRounds: 5,
				}
			},
			wantRounds: 1,
			check: func(t *testing.T, err error) {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			},
		},
		{
			name: "round deadline expiry in round 1",
			setup: func() (context.Context, *Config) {
				procs := newFloodProcs(n, 0)
				procs[2] = &hookProc{inner: procs[2], onSend: func(r int) {
					if r == 1 {
						time.Sleep(150 * time.Millisecond)
					}
				}}
				return context.Background(), &Config{
					Net:           dynet.NewStatic(graph.Complete(n)),
					Procs:         procs,
					MaxRounds:     5,
					RoundDeadline: 25 * time.Millisecond,
				}
			},
			wantRounds: 1,
			check: func(t *testing.T, err error) {
				var de *RoundDeadlineError
				if !errors.As(err, &de) {
					t.Fatalf("want *RoundDeadlineError, got %v", err)
				}
				if de.Round != 1 || de.Limit != 25*time.Millisecond {
					t.Fatalf("deadline error = %+v, want round 1 limit 25ms", de)
				}
			},
		},
		{
			name: "process panic in Send of round 2",
			setup: func() (context.Context, *Config) {
				procs := newFloodProcs(n, 0)
				procs[4] = &hookProc{inner: procs[4], onSend: func(r int) {
					if r == 2 {
						panic("protocol bug: bad state")
					}
				}}
				return context.Background(), &Config{
					Net:       dynet.NewStatic(graph.Complete(n)),
					Procs:     procs,
					MaxRounds: 5,
				}
			},
			wantRounds: 2,
			check: func(t *testing.T, err error) {
				var pe *ProcessPanicError
				if !errors.As(err, &pe) {
					t.Fatalf("want *ProcessPanicError, got %v", err)
				}
				if pe.Node != 4 || pe.Round != 2 || pe.Value != "protocol bug: bad state" {
					t.Fatalf("panic error = node %d round %d value %v", pe.Node, pe.Round, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Fatal("panic error carries no stack")
				}
			},
		},
		{
			name: "process panic in Receive of round 0",
			setup: func() (context.Context, *Config) {
				procs := newFloodProcs(n, 0)
				procs[1] = &hookProc{inner: procs[1], onReceive: func(r int) {
					if r == 0 {
						panic("receive exploded")
					}
				}}
				return context.Background(), &Config{
					Net:       dynet.NewStatic(graph.Complete(n)),
					Procs:     procs,
					MaxRounds: 5,
				}
			},
			wantRounds: 0,
			check: func(t *testing.T, err error) {
				var pe *ProcessPanicError
				if !errors.As(err, &pe) {
					t.Fatalf("want *ProcessPanicError, got %v", err)
				}
				if pe.Node != 1 || pe.Round != 0 || pe.Value != "receive exploded" {
					t.Fatalf("panic error = node %d round %d value %v", pe.Node, pe.Round, pe.Value)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				rounds int
				err    error
			}
			got := map[string]outcome{}
			for _, eng := range engines {
				ctx, cfg := tc.setup()
				rounds, err := eng.run(ctx, cfg)
				if rounds != tc.wantRounds {
					t.Errorf("%s: completed %d rounds, want %d (err %v)", eng.name, rounds, tc.wantRounds, err)
				}
				if err == nil {
					t.Fatalf("%s: expected an error", eng.name)
				}
				tc.check(t, err)
				got[eng.name] = outcome{rounds, err}
			}
			seq, con := got["sequential"], got["concurrent"]
			if seq.rounds != con.rounds {
				t.Errorf("engines disagree on rounds: sequential %d, concurrent %d", seq.rounds, con.rounds)
			}
			// Errors must agree in type and message (stacks excluded: a
			// ProcessPanicError formats without its stack).
			if seq.err.Error() != con.err.Error() {
				t.Errorf("engines disagree on error:\n  sequential: %v\n  concurrent: %v", seq.err, con.err)
			}
		})
	}
}

// TestContextCleanRunsUnaffected verifies the context plumbing is inert on
// runs that complete normally: both engines still agree with each other and
// with the wrapper entry points.
func TestContextCleanRunsUnaffected(t *testing.T) {
	build := func() *Config {
		return &Config{
			Net:       dynet.NewStatic(graph.Complete(8)),
			Procs:     newFloodProcs(8, 0),
			MaxRounds: 4,
		}
	}
	wantRounds := 4
	for _, eng := range engines {
		cfg := build()
		rounds, err := eng.run(context.Background(), cfg)
		if err != nil || rounds != wantRounds {
			t.Fatalf("%s: (%d, %v), want (%d, nil)", eng.name, rounds, err, wantRounds)
		}
	}
	for name, run := range map[string]Engine{"RunSequential": RunSequential, "RunConcurrent": RunConcurrent} {
		cfg := build()
		rounds, err := run(cfg)
		if err != nil || rounds != wantRounds {
			t.Fatalf("%s: (%d, %v), want (%d, nil)", name, rounds, err, wantRounds)
		}
	}
}

// TestRoundDeadlineAllowsFastRounds verifies a generous deadline does not
// interfere with a normal run.
func TestRoundDeadlineAllowsFastRounds(t *testing.T) {
	for _, eng := range engines {
		cfg := &Config{
			Net:           dynet.NewStatic(graph.Complete(5)),
			Procs:         newFloodProcs(5, 0),
			MaxRounds:     6,
			RoundDeadline: 5 * time.Second,
		}
		rounds, err := eng.run(context.Background(), cfg)
		if err != nil || rounds != 6 {
			t.Fatalf("%s: (%d, %v), want (6, nil)", eng.name, rounds, err)
		}
	}
}

// TestCanceledConcurrentReturnsWithinOneRound verifies the acceptance
// criterion directly: cancel mid-run and require RunConcurrentCtx to come
// back promptly with the round in progress aborted.
func TestCanceledConcurrentReturnsWithinOneRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 16
	procs := newFloodProcs(n, 0)
	cancelRound := 3
	procs[5] = &hookProc{inner: procs[5], onSend: func(r int) {
		if r == cancelRound {
			cancel()
		}
	}}
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Complete(n)),
		Procs:     procs,
		MaxRounds: 1 << 20, // would run ~forever without cancellation
	}
	done := make(chan struct{})
	var rounds int
	var err error
	go func() {
		rounds, err = RunConcurrentCtx(ctx, cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled run did not return")
	}
	if rounds != cancelRound {
		t.Fatalf("completed %d rounds, want %d", rounds, cancelRound)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEngineAdapters verifies SequentialEngine/ConcurrentEngine bind their
// context: a canceled context aborts runs made through the adapted engine.
func TestEngineAdapters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, mk := range map[string]func(context.Context) Engine{
		"SequentialEngine": SequentialEngine,
		"ConcurrentEngine": ConcurrentEngine,
	} {
		engine := mk(ctx)
		_, err := engine(&Config{
			Net:       dynet.NewStatic(graph.Complete(3)),
			Procs:     newFloodProcs(3, 0),
			MaxRounds: 3,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", name, err)
		}
	}
}
