package runtime

import (
	"context"
	"errors"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/obs"
)

// TestDisabledObsAddsNoAllocations locks the zero-cost contract at the
// instrumentation sites the round loop actually executes: with no
// collector installed, resolving handles and driving every per-round
// operation allocates nothing.
func TestDisabledObsAddsNoAllocations(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	cfg := &Config{}
	if allocs := testing.AllocsPerRun(100, func() {
		m := cfg.metrics()
		start := m.roundNS.Start()
		m.rounds.Inc()
		m.cancels.Inc()
		m.deadlines.Inc()
		m.roundNS.Stop(start)
		m.recordFailure(nil)
	}); allocs != 0 {
		t.Fatalf("disabled obs sites allocate %v allocs/op, want 0", allocs)
	}
	// The zero Time from a nil histogram's Start proves no clock was read.
	var h *obs.Histogram
	if !h.Start().IsZero() {
		t.Fatal("nil histogram Start read the clock")
	}
}

// A full run with obs disabled and the identical run with obs enabled must
// allocate the same: the instrumentation adds counters and clock reads,
// never allocations.
func TestObservedRunAddsNoAllocations(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	net := dynet.NewStatic(graph.Path(4))
	runOnce := func(col *obs.Collector) {
		cfg := &Config{Net: net, Procs: newFloodProcs(4, 0), MaxRounds: 5, Obs: col}
		if _, err := RunSequential(cfg); err != nil {
			t.Fatal(err)
		}
	}
	disabled := testing.AllocsPerRun(50, func() { runOnce(nil) })
	col := obs.New()
	// Warm the handle maps so steady-state is measured, not first-touch.
	runOnce(col)
	enabled := testing.AllocsPerRun(50, func() { runOnce(col) })
	if enabled > disabled {
		t.Fatalf("observed run allocates %v/op vs %v/op disabled; obs must add zero", enabled, disabled)
	}
}

func TestObsCountsSequentialRun(t *testing.T) {
	col := obs.New()
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(5)),
		Procs:     newFloodProcs(5, 0),
		MaxRounds: 10,
		Obs:       col,
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.RuntimeRounds]; got != 10 {
		t.Errorf("%s = %d, want 10", obs.RuntimeRounds, got)
	}
	// A static path of 5 nodes delivers 2*4 = 8 messages per round.
	if got := snap.Counters[obs.RuntimeMessages]; got != 80 {
		t.Errorf("%s = %d, want 80", obs.RuntimeMessages, got)
	}
	h := snap.Histograms[obs.RuntimeRoundNS]
	if h.Count != 10 || h.Sum <= 0 {
		t.Errorf("round histogram = %+v, want 10 timed rounds", h)
	}
	if got := snap.Counters[obs.RuntimePanics]; got != 0 {
		t.Errorf("%s = %d, want 0", obs.RuntimePanics, got)
	}
}

func TestObsCountsConcurrentRun(t *testing.T) {
	col := obs.New()
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(5)),
		Procs:     newFloodProcs(5, 0),
		MaxRounds: 10,
		Obs:       col,
	}
	if _, err := RunConcurrent(cfg); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Counters[obs.RuntimeRounds]; got != 10 {
		t.Errorf("%s = %d, want 10", obs.RuntimeRounds, got)
	}
	if got := snap.Counters[obs.RuntimeMessages]; got != 80 {
		t.Errorf("%s = %d, want 80", obs.RuntimeMessages, got)
	}
	if h := snap.Histograms[obs.RuntimeRoundNS]; h.Count != 10 {
		t.Errorf("round histogram count = %d, want 10", h.Count)
	}
}

func TestObsCountsPanicAndCancel(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine.name, func(t *testing.T) {
			col := obs.New()
			procs := newFloodProcs(3, 0)
			procs[0] = &hookProc{
				inner: procs[0],
				onSend: func(r int) {
					if r == 1 {
						panic("boom")
					}
				},
			}
			cfg := &Config{
				Net:       dynet.NewStatic(graph.Path(3)),
				Procs:     procs,
				MaxRounds: 5,
				Obs:       col,
			}
			var pe *ProcessPanicError
			if _, err := engine.run(context.Background(), cfg); !errors.As(err, &pe) {
				t.Fatalf("want ProcessPanicError, got %v", err)
			}
			if got := col.Snapshot().Counters[obs.RuntimePanics]; got != 1 {
				t.Errorf("%s = %d, want 1", obs.RuntimePanics, got)
			}

			col2 := obs.New()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			cfg2 := &Config{
				Net:       dynet.NewStatic(graph.Path(3)),
				Procs:     newFloodProcs(3, 0),
				MaxRounds: 5,
				Obs:       col2,
			}
			if _, err := engine.run(ctx, cfg2); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if got := col2.Snapshot().Counters[obs.RuntimeCancels]; got != 1 {
				t.Errorf("%s = %d, want 1", obs.RuntimeCancels, got)
			}
		})
	}
}

// The global collector is the fallback when Config.Obs is nil — the path
// the -metrics flag uses.
func TestObsGlobalFallback(t *testing.T) {
	prev := obs.Global()
	defer obs.Set(prev)
	col := obs.New()
	obs.Set(col)

	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(3)),
		Procs:     newFloodProcs(3, 0),
		MaxRounds: 4,
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if got := col.Snapshot().Counters[obs.RuntimeRounds]; got != 4 {
		t.Fatalf("global fallback recorded %d rounds, want 4", got)
	}
}

// BenchmarkRoundLoopObsDisabled is the committed evidence for the
// "disabled = nil collector = no overhead" contract on the full loop;
// cmd/perfbaseline snapshots it alongside the observed variant.
func BenchmarkRoundLoopObsDisabled(b *testing.B) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)
	net := dynet.NewStatic(graph.Path(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &Config{Net: net, Procs: newFloodProcs(8, 0), MaxRounds: 16}
		if _, err := RunSequential(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundLoopObsEnabled(b *testing.B) {
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)
	col := obs.New()
	net := dynet.NewStatic(graph.Path(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &Config{Net: net, Procs: newFloodProcs(8, 0), MaxRounds: 16, Obs: col}
		if _, err := RunSequential(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
