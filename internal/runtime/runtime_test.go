package runtime

import (
	"strconv"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// floodProc is a minimal flooding protocol: it broadcasts whether it holds
// the token and adopts the token upon hearing it.
type floodProc struct {
	has      bool
	heardAt  int
	received [][]Message
}

func (f *floodProc) Send(int) Message { return f.has }

func (f *floodProc) Receive(r int, msgs []Message) {
	// Per the Receive ownership rule, msgs is engine-owned and reused next
	// round; retaining it across rounds requires a copy.
	f.received = append(f.received, append([]Message(nil), msgs...))
	if f.has {
		return
	}
	for _, m := range msgs {
		if b, ok := m.(bool); ok && b {
			f.has = true
			f.heardAt = r
			return
		}
	}
}

func newFloodProcs(n, src int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		fp := &floodProc{heardAt: -1}
		if i == src {
			fp.has = true
			fp.heardAt = -2
		}
		procs[i] = fp
	}
	return procs
}

func TestRunSequentialFloodOnPath(t *testing.T) {
	n := 5
	procs := newFloodProcs(n, 0)
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(n)),
		Procs:     procs,
		MaxRounds: 10,
	}
	rounds, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 10 {
		t.Fatalf("rounds = %d, want 10 (no stop condition)", rounds)
	}
	// Node at distance k hears the token at round k-1.
	for v := 1; v < n; v++ {
		fp := procs[v].(*floodProc)
		if fp.heardAt != v-1 {
			t.Fatalf("node %d heard at round %d, want %d", v, fp.heardAt, v-1)
		}
	}
}

func TestRunSequentialStopCondition(t *testing.T) {
	procs := newFloodProcs(3, 0)
	all := func(int) bool {
		for _, p := range procs {
			if !p.(*floodProc).has {
				return false
			}
		}
		return true
	}
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(3)),
		Procs:     procs,
		MaxRounds: 100,
		Stop:      all,
	}
	rounds, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
}

func TestRunConcurrentMatchesSequential(t *testing.T) {
	// Same protocol, same dynamic network, both engines: identical
	// per-node inbox histories.
	net, err := dynet.NewRandomChurn(8, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine func(*Config) (int, error)) []Process {
		procs := newFloodProcs(8, 0)
		cfg := &Config{Net: net, Procs: procs, MaxRounds: 6}
		if _, err := engine(cfg); err != nil {
			t.Fatal(err)
		}
		return procs
	}
	seq := run(RunSequential)
	con := run(RunConcurrent)
	for v := range seq {
		a := seq[v].(*floodProc)
		b := con[v].(*floodProc)
		if a.heardAt != b.heardAt {
			t.Fatalf("node %d heardAt: seq %d vs con %d", v, a.heardAt, b.heardAt)
		}
		if len(a.received) != len(b.received) {
			t.Fatalf("node %d inbox rounds: %d vs %d", v, len(a.received), len(b.received))
		}
		for r := range a.received {
			if len(a.received[r]) != len(b.received[r]) {
				t.Fatalf("node %d round %d inbox sizes differ", v, r)
			}
			for i := range a.received[r] {
				if a.received[r][i] != b.received[r][i] {
					t.Fatalf("node %d round %d msg %d differs", v, r, i)
				}
			}
		}
	}
}

func TestRunConcurrentStop(t *testing.T) {
	procs := newFloodProcs(4, 0)
	all := func(int) bool {
		for _, p := range procs {
			if !p.(*floodProc).has {
				return false
			}
		}
		return true
	}
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(4)),
		Procs:     procs,
		MaxRounds: 50,
		Stop:      all,
	}
	rounds, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestValidateErrors(t *testing.T) {
	good := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 1,
	}
	cases := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"nil net", func(c *Config) { c.Net = nil }},
		{"wrong proc count", func(c *Config) { c.Procs = c.Procs[:1] }},
		{"nil proc", func(c *Config) { c.Procs[1] = nil }},
		{"negative rounds", func(c *Config) { c.MaxRounds = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := *good
			c.Procs = append([]Process(nil), good.Procs...)
			tc.mutate(&c)
			if _, err := RunSequential(&c); err == nil {
				t.Fatal("sequential: want error")
			}
			if _, err := RunConcurrent(&c); err == nil {
				t.Fatal("concurrent: want error")
			}
		})
	}
}

func TestZeroRoundsAndZeroNodes(t *testing.T) {
	cfg := &Config{
		Net:       dynet.NewStatic(graph.New(0)),
		Procs:     nil,
		MaxRounds: 5,
	}
	if r, err := RunConcurrent(cfg); err != nil || r != 0 {
		t.Fatalf("empty network: (%d, %v)", r, err)
	}
	cfg2 := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 0,
	}
	if r, err := RunSequential(cfg2); err != nil || r != 0 {
		t.Fatalf("zero rounds: (%d, %v)", r, err)
	}
}

// degreeProc records the degree it was told before each send phase.
type degreeProc struct {
	degrees []int
}

func (d *degreeProc) Send(int) Message        { return nil }
func (d *degreeProc) Receive(int, []Message)  {}
func (d *degreeProc) SetDegree(_, degree int) { d.degrees = append(d.degrees, degree) }

func TestDegreeOracleDelivery(t *testing.T) {
	// Star centered at 0: center degree 3, leaves degree 1.
	star, err := graph.Star(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, engine := range map[string]func(*Config) (int, error){
		"sequential": RunSequential,
		"concurrent": RunConcurrent,
	} {
		t.Run(name, func(t *testing.T) {
			procs := make([]Process, 4)
			for i := range procs {
				procs[i] = &degreeProc{}
			}
			cfg := &Config{Net: dynet.NewStatic(star), Procs: procs, MaxRounds: 3}
			if _, err := engine(cfg); err != nil {
				t.Fatal(err)
			}
			center := procs[0].(*degreeProc)
			if len(center.degrees) != 3 || center.degrees[0] != 3 {
				t.Fatalf("center degrees = %v", center.degrees)
			}
			leaf := procs[1].(*degreeProc)
			if leaf.degrees[0] != 1 {
				t.Fatalf("leaf degrees = %v", leaf.degrees)
			}
		})
	}
}

// outputProc terminates with a fixed value after a given round.
type outputProc struct {
	after int
	round int
}

func (o *outputProc) Send(int) Message           { return nil }
func (o *outputProc) Receive(r int, _ []Message) { o.round = r }
func (o *outputProc) Output() (int, bool)        { return 42, o.round >= o.after }

func TestRunUntilOutput(t *testing.T) {
	procs := []Process{&outputProc{after: 3}, &floodProc{}}
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     procs,
		MaxRounds: 10,
	}
	val, rounds, ok, err := RunUntilOutput(cfg, 0, RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != 42 || rounds != 4 {
		t.Fatalf("got (val=%d rounds=%d ok=%v)", val, rounds, ok)
	}
}

func TestRunUntilOutputErrors(t *testing.T) {
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 5,
	}
	if _, _, _, err := RunUntilOutput(cfg, 7, RunSequential); err == nil {
		t.Fatal("bad leader index should error")
	}
	if _, _, _, err := RunUntilOutput(cfg, 0, RunSequential); err == nil {
		t.Fatal("non-Outputter leader should error")
	}
}

func TestRunUntilOutputNeverTerminates(t *testing.T) {
	procs := []Process{&outputProc{after: 100}, &floodProc{}}
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     procs,
		MaxRounds: 5,
	}
	_, rounds, ok, err := RunUntilOutput(cfg, 0, RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if ok || rounds != 5 {
		t.Fatalf("got (rounds=%d ok=%v), want (5, false)", rounds, ok)
	}
}

// echoProc broadcasts its node index and records what it hears; used to
// verify anonymity-preserving canonical delivery order.
type echoProc struct {
	id    int
	heard []string
}

func (e *echoProc) Send(int) Message { return strconv.Itoa(e.id) }

func (e *echoProc) Receive(_ int, msgs []Message) {
	for _, m := range msgs {
		e.heard = append(e.heard, m.(string))
	}
}

func TestCanonicalDeliveryOrder(t *testing.T) {
	// Node 0 is adjacent to 3, 1, 2 (inserted in scrambled order); its
	// inbox must arrive sorted by the canonical encoding, independent of
	// adjacency iteration order.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 3}, {U: 0, V: 1}, {U: 0, V: 2}})
	procs := []Process{
		&echoProc{id: 0}, &echoProc{id: 1}, &echoProc{id: 2}, &echoProc{id: 3},
	}
	cfg := &Config{
		Net:       dynet.NewStatic(g),
		Procs:     procs,
		MaxRounds: 1,
		Canon:     func(m Message) string { return m.(string) },
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	got := procs[0].(*echoProc).heard
	want := []string{"1", "2", "3"}
	if len(got) != len(want) {
		t.Fatalf("heard = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heard = %v, want %v", got, want)
		}
	}
}

func TestOnRoundHook(t *testing.T) {
	var seen []int
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(2)),
		Procs:     newFloodProcs(2, 0),
		MaxRounds: 3,
		OnRound:   func(r int) { seen = append(seen, r) },
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("OnRound saw %v", seen)
	}
}

func TestConcurrentManyNodesRace(t *testing.T) {
	// Exercised under -race in CI: 50 goroutine-backed processes over a
	// churning network.
	net, err := dynet.NewRandomChurn(50, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	procs := newFloodProcs(50, 0)
	cfg := &Config{Net: net, Procs: procs, MaxRounds: 8}
	if _, err := RunConcurrent(cfg); err != nil {
		t.Fatal(err)
	}
	for v, p := range procs {
		if !p.(*floodProc).has {
			t.Fatalf("node %d never heard the flood", v)
		}
	}
}

// Inboxes are multisets: two neighbors broadcasting equal messages deliver
// two entries, and an isolated node receives an empty (non-nil-safe) inbox.
func TestInboxMultisetSemantics(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	procs := []Process{
		&echoProc{id: 7}, &echoProc{id: 9}, &echoProc{id: 9}, &echoProc{id: 5},
	}
	cfg := &Config{
		Net:       dynet.NewStatic(g),
		Procs:     procs,
		MaxRounds: 1,
		Canon:     func(m Message) string { return m.(string) },
	}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	heard := procs[0].(*echoProc).heard
	if len(heard) != 2 || heard[0] != "9" || heard[1] != "9" {
		t.Fatalf("duplicate messages collapsed: %v", heard)
	}
	if got := procs[3].(*echoProc).heard; len(got) != 0 {
		t.Fatalf("isolated node heard %v", got)
	}
}

// The engines agree on the degree-oracle path as well.
func TestEnginesAgreeWithDegreeOracle(t *testing.T) {
	run := func(engine func(*Config) (int, error)) []int {
		procs := make([]Process, 5)
		for i := range procs {
			procs[i] = &degreeProc{}
		}
		net, err := dynet.NewRandomChurn(5, 0.4, 11)
		if err != nil {
			t.Fatal(err)
		}
		cfg := &Config{Net: net, Procs: procs, MaxRounds: 4}
		if _, err := engine(cfg); err != nil {
			t.Fatal(err)
		}
		var all []int
		for _, p := range procs {
			all = append(all, p.(*degreeProc).degrees...)
		}
		return all
	}
	a := run(RunSequential)
	b := run(RunConcurrent)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("degree streams differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
