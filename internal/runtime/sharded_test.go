package runtime

import (
	"context"
	"errors"
	"math"
	"strconv"
	"testing"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/obs"
)

// shardCounts are the worker-pool sizes the equivalence tests sweep:
// degenerate single shard, uneven partitions, and more shards than nodes.
var shardCounts = []int{1, 2, 3, 5, 64}

func mustStar(n int) *graph.Graph {
	g, err := graph.Star(n, 0)
	if err != nil {
		panic(err)
	}
	return g
}

func mustCycle(n int) *graph.Graph {
	g, err := graph.Cycle(n)
	if err != nil {
		panic(err)
	}
	return g
}

// transcriptProc records its full per-round inbox history with distinct
// per-node initial messages, so any deviation in delivery order, content,
// or round count between engines is observable.
type transcriptProc struct {
	id       int
	state    string
	received [][]Message
}

func (p *transcriptProc) Send(int) Message { return p.state }

func (p *transcriptProc) Receive(r int, msgs []Message) {
	p.received = append(p.received, append([]Message(nil), msgs...))
	// Order-sensitive fold: concatenation distinguishes permutations.
	next := p.state
	for _, m := range msgs {
		next += "|" + m.(string)
	}
	if len(next) > 64 {
		next = next[len(next)-64:]
	}
	p.state = next
}

func newTranscriptProcs(n int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &transcriptProc{id: i, state: strconv.Itoa(i)}
	}
	return procs
}

func sameTranscripts(t *testing.T, label string, a, b []Process) {
	t.Helper()
	for v := range a {
		pa, pb := a[v].(*transcriptProc), b[v].(*transcriptProc)
		if pa.state != pb.state {
			t.Fatalf("%s: node %d final state %q vs %q", label, v, pa.state, pb.state)
		}
		if len(pa.received) != len(pb.received) {
			t.Fatalf("%s: node %d saw %d rounds vs %d", label, v, len(pa.received), len(pb.received))
		}
		for r := range pa.received {
			if len(pa.received[r]) != len(pb.received[r]) {
				t.Fatalf("%s: node %d round %d inbox sizes %d vs %d",
					label, v, r, len(pa.received[r]), len(pb.received[r]))
			}
			for i := range pa.received[r] {
				if pa.received[r][i] != pb.received[r][i] {
					t.Fatalf("%s: node %d round %d msg %d: %v vs %v",
						label, v, r, i, pa.received[r][i], pb.received[r][i])
				}
			}
		}
	}
}

func TestRunShardedMatchesSequential(t *testing.T) {
	nets := map[string]dynet.Dynamic{}
	churn, err := dynet.NewRandomChurn(11, 0.3, 41)
	if err != nil {
		t.Fatal(err)
	}
	nets["churn-n11"] = churn
	star := mustStar(9)
	nets["star-n9"] = dynet.NewStatic(star)
	cyc, err := dynet.NewCyclic([]*graph.Graph{graph.Path(7), mustStar(7), graph.Path(7)})
	if err != nil {
		t.Fatal(err)
	}
	nets["cyclic-n7"] = cyc

	for name, net := range nets {
		n := net.N()
		seqProcs := newTranscriptProcs(n)
		seqRounds, err := RunSequential(&Config{Net: net, Procs: seqProcs, MaxRounds: 6})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, shards := range shardCounts {
			procs := newTranscriptProcs(n)
			rounds, err := RunSharded(&Config{Net: net, Procs: procs, MaxRounds: 6, Shards: shards})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if rounds != seqRounds {
				t.Fatalf("%s shards=%d: %d rounds, sequential %d", name, shards, rounds, seqRounds)
			}
			sameTranscripts(t, name+"/"+strconv.Itoa(shards), seqProcs, procs)
		}
	}
}

// TestRunShardedCanonicalOrder pins delivery order against the documented
// rule directly (senders sorted by canonical key, ties by node id), not just
// against the sequential engine.
func TestRunShardedCanonicalOrder(t *testing.T) {
	// Star center node 0 hears every leaf; leaves 1..6 send distinct
	// messages whose canonical keys invert numeric order.
	n := 7
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &transcriptProc{id: i, state: strconv.Itoa(9 - i)}
	}
	_, err := RunSharded(&Config{
		Net:       dynet.NewStatic(mustStar(n)),
		Procs:     procs,
		MaxRounds: 1,
		Shards:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	center := procs[0].(*transcriptProc)
	got := center.received[0]
	want := []Message{"3", "4", "5", "6", "7", "8"} // keys of leaves 6..1 ascending
	if len(got) != len(want) {
		t.Fatalf("center inbox %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("center inbox %v, want %v", got, want)
		}
	}
}

func TestRunShardedDegreeOracle(t *testing.T) {
	net, err := dynet.NewCyclic([]*graph.Graph{mustStar(6), graph.Path(6)})
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine Engine) []Process {
		procs := make([]Process, 6)
		for i := range procs {
			procs[i] = &degreeProc{}
		}
		if _, err := engine(&Config{Net: net, Procs: procs, MaxRounds: 4, Shards: 2}); err != nil {
			t.Fatal(err)
		}
		return procs
	}
	seq := run(RunSequential)
	shd := run(RunSharded)
	for v := range seq {
		a, b := seq[v].(*degreeProc), shd[v].(*degreeProc)
		if len(a.degrees) != len(b.degrees) {
			t.Fatalf("node %d: %v vs %v", v, a.degrees, b.degrees)
		}
		for i := range a.degrees {
			if a.degrees[i] != b.degrees[i] {
				t.Fatalf("node %d: %v vs %v", v, a.degrees, b.degrees)
			}
		}
	}
}

func TestRunShardedAdaptive(t *testing.T) {
	// The adversary wires a path rooted at whichever node still lacks the
	// token — topology depends on the round's broadcasts.
	n := 6
	adaptive := func(r int, outbox []Message) *graph.Graph {
		g := graph.Path(n)
		for v, m := range outbox {
			if s, ok := m.(string); ok && len(s) > 3 && v > 0 {
				_ = g.RemoveEdge(graph.NodeID(v-1), graph.NodeID(v))
				break
			}
		}
		return g
	}
	run := func(engine Engine) []Process {
		procs := newTranscriptProcs(n)
		cfg := &Config{
			Net:       dynet.NewStatic(graph.Path(n)),
			Adaptive:  adaptive,
			Procs:     procs,
			MaxRounds: 5,
			Shards:    3,
		}
		if _, err := engine(cfg); err != nil {
			t.Fatal(err)
		}
		return procs
	}
	sameTranscripts(t, "adaptive", run(RunSequential), run(RunSharded))
}

func TestRunShardedStopAndOnRound(t *testing.T) {
	procs := newFloodProcs(5, 0)
	var hooks []int
	cfg := &Config{
		Net:       dynet.NewStatic(graph.Path(5)),
		Procs:     procs,
		MaxRounds: 100,
		Shards:    2,
		OnRound:   func(r int) { hooks = append(hooks, r) },
		Stop: func(int) bool {
			for _, p := range procs {
				if !p.(*floodProc).has {
					return false
				}
			}
			return true
		},
	}
	rounds, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Fatalf("rounds = %d, want 4", rounds)
	}
	if len(hooks) != 4 || hooks[3] != 3 {
		t.Fatalf("OnRound hooks = %v", hooks)
	}
}

type panicAtProc struct {
	node, round int
	phase       string // "send" or "receive"
}

func (p *panicAtProc) Send(r int) Message {
	if p.phase == "send" && r == p.round {
		panic("boom-send")
	}
	return nil
}

func (p *panicAtProc) Receive(r int, _ []Message) {
	if p.phase == "receive" && r == p.round {
		panic("boom-receive")
	}
}

func TestRunShardedPanicIsolation(t *testing.T) {
	for _, phase := range []string{"send", "receive"} {
		n := 9
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &panicAtProc{}
		}
		// Two panicking nodes in different shards: the lowest one must be
		// reported, as the sequential engine's in-order iteration would.
		procs[3] = &panicAtProc{node: 3, round: 1, phase: phase}
		procs[7] = &panicAtProc{node: 7, round: 1, phase: phase}
		rounds, err := RunSharded(&Config{
			Net:       dynet.NewStatic(mustCycle(n)),
			Procs:     procs,
			MaxRounds: 5,
			Shards:    3,
		})
		var pe *ProcessPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v, want *ProcessPanicError", phase, err)
		}
		if pe.Node != 3 || pe.Round != 1 {
			t.Fatalf("%s: panic attributed to node %d round %d, want node 3 round 1", phase, pe.Node, pe.Round)
		}
		if rounds != 1 {
			t.Fatalf("%s: completed %d rounds, want 1", phase, rounds)
		}
	}
}

func TestRunShardedContextPaths(t *testing.T) {
	net := dynet.NewStatic(mustCycle(6))
	procs := newFloodProcs(6, 0)
	cfg := &Config{Net: net, Procs: procs, MaxRounds: 10, Shards: 2}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rounds, err := RunShardedCtx(ctx, cfg)
	if rounds != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: rounds=%d err=%v", rounds, err)
	}

	// Cancel mid-run via the OnRound hook.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg2 := &Config{
		Net: net, Procs: newFloodProcs(6, 0), MaxRounds: 10, Shards: 2,
		OnRound: func(r int) {
			if r == 2 {
				cancel2()
			}
		},
	}
	rounds, err = RunShardedCtx(ctx2, cfg2)
	if rounds != 3 || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: rounds=%d err=%v", rounds, err)
	}
}

type slowProc struct{ d time.Duration }

func (p *slowProc) Send(int) Message        { time.Sleep(p.d); return nil }
func (p *slowProc) Receive(int, []Message)  {}

func TestRunShardedRoundDeadline(t *testing.T) {
	procs := make([]Process, 3)
	for i := range procs {
		procs[i] = &slowProc{d: 30 * time.Millisecond}
	}
	_, err := RunSharded(&Config{
		Net:           dynet.NewStatic(graph.Path(3)),
		Procs:         procs,
		MaxRounds:     3,
		Shards:        1,
		RoundDeadline: 5 * time.Millisecond,
	})
	var de *RoundDeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *RoundDeadlineError", err)
	}
	if de.Round != 0 {
		t.Fatalf("deadline at round %d, want 0", de.Round)
	}
}

// staticCSRNet serves a fixed topology natively in CSR form, exercising the
// engine's CSRDynamic fast path (no map graphs materialized).
type staticCSRNet struct {
	g   *graph.Graph
	csr *graph.CSR
}

func newStaticCSRNet(t *testing.T, g *graph.Graph) *staticCSRNet {
	t.Helper()
	c, err := g.CSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &staticCSRNet{g: g, csr: c}
}

func (s *staticCSRNet) N() int                       { return s.g.N() }
func (s *staticCSRNet) Snapshot(int) *graph.Graph    { return s.g }
func (s *staticCSRNet) SnapshotCSR(int) *graph.CSR   { return s.csr }

func TestRunShardedCSRDynamicPath(t *testing.T) {
	g := mustStar(8)
	seqProcs := newTranscriptProcs(8)
	if _, err := RunSequential(&Config{Net: dynet.NewStatic(g), Procs: seqProcs, MaxRounds: 4}); err != nil {
		t.Fatal(err)
	}
	procs := newTranscriptProcs(8)
	net := newStaticCSRNet(t, g)
	if _, err := RunSharded(&Config{Net: net, Procs: procs, MaxRounds: 4, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	sameTranscripts(t, "csr-dynamic", seqProcs, procs)
}

// brokenCSRNet returns a CSR whose claimed total does not match its backing
// array — the shape a saturated (overflowed) offset accumulation produces.
type brokenCSRNet struct{ n int }

func (b *brokenCSRNet) N() int                    { return b.n }
func (b *brokenCSRNet) Snapshot(int) *graph.Graph { return graph.New(b.n) }
func (b *brokenCSRNet) SnapshotCSR(int) *graph.CSR {
	offsets := make([]int, b.n+1)
	offsets[b.n] = math.MaxInt // saturated size: no such arena is allocatable
	return &graph.CSR{Offsets: offsets, Nbrs: nil}
}

func TestRunShardedRejectsInvalidCSR(t *testing.T) {
	procs := newFloodProcs(4, 0)
	rounds, err := RunSharded(&Config{Net: &brokenCSRNet{n: 4}, Procs: procs, MaxRounds: 3, Shards: 2})
	if err == nil {
		t.Fatal("sharded engine accepted a corrupt CSR snapshot")
	}
	if rounds != 0 {
		t.Fatalf("completed %d rounds on a corrupt snapshot, want 0", rounds)
	}
}

func TestRunShardedValidation(t *testing.T) {
	procs := newFloodProcs(3, 0)
	net := dynet.NewStatic(graph.Path(3))
	if _, err := RunSharded(&Config{Net: net, Procs: procs, MaxRounds: 2, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	// Zero nodes and zero rounds are clean no-ops.
	if rounds, err := RunSharded(&Config{Net: dynet.NewStatic(graph.New(0)), Procs: nil, MaxRounds: 5}); err != nil || rounds != 0 {
		t.Errorf("zero nodes: rounds=%d err=%v", rounds, err)
	}
	if rounds, err := RunSharded(&Config{Net: net, Procs: procs, MaxRounds: 0}); err != nil || rounds != 0 {
		t.Errorf("zero rounds: rounds=%d err=%v", rounds, err)
	}
}

// TestShardBounds checks the partition arithmetic: shards tile [0, n)
// exactly, sizes differ by at most one — including at n = MaxInt, where the
// naive s*n/nw formula would overflow.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, nw int }{
		{1, 1}, {5, 2}, {7, 3}, {64, 8}, {10, 10}, {1000003, 7},
		{math.MaxInt, 1}, {math.MaxInt, 3}, {math.MaxInt, 64}, {math.MaxInt - 1, 63},
	} {
		prevHi := 0
		base := tc.n / tc.nw
		for s := 0; s < tc.nw; s++ {
			lo, hi := shardBounds(tc.n, tc.nw, s)
			if lo != prevHi {
				t.Fatalf("n=%d nw=%d shard %d: lo=%d, want %d (gap or overlap)", tc.n, tc.nw, s, lo, prevHi)
			}
			if size := hi - lo; size != base && size != base+1 {
				t.Fatalf("n=%d nw=%d shard %d: size %d, want %d or %d", tc.n, tc.nw, s, size, base, base+1)
			}
			if lo < 0 || hi < lo {
				t.Fatalf("n=%d nw=%d shard %d: bounds [%d,%d) overflowed", tc.n, tc.nw, s, lo, hi)
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d nw=%d: shards end at %d, want %d", tc.n, tc.nw, prevHi, tc.n)
		}
	}
}

func TestLowerBound(t *testing.T) {
	row := []graph.NodeID{2, 4, 4, 7, 9}
	for _, tc := range []struct{ x, want int }{
		{0, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {7, 3}, {8, 4}, {9, 4}, {10, 5},
	} {
		if got := lowerBound(row, tc.x); got != tc.want {
			t.Errorf("lowerBound(%v, %d) = %d, want %d", row, tc.x, got, tc.want)
		}
	}
	if got := lowerBound(nil, 3); got != 0 {
		t.Errorf("lowerBound(nil, 3) = %d, want 0", got)
	}
}

// retainingProc deliberately keeps every inbox slice it is handed, without
// copying. Safe only under Config.CopyInboxes.
type retainingProc struct {
	id       int
	retained [][]Message
}

func (p *retainingProc) Send(r int) Message { return strconv.Itoa(p.id*100 + r) }
func (p *retainingProc) Receive(_ int, msgs []Message) {
	p.retained = append(p.retained, msgs)
}

// TestCopyInboxesRetainingProcess is the retaining-process regression test
// for the PR-5 buffer-reuse semantics: a process that holds on to its inbox
// slices observes silent corruption once the engine recycles the buffers —
// on the pre-CopyInboxes engines this test's expectations fail, because the
// round-0 slice is overwritten with round-2 contents. With
// Config.CopyInboxes every engine hands out caller-owned slices and every
// retained snapshot stays intact.
func TestCopyInboxesRetainingProcess(t *testing.T) {
	const n, rounds = 5, 4
	net := dynet.NewStatic(mustCycle(n))
	engines := map[string]Engine{
		"sequential": RunSequential,
		"concurrent": RunConcurrent,
		"sharded":    RunSharded,
	}
	for name, engine := range engines {
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &retainingProc{id: i}
		}
		cfg := &Config{Net: net, Procs: procs, MaxRounds: rounds, Shards: 2, CopyInboxes: true}
		if _, err := engine(cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < n; v++ {
			p := procs[v].(*retainingProc)
			if len(p.retained) != rounds {
				t.Fatalf("%s: node %d retained %d rounds, want %d", name, v, len(p.retained), rounds)
			}
			// Cycle neighbors of v send id*100+r: each retained round-r
			// slice must still hold round r's messages, not a later
			// round's.
			l, r := (v+n-1)%n, (v+1)%n
			for round := 0; round < rounds; round++ {
				want := map[Message]bool{
					strconv.Itoa(l*100 + round): true,
					strconv.Itoa(r*100 + round): true,
				}
				got := p.retained[round]
				if len(got) != 2 || !want[got[0]] || !want[got[1]] {
					t.Fatalf("%s: node %d round %d retained %v, want messages from nodes %d and %d of that round",
						name, v, round, got, l, r)
				}
			}
		}
	}
}

// TestDefaultReuseOverwritesRetained pins the flip side: under the default
// zero-copy contract the engine-owned buffers really are recycled, so a
// retaining process sees its old slices change — the exact footgun
// CopyInboxes exists to close. If this test starts failing, the engines
// quietly began copying and the performance contract changed.
func TestDefaultReuseOverwritesRetained(t *testing.T) {
	const n, rounds = 5, 4
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &retainingProc{id: i}
	}
	cfg := &Config{Net: dynet.NewStatic(mustCycle(n)), Procs: procs, MaxRounds: rounds}
	if _, err := RunSequential(cfg); err != nil {
		t.Fatal(err)
	}
	p := procs[0].(*retainingProc)
	first := p.retained[0]
	// Node 0's neighbors at round 0 sent "100" and "400"; by round 3 the
	// recycled buffer holds round-3 values.
	for _, m := range first {
		if m == "100" || m == "400" {
			t.Fatalf("retained round-0 inbox still holds round-0 message %v: buffer reuse disappeared", m)
		}
	}
}

// TestShardedRoundStepAllocCeiling locks the steady-state allocation budget
// of one sharded round, by differencing short and long runs as the
// sequential ceiling test does.
func TestShardedRoundStepAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	prev := obs.Global()
	defer obs.Set(prev)
	obs.Set(nil)

	const n, shortR, longR = 64, 4, 44
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	net := dynet.NewStatic(g)
	run := func(rounds int) {
		procs := make([]Process, n)
		for i := range procs {
			procs[i] = &quietProc{seen: i == 0}
		}
		cfg := &Config{Net: net, Procs: procs, MaxRounds: rounds, Canon: quietCanon, Shards: 2}
		if _, err := RunSharded(cfg); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(20, func() { run(shortR) })
	long := testing.AllocsPerRun(20, func() { run(longR) })
	perStep := (long - short) / float64(longR-shortR)
	if perStep > 2 {
		t.Fatalf("sharded round step allocates %.2f/step, want <= 2", perStep)
	}
}

// TestShardedEngineRaceSmoke is the CI race-mode smoke entry point: a small
// multi-shard run with protocol work in every phase, so `go test -race
// -run TestShardedEngineRaceSmoke` exercises all cross-shard handoffs.
func TestShardedEngineRaceSmoke(t *testing.T) {
	net, err := dynet.NewRandomChurn(16, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		procs := newTranscriptProcs(16)
		if _, err := RunSharded(&Config{Net: net, Procs: procs, MaxRounds: 5, Shards: shards}); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}
