package runtime

import (
	gort "runtime"
	"testing"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// TestConcurrentEngineNoGoroutineLeak verifies that every node goroutine is
// joined before RunConcurrent returns, on normal completion, early stop,
// and abort paths.
func TestConcurrentEngineNoGoroutineLeak(t *testing.T) {
	baseline := gort.NumGoroutine()
	runOnce := func(mutate func(c *Config)) {
		procs := newFloodProcs(20, 0)
		cfg := &Config{
			Net:       dynet.NewStatic(graph.Complete(20)),
			Procs:     procs,
			MaxRounds: 10,
		}
		if mutate != nil {
			mutate(cfg)
		}
		_, _ = RunConcurrent(cfg)
	}
	runOnce(nil)                                                         // normal completion
	runOnce(func(c *Config) { c.Stop = func(int) bool { return true } }) // early stop
	runOnce(func(c *Config) {                                            // abort mid-round
		c.Adaptive = func(int, []Message) *graph.Graph { return nil }
	})
	// Allow exited goroutines to be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gort.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d baseline", gort.NumGoroutine(), baseline)
}
