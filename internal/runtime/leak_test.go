package runtime

import (
	"context"
	gort "runtime"
	"testing"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// TestNoGoroutineLeak verifies that every worker goroutine is joined before
// RunConcurrent and RunSharded return, on normal completion, early stop,
// and every abort path: an adversary that errors at round 0, an adversary
// that returns a malformed graph mid-run, a panicking process, a canceled
// context, and a round-deadline overrun.
func TestNoGoroutineLeak(t *testing.T) {
	baseline := gort.NumGoroutine()
	runOnce := func(ctx context.Context, mutate func(c *Config)) {
		for _, engine := range []func(context.Context, *Config) (int, error){
			RunConcurrentCtx,
			RunShardedCtx,
		} {
			procs := newFloodProcs(20, 0)
			cfg := &Config{
				Net:       dynet.NewStatic(graph.Complete(20)),
				Procs:     procs,
				MaxRounds: 10,
				Shards:    3, // multi-shard even on a single-core runner
			}
			if mutate != nil {
				mutate(cfg)
			}
			_, _ = engine(ctx, cfg)
		}
	}
	bg := context.Background()
	runOnce(bg, nil)                                                         // normal completion
	runOnce(bg, func(c *Config) { c.Stop = func(int) bool { return true } }) // early stop
	runOnce(bg, func(c *Config) {                                            // abort at round 0: nil topology
		c.Adaptive = func(int, []Message) *graph.Graph { return nil }
	})
	runOnce(bg, func(c *Config) { // error-injecting adversary: malformed graph mid-run
		c.Adaptive = func(r int, _ []Message) *graph.Graph {
			if r == 3 {
				return graph.New(7) // wrong node count
			}
			return graph.Complete(20)
		}
	})
	runOnce(bg, func(c *Config) { // process panic mid-run
		c.Procs[11] = &hookProc{inner: c.Procs[11], onSend: func(r int) {
			if r == 2 {
				panic("leak-test panic")
			}
		}}
	})
	{ // cancellation mid-run
		ctx, cancel := context.WithCancel(bg)
		runOnce(ctx, func(c *Config) {
			c.Procs[0] = &hookProc{inner: c.Procs[0], onReceive: func(r int) {
				if r == 1 {
					cancel()
				}
			}}
		})
		cancel()
	}
	runOnce(bg, func(c *Config) { // round-deadline overrun
		c.RoundDeadline = time.Millisecond
		c.Procs[5] = &hookProc{inner: c.Procs[5], onSend: func(r int) {
			if r == 0 {
				time.Sleep(20 * time.Millisecond)
			}
		}}
	})
	// Allow exited goroutines to be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gort.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d baseline", gort.NumGoroutine(), baseline)
}
