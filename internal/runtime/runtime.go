// Package runtime executes synchronous round-based message-passing
// computations over dynamic networks, implementing the paper's Section 3
// model: every round has a send phase, in which each process broadcasts one
// message to its current neighbors through an anonymous broadcast with
// unlimited bandwidth, and a receive phase, in which it processes the
// multiset of messages delivered by its neighbors.
//
// Three interchangeable engines are provided. The sequential engine runs
// all processes in a deterministic loop and is the reference
// implementation. The concurrent engine runs one goroutine per process,
// with channel-based barriers separating the phases — goroutines map
// one-to-one onto the paper's processes. The sharded engine partitions the
// node range across a fixed worker pool and assembles deliveries into flat
// engine-owned buffers, which is what scales to million-node networks.
// Tests cross-check that all engines produce identical executions.
//
// Anonymity is enforced structurally: a process is given only the multiset
// of messages it received, in an order canonicalized by the message
// encoding, never the identity of a sender.
//
// Both engines are cancellation-aware: RunSequentialCtx and
// RunConcurrentCtx honor a context.Context at round granularity (checked
// at the top of each round and between the send and receive phases), honor
// an optional per-round wall-clock budget (Config.RoundDeadline), and
// convert process panics into a typed *ProcessPanicError instead of
// crashing the caller. RunSequential and RunConcurrent are thin wrappers
// over context.Background(). For the same schedule the two engines return
// identical round counts and identical errors on every exit path.
package runtime

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"slices"
	"time"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/obs"
)

// Message is an opaque broadcast payload. The model's bandwidth is
// unlimited, so messages may be arbitrarily large values.
type Message any

// Process is one node's protocol logic. The engine calls Send in the send
// phase of every round and Receive in the receive phase with the multiset
// of messages broadcast by the node's current neighbors. Per the model, a
// process does not learn its degree |N(v,r)| until the receive phase —
// unless it opts in to the degree-oracle extension (see DegreeAware).
//
// Implementations must be deterministic: the lower bound assumes the
// adversary controls any randomness.
type Process interface {
	// Send returns the message to broadcast at round r.
	Send(r int) Message
	// Receive delivers the canonical-order multiset of neighbor messages
	// for round r.
	//
	// Ownership rule: msgs aliases an engine-owned buffer that is reused
	// for the next round, so it is valid only for the duration of the
	// call. A process that retains messages across rounds must copy the
	// slice (the Message values themselves are never mutated by the
	// engine and may be retained), or the run must set Config.CopyInboxes
	// to restore caller-owned delivery at one allocation per node per
	// round.
	Receive(r int, msgs []Message)
}

// DegreeAware is the optional degree-oracle extension from the paper's
// Discussion (the model of [13]): a process implementing it is told its
// degree for round r before its Send(r) is requested. This single bit of
// extra knowledge collapses the counting lower bound to O(1) in restricted
// G(PD)_2 networks.
type DegreeAware interface {
	SetDegree(r, degree int)
}

// Outputter is implemented by processes (typically the leader) that
// eventually produce a terminal output, such as the network count.
type Outputter interface {
	// Output returns the process's output value and whether the process
	// has terminated with that output.
	Output() (int, bool)
}

// Canonicalizer converts a message to a canonical string used to sort each
// inbox, making delivery deterministic without leaking sender identity.
type Canonicalizer func(Message) string

// KeyCanonicalizer is the integer fast path of Canonicalizer: it converts a
// message to a canonical uint64 key. Producing a uint64 instead of a string
// keeps the per-sender canonicalization and the per-round key sorts
// allocation-free and turns every key comparison into one integer compare.
// Protocols whose messages already carry a collision-free fingerprint (the
// history-tree counter's structural hash, for instance) should prefer it.
type KeyCanonicalizer func(Message) uint64

// DefaultCanon formats the message with %#v. Protocol packages usually
// provide a cheaper, collision-free encoding of their own message type.
func DefaultCanon(m Message) string { return fmt.Sprintf("%#v", m) }

// Config describes an execution: a dynamic network, one process per node,
// and the run controls.
type Config struct {
	// Net supplies the per-round topology (and the node count).
	Net dynet.Dynamic
	// Adaptive, if non-nil, overrides Net's snapshots: at each round the
	// adversary chooses the topology after inspecting the round's
	// broadcasts — the paper's omniscient worst-case adversary, which
	// "has access to nodes' local variables" (for deterministic
	// protocols, the broadcasts determine the states, and broadcasts are
	// composed before the topology is known). The returned graph must
	// have Net.N() nodes. Adaptive cannot be combined with DegreeAware
	// processes: the degree oracle needs the topology before the send
	// phase, which an adaptive adversary fixes only after it.
	Adaptive func(r int, outbox []Message) *graph.Graph
	// Procs holds one Process per node; Procs[i] runs at node i.
	Procs []Process
	// Canon canonicalizes messages for deterministic delivery order.
	// Nil means DefaultCanon. Ignored when CanonKey is set.
	Canon Canonicalizer
	// CanonKey, if non-nil, replaces Canon with an allocation-free integer
	// canonical key: inboxes are sorted by ascending uint64 key, ties
	// broken by sender id exactly as on the string path, in all three
	// engines. The caller owns collision behavior the same way it does
	// with Canon — messages mapping to the same key form one ordering
	// class. Protocol packages with an id-free message fingerprint should
	// set this; the string Canon remains as the general fallback.
	CanonKey KeyCanonicalizer
	// MaxRounds bounds the execution length.
	MaxRounds int
	// RoundDeadline, if positive, bounds the wall-clock duration of each
	// round. A round that overruns it aborts the run with a
	// *RoundDeadlineError; the paper's model is synchronous, so a round
	// that cannot complete is an execution fault, not a slow message.
	// Zero means no per-round deadline.
	RoundDeadline time.Duration
	// Shards is the worker count of the sharded engine (RunSharded): the
	// node range is split into Shards contiguous partitions, each iterated
	// by one persistent worker goroutine. Zero means GOMAXPROCS. The other
	// engines ignore it. Executions are identical for every shard count.
	Shards int
	// CopyInboxes, if true, makes every engine hand Receive a freshly
	// allocated inbox slice the process may retain indefinitely — the
	// pre-reuse delivery semantics, at one allocation per node per round.
	// The default (false) keeps the zero-alloc buffer-reuse path, under
	// which inbox slices are valid only for the duration of the Receive
	// call (see the Process.Receive ownership rule). Set it for processes
	// that retain their inbox slices across rounds.
	CopyInboxes bool
	// Stop, if non-nil, is evaluated after each round's receive phase;
	// returning true ends the run after that round.
	Stop func(completedRound int) bool
	// OnRound, if non-nil, is invoked after each round completes, for
	// tracing.
	OnRound func(completedRound int)
	// Obs, if non-nil, receives execution metrics (rounds, delivered
	// messages, per-round wall time, panic/cancel/deadline counts). Nil
	// falls back to the process-wide collector (obs.Global), which is
	// itself nil unless the process opted in — in that case the round
	// loop runs with zero instrumentation overhead: no allocations, no
	// clock reads, one nil-check branch per site.
	Obs *obs.Collector
}

// topology returns the round's graph, honoring the adaptive adversary.
// outbox is the round's broadcasts; it is ignored for oblivious networks.
func (c *Config) topology(r int, outbox []Message) (*graph.Graph, error) {
	if c.Adaptive == nil {
		return c.Net.Snapshot(r), nil
	}
	g := c.Adaptive(r, outbox)
	if g == nil {
		return nil, fmt.Errorf("runtime: adaptive adversary returned nil graph at round %d", r)
	}
	if g.N() != c.Net.N() {
		return nil, fmt.Errorf("runtime: adaptive adversary returned %d nodes at round %d, want %d",
			g.N(), r, c.Net.N())
	}
	return g, nil
}

func (c *Config) validate() error {
	if c.Net == nil {
		return errors.New("runtime: nil network")
	}
	if len(c.Procs) != c.Net.N() {
		return fmt.Errorf("runtime: %d processes for %d nodes", len(c.Procs), c.Net.N())
	}
	for i, p := range c.Procs {
		if p == nil {
			return fmt.Errorf("runtime: nil process at node %d", i)
		}
		if c.Adaptive != nil {
			if _, ok := p.(DegreeAware); ok {
				return fmt.Errorf("runtime: process at node %d is DegreeAware, incompatible with an adaptive adversary", i)
			}
		}
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("runtime: negative MaxRounds %d", c.MaxRounds)
	}
	if c.Shards < 0 {
		return fmt.Errorf("runtime: negative Shards %d", c.Shards)
	}
	return nil
}

func (c *Config) canon() Canonicalizer {
	if c.Canon != nil {
		return c.Canon
	}
	return DefaultCanon
}

// Engine is the signature shared by RunSequential and RunConcurrent, used
// by protocol helpers that are parameterized over the execution engine.
type Engine = func(*Config) (int, error)

// SequentialEngine binds ctx to the sequential engine, producing the
// Engine shape expected by the protocol helpers. It lets engine-agnostic
// code (counting, dissemination, chainnet) run under a cancellable context
// without changing its own signatures.
func SequentialEngine(ctx context.Context) Engine {
	return func(cfg *Config) (int, error) { return RunSequentialCtx(ctx, cfg) }
}

// ConcurrentEngine binds ctx to the goroutine-per-node engine.
func ConcurrentEngine(ctx context.Context) Engine {
	return func(cfg *Config) (int, error) { return RunConcurrentCtx(ctx, cfg) }
}

// The per-phase guards convert a protocol panic into a *ProcessPanicError
// attributed to node v at round r. The sequential engine wraps each
// protocol call with one; the concurrent engine installs the equivalent
// recover in each worker goroutine. One dedicated function per phase keeps
// the hot loop free of closure allocations.

func guardSend(p Process, v, r int, outbox []Message) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &ProcessPanicError{Node: v, Round: r, Value: rec, Stack: debug.Stack()}
		}
	}()
	outbox[v] = p.Send(r)
	return nil
}

func guardReceive(p Process, v, r int, msgs []Message) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &ProcessPanicError{Node: v, Round: r, Value: rec, Stack: debug.Stack()}
		}
	}()
	p.Receive(r, msgs)
	return nil
}

func guardSetDegree(da DegreeAware, v, r, degree int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &ProcessPanicError{Node: v, Round: r, Value: rec, Stack: debug.Stack()}
		}
	}()
	da.SetDegree(r, degree)
	return nil
}

// inboxEntry pairs a broadcast with its canonical key for sorting.
type inboxEntry[K cmp.Ordered] struct {
	key K
	msg Message
}

// assembler groups a round's broadcasts into canonically ordered
// per-receiver inboxes. The sequential and concurrent engines hold one per
// run; the two instantiations of roundScratch (string keys from Canon,
// uint64 keys from CanonKey) both satisfy it, so the engines' round loops
// stay key-type agnostic.
type assembler interface {
	assemble(g *graph.Graph, outbox []Message) [][]Message
}

// roundScratch holds the engine-owned buffers reused across rounds when
// assembling inboxes: the per-receiver inbox slices, the per-sender
// canonical keys (computed once per sender per round instead of once per
// comparison), and the neighbor/sort scratch. Reuse is what makes the
// round loop allocation-free in steady state — and is why inbox slices
// handed to Process.Receive are valid only during the call (see the
// Receive ownership rule). It is generic over the canonical key type:
// string for Config.Canon, uint64 for the Config.CanonKey fast path.
type roundScratch[K cmp.Ordered] struct {
	canon   func(Message) K
	inboxes [][]Message
	keys    []K
	nb      []graph.NodeID
	entries []inboxEntry[K]
}

// newAssembler picks the key representation for the run: the uint64 fast
// path when Config.CanonKey is set, the string path otherwise.
func newAssembler(cfg *Config, n int) assembler {
	if cfg.CanonKey != nil {
		return &roundScratch[uint64]{
			canon:   cfg.CanonKey,
			inboxes: make([][]Message, n),
			keys:    make([]uint64, n),
		}
	}
	return &roundScratch[string]{
		canon:   cfg.canon(),
		inboxes: make([][]Message, n),
		keys:    make([]string, n),
	}
}

// assemble groups the round's broadcasts by receiver and sorts each inbox
// canonically. outbox[i] is the message node i broadcast on graph g. The
// returned slices are owned by the scratch and overwritten by the next
// assemble call.
func (sc *roundScratch[K]) assemble(g *graph.Graph, outbox []Message) [][]Message {
	n := g.N()
	for u := 0; u < n; u++ {
		sc.keys[u] = sc.canon(outbox[u])
	}
	for v := 0; v < n; v++ {
		sc.nb = g.NeighborsAppend(graph.NodeID(v), sc.nb[:0])
		sc.entries = sc.entries[:0]
		for _, u := range sc.nb {
			sc.entries = append(sc.entries, inboxEntry[K]{key: sc.keys[u], msg: outbox[u]})
		}
		// Stable by key with senders pre-sorted by NodeID: the same
		// delivery order the previous sort.SliceStable-per-inbox produced.
		// Inboxes of at most two messages — every node of a cycle or path,
		// the protocol families' common case — order with one comparison
		// instead of a generic sort call.
		if len(sc.entries) == 2 {
			if sc.entries[1].key < sc.entries[0].key {
				sc.entries[0], sc.entries[1] = sc.entries[1], sc.entries[0]
			}
		} else if len(sc.entries) > 2 {
			slices.SortStableFunc(sc.entries, func(a, b inboxEntry[K]) int {
				return cmp.Compare(a.key, b.key)
			})
		}
		in := sc.inboxes[v][:0]
		for i := range sc.entries {
			in = append(in, sc.entries[i].msg)
		}
		sc.inboxes[v] = in
	}
	return sc.inboxes
}
