// Package runtime executes synchronous round-based message-passing
// computations over dynamic networks, implementing the paper's Section 3
// model: every round has a send phase, in which each process broadcasts one
// message to its current neighbors through an anonymous broadcast with
// unlimited bandwidth, and a receive phase, in which it processes the
// multiset of messages delivered by its neighbors.
//
// Two interchangeable engines are provided. The sequential engine runs all
// processes in a deterministic loop. The concurrent engine runs one
// goroutine per process, with channel-based barriers separating the phases —
// goroutines map one-to-one onto the paper's processes. Tests cross-check
// that both engines produce identical executions.
//
// Anonymity is enforced structurally: a process is given only the multiset
// of messages it received, in an order canonicalized by the message
// encoding, never the identity of a sender.
package runtime

import (
	"errors"
	"fmt"
	"sort"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// Message is an opaque broadcast payload. The model's bandwidth is
// unlimited, so messages may be arbitrarily large values.
type Message any

// Process is one node's protocol logic. The engine calls Send in the send
// phase of every round and Receive in the receive phase with the multiset
// of messages broadcast by the node's current neighbors. Per the model, a
// process does not learn its degree |N(v,r)| until the receive phase —
// unless it opts in to the degree-oracle extension (see DegreeAware).
//
// Implementations must be deterministic: the lower bound assumes the
// adversary controls any randomness.
type Process interface {
	// Send returns the message to broadcast at round r.
	Send(r int) Message
	// Receive delivers the canonical-order multiset of neighbor messages
	// for round r.
	Receive(r int, msgs []Message)
}

// DegreeAware is the optional degree-oracle extension from the paper's
// Discussion (the model of [13]): a process implementing it is told its
// degree for round r before its Send(r) is requested. This single bit of
// extra knowledge collapses the counting lower bound to O(1) in restricted
// G(PD)_2 networks.
type DegreeAware interface {
	SetDegree(r, degree int)
}

// Outputter is implemented by processes (typically the leader) that
// eventually produce a terminal output, such as the network count.
type Outputter interface {
	// Output returns the process's output value and whether the process
	// has terminated with that output.
	Output() (int, bool)
}

// Canonicalizer converts a message to a canonical string used to sort each
// inbox, making delivery deterministic without leaking sender identity.
type Canonicalizer func(Message) string

// DefaultCanon formats the message with %#v. Protocol packages usually
// provide a cheaper, collision-free encoding of their own message type.
func DefaultCanon(m Message) string { return fmt.Sprintf("%#v", m) }

// Config describes an execution: a dynamic network, one process per node,
// and the run controls.
type Config struct {
	// Net supplies the per-round topology (and the node count).
	Net dynet.Dynamic
	// Adaptive, if non-nil, overrides Net's snapshots: at each round the
	// adversary chooses the topology after inspecting the round's
	// broadcasts — the paper's omniscient worst-case adversary, which
	// "has access to nodes' local variables" (for deterministic
	// protocols, the broadcasts determine the states, and broadcasts are
	// composed before the topology is known). The returned graph must
	// have Net.N() nodes. Adaptive cannot be combined with DegreeAware
	// processes: the degree oracle needs the topology before the send
	// phase, which an adaptive adversary fixes only after it.
	Adaptive func(r int, outbox []Message) *graph.Graph
	// Procs holds one Process per node; Procs[i] runs at node i.
	Procs []Process
	// Canon canonicalizes messages for deterministic delivery order.
	// Nil means DefaultCanon.
	Canon Canonicalizer
	// MaxRounds bounds the execution length.
	MaxRounds int
	// Stop, if non-nil, is evaluated after each round's receive phase;
	// returning true ends the run after that round.
	Stop func(completedRound int) bool
	// OnRound, if non-nil, is invoked after each round completes, for
	// tracing.
	OnRound func(completedRound int)
}

// topology returns the round's graph, honoring the adaptive adversary.
// outbox is the round's broadcasts; it is ignored for oblivious networks.
func (c *Config) topology(r int, outbox []Message) (*graph.Graph, error) {
	if c.Adaptive == nil {
		return c.Net.Snapshot(r), nil
	}
	g := c.Adaptive(r, outbox)
	if g == nil {
		return nil, fmt.Errorf("runtime: adaptive adversary returned nil graph at round %d", r)
	}
	if g.N() != c.Net.N() {
		return nil, fmt.Errorf("runtime: adaptive adversary returned %d nodes at round %d, want %d",
			g.N(), r, c.Net.N())
	}
	return g, nil
}

func (c *Config) validate() error {
	if c.Net == nil {
		return errors.New("runtime: nil network")
	}
	if len(c.Procs) != c.Net.N() {
		return fmt.Errorf("runtime: %d processes for %d nodes", len(c.Procs), c.Net.N())
	}
	for i, p := range c.Procs {
		if p == nil {
			return fmt.Errorf("runtime: nil process at node %d", i)
		}
		if c.Adaptive != nil {
			if _, ok := p.(DegreeAware); ok {
				return fmt.Errorf("runtime: process at node %d is DegreeAware, incompatible with an adaptive adversary", i)
			}
		}
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("runtime: negative MaxRounds %d", c.MaxRounds)
	}
	return nil
}

func (c *Config) canon() Canonicalizer {
	if c.Canon != nil {
		return c.Canon
	}
	return DefaultCanon
}

// assembleInboxes groups the round's broadcasts by receiver and sorts each
// inbox canonically. outbox[i] is the message node i broadcast on graph g.
func assembleInboxes(cfg *Config, g *graph.Graph, outbox []Message) [][]Message {
	n := g.N()
	canon := cfg.canon()
	inboxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(graph.NodeID(v))
		in := make([]Message, len(nb))
		for i, u := range nb {
			in[i] = outbox[u]
		}
		sort.SliceStable(in, func(a, b int) bool {
			return canon(in[a]) < canon(in[b])
		})
		inboxes[v] = in
	}
	return inboxes
}
