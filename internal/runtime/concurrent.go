package runtime

import (
	"sync"

	"anondyn/internal/graph"
)

// RunConcurrent executes the configured computation with one persistent
// goroutine per process. Within each round the coordinator releases all node
// goroutines into the send phase, waits at a barrier for every broadcast,
// assembles and delivers the inboxes, releases the receive phase, and waits
// again — exactly the synchronous semantics of the paper's model, realized
// with channels. All goroutines are joined before RunConcurrent returns.
//
// Executions are identical to RunSequential's: the phases are fully
// barrier-separated and delivery order is canonicalized, so the internal
// scheduling of goroutines is unobservable.
func RunConcurrent(cfg *Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	n := cfg.Net.N()
	if n == 0 || cfg.MaxRounds == 0 {
		return 0, nil
	}

	type roundWork struct {
		round  int
		degree int // -1 when the process is not DegreeAware
	}
	var (
		outbox  = make([]Message, n)
		inboxes [][]Message

		start   = make([]chan roundWork, n)
		deliver = make([]chan struct{}, n)
		quit    = make(chan struct{})
		sendWG  sync.WaitGroup
		recvWG  sync.WaitGroup
		nodeWG  sync.WaitGroup
	)
	for v := 0; v < n; v++ {
		start[v] = make(chan roundWork, 1)
		deliver[v] = make(chan struct{}, 1)
	}

	worker := func(v int) {
		defer nodeWG.Done()
		p := cfg.Procs[v]
		da, degreeAware := p.(DegreeAware)
		for work := range start[v] {
			if degreeAware {
				da.SetDegree(work.round, work.degree)
			}
			outbox[v] = p.Send(work.round)
			sendWG.Done()
			select {
			case <-deliver[v]:
			case <-quit:
				// The coordinator aborted between the phases (e.g. the
				// adaptive adversary returned an invalid topology).
				return
			}
			p.Receive(work.round, inboxes[v])
			recvWG.Done()
		}
	}
	nodeWG.Add(n)
	for v := 0; v < n; v++ {
		go worker(v)
	}
	stopWorkers := func() {
		for v := 0; v < n; v++ {
			close(start[v])
		}
		nodeWG.Wait()
	}
	abortWorkers := func() {
		close(quit)
		stopWorkers()
	}

	for r := 0; r < cfg.MaxRounds; r++ {
		var g *graph.Graph
		if cfg.Adaptive == nil {
			var err error
			if g, err = cfg.topology(r, nil); err != nil {
				stopWorkers()
				return r, err
			}
		}
		sendWG.Add(n)
		for v := 0; v < n; v++ {
			degree := -1
			if _, ok := cfg.Procs[v].(DegreeAware); ok {
				// validate() rejects DegreeAware + Adaptive, so g is set.
				degree = g.Degree(graph.NodeID(v))
			}
			start[v] <- roundWork{round: r, degree: degree}
		}
		sendWG.Wait()
		if cfg.Adaptive != nil {
			// The omniscient adversary fixes the topology knowing the
			// round's broadcasts.
			var err error
			if g, err = cfg.topology(r, outbox); err != nil {
				// Workers are parked between phases: release them.
				abortWorkers()
				return r, err
			}
		}

		inboxes = assembleInboxes(cfg, g, outbox)
		recvWG.Add(n)
		for v := 0; v < n; v++ {
			deliver[v] <- struct{}{}
		}
		recvWG.Wait()

		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if cfg.Stop != nil && cfg.Stop(r) {
			stopWorkers()
			return r + 1, nil
		}
	}
	stopWorkers()
	return cfg.MaxRounds, nil
}
