package runtime

import (
	"context"
	"runtime/debug"
	"sync"
	"time"

	"anondyn/internal/graph"
)

// RunConcurrent executes the configured computation with one persistent
// goroutine per process. Within each round the coordinator releases all node
// goroutines into the send phase, waits at a barrier for every broadcast,
// assembles and delivers the inboxes, releases the receive phase, and waits
// again — exactly the synchronous semantics of the paper's model, realized
// with channels. All goroutines are joined before RunConcurrent returns, on
// every path: normal completion, early stop, error, cancellation, deadline
// overrun, and process panic.
//
// Executions are identical to RunSequential's: the phases are fully
// barrier-separated and delivery order is canonicalized, so the internal
// scheduling of goroutines is unobservable. RunConcurrent is
// RunConcurrentCtx over context.Background().
func RunConcurrent(cfg *Config) (int, error) {
	return RunConcurrentCtx(context.Background(), cfg)
}

// RunConcurrentCtx is RunConcurrent under a context. Cancellation is
// observed at the top of every round, at the phase barriers, and between
// the send and receive phases, so a canceled run returns within one round
// (plus the time any in-flight protocol call needs to return). If
// Config.RoundDeadline is positive, a round that overruns it aborts the run
// with a *RoundDeadlineError. A panic in any process goroutine cancels the
// run, drains all sibling goroutines, and is surfaced as a
// *ProcessPanicError; the harness never crashes on a panicking protocol.
//
// For the same schedule, RunConcurrentCtx and RunSequentialCtx return the
// same round count and the same error.
func RunConcurrentCtx(ctx context.Context, cfg *Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	m := cfg.metrics()
	n := cfg.Net.N()
	if n == 0 || cfg.MaxRounds == 0 {
		return 0, nil
	}

	type roundWork struct {
		round  int
		degree int // -1 when the process is not DegreeAware
	}
	var (
		outbox = make([]Message, n)
		// Inboxes live in engine-owned scratch reused across rounds; the
		// round barriers give the required happens-before edges (assemble
		// precedes the deliver sends, and every Receive completes before
		// the coordinator's next assemble).
		sc = newAssembler(cfg, n)

		start = make([]chan roundWork, n)
		// deliver carries each worker's inbox slice for the round: an
		// explicit ownership handoff. Workers never read the coordinator's
		// scratch through a shared variable — the slice a worker receives
		// is exactly the one assembled for it, eliminating the aliasing
		// window a stale shared-slice read would open if the scratch were
		// ever regrown mid-phase.
		deliver = make([]chan []Message, n)
		quit    = make(chan struct{})
		// phaseDone carries one token per worker per completed phase. The
		// capacity covers a full phase, so workers never block on it even
		// when the coordinator aborts a barrier early.
		phaseDone = make(chan struct{}, n)
		// panics carries at most one entry per worker.
		panics = make(chan *ProcessPanicError, n)
		nodeWG sync.WaitGroup
	)
	for v := 0; v < n; v++ {
		start[v] = make(chan roundWork, 1)
		deliver[v] = make(chan []Message, 1)
	}

	worker := func(v int) {
		defer nodeWG.Done()
		round := 0
		defer func() {
			if rec := recover(); rec != nil {
				// A panicking worker reports instead of its phase token;
				// the coordinator's barrier picks the report up, aborts the
				// round, and releases everyone else.
				panics <- &ProcessPanicError{Node: v, Round: round, Value: rec, Stack: debug.Stack()}
			}
		}()
		p := cfg.Procs[v]
		da, degreeAware := p.(DegreeAware)
		for work := range start[v] {
			round = work.round
			if degreeAware {
				da.SetDegree(work.round, work.degree)
			}
			outbox[v] = p.Send(work.round)
			phaseDone <- struct{}{}
			var msgs []Message
			select {
			case msgs = <-deliver[v]:
			case <-quit:
				// The coordinator aborted between the phases: an invalid
				// adaptive topology, cancellation, a deadline overrun, or a
				// sibling's panic.
				return
			}
			p.Receive(work.round, msgs)
			phaseDone <- struct{}{}
		}
	}
	nodeWG.Add(n)
	for v := 0; v < n; v++ {
		go worker(v)
	}
	stopWorkers := func() {
		for v := 0; v < n; v++ {
			close(start[v])
		}
		nodeWG.Wait()
	}
	abortWorkers := func() {
		close(quit)
		stopWorkers()
	}

	for r := 0; r < cfg.MaxRounds; r++ {
		if err := ctx.Err(); err != nil {
			m.cancels.Inc()
			abortWorkers()
			return r, canceled(r, err)
		}
		obsStart := m.roundNS.Start()
		var (
			roundTimer *time.Timer
			deadlineC  <-chan time.Time
		)
		if cfg.RoundDeadline > 0 {
			roundTimer = time.NewTimer(cfg.RoundDeadline)
			deadlineC = roundTimer.C
		}
		// barrier collects one phase token per worker, or aborts the round
		// on a worker panic, context cancellation, or the round deadline.
		// Available tokens are drained before the abort conditions are
		// consulted, so an abort that races a completed phase resolves the
		// same way the sequential engine's between-phase checks do.
		barrier := func() error {
			for i := 0; i < n; i++ {
				select {
				case <-phaseDone:
					continue
				default:
				}
				select {
				case <-phaseDone:
				case p := <-panics:
					return p
				case <-ctx.Done():
					return canceled(r, ctx.Err())
				case <-deadlineC:
					return &RoundDeadlineError{Round: r, Limit: cfg.RoundDeadline}
				}
			}
			// A panic reported this phase wins over the phase tokens the
			// other workers produced, matching the sequential engine.
			select {
			case p := <-panics:
				return p
			default:
				return nil
			}
		}
		fail := func(err error) (int, error) {
			if roundTimer != nil {
				roundTimer.Stop()
			}
			m.recordFailure(err)
			abortWorkers()
			return r, err
		}

		var g *graph.Graph
		if cfg.Adaptive == nil {
			var err error
			if g, err = cfg.topology(r, nil); err != nil {
				if roundTimer != nil {
					roundTimer.Stop()
				}
				// Workers are idle between rounds: a plain join suffices.
				stopWorkers()
				return r, err
			}
		}
		for v := 0; v < n; v++ {
			degree := -1
			if _, ok := cfg.Procs[v].(DegreeAware); ok {
				// validate() rejects DegreeAware + Adaptive, so g is set.
				degree = g.Degree(graph.NodeID(v))
			}
			start[v] <- roundWork{round: r, degree: degree}
		}
		if err := barrier(); err != nil {
			return fail(err)
		}
		if err := ctx.Err(); err != nil {
			return fail(canceled(r, err))
		}
		if cfg.Adaptive != nil {
			// The omniscient adversary fixes the topology knowing the
			// round's broadcasts.
			var err error
			if g, err = cfg.topology(r, outbox); err != nil {
				// Workers are parked between the phases: release them.
				return fail(err)
			}
		}

		inboxes := sc.assemble(g, outbox)
		if m.messages != nil {
			m.messages.Add(delivered(inboxes))
		}
		for v := 0; v < n; v++ {
			msgs := inboxes[v]
			if cfg.CopyInboxes {
				// Caller-owned delivery: the worker's process may retain
				// this slice indefinitely.
				msgs = append([]Message(nil), msgs...)
			}
			deliver[v] <- msgs
		}
		if err := barrier(); err != nil {
			return fail(err)
		}
		if err := ctx.Err(); err != nil {
			return fail(canceled(r, err))
		}
		if roundTimer != nil {
			if !roundTimer.Stop() {
				// The deadline elapsed while the barriers were already
				// satisfied: the round still overran its budget.
				return fail(&RoundDeadlineError{Round: r, Limit: cfg.RoundDeadline})
			}
		}
		m.rounds.Inc()
		m.roundNS.Stop(obsStart)
		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if cfg.Stop != nil && cfg.Stop(r) {
			stopWorkers()
			return r + 1, nil
		}
	}
	stopWorkers()
	return cfg.MaxRounds, nil
}
