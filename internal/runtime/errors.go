package runtime

import "fmt"

func errIndex(i, n int) error {
	return fmt.Errorf("runtime: node index %d out of range [0,%d)", i, n)
}

func errNotOutputter(i int) error {
	return fmt.Errorf("runtime: process at node %d does not implement Outputter", i)
}
