package runtime

import (
	"fmt"
	"time"
)

func errIndex(i, n int) error {
	return fmt.Errorf("runtime: node index %d out of range [0,%d)", i, n)
}

func errNotOutputter(i int) error {
	return fmt.Errorf("runtime: process at node %d does not implement Outputter", i)
}

// ProcessPanicError reports that a Process panicked during a run. Both
// engines convert process panics into this error instead of crashing the
// harness: the sequential engine recovers around each protocol call, and
// the concurrent engine recovers inside each worker goroutine, cancels the
// round, and drains every sibling goroutine before returning.
type ProcessPanicError struct {
	// Node is the index of the panicking process.
	Node int
	// Round is the round in which the panic was raised.
	Round int
	// Value is the value passed to panic.
	Value any
	// Stack is the stack of the panicking call, captured at recover time.
	// It differs between engines (goroutine vs direct call) and is meant
	// for diagnostics, not comparison.
	Stack []byte
}

func (e *ProcessPanicError) Error() string {
	return fmt.Sprintf("runtime: process at node %d panicked in round %d: %v", e.Node, e.Round, e.Value)
}

// RoundDeadlineError reports that a single round exceeded
// Config.RoundDeadline. Rounds completed before the offending one are
// reported normally through the engines' round-count return value.
type RoundDeadlineError struct {
	// Round is the round that overran the deadline.
	Round int
	// Limit is the configured per-round deadline.
	Limit time.Duration
}

func (e *RoundDeadlineError) Error() string {
	return fmt.Sprintf("runtime: round %d exceeded the %v round deadline", e.Round, e.Limit)
}

// canceled wraps a context error so that both engines report cancellation
// with identical errors for the same schedule: errors.Is sees the
// underlying context.Canceled or context.DeadlineExceeded.
func canceled(r int, err error) error {
	return fmt.Errorf("runtime: run canceled before completing round %d: %w", r, err)
}
