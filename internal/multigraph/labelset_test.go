package multigraph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSetOf(t *testing.T) {
	s := SetOf(1, 3)
	if !s.Has(1) || s.Has(2) || !s.Has(3) {
		t.Fatalf("SetOf(1,3) = %v", s)
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2", s.Size())
	}
}

func TestSetOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetOf(0) did not panic")
		}
	}()
	SetOf(0)
}

func TestLabelSetHasOutOfRange(t *testing.T) {
	s := SetOf(1)
	if s.Has(0) || s.Has(MaxK+1) {
		t.Fatal("Has out-of-range label returned true")
	}
}

func TestLabelsAscending(t *testing.T) {
	s := SetOf(3, 1, 2)
	got := s.Labels()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		s    LabelSet
		k    int
		want bool
	}{
		{SetOf(1), 2, true},
		{SetOf(1, 2), 2, true},
		{SetOf(3), 2, false}, // label outside alphabet
		{0, 2, false},        // empty
		{SetOf(1), 0, false}, // bad k
		{SetOf(1), MaxK + 1, false},
	}
	for _, tc := range cases {
		if got := tc.s.Valid(tc.k); got != tc.want {
			t.Fatalf("Valid(%v, k=%d) = %v, want %v", tc.s, tc.k, got, tc.want)
		}
	}
}

func TestLabelSetString(t *testing.T) {
	if got := SetOf(1, 2).String(); got != "{1,2}" {
		t.Fatalf("String = %q", got)
	}
	if got := LabelSet(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestSymbolOrderMatchesPaper(t *testing.T) {
	// Paper's order for k=2: {1} < {2} < {1,2}.
	if SymbolIndex(SetOf(1)) != 0 || SymbolIndex(SetOf(2)) != 1 || SymbolIndex(SetOf(1, 2)) != 2 {
		t.Fatal("symbol order does not match the paper")
	}
	if SymbolCount(2) != 3 {
		t.Fatalf("SymbolCount(2) = %d", SymbolCount(2))
	}
	for i := 0; i < 3; i++ {
		if SymbolIndex(SymbolFromIndex(i)) != i {
			t.Fatalf("SymbolFromIndex/SymbolIndex not inverse at %d", i)
		}
	}
}

func TestAllSymbols(t *testing.T) {
	got := AllSymbols(2)
	want := []LabelSet{SetOf(1), SetOf(2), SetOf(1, 2)}
	if len(got) != len(want) {
		t.Fatalf("AllSymbols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllSymbols = %v, want %v", got, want)
		}
	}
	if n := len(AllSymbols(3)); n != 7 {
		t.Fatalf("AllSymbols(3) has %d entries, want 7", n)
	}
}

func TestHistoryBasics(t *testing.T) {
	h := History{SetOf(1), SetOf(1, 2)}
	if h.String() != "[⊥,{1},{1,2}]" {
		t.Fatalf("String = %q", h.String())
	}
	h2 := h.Extend(SetOf(2))
	if len(h2) != 3 || len(h) != 2 {
		t.Fatal("Extend mutated receiver or wrong length")
	}
	if !h2.Prefix(2).Equal(h) {
		t.Fatal("Prefix(2) != original")
	}
	if !h.Equal(History{SetOf(1), SetOf(1, 2)}) {
		t.Fatal("Equal failed on identical histories")
	}
	if h.Equal(h2) || h.Equal(History{SetOf(2), SetOf(1, 2)}) {
		t.Fatal("Equal true on different histories")
	}
	if h.Prefix(10).Equal(h2) {
		t.Fatal("over-long Prefix should clamp to the receiver")
	}
}

func TestHistoryKeyInjective(t *testing.T) {
	a := History{SetOf(1), SetOf(2)}
	b := History{SetOf(1, 2)}
	c := History{SetOf(1), SetOf(2)}
	if a.Key() == b.Key() {
		t.Fatal("distinct histories share a key")
	}
	if a.Key() != c.Key() {
		t.Fatal("equal histories have different keys")
	}
}

func TestHistoryIndexRoundTrip(t *testing.T) {
	for k := 1; k <= 3; k++ {
		for length := 0; length <= 3; length++ {
			total := HistoryCount(length, k)
			for i := 0; i < total; i++ {
				h := HistoryFromIndex(i, length, k)
				if got := h.Index(k); got != i {
					t.Fatalf("k=%d len=%d: Index(HistoryFromIndex(%d)) = %d", k, length, i, got)
				}
			}
		}
	}
}

func TestHistoryIndexPaperOrdering(t *testing.T) {
	// For k=2, length 2: first column is [{1},{1}], second [{1},{2}],
	// last [{1,2},{1,2}] (Section 4.2's lexicographic ordering).
	first := History{SetOf(1), SetOf(1)}
	second := History{SetOf(1), SetOf(2)}
	last := History{SetOf(1, 2), SetOf(1, 2)}
	if first.Index(2) != 0 || second.Index(2) != 1 || last.Index(2) != 8 {
		t.Fatalf("indices = %d %d %d, want 0 1 8", first.Index(2), second.Index(2), last.Index(2))
	}
}

func TestHistoryCountGrowth(t *testing.T) {
	// 3^{r+1} histories at round r for k=2 (the paper's column count).
	for r := 0; r <= 6; r++ {
		want := 1
		for i := 0; i <= r; i++ {
			want *= 3
		}
		if got := HistoryCount(r+1, 2); got != want {
			t.Fatalf("HistoryCount(%d,2) = %d, want %d", r+1, got, want)
		}
	}
}

func TestHistoryCountSaturatesAtMaxInt(t *testing.T) {
	// 3^39 < MaxInt64 < 3^40: length 39 is the last exact power, 40 the
	// first saturated one. Before the guard, 40 wrapped to a bogus
	// in-range value instead of saturating.
	exact := 1
	for i := 0; i < 39; i++ {
		exact *= 3
	}
	if got := HistoryCount(39, 2); got != exact {
		t.Fatalf("HistoryCount(39,2) = %d, want exact 3^39 = %d", got, exact)
	}
	for _, length := range []int{40, 41, 100, 1 << 20} {
		if got := HistoryCount(length, 2); got != math.MaxInt {
			t.Fatalf("HistoryCount(%d,2) = %d, want MaxInt saturation", length, got)
		}
	}
	// Monotonicity across the boundary — the property overflow broke.
	if HistoryCount(40, 2) < HistoryCount(39, 2) {
		t.Fatal("HistoryCount not monotone across the saturation boundary")
	}
	// k=3 (alphabet base 7) saturates earlier but the same way.
	if got := HistoryCount(100, 3); got != math.MaxInt {
		t.Fatalf("HistoryCount(100,3) = %d, want MaxInt saturation", got)
	}
}

func TestAllHistories(t *testing.T) {
	hs := AllHistories(2, 2)
	if len(hs) != 9 {
		t.Fatalf("AllHistories(2,2) has %d entries, want 9", len(hs))
	}
	for i, h := range hs {
		if h.Index(2) != i {
			t.Fatalf("history %d out of order", i)
		}
	}
}

func TestSortHistories(t *testing.T) {
	hs := []History{
		{SetOf(1, 2)},
		{SetOf(1)},
		{},
		{SetOf(1), SetOf(2)},
	}
	SortHistories(hs)
	if len(hs[0]) != 0 {
		t.Fatal("empty history should sort first")
	}
	if !hs[1].Equal(History{SetOf(1)}) || !hs[2].Equal(History{SetOf(1, 2)}) {
		t.Fatalf("sorted = %v", hs)
	}
}

// Property: Index is a bijection onto [0, HistoryCount) — round-tripping
// random histories is the identity.
func TestHistoryIndexBijectionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		const k = 2
		h := make(History, 0, len(raw)%6)
		for _, b := range raw {
			if len(h) >= 6 {
				break
			}
			h = append(h, SymbolFromIndex(int(b)%SymbolCount(k)))
		}
		idx := h.Index(k)
		back := HistoryFromIndex(idx, len(h), k)
		return back.Equal(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
