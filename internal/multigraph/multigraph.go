package multigraph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Multigraph is a finite-horizon dynamic bipartite labeled k-multigraph
// M ∈ ℳ(DBL)ₖ: node v ∈ W is connected to the leader at round r by one
// parallel edge per label in labels[v][r]. The horizon is the number of
// scheduled rounds; the lower-bound constructions only ever need a finite
// prefix.
type Multigraph struct {
	k       int
	horizon int
	labels  [][]LabelSet // labels[v][r]
}

// New validates and wraps a label schedule. Every node must have the same
// number of scheduled rounds and a valid (non-empty, within-alphabet) label
// set at each of them.
func New(k int, labels [][]LabelSet) (*Multigraph, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("multigraph: alphabet size k=%d out of range [1,%d]", k, MaxK)
	}
	horizon := 0
	if len(labels) > 0 {
		horizon = len(labels[0])
	}
	cp := make([][]LabelSet, len(labels))
	for v, row := range labels {
		if len(row) != horizon {
			return nil, fmt.Errorf("multigraph: node %d has %d rounds, want %d", v, len(row), horizon)
		}
		for r, s := range row {
			if !s.Valid(k) {
				return nil, fmt.Errorf("multigraph: node %d round %d has invalid label set %v for k=%d", v, r, uint32(s), k)
			}
		}
		cp[v] = append([]LabelSet(nil), row...)
	}
	return &Multigraph{k: k, horizon: horizon, labels: cp}, nil
}

// newOwned wraps a label schedule without validating or copying it. Internal
// constructors that build rows themselves (FromHistoryCounts, Extended) use
// it to skip New's defensive copy; the caller guarantees every row has
// length `horizon` with label sets valid for k, and cedes ownership (rows
// may be shared between nodes — a Multigraph never mutates or exposes its
// backing arrays).
func newOwned(k, horizon int, labels [][]LabelSet) *Multigraph {
	return &Multigraph{k: k, horizon: horizon, labels: labels}
}

// Extended returns a copy of m running `extra` additional rounds in which
// every node carries the label set fill. It is the allocation-light
// primitive behind core.Pair.Extend: one row allocation per node, no
// intermediate schedule.
func (m *Multigraph) Extended(extra int, fill LabelSet) (*Multigraph, error) {
	if extra < 0 {
		return nil, fmt.Errorf("multigraph: negative extension %d", extra)
	}
	if !fill.Valid(m.k) {
		return nil, fmt.Errorf("multigraph: invalid fill label set %v for k=%d", uint32(fill), m.k)
	}
	horizon := m.horizon + extra
	labels := make([][]LabelSet, len(m.labels))
	for v, row := range m.labels {
		nr := make([]LabelSet, horizon)
		copy(nr, row)
		for r := m.horizon; r < horizon; r++ {
			nr[r] = fill
		}
		labels[v] = nr
	}
	return newOwned(m.k, horizon, labels), nil
}

// FromHistoryCounts builds a multigraph from a count-per-history vector:
// counts[i] nodes follow the history HistoryFromIndex(i, length, k).
// This is how the kernel package's solution vectors s_r become concrete
// multigraphs (each count vector with non-negative entries is realizable,
// as used in Lemma 5's proof).
func FromHistoryCounts(k, length int, counts []int) (*Multigraph, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("multigraph: alphabet size k=%d out of range [1,%d]", k, MaxK)
	}
	if want := HistoryCount(length, k); len(counts) != want {
		return nil, fmt.Errorf("multigraph: %d counts for %d histories of length %d", len(counts), want, length)
	}
	total := 0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("multigraph: negative count %d for history %d", c, i)
		}
		total += c
	}
	labels := make([][]LabelSet, 0, total)
	for i, c := range counts {
		if c == 0 {
			continue // skip the (typically vast) unpopulated histories
		}
		// Nodes on the same history share one row; rows are never mutated
		// or exposed, so sharing is safe (see newOwned).
		h := HistoryFromIndex(i, length, k)
		for j := 0; j < c; j++ {
			labels = append(labels, []LabelSet(h))
		}
	}
	// HistoryFromIndex emits valid label sets by construction and every row
	// has length `length`, so the owned constructor applies. It also keeps
	// the requested horizon for W=0 multigraphs (a lone leader), which New
	// could not infer from an empty schedule.
	return newOwned(k, length, labels), nil
}

// Random returns a multigraph whose label sets are drawn uniformly from the
// valid symbols, seeded for reproducibility.
func Random(k, w, horizon int, seed int64) (*Multigraph, error) {
	rng := rand.New(rand.NewSource(seed))
	labels := make([][]LabelSet, w)
	symbols := SymbolCount(k)
	for v := range labels {
		row := make([]LabelSet, horizon)
		for r := range row {
			row[r] = SymbolFromIndex(rng.Intn(symbols))
		}
		labels[v] = row
	}
	return New(k, labels)
}

// K returns the label alphabet size.
func (m *Multigraph) K() int { return m.k }

// W returns |W|, the number of non-leader nodes. The counting problem asks
// the leader to output this value.
func (m *Multigraph) W() int { return len(m.labels) }

// Horizon returns the number of scheduled rounds.
func (m *Multigraph) Horizon() int { return m.horizon }

// LabelsAt returns L(v, r), the label set of node v at round r.
func (m *Multigraph) LabelsAt(v, r int) (LabelSet, error) {
	if v < 0 || v >= len(m.labels) {
		return 0, fmt.Errorf("multigraph: node %d out of range [0,%d)", v, len(m.labels))
	}
	if r < 0 || r >= m.horizon {
		return 0, fmt.Errorf("multigraph: round %d out of range [0,%d)", r, m.horizon)
	}
	return m.labels[v][r], nil
}

// StateOf returns S(v, r): node v's history of label sets through round
// r-1. StateOf(v, 0) is the empty (⊥) history.
func (m *Multigraph) StateOf(v, r int) (History, error) {
	if v < 0 || v >= len(m.labels) {
		return nil, fmt.Errorf("multigraph: node %d out of range [0,%d)", v, len(m.labels))
	}
	if r < 0 || r > m.horizon {
		return nil, fmt.Errorf("multigraph: round %d out of range [0,%d]", r, m.horizon)
	}
	return History(m.labels[v][:r]).Prefix(r), nil
}

// HistoryCounts returns the count-per-history vector for histories through
// round `length`: entry i is the number of nodes whose state history of
// length `length` has index i. This is the ground-truth solution vector s
// that the leader's linear system constrains.
func (m *Multigraph) HistoryCounts(length int) ([]int, error) {
	if length < 0 || length > m.horizon {
		return nil, fmt.Errorf("multigraph: length %d out of range [0,%d]", length, m.horizon)
	}
	counts := make([]int, HistoryCount(length, m.k))
	for v := range m.labels {
		counts[History(m.labels[v][:length]).Index(m.k)]++
	}
	return counts, nil
}

// Observation is C(v_l, r) (Definition 7): for each label j and each
// neighbor state S, the number of nodes with state S connected to the
// leader by an edge labeled j at round r. Keys are (label, state-key)
// pairs.
type Observation map[ObsKey]int

// ObsKey identifies one (label, neighbor-state) class within an
// observation.
type ObsKey struct {
	Label    int
	StateKey string
}

// LeaderObservation computes C(v_l, r) for round r: the multiset of
// (edge label, sender state) pairs the leader receives, assuming the
// canonical full-information protocol in which every node sends its state
// each round (the paper notes the leader state "can be constructed by a
// simple message passing protocol").
func (m *Multigraph) LeaderObservation(r int) (Observation, error) {
	if r < 0 || r >= m.horizon {
		return nil, fmt.Errorf("multigraph: round %d out of range [0,%d)", r, m.horizon)
	}
	obs := make(Observation)
	for v := range m.labels {
		state := History(m.labels[v][:r])
		key := state.Key()
		for _, j := range m.labels[v][r].Labels() {
			obs[ObsKey{Label: j, StateKey: key}]++
		}
	}
	return obs, nil
}

// LeaderView is the leader state S(v_l, rounds): the sequence of
// observations for rounds 0..rounds-1. Counting algorithms see only this.
type LeaderView []Observation

// LeaderView returns the leader's state after `rounds` completed rounds.
func (m *Multigraph) LeaderView(rounds int) (LeaderView, error) {
	if rounds < 0 || rounds > m.horizon {
		return nil, fmt.Errorf("multigraph: rounds %d out of range [0,%d]", rounds, m.horizon)
	}
	view := make(LeaderView, rounds)
	for r := 0; r < rounds; r++ {
		obs, err := m.LeaderObservation(r)
		if err != nil {
			return nil, err
		}
		view[r] = obs
	}
	return view, nil
}

// Canonical returns a canonical string encoding of the view. Two views are
// indistinguishable to the leader iff their canonical encodings are equal —
// this is the operational meaning of Lemma 5's "same state S(v_l, r)".
func (v LeaderView) Canonical() string {
	var sb strings.Builder
	for r, obs := range v {
		fmt.Fprintf(&sb, "r%d:", r)
		keys := make([]ObsKey, 0, len(obs))
		for k := range obs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Label != keys[j].Label {
				return keys[i].Label < keys[j].Label
			}
			return keys[i].StateKey < keys[j].StateKey
		})
		for _, k := range keys {
			fmt.Fprintf(&sb, "(%d,[%s])x%d;", k.Label, k.StateKey, obs[k])
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// Equal reports whether two leader views are identical.
func (v LeaderView) Equal(other LeaderView) bool {
	return v.Canonical() == other.Canonical()
}
