package multigraph

import "fmt"

// Relabel applies a permutation of the edge labels: perm[j-1] is the new
// label of old label j. Relabeling models the anonymity of the V₁ relay
// layer in the transformed 𝒢(PD)₂ graph — an anonymous leader cannot name
// labels, so views that differ only by a relabeling are indistinguishable
// to it. The receiver is not modified.
func (m *Multigraph) Relabel(perm []int) (*Multigraph, error) {
	if len(perm) != m.k {
		return nil, fmt.Errorf("multigraph: permutation length %d, want %d", len(perm), m.k)
	}
	seen := make([]bool, m.k)
	for _, p := range perm {
		if p < 1 || p > m.k || seen[p-1] {
			return nil, fmt.Errorf("multigraph: %v is not a permutation of 1..%d", perm, m.k)
		}
		seen[p-1] = true
	}
	labels := make([][]LabelSet, len(m.labels))
	for v, row := range m.labels {
		nr := make([]LabelSet, len(row))
		for r, s := range row {
			var ns LabelSet
			for _, j := range s.Labels() {
				ns |= 1 << (perm[j-1] - 1)
			}
			nr[r] = ns
		}
		labels[v] = nr
	}
	return New(m.k, labels)
}

// Permutations enumerates all permutations of 1..k, each usable with
// Relabel. Intended for small k (the lower bound already bites at k = 2).
func Permutations(k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for j := 1; j <= k; j++ {
			if used[j-1] {
				continue
			}
			used[j-1] = true
			cur = append(cur, j)
			rec()
			cur = cur[:len(cur)-1]
			used[j-1] = false
		}
	}
	rec()
	return out
}

// CanonicalUnderRelabeling returns the lexicographically least canonical
// view encoding over all label permutations: the information actually
// available to a leader that cannot name the anonymous V₁ relays. Two
// multigraphs whose views differ but share this invariant are
// indistinguishable in the fully anonymous 𝒢(PD)₂ setting.
func (m *Multigraph) CanonicalUnderRelabeling(rounds int) (string, error) {
	best := ""
	for _, perm := range Permutations(m.k) {
		rm, err := m.Relabel(perm)
		if err != nil {
			return "", err
		}
		view, err := rm.LeaderView(rounds)
		if err != nil {
			return "", err
		}
		c := view.Canonical()
		if best == "" || c < best {
			best = c
		}
	}
	return best, nil
}
