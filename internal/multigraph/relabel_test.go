package multigraph

import "testing"

func TestRelabelSwap(t *testing.T) {
	m, err := New(2, [][]LabelSet{
		{SetOf(1), SetOf(1, 2)},
		{SetOf(2), SetOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := m.Relabel([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := sw.LabelsAt(0, 0)
	if got != SetOf(2) {
		t.Fatalf("label after swap = %v, want {2}", got)
	}
	got, _ = sw.LabelsAt(0, 1)
	if got != SetOf(1, 2) {
		t.Fatalf("{1,2} should be fixed by swap, got %v", got)
	}
	got, _ = sw.LabelsAt(1, 0)
	if got != SetOf(1) {
		t.Fatalf("label after swap = %v, want {1}", got)
	}
	// Original untouched.
	orig, _ := m.LabelsAt(0, 0)
	if orig != SetOf(1) {
		t.Fatal("Relabel mutated receiver")
	}
}

func TestRelabelIdentity(t *testing.T) {
	m, err := Random(3, 4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Relabel([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	va, _ := m.LeaderView(3)
	vb, _ := id.LeaderView(3)
	if !va.Equal(vb) {
		t.Fatal("identity relabeling changed the view")
	}
}

func TestRelabelErrors(t *testing.T) {
	m, err := Random(2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]int{
		{1},    // wrong length
		{1, 1}, // not a permutation
		{0, 1}, // out of range
		{1, 3}, // out of range
	}
	for _, perm := range cases {
		if _, err := m.Relabel(perm); err == nil {
			t.Fatalf("Relabel(%v) should error", perm)
		}
	}
}

func TestPermutations(t *testing.T) {
	perms := Permutations(3)
	if len(perms) != 6 {
		t.Fatalf("got %d permutations of 3, want 6", len(perms))
	}
	seen := make(map[string]bool)
	for _, p := range perms {
		key := ""
		for _, x := range p {
			key += string(rune('0' + x))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
	if len(Permutations(1)) != 1 {
		t.Fatal("Permutations(1) should have one entry")
	}
}

func TestCanonicalUnderRelabeling(t *testing.T) {
	// Two single-node multigraphs that differ only by swapping labels 1
	// and 2 are indistinguishable to an anonymous leader.
	a, err := New(2, [][]LabelSet{{SetOf(1), SetOf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, [][]LabelSet{{SetOf(2), SetOf(2)}})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.CanonicalUnderRelabeling(2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalUnderRelabeling(2)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("relabel-equivalent views differ:\n%s\n%s", ca, cb)
	}
	// But the labeled views do differ.
	va, _ := a.LeaderView(2)
	vb, _ := b.LeaderView(2)
	if va.Equal(vb) {
		t.Fatal("labeled views should differ")
	}
}

func TestCanonicalUnderRelabelingDistinguishes(t *testing.T) {
	// {1},{2} histories vs {1},{1}: no relabeling makes these equal.
	a, err := New(2, [][]LabelSet{{SetOf(1), SetOf(2)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, [][]LabelSet{{SetOf(1), SetOf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.CanonicalUnderRelabeling(2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalUnderRelabeling(2)
	if err != nil {
		t.Fatal(err)
	}
	if ca == cb {
		t.Fatal("genuinely different views collapsed under relabeling")
	}
}

func TestCanonicalUnderRelabelingBadRounds(t *testing.T) {
	m, err := Random(2, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CanonicalUnderRelabeling(5); err == nil {
		t.Fatal("rounds beyond horizon should error")
	}
}
