package multigraph

import (
	"strings"
	"testing"
)

func TestStats(t *testing.T) {
	m, err := New(2, [][]LabelSet{
		{SetOf(1), SetOf(1, 2)},
		{SetOf(1), SetOf(1, 2)},
		{SetOf(2), SetOf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.K != 2 || s.W != 3 || s.Horizon != 2 {
		t.Fatalf("stats dims = %+v", s)
	}
	// Edges: 1+2 + 1+2 + 1+1 = 8.
	if s.Edges != 8 {
		t.Fatalf("edges = %d, want 8", s.Edges)
	}
	// Symbols: {1} x3... rows: {1},{1,2}; {1},{1,2}; {2},{1} →
	// {1}: 3, {2}: 1, {1,2}: 2.
	if s.SymbolCounts[0] != 3 || s.SymbolCounts[1] != 1 || s.SymbolCounts[2] != 2 {
		t.Fatalf("symbol counts = %v", s.SymbolCounts)
	}
	if s.DistinctHistories != 2 {
		t.Fatalf("distinct histories = %d, want 2", s.DistinctHistories)
	}
}

func TestStatsEmpty(t *testing.T) {
	m, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.W != 0 || s.Edges != 0 || s.DistinctHistories != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestStringRendering(t *testing.T) {
	m, err := New(2, [][]LabelSet{{SetOf(1), SetOf(1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	out := m.String()
	for _, want := range []string{"M(DBL_2) |W|=1 horizon=2", "v0: {1}, {1,2}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String missing %q:\n%s", want, out)
		}
	}
}
