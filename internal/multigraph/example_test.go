package multigraph_test

import (
	"fmt"

	"anondyn/internal/multigraph"
)

// Build the paper's Figure 3 multigraph M and inspect its leader state.
func ExampleNew() {
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2)},
		{multigraph.SetOf(1, 2)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	view, err := m.LeaderView(1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(view.Canonical())
	// Output: r0:(1,[])x2;(2,[])x2;|
}

// States follow Definition 6: S(v,r) lists the label sets seen through
// round r-1, rendered with the implicit initial ⊥.
func ExampleMultigraph_StateOf() {
	m, err := multigraph.New(2, [][]multigraph.LabelSet{
		{multigraph.SetOf(1), multigraph.SetOf(1, 2), multigraph.SetOf(2)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for r := 0; r <= 3; r++ {
		s, err := m.StateOf(0, r)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(s)
	}
	// Output:
	// [⊥]
	// [⊥,{1}]
	// [⊥,{1},{1,2}]
	// [⊥,{1},{1,2},{2}]
}

// The Lemma 1 transformation realizes a multigraph as a 𝒢(PD)₂ dynamic
// graph: leader, one relay per label, one node per W element.
func ExampleMultigraph_ToPD2() {
	m, err := multigraph.New(3, [][]multigraph.LabelSet{
		{multigraph.SetOf(1, 2, 3)},
		{multigraph.SetOf(1)},
		{multigraph.SetOf(2, 3)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	net, layout, err := m.ToPD2()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(net.N(), layout.Leader, layout.V1, layout.V2)
	fmt.Println(net.Snapshot(0))
	// Output:
	// 7 0 [1 2 3] [4 5 6]
	// n=7 edges=[{0,1} {0,2} {0,3} {1,4} {1,5} {2,4} {2,6} {3,4} {3,6}]
}
