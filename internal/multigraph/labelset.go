// Package multigraph implements the paper's dynamic bipartite labeled
// k-multigraphs, ℳ(DBL)ₖ (Section 4.1): a leader v_l and a set W of
// anonymous nodes, where at every round each node v ∈ W is connected to the
// leader by between 1 and k parallel edges carrying distinct labels from
// {1, ..., k}.
//
// A node's whole interaction with the leader at round r is its label set
// L(v,r) (Definition 5); its state S(v,r) is the history of label sets it
// has seen (Definition 6); and the leader's state is the per-round multiset
// of (label, neighbor-state) pairs (Definition 7). The lower bound machinery
// in internal/kernel operates on vectors indexed by these histories; this
// package realizes the combinatorics and the Lemma-1 transformation into
// 𝒢(PD)₂ dynamic graphs.
package multigraph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LabelSet is a non-empty subset of the edge labels {1, ..., k}, stored as a
// bitmask with bit i-1 representing label i. The zero value is the empty
// set, which is never a valid per-round label set (every node in W has at
// least one edge to the leader each round).
type LabelSet uint32

// MaxK is the largest supported label alphabet. The state space grows as
// (2^k - 1)^rounds, so large k is of purely theoretical interest.
const MaxK = 16

// SetOf builds a LabelSet from explicit labels (1-based).
// It panics on labels outside [1, MaxK]; use Valid to check built sets.
func SetOf(labels ...int) LabelSet {
	var s LabelSet
	for _, l := range labels {
		if l < 1 || l > MaxK {
			panic(fmt.Sprintf("multigraph: label %d out of range [1,%d]", l, MaxK))
		}
		s |= 1 << (l - 1)
	}
	return s
}

// Has reports whether label l is in the set.
func (s LabelSet) Has(l int) bool {
	if l < 1 || l > MaxK {
		return false
	}
	return s&(1<<(l-1)) != 0
}

// Size returns the number of labels in the set (the edge multiplicity
// |E^v(r)| of the node at that round).
func (s LabelSet) Size() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Labels returns the labels in ascending order.
func (s LabelSet) Labels() []int {
	out := make([]int, 0, s.Size())
	for l := 1; l <= MaxK; l++ {
		if s.Has(l) {
			out = append(out, l)
		}
	}
	return out
}

// Valid reports whether s is a legal per-round label set for alphabet size
// k: non-empty and within {1, ..., k}.
func (s LabelSet) Valid(k int) bool {
	if k < 1 || k > MaxK {
		return false
	}
	if s == 0 {
		return false
	}
	return s < 1<<k
}

// String renders the set in the paper's notation, e.g. "{1,2}".
func (s LabelSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range s.Labels() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", l)
	}
	sb.WriteByte('}')
	return sb.String()
}

// SymbolCount returns the number of possible per-round label sets for
// alphabet size k: 2^k - 1 (3 for the paper's k = 2 case).
func SymbolCount(k int) int { return (1 << k) - 1 }

// SymbolIndex returns the rank of s in the canonical symbol order.
// For k = 2 this is the paper's order {1} < {2} < {1,2}, which coincides
// with numeric bitmask order; we use bitmask order for every k.
func SymbolIndex(s LabelSet) int { return int(s) - 1 }

// SymbolFromIndex is the inverse of SymbolIndex.
func SymbolFromIndex(idx int) LabelSet { return LabelSet(idx + 1) }

// AllSymbols lists every valid label set for alphabet size k in canonical
// order.
func AllSymbols(k int) []LabelSet {
	out := make([]LabelSet, SymbolCount(k))
	for i := range out {
		out[i] = SymbolFromIndex(i)
	}
	return out
}

// History is a node state S(v,r): the ordered list of label sets the node
// observed at rounds 0, ..., r-1 (Definition 6). The implicit initial ⊥ is
// not stored. The empty history is the initial state of every node.
type History []LabelSet

// Equal reports element-wise equality.
func (h History) Equal(other History) bool {
	if len(h) != len(other) {
		return false
	}
	for i := range h {
		if h[i] != other[i] {
			return false
		}
	}
	return true
}

// Extend returns a new history with s appended; the receiver is not
// modified.
func (h History) Extend(s LabelSet) History {
	out := make(History, len(h)+1)
	copy(out, h)
	out[len(h)] = s
	return out
}

// Prefix returns the first n entries as a copy.
func (h History) Prefix(n int) History {
	if n > len(h) {
		n = len(h)
	}
	out := make(History, n)
	copy(out, h[:n])
	return out
}

// String renders the state in the paper's notation, e.g. "[⊥,{1},{1,2}]".
func (h History) String() string {
	var sb strings.Builder
	sb.WriteString("[⊥")
	for _, s := range h {
		sb.WriteByte(',')
		sb.WriteString(s.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Key returns a compact canonical encoding usable as a map key. Two
// histories have the same key iff they are Equal.
func (h History) Key() string {
	var sb strings.Builder
	for i, s := range h {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d", uint32(s))
	}
	return sb.String()
}

// Index returns the rank of h among all histories of the same length over
// alphabet size k, ordered lexicographically with the canonical symbol
// order (the paper's column ordering of M_r). The first entry is the most
// significant digit.
func (h History) Index(k int) int {
	base := SymbolCount(k)
	idx := 0
	for _, s := range h {
		idx = idx*base + SymbolIndex(s)
	}
	return idx
}

// HistoryFromIndex is the inverse of Index for histories of the given
// length.
func HistoryFromIndex(idx, length, k int) History {
	base := SymbolCount(k)
	h := make(History, length)
	for i := length - 1; i >= 0; i-- {
		h[i] = SymbolFromIndex(idx % base)
		idx /= base
	}
	return h
}

// HistoryCount returns the number of possible node states after `length`
// rounds with alphabet size k: (2^k - 1)^length, the paper's 3^{r+1} column
// count for k = 2. When the exact power exceeds math.MaxInt (length >= 40
// for k = 2) the result saturates at math.MaxInt instead of wrapping —
// callers sizing closed-form Σ⁻k_r quantities compare against it, and a
// wrapped (negative or small) count would silently pass those comparisons.
func HistoryCount(length, k int) int {
	base := SymbolCount(k)
	n := 1
	for i := 0; i < length; i++ {
		if n > math.MaxInt/base {
			return math.MaxInt
		}
		n *= base
	}
	return n
}

// AllHistories enumerates every history of the given length in canonical
// (index) order. Use with care: the count is exponential in length.
func AllHistories(length, k int) []History {
	total := HistoryCount(length, k)
	out := make([]History, total)
	for i := 0; i < total; i++ {
		out[i] = HistoryFromIndex(i, length, k)
	}
	return out
}

// SortHistories sorts histories in canonical order (shorter first, then by
// index). It is used to canonicalize multiset encodings.
func SortHistories(hs []History) {
	sort.Slice(hs, func(i, j int) bool {
		if len(hs[i]) != len(hs[j]) {
			return len(hs[i]) < len(hs[j])
		}
		for t := range hs[i] {
			if hs[i][t] != hs[j][t] {
				return hs[i][t] < hs[j][t]
			}
		}
		return false
	})
}
