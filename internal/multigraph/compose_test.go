package multigraph

import (
	"testing"
	"testing/quick"
)

func TestUnionBasics(t *testing.T) {
	a, err := Random(2, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(2, 5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.W() != 8 || u.Horizon() != 2 {
		t.Fatalf("union dims: W=%d H=%d", u.W(), u.Horizon())
	}
}

func TestUnionErrors(t *testing.T) {
	a, _ := Random(2, 2, 2, 1)
	b3, _ := Random(3, 2, 2, 1)
	bH, _ := Random(2, 2, 3, 1)
	if _, err := Union(a, b3); err == nil {
		t.Fatal("alphabet mismatch should error")
	}
	if _, err := Union(a, bH); err == nil {
		t.Fatal("horizon mismatch should error")
	}
}

// The additivity law: leader observations of a union are the pointwise sum
// of the parts' observations — the structural fact behind linearity of the
// paper's system of equations.
func TestUnionObservationAdditivity(t *testing.T) {
	f := func(seedA, seedB int64, rawW uint8) bool {
		wa, wb := int(rawW%4)+1, int(rawW%3)+1
		a, err := Random(2, wa, 3, seedA)
		if err != nil {
			return false
		}
		b, err := Random(2, wb, 3, seedB)
		if err != nil {
			return false
		}
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		for r := 0; r < 3; r++ {
			oa, err := a.LeaderObservation(r)
			if err != nil {
				return false
			}
			ob, err := b.LeaderObservation(r)
			if err != nil {
				return false
			}
			ou, err := u.LeaderObservation(r)
			if err != nil {
				return false
			}
			sum := make(Observation)
			for k, v := range oa {
				sum[k] += v
			}
			for k, v := range ob {
				sum[k] += v
			}
			if len(sum) != len(ou) {
				return false
			}
			for k, v := range sum {
				if ou[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatStates(t *testing.T) {
	a, err := New(2, [][]LabelSet{{SetOf(1)}, {SetOf(2)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, [][]LabelSet{{SetOf(1, 2)}, {SetOf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Horizon() != 2 || c.W() != 2 {
		t.Fatalf("concat dims: W=%d H=%d", c.W(), c.Horizon())
	}
	s, err := c.StateOf(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(History{SetOf(1), SetOf(1, 2)}) {
		t.Fatalf("state = %v", s)
	}
	// The concatenation agrees with a on its prefix.
	va, _ := a.LeaderView(1)
	vc, _ := c.LeaderView(1)
	if !va.Equal(vc) {
		t.Fatal("concat prefix view differs from a")
	}
}

func TestConcatErrors(t *testing.T) {
	a, _ := Random(2, 2, 1, 1)
	b3, _ := Random(3, 2, 1, 1)
	bW, _ := Random(2, 3, 1, 1)
	if _, err := Concat(a, b3); err == nil {
		t.Fatal("alphabet mismatch should error")
	}
	if _, err := Concat(a, bW); err == nil {
		t.Fatal("node-count mismatch should error")
	}
}

func TestTruncate(t *testing.T) {
	m, err := Random(2, 4, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Horizon() != 3 || p.W() != 4 {
		t.Fatalf("truncate dims: W=%d H=%d", p.W(), p.Horizon())
	}
	vm, _ := m.LeaderView(3)
	vp, _ := p.LeaderView(3)
	if !vm.Equal(vp) {
		t.Fatal("truncated view differs from prefix")
	}
	if _, err := m.Truncate(9); err == nil {
		t.Fatal("over-long truncate should error")
	}
}

// Concat(Truncate(m, t), suffix) reconstructs m when the suffix matches —
// a round-trip law tying the three operations together.
func TestComposeRoundTripLaw(t *testing.T) {
	m, err := Random(2, 3, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	head, err := m.Truncate(2)
	if err != nil {
		t.Fatal(err)
	}
	// Build the tail manually.
	tailRows := make([][]LabelSet, m.W())
	for v := 0; v < m.W(); v++ {
		for r := 2; r < 4; r++ {
			ls, err := m.LabelsAt(v, r)
			if err != nil {
				t.Fatal(err)
			}
			tailRows[v] = append(tailRows[v], ls)
		}
	}
	tail, err := New(2, tailRows)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Concat(head, tail)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := m.LeaderView(4)
	vb, _ := back.LeaderView(4)
	if !vm.Equal(vb) {
		t.Fatal("concat(truncate, tail) != original")
	}
}

func TestUnionEmptyParts(t *testing.T) {
	empty, err := FromHistoryCounts(2, 2, make([]int, 9))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Random(2, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(empty, a)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := a.LeaderView(2)
	vu, _ := u.LeaderView(2)
	if !va.Equal(vu) {
		t.Fatal("union with empty multigraph changed the view")
	}
}
