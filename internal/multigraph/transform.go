package multigraph

import (
	"fmt"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// PD2Layout describes the node placement of the Lemma-1 transformation from
// ℳ(DBL)ₖ to 𝒢(PD)₂: the leader is node 0 (V₀), the k relay nodes
// corresponding to edge labels 1..k occupy V₁, and the multigraph's W nodes
// occupy V₂.
type PD2Layout struct {
	// Leader is the leader node, always 0.
	Leader graph.NodeID
	// V1 holds the relay node for each label: V1[j-1] relays label j.
	V1 []graph.NodeID
	// V2 holds the node for each w ∈ W in multigraph order.
	V2 []graph.NodeID
}

// N returns the transformed network's node count: 1 + k + |W|.
func (l *PD2Layout) N() int { return 1 + len(l.V1) + len(l.V2) }

// ToPD2 performs the paper's Lemma-1 transformation: it builds the dynamic
// graph G^id ∈ 𝒢(PD)₂ in which node with identifier j in V₁ is connected at
// round r exactly to the W-nodes whose label set at round r contains j, and
// the leader is connected to all of V₁ at every round. Dropping the V₁
// identifiers (which the dynamic graph itself never carries — they exist
// only in the layout metadata) yields the anonymous instance G; counting on
// G is at least as hard as on G^id.
//
// Rounds at or beyond the multigraph's horizon repeat the final round's
// topology, making the result a legitimate infinite dynamic graph. A
// zero-horizon multigraph cannot be transformed.
func (m *Multigraph) ToPD2() (dynet.Dynamic, *PD2Layout, error) {
	if m.horizon == 0 {
		return nil, nil, fmt.Errorf("multigraph: cannot transform zero-horizon multigraph")
	}
	layout := &PD2Layout{Leader: 0}
	for j := 1; j <= m.k; j++ {
		layout.V1 = append(layout.V1, graph.NodeID(j))
	}
	for v := range m.labels {
		layout.V2 = append(layout.V2, graph.NodeID(1+m.k+v))
	}
	n := layout.N()

	snapshot := func(r int) *graph.Graph {
		if r < 0 {
			r = 0
		}
		if r >= m.horizon {
			r = m.horizon - 1
		}
		g := graph.New(n)
		for _, relay := range layout.V1 {
			// The leader-V₁ edges are static: V₁ nodes keep persistent
			// distance 1.
			if err := g.AddEdge(layout.Leader, relay); err != nil {
				panic(err) // unreachable: indices are in range by construction
			}
		}
		for v, row := range m.labels {
			for _, j := range row[r].Labels() {
				if err := g.AddEdge(layout.V1[j-1], layout.V2[v]); err != nil {
					panic(err) // unreachable
				}
			}
		}
		return g
	}
	return dynet.NewFunc(n, snapshot), layout, nil
}

// FromPD2 inverts the transformation: given a dynamic graph, a leader, an
// ordered list of V₁ relay nodes (the label assignment), and the V₂ nodes,
// it reads off the label schedule over the given number of rounds and
// reconstructs the ℳ(DBL)ₖ multigraph. It validates the structural
// constraints of the image of ToPD2: every V₂ node touches only V₁ nodes
// and has at least one edge per round, and the leader is connected to
// exactly V₁.
func FromPD2(d dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID, rounds int) (*Multigraph, error) {
	k := len(v1)
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("multigraph: |V1|=%d out of range [1,%d]", k, MaxK)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("multigraph: need at least one round, got %d", rounds)
	}
	labelOf := make(map[graph.NodeID]int, k)
	for j, relay := range v1 {
		labelOf[relay] = j + 1
	}
	labels := make([][]LabelSet, len(v2))
	for i := range labels {
		labels[i] = make([]LabelSet, rounds)
	}
	for r := 0; r < rounds; r++ {
		g := d.Snapshot(r)
		for _, relay := range v1 {
			if !g.HasEdge(leader, relay) {
				return nil, fmt.Errorf("multigraph: leader not connected to relay %d at round %d", relay, r)
			}
		}
		for i, w := range v2 {
			var s LabelSet
			for _, u := range g.Neighbors(w) {
				j, ok := labelOf[u]
				if !ok {
					return nil, fmt.Errorf("multigraph: V2 node %d adjacent to non-relay %d at round %d", w, u, r)
				}
				s |= 1 << (j - 1)
			}
			if s == 0 {
				return nil, fmt.Errorf("multigraph: V2 node %d isolated at round %d", w, r)
			}
			labels[i][r] = s
		}
	}
	return New(k, labels)
}
