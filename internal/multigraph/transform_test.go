package multigraph

import (
	"testing"

	"anondyn/internal/dynet"
)

// TestToPD2ExactPDClass asserts the transformation lands exactly in G(PD)₂
// — not merely within it — and that the layer partition is the paper's
// {v_l} ∪ V₁ ∪ V₂ with the right cardinalities, for several shapes
// including the single-node network and k = 3.
func TestToPD2ExactPDClass(t *testing.T) {
	cases := []struct {
		k, w, h int
		seed    int64
	}{
		{2, 1, 1, 1}, // single node, single round
		{2, 6, 4, 7},
		{3, 4, 3, 11},
		{1, 3, 2, 5},
	}
	for _, c := range cases {
		m, err := Random(c.k, c.w, c.h, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		d, layout, err := m.ToPD2()
		if err != nil {
			t.Fatal(err)
		}
		h, err := dynet.PDClass(d, layout.Leader, c.h)
		if err != nil {
			t.Fatalf("k=%d w=%d: %v", c.k, c.w, err)
		}
		if h != 2 {
			t.Errorf("k=%d w=%d: PDClass = %d, want exactly 2", c.k, c.w, h)
		}
		layers, err := dynet.LayerPartition(d, layout.Leader, c.h)
		if err != nil {
			t.Fatal(err)
		}
		if len(layers) != 3 || len(layers[0]) != 1 || len(layers[1]) != c.k || len(layers[2]) != c.w {
			t.Errorf("k=%d w=%d: layer sizes %d/%d/%d, want 1/%d/%d",
				c.k, c.w, len(layers[0]), len(layers[1]), len(layers[2]), c.k, c.w)
		}
		if layers[0][0] != layout.Leader {
			t.Errorf("layer 0 is %v, want leader %d", layers[0], layout.Leader)
		}
		if layout.N() != 1+c.k+c.w {
			t.Errorf("layout.N() = %d, want %d", layout.N(), 1+c.k+c.w)
		}
	}
}

// TestToPD2EdgesMatchLabels pins the defining edge rule: at every round the
// relay for label j touches exactly the W nodes whose label set contains j.
func TestToPD2EdgesMatchLabels(t *testing.T) {
	m, err := Random(2, 5, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	d, layout, err := m.ToPD2()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.Horizon(); r++ {
		g := d.Snapshot(r)
		for v := 0; v < m.W(); v++ {
			s, err := m.LabelsAt(v, r)
			if err != nil {
				t.Fatal(err)
			}
			for j := 1; j <= m.K(); j++ {
				want := s.Has(j)
				got := g.HasEdge(layout.V1[j-1], layout.V2[v])
				if got != want {
					t.Errorf("round %d node %d label %d: edge=%v, labels %v", r, v, j, got, s)
				}
			}
		}
	}
}
