package multigraph

import (
	"errors"
	"fmt"
)

// MaxIndexedRounds bounds the rounds an ObservationStream can serve: sender
// states are tracked by History.Index over base 3 (k = 2), which is exact in
// int64 only through length 39 (3^39 < 2^63 <= 3^40), so the stream serves
// rounds 0..MaxIndexedRounds-1 and then returns ErrIndexCapacity. Callers
// needing longer horizons fall back to LeaderObservation's string-keyed
// maps (internal/core does this transparently).
const MaxIndexedRounds = 39

// ErrIndexCapacity is returned by ObservationStream.Next once node-state
// indices would no longer fit in int64.
var ErrIndexCapacity = errors.New("multigraph: observation stream exhausted int64 state-index capacity")

// IndexedObsEntry is one (sender state, per-label counts) class of a leader
// observation for k = 2: State is History.Index(2) of the sender state,
// Count1/Count2 the number of senders whose label set that round contains
// label 1/label 2 (a node with {1,2} counts in both). Entries carry the
// same information as the Observation map without any string keys.
type IndexedObsEntry struct {
	State  int64
	Count1 int
	Count2 int
}

// ObservationStream produces the leader's per-round observations in indexed
// form, reusing its buffers across rounds. It is the allocation-light
// counterpart of calling LeaderObservation(r) for r = 0, 1, 2, ...: instead
// of rebuilding every node's history key each round, the stream maintains
// one running state index per node and extends it in O(1).
//
// Buffer ownership: the slice returned by Next is owned by the stream and
// is valid only until the next Next call — callers that retain entries
// across rounds must copy them. A stream is not safe for concurrent use.
type ObservationStream struct {
	m       *Multigraph
	r       int
	idx     []int64       // per-node History.Index of its current state
	pos     map[int64]int // state index -> position in entries (this round)
	entries []IndexedObsEntry
}

// NewObservationStream returns a stream positioned before round 0.
// Indexed observations are defined for the k = 2 instantiation the solver
// machinery targets; other alphabets get an error.
func (m *Multigraph) NewObservationStream() (*ObservationStream, error) {
	if m.k != 2 {
		return nil, fmt.Errorf("multigraph: observation stream requires k=2, got k=%d", m.k)
	}
	return &ObservationStream{
		m:   m,
		idx: make([]int64, len(m.labels)),
		pos: make(map[int64]int),
	}, nil
}

// Round returns the next round Next will serve.
func (s *ObservationStream) Round() int { return s.r }

// Next returns the indexed observation of the next round and advances the
// stream. The returned slice aliases stream-owned scratch (see the type
// comment). Entries appear in first-seen node order, so the output is
// deterministic for a fixed multigraph.
func (s *ObservationStream) Next() ([]IndexedObsEntry, error) {
	if s.r >= s.m.horizon {
		return nil, fmt.Errorf("multigraph: round %d out of range [0,%d)", s.r, s.m.horizon)
	}
	if s.r+1 > MaxIndexedRounds {
		return nil, ErrIndexCapacity
	}
	s.entries = s.entries[:0]
	clear(s.pos)
	for v, st := range s.idx {
		ls := s.m.labels[v][s.r]
		p, ok := s.pos[st]
		if !ok {
			p = len(s.entries)
			s.entries = append(s.entries, IndexedObsEntry{State: st})
			s.pos[st] = p
		}
		e := &s.entries[p]
		if ls&1 != 0 {
			e.Count1++
		}
		if ls&2 != 0 {
			e.Count2++
		}
		// Extend the node's history: index over base 3 with symbol index
		// LabelSet-1 (labelset.go's canonical order).
		s.idx[v] = 3*st + int64(ls) - 1
	}
	s.r++
	return s.entries, nil
}
