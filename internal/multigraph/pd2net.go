package multigraph

import (
	"fmt"
	"math/bits"

	"anondyn/internal/graph"
)

// PD2Net is the Lemma-1 transformation of a multigraph served natively in
// CSR form: a dynet.CSRDynamic whose SnapshotCSR builds each round's
// topology directly into reused flat buffers, with no per-round map graphs
// and no per-node allocations. It is the scale path of the transformation —
// a million-node ℳ(DBL)ₖ instance becomes a million-node 𝒢(PD)₂ network
// without materializing a million adjacency maps per round.
//
// The returned *graph.CSR is a snapshot view: it is valid until the next
// SnapshotCSR call, per the dynet.CSRDynamic contract. Snapshot (the
// map-graph accessor of the plain Dynamic interface) is also provided for
// small-scale and debugging use; it builds a fresh graph per call.
type PD2Net struct {
	m      *Multigraph
	layout *PD2Layout
	n      int

	// Round-build scratch, reused across SnapshotCSR calls.
	csr       graph.CSR
	cur       []int // per-row fill cursor
	lastRound int   // clamped round of the cached csr; -1 before first build
}

// ToPD2CSR performs the same transformation as ToPD2 but returns a PD2Net
// serving CSR snapshots. Rounds at or beyond the horizon repeat the final
// round's topology; a zero-horizon multigraph cannot be transformed.
func (m *Multigraph) ToPD2CSR() (*PD2Net, *PD2Layout, error) {
	if m.horizon == 0 {
		return nil, nil, fmt.Errorf("multigraph: cannot transform zero-horizon multigraph")
	}
	layout := &PD2Layout{Leader: 0}
	for j := 1; j <= m.k; j++ {
		layout.V1 = append(layout.V1, graph.NodeID(j))
	}
	for v := range m.labels {
		layout.V2 = append(layout.V2, graph.NodeID(1+m.k+v))
	}
	return &PD2Net{m: m, layout: layout, n: layout.N(), lastRound: -1}, layout, nil
}

// N returns 1 + k + |W|.
func (p *PD2Net) N() int { return p.n }

// clampRound maps any round to the scheduled horizon, repeating the final
// round forever — the same convention as ToPD2's snapshot function.
func (p *PD2Net) clampRound(r int) int {
	if r < 0 {
		r = 0
	}
	if r >= p.m.horizon {
		r = p.m.horizon - 1
	}
	return r
}

// Snapshot returns round r's topology as a map graph. Intended for debug
// and small instances; the engine's sharded path never calls it when
// SnapshotCSR is available.
func (p *PD2Net) Snapshot(r int) *graph.Graph {
	r = p.clampRound(r)
	g := graph.New(p.n)
	for _, relay := range p.layout.V1 {
		if err := g.AddEdge(p.layout.Leader, relay); err != nil {
			panic(err) // unreachable: indices are in range by construction
		}
	}
	for v, row := range p.m.labels {
		s := row[r]
		for j := 1; j <= p.m.k; j++ {
			if s.Has(j) {
				if err := g.AddEdge(p.layout.V1[j-1], p.layout.V2[v]); err != nil {
					panic(err) // unreachable
				}
			}
		}
	}
	return g
}

// SnapshotCSR returns round r's topology in CSR form, rebuilding into the
// net's own buffers. Row contents are ascending by construction: the leader
// row lists relays 1..k, each relay row lists the leader (node 0) followed
// by its W-nodes in multigraph order, and each W row lists its relays in
// label order.
func (p *PD2Net) SnapshotCSR(r int) *graph.CSR {
	r = p.clampRound(r)
	if r == p.lastRound {
		return &p.csr
	}
	k, n := p.m.k, p.n

	if cap(p.csr.Offsets) < n+1 {
		p.csr.Offsets = make([]int, n+1)
		p.cur = make([]int, n)
	}
	offsets := p.csr.Offsets[:n+1]
	cur := p.cur[:n]

	// Degree pass. offsets[i+1] temporarily holds deg(i).
	offsets[0] = 0
	offsets[1] = k // leader row
	for j := 1; j <= k; j++ {
		offsets[1+j] = 1 // each relay sees the leader
	}
	for v, row := range p.m.labels {
		s := uint32(row[r])
		d := bits.OnesCount32(s)
		offsets[1+k+v+1] = d
		for j := 1; j <= k; j++ {
			if row[r].Has(j) {
				offsets[1+j]++
			}
		}
	}
	// Prefix sum. Degrees are bounded by n-1 < MaxInt but the running total
	// is guarded anyway, matching the HistoryCount saturation convention:
	// a saturated total fails graph.CSR.Validate downstream instead of
	// wrapping silently.
	total := 0
	for i := 1; i <= n; i++ {
		total = satAddInt(total, offsets[i])
		offsets[i] = total
	}
	if cap(p.csr.Nbrs) < total {
		p.csr.Nbrs = make([]graph.NodeID, total)
	}
	nbrs := p.csr.Nbrs[:total]

	// Fill pass.
	for i := 0; i < n; i++ {
		cur[i] = offsets[i]
	}
	for j := 1; j <= k; j++ {
		nbrs[cur[0]] = graph.NodeID(j) // leader -> relay j
		cur[0]++
		nbrs[cur[j]] = 0 // relay j -> leader, first entry of the row
		cur[j]++
	}
	for v, row := range p.m.labels {
		s := row[r]
		w := graph.NodeID(1 + k + v)
		for j := 1; j <= k; j++ {
			if s.Has(j) {
				nbrs[cur[j]] = w // relay rows fill in ascending v
				cur[j]++
				nbrs[cur[int(w)]] = graph.NodeID(j) // W row fills in label order
				cur[int(w)]++
			}
		}
	}
	p.csr.Offsets, p.csr.Nbrs = offsets, nbrs
	p.lastRound = r
	return &p.csr
}

// satAddInt is the saturating addition used for offset accumulation,
// mirroring graph.satAdd (unexported there) and HistoryCount's convention.
func satAddInt(a, b int) int {
	const maxInt = int(^uint(0) >> 1)
	if a > maxInt-b {
		return maxInt
	}
	return a + b
}
