package multigraph

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

var _ dynet.CSRDynamic = (*PD2Net)(nil)

// sameTopology checks a CSR snapshot against a reference map graph edge for
// edge.
func sameTopology(t *testing.T, label string, c *graph.CSR, g *graph.Graph) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: invalid CSR: %v", label, err)
	}
	if c.N() != g.N() {
		t.Fatalf("%s: CSR has %d nodes, graph %d", label, c.N(), g.N())
	}
	for v := 0; v < g.N(); v++ {
		id := graph.NodeID(v)
		if c.Degree(id) != g.Degree(id) {
			t.Fatalf("%s: node %d degree %d vs %d", label, v, c.Degree(id), g.Degree(id))
		}
		for _, u := range c.Neighbors(id) {
			if !g.HasEdge(id, u) {
				t.Fatalf("%s: CSR edge (%d,%d) absent from graph", label, v, u)
			}
		}
	}
}

func TestPD2NetMatchesToPD2(t *testing.T) {
	for _, tc := range []struct {
		k, w, horizon int
		seed          int64
	}{
		{1, 4, 3, 1},
		{2, 7, 5, 2},
		{3, 12, 4, 3},
		{2, 1, 1, 4},
	} {
		m, err := Random(tc.k, tc.w, tc.horizon, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, refLayout, err := m.ToPD2()
		if err != nil {
			t.Fatal(err)
		}
		net, layout, err := m.ToPD2CSR()
		if err != nil {
			t.Fatal(err)
		}
		if net.N() != ref.N() || layout.N() != refLayout.N() {
			t.Fatalf("k=%d w=%d: N %d vs %d", tc.k, tc.w, net.N(), ref.N())
		}
		// Probe beyond the horizon too: both must repeat the final round.
		for r := 0; r < tc.horizon+2; r++ {
			g := ref.Snapshot(r)
			sameTopology(t, "csr", net.SnapshotCSR(r), g)
			// The map-graph accessor must agree as well.
			mg := net.Snapshot(r)
			for v := 0; v < g.N(); v++ {
				id := graph.NodeID(v)
				if mg.Degree(id) != g.Degree(id) {
					t.Fatalf("Snapshot: node %d degree %d vs %d", v, mg.Degree(id), g.Degree(id))
				}
			}
		}
	}
}

func TestPD2NetZeroHorizon(t *testing.T) {
	m := newOwned(2, 0, nil)
	if _, _, err := m.ToPD2CSR(); err == nil {
		t.Fatal("zero-horizon multigraph transformed")
	}
}

func TestPD2NetSnapshotReuse(t *testing.T) {
	m, err := Random(2, 32, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := m.ToPD2CSR()
	if err != nil {
		t.Fatal(err)
	}
	// Same round twice returns the identical cached snapshot.
	a := net.SnapshotCSR(3)
	if b := net.SnapshotCSR(3); a != b {
		t.Fatal("repeated SnapshotCSR of the same round rebuilt")
	}
	// Warm up every round, then a steady-state sweep must not allocate:
	// this is the property that lets the sharded engine run a million-node
	// round loop without per-round garbage from the topology side.
	for r := 0; r < 6; r++ {
		net.SnapshotCSR(r)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for r := 0; r < 6; r++ {
			net.SnapshotCSR(r)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state SnapshotCSR allocates %.1f/sweep, want 0", allocs)
	}
}

func TestSatAddIntSaturates(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	if got := satAddInt(maxInt-1, 1); got != maxInt {
		t.Fatalf("satAddInt(maxInt-1, 1) = %d", got)
	}
	if got := satAddInt(maxInt, 1); got != maxInt {
		t.Fatalf("satAddInt(maxInt, 1) = %d", got)
	}
	if got := satAddInt(3, 4); got != 7 {
		t.Fatalf("satAddInt(3, 4) = %d", got)
	}
}
