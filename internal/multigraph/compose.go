package multigraph

import "fmt"

// Union forms the node-disjoint union of two multigraphs over the same
// alphabet and horizon: the nodes of b are appended after the nodes of a.
// Leader observations are additive under union — the structural fact the
// linear system m_r = M_r s_r encodes, checked by property tests:
// Union(a,b).LeaderObservation(r) = a's + b's, pointwise.
func Union(a, b *Multigraph) (*Multigraph, error) {
	if a.k != b.k {
		return nil, fmt.Errorf("multigraph: union of k=%d and k=%d", a.k, b.k)
	}
	if a.horizon != b.horizon {
		return nil, fmt.Errorf("multigraph: union of horizons %d and %d", a.horizon, b.horizon)
	}
	labels := make([][]LabelSet, 0, len(a.labels)+len(b.labels))
	for _, row := range a.labels {
		labels = append(labels, append([]LabelSet(nil), row...))
	}
	for _, row := range b.labels {
		labels = append(labels, append([]LabelSet(nil), row...))
	}
	m, err := New(a.k, labels)
	if err != nil {
		return nil, err
	}
	if len(labels) == 0 {
		m.horizon = a.horizon
	}
	return m, nil
}

// Concat extends each node's schedule of a with the corresponding node's
// schedule of b (the two multigraphs must have the same alphabet and node
// count): the result plays a's rounds, then b's. A node's state history in
// the concatenation is its a-history followed by its b-labels.
func Concat(a, b *Multigraph) (*Multigraph, error) {
	if a.k != b.k {
		return nil, fmt.Errorf("multigraph: concat of k=%d and k=%d", a.k, b.k)
	}
	if len(a.labels) != len(b.labels) {
		return nil, fmt.Errorf("multigraph: concat of %d and %d nodes", len(a.labels), len(b.labels))
	}
	labels := make([][]LabelSet, len(a.labels))
	for v := range a.labels {
		row := make([]LabelSet, 0, a.horizon+b.horizon)
		row = append(row, a.labels[v]...)
		row = append(row, b.labels[v]...)
		labels[v] = row
	}
	m, err := New(a.k, labels)
	if err != nil {
		return nil, err
	}
	if len(labels) == 0 {
		m.horizon = a.horizon + b.horizon
	}
	return m, nil
}

// Truncate returns the prefix of the schedule through the given number of
// rounds.
func (m *Multigraph) Truncate(rounds int) (*Multigraph, error) {
	if rounds < 0 || rounds > m.horizon {
		return nil, fmt.Errorf("multigraph: truncate to %d rounds, horizon %d", rounds, m.horizon)
	}
	labels := make([][]LabelSet, len(m.labels))
	for v, row := range m.labels {
		labels[v] = append([]LabelSet(nil), row[:rounds]...)
	}
	out, err := New(m.k, labels)
	if err != nil {
		return nil, err
	}
	if len(labels) == 0 {
		out.horizon = rounds
	}
	return out, nil
}
