package multigraph

import (
	"fmt"
	"math"
)

// This file holds the combinatorial heart of the general-k ℳ(DBL)ₖ
// indistinguishability construction: the product-form kernel signs and the
// count vectors of the two indistinguishable configurations. The linear
// algebra lives in internal/kernel (which imports this package); the pair
// assembly lives in internal/core.

// symbolSign returns the kernel sign of the symbol with the given index:
// +1 when the label set (index+1 as a bitmask) has odd size, -1 when even.
// For k = 2 this is the paper's Lemma-3 rule (+1 for {1} and {2}, -1 for
// {1,2}); for general k the product of these signs over a history is a
// kernel vector of M_r because every label j appears in as many odd-sized
// sets as even-sized sets — Σ_{S ∋ j} sign(S) = 0 — while Σ_S sign(S) = 1.
func symbolSign(idx int) int8 {
	if LabelSet(idx+1).Size()%2 == 1 {
		return 1
	}
	return -1
}

// HistorySigns returns the sign of every history of the given length over
// alphabet size k, indexed exactly like HistoryFromIndex: entry c is the
// product of the symbol signs along the history with index c. The result is
// the closed-form kernel of the round-(length-1) coefficient matrix for
// every k >= 2, specializing to kernel.ClosedFormKernelSigns at k = 2.
func HistorySigns(length, k int) ([]int8, error) {
	if k < 2 || k > MaxK {
		return nil, fmt.Errorf("multigraph: kernel signs need alphabet size in [2,%d], got %d", MaxK, k)
	}
	if length < 0 {
		return nil, fmt.Errorf("multigraph: negative history length %d", length)
	}
	total := HistoryCount(length, k)
	if total == math.MaxInt {
		return nil, fmt.Errorf("multigraph: history space for length %d, k=%d overflows", length, k)
	}
	base := SymbolCount(k)
	// Precompute per-symbol signs once; histories then reduce over digits.
	signs := make([]int8, base)
	for s := 0; s < base; s++ {
		signs[s] = symbolSign(s)
	}
	out := make([]int8, total)
	for c := 0; c < total; c++ {
		sign := int8(1)
		for x := c; x > 0; x /= base {
			sign *= signs[x%base]
		}
		out[c] = sign
	}
	return out, nil
}

// IndistinguishableCounts returns the history-count vectors of the Lemma-5
// pair generalized to alphabet size k: two non-negative vectors over the
// histories of length `rounds` whose difference is exactly the kernel
// HistorySigns(rounds, k), with totals n and n+1. Placing one node on every
// negative-sign history ((B^rounds - 1)/2 of them for B = 2^k - 1, surplus
// parked on the first) makes both configurations realizable, and the kernel
// property makes their leader views identical through `rounds` rounds.
func IndistinguishableCounts(k, rounds, n int) (counts, countsPrime []int, err error) {
	if rounds < 1 {
		return nil, nil, fmt.Errorf("multigraph: rounds must be >= 1, got %d", rounds)
	}
	kv, err := HistorySigns(rounds, k)
	if err != nil {
		return nil, nil, err
	}
	counts = make([]int, len(kv))
	placed := 0
	firstNeg := -1
	for i, s := range kv {
		if s < 0 {
			counts[i] = 1
			placed++
			if firstNeg == -1 {
				firstNeg = i
			}
		}
	}
	if firstNeg == -1 {
		// Unreachable for k >= 2, rounds >= 1: {1,2} (index 2) is negative.
		return nil, nil, fmt.Errorf("multigraph: internal: kernel has no negative support")
	}
	if placed > n {
		return nil, nil, fmt.Errorf("multigraph: negative kernel support %d exceeds n=%d (size %d sustains fewer than %d rounds at k=%d)",
			placed, n, n, rounds, k)
	}
	counts[firstNeg] += n - placed
	countsPrime = make([]int, len(kv))
	for i := range counts {
		countsPrime[i] = counts[i] + int(kv[i])
	}
	return counts, countsPrime, nil
}
