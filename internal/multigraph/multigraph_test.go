package multigraph

import (
	"testing"
	"testing/quick"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// figure3M returns the paper's Figure 3 multigraph M: two nodes, both with
// label set {1,2} at round 0 (s_0 = [0 0 2]).
func figure3M(t *testing.T) *Multigraph {
	t.Helper()
	m, err := New(2, [][]LabelSet{
		{SetOf(1, 2)},
		{SetOf(1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// figure3MPrime returns the paper's Figure 3 multigraph M': four nodes, two
// with {1} and two with {2} at round 0 (s_0' = [2 2 0]).
func figure3MPrime(t *testing.T) *Multigraph {
	t.Helper()
	m, err := New(2, [][]LabelSet{
		{SetOf(1)},
		{SetOf(1)},
		{SetOf(2)},
		{SetOf(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := New(MaxK+1, nil); err == nil {
		t.Fatal("k too large should error")
	}
	if _, err := New(2, [][]LabelSet{{SetOf(1)}, {}}); err == nil {
		t.Fatal("ragged horizon should error")
	}
	if _, err := New(2, [][]LabelSet{{0}}); err == nil {
		t.Fatal("empty label set should error")
	}
	if _, err := New(2, [][]LabelSet{{SetOf(3)}}); err == nil {
		t.Fatal("label outside alphabet should error")
	}
}

func TestNewCopiesInput(t *testing.T) {
	rows := [][]LabelSet{{SetOf(1)}}
	m, err := New(2, rows)
	if err != nil {
		t.Fatal(err)
	}
	rows[0][0] = SetOf(2)
	got, err := m.LabelsAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != SetOf(1) {
		t.Fatal("New aliased caller's slice")
	}
}

func TestAccessors(t *testing.T) {
	m := figure3M(t)
	if m.K() != 2 || m.W() != 2 || m.Horizon() != 1 {
		t.Fatalf("K=%d W=%d Horizon=%d", m.K(), m.W(), m.Horizon())
	}
	s, err := m.LabelsAt(1, 0)
	if err != nil || s != SetOf(1, 2) {
		t.Fatalf("LabelsAt = (%v, %v)", s, err)
	}
	if _, err := m.LabelsAt(5, 0); err == nil {
		t.Fatal("bad node should error")
	}
	if _, err := m.LabelsAt(0, 9); err == nil {
		t.Fatal("bad round should error")
	}
}

func TestStateOf(t *testing.T) {
	m, err := New(2, [][]LabelSet{{SetOf(1), SetOf(2), SetOf(1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := m.StateOf(0, 0)
	if err != nil || len(s0) != 0 {
		t.Fatalf("StateOf(0,0) = (%v, %v), want empty", s0, err)
	}
	s2, err := m.StateOf(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equal(History{SetOf(1), SetOf(2)}) {
		t.Fatalf("StateOf(0,2) = %v", s2)
	}
	if _, err := m.StateOf(0, 4); err == nil {
		t.Fatal("round beyond horizon should error")
	}
	if _, err := m.StateOf(9, 0); err == nil {
		t.Fatal("bad node should error")
	}
}

func TestHistoryCounts(t *testing.T) {
	m := figure3MPrime(t)
	counts, err := m.HistoryCounts(1)
	if err != nil {
		t.Fatal(err)
	}
	// s_0' = [2 2 0]: two nodes with {1}, two with {2}, none with {1,2}.
	want := []int{2, 2, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if _, err := m.HistoryCounts(5); err == nil {
		t.Fatal("length beyond horizon should error")
	}
}

func TestFromHistoryCountsRoundTrip(t *testing.T) {
	counts := []int{1, 0, 2} // one {1}, two {1,2}
	m, err := FromHistoryCounts(2, 1, counts)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 {
		t.Fatalf("W = %d, want 3", m.W())
	}
	back, err := m.HistoryCounts(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if back[i] != counts[i] {
			t.Fatalf("round trip = %v, want %v", back, counts)
		}
	}
}

func TestFromHistoryCountsErrors(t *testing.T) {
	if _, err := FromHistoryCounts(2, 1, []int{1, 2}); err == nil {
		t.Fatal("wrong count length should error")
	}
	if _, err := FromHistoryCounts(2, 1, []int{1, -1, 0}); err == nil {
		t.Fatal("negative count should error")
	}
}

func TestFigure3Indistinguishable(t *testing.T) {
	// Figure 3: M (2 nodes) and M' (4 nodes) give the same leader state at
	// round 0: both produce |(1,[⊥])| = 2, |(2,[⊥])| = 2.
	m := figure3M(t)
	mp := figure3MPrime(t)
	vm, err := m.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := mp.LeaderView(1)
	if err != nil {
		t.Fatal(err)
	}
	if !vm.Equal(vp) {
		t.Fatalf("Figure 3 views differ:\n%s\n%s", vm.Canonical(), vp.Canonical())
	}
}

func TestLeaderObservationContents(t *testing.T) {
	m := figure3M(t)
	obs, err := m.LeaderObservation(0)
	if err != nil {
		t.Fatal(err)
	}
	emptyKey := History{}.Key()
	if obs[ObsKey{Label: 1, StateKey: emptyKey}] != 2 {
		t.Fatalf("obs = %v", obs)
	}
	if obs[ObsKey{Label: 2, StateKey: emptyKey}] != 2 {
		t.Fatalf("obs = %v", obs)
	}
	if _, err := m.LeaderObservation(9); err == nil {
		t.Fatal("bad round should error")
	}
}

func TestLeaderViewErrors(t *testing.T) {
	m := figure3M(t)
	if _, err := m.LeaderView(9); err == nil {
		t.Fatal("rounds beyond horizon should error")
	}
	if _, err := m.LeaderView(-1); err == nil {
		t.Fatal("negative rounds should error")
	}
}

func TestLeaderViewDistinguishesDifferentSchedules(t *testing.T) {
	a, err := New(2, [][]LabelSet{{SetOf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, [][]LabelSet{{SetOf(2)}})
	if err != nil {
		t.Fatal(err)
	}
	va, _ := a.LeaderView(1)
	vb, _ := b.LeaderView(1)
	if va.Equal(vb) {
		t.Fatal("distinct single-node schedules should be distinguishable")
	}
}

func TestRandomMultigraphValid(t *testing.T) {
	m, err := Random(3, 10, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 10 || m.Horizon() != 5 || m.K() != 3 {
		t.Fatalf("Random dims wrong: W=%d H=%d K=%d", m.W(), m.Horizon(), m.K())
	}
	for v := 0; v < m.W(); v++ {
		for r := 0; r < m.Horizon(); r++ {
			s, err := m.LabelsAt(v, r)
			if err != nil || !s.Valid(3) {
				t.Fatalf("invalid label set at (%d,%d): %v %v", v, r, s, err)
			}
		}
	}
	// Deterministic per seed.
	m2, err := Random(3, 10, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := m.LeaderView(5)
	vb, _ := m2.LeaderView(5)
	if !va.Equal(vb) {
		t.Fatal("Random not deterministic per seed")
	}
}

func TestToPD2StructureAndDistances(t *testing.T) {
	m, err := Random(2, 6, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, layout, err := m.ToPD2()
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 1+2+6 {
		t.Fatalf("N = %d, want 9", d.N())
	}
	// The transformed graph is in G(PD)_2: leader at 0, relays at 1,
	// W nodes at 2, across all rounds.
	dist, err := dynet.VerifyPersistentDistance(d, layout.Leader, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, relay := range layout.V1 {
		if dist[relay] != 1 {
			t.Fatalf("relay %d at distance %d", relay, dist[relay])
		}
	}
	for _, w := range layout.V2 {
		if dist[w] != 2 {
			t.Fatalf("W node %d at distance %d", w, dist[w])
		}
	}
	if err := dynet.VerifyIntervalConnectivity(d, 4); err != nil {
		t.Fatal(err)
	}
}

func TestToPD2ClampsBeyondHorizon(t *testing.T) {
	m := figure3M(t)
	d, _, err := m.ToPD2()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Snapshot(0).Equal(d.Snapshot(100)) {
		t.Fatal("rounds beyond the horizon should repeat the final topology")
	}
	if !d.Snapshot(-1).Equal(d.Snapshot(0)) {
		t.Fatal("negative rounds should clamp to 0")
	}
}

func TestToPD2ZeroHorizon(t *testing.T) {
	m, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ToPD2(); err == nil {
		t.Fatal("zero-horizon transform should error")
	}
}

func TestFromPD2RoundTrip(t *testing.T) {
	m, err := Random(2, 5, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	d, layout, err := m.ToPD2()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromPD2(d, layout.Leader, layout.V1, layout.V2, 3)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := m.LeaderView(3)
	vb, _ := back.LeaderView(3)
	if !va.Equal(vb) {
		t.Fatal("FromPD2(ToPD2(m)) view differs from m")
	}
	for v := 0; v < m.W(); v++ {
		for r := 0; r < 3; r++ {
			a, _ := m.LabelsAt(v, r)
			b, _ := back.LabelsAt(v, r)
			if a != b {
				t.Fatalf("label mismatch at (%d,%d): %v vs %v", v, r, a, b)
			}
		}
	}
}

func TestFromPD2Errors(t *testing.T) {
	m := figure3M(t)
	d, layout, err := m.ToPD2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromPD2(d, layout.Leader, nil, layout.V2, 1); err == nil {
		t.Fatal("empty V1 should error")
	}
	if _, err := FromPD2(d, layout.Leader, layout.V1, layout.V2, 0); err == nil {
		t.Fatal("zero rounds should error")
	}
	// Wrong relay set: leader not connected to claimed relay.
	if _, err := FromPD2(d, layout.Leader, []graph.NodeID{3, 4}, layout.V2, 1); err == nil {
		t.Fatal("wrong relays should error")
	}
	// A V2 node adjacent to something outside V1 must be rejected: feed a
	// graph where a W node touches the leader directly.
	bad := dynet.NewFunc(d.N(), func(int) *graph.Graph {
		g := d.Snapshot(0).Clone()
		if err := g.AddEdge(layout.Leader, layout.V2[0]); err != nil {
			t.Fatal(err)
		}
		return g
	})
	if _, err := FromPD2(bad, layout.Leader, layout.V1, layout.V2, 1); err == nil {
		t.Fatal("V2 node adjacent to leader should error")
	}
}

// Property: FromHistoryCounts always produces a multigraph whose
// HistoryCounts round-trips, for random small count vectors.
func TestFromHistoryCountsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		const k, length = 2, 2
		want := HistoryCount(length, k)
		counts := make([]int, want)
		for i := 0; i < want && i < len(raw); i++ {
			counts[i] = int(raw[i] % 4)
		}
		m, err := FromHistoryCounts(k, length, counts)
		if err != nil {
			return false
		}
		back, err := m.HistoryCounts(length)
		if err != nil {
			return false
		}
		for i := range counts {
			if back[i] != counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the Lemma 1 transformation round-trips losslessly for random
// schedules and alphabets.
func TestToPD2RoundTripProperty(t *testing.T) {
	f := func(seed int64, rawK, rawW uint8) bool {
		k := int(rawK%3) + 1
		w := int(rawW%6) + 1
		m, err := Random(k, w, 3, seed)
		if err != nil {
			return false
		}
		d, layout, err := m.ToPD2()
		if err != nil {
			return false
		}
		back, err := FromPD2(d, layout.Leader, layout.V1, layout.V2, 3)
		if err != nil {
			return false
		}
		for v := 0; v < w; v++ {
			for r := 0; r < 3; r++ {
				a, _ := m.LabelsAt(v, r)
				b, _ := back.LabelsAt(v, r)
				if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
