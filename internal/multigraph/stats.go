package multigraph

import (
	"fmt"
	"strings"
)

// Stats summarizes a multigraph's schedule.
type Stats struct {
	// K is the label alphabet size.
	K int
	// W is the number of non-leader nodes.
	W int
	// Horizon is the number of scheduled rounds.
	Horizon int
	// Edges is the total number of (node, round, label) edges.
	Edges int
	// SymbolCounts[i] counts how often symbol i (canonical order) occurs
	// across all nodes and rounds.
	SymbolCounts []int
	// DistinctHistories is the number of distinct full histories.
	DistinctHistories int
}

// Stats computes summary statistics of the schedule.
func (m *Multigraph) Stats() Stats {
	s := Stats{
		K:            m.k,
		W:            len(m.labels),
		Horizon:      m.horizon,
		SymbolCounts: make([]int, SymbolCount(m.k)),
	}
	seen := make(map[string]bool)
	for _, row := range m.labels {
		for _, ls := range row {
			s.Edges += ls.Size()
			s.SymbolCounts[SymbolIndex(ls)]++
		}
		seen[History(row).Key()] = true
	}
	s.DistinctHistories = len(seen)
	return s
}

// String renders the multigraph compactly, one node per line:
// "v3: {1},{1,2},{2}".
func (m *Multigraph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "M(DBL_%d) |W|=%d horizon=%d\n", m.k, len(m.labels), m.horizon)
	for v, row := range m.labels {
		fmt.Fprintf(&sb, "  v%d:", v)
		for r, ls := range row {
			if r > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte(' ')
			sb.WriteString(ls.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
