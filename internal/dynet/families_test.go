package dynet

import (
	"strings"
	"testing"

	"anondyn/internal/graph"
)

// TestFamiliesConformance is the dynet-level conformance suite: every
// registered family, at several sizes and seeds, must satisfy every property
// it declares. The registry's Props field is the contract — a family that
// advertises a guarantee its snapshots violate fails here.
func TestFamiliesConformance(t *testing.T) {
	sizes := []int{1, 2, 5, 9, 16}
	seeds := []int64{1, 7, 42}
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for _, n := range sizes {
				for _, seed := range seeds {
					d, err := fam.Build(n, seed)
					if err != nil {
						t.Fatalf("Build(n=%d, seed=%d): %v", n, seed, err)
					}
					if err := VerifyProperties(d, fam.Props, 20); err != nil {
						t.Errorf("n=%d seed=%d: %v", n, seed, err)
					}
					// A family that self-declares via PropertyCarrier must
					// agree with what the registry advertises for it.
					if pc, ok := d.(PropertyCarrier); ok {
						if pc.Properties() != fam.Props {
							t.Errorf("n=%d seed=%d: carrier properties %+v != registry %+v",
								n, seed, pc.Properties(), fam.Props)
						}
					}
				}
			}
		})
	}
}

// TestTIntervalWindowLaw pins the stability-window law directly: within an
// aligned window every snapshot equals the window-start graph, and
// consecutive windows draw different graphs (for n large enough that a
// repeat is astronomically unlikely at these seeds).
func TestTIntervalWindowLaw(t *testing.T) {
	d, err := NewTInterval(9, 4, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window() != 4 {
		t.Fatalf("Window() = %d, want 4", d.Window())
	}
	for r := 0; r < 24; r++ {
		base := d.Snapshot(r - r%4)
		if !d.Snapshot(r).Equal(base) {
			t.Fatalf("round %d differs from its window start %d", r, r-r%4)
		}
	}
	if d.Snapshot(0).Equal(d.Snapshot(4)) {
		t.Error("windows 0 and 1 drew identical graphs; expected a fresh draw at the boundary")
	}
	if !d.Snapshot(3).Equal(d.Snapshot(0)) || d.Snapshot(4).Equal(d.Snapshot(7)) == false {
		t.Error("window membership mismatch at the 3/4 boundary")
	}
}

// TestTIntervalRejectsBadParams covers constructor validation.
func TestTIntervalRejectsBadParams(t *testing.T) {
	cases := []struct {
		n, win int
		p      float64
	}{
		{0, 3, 0.2}, {5, 0, 0.2}, {5, 3, -0.1}, {5, 3, 1.5},
	}
	for _, c := range cases {
		if _, err := NewTInterval(c.n, c.win, c.p, 1); err == nil {
			t.Errorf("NewTInterval(%d, %d, %v) accepted invalid params", c.n, c.win, c.p)
		}
	}
}

// TestChurnAccountingClosedForm checks the tracker's closed-form Joins and
// Leaves against a brute-force Alive diff for both rejoin policies, plus the
// conservation law LiveCount(r) = LiveCount(r-1) + Joins(r) - Leaves(r).
func TestChurnAccountingClosedForm(t *testing.T) {
	for _, policy := range []RejoinPolicy{RejoinCycle, RejoinNever} {
		c, err := NewChurn(11, 4, 3, policy, 0.2, 5)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 30; r++ {
			joins, leaves, count := 0, 0, 0
			for v := 0; v < c.N(); v++ {
				now := c.Alive(r, graph.NodeID(v))
				if now {
					count++
				}
				if r > 0 {
					was := c.Alive(r-1, graph.NodeID(v))
					if now && !was {
						joins++
					}
					if !now && was {
						leaves++
					}
				}
			}
			if got := c.Joins(r); got != joins {
				t.Fatalf("policy %v round %d: Joins %d, diff says %d", policy, r, got, joins)
			}
			if got := c.Leaves(r); got != leaves {
				t.Fatalf("policy %v round %d: Leaves %d, diff says %d", policy, r, got, leaves)
			}
			if got := c.LiveCount(r); got != count {
				t.Fatalf("policy %v round %d: LiveCount %d, scan says %d", policy, r, got, count)
			}
			if r > 0 && count != c.LiveCount(r-1)+joins-leaves {
				t.Fatalf("policy %v round %d: conservation violated", policy, r)
			}
		}
	}
}

// TestChurnRejoinNeverShrinksToCore: under RejoinNever every transient slot
// departs by round 2·dwell, so from then on exactly the core is live.
func TestChurnRejoinNeverShrinksToCore(t *testing.T) {
	c, err := NewChurn(10, 3, 2, RejoinNever, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LiveCount(0); got != 10 {
		t.Errorf("LiveCount(0) = %d, want 10 (all transients start live)", got)
	}
	for r := 2 * 2; r < 12; r++ {
		if got := c.LiveCount(r); got != 3 {
			t.Errorf("LiveCount(%d) = %d, want core size 3", r, got)
		}
	}
	// Monotone: live count never increases under RejoinNever.
	for r := 1; r < 12; r++ {
		if c.Joins(r) != 0 {
			t.Errorf("Joins(%d) = %d under RejoinNever, want 0", r, c.Joins(r))
		}
	}
}

// TestChurnDeadIsolatedLiveConnected pins the snapshot shape the counting
// layer relies on: dead slots have no edges, live slots are connected.
func TestChurnDeadIsolatedLiveConnected(t *testing.T) {
	c, err := NewChurn(12, 4, 2, RejoinCycle, 0.25, 77)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 15; r++ {
		g := c.Snapshot(r)
		live := make([]bool, c.N())
		count := 0
		for v := 0; v < c.N(); v++ {
			live[v] = c.Alive(r, graph.NodeID(v))
			if live[v] {
				count++
			} else if g.Degree(graph.NodeID(v)) != 0 {
				t.Fatalf("round %d: dead node %d has edges", r, v)
			}
		}
		if !liveConnected(g, live, count) {
			t.Fatalf("round %d: live subgraph disconnected", r)
		}
	}
}

// TestChurnRejectsBadParams covers constructor validation.
func TestChurnRejectsBadParams(t *testing.T) {
	cases := []struct {
		n, core, dwell int
		policy         RejoinPolicy
		p              float64
	}{
		{0, 1, 1, RejoinCycle, 0.1},
		{5, 0, 1, RejoinCycle, 0.1},
		{5, 6, 1, RejoinCycle, 0.1},
		{5, 2, 0, RejoinCycle, 0.1},
		{5, 2, 1, RejoinPolicy(9), 0.1},
		{5, 2, 1, RejoinCycle, -1},
		{5, 2, 1, RejoinCycle, 2},
	}
	for _, c := range cases {
		if _, err := NewChurn(c.n, c.core, c.dwell, c.policy, c.p, 1); err == nil {
			t.Errorf("NewChurn(%+v) accepted invalid params", c)
		}
	}
}

// TestVerifyPropertiesCatchesViolations: the verifier must reject a family
// whose declarations overstate its snapshots — each declared property is
// checked against a Dynamic purpose-built to violate it.
func TestVerifyPropertiesCatchesViolations(t *testing.T) {
	disconnected := NewFunc(4, func(r int) *graph.Graph { return graph.New(4) })
	if err := VerifyProperties(disconnected, Properties{IntervalConnected: true}, 3); err == nil {
		t.Error("disconnected family passed IntervalConnected")
	}
	drift := NewFunc(3, func(r int) *graph.Graph {
		g := graph.New(3)
		mustAddEdge(g, 0, graph.NodeID(1+r%2))
		mustAddEdge(g, 1, 2)
		return g
	})
	if err := VerifyProperties(drift, Properties{StabilityWindow: 3}, 6); err == nil {
		t.Error("drifting family passed StabilityWindow 3")
	}
	starGraph, err := graph.Star(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	star := NewStatic(starGraph)
	if err := VerifyProperties(star, Properties{MaxDegree: 2}, 2); err == nil {
		t.Error("star hub passed MaxDegree 2")
	}
	if err := VerifyProperties(star, Properties{LiveAccounting: true}, 2); err == nil {
		t.Error("non-tracker family passed LiveAccounting")
	}
	if err := VerifyProperties(star, Properties{}, 0); err == nil {
		t.Error("rounds=0 accepted")
	}
	// A violation surfaces as a *PropertyError naming the property.
	err = VerifyProperties(disconnected, Properties{IntervalConnected: true}, 3)
	perr, ok := err.(*PropertyError)
	if !ok {
		t.Fatalf("want *PropertyError, got %T", err)
	}
	if perr.Property != "interval-connectivity" || !strings.Contains(perr.Error(), "round 0") {
		t.Errorf("unexpected error detail: %v", perr)
	}
}

// ghostChurn violates dead-isolation: it decorates a Churn with one edge
// from a dead node. VerifyProperties must catch it via the LiveAccounting
// snapshot check.
type ghostChurn struct{ *Churn }

func (g ghostChurn) Snapshot(r int) *graph.Graph {
	snap := g.Churn.Snapshot(r).Clone()
	for v := 0; v < g.N(); v++ {
		if !g.Alive(r, graph.NodeID(v)) {
			for u := 0; u < g.N(); u++ {
				if u != v && g.Alive(r, graph.NodeID(u)) {
					mustAddEdge(snap, graph.NodeID(v), graph.NodeID(u))
					return snap
				}
			}
		}
	}
	return snap
}

func TestVerifyPropertiesCatchesGhostEdges(t *testing.T) {
	c, err := NewChurn(8, 2, 2, RejoinCycle, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ghost := ghostChurn{c}
	if err := VerifyProperties(ghost, c.Properties(), 10); err == nil {
		t.Fatal("ghost-edge churn passed LiveAccounting verification")
	}
}

// TestViewDivergenceRandomized: a randomized schedule leaks the size
// difference between n and n+1 almost immediately — every trial diverges
// within a small horizon, and the mean divergence round is far below the
// worst-case ⌊log₃(2n+1)⌋ bound scaled to these sizes. The exact stats are
// seed-deterministic, so repeated calls must agree.
func TestViewDivergenceRandomized(t *testing.T) {
	stats, err := ViewDivergence(9, 0.3, 20, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trials != 20 {
		t.Errorf("Trials = %d, want 20", stats.Trials)
	}
	if stats.Diverged != 20 {
		t.Errorf("Diverged = %d/20; a random schedule should separate n=9 from n=10 within 12 rounds", stats.Diverged)
	}
	if stats.Min < 1 || stats.Max > 12 || stats.Mean < float64(stats.Min) || stats.Mean > float64(stats.Max) {
		t.Errorf("inconsistent stats: %+v", stats)
	}
	again, err := ViewDivergence(9, 0.3, 20, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again != stats {
		t.Errorf("ViewDivergence not seed-deterministic: %+v vs %+v", stats, again)
	}
}

// TestViewDivergenceRejectsBadParams covers input validation.
func TestViewDivergenceRejectsBadParams(t *testing.T) {
	if _, err := ViewDivergence(0, 0.3, 5, 5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ViewDivergence(4, 0.3, 0, 5, 1); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := ViewDivergence(4, 0.3, 5, 0, 1); err == nil {
		t.Error("horizon=0 accepted")
	}
}

// TestFamilyByName pins lookup behavior and the registered name set.
func TestFamilyByName(t *testing.T) {
	want := []string{"tinterval", "joinleave", "randomized", "randomchurn", "flooddelay"}
	fams := Families()
	if len(fams) != len(want) {
		t.Fatalf("got %d families, want %d", len(fams), len(want))
	}
	for i, f := range fams {
		if f.Name != want[i] {
			t.Errorf("family %d = %q, want %q", i, f.Name, want[i])
		}
		got, err := FamilyByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FamilyByName(%q): %v", f.Name, err)
		}
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Error("unknown family name accepted")
	}
}

// TestRejoinPolicyString covers the policy formatter.
func TestRejoinPolicyString(t *testing.T) {
	if RejoinCycle.String() != "cycle" || RejoinNever.String() != "never" {
		t.Error("policy names changed")
	}
	if !strings.Contains(RejoinPolicy(7).String(), "7") {
		t.Error("unknown policy should print its number")
	}
}
