package dynet

import (
	"fmt"

	"anondyn/internal/graph"
)

// ConnectivityError reports a round at which a dynamic graph violated the
// 1-interval connectivity constraint the worst-case adversary must respect.
type ConnectivityError struct {
	Round int
}

// Error implements error.
func (e *ConnectivityError) Error() string {
	return fmt.Sprintf("dynet: snapshot at round %d is disconnected", e.Round)
}

// VerifyIntervalConnectivity checks that every snapshot in rounds [0, rounds)
// is connected (1-interval connectivity, the constraint on the adversary in
// the paper's model). It returns a *ConnectivityError naming the first bad
// round, or nil.
func VerifyIntervalConnectivity(d Dynamic, rounds int) error {
	var prev *graph.Graph
	for r := 0; r < rounds; r++ {
		g := d.Snapshot(r)
		if g == prev {
			// Same snapshot object as the previous round (static networks
			// return one shared graph): already verified connected.
			continue
		}
		if !g.Connected() {
			return &ConnectivityError{Round: r}
		}
		prev = g
	}
	return nil
}

// FloodTime simulates a flood of a message starting from src at round start:
// src broadcasts in the send phase of round start; every node that has
// received the message re-broadcasts in every later round. It returns the
// number of rounds the flood uses: if the last node is informed in the
// receive phase of round r', the flood took r' - start + 1 rounds. On a
// static graph this equals the eccentricity of src, and it matches the
// paper's Figure 1 accounting (a flood started at round 0 whose last
// delivery happens at round 3 contributes 4 to the dynamic diameter). A
// flood on a single-node network takes 0 rounds. If the flood has not
// completed within horizon rounds, an error is returned.
func FloodTime(d Dynamic, src graph.NodeID, start, horizon int) (int, error) {
	n := d.N()
	if src < 0 || int(src) >= n {
		return 0, fmt.Errorf("dynet: flood source %d out of range [0,%d)", src, n)
	}
	if start < 0 {
		return 0, fmt.Errorf("dynet: negative start round %d", start)
	}
	has := make([]bool, n)
	has[src] = true
	remaining := n - 1
	if remaining == 0 {
		return 0, nil
	}
	for r := start; r < start+horizon; r++ {
		g := d.Snapshot(r)
		// All current holders broadcast simultaneously; collect new holders
		// after the receive phase.
		var newly []graph.NodeID
		for v := 0; v < n; v++ {
			if has[v] {
				continue
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if has[u] {
					newly = append(newly, graph.NodeID(v))
					break
				}
			}
		}
		for _, v := range newly {
			has[v] = true
		}
		remaining -= len(newly)
		if remaining == 0 {
			return r - start + 1, nil
		}
	}
	return 0, fmt.Errorf("dynet: flood from %d at round %d incomplete after %d rounds", src, start, horizon)
}

// DynamicDiameter computes the dynamic diameter D restricted to floods
// starting in rounds [0, window): the maximum over all nodes v and start
// rounds of FloodTime(d, v, start, horizon). For cyclic dynamic graphs a
// window of one period is exact. Returns an error if any flood fails to
// complete within horizon.
func DynamicDiameter(d Dynamic, window, horizon int) (int, error) {
	if window < 1 {
		return 0, fmt.Errorf("dynet: window must be >= 1, got %d", window)
	}
	diam := 0
	for start := 0; start < window; start++ {
		for v := 0; v < d.N(); v++ {
			t, err := FloodTime(d, graph.NodeID(v), start, horizon)
			if err != nil {
				return 0, err
			}
			if t > diam {
				diam = t
			}
		}
	}
	return diam, nil
}

// PersistentDistanceError reports a node whose distance from the leader
// changed between rounds, violating G(PD) membership (Definition 3).
type PersistentDistanceError struct {
	Node          graph.NodeID
	Round         int
	Got, Expected int
}

// Error implements error.
func (e *PersistentDistanceError) Error() string {
	return fmt.Sprintf("dynet: node %d at distance %d from leader at round %d, want persistent distance %d",
		e.Node, e.Got, e.Round, e.Expected)
}

// VerifyPersistentDistance checks that over rounds [0, rounds) every node
// keeps the same distance from the leader (Definition 3/4: membership in
// G(PD)). On success it returns the per-node persistent distances D(v, v_l);
// the maximum entry is the h for which the graph is in G(PD)_h. It fails if
// any node is ever unreachable from the leader or changes distance.
func VerifyPersistentDistance(d Dynamic, leader graph.NodeID, rounds int) ([]int, error) {
	n := d.N()
	if leader < 0 || int(leader) >= n {
		return nil, fmt.Errorf("dynet: leader %d out of range [0,%d)", leader, n)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("dynet: rounds must be >= 1, got %d", rounds)
	}
	want := d.Snapshot(0).BFSDistances(leader)
	for v, dist := range want {
		if dist == graph.Unreachable {
			return nil, &PersistentDistanceError{Node: graph.NodeID(v), Round: 0, Got: dist, Expected: 0}
		}
	}
	for r := 1; r < rounds; r++ {
		got := d.Snapshot(r).BFSDistances(leader)
		for v := range got {
			if got[v] != want[v] {
				return nil, &PersistentDistanceError{
					Node: graph.NodeID(v), Round: r, Got: got[v], Expected: want[v],
				}
			}
		}
	}
	return want, nil
}

// PDClass returns the smallest h such that d is in G(PD)_h over the checked
// rounds: the maximum persistent distance from the leader. It returns an
// error if d is not a persistent-distance graph over those rounds.
func PDClass(d Dynamic, leader graph.NodeID, rounds int) (int, error) {
	dist, err := VerifyPersistentDistance(d, leader, rounds)
	if err != nil {
		return 0, err
	}
	h := 0
	for _, dv := range dist {
		if dv > h {
			h = dv
		}
	}
	return h, nil
}

// LayerPartition returns the paper's partition {V_0, V_1, ..., V_h} of a
// persistent-distance graph: nodes grouped by persistent distance from the
// leader, in ascending node order within each layer.
func LayerPartition(d Dynamic, leader graph.NodeID, rounds int) ([][]graph.NodeID, error) {
	dist, err := VerifyPersistentDistance(d, leader, rounds)
	if err != nil {
		return nil, err
	}
	h := 0
	for _, dv := range dist {
		if dv > h {
			h = dv
		}
	}
	layers := make([][]graph.NodeID, h+1)
	for v, dv := range dist {
		layers[dv] = append(layers[dv], graph.NodeID(v))
	}
	return layers, nil
}
