package dynet

import (
	"testing"

	"anondyn/internal/graph"
)

// TestFloodTimeDynamicStall pins the round accounting on a genuinely
// dynamic graph: a 3-node network whose topology alternates, so the same
// flood takes a different number of rounds depending on its start round —
// the effect behind the paper's "dynamic diameter can exceed every
// snapshot's static diameter" observation.
func TestFloodTimeDynamicStall(t *testing.T) {
	// Even rounds: edges {0,1},{0,2}. Odd rounds: edges {0,1},{1,2}.
	g0 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	g1 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	d, err := NewCyclic([]*graph.Graph{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	// From node 1 at round 0: round 0 reaches only 0 (node 2's sole
	// neighbor is the still-uninformed 0), round 1 reaches 2 → 2 rounds.
	got, err := FloodTime(d, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("FloodTime(alternating, src=1, start=0) = %d, want 2", got)
	}
	// One round later node 1 touches both others directly → 1 round.
	got, err = FloodTime(d, 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("FloodTime(alternating, src=1, start=1) = %d, want 1", got)
	}
}

// TestFloodTimeStartInvariantOnStatic: on a static graph the start round is
// irrelevant — flood time is the source's eccentricity at every start.
func TestFloodTimeStartInvariantOnStatic(t *testing.T) {
	d := NewStatic(graph.Path(5))
	for _, start := range []int{0, 1, 7} {
		got, err := FloodTime(d, 0, start, 100)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		if got != 4 {
			t.Errorf("FloodTime(path5, src=0, start=%d) = %d, want 4", start, got)
		}
	}
}

// TestDynamicDiameterWindowPeriodicity: for a cyclic dynamic graph, a
// window of one period is exact — widening the window cannot change the
// diameter, because every start round repeats modulo the period.
func TestDynamicDiameterWindowPeriodicity(t *testing.T) {
	g0 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	g1 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	d, err := NewCyclic([]*graph.Graph{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := DynamicDiameter(d, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{4, 6} {
		wide, err := DynamicDiameter(d, window, 100)
		if err != nil {
			t.Fatal(err)
		}
		if wide != base {
			t.Errorf("window %d diameter %d, one-period diameter %d", window, wide, base)
		}
	}
}

// TestPDClassSingleNode: the degenerate network is G(PD)_0.
func TestPDClassSingleNode(t *testing.T) {
	if h, err := PDClass(NewStatic(graph.Complete(1)), 0, 3); err != nil || h != 0 {
		t.Errorf("PDClass(K1) = %d, %v; want 0, nil", h, err)
	}
}
