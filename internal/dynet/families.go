package dynet

import (
	"fmt"
	"math/rand"
	"sort"

	"anondyn/internal/graph"
)

// This file is the adversary-family diversity layer: the scenario generators
// beyond the worst-case PD₂ construction — stability-window (T-interval)
// dynamics, join/leave churn with live-set accounting, and seed-deterministic
// randomized schedules — together with the machine-checkable Properties each
// family declares and the registry the conformance suite enumerates.

// roundMix decorrelates per-round (or per-window) seeds; the multiplier is
// the SplitMix64 increment already used by RandomChurn.
const roundMix = 0x5851F42D4C957F2D

// Properties declares the machine-checkable guarantees an adversary family
// promises. VerifyProperties checks every declared guarantee against actual
// snapshots; the conformance suite runs it for every registered family, so a
// family cannot advertise a property its snapshots violate.
type Properties struct {
	// IntervalConnected: every snapshot is connected (1-interval
	// connectivity). For families with LiveAccounting the guarantee is on
	// the live-induced subgraph instead: live nodes form a connected graph.
	IntervalConnected bool
	// StabilityWindow T > 1: snapshots are constant on the aligned windows
	// [iT, (i+1)T) — the stability-window reading of T-interval
	// connectivity, under which the intersection of any aligned window is
	// the (connected) window graph itself. 0 or 1 declares nothing.
	StabilityWindow int
	// LiveAccounting: the family implements LiveTracker and its join/leave
	// bookkeeping is conserved — LiveCount(r) = LiveCount(r-1) + Joins(r) -
	// Leaves(r), with dead nodes isolated in every snapshot and node 0 (the
	// leader slot) never leaving.
	LiveAccounting bool
	// SeedDeterministic: Snapshot(r) is a pure function of (seed, r) —
	// repeated calls return equal graphs, so runs replay exactly.
	SeedDeterministic bool
	// MaxDegree > 0: no node exceeds this degree in any snapshot.
	MaxDegree int
}

// PropertyCarrier is a Dynamic that declares its own Properties.
type PropertyCarrier interface {
	Dynamic
	Properties() Properties
}

// LiveTracker is the live-set accounting interface churn families implement:
// per-round membership plus join/leave bookkeeping. LiveCount, Joins and
// Leaves must be derivable from Alive — VerifyProperties recomputes them from
// per-node Alive scans and rejects any disagreement, so the two code paths
// cross-check each other.
type LiveTracker interface {
	Dynamic
	// Alive reports whether slot v participates in round r.
	Alive(r int, v graph.NodeID) bool
	// LiveCount returns the number of live slots at round r.
	LiveCount(r int) int
	// Joins returns the number of slots that are live at r but were dead at
	// r-1. Joins(0) is 0: round 0 is the initial population, not a join.
	Joins(r int) int
	// Leaves returns the number of slots dead at r but live at r-1.
	Leaves(r int) int
}

// PropertyError reports the first declared property a family violated.
type PropertyError struct {
	Property string
	Round    int
	Detail   string
}

// Error implements error.
func (e *PropertyError) Error() string {
	return fmt.Sprintf("dynet: property %s violated at round %d: %s", e.Property, e.Round, e.Detail)
}

// VerifyProperties checks every property declared in p against the snapshots
// of d over rounds [0, rounds). It returns a *PropertyError naming the first
// violated guarantee, or nil when every declared property holds.
func VerifyProperties(d Dynamic, p Properties, rounds int) error {
	if rounds < 1 {
		return fmt.Errorf("dynet: rounds must be >= 1, got %d", rounds)
	}
	n := d.N()
	lt, hasLive := d.(LiveTracker)
	if p.LiveAccounting && !hasLive {
		return &PropertyError{Property: "live-accounting", Round: 0,
			Detail: "family does not implement LiveTracker"}
	}
	prevLive := 0
	for r := 0; r < rounds; r++ {
		g := d.Snapshot(r)
		if g.N() != n {
			return &PropertyError{Property: "node-count", Round: r,
				Detail: fmt.Sprintf("snapshot has %d nodes, want %d", g.N(), n)}
		}
		if p.SeedDeterministic && !g.Equal(d.Snapshot(r)) {
			return &PropertyError{Property: "seed-determinism", Round: r,
				Detail: "repeated Snapshot calls disagree"}
		}
		if p.MaxDegree > 0 {
			for v := 0; v < n; v++ {
				if deg := g.Degree(graph.NodeID(v)); deg > p.MaxDegree {
					return &PropertyError{Property: "max-degree", Round: r,
						Detail: fmt.Sprintf("node %d has degree %d > %d", v, deg, p.MaxDegree)}
				}
			}
		}
		if p.StabilityWindow > 1 {
			base := d.Snapshot(r - r%p.StabilityWindow)
			if !g.Equal(base) {
				return &PropertyError{Property: "stability-window", Round: r,
					Detail: fmt.Sprintf("snapshot differs from window start %d", r-r%p.StabilityWindow)}
			}
		}
		if p.LiveAccounting {
			// Recompute the live set from per-node Alive calls; the
			// tracker's aggregate bookkeeping must agree exactly.
			live := make([]bool, n)
			count := 0
			for v := 0; v < n; v++ {
				if lt.Alive(r, graph.NodeID(v)) {
					live[v] = true
					count++
				}
			}
			if !live[0] {
				return &PropertyError{Property: "live-accounting", Round: r,
					Detail: "leader slot 0 is dead"}
			}
			if got := lt.LiveCount(r); got != count {
				return &PropertyError{Property: "live-accounting", Round: r,
					Detail: fmt.Sprintf("LiveCount %d, Alive scan says %d", got, count)}
			}
			joins, leaves := 0, 0
			if r > 0 {
				for v := 0; v < n; v++ {
					was := lt.Alive(r-1, graph.NodeID(v))
					switch {
					case live[v] && !was:
						joins++
					case !live[v] && was:
						leaves++
					}
				}
			}
			if got := lt.Joins(r); got != joins {
				return &PropertyError{Property: "live-accounting", Round: r,
					Detail: fmt.Sprintf("Joins %d, Alive diff says %d", got, joins)}
			}
			if got := lt.Leaves(r); got != leaves {
				return &PropertyError{Property: "live-accounting", Round: r,
					Detail: fmt.Sprintf("Leaves %d, Alive diff says %d", got, leaves)}
			}
			if r > 0 && count != prevLive+joins-leaves {
				return &PropertyError{Property: "live-accounting", Round: r,
					Detail: fmt.Sprintf("live mass not conserved: %d != %d + %d - %d",
						count, prevLive, joins, leaves)}
			}
			prevLive = count
			// Dead slots are isolated; live slots form a connected subgraph.
			for v := 0; v < n; v++ {
				if !live[v] && g.Degree(graph.NodeID(v)) != 0 {
					return &PropertyError{Property: "live-accounting", Round: r,
						Detail: fmt.Sprintf("dead node %d has degree %d", v, g.Degree(graph.NodeID(v)))}
				}
			}
			if p.IntervalConnected && !liveConnected(g, live, count) {
				return &PropertyError{Property: "interval-connectivity", Round: r,
					Detail: "live-induced subgraph is disconnected"}
			}
		} else if p.IntervalConnected && !g.Connected() {
			return &PropertyError{Property: "interval-connectivity", Round: r,
				Detail: "snapshot is disconnected"}
		}
	}
	return nil
}

// liveConnected reports whether the live nodes are mutually reachable through
// live-live edges (dead nodes are isolated, so plain BFS from any live node
// suffices).
func liveConnected(g *graph.Graph, live []bool, count int) bool {
	if count <= 1 {
		return true
	}
	start := -1
	for v, ok := range live {
		if ok {
			start = v
			break
		}
	}
	seen := make([]bool, len(live))
	seen[start] = true
	queue := []graph.NodeID{graph.NodeID(start)}
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if !seen[u] && live[u] {
				seen[u] = true
				reached++
				queue = append(queue, u)
			}
		}
	}
	return reached == count
}

// TInterval is the stability-window adversary: topology is redrawn as a fresh
// random connected graph at every aligned window boundary and held constant
// for Window consecutive rounds. The intersection of the snapshots over any
// aligned window is therefore the (connected) window graph itself — the
// stability-window form of T-interval connectivity the degree-based counting
// literature (arXiv:1509.02140) assumes.
type TInterval struct {
	n, window int
	p         float64
	seed      int64
}

// NewTInterval returns a T-interval adversary over n nodes with stability
// window T >= 1 and extra edge probability p.
func NewTInterval(n, window int, p float64, seed int64) (*TInterval, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynet: T-interval adversary needs at least one node, got %d", n)
	}
	if window < 1 {
		return nil, fmt.Errorf("dynet: stability window must be >= 1, got %d", window)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dynet: edge probability %v out of [0,1]", p)
	}
	return &TInterval{n: n, window: window, p: p, seed: seed}, nil
}

// N implements Dynamic.
func (t *TInterval) N() int { return t.n }

// Window returns the stability-window length T.
func (t *TInterval) Window() int { return t.window }

// Snapshot implements Dynamic: the window index, not the round, perturbs the
// seed, so every round of a window draws the identical graph.
func (t *TInterval) Snapshot(r int) *graph.Graph {
	if r < 0 {
		r = 0
	}
	win := r / t.window
	rng := rand.New(rand.NewSource(t.seed ^ (int64(win)+1)*roundMix))
	return graph.RandomConnected(t.n, t.p, rng)
}

// Properties implements PropertyCarrier.
func (t *TInterval) Properties() Properties {
	return Properties{IntervalConnected: true, StabilityWindow: t.window, SeedDeterministic: true}
}

// RejoinPolicy selects what happens to a transient node after it leaves a
// Churn network.
type RejoinPolicy int

const (
	// RejoinCycle: transient nodes alternate live and dead stints of Dwell
	// rounds forever, so every slot is live infinitely often.
	RejoinCycle RejoinPolicy = iota
	// RejoinNever: each transient node leaves once, at a seeded round, and
	// stays gone — monotone shrink toward the stable core.
	RejoinNever
)

// String renders the policy for instance names and error messages.
func (p RejoinPolicy) String() string {
	switch p {
	case RejoinCycle:
		return "cycle"
	case RejoinNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Churn is the join/leave adversary: over a universe of n slots, a stable
// core (slots 0..Core-1, always containing the leader slot 0) never leaves,
// while the transient slots churn on seeded per-node schedules governed by
// the rejoin policy. Live slots form a fresh random connected subgraph every
// round; dead slots are isolated — a process keeps running but receives no
// messages while its slot is out, which is how the live-set accounting
// threads through the round engines without any engine change.
type Churn struct {
	n, core, dwell int
	policy         RejoinPolicy
	p              float64
	seed           int64
}

// NewChurn returns a churn adversary over n slots with a stable core of
// `core` slots, transient stint length `dwell`, the given rejoin policy, and
// extra edge probability p among live nodes.
func NewChurn(n, core, dwell int, policy RejoinPolicy, p float64, seed int64) (*Churn, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynet: churn adversary needs at least one slot, got %d", n)
	}
	if core < 1 || core > n {
		return nil, fmt.Errorf("dynet: core size %d out of [1,%d]", core, n)
	}
	if dwell < 1 {
		return nil, fmt.Errorf("dynet: dwell must be >= 1, got %d", dwell)
	}
	if policy != RejoinCycle && policy != RejoinNever {
		return nil, fmt.Errorf("dynet: unknown rejoin policy %d", int(policy))
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dynet: edge probability %v out of [0,1]", p)
	}
	return &Churn{n: n, core: core, dwell: dwell, policy: policy, p: p, seed: seed}, nil
}

// N implements Dynamic.
func (c *Churn) N() int { return c.n }

// Core returns the stable-core size.
func (c *Churn) Core() int { return c.core }

// Policy returns the rejoin policy.
func (c *Churn) Policy() RejoinPolicy { return c.policy }

// phase returns the deterministic per-slot schedule offset in [0, 2·dwell),
// derived SplitMix64-style from the seed and the slot index.
func (c *Churn) phase(v graph.NodeID) int {
	x := uint64(c.seed) + (uint64(v)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(2*c.dwell))
}

// Alive implements LiveTracker.
func (c *Churn) Alive(r int, v graph.NodeID) bool {
	if r < 0 {
		r = 0
	}
	if int(v) < c.core {
		return true
	}
	ph := c.phase(v)
	switch c.policy {
	case RejoinNever:
		// Departure round in [1, 2·dwell]: every transient slot is live at
		// round 0 and gone for good from its departure round on.
		return r < ph+1
	default: // RejoinCycle
		return ((r+ph)/c.dwell)%2 == 0
	}
}

// LiveCount implements LiveTracker.
func (c *Churn) LiveCount(r int) int {
	count := c.core
	for v := c.core; v < c.n; v++ {
		if c.Alive(r, graph.NodeID(v)) {
			count++
		}
	}
	return count
}

// Joins implements LiveTracker via the closed-form per-slot schedule (the
// conformance verifier recomputes the same quantity from Alive diffs, so the
// two derivations cross-check each other).
func (c *Churn) Joins(r int) int {
	if r <= 0 {
		return 0
	}
	joins := 0
	for v := c.core; v < c.n; v++ {
		ph := c.phase(graph.NodeID(v))
		switch c.policy {
		case RejoinNever:
			// Never rejoins: no joins after round 0.
		default:
			if (r+ph)%c.dwell == 0 && ((r+ph)/c.dwell)%2 == 0 {
				joins++
			}
		}
	}
	return joins
}

// Leaves implements LiveTracker.
func (c *Churn) Leaves(r int) int {
	if r <= 0 {
		return 0
	}
	leaves := 0
	for v := c.core; v < c.n; v++ {
		ph := c.phase(graph.NodeID(v))
		switch c.policy {
		case RejoinNever:
			if r == ph+1 {
				leaves++
			}
		default:
			if (r+ph)%c.dwell == 0 && ((r+ph)/c.dwell)%2 == 1 {
				leaves++
			}
		}
	}
	return leaves
}

// Snapshot implements Dynamic: a random attachment tree over the round's
// live slots plus p-probability extra live-live edges, seeded per round.
// Dead slots get no edges.
func (c *Churn) Snapshot(r int) *graph.Graph {
	if r < 0 {
		r = 0
	}
	g := graph.New(c.n)
	var live []graph.NodeID
	for v := 0; v < c.n; v++ {
		if c.Alive(r, graph.NodeID(v)) {
			live = append(live, graph.NodeID(v))
		}
	}
	if len(live) <= 1 {
		return g
	}
	rng := rand.New(rand.NewSource(c.seed ^ (int64(r)+1)*roundMix))
	perm := rng.Perm(len(live))
	for i := 1; i < len(live); i++ {
		j := rng.Intn(i)
		mustAddEdge(g, live[perm[i]], live[perm[j]])
	}
	if c.p > 0 {
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if rng.Float64() < c.p {
					mustAddEdge(g, live[i], live[j])
				}
			}
		}
	}
	return g
}

// mustAddEdge adds an edge between distinct in-range nodes; AddEdge only
// fails on out-of-range or self loops, which the callers rule out.
func mustAddEdge(g *graph.Graph, u, v graph.NodeID) {
	if u == v {
		return
	}
	if err := g.AddEdge(u, v); err != nil {
		panic(err) // unreachable: indices are in range by construction
	}
}

// Properties implements PropertyCarrier.
func (c *Churn) Properties() Properties {
	return Properties{IntervalConnected: true, LiveAccounting: true, SeedDeterministic: true}
}

// Randomized is the seed-deterministic randomized adversary: a fresh random
// connected topology every round, like RandomChurn, but registered as a
// first-class family with declared Properties and the statistical
// leader-view-divergence measurement (ViewDivergence) that quantifies how
// quickly a non-adaptive random schedule leaks the network size the
// worst-case adversary hides for Θ(log n) rounds.
type Randomized struct {
	rc RandomChurn
}

// NewRandomized returns a randomized adversary over n nodes with extra edge
// probability p.
func NewRandomized(n int, p float64, seed int64) (*Randomized, error) {
	rc, err := NewRandomChurn(n, p, seed)
	if err != nil {
		return nil, err
	}
	return &Randomized{rc: *rc}, nil
}

// N implements Dynamic.
func (rd *Randomized) N() int { return rd.rc.N() }

// Snapshot implements Dynamic.
func (rd *Randomized) Snapshot(r int) *graph.Graph { return rd.rc.Snapshot(r) }

// Properties implements PropertyCarrier.
func (rd *Randomized) Properties() Properties {
	return Properties{IntervalConnected: true, SeedDeterministic: true}
}

// DivergenceStats summarizes a ViewDivergence measurement: the distribution,
// over seeds, of the first completed round at which the anonymous leader
// view of a size-n randomized network separates from that of a size-(n+1)
// network.
type DivergenceStats struct {
	// Trials is the number of seed pairs measured.
	Trials int
	// Diverged counts trials that separated within the horizon.
	Diverged int
	// Min and Max are the extreme divergence rounds among separated trials.
	Min, Max int
	// Mean is the average divergence round among separated trials.
	Mean float64
}

// ViewDivergence measures, over `trials` derived seeds, the first completed
// round at which the anonymous leader view-hash of a size-n Randomized
// network differs from that of a size-(n+1) network. All nodes start in the
// same state and fold the sorted multiset of neighbor states each round, so
// the leader's state sequence is exactly what an anonymous full-information
// protocol can observe; a trial diverges at the round the size difference
// first reaches node 0. The worst-case adversary sustains equality for
// ⌊log₃(2n+1)⌋ rounds; a randomized schedule loses it almost immediately —
// this measurement is the statistical form of that contrast.
func ViewDivergence(n int, p float64, trials, horizon int, seed int64) (DivergenceStats, error) {
	if n < 1 {
		return DivergenceStats{}, fmt.Errorf("dynet: divergence needs n >= 1, got %d", n)
	}
	if trials < 1 || horizon < 1 {
		return DivergenceStats{}, fmt.Errorf("dynet: divergence needs trials >= 1 and horizon >= 1, got %d, %d", trials, horizon)
	}
	stats := DivergenceStats{Trials: trials}
	sum := 0
	for t := 0; t < trials; t++ {
		s := seed ^ (int64(t)+1)*roundMix
		a, err := NewRandomized(n, p, s)
		if err != nil {
			return DivergenceStats{}, err
		}
		b, err := NewRandomized(n+1, p, s)
		if err != nil {
			return DivergenceStats{}, err
		}
		ta := anonymousLeaderTrace(a, horizon)
		tb := anonymousLeaderTrace(b, horizon)
		for r := 0; r < horizon; r++ {
			if ta[r] != tb[r] {
				round := r + 1
				if stats.Diverged == 0 || round < stats.Min {
					stats.Min = round
				}
				if round > stats.Max {
					stats.Max = round
				}
				stats.Diverged++
				sum += round
				break
			}
		}
	}
	if stats.Diverged > 0 {
		stats.Mean = float64(sum) / float64(stats.Diverged)
	}
	return stats, nil
}

// anonymousLeaderTrace runs the anonymous full-information fold on d for the
// given number of rounds and returns the leader's per-round state hashes:
// every node starts in state 0 and each round becomes the FNV fold of its own
// state with the sorted multiset of its neighbors' states. No identifier
// enters the fold, so equal traces mean indistinguishable anonymous views.
func anonymousLeaderTrace(d Dynamic, rounds int) []uint64 {
	n := d.N()
	state := make([]uint64, n)
	next := make([]uint64, n)
	trace := make([]uint64, 0, rounds)
	var inbox []uint64
	for r := 0; r < rounds; r++ {
		g := d.Snapshot(r)
		for v := 0; v < n; v++ {
			inbox = inbox[:0]
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				inbox = append(inbox, state[u])
			}
			sort.Slice(inbox, func(i, j int) bool { return inbox[i] < inbox[j] })
			h := uint64(1469598103934665603) // FNV-64a offset basis
			mix := func(x uint64) {
				for i := 0; i < 8; i++ {
					h ^= x & 0xFF
					h *= 1099511628211
					x >>= 8
				}
			}
			mix(state[v])
			for _, x := range inbox {
				mix(x)
			}
			next[v] = h
		}
		state, next = next, state
		trace = append(trace, state[0])
	}
	return trace
}

// Family is one registered adversary family: a builder parameterized on the
// problem size and seed, plus the Properties the conformance suite verifies
// on every build.
type Family struct {
	// Name selects the family in the conformance suite and error messages.
	Name string
	// Doc is a one-line description.
	Doc string
	// Props are the declared machine-checkable guarantees.
	Props Properties
	// Build constructs the family at size n with the given seed.
	Build func(n int, seed int64) (Dynamic, error)
}

// Families returns the registered adversary families in deterministic order.
// Default shape parameters (window, core fraction, dwell, edge probability)
// are fixed here so a (name, n, seed) triple pins the network exactly.
func Families() []Family {
	return []Family{
		{
			Name:  "tinterval",
			Doc:   "stability-window dynamics: fresh random connected topology held for T=3 rounds",
			Props: Properties{IntervalConnected: true, StabilityWindow: 3, SeedDeterministic: true},
			Build: func(n int, seed int64) (Dynamic, error) {
				return NewTInterval(n, 3, 0.2, seed)
			},
		},
		{
			Name:  "joinleave",
			Doc:   "join/leave churn: stable core ~n/3, transients on dwell-2 cycling stints, live-set accounting",
			Props: Properties{IntervalConnected: true, LiveAccounting: true, SeedDeterministic: true},
			Build: func(n int, seed int64) (Dynamic, error) {
				core := n / 3
				if core < 1 {
					core = 1
				}
				return NewChurn(n, core, 2, RejoinCycle, 0.15, seed)
			},
		},
		{
			Name:  "randomized",
			Doc:   "seed-deterministic random connected schedule, fresh draw every round",
			Props: Properties{IntervalConnected: true, SeedDeterministic: true},
			Build: func(n int, seed int64) (Dynamic, error) {
				return NewRandomized(n, 0.3, seed)
			},
		},
		{
			Name:  "randomchurn",
			Doc:   "the fair random-churn baseline retained from the peer-to-peer related work",
			Props: Properties{IntervalConnected: true, SeedDeterministic: true},
			Build: func(n int, seed int64) (Dynamic, error) {
				return NewRandomChurn(n, 0.3, seed)
			},
		},
		{
			Name:  "flooddelay",
			Doc:   "the adaptive flood-delaying adversary (deterministic; the seed is ignored)",
			Props: Properties{IntervalConnected: true, SeedDeterministic: true},
			Build: func(n int, seed int64) (Dynamic, error) {
				if n < 2 {
					n = 2
				}
				return NewFloodDelaying(n, 0)
			},
		},
	}
}

// FamilyByName resolves one registered family.
func FamilyByName(name string) (*Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			f := f
			return &f, nil
		}
	}
	return nil, fmt.Errorf("dynet: unknown adversary family %q", name)
}

// Compile-time interface checks for the new families.
var (
	_ PropertyCarrier = (*TInterval)(nil)
	_ PropertyCarrier = (*Churn)(nil)
	_ PropertyCarrier = (*Randomized)(nil)
	_ LiveTracker     = (*Churn)(nil)
)
