package dynet

import (
	"fmt"

	"anondyn/internal/graph"
)

// FloodDelaying is the classic worst-case dissemination adversary (in the
// style of the lower bounds in Kuhn-Lynch-Oshman and Haeupler-Kuhn): it
// keeps every snapshot 1-interval connected with diameter at most 3, yet a
// flood from the designated source informs exactly one new node per round,
// making the dynamic "diameter" of that flood Θ(n). It demonstrates that D
// is a property of the adversary, not of the snapshots.
//
// The adversary is deterministic and oblivious: because flooding is a
// fixed protocol, the informed set after r rounds is predictable, so the
// adversary precommits to sacrificing nodes in index order: after round r
// the informed set is {src, p_1, ..., p_{r+1}} where p_i enumerates the
// other nodes ascending. Each round the informed nodes form a clique, the
// uninformed nodes form a clique, and a single bridge edge connects the
// next sacrifice to the informed side.
type FloodDelaying struct {
	n     int
	src   graph.NodeID
	order []graph.NodeID // non-source nodes in sacrifice order
}

// NewFloodDelaying builds the adversary for n nodes delaying a flood from
// src.
func NewFloodDelaying(n int, src graph.NodeID) (*FloodDelaying, error) {
	if n < 2 {
		return nil, fmt.Errorf("dynet: flood-delaying adversary needs >= 2 nodes, got %d", n)
	}
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("dynet: source %d out of range [0,%d)", src, n)
	}
	order := make([]graph.NodeID, 0, n-1)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) != src {
			order = append(order, graph.NodeID(v))
		}
	}
	return &FloodDelaying{n: n, src: src, order: order}, nil
}

// N implements Dynamic.
func (fd *FloodDelaying) N() int { return fd.n }

// Snapshot implements Dynamic. At round r the informed side is the source
// plus the first r sacrifices; the bridge touches sacrifice r (clamped once
// everyone is informed, after which the graph is a single clique).
func (fd *FloodDelaying) Snapshot(r int) *graph.Graph {
	if r < 0 {
		r = 0
	}
	g := graph.New(fd.n)
	informed := r // sacrifices already informed before round r
	if informed > len(fd.order) {
		informed = len(fd.order)
	}
	// Informed clique: src + order[:informed].
	inf := append([]graph.NodeID{fd.src}, fd.order[:informed]...)
	for i := 0; i < len(inf); i++ {
		for j := i + 1; j < len(inf); j++ {
			mustAdd(g, inf[i], inf[j])
		}
	}
	// Uninformed clique: order[informed:].
	un := fd.order[informed:]
	for i := 0; i < len(un); i++ {
		for j := i + 1; j < len(un); j++ {
			mustAdd(g, un[i], un[j])
		}
	}
	// Bridge: exactly one uninformed node touches the informed side.
	if len(un) > 0 {
		mustAdd(g, fd.src, un[0])
	}
	return g
}

func mustAdd(g *graph.Graph, u, v graph.NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err) // unreachable: endpoints constructed in range
	}
}

var _ Dynamic = (*FloodDelaying)(nil)
