package dynet_test

import (
	"fmt"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// A static path has dynamic diameter equal to its static diameter.
func ExampleDynamicDiameter() {
	d, err := dynet.DynamicDiameter(dynet.NewStatic(graph.Path(5)), 1, 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(d)
	// Output: 4
}

// The flood-delaying adversary stretches a flood to n-1 rounds while every
// snapshot stays connected with diameter at most 3.
func ExampleNewFloodDelaying() {
	fd, err := dynet.NewFloodDelaying(10, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	ft, err := dynet.FloodTime(fd, 0, 0, 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ft, fd.Snapshot(3).Diameter())
	// Output: 9 3
}

// Persistent-distance verification recognizes 𝒢(PD)_h membership
// (Definition 4) and reports each node's persistent distance.
func ExampleVerifyPersistentDistance() {
	star, err := graph.Star(4, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	dist, err := dynet.VerifyPersistentDistance(dynet.NewStatic(star), 0, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(dist)
	// Output: [0 1 1 1]
}
