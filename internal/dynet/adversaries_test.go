package dynet

import (
	"testing"

	"anondyn/internal/graph"
)

func TestFloodDelayingDelaysMaximally(t *testing.T) {
	for _, n := range []int{2, 3, 8, 20} {
		fd, err := NewFloodDelaying(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := FloodTime(fd, 0, 0, 5*n)
		if err != nil {
			t.Fatal(err)
		}
		if ft != n-1 {
			t.Fatalf("n=%d: flood took %d rounds, want maximal n-1 = %d", n, ft, n-1)
		}
	}
}

func TestFloodDelayingSnapshotsStayNice(t *testing.T) {
	fd, err := NewFloodDelaying(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		g := fd.Snapshot(r)
		if !g.Connected() {
			t.Fatalf("round %d disconnected", r)
		}
		if d := g.Diameter(); d > 3 {
			t.Fatalf("round %d snapshot diameter %d > 3", r, d)
		}
	}
	if err := VerifyIntervalConnectivity(fd, 20); err != nil {
		t.Fatal(err)
	}
}

func TestFloodDelayingOtherSourcesFaster(t *testing.T) {
	// Floods from non-targeted sources are fast: the uninformed clique
	// spreads the message internally.
	fd, err := NewFloodDelaying(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := FloodTime(fd, 5, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if ft >= 11 {
		t.Fatalf("flood from untargeted source took %d rounds, expected fast", ft)
	}
}

func TestFloodDelayingClampsToClique(t *testing.T) {
	fd, err := NewFloodDelaying(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	late := fd.Snapshot(100)
	if !late.Equal(graph.Complete(4)) {
		t.Fatalf("late snapshot should be a clique, got %v", late)
	}
	if !fd.Snapshot(-1).Equal(fd.Snapshot(0)) {
		t.Fatal("negative round should clamp to 0")
	}
}

func TestFloodDelayingErrors(t *testing.T) {
	if _, err := NewFloodDelaying(1, 0); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, err := NewFloodDelaying(3, 9); err == nil {
		t.Fatal("bad source should error")
	}
}
