// Package dynet models dynamic networks: infinite sequences of per-round
// graph snapshots over a fixed node set (the paper's Definition 1), plus the
// analyses the paper performs on them — 1-interval connectivity, flooding
// and the dynamic diameter D, and persistent-distance (G(PD)_h) membership.
//
// A dynamic graph is exposed through the Dynamic interface. Snapshots must
// be deterministic: Snapshot(r) called twice returns equal graphs, so the
// adversary's choices are reproducible and executions can be replayed.
package dynet

import (
	"fmt"
	"math/rand"

	"anondyn/internal/graph"
)

// Dynamic is a dynamic graph G = {G_0, G_1, ...}: a fixed node set with a
// (conceptually infinite) sequence of per-round snapshots chosen by an
// adversary. Implementations must be deterministic in r.
type Dynamic interface {
	// N returns the number of nodes, constant across rounds.
	N() int
	// Snapshot returns the communication graph at round r >= 0.
	Snapshot(r int) *graph.Graph
}

// CSRDynamic is an optional extension of Dynamic for implementations that
// can serve their snapshots in flat CSR form without materializing the
// map-based adjacency of graph.Graph. The sharded round engine probes for
// it: at 10⁶ nodes the map representation is the memory and cache
// bottleneck, not the protocol.
//
// SnapshotCSR must describe the same topology Snapshot(r) would return.
// The returned CSR may reuse the backing arrays of the previous call
// (snapshot-view ownership, see graph.CSR), so callers use it before
// requesting another round and never across calls. Implementations must be
// deterministic in r.
type CSRDynamic interface {
	Dynamic
	SnapshotCSR(r int) *graph.CSR
}

// Static is a dynamic graph whose topology never changes: the degenerate
// adversary. It is the baseline for "static network" comparisons.
type Static struct {
	g *graph.Graph
}

// NewStatic wraps a single graph as an unchanging dynamic graph.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g} }

// N implements Dynamic.
func (s *Static) N() int { return s.g.N() }

// Snapshot implements Dynamic; every round returns the same topology.
func (s *Static) Snapshot(int) *graph.Graph { return s.g }

// Cyclic repeats a finite list of snapshots forever. It is how figures with
// finitely many drawn rounds (e.g. the paper's Figure 1) become infinite
// dynamic graphs.
type Cyclic struct {
	n      int
	rounds []*graph.Graph
}

// NewCyclic builds a cyclic dynamic graph from one or more snapshots, all of
// which must have the same node count.
func NewCyclic(rounds []*graph.Graph) (*Cyclic, error) {
	if len(rounds) == 0 {
		return nil, fmt.Errorf("dynet: cyclic dynamic graph needs at least one snapshot")
	}
	n := rounds[0].N()
	for i, g := range rounds {
		if g.N() != n {
			return nil, fmt.Errorf("dynet: snapshot %d has %d nodes, want %d", i, g.N(), n)
		}
	}
	cp := make([]*graph.Graph, len(rounds))
	copy(cp, rounds)
	return &Cyclic{n: n, rounds: cp}, nil
}

// N implements Dynamic.
func (c *Cyclic) N() int { return c.n }

// Snapshot implements Dynamic.
func (c *Cyclic) Snapshot(r int) *graph.Graph {
	if r < 0 {
		r = 0
	}
	return c.rounds[r%len(c.rounds)]
}

// Func adapts a pure function to the Dynamic interface. The function must be
// deterministic in r.
type Func struct {
	n  int
	fn func(r int) *graph.Graph
}

// NewFunc wraps fn as a Dynamic over n nodes.
func NewFunc(n int, fn func(r int) *graph.Graph) *Func {
	return &Func{n: n, fn: fn}
}

// N implements Dynamic.
func (f *Func) N() int { return f.n }

// Snapshot implements Dynamic.
func (f *Func) Snapshot(r int) *graph.Graph { return f.fn(r) }

// RandomChurn is a fair (non-worst-case) adversary: each round it draws a
// fresh random connected topology, seeded per round so snapshots are
// deterministic and replayable. This is the peer-to-peer-style dynamicity of
// the paper's related work ([8], [14]), used as a baseline.
type RandomChurn struct {
	n    int
	p    float64
	seed int64
}

// NewRandomChurn returns a random churn adversary over n nodes with extra
// edge probability p and the given base seed.
func NewRandomChurn(n int, p float64, seed int64) (*RandomChurn, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynet: random churn needs at least one node, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dynet: edge probability %v out of [0,1]", p)
	}
	return &RandomChurn{n: n, p: p, seed: seed}, nil
}

// N implements Dynamic.
func (rc *RandomChurn) N() int { return rc.n }

// Snapshot implements Dynamic. The round index perturbs the seed so every
// round is an independent-looking but reproducible draw.
func (rc *RandomChurn) Snapshot(r int) *graph.Graph {
	if r < 0 {
		r = 0
	}
	rng := rand.New(rand.NewSource(rc.seed ^ (int64(r)+1)*0x5851F42D4C957F2D))
	return graph.RandomConnected(rc.n, rc.p, rng)
}

// Compile-time interface checks.
var (
	_ Dynamic = (*Static)(nil)
	_ Dynamic = (*Cyclic)(nil)
	_ Dynamic = (*Func)(nil)
	_ Dynamic = (*RandomChurn)(nil)
)
