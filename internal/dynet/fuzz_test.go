package dynet

import (
	"testing"
)

// FuzzTInterval throws arbitrary parameters at the T-interval generator:
// whatever the constructor accepts must satisfy every property the family
// declares — window law, connectivity, determinism — over a verification
// horizon spanning several windows.
func FuzzTInterval(f *testing.F) {
	f.Add(4, 3, int64(1))
	f.Add(1, 1, int64(0))
	f.Add(9, 5, int64(-7))
	f.Add(16, 2, int64(1<<40))
	f.Fuzz(func(t *testing.T, n, window int, seed int64) {
		if n > 64 {
			n = n%64 + 1
		}
		if window > 16 {
			window = window%16 + 1
		}
		ti, err := NewTInterval(n, window, 0.2, seed)
		if err != nil {
			if n >= 1 && window >= 1 {
				t.Fatalf("constructor rejected valid params n=%d window=%d: %v", n, window, err)
			}
			return
		}
		rounds := 3*window + 2
		if err := VerifyProperties(ti, ti.Properties(), rounds); err != nil {
			t.Fatalf("n=%d window=%d seed=%d: %v", n, window, seed, err)
		}
	})
}

// FuzzChurn throws arbitrary parameters at the churn generator: accepted
// parameter sets must preserve live-set accounting (conservation, dead
// isolation, live connectivity, leader always live) under both rejoin
// policies for long enough to cross several dwell cycles.
func FuzzChurn(f *testing.F) {
	f.Add(8, 3, 2, 0, int64(5))
	f.Add(1, 1, 1, 0, int64(0))
	f.Add(12, 4, 3, 1, int64(-9))
	f.Add(5, 5, 1, 1, int64(1<<33))
	f.Fuzz(func(t *testing.T, n, core, dwell, policy int, seed int64) {
		if n > 48 {
			n = n%48 + 1
		}
		if dwell > 8 {
			dwell = dwell%8 + 1
		}
		pol := RejoinPolicy(policy & 1)
		c, err := NewChurn(n, core, dwell, pol, 0.15, seed)
		if err != nil {
			if n >= 1 && core >= 1 && core <= n && dwell >= 1 {
				t.Fatalf("constructor rejected valid params n=%d core=%d dwell=%d: %v", n, core, dwell, err)
			}
			return
		}
		rounds := 4*dwell + 2
		if err := VerifyProperties(c, c.Properties(), rounds); err != nil {
			t.Fatalf("n=%d core=%d dwell=%d policy=%v seed=%d: %v", n, core, dwell, pol, seed, err)
		}
	})
}
