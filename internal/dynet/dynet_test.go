package dynet

import (
	"errors"
	"testing"

	"anondyn/internal/graph"
)

func TestStatic(t *testing.T) {
	g := graph.Path(4)
	d := NewStatic(g)
	if d.N() != 4 {
		t.Fatalf("N = %d", d.N())
	}
	for r := 0; r < 5; r++ {
		if !d.Snapshot(r).Equal(g) {
			t.Fatalf("round %d snapshot differs", r)
		}
	}
}

func TestCyclic(t *testing.T) {
	g0 := graph.Path(3)
	g1 := graph.Complete(3)
	d, err := NewCyclic([]*graph.Graph{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Snapshot(0).Equal(g0) || !d.Snapshot(1).Equal(g1) || !d.Snapshot(2).Equal(g0) {
		t.Fatal("cyclic snapshots wrong")
	}
	if !d.Snapshot(-1).Equal(g0) {
		t.Fatal("negative round should clamp to 0")
	}
}

func TestCyclicErrors(t *testing.T) {
	if _, err := NewCyclic(nil); err == nil {
		t.Fatal("empty snapshot list should error")
	}
	if _, err := NewCyclic([]*graph.Graph{graph.Path(2), graph.Path(3)}); err == nil {
		t.Fatal("mismatched node counts should error")
	}
}

func TestFuncDynamic(t *testing.T) {
	d := NewFunc(3, func(r int) *graph.Graph {
		if r%2 == 0 {
			return graph.Path(3)
		}
		return graph.Complete(3)
	})
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Snapshot(0).M() != 2 || d.Snapshot(1).M() != 3 {
		t.Fatal("func snapshots wrong")
	}
}

func TestRandomChurnDeterministic(t *testing.T) {
	d, err := NewRandomChurn(10, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		a := d.Snapshot(r)
		b := d.Snapshot(r)
		if !a.Equal(b) {
			t.Fatalf("round %d snapshot not deterministic", r)
		}
		if !a.Connected() {
			t.Fatalf("round %d snapshot disconnected", r)
		}
	}
	// Different rounds should (with overwhelming probability) differ.
	if d.Snapshot(0).Equal(d.Snapshot(1)) && d.Snapshot(1).Equal(d.Snapshot(2)) {
		t.Fatal("churn adversary produced identical topologies for 3 rounds")
	}
}

func TestRandomChurnErrors(t *testing.T) {
	if _, err := NewRandomChurn(0, 0.5, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewRandomChurn(3, 1.5, 1); err == nil {
		t.Fatal("p>1 should error")
	}
}

func TestVerifyIntervalConnectivity(t *testing.T) {
	ok := NewStatic(graph.Path(4))
	if err := VerifyIntervalConnectivity(ok, 10); err != nil {
		t.Fatalf("connected dynamic graph rejected: %v", err)
	}
	bad := NewFunc(4, func(r int) *graph.Graph {
		if r == 3 {
			return graph.New(4) // no edges: disconnected
		}
		return graph.Path(4)
	})
	err := VerifyIntervalConnectivity(bad, 10)
	var ce *ConnectivityError
	if !errors.As(err, &ce) {
		t.Fatalf("want ConnectivityError, got %v", err)
	}
	if ce.Round != 3 {
		t.Fatalf("bad round = %d, want 3", ce.Round)
	}
}

func TestFloodTimeStaticPath(t *testing.T) {
	// On a static graph FloodTime equals the eccentricity of the source:
	// the node at distance k is informed in the receive phase of round
	// k-1, so the flood uses k rounds.
	d := NewStatic(graph.Path(5))
	got, err := FloodTime(d, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("FloodTime = %d, want 4", got)
	}
	// From the middle: eccentricity 2, independent of the start round.
	got, err = FloodTime(d, 2, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("FloodTime from middle = %d, want 2", got)
	}
}

func TestFloodTimeStarCenter(t *testing.T) {
	// From the center of a star the flood completes within its first
	// round: 1 round total.
	star, err := graph.Star(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewStatic(star)
	got, err := FloodTime(d, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("FloodTime from star center = %d, want 1", got)
	}
	// From a leaf: 2 rounds (leaf -> center in round 0, center -> rest in 1).
	got, err = FloodTime(d, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("FloodTime from star leaf = %d, want 2", got)
	}
}

func TestFloodTimeSingleNode(t *testing.T) {
	d := NewStatic(graph.New(1))
	got, err := FloodTime(d, 0, 0, 1)
	if err != nil || got != 0 {
		t.Fatalf("single node flood = (%d, %v), want (0, nil)", got, err)
	}
}

func TestFloodTimeErrors(t *testing.T) {
	d := NewStatic(graph.New(3)) // disconnected: flood never completes
	if _, err := FloodTime(d, 0, 0, 5); err == nil {
		t.Fatal("incomplete flood should error")
	}
	if _, err := FloodTime(d, 9, 0, 5); err == nil {
		t.Fatal("bad source should error")
	}
	if _, err := FloodTime(d, 0, -1, 5); err == nil {
		t.Fatal("negative start should error")
	}
}

func TestDynamicDiameterStaticPath(t *testing.T) {
	d := NewStatic(graph.Path(4))
	// Static graph: D equals the static diameter, 3.
	got, err := DynamicDiameter(d, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("D = %d, want 3", got)
	}
}

func TestDynamicDiameterCanExceedStaticDiameters(t *testing.T) {
	// Alternating stars: round r even is a star centered at 1, odd
	// centered at 2. Every snapshot has diameter 2 but a flood can be
	// delayed as the center moves.
	s1, err := graph.Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := graph.Star(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewCyclic([]*graph.Graph{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DynamicDiameter(d, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every snapshot has static diameter 2, but the moving center can
	// stall a flood for an extra round.
	if got < 2 || got > 3 {
		t.Fatalf("D = %d, want within [2,3]", got)
	}
}

func TestDynamicDiameterErrors(t *testing.T) {
	d := NewStatic(graph.New(2))
	if _, err := DynamicDiameter(d, 0, 10); err == nil {
		t.Fatal("window 0 should error")
	}
	if _, err := DynamicDiameter(d, 1, 5); err == nil {
		t.Fatal("disconnected graph should propagate flood error")
	}
}

// pd2Fixture builds a G(PD)_2 dynamic graph: leader 0, V1 = {1,2},
// V2 = {3,4}, with the V1-V2 edges rotating each round.
func pd2Fixture() Dynamic {
	mk := func(edges []graph.Edge) *graph.Graph {
		base := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}
		return graph.MustFromEdges(5, append(base, edges...))
	}
	g0 := mk([]graph.Edge{{U: 1, V: 3}, {U: 1, V: 4}})
	g1 := mk([]graph.Edge{{U: 1, V: 3}, {U: 2, V: 4}})
	g2 := mk([]graph.Edge{{U: 2, V: 3}, {U: 2, V: 4}})
	d, err := NewCyclic([]*graph.Graph{g0, g1, g2})
	if err != nil {
		panic(err)
	}
	return d
}

func TestVerifyPersistentDistance(t *testing.T) {
	d := pd2Fixture()
	dist, err := VerifyPersistentDistance(d, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestVerifyPersistentDistanceViolation(t *testing.T) {
	// Node 2 moves from distance 1 to distance 2 at round 1.
	g0 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	g1 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	d, err := NewCyclic([]*graph.Graph{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = VerifyPersistentDistance(d, 0, 4)
	var pe *PersistentDistanceError
	if !errors.As(err, &pe) {
		t.Fatalf("want PersistentDistanceError, got %v", err)
	}
	if pe.Node != 2 || pe.Round != 1 {
		t.Fatalf("violation = %+v, want node 2 round 1", pe)
	}
}

func TestVerifyPersistentDistanceUnreachable(t *testing.T) {
	d := NewStatic(graph.New(2))
	if _, err := VerifyPersistentDistance(d, 0, 3); err == nil {
		t.Fatal("unreachable node should error")
	}
}

func TestVerifyPersistentDistanceArgErrors(t *testing.T) {
	d := NewStatic(graph.Path(3))
	if _, err := VerifyPersistentDistance(d, 9, 3); err == nil {
		t.Fatal("bad leader should error")
	}
	if _, err := VerifyPersistentDistance(d, 0, 0); err == nil {
		t.Fatal("zero rounds should error")
	}
}

func TestPDClass(t *testing.T) {
	h, err := PDClass(pd2Fixture(), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("PD class = %d, want 2", h)
	}
	// A static star is PD_1.
	star, err := graph.Star(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err = PDClass(NewStatic(star), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("star PD class = %d, want 1", h)
	}
}

func TestLayerPartition(t *testing.T) {
	layers, err := LayerPartition(pd2Fixture(), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 3 {
		t.Fatalf("layer count = %d, want 3", len(layers))
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Fatalf("V0 = %v", layers[0])
	}
	if len(layers[1]) != 2 || len(layers[2]) != 2 {
		t.Fatalf("V1 = %v, V2 = %v", layers[1], layers[2])
	}
}

func TestLayerPartitionError(t *testing.T) {
	if _, err := LayerPartition(NewStatic(graph.New(2)), 0, 2); err == nil {
		t.Fatal("disconnected graph should error")
	}
}

func TestPD2FixtureIntervalConnected(t *testing.T) {
	if err := VerifyIntervalConnectivity(pd2Fixture(), 9); err != nil {
		t.Fatal(err)
	}
}
