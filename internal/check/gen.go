package check

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"strings"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// Instance is one generated test case: an adversary schedule plus the
// parameters the oracles derive everything else from. Every oracle consumes
// the same shape, which is what lets the shrinker be generic.
type Instance struct {
	// M is the primary ℳ(DBL)ₖ schedule. Always set.
	M *multigraph.Multigraph
	// Twin is the Lemma-5 twin of M (|W|+1 nodes, views equal through
	// EqRounds). Only set for pair instances.
	Twin *multigraph.Multigraph
	// EqRounds is the number of completed rounds through which M and Twin
	// claim indistinguishable leader views. Zero unless Twin is set.
	EqRounds int
	// Delay is the static-chain length for composition oracles (the chain
	// of Corollary 1 has Delay intermediate nodes, so observations reach
	// the leader Delay+1 rounds late).
	Delay int
	// Mat is the integer matrix for the linalg-fastpath oracle. Only set
	// for matrix instances (M then holds a trivial placeholder schedule).
	Mat *linalg.Matrix
	// Fam is the adversary-family parameter block for the dynet oracles.
	// Only set for family instances (M then holds a trivial placeholder
	// schedule).
	Fam *FamilyCase
}

// FamilyCase parameterizes one dynet adversary-family draw. The oracles
// rebuild the network from these parameters through the System hooks, so a
// mutant can interpose on the construction itself.
type FamilyCase struct {
	// Kind is "tinterval", "churn", or "randomized".
	Kind string
	// N is the slot count; T the stability window (tinterval only); Core
	// and Dwell the stable-core size and stint length (churn only).
	N, T, Core, Dwell int
	// Policy is the churn rejoin policy (churn only).
	Policy dynet.RejoinPolicy
	// P is the extra-edge probability.
	P float64
	// Seed is the deterministic schedule seed.
	Seed int64
	// Rounds is how far the oracle verifies the family's properties.
	Rounds int
}

// String renders the instance compactly for failure reports. The schedule is
// printed in full only when small; the replay seed is the canonical way to
// reproduce a large one.
func (inst *Instance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "w=%d k=%d horizon=%d delay=%d",
		inst.M.W(), inst.M.K(), inst.M.Horizon(), inst.Delay)
	if inst.Twin != nil {
		fmt.Fprintf(&sb, " twin(w=%d eq=%d)", inst.Twin.W(), inst.EqRounds)
	}
	if inst.Mat != nil {
		fmt.Fprintf(&sb, " mat=%dx%d", inst.Mat.Rows(), inst.Mat.Cols())
		if inst.Mat.Rows()*inst.Mat.Cols() <= 36 {
			fmt.Fprintf(&sb, " %s", inst.Mat)
		}
		return sb.String()
	}
	if inst.Fam != nil {
		f := inst.Fam
		fmt.Fprintf(&sb, " fam=%s(n=%d", f.Kind, f.N)
		switch f.Kind {
		case "tinterval":
			fmt.Fprintf(&sb, " T=%d", f.T)
		case "churn":
			fmt.Fprintf(&sb, " core=%d dwell=%d policy=%s", f.Core, f.Dwell, f.Policy)
		}
		fmt.Fprintf(&sb, " p=%.2f seed=%d rounds=%d)", f.P, f.Seed, f.Rounds)
		return sb.String()
	}
	if inst.M.W()*inst.M.Horizon() <= 64 {
		sb.WriteString(" schedule=")
		sb.WriteString(formatSchedule(inst.M))
	}
	return sb.String()
}

// formatSchedule renders a small schedule as per-node label-set rows.
func formatSchedule(m *multigraph.Multigraph) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for v := 0; v < m.W(); v++ {
		if v > 0 {
			sb.WriteString("; ")
		}
		for r := 0; r < m.Horizon(); r++ {
			s, err := m.LabelsAt(v, r)
			if err != nil {
				sb.WriteString("?")
				continue
			}
			sb.WriteString(s.String())
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// boundarySizes are the Σ⁻k_r thresholds (3^T − 1)/2 at which the Theorem 1
// horizon jumps — the sizes where off-by-one bugs in the closed forms and in
// the adversary construction live.
var boundarySizes = []int{1, 4, 13, 40, 121, 364}

// biasedSize draws a network size in [1, maxW], landing on or next to a
// 3-power boundary half the time. The paper's identities are exact at the
// thresholds and one off on either side of them, so uniform sampling would
// waste most draws on the flat interior.
func biasedSize(rng *rand.Rand, maxW int) int {
	if maxW < 1 {
		maxW = 1
	}
	if rng.Intn(2) == 0 {
		b := boundarySizes[rng.Intn(len(boundarySizes))] + rng.Intn(3) - 1
		if b >= 1 && b <= maxW {
			return b
		}
	}
	return rng.Intn(maxW) + 1
}

// genSchedule draws a random ℳ(DBL)₂ schedule with biased edge cases:
// boundary sizes, the single-node network, and label-distribution extremes
// (all-{1,2} "max-label" rounds, near-constant schedules).
func genSchedule(rng *rand.Rand, maxW, maxH int) (*Instance, error) {
	w := biasedSize(rng, maxW)
	h := rng.Intn(maxH) + 1
	labels := make([][]multigraph.LabelSet, w)
	mode := rng.Intn(4)
	for v := range labels {
		row := make([]multigraph.LabelSet, h)
		for r := range row {
			switch mode {
			case 0: // uniform over the three symbols
				row[r] = multigraph.SymbolFromIndex(rng.Intn(3))
			case 1: // max-label heavy: mostly {1,2}
				if rng.Intn(4) == 0 {
					row[r] = multigraph.SymbolFromIndex(rng.Intn(2))
				} else {
					row[r] = multigraph.SetOf(1, 2)
				}
			case 2: // near-constant per node
				if r == 0 || rng.Intn(8) == 0 {
					row[r] = multigraph.SymbolFromIndex(rng.Intn(3))
				} else {
					row[r] = row[r-1]
				}
			default: // single-label heavy: mostly {1} or {2}
				row[r] = multigraph.SetOf(rng.Intn(2) + 1)
			}
		}
		labels[v] = row
	}
	m, err := multigraph.New(2, labels)
	if err != nil {
		return nil, err
	}
	return &Instance{M: m, Delay: rng.Intn(3)}, nil
}

// genScheduleK draws a random ℳ(DBL)ₖ schedule over a small alphabet, for
// the general-k enumerator. Sizes stay tiny: the enumeration is exponential
// in both the alphabet and the node count.
func genScheduleK(rng *rand.Rand, maxK, maxW, maxH int) (*Instance, error) {
	k := rng.Intn(maxK) + 1
	w := rng.Intn(maxW) + 1
	h := rng.Intn(maxH) + 1
	symbols := multigraph.SymbolCount(k)
	labels := make([][]multigraph.LabelSet, w)
	for v := range labels {
		row := make([]multigraph.LabelSet, h)
		for r := range row {
			row[r] = multigraph.SymbolFromIndex(rng.Intn(symbols))
		}
		labels[v] = row
	}
	m, err := multigraph.New(k, labels)
	if err != nil {
		return nil, err
	}
	return &Instance{M: m, Delay: rng.Intn(3)}, nil
}

// genMatrix draws a random integer matrix for the linalg-fastpath oracle.
// Entry regimes are biased toward the int64 overflow boundary: small entries
// (the pure fast path), medium entries whose Bareiss pivot products overflow
// after a step or two (mid-elimination fallback), entries within a few units
// of ±MaxInt64 (immediate fallback), and entries beyond int64 entirely
// (big-from-the-start). Zero entries and duplicated rows force pivot
// searches, row swaps, and rank deficiency.
func genMatrix(rng *rand.Rand) (*Instance, error) {
	rows := rng.Intn(7) + 1
	cols := rng.Intn(8) + 1
	m, err := linalg.NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	regime := rng.Intn(4)
	entry := func() *big.Int {
		if rng.Intn(4) == 0 {
			return new(big.Int) // zero: pivot search + rank deficiency
		}
		sign := int64(1 - 2*rng.Intn(2))
		switch regime {
		case 0: // small: stays on the int64 path throughout
			return big.NewInt(sign * int64(rng.Intn(10)))
		case 1: // medium: pivot products overflow mid-elimination
			return big.NewInt(sign * (int64(rng.Intn(1<<31)) + 1<<31))
		case 2: // boundary: within a few units of ±MaxInt64 (and MinInt64)
			v := big.NewInt(math.MaxInt64 - int64(rng.Intn(3)))
			if sign < 0 {
				v.Neg(v)
				if rng.Intn(4) == 0 {
					v.SetInt64(math.MinInt64)
				}
			}
			return v
		default: // beyond int64: forces the big.Int path from the start
			v := new(big.Int).Lsh(big.NewInt(int64(rng.Intn(1<<20)+1)), uint(50+rng.Intn(30)))
			if sign < 0 {
				v.Neg(v)
			}
			return v
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, entry())
		}
	}
	// Duplicate a row half the time: guaranteed elimination work.
	if rows > 1 && rng.Intn(2) == 0 {
		src, dst := rng.Intn(rows), rng.Intn(rows)
		for j := 0; j < cols; j++ {
			m.Set(dst, j, m.At(src, j))
		}
	}
	// The schedule slot is a placeholder; matrix oracles only read Mat.
	placeholder, err := multigraph.New(2, [][]multigraph.LabelSet{{multigraph.SetOf(1)}})
	if err != nil {
		return nil, err
	}
	return &Instance{M: placeholder, Mat: m}, nil
}

// genPair draws a Lemma-5 adversarial pair: a size biased toward the 3-power
// boundaries, a sustained-rounds count up to the Lemma 5 maximum (capped so
// the 3^rounds count vectors stay small), extended past the divergence point
// the way every consumer of the pair uses it.
func genPair(rng *rand.Rand, maxW, maxRounds int) (*Instance, error) {
	n := biasedSize(rng, maxW)
	maxR := core.MaxIndistinguishableRounds(n)
	if maxR > maxRounds {
		maxR = maxRounds
	}
	rounds := rng.Intn(maxR) + 1
	return buildPair(n, rounds, rng.Intn(3))
}

// pairKRoundCaps bounds the sustained-rounds draw per alphabet size so the
// (2^k−1)^rounds history space stays enumerable: 27 histories at the k=2 cap,
// 49 at k=3, 15 at k=4.
var pairKRoundCaps = map[int]int{2: 3, 3: 2, 4: 1}

// genPairK draws a general-k Lemma-5 pair: alphabet size k ∈ {2,3,4}, rounds
// up to the per-k cap, and the smallest sustaining size plus a small excess —
// general-k sizes grow like ((2^k−1)^rounds)/2, so biasing toward the
// threshold keeps instances small while still crossing it.
func genPairK(rng *rand.Rand) (*Instance, error) {
	k := rng.Intn(3) + 2
	rounds := rng.Intn(pairKRoundCaps[k]) + 1
	n := core.MinSizeForRoundsK(rounds, k) + rng.Intn(8)
	return buildPairK(n, rounds, k, rng.Intn(3))
}

// buildPairK constructs the extended general-k pair instance for exact
// parameters; the shrinker uses it to propose smaller pairs.
func buildPairK(n, rounds, k, delay int) (*Instance, error) {
	pair, err := core.IndistinguishablePairK(n, rounds, k)
	if err != nil {
		return nil, err
	}
	ext, err := pair.Extend(2)
	if err != nil {
		return nil, err
	}
	return &Instance{M: ext.M, Twin: ext.MPrime, EqRounds: rounds, Delay: delay}, nil
}

// buildPair is the k=2 special case retained for the k=2-only oracles.
func buildPair(n, rounds, delay int) (*Instance, error) {
	return buildPairK(n, rounds, 2, delay)
}

// placeholderSchedule is the trivial one-node schedule carried by instances
// whose payload lives outside M (matrices, family cases).
func placeholderSchedule() (*multigraph.Multigraph, error) {
	return multigraph.New(2, [][]multigraph.LabelSet{{multigraph.SetOf(1)}})
}

// familyKinds is the draw order for unpinned genFamily calls.
var familyKinds = []string{"tinterval", "churn", "randomized"}

// genFamily draws one dynet adversary-family case of the given kind (or a
// random kind when kind is empty). Sizes are small (the property verifier
// BFS-scans every round) but cover the degenerate shapes: n=1, core=n,
// dwell=1, window=1, and p at both extremes.
func genFamily(rng *rand.Rand, kind string) (*Instance, error) {
	placeholder, err := placeholderSchedule()
	if err != nil {
		return nil, err
	}
	if kind == "" {
		kind = familyKinds[rng.Intn(len(familyKinds))]
	}
	f := &FamilyCase{
		Kind: kind,
		N:    rng.Intn(14) + 1,
		P:    float64(rng.Intn(5)) * 0.1,
		Seed: int64(rng.Int31()),
	}
	switch kind {
	case "tinterval":
		f.T = rng.Intn(5) + 1
		f.Rounds = 3*f.T + rng.Intn(4) + 1
	case "churn":
		f.Core = rng.Intn(f.N) + 1
		f.Dwell = rng.Intn(4) + 1
		f.Policy = dynet.RejoinCycle
		if rng.Intn(2) == 0 {
			f.Policy = dynet.RejoinNever
		}
		f.Rounds = 4*f.Dwell + rng.Intn(4) + 1
	case "randomized":
		f.Rounds = rng.Intn(12) + 4
	default:
		return nil, fmt.Errorf("check: unknown family kind %q", kind)
	}
	return &Instance{M: placeholder, Fam: f}, nil
}

// buildFamilyNet constructs the dynamic network for a family case through the
// System hooks (so mutants can interpose) and returns it with the declared
// properties the family promises.
func buildFamilyNet(f *FamilyCase, sys *System) (dynet.Dynamic, dynet.Properties, error) {
	switch f.Kind {
	case "tinterval":
		d, err := sys.NewTInterval(f.N, f.T, f.P, f.Seed)
		if err != nil {
			return nil, dynet.Properties{}, err
		}
		props := dynet.Properties{
			IntervalConnected: true,
			StabilityWindow:   f.T,
			SeedDeterministic: true,
		}
		if pc, ok := d.(dynet.PropertyCarrier); ok {
			props = pc.Properties()
		}
		return d, props, nil
	case "churn":
		d, err := sys.NewChurn(f.N, f.Core, f.Dwell, f.Policy, f.P, f.Seed)
		if err != nil {
			return nil, dynet.Properties{}, err
		}
		props := dynet.Properties{
			LiveAccounting:    true,
			SeedDeterministic: true,
		}
		if pc, ok := d.(dynet.PropertyCarrier); ok {
			props = pc.Properties()
		}
		return d, props, nil
	case "randomized":
		d, err := dynet.NewRandomized(f.N, f.P, f.Seed)
		if err != nil {
			return nil, dynet.Properties{}, err
		}
		return d, d.Properties(), nil
	}
	return nil, dynet.Properties{}, fmt.Errorf("check: unknown family kind %q", f.Kind)
}
