package check

import (
	"fmt"
	"math/rand"
	"strings"

	"anondyn/internal/core"
	"anondyn/internal/multigraph"
)

// Instance is one generated test case: an adversary schedule plus the
// parameters the oracles derive everything else from. Every oracle consumes
// the same shape, which is what lets the shrinker be generic.
type Instance struct {
	// M is the primary ℳ(DBL)ₖ schedule. Always set.
	M *multigraph.Multigraph
	// Twin is the Lemma-5 twin of M (|W|+1 nodes, views equal through
	// EqRounds). Only set for pair instances.
	Twin *multigraph.Multigraph
	// EqRounds is the number of completed rounds through which M and Twin
	// claim indistinguishable leader views. Zero unless Twin is set.
	EqRounds int
	// Delay is the static-chain length for composition oracles (the chain
	// of Corollary 1 has Delay intermediate nodes, so observations reach
	// the leader Delay+1 rounds late).
	Delay int
}

// String renders the instance compactly for failure reports. The schedule is
// printed in full only when small; the replay seed is the canonical way to
// reproduce a large one.
func (inst *Instance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "w=%d k=%d horizon=%d delay=%d",
		inst.M.W(), inst.M.K(), inst.M.Horizon(), inst.Delay)
	if inst.Twin != nil {
		fmt.Fprintf(&sb, " twin(w=%d eq=%d)", inst.Twin.W(), inst.EqRounds)
	}
	if inst.M.W()*inst.M.Horizon() <= 64 {
		sb.WriteString(" schedule=")
		sb.WriteString(formatSchedule(inst.M))
	}
	return sb.String()
}

// formatSchedule renders a small schedule as per-node label-set rows.
func formatSchedule(m *multigraph.Multigraph) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for v := 0; v < m.W(); v++ {
		if v > 0 {
			sb.WriteString("; ")
		}
		for r := 0; r < m.Horizon(); r++ {
			s, err := m.LabelsAt(v, r)
			if err != nil {
				sb.WriteString("?")
				continue
			}
			sb.WriteString(s.String())
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// boundarySizes are the Σ⁻k_r thresholds (3^T − 1)/2 at which the Theorem 1
// horizon jumps — the sizes where off-by-one bugs in the closed forms and in
// the adversary construction live.
var boundarySizes = []int{1, 4, 13, 40, 121, 364}

// biasedSize draws a network size in [1, maxW], landing on or next to a
// 3-power boundary half the time. The paper's identities are exact at the
// thresholds and one off on either side of them, so uniform sampling would
// waste most draws on the flat interior.
func biasedSize(rng *rand.Rand, maxW int) int {
	if maxW < 1 {
		maxW = 1
	}
	if rng.Intn(2) == 0 {
		b := boundarySizes[rng.Intn(len(boundarySizes))] + rng.Intn(3) - 1
		if b >= 1 && b <= maxW {
			return b
		}
	}
	return rng.Intn(maxW) + 1
}

// genSchedule draws a random ℳ(DBL)₂ schedule with biased edge cases:
// boundary sizes, the single-node network, and label-distribution extremes
// (all-{1,2} "max-label" rounds, near-constant schedules).
func genSchedule(rng *rand.Rand, maxW, maxH int) (*Instance, error) {
	w := biasedSize(rng, maxW)
	h := rng.Intn(maxH) + 1
	labels := make([][]multigraph.LabelSet, w)
	mode := rng.Intn(4)
	for v := range labels {
		row := make([]multigraph.LabelSet, h)
		for r := range row {
			switch mode {
			case 0: // uniform over the three symbols
				row[r] = multigraph.SymbolFromIndex(rng.Intn(3))
			case 1: // max-label heavy: mostly {1,2}
				if rng.Intn(4) == 0 {
					row[r] = multigraph.SymbolFromIndex(rng.Intn(2))
				} else {
					row[r] = multigraph.SetOf(1, 2)
				}
			case 2: // near-constant per node
				if r == 0 || rng.Intn(8) == 0 {
					row[r] = multigraph.SymbolFromIndex(rng.Intn(3))
				} else {
					row[r] = row[r-1]
				}
			default: // single-label heavy: mostly {1} or {2}
				row[r] = multigraph.SetOf(rng.Intn(2) + 1)
			}
		}
		labels[v] = row
	}
	m, err := multigraph.New(2, labels)
	if err != nil {
		return nil, err
	}
	return &Instance{M: m, Delay: rng.Intn(3)}, nil
}

// genScheduleK draws a random ℳ(DBL)ₖ schedule over a small alphabet, for
// the general-k enumerator. Sizes stay tiny: the enumeration is exponential
// in both the alphabet and the node count.
func genScheduleK(rng *rand.Rand, maxK, maxW, maxH int) (*Instance, error) {
	k := rng.Intn(maxK) + 1
	w := rng.Intn(maxW) + 1
	h := rng.Intn(maxH) + 1
	symbols := multigraph.SymbolCount(k)
	labels := make([][]multigraph.LabelSet, w)
	for v := range labels {
		row := make([]multigraph.LabelSet, h)
		for r := range row {
			row[r] = multigraph.SymbolFromIndex(rng.Intn(symbols))
		}
		labels[v] = row
	}
	m, err := multigraph.New(k, labels)
	if err != nil {
		return nil, err
	}
	return &Instance{M: m, Delay: rng.Intn(3)}, nil
}

// genPair draws a Lemma-5 adversarial pair: a size biased toward the 3-power
// boundaries, a sustained-rounds count up to the Lemma 5 maximum (capped so
// the 3^rounds count vectors stay small), extended past the divergence point
// the way every consumer of the pair uses it.
func genPair(rng *rand.Rand, maxW, maxRounds int) (*Instance, error) {
	n := biasedSize(rng, maxW)
	maxR := core.MaxIndistinguishableRounds(n)
	if maxR > maxRounds {
		maxR = maxRounds
	}
	rounds := rng.Intn(maxR) + 1
	return buildPair(n, rounds, rng.Intn(3))
}

// buildPair constructs the extended pair instance for exact parameters; the
// shrinker uses it to propose smaller pairs.
func buildPair(n, rounds, delay int) (*Instance, error) {
	pair, err := core.IndistinguishablePair(n, rounds)
	if err != nil {
		return nil, err
	}
	ext, err := pair.Extend(2)
	if err != nil {
		return nil, err
	}
	return &Instance{M: ext.M, Twin: ext.MPrime, EqRounds: rounds, Delay: delay}, nil
}
