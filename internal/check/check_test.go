package check

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// TestHealthyRun is the core acceptance property: on the healthy tree, no
// oracle fires across a seeded campaign.
func TestHealthyRun(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 10
	}
	rep, err := Run(context.Background(), Options{Seed: 1, Iters: iters})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range rep.Failures {
		t.Errorf("oracle %s fired on the healthy system (seed %d): %v\n  instance: %s\n  %s",
			f.Oracle, f.Seed, f.Err, f.Instance, f.ReplayCommand())
	}
	wantInstances := iters * len(Oracles())
	if rep.Instances != wantInstances {
		t.Errorf("generated %d instances, want %d", rep.Instances, wantInstances)
	}
	if rep.Evals < rep.Instances {
		t.Errorf("evals %d < instances %d", rep.Evals, rep.Instances)
	}
}

// TestIterSeedDeterminism pins the seed derivation: same inputs, same seed;
// different oracle or iteration, different stream.
func TestIterSeedDeterminism(t *testing.T) {
	a := IterSeed(1, "interval", 7)
	if b := IterSeed(1, "interval", 7); b != a {
		t.Fatalf("IterSeed not deterministic: %d vs %d", a, b)
	}
	if b := IterSeed(1, "interval", 8); b == a {
		t.Errorf("adjacent iterations share seed %d", a)
	}
	if b := IterSeed(1, "eliminate", 7); b == a {
		t.Errorf("different oracles share seed %d", a)
	}
	if b := IterSeed(2, "interval", 7); b == a {
		t.Errorf("adjacent campaigns share seed %d", a)
	}
}

// TestGeneratorsDeterministic verifies that every oracle's generator is a
// pure function of the seed — the property replay depends on.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, o := range Oracles() {
		for iter := 0; iter < 5; iter++ {
			seed := IterSeed(3, o.Name, iter)
			a := genAt(t, o, seed)
			b := genAt(t, o, seed)
			if a.String() != b.String() {
				t.Errorf("%s: seed %d generated %s then %s", o.Name, seed, a, b)
			}
			va, err := a.M.LeaderView(a.M.Horizon())
			if err != nil {
				t.Fatalf("%s: view: %v", o.Name, err)
			}
			vb, err := b.M.LeaderView(b.M.Horizon())
			if err != nil {
				t.Fatalf("%s: view: %v", o.Name, err)
			}
			if !va.Equal(vb) {
				t.Errorf("%s: seed %d generated differing views", o.Name, seed)
			}
		}
	}
}

func genAt(t *testing.T, o *Oracle, seed int64) *Instance {
	t.Helper()
	inst, err := replayGen(o, seed)
	if err != nil {
		t.Fatalf("%s: gen at seed %d: %v", o.Name, seed, err)
	}
	return inst
}

// replayGen regenerates the instance a seed denotes, as Replay does.
func replayGen(o *Oracle, seed int64) (*Instance, error) {
	rng := newRng(seed)
	return o.Gen(rng)
}

// TestReplayReproducesFailure injects a broken solver, finds a failure via
// RunWithSystem, and confirms that the reported seed regenerates an
// instance the same broken system fails on — the contract behind the
// printed replay command.
func TestReplayReproducesFailure(t *testing.T) {
	broken := func() *System {
		sys := Healthy()
		inner := sys.Solve
		sys.Solve = func(v multigraph.LeaderView) (kernel.Interval, error) {
			iv, err := inner(v)
			if err == nil && !iv.Empty && !iv.Unbounded {
				iv.MaxSize += 2
			}
			return iv, err
		}
		return sys
	}
	var out strings.Builder
	rep, err := RunWithSystem(context.Background(), Options{
		Seed: 1, Iters: 30, Oracles: []string{"interval"}, Out: &out,
	}, broken())
	if err != nil {
		t.Fatalf("RunWithSystem: %v", err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("widened solver never caught by the interval oracle")
	}
	f := rep.Failures[0]
	if want := fmt.Sprintf("go run ./cmd/check -oracle interval -replay %d", f.Seed); f.ReplayCommand() != want {
		t.Errorf("ReplayCommand() = %q, want %q", f.ReplayCommand(), want)
	}
	if !strings.Contains(out.String(), "replay: go run ./cmd/check -oracle interval -replay") {
		t.Errorf("run output lacks replay line:\n%s", out.String())
	}
	// The same seed against the same broken system must fail again, and
	// shrink to the same counterexample.
	reRep := &Report{}
	again := runOne(mustOracle(t, "interval"), f.Seed, broken(), 0, reRep, newCheckMetrics())
	if again == nil {
		t.Fatalf("seed %d did not reproduce the failure", f.Seed)
	}
	if again.Instance.String() != f.Instance.String() {
		t.Errorf("replay shrank to %s, original run shrank to %s", again.Instance, f.Instance)
	}
	// Against the healthy system, the same seed passes: Replay exits clean.
	rf, err := Replay("interval", f.Seed, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rf != nil {
		t.Errorf("healthy replay of seed %d failed: %v", f.Seed, rf.Err)
	}
}

func mustOracle(t *testing.T, name string) *Oracle {
	t.Helper()
	o, err := OracleByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestShrinkMinimizes verifies the shrinker reaches a local minimum on a
// synthetic predicate: any schedule with at least 3 nodes fails, so the
// minimum failing instance has exactly 3 nodes and one round.
func TestShrinkMinimizes(t *testing.T) {
	o := mustOracle(t, "interval")
	var inst *Instance
	for iter := 0; ; iter++ {
		if iter > 200 {
			t.Fatal("no instance with >= 5 nodes generated")
		}
		cand, err := replayGen(o, IterSeed(5, o.Name, iter))
		if err != nil {
			t.Fatal(err)
		}
		if cand.M.W() >= 5 && cand.M.Horizon() >= 2 {
			inst = cand
			break
		}
	}
	check := func(i *Instance, _ *System) error {
		if i.M.W() >= 3 {
			return fmt.Errorf("too big")
		}
		return nil
	}
	shrunk, steps := Shrink(inst, Healthy(), check, 0)
	if steps == 0 {
		t.Error("shrinker did no work")
	}
	if shrunk.M.W() != 3 || shrunk.M.Horizon() != 1 {
		t.Errorf("shrunk to w=%d h=%d, want w=3 h=1", shrunk.M.W(), shrunk.M.Horizon())
	}
}

// TestSelectOracles covers subset selection and unknown names.
func TestSelectOracles(t *testing.T) {
	all, err := selectOracles(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Oracles()) {
		t.Errorf("default selection has %d oracles, want %d", len(all), len(Oracles()))
	}
	sub, err := selectOracles([]string{"pair", "interval"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "interval" || sub[1].Name != "pair" {
		t.Errorf("subset selection wrong: %v", namesOf(sub))
	}
	if _, err := selectOracles([]string{"nope"}); err == nil {
		t.Error("unknown oracle accepted")
	}
	if _, err := RunWithSystem(context.Background(), Options{Iters: 0}, Healthy()); err == nil {
		t.Error("zero iters accepted")
	}
}

func namesOf(os []*Oracle) []string {
	var out []string
	for _, o := range os {
		out = append(out, o.Name)
	}
	return out
}

// TestRegistryWellFormed pins structural invariants of the registry: unique
// names, docs, generators, checks, and at least one mutant per oracle (the
// hook the mutation smoke test needs to prove the oracle non-vacuous).
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range Oracles() {
		if o.Name == "" || o.Doc == "" || o.Gen == nil || o.Check == nil {
			t.Errorf("oracle %q incomplete", o.Name)
		}
		if seen[o.Name] {
			t.Errorf("duplicate oracle name %q", o.Name)
		}
		seen[o.Name] = true
		if len(o.Mutants) == 0 {
			t.Errorf("oracle %q has no mutants: mutation smoke cannot validate it", o.Name)
		}
		mseen := map[string]bool{}
		for _, m := range o.Mutants {
			if m.Name == "" {
				t.Errorf("oracle %q has unnamed mutant", o.Name)
			}
			if mseen[m.Name] {
				t.Errorf("oracle %q duplicate mutant %q", o.Name, m.Name)
			}
			mseen[m.Name] = true
			if (m.Sys == nil) == (m.Corrupt == nil) {
				t.Errorf("oracle %q mutant %q must set exactly one of Sys/Corrupt", o.Name, m.Name)
			}
		}
	}
}
