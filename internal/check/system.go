package check

import (
	"context"
	"math/big"

	"anondyn/internal/chainnet"
	"anondyn/internal/core"
	"anondyn/internal/counting"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/histtree"
	"anondyn/internal/kernel"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

// IncrementalAdder is the slice of kernel.IncrementalSolver the oracles
// depend on, as an interface so a mutation can interpose on it.
type IncrementalAdder interface {
	AddRound(multigraph.Observation) (kernel.Interval, error)
	Rounds() int
}

// System bundles the implementations under test. Every oracle routes its
// calls to the layers it cross-checks through these hooks, so the mutation
// smoke test can swap in a deliberately broken variant of one layer and
// verify that the oracle notices. Production runs use Healthy().
type System struct {
	// Solve is the O(3^t) batch solver (kernel.SolveCountInterval).
	Solve func(multigraph.LeaderView) (kernel.Interval, error)
	// NewIncremental creates the per-round incremental solver.
	NewIncremental func() IncrementalAdder
	// Enumerate is the general-k exact enumerator (kernel.EnumerateSizes).
	Enumerate func(view multigraph.LeaderView, k int, limits kernel.EnumLimits) ([]int, error)
	// Eliminate is the dense rational-elimination solver (EliminationSizes).
	Eliminate func(view multigraph.LeaderView) ([]int, error)
	// Kernel is the closed-form kernel vector (kernel.ClosedFormKernel).
	Kernel func(r int) linalg.Vector
	// KernelSumNeg and KernelSumPos are the Lemma 4 sums.
	KernelSumNeg func(r int) *big.Int
	KernelSumPos func(r int) *big.Int
	// MaxIndist and MinSizeFor are the Theorem 1 closed forms.
	MaxIndist  func(n int) int
	MinSizeFor func(t int) int
	// WorstRounds measures the leader-state counter on the worst-case
	// schedule (core.WorstCaseCountRounds).
	WorstRounds func(n int) (core.CountResult, error)
	// ChainRounds is the delayed-view composition (core.ChainCountRounds).
	ChainRounds func(n, delay int) (core.CountResult, error)
	// MsgCount runs the message-level chain protocol to termination
	// (chainnet.RunCount on the sequential engine).
	MsgCount func(nw *chainnet.Network, maxRounds int) (chainnet.CountResult, error)
	// HistCount runs the history-tree counter to termination
	// (histtree.Count on the sequential engine).
	HistCount func(net dynet.Dynamic, leader graph.NodeID, maxRounds int) (count, rounds int, err error)
	// Transform is the Lemma-1 multigraph → 𝒢(PD)₂ transformation.
	Transform func(m *multigraph.Multigraph) (dynet.Dynamic, *multigraph.PD2Layout, error)
	// EngineSeq is the reference sequential round engine
	// (runtime.RunSequential), the semantics every other engine must match.
	EngineSeq runtime.Engine
	// EngineSharded is the sharded worker-pool round engine
	// (runtime.RunSharded).
	EngineSharded runtime.Engine
	// RREFFast is the fraction-free int64 Bareiss RREF with big.Int
	// fallback (the production path, linalg.(*Matrix).RREF).
	RREFFast func(m *linalg.Matrix) ([][]*big.Rat, []int)
	// RREFRef is the retained classical big.Rat elimination
	// (linalg.(*Matrix).RREFReference) the fast path is checked against.
	RREFRef func(m *linalg.Matrix) ([][]*big.Rat, []int)
	// Limits budgets the general-k enumerator.
	Limits kernel.EnumLimits
	// PairK is the general-k Lemma-5 pair construction
	// (core.IndistinguishablePairK).
	PairK func(n, rounds, k int) (*core.Pair, error)
	// KernelK is the general-k closed-form kernel (kernel.ClosedFormKernelK).
	KernelK func(r, k int) (linalg.Vector, error)
	// KernelSumNegK is the general-k Lemma-4 negative kernel sum.
	KernelSumNegK func(r, k int) (*big.Int, error)
	// MaxIndistK is the general-k horizon closed form
	// (core.MaxIndistinguishableRoundsK).
	MaxIndistK func(n, k int) int
	// DegOracleCount runs the role-discovering degree-oracle counter to
	// termination (counting.DegreeOracleCount on the sequential engine).
	DegOracleCount func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (count, rounds int, err error)
	// LayoutOracleCount runs the layout-fed degree-oracle counter
	// (counting.OracleCount on the sequential engine).
	LayoutOracleCount func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (count, rounds int, err error)
	// NewTInterval builds the stability-window adversary (dynet.NewTInterval).
	NewTInterval func(n, window int, p float64, seed int64) (dynet.Dynamic, error)
	// NewChurn builds the join/leave churn adversary (dynet.NewChurn).
	NewChurn func(n, core, dwell int, policy dynet.RejoinPolicy, p float64, seed int64) (dynet.LiveTracker, error)
	// VerifyProps is the adversary-family conformance verifier
	// (dynet.VerifyProperties).
	VerifyProps func(d dynet.Dynamic, p dynet.Properties, rounds int) error
}

// Healthy wires the System to the real implementations.
func Healthy() *System {
	return &System{
		Solve: kernel.SolveCountInterval,
		NewIncremental: func() IncrementalAdder {
			return kernel.NewIncrementalSolver()
		},
		Enumerate:    kernel.EnumerateSizes,
		Eliminate:    EliminationSizes,
		Kernel:       kernel.ClosedFormKernel,
		KernelSumNeg: kernel.KernelSumNegative,
		KernelSumPos: kernel.KernelSumPositive,
		MaxIndist:    core.MaxIndistinguishableRounds,
		MinSizeFor:   core.MinSizeForRounds,
		WorstRounds:  core.WorstCaseCountRounds,
		ChainRounds:  core.ChainCountRounds,
		MsgCount: func(nw *chainnet.Network, maxRounds int) (chainnet.CountResult, error) {
			return chainnet.RunCount(nw, maxRounds, runtime.SequentialEngine(context.Background()))
		},
		HistCount: func(net dynet.Dynamic, leader graph.NodeID, maxRounds int) (int, int, error) {
			return histtree.Count(net, leader, maxRounds, runtime.SequentialEngine(context.Background()))
		},
		Transform: func(m *multigraph.Multigraph) (dynet.Dynamic, *multigraph.PD2Layout, error) {
			return m.ToPD2()
		},
		EngineSeq:     runtime.RunSequential,
		EngineSharded: runtime.RunSharded,
		RREFFast:      (*linalg.Matrix).RREF,
		RREFRef:       (*linalg.Matrix).RREFReference,
		PairK:         core.IndistinguishablePairK,
		KernelK:       kernel.ClosedFormKernelK,
		KernelSumNegK: kernel.KernelSumNegativeK,
		MaxIndistK:    core.MaxIndistinguishableRoundsK,
		DegOracleCount: func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (int, int, error) {
			return counting.DegreeOracleCount(net, leader, v1, v2,
				counting.Runner(runtime.SequentialEngine(context.Background())))
		},
		LayoutOracleCount: func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (int, int, error) {
			return counting.OracleCount(net, leader, v1, v2,
				counting.Runner(runtime.SequentialEngine(context.Background())))
		},
		NewTInterval: func(n, window int, p float64, seed int64) (dynet.Dynamic, error) {
			return dynet.NewTInterval(n, window, p, seed)
		},
		NewChurn: func(n, core, dwell int, policy dynet.RejoinPolicy, p float64, seed int64) (dynet.LiveTracker, error) {
			return dynet.NewChurn(n, core, dwell, policy, p, seed)
		},
		VerifyProps: dynet.VerifyProperties,
	}
}
