package check

import "anondyn/internal/obs"

// Harness instrumentation reports through the process-wide collector
// (obs.Global), same as the kernel solvers: cmd/check installs it via the
// shared -metrics/-pprof flags, and unobserved runs pay one nil check per
// engine start.

// checkMetrics resolves the harness counters once per Run, nil handles when
// unobserved.
type checkMetrics struct {
	instances   *obs.Counter
	evals       *obs.Counter
	failures    *obs.Counter
	shrinkSteps *obs.Counter
}

func newCheckMetrics() checkMetrics {
	col := obs.Global()
	if col == nil {
		return checkMetrics{}
	}
	return checkMetrics{
		instances:   col.Counter(obs.CheckInstances),
		evals:       col.Counter(obs.CheckEvals),
		failures:    col.Counter(obs.CheckFailures),
		shrinkSteps: col.Counter(obs.CheckShrinkSteps),
	}
}
