package check

import (
	"math/big"

	"anondyn/internal/core"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// Shrink greedily minimizes a failing instance: it repeatedly proposes
// structurally smaller candidates — fewer rounds first, then fewer nodes,
// then simpler labels, then a shorter chain — and moves to the first
// candidate on which the check still fails, until no candidate fails or the
// step budget is spent. The candidate order is deterministic, so a replayed
// seed shrinks to the same instance. It returns the minimized instance and
// the number of candidate evaluations spent.
func Shrink(inst *Instance, sys *System, check func(*Instance, *System) error, maxSteps int) (*Instance, int) {
	if maxSteps <= 0 {
		maxSteps = DefaultShrinkBudget
	}
	cur := inst
	steps := 0
	for steps < maxSteps {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			steps++
			if check(cand, sys) != nil {
				cur = cand
				improved = true
				break
			}
			if steps >= maxSteps {
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, steps
}

// DefaultShrinkBudget caps the candidate evaluations per failure. Schedules
// here are small, so a few hundred steps reach a local minimum.
const DefaultShrinkBudget = 500

// shrinkCandidates proposes the next-smaller instances in preference order.
// Pair instances (Twin set) shrink by rebuilding the Lemma-5 construction
// with smaller parameters — the pair's structure is derived, so arbitrary
// label surgery would just break its invariants rather than minimize a
// counterexample. Schedule instances shrink freely.
func shrinkCandidates(inst *Instance) []*Instance {
	var out []*Instance
	add := func(cand *Instance, err error) {
		if err == nil && cand != nil {
			out = append(out, cand)
		}
	}
	if inst.Mat != nil {
		return shrinkMatrixCandidates(inst)
	}
	if inst.Fam != nil {
		return shrinkFamilyCandidates(inst)
	}
	if inst.Twin != nil {
		n, r, k := inst.M.W(), inst.EqRounds, inst.M.K()
		if r > 1 {
			add(buildPairK(n, r-1, k, inst.Delay))
		}
		for _, smaller := range []int{n / 2, n - 1} {
			if smaller >= 1 && smaller < n && r <= core.MaxIndistinguishableRoundsK(smaller, k) {
				add(buildPairK(smaller, r, k, inst.Delay))
			}
		}
		if inst.Delay > 0 {
			add(buildPairK(n, r, k, 0))
		}
		return out
	}
	m := inst.M
	// Fewer rounds.
	if m.Horizon() > 1 {
		if tm, err := m.Truncate(m.Horizon() - 1); err == nil {
			add(&Instance{M: tm, Delay: inst.Delay}, nil)
		}
	}
	// Fewer nodes: drop each node in turn.
	if m.W() > 1 {
		labels := scheduleOf(m)
		for v := 0; v < m.W(); v++ {
			rest := make([][]multigraph.LabelSet, 0, m.W()-1)
			rest = append(rest, labels[:v]...)
			rest = append(rest, labels[v+1:]...)
			nm, err := multigraph.New(m.K(), rest)
			add(&Instance{M: nm, Delay: inst.Delay}, err)
		}
	}
	// Simpler labels: rewrite each non-{1} entry to {1}.
	one := multigraph.SetOf(1)
	for v := 0; v < m.W(); v++ {
		for r := 0; r < m.Horizon(); r++ {
			s, err := m.LabelsAt(v, r)
			if err != nil || s == one {
				continue
			}
			labels := scheduleOf(m)
			labels[v][r] = one
			nm, err := multigraph.New(m.K(), labels)
			add(&Instance{M: nm, Delay: inst.Delay}, err)
		}
	}
	// Shorter chain.
	if inst.Delay > 0 {
		add(&Instance{M: m, Delay: inst.Delay - 1}, nil)
	}
	return out
}

// shrinkFamilyCandidates proposes smaller family cases: fewer verified
// rounds first, then fewer nodes (clamping the churn core), then smaller
// windows/dwells, then zero extra-edge probability. The network is derived
// from the parameters, so shrinking rebuilds rather than mutating snapshots.
func shrinkFamilyCandidates(inst *Instance) []*Instance {
	f := inst.Fam
	var out []*Instance
	propose := func(mut func(c *FamilyCase)) {
		c := *f
		mut(&c)
		if c.Core > c.N {
			c.Core = c.N
		}
		out = append(out, &Instance{M: inst.M, Fam: &c})
	}
	if f.Rounds > 1 {
		propose(func(c *FamilyCase) { c.Rounds = f.Rounds / 2 })
		propose(func(c *FamilyCase) { c.Rounds = f.Rounds - 1 })
	}
	for _, smaller := range []int{f.N / 2, f.N - 1} {
		if smaller >= 1 && smaller < f.N {
			propose(func(c *FamilyCase) { c.N = smaller })
		}
	}
	if f.Kind == "tinterval" && f.T > 1 {
		propose(func(c *FamilyCase) { c.T = f.T - 1 })
	}
	if f.Kind == "churn" {
		if f.Dwell > 1 {
			propose(func(c *FamilyCase) { c.Dwell = f.Dwell - 1 })
		}
		if f.Core > 1 {
			propose(func(c *FamilyCase) { c.Core = f.Core - 1 })
		}
	}
	if f.P > 0 {
		propose(func(c *FamilyCase) { c.P = 0 })
	}
	return out
}

// shrinkMatrixCandidates proposes smaller matrices for a failing matrix
// instance: fewer rows, fewer columns, then simpler entries (each entry of
// magnitude > 1 reduced to its sign). The placeholder schedule is carried
// through unchanged.
func shrinkMatrixCandidates(inst *Instance) []*Instance {
	m := inst.Mat
	rows, cols := m.Rows(), m.Cols()
	var out []*Instance
	build := func(nr, nc int, at func(i, j int) *big.Int) {
		nm, err := linalg.NewMatrix(nr, nc)
		if err != nil {
			return
		}
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				nm.Set(i, j, at(i, j))
			}
		}
		out = append(out, &Instance{M: inst.M, Mat: nm})
	}
	if rows > 1 {
		for drop := 0; drop < rows; drop++ {
			build(rows-1, cols, func(i, j int) *big.Int {
				if i >= drop {
					i++
				}
				return m.At(i, j)
			})
		}
	}
	if cols > 1 {
		for drop := 0; drop < cols; drop++ {
			build(rows, cols-1, func(i, j int) *big.Int {
				if j >= drop {
					j++
				}
				return m.At(i, j)
			})
		}
	}
	one := big.NewInt(1)
	for si := 0; si < rows; si++ {
		for sj := 0; sj < cols; sj++ {
			if m.At(si, sj).CmpAbs(one) <= 0 {
				continue
			}
			build(rows, cols, func(i, j int) *big.Int {
				if i == si && j == sj {
					return big.NewInt(int64(m.At(i, j).Sign()))
				}
				return m.At(i, j)
			})
		}
	}
	return out
}
