package check

import (
	"fmt"
	"math/big"

	"anondyn/internal/kernel"
	"anondyn/internal/multigraph"
)

// EliminationSizes computes the set of network sizes consistent with a k = 2
// leader view by dense rational elimination: it materializes the coefficient
// matrix M_r, solves M_r·s = m_r for one particular solution, takes the
// elimination kernel basis, and walks the integer points of the feasible
// (component-wise non-negative) segment. It shares no code with the
// structured O(3^t) solver beyond the matrix definition itself, which is what
// makes it a genuine differential oracle for kernel.SolveCountInterval: the
// two implementations agree only if Lemmas 2–4 (one-dimensional kernel,
// Σk_r = 1) actually hold for the generated view.
//
// The cost is a rational RREF on a ~3^t × 3^t matrix, so callers must keep t
// small (t ≤ 3 stays in the milliseconds).
func EliminationSizes(view multigraph.LeaderView) ([]int, error) {
	t := len(view)
	if t == 0 {
		return nil, fmt.Errorf("check: empty view constrains nothing")
	}
	r := t - 1
	m, err := kernel.Matrix(r, 2)
	if err != nil {
		return nil, err
	}
	b, err := kernel.ObservationVector(view, r, 2)
	if err != nil {
		return nil, err
	}
	x0, consistent, err := m.SolveParticular(b)
	if err != nil {
		return nil, err
	}
	if !consistent {
		return nil, nil
	}
	basis := m.KernelBasis()
	if len(basis) != 1 {
		return nil, fmt.Errorf("check: elimination kernel has dimension %d, want 1 (Lemma 3)", len(basis))
	}
	kv := basis[0]
	// Feasible integers c with x0 + c·kv ≥ 0 component-wise. Entries of kv
	// are ±-signed integers (primitive), so each component gives one bound.
	lo := new(big.Int)
	hi := new(big.Int)
	haveLo, haveHi := false, false
	q, rem := new(big.Int), new(big.Int)
	for i := range kv {
		s := kv[i].Sign()
		if s == 0 {
			if x0[i].Sign() < 0 {
				return nil, nil // fixed negative component: infeasible
			}
			continue
		}
		// x0[i] + c*kv[i] >= 0  ⇔  c >= -x0[i]/kv[i] (kv>0) or c <= ... (kv<0).
		neg := new(big.Int).Neg(x0[i])
		q.QuoRem(neg, kv[i], rem)
		if s > 0 {
			// c >= ceil(-x0/kv)
			if rem.Sign() != 0 && (neg.Sign() > 0) == (kv[i].Sign() > 0) {
				q.Add(q, big.NewInt(1))
			}
			if !haveLo || q.Cmp(lo) > 0 {
				lo.Set(q)
				haveLo = true
			}
		} else {
			// c <= floor(-x0/kv)
			if rem.Sign() != 0 && (neg.Sign() > 0) != (kv[i].Sign() > 0) {
				q.Sub(q, big.NewInt(1))
			}
			if !haveHi || q.Cmp(hi) < 0 {
				hi.Set(q)
				haveHi = true
			}
		}
	}
	if !haveLo || !haveHi {
		return nil, fmt.Errorf("check: unbounded feasible segment (kernel lacks a sign)")
	}
	if lo.Cmp(hi) > 0 {
		return nil, nil
	}
	// Σ over components of (x0 + c·kv): sizes as a function of c. Σkv = ±1
	// by Lemma 4, so consecutive c give consecutive sizes.
	sumX0 := new(big.Int)
	sumKv := new(big.Int)
	for i := range kv {
		sumX0.Add(sumX0, x0[i])
		sumKv.Add(sumKv, kv[i])
	}
	if a := new(big.Int).Abs(sumKv); a.Cmp(big.NewInt(1)) != 0 {
		return nil, fmt.Errorf("check: elimination kernel sums to %s, want ±1 (Lemma 4)", sumKv)
	}
	var sizes []int
	c := new(big.Int).Set(lo)
	n := new(big.Int)
	for c.Cmp(hi) <= 0 {
		n.Mul(sumKv, c)
		n.Add(n, sumX0)
		if !n.IsInt64() {
			return nil, fmt.Errorf("check: size %s overflows", n)
		}
		sizes = append(sizes, int(n.Int64()))
		c.Add(c, big.NewInt(1))
	}
	// sumKv may be -1, in which case sizes came out descending.
	if len(sizes) > 1 && sizes[0] > sizes[len(sizes)-1] {
		for i, j := 0, len(sizes)-1; i < j; i, j = i+1, j-1 {
			sizes[i], sizes[j] = sizes[j], sizes[i]
		}
	}
	return sizes, nil
}
