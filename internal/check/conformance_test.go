package check

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// TestFamilyConformanceAcrossEngines is the suite-level conformance gate:
// every adversary family registered in dynet.Families() must (a) satisfy its
// declared machine-checkable properties at several sizes and seeds, and
// (b) drive the order-sensitive trace protocol to identical per-node traces
// on the sequential, concurrent, and sharded engines. A family whose
// schedule depends on engine internals — shared rand state, map iteration
// order, goroutine interleaving — fails (b); a family whose declared
// guarantees drift from its construction fails (a).
func TestFamilyConformanceAcrossEngines(t *testing.T) {
	sizes := []int{1, 2, 6, 11}
	seeds := []int64{1, 9, 77}
	const rounds = 14
	engines := []struct {
		name string
		run  runtime.Engine
	}{
		{"sequential", runtime.SequentialEngine(context.Background())},
		{"concurrent", runtime.ConcurrentEngine(context.Background())},
		{"sharded", runtime.ShardedEngine(context.Background())},
	}
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for _, n := range sizes {
				for _, seed := range seeds {
					d, err := fam.Build(n, seed)
					if err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
					if err := dynet.VerifyProperties(d, fam.Props, rounds); err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
					var ref []string
					var refRounds int
					for _, eng := range engines {
						traces, ran, err := runTraces(d, rounds, eng.run)
						if err != nil {
							t.Fatalf("n=%d seed=%d engine=%s: %v", n, seed, eng.name, err)
						}
						if ref == nil {
							ref, refRounds = traces, ran
							continue
						}
						if ran != refRounds {
							t.Fatalf("n=%d seed=%d engine=%s: ran %d rounds, sequential ran %d",
								n, seed, eng.name, ran, refRounds)
						}
						for v := range traces {
							if traces[v] != ref[v] {
								t.Fatalf("n=%d seed=%d engine=%s: node %d trace %s, sequential %s",
									n, seed, eng.name, v, traces[v], ref[v])
							}
						}
					}
				}
			}
		})
	}
}

// Families re-exports dynet.Families for the conformance suite; a wrapper so
// a registry rename surfaces here rather than silently skipping families.
func Families() []dynet.Family { return dynet.Families() }

// TestFamilyOracleReplayReproduces forces a family-construction failure — a
// T-interval builder whose topology drifts mid-window — and verifies the
// replay contract for the new oracles: the reported seed regenerates an
// instance the same broken system fails on, shrinks to the same
// counterexample, and passes against the healthy system.
func TestFamilyOracleReplayReproduces(t *testing.T) {
	broken := func() *System {
		sys := Healthy()
		inner := sys.NewTInterval
		sys.NewTInterval = func(n, window int, p float64, seed int64) (dynet.Dynamic, error) {
			d, err := inner(n, window, p, seed)
			if err != nil || n < 2 {
				return d, err
			}
			return dynet.NewFunc(n, func(r int) *graph.Graph {
				g := d.Snapshot(r)
				if r%2 == 0 {
					return g
				}
				cp := g.Clone()
				if cp.HasEdge(0, 1) {
					_ = cp.RemoveEdge(0, 1)
				} else {
					_ = cp.AddEdge(0, 1)
				}
				return cp
			}), nil
		}
		return sys
	}
	var out strings.Builder
	rep, err := RunWithSystem(context.Background(), Options{
		Seed: 2, Iters: 40, Oracles: []string{"tinterval-window"}, Out: &out,
	}, broken())
	if err != nil {
		t.Fatalf("RunWithSystem: %v", err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("drifting T-interval builder never caught by the tinterval-window oracle")
	}
	f := rep.Failures[0]
	if want := fmt.Sprintf("go run ./cmd/check -oracle tinterval-window -replay %d", f.Seed); f.ReplayCommand() != want {
		t.Errorf("ReplayCommand() = %q, want %q", f.ReplayCommand(), want)
	}
	// The same seed against the same broken system must fail again and
	// shrink to the same counterexample.
	reRep := &Report{}
	again := runOne(mustOracle(t, "tinterval-window"), f.Seed, broken(), 0, reRep, newCheckMetrics())
	if again == nil {
		t.Fatalf("seed %d did not reproduce the failure", f.Seed)
	}
	if again.Instance.String() != f.Instance.String() {
		t.Errorf("replay shrank to %s, original run shrank to %s", again.Instance, f.Instance)
	}
	// Against the healthy system, the same seed passes: Replay exits clean.
	rf, err := Replay("tinterval-window", f.Seed, 0)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rf != nil {
		t.Errorf("healthy replay of seed %d failed: %v", f.Seed, rf.Err)
	}
}

// runTraces runs the order-sensitive trace protocol on net for the given
// number of rounds and returns each node's final folded state.
func runTraces(net dynet.Dynamic, rounds int, run runtime.Engine) ([]string, int, error) {
	procs := newTraceProcs(net.N())
	ran, err := run(&runtime.Config{Net: net, Procs: procs, MaxRounds: rounds, Canon: traceCanon})
	if err != nil {
		return nil, 0, err
	}
	out := make([]string, len(procs))
	for v, p := range procs {
		tp := p.(*traceProc)
		if len(tp.trace) == 0 {
			return nil, 0, fmt.Errorf("node %d produced no trace", v)
		}
		out[v] = tp.trace[len(tp.trace)-1]
	}
	return out, ran, nil
}
