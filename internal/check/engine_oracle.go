package check

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"

	"anondyn/internal/dynet"
	"anondyn/internal/runtime"
)

// traceProc is the order-sensitive protocol the engine-equivalence oracle
// runs: every node starts with a distinct state (its index) and folds each
// round's inbox into an FNV hash *in delivery order*, so two executions
// agree on every trace entry iff they delivered identical message sequences
// to every node in every round. Any divergence — a dropped message, a
// permuted inbox, a skipped round — cascades into all later states.
type traceProc struct {
	state string
	trace []string
}

func (p *traceProc) Send(int) runtime.Message { return p.state }

func (p *traceProc) Receive(_ int, msgs []runtime.Message) {
	h := fnv.New64a()
	h.Write([]byte(p.state))
	for _, m := range msgs {
		h.Write([]byte{0})
		h.Write([]byte(m.(string)))
	}
	p.state = strconv.FormatUint(h.Sum64(), 10)
	p.trace = append(p.trace, p.state)
}

func newTraceProcs(n int) []runtime.Process {
	procs := make([]runtime.Process, n)
	for i := range procs {
		procs[i] = &traceProc{state: strconv.Itoa(i)}
	}
	return procs
}

// traceCanon is the identity canonicalizer for traceProc's string messages:
// delivery order is the lexicographic order of the states themselves.
func traceCanon(m runtime.Message) string { return m.(string) }

func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// shardedEngineOracle is the differential check for the sharded worker-pool
// engine: RunSharded must reproduce RunSequential's execution trace-for-trace
// at every shard count — same round count, same per-node state after every
// round. Half the draws are the Lemma-1 transformation of a random schedule
// (exercising the CSR-native PD2Net snapshots), the other half are dynet
// adversary families — T-interval, churn, randomized — which reach the
// sharded engine through its map-graph fallback.
func shardedEngineOracle() *Oracle {
	return &Oracle{
		Name: "sharded-engine",
		Doc:  "RunSharded matches RunSequential trace-for-trace on CSR transforms and adversary families",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			if rng.Intn(2) == 0 {
				return genFamily(rng, "")
			}
			return genSchedule(rng, 10, 4)
		},
		Check: func(inst *Instance, sys *System) error {
			var seqNet, shNet dynet.Dynamic
			var rounds int
			if inst.Fam != nil {
				d, _, err := buildFamilyNet(inst.Fam, sys)
				if err != nil {
					return err
				}
				seqNet, shNet = d, d
				rounds = inst.Fam.Rounds
			} else {
				m := inst.M
				var err error
				seqNet, _, err = m.ToPD2()
				if err != nil {
					return err
				}
				shNet, _, err = m.ToPD2CSR()
				if err != nil {
					return err
				}
				// One round past the horizon exercises the repeat-final-round
				// clamp on both transforms.
				rounds = m.Horizon() + 1
			}
			n := seqNet.N()
			seqProcs := newTraceProcs(n)
			seqRounds, err := sys.EngineSeq(&runtime.Config{
				Net: seqNet, Procs: seqProcs, MaxRounds: rounds, Canon: traceCanon,
			})
			if err != nil {
				return err
			}
			for _, shards := range []int{1, 2, 5} {
				procs := newTraceProcs(n)
				shRounds, err := sys.EngineSharded(&runtime.Config{
					Net: shNet, Procs: procs, MaxRounds: rounds, Canon: traceCanon, Shards: shards,
				})
				if err != nil {
					return fmt.Errorf("sharded (%d shards): %w", shards, err)
				}
				if shRounds != seqRounds {
					return fmt.Errorf("sharded (%d shards) ran %d rounds, sequential ran %d",
						shards, shRounds, seqRounds)
				}
				for v := 0; v < n; v++ {
					a, b := seqProcs[v].(*traceProc), procs[v].(*traceProc)
					if len(a.trace) != len(b.trace) {
						return fmt.Errorf("sharded (%d shards): node %d has %d trace entries, sequential %d",
							shards, v, len(b.trace), len(a.trace))
					}
					for r := range a.trace {
						if a.trace[r] != b.trace[r] {
							return fmt.Errorf("sharded (%d shards): node %d diverges at round %d: %s vs sequential %s",
								shards, v, r, b.trace[r], a.trace[r])
						}
					}
				}
			}
			return nil
		},
		Mutants: []Mutant{
			// A sharded engine that quietly runs one round short: every
			// trace is a prefix of the sequential one, so only a check that
			// compares round counts (not just common-prefix states) sees it.
			{Name: "sharded-round-drop", Sys: func(sys *System) {
				inner := sys.EngineSharded
				sys.EngineSharded = func(cfg *runtime.Config) (int, error) {
					c := *cfg
					if c.MaxRounds > 0 {
						c.MaxRounds--
					}
					return inner(&c)
				}
			}},
			// A sharded engine that sorts deliveries by the *reversed*
			// canonical key: inbox contents are identical, only their order
			// differs — caught exactly because traceProc's fold is
			// order-sensitive.
			{Name: "sharded-order-flip", Sys: func(sys *System) {
				inner := sys.EngineSharded
				sys.EngineSharded = func(cfg *runtime.Config) (int, error) {
					c := *cfg
					orig := c.Canon
					c.Canon = func(m runtime.Message) string { return reverseString(orig(m)) }
					return inner(&c)
				}
			}},
		},
	}
}
