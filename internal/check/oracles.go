package check

import (
	"fmt"
	"math/big"
	"math/rand"

	"anondyn/internal/chainnet"
	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/kernel"
	"anondyn/internal/linalg"
	"anondyn/internal/multigraph"
)

// Oracle is one registered differential or metamorphic property: a generator
// for its instance family and a check that must hold on every generated
// instance. Mutants are deliberately broken variants of the layers the
// oracle claims to cross-check; the mutation smoke test requires the oracle
// to catch every one of them, so an oracle that silently checks nothing
// cannot ship.
type Oracle struct {
	// Name selects the oracle on the command line and in replay commands.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Gen draws one instance of the oracle's family from the seeded rng.
	Gen func(rng *rand.Rand) (*Instance, error)
	// Check verifies the property on inst, routing the implementations
	// under test through sys. A nil return means the property held.
	Check func(inst *Instance, sys *System) error
	// Mutants are the seeded faults this oracle must detect.
	Mutants []Mutant
}

// Mutant is a seeded fault: either a broken-system variant (Sys rewires one
// System hook) or an instance corruption (Corrupt perturbs the generated
// instance). Exactly one of the two is set.
type Mutant struct {
	Name    string
	Sys     func(sys *System)
	Corrupt func(inst *Instance, rng *rand.Rand)
}

// Oracles returns the full registry in deterministic order.
func Oracles() []*Oracle {
	return []*Oracle{
		intervalOracle(),
		eliminationOracle(),
		closedFormOracle(),
		pairOracle(),
		transformOracle(),
		relabelOracle(),
		messageOracle(),
		monotoneOracle(),
		enumKOracle(),
		linalgFastpathOracle(),
		shardedEngineOracle(),
		histTreeCountOracle(),
		tIntervalWindowOracle(),
		churnConserveOracle(),
		mdblkPairOracle(),
		degreeOracleCountOracle(),
	}
}

// OracleByName resolves one registered oracle.
func OracleByName(name string) (*Oracle, error) {
	for _, o := range Oracles() {
		if o.Name == name {
			return o, nil
		}
	}
	return nil, fmt.Errorf("check: unknown oracle %q", name)
}

// intervalOracle cross-checks the incremental solver against the batch
// solver on every prefix of a random schedule, and verifies the structural
// facts the leader's termination rule rests on: intervals nest as rounds
// accumulate, always contain the true size, and both endpoints are
// realizable as concrete multigraphs reproducing the observed view (the
// constructive content of Lemma 5).
func intervalOracle() *Oracle {
	return &Oracle{
		Name: "interval",
		Doc:  "incremental solver ≡ batch solver; intervals nest, contain the truth, and have realizable endpoints",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 60, 5)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			inc := sys.NewIncremental()
			prev := kernel.Interval{Unbounded: true}
			var last kernel.Interval
			for r := 1; r <= m.Horizon(); r++ {
				obs, err := m.LeaderObservation(r - 1)
				if err != nil {
					return err
				}
				got, err := inc.AddRound(obs)
				if err != nil {
					return fmt.Errorf("incremental round %d: %w", r, err)
				}
				view, err := m.LeaderView(r)
				if err != nil {
					return err
				}
				want, err := sys.Solve(view)
				if err != nil {
					return fmt.Errorf("batch round %d: %w", r, err)
				}
				if got != want {
					return fmt.Errorf("round %d: incremental %v != batch %v", r, got, want)
				}
				if want.Empty || want.Unbounded {
					return fmt.Errorf("round %d: genuine view solved to %v", r, want)
				}
				if m.W() < want.MinSize || m.W() > want.MaxSize {
					return fmt.Errorf("round %d: true size %d outside %v", r, m.W(), want)
				}
				if !prev.Unbounded && (want.MinSize < prev.MinSize || want.MaxSize > prev.MaxSize) {
					return fmt.Errorf("round %d: interval %v escapes previous %v", r, want, prev)
				}
				prev, last = want, want
			}
			// Endpoint realizability on the full view: reconstruct a
			// multigraph of each extreme size and demand the identical view.
			view, err := m.LeaderView(m.Horizon())
			if err != nil {
				return err
			}
			for _, n := range []int{last.MinSize, last.MaxSize} {
				if err := realizeSize(view, m, n); err != nil {
					return fmt.Errorf("endpoint %d of %v: %w", n, last, err)
				}
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "solve-widen", Sys: func(sys *System) {
				inner := sys.Solve
				sys.Solve = func(v multigraph.LeaderView) (kernel.Interval, error) {
					iv, err := inner(v)
					if err == nil && !iv.Empty && !iv.Unbounded {
						iv.MaxSize++
					}
					return iv, err
				}
			}},
			{Name: "incremental-stale", Sys: func(sys *System) {
				inner := sys.NewIncremental
				sys.NewIncremental = func() IncrementalAdder {
					return &staleAdder{inner: inner()}
				}
			}},
		},
	}
}

// staleAdder lags the real incremental solver by one round — the classic
// "forgot to fold the newest observation" bug.
type staleAdder struct {
	inner IncrementalAdder
	prev  kernel.Interval
	has   bool
}

func (s *staleAdder) AddRound(obs multigraph.Observation) (kernel.Interval, error) {
	iv, err := s.inner.AddRound(obs)
	if err != nil {
		return iv, err
	}
	out := s.prev
	if !s.has {
		out = kernel.Interval{Unbounded: true}
	}
	s.prev, s.has = iv, true
	return out, nil
}

func (s *staleAdder) Rounds() int { return s.inner.Rounds() }

// realizeSize checks that size n is genuinely consistent with the view:
// ForcedConfiguration yields non-negative counts whose multigraph reproduces
// the view exactly.
func realizeSize(view multigraph.LeaderView, m *multigraph.Multigraph, n int) error {
	// n = total - c0 with total the sum of round-0 observation counts.
	total := 0
	for _, c := range view[0] {
		total += c
	}
	counts, err := kernel.ForcedConfiguration(view, total-n)
	if err != nil {
		return err
	}
	re, err := multigraph.FromHistoryCounts(2, len(view), counts)
	if err != nil {
		return err
	}
	if re.W() != n {
		return fmt.Errorf("reconstruction has %d nodes, want %d", re.W(), n)
	}
	reView, err := re.LeaderView(len(view))
	if err != nil {
		return err
	}
	if !reView.Equal(view) {
		return fmt.Errorf("reconstructed view differs")
	}
	return nil
}

// eliminationOracle is the three-way differential check on small views:
// dense rational elimination ≡ structured batch solver ≡ general-k
// enumerator, as explicit size sets.
func eliminationOracle() *Oracle {
	return &Oracle{
		Name: "eliminate",
		Doc:  "dense rational elimination ≡ O(3^t) solver ≡ DFS enumerator on k=2 views",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 7, 3)
		},
		Check: func(inst *Instance, sys *System) error {
			view, err := inst.M.LeaderView(inst.M.Horizon())
			if err != nil {
				return err
			}
			iv, err := sys.Solve(view)
			if err != nil {
				return err
			}
			var fromInterval []int
			for n := iv.MinSize; n <= iv.MaxSize; n++ {
				fromInterval = append(fromInterval, n)
			}
			elim, err := sys.Eliminate(view)
			if err != nil {
				return fmt.Errorf("elimination: %w", err)
			}
			if !equalInts(elim, fromInterval) {
				return fmt.Errorf("elimination %v != solver %v", elim, fromInterval)
			}
			enum, err := sys.Enumerate(view, 2, sys.Limits)
			if err != nil {
				return fmt.Errorf("enumerate: %w", err)
			}
			if !equalInts(enum, fromInterval) {
				return fmt.Errorf("enumerator %v != solver %v", enum, fromInterval)
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "eliminate-drop-min", Sys: func(sys *System) {
				inner := sys.Eliminate
				sys.Eliminate = func(v multigraph.LeaderView) ([]int, error) {
					sizes, err := inner(v)
					if err == nil && len(sizes) > 0 {
						sizes = sizes[1:]
					}
					return sizes, err
				}
			}},
			{Name: "solve-shift", Sys: func(sys *System) {
				inner := sys.Solve
				sys.Solve = func(v multigraph.LeaderView) (kernel.Interval, error) {
					iv, err := inner(v)
					if err == nil && !iv.Empty && !iv.Unbounded {
						iv.MinSize++
						iv.MaxSize++
					}
					return iv, err
				}
			}},
		},
	}
}

// closedFormOracle validates the paper's closed forms against independent
// recomputations: M_r·k_r = 0 via the structured product, the Lemma 4 kernel
// sums against a literal count of the sign pattern, Σk_r = 1, and the
// ⌊log₃(2n+1)⌋ horizon against big-integer arithmetic and its inverse.
func closedFormOracle() *Oracle {
	return &Oracle{
		Name: "closedform",
		Doc:  "M_r·k_r = 0, Lemma 4 sums, and the ⌊log₃(2n+1)⌋ horizon vs big-int recomputation",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 2000, 6)
		},
		Check: func(inst *Instance, sys *System) error {
			r := inst.M.Horizon() - 1
			kv := sys.Kernel(r)
			prod, err := kernel.StructuredMulVec(r, 2, kv)
			if err != nil {
				return err
			}
			for i := range prod {
				if prod[i].Sign() != 0 {
					return fmt.Errorf("M_%d·k_%d has nonzero row %d = %s", r, r, i, prod[i])
				}
			}
			neg, pos, sum := big.NewInt(0), big.NewInt(0), big.NewInt(0)
			for i := range kv {
				switch kv[i].Sign() {
				case -1:
					neg.Sub(neg, kv[i])
				case 1:
					pos.Add(pos, kv[i])
				default:
					return fmt.Errorf("kernel entry %d is zero", i)
				}
				sum.Add(sum, kv[i])
			}
			if neg.Cmp(sys.KernelSumNeg(r)) != 0 {
				return fmt.Errorf("Σ⁻k_%d: counted %s, closed form %s", r, neg, sys.KernelSumNeg(r))
			}
			if pos.Cmp(sys.KernelSumPos(r)) != 0 {
				return fmt.Errorf("Σ⁺k_%d: counted %s, closed form %s", r, pos, sys.KernelSumPos(r))
			}
			if sum.Cmp(big.NewInt(1)) != 0 {
				return fmt.Errorf("Σk_%d = %s, want 1", r, sum)
			}
			// Horizon closed form at several scales derived from |W|.
			for _, n := range []int{inst.M.W(), 3*inst.M.W() + 1, 81*inst.M.W() + 40, 1<<40 + inst.M.W()} {
				got := sys.MaxIndist(n)
				want := core.LowerBoundRoundsBig(big.NewInt(int64(n))).Int64() - 1
				if int64(got) != want {
					return fmt.Errorf("MaxIndistinguishableRounds(%d) = %d, big-int says %d", n, got, want)
				}
				// Inverse relation: MinSizeFor(t) ≤ n ⇔ MaxIndist(n) ≥ t.
				if sys.MinSizeFor(got) > n {
					return fmt.Errorf("MinSizeForRounds(%d) = %d > n = %d", got, sys.MinSizeFor(got), n)
				}
				if sys.MinSizeFor(got+1) <= n {
					return fmt.Errorf("MinSizeForRounds(%d) = %d ≤ n = %d", got+1, sys.MinSizeFor(got+1), n)
				}
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "kernel-sign-flip", Sys: func(sys *System) {
				inner := sys.Kernel
				sys.Kernel = func(r int) linalg.Vector {
					kv := inner(r)
					kv[len(kv)-1].Neg(kv[len(kv)-1])
					return kv
				}
			}},
			{Name: "maxindist-off-by-one", Sys: func(sys *System) {
				inner := sys.MaxIndist
				sys.MaxIndist = func(n int) int { return inner(n) + 1 }
			}},
		},
	}
}

// pairOracle regenerates the Lemma-5 adversarial pair and verifies its
// defining properties end to end: sizes n and n+1, leader views identical
// through the sustained rounds, count difference exactly the kernel vector,
// the solver unable to separate the twins on the common view, and the
// deterministic extension forcing divergence at exactly round EqRounds+1.
func pairOracle() *Oracle {
	return &Oracle{
		Name: "pair",
		Doc:  "Lemma 5 pairs: equal views, kernel count-difference, solver width ≥ 2, divergence at round r+1",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genPair(rng, 45, 4)
		},
		Check: func(inst *Instance, sys *System) error {
			n, r := inst.M.W(), inst.EqRounds
			if inst.Twin == nil {
				return fmt.Errorf("pair instance without twin")
			}
			if inst.Twin.W() != n+1 {
				return fmt.Errorf("twin has %d nodes, want %d", inst.Twin.W(), n+1)
			}
			va, err := inst.M.LeaderView(r)
			if err != nil {
				return err
			}
			vb, err := inst.Twin.LeaderView(r)
			if err != nil {
				return err
			}
			if !va.Equal(vb) {
				return fmt.Errorf("leader views differ within %d rounds", r)
			}
			// Count difference is exactly the kernel vector k_{r-1}.
			ca, err := inst.M.HistoryCounts(r)
			if err != nil {
				return err
			}
			cb, err := inst.Twin.HistoryCounts(r)
			if err != nil {
				return err
			}
			kv := sys.Kernel(r - 1)
			for i := range ca {
				if big.NewInt(int64(cb[i]-ca[i])).Cmp(kv[i]) != 0 {
					return fmt.Errorf("count difference at history %d is %d, kernel says %s", i, cb[i]-ca[i], kv[i])
				}
			}
			// The solver must not separate the twins on the common view.
			iv, err := sys.Solve(va)
			if err != nil {
				return err
			}
			if iv.Empty || iv.Unbounded || iv.MinSize > n || iv.MaxSize < n+1 {
				return fmt.Errorf("interval %v on the common view excludes {%d,%d}", iv, n, n+1)
			}
			// The extension diverges at exactly round r+1.
			pair := &core.Pair{M: inst.M, MPrime: inst.Twin, N: n, Rounds: r}
			div, ok := pair.FirstDivergence()
			if !ok {
				return fmt.Errorf("extended views never diverge within horizon %d", inst.M.Horizon())
			}
			if div != r+1 {
				return fmt.Errorf("views diverge at round %d, want %d", div, r+1)
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "twin-label-flip", Corrupt: func(inst *Instance, rng *rand.Rand) {
				flipLabel(inst, rng, true)
			}},
			{Name: "solve-narrow", Sys: func(sys *System) {
				inner := sys.Solve
				sys.Solve = func(v multigraph.LeaderView) (kernel.Interval, error) {
					iv, err := inner(v)
					if err == nil && !iv.Empty && !iv.Unbounded {
						iv.MaxSize = iv.MinSize
					}
					return iv, err
				}
			}},
		},
	}
}

// flipLabel replaces one label set within the first EqRounds rounds of the
// instance (the twin when twin is true) with a different valid symbol.
func flipLabel(inst *Instance, rng *rand.Rand, twin bool) {
	m := inst.M
	if twin {
		m = inst.Twin
	}
	if m == nil || m.W() == 0 || m.Horizon() == 0 {
		return
	}
	v := rng.Intn(m.W())
	limit := m.Horizon()
	if inst.EqRounds > 0 && inst.EqRounds < limit {
		limit = inst.EqRounds
	}
	r := rng.Intn(limit)
	labels := scheduleOf(m)
	old := labels[v][r]
	// LabelSet values for alphabet k are 1..2^k−1 and SymbolFromIndex(i) is
	// i+1, so the index of old is int(old)-1; step to a different symbol.
	symbols := multigraph.SymbolCount(m.K())
	labels[v][r] = multigraph.SymbolFromIndex((int(old) + rng.Intn(symbols-1)) % symbols)
	nm, err := multigraph.New(m.K(), labels)
	if err != nil {
		return
	}
	if twin {
		inst.Twin = nm
	} else {
		inst.M = nm
	}
}

// transformOracle checks the Lemma-1 transformation into 𝒢(PD)₂: the image
// is 1-interval connected, sits exactly in G(PD)₂ with the layer partition
// {leader} ∪ relays ∪ W, and inverts back to the original schedule.
func transformOracle() *Oracle {
	return &Oracle{
		Name: "transform",
		Doc:  "ToPD2 image is connected, exactly G(PD)₂ with layers {v_l}∪V₁∪V₂, and FromPD2 inverts it",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 12, 4)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			d, layout, err := sys.Transform(m)
			if err != nil {
				return err
			}
			rounds := m.Horizon()
			if err := dynet.VerifyIntervalConnectivity(d, rounds); err != nil {
				return err
			}
			h, err := dynet.PDClass(d, layout.Leader, rounds)
			if err != nil {
				return err
			}
			if h != 2 {
				return fmt.Errorf("transformed graph is in G(PD)_%d, want exactly 2", h)
			}
			layers, err := dynet.LayerPartition(d, layout.Leader, rounds)
			if err != nil {
				return err
			}
			if len(layers[0]) != 1 || len(layers[1]) != m.K() || len(layers[2]) != m.W() {
				return fmt.Errorf("layer sizes (%d,%d,%d), want (1,%d,%d)",
					len(layers[0]), len(layers[1]), len(layers[2]), m.K(), m.W())
			}
			back, err := multigraph.FromPD2(d, layout.Leader, layout.V1, layout.V2, rounds)
			if err != nil {
				return fmt.Errorf("FromPD2: %w", err)
			}
			if back.W() != m.W() || back.K() != m.K() || back.Horizon() != m.Horizon() {
				return fmt.Errorf("roundtrip shape (%d,%d,%d) != (%d,%d,%d)",
					back.W(), back.K(), back.Horizon(), m.W(), m.K(), m.Horizon())
			}
			for v := 0; v < m.W(); v++ {
				for r := 0; r < rounds; r++ {
					a, _ := m.LabelsAt(v, r)
					b, _ := back.LabelsAt(v, r)
					if a != b {
						return fmt.Errorf("roundtrip label (%d,%d): %v != %v", v, r, b, a)
					}
				}
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "transform-drop-edge", Sys: func(sys *System) {
				inner := sys.Transform
				sys.Transform = transformDropEdge(inner)
			}},
		},
	}
}

// relabelOracle checks the symmetries the anonymous leader cannot see
// through: solver invariance under label permutation, invariance of the
// canonical-under-relabeling encoding, additivity of observations under
// disjoint union, and view-prefix stability under concatenation/truncation.
func relabelOracle() *Oracle {
	return &Oracle{
		Name: "relabel",
		Doc:  "solver invariant under label permutation; observations additive under union; prefix-stable under concat",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 20, 4)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			view, err := m.LeaderView(m.Horizon())
			if err != nil {
				return err
			}
			base, err := sys.Solve(view)
			if err != nil {
				return err
			}
			for _, perm := range multigraph.Permutations(m.K()) {
				rm, err := m.Relabel(perm)
				if err != nil {
					return err
				}
				rview, err := rm.LeaderView(rm.Horizon())
				if err != nil {
					return err
				}
				riv, err := sys.Solve(rview)
				if err != nil {
					return err
				}
				if riv != base {
					return fmt.Errorf("perm %v: interval %v != %v", perm, riv, base)
				}
				canA, err := m.CanonicalUnderRelabeling(m.Horizon())
				if err != nil {
					return err
				}
				canB, err := rm.CanonicalUnderRelabeling(m.Horizon())
				if err != nil {
					return err
				}
				if canA != canB {
					return fmt.Errorf("perm %v changes the relabeling-canonical view", perm)
				}
			}
			// Union additivity: observations of the disjoint union are the
			// pointwise sums.
			u, err := multigraph.Union(m, m)
			if err != nil {
				return err
			}
			for r := 0; r < m.Horizon(); r++ {
				obs, err := m.LeaderObservation(r)
				if err != nil {
					return err
				}
				uobs, err := u.LeaderObservation(r)
				if err != nil {
					return err
				}
				if len(uobs) != len(obs) {
					return fmt.Errorf("round %d: union observation has %d keys, want %d", r, len(uobs), len(obs))
				}
				for k, c := range obs {
					if uobs[k] != 2*c {
						return fmt.Errorf("round %d key %v: union count %d, want %d", r, k, uobs[k], 2*c)
					}
				}
			}
			// Concat/truncate prefix stability.
			cc, err := multigraph.Concat(m, m)
			if err != nil {
				return err
			}
			cv, err := cc.LeaderView(m.Horizon())
			if err != nil {
				return err
			}
			if !cv.Equal(view) {
				return fmt.Errorf("concat changes the prefix view")
			}
			tr, err := cc.Truncate(m.Horizon())
			if err != nil {
				return err
			}
			tv, err := tr.LeaderView(m.Horizon())
			if err != nil {
				return err
			}
			if !tv.Equal(view) {
				return fmt.Errorf("truncate changes the view")
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "solve-label-biased", Sys: func(sys *System) {
				inner := sys.Solve
				sys.Solve = func(v multigraph.LeaderView) (kernel.Interval, error) {
					iv, err := inner(v)
					if err != nil || iv.Empty || iv.Unbounded || len(v) == 0 {
						return iv, err
					}
					// Leak the label-1 count of round 0 into the answer: a
					// solver that is not label-symmetric.
					r1 := 0
					for key, c := range v[0] {
						if key.Label == 1 {
							r1 += c
						}
					}
					if r1%2 == 1 {
						iv.MinSize++
						iv.MaxSize++
					}
					return iv, err
				}
			}},
		},
	}
}

// messageOracle is the multigraph-level ≡ message-level differential check:
// the chainnet protocol (relays, forwarding chain, incremental leader) must
// terminate with the same count as the abstract leader-state counter, at
// exactly the abstract round plus the chain delay — and must fail to
// terminate whenever the abstract view stays ambiguous.
func messageOracle() *Oracle {
	return &Oracle{
		Name: "message",
		Doc:  "chainnet message-level run ≡ multigraph-level leader: same count, rounds shifted by exactly the delay",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 6, 5)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			traj, err := core.UncertaintyTrajectory(m, m.Horizon())
			if err != nil {
				return err
			}
			rc, determined := 0, false
			for i, iv := range traj {
				if iv.Unique() {
					rc, determined = i+1, true
					break
				}
			}
			nw, err := chainnet.BuildFromSchedule(m, inst.Delay)
			if err != nil {
				return err
			}
			maxRounds := m.Horizon() + nw.Delay()
			res, err := sys.MsgCount(nw, maxRounds)
			if !determined {
				if err == nil {
					return fmt.Errorf("abstract view ambiguous through round %d, but protocol terminated with %+v",
						m.Horizon(), res)
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("abstract leader terminates at round %d, protocol did not: %w", rc, err)
			}
			if res.Count != m.W() {
				return fmt.Errorf("protocol counted %d, want %d", res.Count, m.W())
			}
			if want := rc + nw.Delay(); res.Rounds != want {
				return fmt.Errorf("protocol terminated at round %d, want %d (abstract %d + delay %d)",
					res.Rounds, want, rc, nw.Delay())
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "msg-extra-round", Sys: func(sys *System) {
				inner := sys.MsgCount
				sys.MsgCount = func(nw *chainnet.Network, maxRounds int) (chainnet.CountResult, error) {
					res, err := inner(nw, maxRounds)
					if err == nil {
						res.Rounds++
					}
					return res, err
				}
			}},
			{Name: "msg-miscount", Sys: func(sys *System) {
				inner := sys.MsgCount
				sys.MsgCount = func(nw *chainnet.Network, maxRounds int) (chainnet.CountResult, error) {
					res, err := inner(nw, maxRounds)
					if err == nil {
						res.Count++
					}
					return res, err
				}
			}},
		},
	}
}

// monotoneOracle checks the termination-round laws across sizes and chain
// delays: the worst-case counter lands exactly on the Theorem 1 bound, the
// chain composition shifts it by exactly the delay, and the bound itself is
// monotone with the exact inverse relation to MinSizeForRounds.
func monotoneOracle() *Oracle {
	return &Oracle{
		Name: "monotone",
		Doc:  "worst-case rounds = bound(n); chain rounds = delay + bound; bound monotone in n with exact inverse",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 45, 3)
		},
		Check: func(inst *Instance, sys *System) error {
			n := inst.M.W()
			res, err := sys.WorstRounds(n)
			if err != nil {
				return err
			}
			bound := sys.MaxIndist(n) + 1
			if res.Count != n || res.Rounds != bound {
				return fmt.Errorf("worst-case counter on n=%d: (%d, %d rounds), want (%d, %d rounds)",
					n, res.Count, res.Rounds, n, bound)
			}
			for _, d := range []int{0, inst.Delay + 1} {
				cres, err := sys.ChainRounds(n, d)
				if err != nil {
					return err
				}
				if cres.Count != n || cres.Rounds != d+bound {
					return fmt.Errorf("chain(n=%d, delay=%d): (%d, %d rounds), want (%d, %d rounds)",
						n, d, cres.Count, cres.Rounds, n, d+bound)
				}
			}
			// Monotonicity and inverse exactness around n.
			t := sys.MaxIndist(n)
			next := sys.MaxIndist(n + 1)
			if next < t || next > t+1 {
				return fmt.Errorf("MaxIndist jumps from %d to %d between n=%d and n=%d", t, next, n, n+1)
			}
			if sys.MinSizeFor(t) > n {
				return fmt.Errorf("MinSizeForRounds(%d) = %d > n = %d", t, sys.MinSizeFor(t), n)
			}
			if sys.MinSizeFor(t+1) <= n {
				return fmt.Errorf("MinSizeForRounds(%d) = %d ≤ n = %d", t+1, sys.MinSizeFor(t+1), n)
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "chain-delay-drop", Sys: func(sys *System) {
				inner := sys.ChainRounds
				sys.ChainRounds = func(n, delay int) (core.CountResult, error) {
					res, err := inner(n, delay)
					if err == nil && delay > 0 {
						res.Rounds--
					}
					return res, err
				}
			}},
			{Name: "minsize-off-by-one", Sys: func(sys *System) {
				inner := sys.MinSizeFor
				sys.MinSizeFor = func(t int) int { return inner(t) + 1 }
			}},
		},
	}
}

// enumKOracle exercises the general-k enumerator on tiny ℳ(DBL)ₖ instances:
// the true size is always reported, k = 1 pins the count immediately, and
// k = 2 agrees with the closed-form interval solver.
func enumKOracle() *Oracle {
	return &Oracle{
		Name: "enumk",
		Doc:  "general-k enumerator contains the truth; k=1 is immediate; k=2 matches the interval solver",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genScheduleK(rng, 3, 4, 2)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			view, err := m.LeaderView(m.Horizon())
			if err != nil {
				return err
			}
			sizes, err := sys.Enumerate(view, m.K(), sys.Limits)
			if err != nil {
				return err
			}
			if !containsInt(sizes, m.W()) {
				return fmt.Errorf("k=%d enumerator %v misses the true size %d", m.K(), sizes, m.W())
			}
			switch m.K() {
			case 1:
				if len(sizes) != 1 || sizes[0] != m.W() {
					return fmt.Errorf("k=1 view must pin the count: got %v, want [%d]", sizes, m.W())
				}
			case 2:
				iv, err := sys.Solve(view)
				if err != nil {
					return err
				}
				var want []int
				for n := iv.MinSize; n <= iv.MaxSize; n++ {
					want = append(want, n)
				}
				if !equalInts(sizes, want) {
					return fmt.Errorf("k=2 enumerator %v != solver %v", sizes, want)
				}
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "enum-drop-max", Sys: func(sys *System) {
				inner := sys.Enumerate
				sys.Enumerate = func(view multigraph.LeaderView, k int, limits kernel.EnumLimits) ([]int, error) {
					sizes, err := inner(view, k, limits)
					if err == nil && len(sizes) > 0 {
						sizes = sizes[:len(sizes)-1]
					}
					return sizes, err
				}
			}},
		},
	}
}

// linalgFastpathOracle is the differential check behind the PR 5 arithmetic
// fast path: the fraction-free int64 Bareiss elimination (with transparent
// big.Int fallback on pivot-product overflow) must reproduce the retained
// classical big.Rat RREF bit for bit — same pivot columns, same rational
// entries — on randomized matrices whose entry regimes deliberately straddle
// the overflow boundary near ±MaxInt64.
func linalgFastpathOracle() *Oracle {
	return &Oracle{
		Name: "linalg-fastpath",
		Doc:  "fraction-free int64 RREF (big.Int fallback) ≡ classical big.Rat elimination on overflow-boundary matrices",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genMatrix(rng)
		},
		Check: func(inst *Instance, sys *System) error {
			if inst.Mat == nil {
				return fmt.Errorf("matrix oracle on instance without matrix")
			}
			fastE, fastP := sys.RREFFast(inst.Mat)
			refE, refP := sys.RREFRef(inst.Mat)
			if len(fastP) != len(refP) {
				return fmt.Errorf("fast path found pivots %v, reference %v", fastP, refP)
			}
			for i := range fastP {
				if fastP[i] != refP[i] {
					return fmt.Errorf("pivot %d: fast column %d, reference column %d", i, fastP[i], refP[i])
				}
			}
			for i := range fastE {
				for j := range fastE[i] {
					if fastE[i][j].Cmp(refE[i][j]) != 0 {
						return fmt.Errorf("entry (%d,%d): fast %s, reference %s", i, j, fastE[i][j], refE[i][j])
					}
				}
			}
			return nil
		},
		Mutants: []Mutant{
			// The signature overflow bug: the fast path misses a wrap on
			// large inputs and returns a silently wrong entry. Small-entry
			// matrices are untouched, so only the boundary regimes (which
			// the generator draws half the time) expose it.
			{Name: "fast-overflow-blind", Sys: func(sys *System) {
				inner := sys.RREFFast
				sys.RREFFast = func(m *linalg.Matrix) ([][]*big.Rat, []int) {
					entries, pivots := inner(m)
					big32 := false
					for i := 0; i < m.Rows() && !big32; i++ {
						for j := 0; j < m.Cols(); j++ {
							if m.At(i, j).BitLen() >= 32 {
								big32 = true
								break
							}
						}
					}
					if big32 && len(entries) > 0 {
						row := entries[len(entries)-1]
						last := row[len(row)-1]
						last.Add(last, new(big.Rat).SetInt64(1))
					}
					return entries, pivots
				}
			}},
			// A rank bug: the elimination loses its final pivot.
			{Name: "fast-pivot-drop", Sys: func(sys *System) {
				inner := sys.RREFFast
				sys.RREFFast = func(m *linalg.Matrix) ([][]*big.Rat, []int) {
					entries, pivots := inner(m)
					if len(pivots) > 0 {
						pivots = pivots[:len(pivots)-1]
					}
					return entries, pivots
				}
			}},
		},
	}
}

// histTreeCountOracle runs the history-tree counter on the Lemma-1
// transformation of a random ℳ(DBL)₂ schedule and requires the exact total
// size |V| = 1 + k + |W| within the 3n+8 linear round bound — the
// cross-check between the anonymity-from-first-principles algorithm
// (arXiv:2204.02128) and the repository's model layers: the transformation
// supplies the adversary, the schedule supplies the ground truth, and
// neither the counter nor the check ever reads node identities.
func histTreeCountOracle() *Oracle {
	return &Oracle{
		Name: "histtree-count",
		Doc:  "history-tree counter is exact and linear-round on transformed random schedules",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genSchedule(rng, 10, 4)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			net, layout, err := sys.Transform(m)
			if err != nil {
				return err
			}
			total := 1 + m.K() + m.W()
			if got := layout.N(); got != total {
				return fmt.Errorf("layout has %d nodes, want %d", got, total)
			}
			budget := 3*total + 10
			count, rounds, err := sys.HistCount(net, layout.Leader, budget)
			if err != nil {
				return err
			}
			if count != total {
				return fmt.Errorf("history-tree counted %d on a |V|=%d transformed schedule", count, total)
			}
			if rounds < 1 || rounds > 3*total+8 {
				return fmt.Errorf("history-tree used %d rounds on |V|=%d, outside [1, 3n+8] = [1, %d]",
					rounds, total, 3*total+8)
			}
			return nil
		},
		Mutants: []Mutant{
			// An off-by-one in the cardinality solve: every count is one
			// too high.
			{Name: "hist-overcount", Sys: func(sys *System) {
				inner := sys.HistCount
				sys.HistCount = func(net dynet.Dynamic, leader graph.NodeID, maxRounds int) (int, int, error) {
					c, r, err := inner(net, leader, maxRounds)
					return c + 1, r, err
				}
			}},
			// A broken acceptance rule: termination slips past the linear
			// bound (the counter burns its whole budget before deciding).
			{Name: "hist-round-blowup", Sys: func(sys *System) {
				inner := sys.HistCount
				sys.HistCount = func(net dynet.Dynamic, leader graph.NodeID, maxRounds int) (int, int, error) {
					c, _, err := inner(net, leader, maxRounds)
					return c, maxRounds, err
				}
			}},
		},
	}
}

// scheduleOf reads the full label schedule back out of a multigraph as a
// mutable matrix.
func scheduleOf(m *multigraph.Multigraph) [][]multigraph.LabelSet {
	labels := make([][]multigraph.LabelSet, m.W())
	for v := 0; v < m.W(); v++ {
		row := make([]multigraph.LabelSet, m.Horizon())
		for r := 0; r < m.Horizon(); r++ {
			s, err := m.LabelsAt(v, r)
			if err != nil {
				s = multigraph.SetOf(1)
			}
			row[r] = s
		}
		labels[v] = row
	}
	return labels
}

// transformDropEdge wraps a Transform hook so the round-0 snapshot loses its
// first relay–W edge: the image either violates the FromPD2 structural
// checks (an isolated W node) or rounds-trips to a different schedule.
func transformDropEdge(inner func(*multigraph.Multigraph) (dynet.Dynamic, *multigraph.PD2Layout, error)) func(*multigraph.Multigraph) (dynet.Dynamic, *multigraph.PD2Layout, error) {
	return func(m *multigraph.Multigraph) (dynet.Dynamic, *multigraph.PD2Layout, error) {
		d, layout, err := inner(m)
		if err != nil {
			return d, layout, err
		}
		broken := dynet.NewFunc(d.N(), func(r int) *graph.Graph {
			g := d.Snapshot(r)
			if r != 0 {
				return g
			}
			for _, e := range g.Edges() {
				if e.U != layout.Leader && e.V != layout.Leader {
					cp := g.Clone()
					if err := cp.RemoveEdge(e.U, e.V); err == nil {
						return cp
					}
				}
			}
			return g
		})
		return broken, layout, nil
	}
}

// equalInts compares two int slices element-wise (both sorted ascending by
// their producers).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
