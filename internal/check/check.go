// Package check is the repo's seed-deterministic property-testing engine.
// It draws randomized adversary schedules, 𝒢(PD)₂ transformations, and
// Lemma-5 adversarial pairs from biased generators, and runs a registry of
// differential and metamorphic oracles over them: every exact identity the
// paper's claim chain rests on (incremental solver ≡ dense rational
// elimination ≡ closed forms, multigraph-level leader ≡ message-level
// protocol, relabeling and composition invariance, termination-round laws)
// becomes a property checked on thousands of generated instances instead of
// a handful of frozen grid points.
//
// Everything is reproducible: a campaign seed expands into per-(oracle,
// iteration) seeds via the sweep package's SplitMix64 derivation, so a
// failure report's one-line replay command regenerates the identical
// instance, and the greedy shrinker's deterministic candidate order yields
// the identical minimized counterexample. The harness validates itself with
// a mutation smoke test (see RunMutant): every registered oracle must catch
// each of its deliberately broken system variants, so a silently vacuous
// oracle cannot ship.
package check

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"anondyn/internal/sweep"
)

// Options configures a Run.
type Options struct {
	// Seed is the campaign seed every per-iteration seed derives from.
	Seed int64
	// Iters is the number of instances generated per selected oracle.
	Iters int
	// Oracles selects a subset of the registry by name; empty means all.
	Oracles []string
	// MaxFailures stops the run early once this many oracle failures have
	// been collected (they are shrunk and reported). Zero means 1.
	MaxFailures int
	// ShrinkBudget caps candidate evaluations per failure; zero means
	// DefaultShrinkBudget.
	ShrinkBudget int
	// Out, when non-nil, receives progress and failure reports.
	Out io.Writer
}

// Failure is one oracle violation, minimized and ready to replay.
type Failure struct {
	// Oracle is the registered oracle name.
	Oracle string
	// Iter is the iteration index within the run.
	Iter int
	// Seed is the per-iteration seed that regenerates the instance.
	Seed int64
	// Err is the oracle's complaint on the shrunk instance.
	Err error
	// Instance is the shrunk counterexample.
	Instance *Instance
	// ShrinkSteps counts candidate evaluations spent minimizing.
	ShrinkSteps int
}

// ReplayCommand renders the one-line reproduction command.
func (f *Failure) ReplayCommand() string {
	return fmt.Sprintf("go run ./cmd/check -oracle %s -replay %d", f.Oracle, f.Seed)
}

// Report summarizes a run.
type Report struct {
	// Instances and Evals count generated instances and oracle checks.
	Instances, Evals int
	// ShrinkSteps totals the shrinking work across failures.
	ShrinkSteps int
	// Failures holds every shrunk violation, in discovery order.
	Failures []*Failure
}

// IterSeed derives the deterministic per-iteration seed for one oracle from
// the campaign seed, using the same SplitMix64 expansion as sweep campaigns
// so nearby campaign seeds and nearby iterations yield unrelated streams.
func IterSeed(campaign int64, oracle string, iter int) int64 {
	h := fnv.New64a()
	h.Write([]byte(oracle))
	return sweep.JobSeed(campaign, h.Sum64(), uint64(iter))
}

// selectOracles resolves the requested subset, defaulting to the full
// registry in its deterministic order.
func selectOracles(names []string) ([]*Oracle, error) {
	if len(names) == 0 {
		return Oracles(), nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var out []*Oracle
	for _, name := range sorted {
		o, err := OracleByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// newRng builds the deterministic per-instance generator stream for a
// derived seed.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// safeCheck evaluates an oracle, converting a panic in the oracle or the
// system under test into a reported failure: on a shrunk candidate the
// implementations may be driven outside the envelope the original instance
// exercised, and a crash is as much a counterexample as a wrong answer.
func safeCheck(o *Oracle, inst *Instance, sys *System) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return o.Check(inst, sys)
}

// Run executes the campaign against the healthy system.
func Run(ctx context.Context, opts Options) (*Report, error) {
	return RunWithSystem(ctx, opts, Healthy())
}

// RunWithSystem executes the campaign against an explicit system — the
// entry point the mutation smoke test drives with broken variants. The
// returned error is non-nil only for configuration or context errors;
// oracle violations are reported in Report.Failures.
func RunWithSystem(ctx context.Context, opts Options, sys *System) (*Report, error) {
	oracles, err := selectOracles(opts.Oracles)
	if err != nil {
		return nil, err
	}
	if opts.Iters <= 0 {
		return nil, fmt.Errorf("check: iters must be positive, got %d", opts.Iters)
	}
	maxFailures := opts.MaxFailures
	if maxFailures <= 0 {
		maxFailures = 1
	}
	met := newCheckMetrics()
	rep := &Report{}
	for iter := 0; iter < opts.Iters; iter++ {
		for _, o := range oracles {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			seed := IterSeed(opts.Seed, o.Name, iter)
			f := runOne(o, seed, sys, opts.ShrinkBudget, rep, met)
			if f == nil {
				continue
			}
			f.Iter = iter
			rep.Failures = append(rep.Failures, f)
			met.failures.Inc()
			if opts.Out != nil {
				fmt.Fprintf(opts.Out, "FAIL %s iter=%d seed=%d: %v\n  shrunk (%d steps): %s\n  replay: %s\n",
					o.Name, iter, seed, f.Err, f.ShrinkSteps, f.Instance, f.ReplayCommand())
			}
			if len(rep.Failures) >= maxFailures {
				return rep, nil
			}
		}
	}
	return rep, nil
}

// runOne generates and checks a single instance, shrinking on failure.
func runOne(o *Oracle, seed int64, sys *System, shrinkBudget int, rep *Report, met checkMetrics) *Failure {
	rng := newRng(seed)
	inst, err := o.Gen(rng)
	if err != nil {
		// A generator that cannot produce an instance is itself a failure:
		// the generators are part of the trusted surface.
		return &Failure{Oracle: o.Name, Seed: seed, Err: fmt.Errorf("generator: %w", err)}
	}
	rep.Instances++
	met.instances.Inc()
	rep.Evals++
	met.evals.Inc()
	if err := safeCheck(o, inst, sys); err == nil {
		return nil
	}
	shrunk, steps := Shrink(inst, sys, func(i *Instance, s *System) error {
		rep.Evals++
		met.evals.Inc()
		return safeCheck(o, i, s)
	}, shrinkBudget)
	rep.ShrinkSteps += steps
	met.shrinkSteps.Add(int64(steps))
	finalErr := safeCheck(o, shrunk, sys)
	if finalErr == nil {
		// Unreachable by construction (Shrink only moves to failing
		// candidates), but never report a passing instance as the witness.
		finalErr = fmt.Errorf("check: shrink lost the failure")
		shrunk = inst
	}
	return &Failure{Oracle: o.Name, Seed: seed, Err: finalErr, Instance: shrunk, ShrinkSteps: steps}
}

// Replay regenerates the instance for one (oracle, per-iteration seed) pair
// and re-runs the oracle against the healthy system, shrinking on failure
// exactly as the original run did. It returns nil if the oracle passes.
func Replay(oracleName string, seed int64, shrinkBudget int) (*Failure, error) {
	o, err := OracleByName(oracleName)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	return runOne(o, seed, Healthy(), shrinkBudget, rep, newCheckMetrics()), nil
}

// RunMutant reports whether the oracle catches the mutant within iters
// seeded iterations: for each iteration it generates the oracle's instance,
// applies the mutant (a broken system variant or an instance corruption),
// and checks whether the oracle fires. The mutation smoke test requires
// true for every registered mutant — an oracle that cannot see its own
// seeded faults is vacuous.
func RunMutant(o *Oracle, m Mutant, campaign int64, iters int) bool {
	for iter := 0; iter < iters; iter++ {
		seed := IterSeed(campaign, o.Name+"/"+m.Name, iter)
		rng := newRng(seed)
		inst, err := o.Gen(rng)
		if err != nil {
			continue
		}
		sys := Healthy()
		if m.Sys != nil {
			m.Sys(sys)
		}
		if m.Corrupt != nil {
			m.Corrupt(inst, rng)
		}
		if safeCheck(o, inst, sys) != nil {
			return true
		}
	}
	return false
}
