package check

import "testing"

// TestMutationCoverage is the harness's self-validation: every registered
// oracle must catch every one of its seeded mutants within a bounded number
// of iterations. An oracle whose checks are vacuous (always pass) fails
// here, so it cannot silently ship — this is the CI tripwire ISSUE 4's
// tentpole requires.
func TestMutationCoverage(t *testing.T) {
	iters := 80
	if testing.Short() {
		iters = 30
	}
	for _, o := range Oracles() {
		o := o
		t.Run(o.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range o.Mutants {
				if !RunMutant(o, m, 1, iters) {
					t.Errorf("oracle %s never caught mutant %s in %d iterations: the oracle is too weak",
						o.Name, m.Name, iters)
				}
			}
		})
	}
}

// TestMutantsInvisibleToHealthySystem guards the other direction: applying
// no mutant, the same seeds pass (already covered by TestHealthyRun), and a
// Sys mutant must not leak state into the shared registry — Oracles() hands
// out fresh closures, and Healthy() hands out a fresh System, so running a
// mutant then a healthy check on the same seed passes.
func TestMutantsInvisibleToHealthySystem(t *testing.T) {
	o := Oracles()[0]
	m := o.Mutants[0]
	RunMutant(o, m, 7, 5) // may or may not catch; must not pollute
	for iter := 0; iter < 5; iter++ {
		seed := IterSeed(7, o.Name+"/"+m.Name, iter)
		inst, err := replayGen(o, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := safeCheck(o, inst, Healthy()); err != nil {
			t.Errorf("healthy system fails seed %d after mutant run: %v", seed, err)
		}
	}
}
