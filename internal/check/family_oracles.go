package check

import (
	"fmt"
	"math/big"
	"math/rand"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/linalg"
)

// The adversary-family and general-k oracles added by the diversity suite:
// every registered dynet family must satisfy the machine-checkable
// Properties it declares, the general-k Lemma-5 construction must reproduce
// the kernel identities that justify it, and the degree-oracle counter must
// hold its O(1) round bound on transformed random schedules.

// tIntervalWindowOracle verifies the T-interval family end to end: the
// declared properties hold through several full windows, the window law
// Snapshot(r) = Snapshot(r − r mod T) is re-derived independently of the
// verifier, and rebuilding from the same seed reproduces the schedule.
func tIntervalWindowOracle() *Oracle {
	return &Oracle{
		Name: "tinterval-window",
		Doc:  "T-interval family: declared properties hold, window law re-derived, seed-deterministic rebuild",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genFamily(rng, "tinterval")
		},
		Check: func(inst *Instance, sys *System) error {
			f := inst.Fam
			if f == nil || f.Kind != "tinterval" {
				return fmt.Errorf("tinterval oracle on non-tinterval instance")
			}
			d, props, err := buildFamilyNet(f, sys)
			if err != nil {
				return err
			}
			if props.StabilityWindow != f.T || !props.IntervalConnected || !props.SeedDeterministic {
				return fmt.Errorf("declared properties %+v do not promise a connected %d-window deterministic family", props, f.T)
			}
			if err := sys.VerifyProps(d, props, f.Rounds); err != nil {
				return err
			}
			// The window law, re-derived: every round equals its window head,
			// checked directly rather than through the verifier under test.
			for r := 0; r < f.Rounds; r++ {
				if !d.Snapshot(r).Equal(d.Snapshot(r - r%f.T)) {
					return fmt.Errorf("round %d differs from its window head %d (T=%d)", r, r-r%f.T, f.T)
				}
			}
			// Seed determinism across an independent construction.
			d2, _, err := buildFamilyNet(f, sys)
			if err != nil {
				return err
			}
			for r := 0; r < f.Rounds; r++ {
				if !d.Snapshot(r).Equal(d2.Snapshot(r)) {
					return fmt.Errorf("rebuild from seed %d diverges at round %d", f.Seed, r)
				}
			}
			return nil
		},
		Mutants: []Mutant{
			// The topology drifts inside a stability window: odd rounds
			// toggle one edge, so a window of length ≥ 2 contains two
			// different snapshots.
			{Name: "tinterval-drift", Sys: func(sys *System) {
				inner := sys.NewTInterval
				sys.NewTInterval = func(n, window int, p float64, seed int64) (dynet.Dynamic, error) {
					d, err := inner(n, window, p, seed)
					if err != nil || n < 2 {
						return d, err
					}
					return dynet.NewFunc(n, func(r int) *graph.Graph {
						g := d.Snapshot(r)
						if r%2 == 0 {
							return g
						}
						cp := g.Clone()
						if cp.HasEdge(0, 1) {
							_ = cp.RemoveEdge(0, 1)
						} else {
							_ = cp.AddEdge(0, 1)
						}
						return cp
					}), nil
				}
			}},
			// Round 1 isolates the last node: the family is no longer
			// 1-interval connected.
			{Name: "tinterval-disconnect", Sys: func(sys *System) {
				inner := sys.NewTInterval
				sys.NewTInterval = func(n, window int, p float64, seed int64) (dynet.Dynamic, error) {
					d, err := inner(n, window, p, seed)
					if err != nil || n < 2 {
						return d, err
					}
					return dynet.NewFunc(n, func(r int) *graph.Graph {
						g := d.Snapshot(r)
						if r != 1 {
							return g
						}
						cp := g.Clone()
						last := graph.NodeID(n - 1)
						for _, u := range g.Neighbors(last) {
							_ = cp.RemoveEdge(last, u)
						}
						return cp
					}), nil
				}
			}},
		},
	}
}

// miscountChurn inflates every LiveCount by one while leaving the actual
// alive schedule untouched — the accounting no longer matches the network.
type miscountChurn struct {
	dynet.LiveTracker
}

func (m *miscountChurn) LiveCount(r int) int { return m.LiveTracker.LiveCount(r) + 1 }

// ghostEdgeChurn attaches the first dead slot of each round to the leader:
// a churned-out node that keeps receiving messages.
type ghostEdgeChurn struct {
	dynet.LiveTracker
}

func (g *ghostEdgeChurn) Snapshot(r int) *graph.Graph {
	base := g.LiveTracker.Snapshot(r)
	for v := 1; v < g.LiveTracker.N(); v++ {
		if !g.Alive(r, graph.NodeID(v)) {
			cp := base.Clone()
			_ = cp.AddEdge(graph.NodeID(v), 0)
			return cp
		}
	}
	return base
}

// churnConserveOracle verifies the join/leave family: declared properties
// (including the live-accounting law the verifier scans), plus an
// independent re-derivation of the conservation law LiveCount(r) =
// LiveCount(r−1) + Joins(r) − Leaves(r), the leader's permanence, and the
// RejoinNever monotone decay to the stable core.
func churnConserveOracle() *Oracle {
	return &Oracle{
		Name: "churn-conserve",
		Doc:  "churn family: live accounting conserved, leader permanent, RejoinNever decays to the core",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genFamily(rng, "churn")
		},
		Check: func(inst *Instance, sys *System) error {
			f := inst.Fam
			if f == nil || f.Kind != "churn" {
				return fmt.Errorf("churn oracle on non-churn instance")
			}
			d, props, err := buildFamilyNet(f, sys)
			if err != nil {
				return err
			}
			if !props.LiveAccounting || !props.SeedDeterministic {
				return fmt.Errorf("declared properties %+v do not promise live accounting", props)
			}
			if err := sys.VerifyProps(d, props, f.Rounds); err != nil {
				return err
			}
			lt, ok := d.(dynet.LiveTracker)
			if !ok {
				return fmt.Errorf("churn network does not track its live set")
			}
			prev := lt.LiveCount(0)
			for r := 0; r < f.Rounds; r++ {
				if !lt.Alive(r, 0) {
					return fmt.Errorf("leader slot dead at round %d", r)
				}
				cur := lt.LiveCount(r)
				if cur < f.Core || cur > f.N {
					return fmt.Errorf("round %d: live count %d outside [%d, %d]", r, cur, f.Core, f.N)
				}
				if r > 0 {
					if cur != prev+lt.Joins(r)-lt.Leaves(r) {
						return fmt.Errorf("round %d: conservation violated: %d != %d + %d − %d",
							r, cur, prev, lt.Joins(r), lt.Leaves(r))
					}
					if f.Policy == dynet.RejoinNever && lt.Joins(r) != 0 {
						return fmt.Errorf("round %d: %d joins under RejoinNever", r, lt.Joins(r))
					}
				}
				prev = cur
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "churn-miscount", Sys: func(sys *System) {
				inner := sys.NewChurn
				sys.NewChurn = func(n, core, dwell int, policy dynet.RejoinPolicy, p float64, seed int64) (dynet.LiveTracker, error) {
					lt, err := inner(n, core, dwell, policy, p, seed)
					if err != nil {
						return lt, err
					}
					return &miscountChurn{LiveTracker: lt}, nil
				}
			}},
			{Name: "churn-ghost-edge", Sys: func(sys *System) {
				inner := sys.NewChurn
				sys.NewChurn = func(n, core, dwell int, policy dynet.RejoinPolicy, p float64, seed int64) (dynet.LiveTracker, error) {
					lt, err := inner(n, core, dwell, policy, p, seed)
					if err != nil {
						return lt, err
					}
					return &ghostEdgeChurn{LiveTracker: lt}, nil
				}
			}},
		},
	}
}

// mdblkPairOracle regenerates the general-k Lemma-5 pair and verifies the
// identities the construction rests on for k > 2 as well as k = 2: twin
// sizes n and n+1 over the same alphabet, leader views equal through the
// sustained rounds, count difference exactly the general-k kernel vector
// with the closed-form negative mass, the rounds within the general-k
// horizon, and divergence at exactly round r+1 after the extension.
func mdblkPairOracle() *Oracle {
	return &Oracle{
		Name: "mdblk-pair",
		Doc:  "general-k Lemma 5 pairs: equal views, kernel count-difference, horizon bound, divergence at r+1",
		Gen:  genPairK,
		Check: func(inst *Instance, sys *System) error {
			n, r, k := inst.M.W(), inst.EqRounds, inst.M.K()
			if inst.Twin == nil {
				return fmt.Errorf("pair instance without twin")
			}
			if inst.Twin.W() != n+1 || inst.Twin.K() != k {
				return fmt.Errorf("twin shape (w=%d, k=%d), want (w=%d, k=%d)",
					inst.Twin.W(), inst.Twin.K(), n+1, k)
			}
			if maxR := sys.MaxIndistK(n, k); r > maxR {
				return fmt.Errorf("pair sustains %d rounds at k=%d on n=%d, closed-form horizon says at most %d",
					r, k, n, maxR)
			}
			va, err := inst.M.LeaderView(r)
			if err != nil {
				return err
			}
			vb, err := inst.Twin.LeaderView(r)
			if err != nil {
				return err
			}
			if !va.Equal(vb) {
				return fmt.Errorf("leader views differ within %d rounds at k=%d", r, k)
			}
			// Count difference is exactly the general-k kernel vector, and
			// its negative mass matches the closed form (B^r − 1)/2.
			ca, err := inst.M.HistoryCounts(r)
			if err != nil {
				return err
			}
			cb, err := inst.Twin.HistoryCounts(r)
			if err != nil {
				return err
			}
			kv, err := sys.KernelK(r-1, k)
			if err != nil {
				return err
			}
			neg := big.NewInt(0)
			for i := range ca {
				diff := big.NewInt(int64(cb[i] - ca[i]))
				if diff.Cmp(kv[i]) != 0 {
					return fmt.Errorf("count difference at history %d is %s, kernel says %s", i, diff, kv[i])
				}
				if diff.Sign() < 0 {
					neg.Sub(neg, diff)
				}
			}
			wantNeg, err := sys.KernelSumNegK(r-1, k)
			if err != nil {
				return err
			}
			if neg.Cmp(wantNeg) != 0 {
				return fmt.Errorf("negative kernel mass %s, closed form says %s", neg, wantNeg)
			}
			// The extension diverges at exactly round r+1.
			pair := &core.Pair{M: inst.M, MPrime: inst.Twin, N: n, Rounds: r}
			div, ok := pair.FirstDivergence()
			if !ok {
				return fmt.Errorf("extended k=%d views never diverge within horizon %d", k, inst.M.Horizon())
			}
			if div != r+1 {
				return fmt.Errorf("k=%d views diverge at round %d, want %d", k, div, r+1)
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "pairk-twin-flip", Corrupt: func(inst *Instance, rng *rand.Rand) {
				flipLabel(inst, rng, true)
			}},
			{Name: "kernelk-sign-flip", Sys: func(sys *System) {
				inner := sys.KernelK
				sys.KernelK = func(r, k int) (linalg.Vector, error) {
					kv, err := inner(r, k)
					if err == nil {
						kv[len(kv)-1].Neg(kv[len(kv)-1])
					}
					return kv, err
				}
			}},
		},
	}
}

// degreeOracleCountOracle runs the role-discovering degree-oracle counter on
// the Lemma-1 transformation of a random ℳ(DBL)ₖ schedule: the count is
// exactly |V| = 1 + k + |W| in exactly 4 rounds regardless of |V| — the
// paper's O(1)-vs-Ω(log n) Discussion contrast — while the layout-fed
// variant on the same network stays at 2 rounds with the same count.
func degreeOracleCountOracle() *Oracle {
	return &Oracle{
		Name: "degree-oracle-count",
		Doc:  "degree-oracle counter: exact |V| in 4 rounds on transformed schedules; layout-fed variant in 2",
		Gen: func(rng *rand.Rand) (*Instance, error) {
			return genScheduleK(rng, 4, 8, 3)
		},
		Check: func(inst *Instance, sys *System) error {
			m := inst.M
			net, layout, err := sys.Transform(m)
			if err != nil {
				return err
			}
			total := 1 + m.K() + m.W()
			count, rounds, err := sys.DegOracleCount(net, layout.Leader, layout.V1, layout.V2)
			if err != nil {
				return err
			}
			if count != total {
				return fmt.Errorf("degree oracle counted %d on a |V|=%d transformed schedule", count, total)
			}
			if rounds != 4 {
				return fmt.Errorf("degree oracle used %d rounds, want the constant 4", rounds)
			}
			lcount, lrounds, err := sys.LayoutOracleCount(net, layout.Leader, layout.V1, layout.V2)
			if err != nil {
				return err
			}
			if lcount != total || lrounds != 2 {
				return fmt.Errorf("layout-fed oracle got (%d, %d rounds), want (%d, 2 rounds)", lcount, lrounds, total)
			}
			return nil
		},
		Mutants: []Mutant{
			{Name: "degoracle-overcount", Sys: func(sys *System) {
				inner := sys.DegOracleCount
				sys.DegOracleCount = func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (int, int, error) {
					c, r, err := inner(net, leader, v1, v2)
					return c + 1, r, err
				}
			}},
			{Name: "degoracle-round-blowup", Sys: func(sys *System) {
				inner := sys.DegOracleCount
				sys.DegOracleCount = func(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID) (int, int, error) {
					c, r, err := inner(net, leader, v1, v2)
					return c, r + 1, err
				}
			}},
		},
	}
}
