package trace

import (
	"testing"
)

// FuzzFromJSON exercises the trace parser with arbitrary bytes: it must
// never panic, and accepted traces must re-serialize and re-parse stably.
func FuzzFromJSON(f *testing.F) {
	f.Add([]byte(`{"n":2,"rounds":[]}`))
	f.Add([]byte(`{"n":1,"rounds":[{"edges":[],"sent":["x"],"inbox":[[]]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := FromJSON(data)
		if err != nil {
			return
		}
		out, err := tr.ToJSON()
		if err != nil {
			t.Fatalf("re-serialize accepted trace: %v", err)
		}
		tr2, err := FromJSON(out)
		if err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
		if tr2.N != tr.N || len(tr2.Rounds) != len(tr.Rounds) {
			t.Fatalf("unstable round trip: %+v vs %+v", tr, tr2)
		}
	})
}
