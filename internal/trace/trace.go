// Package trace records synchronous executions — per-round topologies,
// broadcasts, and inboxes — so that runs can be exported, compared, and
// replayed. Its central use in this reproduction is indistinguishability
// checking: two executions are indistinguishable to a node iff the node's
// transcripts (its per-round received multisets) are identical, which is
// Lemma 5's criterion applied at the message-passing level.
package trace

import (
	"encoding/json"
	"fmt"

	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// Round is the record of one completed round.
type Round struct {
	// Edges is the topology used in the round, in canonical order.
	Edges []graph.Edge `json:"edges"`
	// Sent[i] is the canonical encoding of node i's broadcast.
	Sent []string `json:"sent"`
	// Inbox[i] lists the canonical encodings node i received, in
	// delivery order.
	Inbox [][]string `json:"inbox"`
}

// Trace is a full execution record.
type Trace struct {
	// N is the node count.
	N int `json:"n"`
	// Rounds holds one record per completed round.
	Rounds []Round `json:"rounds"`
}

// Recorder instruments a runtime.Config to capture a Trace. Create it with
// NewRecorder, then run the returned config.
type Recorder struct {
	trace Trace
	canon runtime.Canonicalizer
	cur   *Round
}

// recProc decorates a process with send/receive capture.
type recProc struct {
	inner runtime.Process
	rec   *Recorder
	node  int
}

func (p *recProc) Send(r int) runtime.Message {
	m := p.inner.Send(r)
	p.rec.cur.Sent[p.node] = p.rec.canon(m)
	return m
}

func (p *recProc) Receive(r int, msgs []runtime.Message) {
	enc := make([]string, len(msgs))
	for i, m := range msgs {
		enc[i] = p.rec.canon(m)
	}
	p.rec.cur.Inbox[p.node] = enc
	p.inner.Receive(r, msgs)
}

// SetDegree forwards the degree oracle when the inner process uses it.
func (p *recProc) SetDegree(r, d int) {
	if da, ok := p.inner.(runtime.DegreeAware); ok {
		da.SetDegree(r, d)
	}
}

// Output forwards the Outputter interface when the inner process has one.
func (p *recProc) Output() (int, bool) {
	if o, ok := p.inner.(runtime.Outputter); ok {
		return o.Output()
	}
	return 0, false
}

// NewRecorder wraps cfg so that running it captures a full Trace. The
// returned config must be run with the SEQUENTIAL engine: recording hooks
// write shared state from process callbacks, which the concurrent engine
// runs in parallel. The original cfg is not modified.
func NewRecorder(cfg *runtime.Config) (*Recorder, *runtime.Config, error) {
	if cfg.Net == nil {
		return nil, nil, fmt.Errorf("trace: nil network")
	}
	n := cfg.Net.N()
	if len(cfg.Procs) != n {
		return nil, nil, fmt.Errorf("trace: %d processes for %d nodes", len(cfg.Procs), n)
	}
	rec := &Recorder{trace: Trace{N: n}}
	rec.canon = cfg.Canon
	if rec.canon == nil {
		rec.canon = runtime.DefaultCanon
	}
	wrapped := *cfg
	wrapped.Procs = make([]runtime.Process, n)
	for i, p := range cfg.Procs {
		wrapped.Procs[i] = &recProc{inner: p, rec: rec, node: i}
	}
	userOnRound := cfg.OnRound
	rec.startRound(cfg.Net, 0)
	wrapped.OnRound = func(r int) {
		rec.cur.Edges = cfg.Net.Snapshot(r).Edges()
		rec.trace.Rounds = append(rec.trace.Rounds, *rec.cur)
		rec.startRound(cfg.Net, r+1)
		if userOnRound != nil {
			userOnRound(r)
		}
	}
	return rec, &wrapped, nil
}

func (rec *Recorder) startRound(net interface{ N() int }, r int) {
	n := net.N()
	rec.cur = &Round{
		Sent:  make([]string, n),
		Inbox: make([][]string, n),
	}
}

// Trace returns the recorded execution so far.
func (rec *Recorder) Trace() *Trace {
	t := rec.trace
	return &t
}

// Transcript returns node v's view of the execution: the sequence of its
// per-round inboxes, canonically encoded. Anonymous algorithms see exactly
// this (plus their own sends), so equal transcripts mean indistinguishable
// executions for that node.
func (t *Trace) Transcript(v int) ([]string, error) {
	if v < 0 || v >= t.N {
		return nil, fmt.Errorf("trace: node %d out of range [0,%d)", v, t.N)
	}
	out := make([]string, len(t.Rounds))
	for r, round := range t.Rounds {
		b, err := json.Marshal(round.Inbox[v])
		if err != nil {
			return nil, err
		}
		out[r] = string(b)
	}
	return out, nil
}

// TranscriptsEqual reports whether node v's transcript is identical in two
// traces through the first `rounds` rounds of each.
func TranscriptsEqual(a, b *Trace, v, rounds int) (bool, error) {
	ta, err := a.Transcript(v)
	if err != nil {
		return false, err
	}
	tb, err := b.Transcript(v)
	if err != nil {
		return false, err
	}
	if len(ta) < rounds || len(tb) < rounds {
		return false, fmt.Errorf("trace: traces cover %d and %d rounds, need %d", len(ta), len(tb), rounds)
	}
	for r := 0; r < rounds; r++ {
		if ta[r] != tb[r] {
			return false, nil
		}
	}
	return true, nil
}

// MarshalJSON is provided by the embedded struct tags; ToJSON is a
// convenience wrapper producing indented output.
func (t *Trace) ToJSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// FromJSON parses a trace previously produced by ToJSON.
func FromJSON(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	return &t, nil
}
