package trace

import (
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// beacon broadcasts a fixed string; sink records nothing.
type beacon struct{ id string }

func (b beacon) Send(int) runtime.Message     { return b.id }
func (beacon) Receive(int, []runtime.Message) {}

func mkConfig(n int, net dynet.Dynamic, rounds int) *runtime.Config {
	procs := make([]runtime.Process, n)
	for i := range procs {
		procs[i] = beacon{id: string(rune('a' + i))}
	}
	return &runtime.Config{
		Net:       net,
		Procs:     procs,
		MaxRounds: rounds,
		Canon: func(m runtime.Message) string {
			if s, ok := m.(string); ok {
				return s
			}
			return runtime.DefaultCanon(m)
		},
	}
}

func TestRecorderCapturesRounds(t *testing.T) {
	net := dynet.NewStatic(graph.Path(3))
	cfg := mkConfig(3, net, 2)
	rec, wrapped, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.RunSequential(wrapped); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if tr.N != 3 || len(tr.Rounds) != 2 {
		t.Fatalf("trace: N=%d rounds=%d", tr.N, len(tr.Rounds))
	}
	r0 := tr.Rounds[0]
	if len(r0.Edges) != 2 {
		t.Fatalf("round 0 edges = %v", r0.Edges)
	}
	if r0.Sent[0] != "a" || r0.Sent[1] != "b" || r0.Sent[2] != "c" {
		t.Fatalf("sent = %v", r0.Sent)
	}
	// Node 1 on the path hears both ends.
	if len(r0.Inbox[1]) != 2 {
		t.Fatalf("inbox[1] = %v", r0.Inbox[1])
	}
	if len(r0.Inbox[0]) != 1 || r0.Inbox[0][0] != "b" {
		t.Fatalf("inbox[0] = %v", r0.Inbox[0])
	}
}

func TestRecorderValidation(t *testing.T) {
	if _, _, err := NewRecorder(&runtime.Config{}); err == nil {
		t.Fatal("nil network should error")
	}
	if _, _, err := NewRecorder(&runtime.Config{Net: dynet.NewStatic(graph.Path(2))}); err == nil {
		t.Fatal("missing processes should error")
	}
}

func TestRecorderPreservesUserOnRound(t *testing.T) {
	var seen []int
	cfg := mkConfig(2, dynet.NewStatic(graph.Path(2)), 3)
	cfg.OnRound = func(r int) { seen = append(seen, r) }
	_, wrapped, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.RunSequential(wrapped); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("user OnRound saw %v", seen)
	}
}

func TestTranscriptAndEquality(t *testing.T) {
	net := dynet.NewStatic(graph.Path(3))
	runOnce := func() *Trace {
		cfg := mkConfig(3, net, 3)
		rec, wrapped, err := NewRecorder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runtime.RunSequential(wrapped); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	a := runOnce()
	b := runOnce()
	eq, err := TranscriptsEqual(a, b, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("identical executions have different transcripts")
	}
	if _, err := a.Transcript(9); err == nil {
		t.Fatal("bad node should error")
	}
	if _, err := TranscriptsEqual(a, b, 0, 9); err == nil {
		t.Fatal("too many rounds should error")
	}
}

func TestTranscriptsDifferAcrossTopologies(t *testing.T) {
	mk := func(net dynet.Dynamic) *Trace {
		cfg := mkConfig(3, net, 2)
		rec, wrapped, err := NewRecorder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runtime.RunSequential(wrapped); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	a := mk(dynet.NewStatic(graph.Path(3)))
	b := mk(dynet.NewStatic(graph.Complete(3)))
	eq, err := TranscriptsEqual(a, b, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("different topologies produced equal node-0 transcripts")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cfg := mkConfig(2, dynet.NewStatic(graph.Path(2)), 2)
	rec, wrapped, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.RunSequential(wrapped); err != nil {
		t.Fatal(err)
	}
	data, err := rec.Trace().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 2 || len(back.Rounds) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON should error")
	}
}

// fullInfoProc broadcasts its complete receive history — the canonical
// "full information" protocol used for indistinguishability experiments.
type fullInfoProc struct {
	history []string
}

func (p *fullInfoProc) Send(int) runtime.Message {
	out := make([]string, len(p.history))
	copy(out, p.history)
	return out
}

func (p *fullInfoProc) Receive(_ int, msgs []runtime.Message) {
	enc := ""
	for _, m := range msgs {
		if ss, ok := m.([]string); ok {
			inner := ""
			for _, s := range ss {
				inner += "(" + s + ")"
			}
			enc += "[" + inner + "]"
		}
	}
	p.history = append(p.history, enc)
}

// TestLemma5AtMessageLevel is the package's flagship test: running the
// full-information protocol over the PD2 transformations of a Lemma 5 pair
// yields IDENTICAL leader transcripts through the indistinguishability
// horizon — message-level confirmation of the view-level result.
func TestLemma5AtMessageLevel(t *testing.T) {
	pair, err := core.WorstCasePair(4)
	if err != nil {
		t.Fatal(err)
	}
	mkTrace := func(side int) *Trace {
		m := pair.M
		if side == 1 {
			m = pair.MPrime
		}
		net, _, err := m.ToPD2()
		if err != nil {
			t.Fatal(err)
		}
		n := net.N()
		procs := make([]runtime.Process, n)
		for i := range procs {
			procs[i] = &fullInfoProc{}
		}
		cfg := &runtime.Config{
			Net:       net,
			Procs:     procs,
			MaxRounds: pair.Rounds,
			Canon: func(m runtime.Message) string {
				ss, ok := m.([]string)
				if !ok {
					return runtime.DefaultCanon(m)
				}
				out := ""
				for _, s := range ss {
					out += "<" + s + ">"
				}
				return out
			},
		}
		rec, wrapped, err := NewRecorder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runtime.RunSequential(wrapped); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	ta := mkTrace(0)
	tb := mkTrace(1)
	// The leader is node 0 in the PD2 layout.
	eq, err := TranscriptsEqual(ta, tb, 0, pair.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("Lemma 5 pair produced different leader transcripts at the message level")
	}
}
