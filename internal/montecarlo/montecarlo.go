// Package montecarlo measures the average-case behaviour of counting in
// anonymous dynamic networks, complementing the paper's worst-case bound.
// The adversary of Theorem 1 is tuned to the kernel's negative support;
// this package quantifies how far typical (random, fair) schedules fall
// from that worst case: on random ℳ(DBL)₂ schedules the leader's interval
// usually collapses within two or three rounds regardless of size, while
// the worst case grows as ⌊log₃(2n+1)⌋ + 1.
package montecarlo

import (
	"context"
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/sweep"
)

// Summary describes a sample of counting-round measurements.
type Summary struct {
	// Trials is the sample size.
	Trials int
	// Mean is the sample mean of rounds-to-count.
	Mean float64
	// Min and Max bound the sample.
	Min, Max int
	// Quantiles holds the 50th, 90th and 99th percentiles.
	P50, P90, P99 int
	// Failures counts trials whose count never resolved within the
	// horizon (always 0 in practice for the horizons used).
	Failures int
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("trials=%d mean=%.2f min=%d p50=%d p90=%d p99=%d max=%d failures=%d",
		s.Trials, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Failures)
}

// summarize computes a Summary from raw round counts (-1 = failure). The
// statistics themselves are sweep.Distribution's — one definition serves
// the study, the campaign engine, and the figure tables.
func summarize(rounds []int) Summary {
	d := sweep.Distribution(rounds)
	return Summary{
		Trials: d.Trials, Mean: d.Mean, Min: d.Min, Max: d.Max,
		P50: d.P50, P90: d.P90, P99: d.P99, Failures: d.Failures,
	}
}

// RandomScheduleRounds measures the leader-state counter on `trials`
// uniformly random ℳ(DBL)₂ schedules of size n, each run for up to
// `horizon` rounds. The trials execute as one sweep-engine campaign on the
// work-stealing pool, so the study parallelizes across all cores; each
// trial's RNG seed derives from (baseSeed, n, trial) via sweep.JobSeed,
// never from a shared source, so any shard of the study — including a
// resumed one — reproduces the original numbers. A canceled context stops
// the study promptly and returns the context's error.
func RandomScheduleRounds(ctx context.Context, n, trials, horizon int, baseSeed int64) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need n >= 1, got %d", n)
	}
	if trials < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need trials >= 1, got %d", trials)
	}
	if horizon < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need horizon >= 1, got %d", horizon)
	}
	spec := sweep.Spec{
		Name: "montecarlo", Proto: sweep.ProtoMDBLCount,
		Sizes: []int{n}, Trials: trials, Horizon: horizon, Seed: baseSeed,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return Summary{}, fmt.Errorf("montecarlo: %w", err)
	}
	rep, err := sweep.Run(ctx, jobs, sweep.MDBLCount, sweep.Options{})
	if err != nil {
		return Summary{}, fmt.Errorf("montecarlo: %d/%d trials: %w", rep.Executed, trials, err)
	}
	rounds := make([]int, trials)
	for i, r := range rep.Results {
		if r.Failed {
			rounds[i] = -1
			continue
		}
		rounds[i] = r.Rounds
	}
	return summarize(rounds), nil
}

// Comparison pairs the average case with the worst case for one size.
type Comparison struct {
	N          int
	Average    Summary
	WorstCase  int
	LowerBound int
}

// Compare runs the Monte-Carlo study for each size and pairs it with the
// measured worst case and the theoretical bound. The context is checked
// between trials and between sizes.
func Compare(ctx context.Context, sizes []int, trials, horizon int, baseSeed int64) ([]Comparison, error) {
	out := make([]Comparison, 0, len(sizes))
	for _, n := range sizes {
		avg, err := RandomScheduleRounds(ctx, n, trials, horizon, baseSeed)
		if err != nil {
			return nil, fmt.Errorf("montecarlo: size %d: %w", n, err)
		}
		wc, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{
			N:          n,
			Average:    avg,
			WorstCase:  wc.Rounds,
			LowerBound: core.LowerBoundRounds(n),
		})
	}
	return out, nil
}
