// Package montecarlo measures the average-case behaviour of counting in
// anonymous dynamic networks, complementing the paper's worst-case bound.
// The adversary of Theorem 1 is tuned to the kernel's negative support;
// this package quantifies how far typical (random, fair) schedules fall
// from that worst case: on random ℳ(DBL)₂ schedules the leader's interval
// usually collapses within two or three rounds regardless of size, while
// the worst case grows as ⌊log₃(2n+1)⌋ + 1.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"sort"

	"anondyn/internal/core"
	"anondyn/internal/multigraph"
)

// Summary describes a sample of counting-round measurements.
type Summary struct {
	// Trials is the sample size.
	Trials int
	// Mean is the sample mean of rounds-to-count.
	Mean float64
	// Min and Max bound the sample.
	Min, Max int
	// Quantiles holds the 50th, 90th and 99th percentiles.
	P50, P90, P99 int
	// Failures counts trials whose count never resolved within the
	// horizon (always 0 in practice for the horizons used).
	Failures int
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("trials=%d mean=%.2f min=%d p50=%d p90=%d p99=%d max=%d failures=%d",
		s.Trials, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.Failures)
}

// summarize computes a Summary from raw round counts (-1 = failure).
func summarize(rounds []int) Summary {
	s := Summary{Min: math.MaxInt}
	var ok []int
	total := 0
	for _, r := range rounds {
		if r < 0 {
			s.Failures++
			continue
		}
		ok = append(ok, r)
		total += r
		if r < s.Min {
			s.Min = r
		}
		if r > s.Max {
			s.Max = r
		}
	}
	s.Trials = len(rounds)
	if len(ok) == 0 {
		s.Min = 0
		return s
	}
	s.Mean = float64(total) / float64(len(ok))
	sort.Ints(ok)
	q := func(p float64) int {
		idx := int(p * float64(len(ok)-1))
		return ok[idx]
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// RandomScheduleRounds measures the leader-state counter on `trials`
// uniformly random ℳ(DBL)₂ schedules of size n, each run for up to
// `horizon` rounds. Seeds derive deterministically from baseSeed, so the
// study is reproducible. The context is checked between trials: a canceled
// study stops promptly and returns the context's error.
func RandomScheduleRounds(ctx context.Context, n, trials, horizon int, baseSeed int64) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need n >= 1, got %d", n)
	}
	if trials < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need trials >= 1, got %d", trials)
	}
	if horizon < 1 {
		return Summary{}, fmt.Errorf("montecarlo: need horizon >= 1, got %d", horizon)
	}
	rounds := make([]int, trials)
	for i := 0; i < trials; i++ {
		if err := ctx.Err(); err != nil {
			return Summary{}, fmt.Errorf("montecarlo: canceled after %d/%d trials: %w", i, trials, err)
		}
		m, err := multigraph.Random(2, n, horizon, baseSeed+int64(i))
		if err != nil {
			return Summary{}, err
		}
		res, err := core.CountOnMultigraph(m, horizon)
		if err != nil {
			rounds[i] = -1
			continue
		}
		if res.Count != n {
			return Summary{}, fmt.Errorf("montecarlo: trial %d counted %d on a size-%d schedule", i, res.Count, n)
		}
		rounds[i] = res.Rounds
	}
	return summarize(rounds), nil
}

// Comparison pairs the average case with the worst case for one size.
type Comparison struct {
	N          int
	Average    Summary
	WorstCase  int
	LowerBound int
}

// Compare runs the Monte-Carlo study for each size and pairs it with the
// measured worst case and the theoretical bound. The context is checked
// between trials and between sizes.
func Compare(ctx context.Context, sizes []int, trials, horizon int, baseSeed int64) ([]Comparison, error) {
	out := make([]Comparison, 0, len(sizes))
	for _, n := range sizes {
		avg, err := RandomScheduleRounds(ctx, n, trials, horizon, baseSeed)
		if err != nil {
			return nil, fmt.Errorf("montecarlo: size %d: %w", n, err)
		}
		wc, err := core.WorstCaseCountRounds(n)
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{
			N:          n,
			Average:    avg,
			WorstCase:  wc.Rounds,
			LowerBound: core.LowerBoundRounds(n),
		})
	}
	return out, nil
}
