package montecarlo

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"anondyn/internal/core"
	"anondyn/internal/sweep"
)

func TestRandomScheduleRoundsBasic(t *testing.T) {
	s, err := RandomScheduleRounds(context.Background(), 20, 50, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 50 || s.Failures != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min < 1 || s.Max > 10 || s.Min > s.Max {
		t.Fatalf("bounds wrong: %+v", s)
	}
	if s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
		t.Fatalf("mean outside bounds: %+v", s)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestRandomScheduleRoundsDeterministic(t *testing.T) {
	a, err := RandomScheduleRounds(context.Background(), 10, 20, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomScheduleRounds(context.Background(), 10, 20, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("not reproducible: %+v vs %+v", a, b)
	}
}

// TestGoldenSeedRegression pins the study's numbers for one fixed
// (campaign seed, grid) point. Per-trial seeds derive from
// sweep.JobSeed(baseSeed, n, trial); any change to that derivation — or to
// how the trial consumes its RNG — shows up here as a different summary,
// which would mean resumed shards no longer reproduce old journals.
func TestGoldenSeedRegression(t *testing.T) {
	s, err := RandomScheduleRounds(context.Background(), 10, 20, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Trials: 20, Mean: 2.40, Min: 2, Max: 3, P50: 2, P90: 3, P99: 3, Failures: 0}
	if s != want {
		t.Fatalf("golden summary drifted:\n got %+v\nwant %+v", s, want)
	}
}

// A resumed shard must reproduce the original run's numbers exactly: the
// per-trial results depend only on (campaign seed, size, trial index),
// never on which process or worker executes the trial.
func TestResumedShardReproducesStudy(t *testing.T) {
	spec := sweep.Spec{
		Name: "shard", Proto: sweep.ProtoMDBLCount,
		Sizes: []int{10}, Trials: 30, Horizon: 8, Seed: 42,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	full, err := sweep.Run(context.Background(), jobs, sweep.MDBLCount, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Resume-style shard: the first 20 trials come from a "previous run's
	// journal"; only the tail executes here, at a different worker count.
	done := make(map[string]sweep.Result, 20)
	for _, r := range full.Results[:20] {
		done[r.Key] = r
	}
	shard, err := sweep.Run(context.Background(), jobs, sweep.MDBLCount, sweep.Options{Workers: 2, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if shard.Resumed != 20 || shard.Executed != 10 {
		t.Fatalf("resumed=%d executed=%d", shard.Resumed, shard.Executed)
	}
	if !reflect.DeepEqual(shard.Results, full.Results) {
		t.Fatal("resumed shard diverged from the original run")
	}
	// And the whole study, re-run monolithically, agrees too.
	s, err := RandomScheduleRounds(context.Background(), 10, 30, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	for _, r := range full.Results {
		rounds = append(rounds, r.Rounds)
	}
	if got := summarize(rounds); got != s {
		t.Fatalf("study summary %+v != sharded summary %+v", s, got)
	}
}

func TestRandomScheduleRoundsErrors(t *testing.T) {
	if _, err := RandomScheduleRounds(context.Background(), 0, 5, 5, 1); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := RandomScheduleRounds(context.Background(), 5, 0, 5, 1); err == nil {
		t.Fatal("trials=0 should error")
	}
	if _, err := RandomScheduleRounds(context.Background(), 5, 5, 0, 1); err == nil {
		t.Fatal("horizon=0 should error")
	}
}

// The study's thesis: random schedules resolve far below the worst case,
// and the worst case equals the bound.
func TestCompareAverageBelowWorstCase(t *testing.T) {
	comps, err := Compare(context.Background(), []int{13, 40, 121}, 30, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.WorstCase != c.LowerBound {
			t.Fatalf("n=%d: worst case %d != bound %d", c.N, c.WorstCase, c.LowerBound)
		}
		if c.Average.Failures > 0 {
			t.Fatalf("n=%d: %d failures", c.N, c.Average.Failures)
		}
		if c.Average.Mean > float64(c.WorstCase) {
			t.Fatalf("n=%d: average %.2f exceeds worst case %d", c.N, c.Average.Mean, c.WorstCase)
		}
	}
	// The average stays flat-ish while the worst case grows: at the
	// largest size the gap must be visible.
	last := comps[len(comps)-1]
	if last.Average.P90 >= last.WorstCase {
		t.Fatalf("n=%d: p90 %d not below worst case %d", last.N, last.Average.P90, last.WorstCase)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	s := summarize([]int{-1, -1})
	if s.Failures != 2 || s.Trials != 2 || s.Min != 0 {
		t.Fatalf("all-failure summary = %+v", s)
	}
	s2 := summarize([]int{3})
	if s2.Mean != 3 || s2.P50 != 3 || s2.Min != 3 || s2.Max != 3 {
		t.Fatalf("singleton summary = %+v", s2)
	}
	if !strings.Contains(s2.String(), "mean=3.00") {
		t.Fatalf("String = %s", s2)
	}
}

func TestWorstCaseIsActuallyWorst(t *testing.T) {
	// No random trial at n=40 should ever need more rounds than the
	// adversarial schedule.
	s, err := RandomScheduleRounds(context.Background(), 40, 100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	bound := core.LowerBoundRounds(40)
	if s.Max > bound {
		t.Fatalf("a random schedule (%d rounds) beat the worst case (%d)???", s.Max, bound)
	}
}
