package counting

import (
	"context"
	"strings"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// TestDegreeOracleCountExactAllEngines: the role-discovering counter must
// return the exact |V| in exactly 4 rounds on restricted 𝒢(PD)₂ instances
// of every shape — even outer counts, odd, degree-irregular — on all three
// engines.
func TestDegreeOracleCountExactAllEngines(t *testing.T) {
	ctx := context.Background()
	for _, engine := range []string{"sequential", "concurrent", "sharded"} {
		run, err := EngineByName(ctx, engine)
		if err != nil {
			t.Fatal(err)
		}
		for _, outer := range []int{1, 2, 5, 12} {
			inst, err := RestrictedPD2Instance(outer)
			if err != nil {
				t.Fatal(err)
			}
			count, rounds, err := DegreeOracleCount(inst.Net, inst.Leader, inst.V1, inst.V2, run)
			if err != nil {
				t.Fatalf("%s outer=%d: %v", engine, outer, err)
			}
			if count != inst.TrueN {
				t.Errorf("%s outer=%d: count %d, want %d", engine, outer, count, inst.TrueN)
			}
			if rounds != 4 {
				t.Errorf("%s outer=%d: %d rounds, want 4", engine, outer, rounds)
			}
		}
	}
}

// TestDegreeOracleOnWorstCase: the Lemma-1 transform of the worst-case
// ℳ(DBL)₂ adversary is itself restricted 𝒢(PD)₂, so the degree oracle
// counts it in 4 rounds — on schedules where the anonymous leader-state
// counter needs its full ⌊log₃(2|W|+1)⌋+1 budget. This is the paper's
// Discussion contrast in executable form.
func TestDegreeOracleOnWorstCase(t *testing.T) {
	ctx := context.Background()
	run, err := EngineByName(ctx, "sequential")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 13, 40} {
		inst, err := WorstCaseInstance(w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAlgorithm("degreeoracle", inst, run)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.Count != inst.TrueN || res.Rounds != 4 {
			t.Errorf("w=%d: got (%d, %d rounds), want (%d, 4 rounds)", w, res.Count, res.Rounds, inst.TrueN)
		}
		// The layout-fed variant stays 2 rounds: discovering roles costs
		// exactly the two announcement rounds.
		resOracle, err := RunAlgorithm("oracle", inst, run)
		if err != nil {
			t.Fatalf("w=%d oracle: %v", w, err)
		}
		if resOracle.Rounds != 2 || resOracle.Count != inst.TrueN {
			t.Errorf("w=%d: oracle got (%d, %d rounds), want (%d, 2 rounds)", w, resOracle.Count, resOracle.Rounds, inst.TrueN)
		}
	}
}

// TestDegreeOracleRejectsViolations covers the driver's validation: layer
// mismatches and unrestricted networks must be rejected before any rounds
// run.
func TestDegreeOracleRejectsViolations(t *testing.T) {
	ctx := context.Background()
	run, _ := EngineByName(ctx, "sequential")
	inst, err := RestrictedPD2Instance(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DegreeOracleCount(inst.Net, inst.Leader, inst.V1, nil, run); err == nil {
		t.Error("short layer cover accepted")
	}
	if _, _, err := DegreeOracleCount(inst.Net, inst.Leader, inst.V1, inst.V1, run); err == nil {
		t.Error("overlapping layers accepted")
	}
	// A connected random graph is not layered at all.
	net, err := dynet.NewRandomized(6, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	v1 := []graph.NodeID{1, 2}
	v2 := []graph.NodeID{3, 4, 5}
	if _, _, err := DegreeOracleCount(net, 0, v1, v2, run); err == nil {
		t.Error("unrestricted network accepted")
	}
}

// TestValidateAgainstNewFamilies pins the registry-level matching: the
// degree oracle refuses the layout-free families, the 1-interval-connected
// algorithms refuse join/leave churn via its declared properties, and the
// compatible combinations actually count.
func TestValidateAgainstNewFamilies(t *testing.T) {
	ctx := context.Background()
	run, _ := EngineByName(ctx, "sequential")
	ti, err := TIntervalInstance(7, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := JoinLeaveInstance(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RandomizedInstance(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []*Instance{ti, jl, rd} {
		if _, err := RunAlgorithm("degreeoracle", inst, run); err == nil ||
			!strings.Contains(err.Error(), "layer layout") {
			t.Errorf("degreeoracle on %s: %v, want layer-layout rejection", inst.Name, err)
		}
	}
	for _, algo := range []string{"histtree", "idcount", "incremental"} {
		if _, err := RunAlgorithm(algo, jl, run); err == nil ||
			!strings.Contains(err.Error(), "churn") {
			t.Errorf("%s on joinleave: %v, want connectivity rejection", algo, err)
		}
	}
	for _, inst := range []*Instance{ti, rd} {
		res, err := RunAlgorithm("histtree", inst, run)
		if err != nil {
			t.Fatalf("histtree on %s: %v", inst.Name, err)
		}
		if res.Count != inst.TrueN {
			t.Errorf("histtree on %s: count %d, want %d", inst.Name, res.Count, inst.TrueN)
		}
	}
	// The estimator accepts join/leave (fair adversary) and completes; its
	// estimate carries no exactness promise on churn, so only liveness and
	// plausibility are asserted.
	res, err := RunAlgorithm("pushsum", jl, run)
	if err != nil {
		t.Fatalf("pushsum on joinleave: %v", err)
	}
	if res.Count < 1 || res.Count > 10*jl.TrueN {
		t.Errorf("pushsum on joinleave: implausible estimate %d (true %d)", res.Count, jl.TrueN)
	}
}
