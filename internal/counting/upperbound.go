package counting

import (
	"fmt"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// UpperBoundCount implements the style of counting pioneered by Michail,
// Chatzigiannakis and Spirakis [15]: in an anonymous network with a leader
// and a KNOWN upper bound d on node degree, the leader can compute an upper
// bound on |V| (not the exact count) from an upper bound on the network
// depth, since at most d·(d-1)^{i-1} nodes can sit at distance i.
//
// The protocol is distance propagation: the leader beacons distance 0;
// every node tracks the minimum distance it has heard plus one, and
// gossips the maximum distance anyone has claimed. On persistent-distance
// (and static) networks, after `rounds` ≥ 2·depth rounds the leader knows
// the exact depth e and outputs
//
//	bound = 1 + d + d² + ... + d^e ≥ |V|.
//
// The looseness of this bound against the exact counter is the gap between
// the related-work baselines and this paper's machinery.

// distMsg carries a node's current distance estimate and the largest
// settled distance it has heard of.
type distMsg struct {
	Dist    int // sender's own distance estimate; -1 when unknown
	MaxSeen int // largest settled distance heard anywhere
}

// distProc is the distance-propagation process.
type distProc struct {
	isLeader bool
	dist     int // -1 until learned
	maxSeen  int
}

func newDistProc(isLeader bool) *distProc {
	p := &distProc{isLeader: isLeader, dist: -1}
	if isLeader {
		p.dist = 0
	}
	return p
}

func (p *distProc) Send(int) runtime.Message {
	return distMsg{Dist: p.dist, MaxSeen: p.maxSeen}
}

func (p *distProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		dm, ok := m.(distMsg)
		if !ok {
			continue
		}
		if dm.Dist >= 0 && (p.dist < 0 || dm.Dist+1 < p.dist) && !p.isLeader {
			p.dist = dm.Dist + 1
		}
		if dm.MaxSeen > p.maxSeen {
			p.maxSeen = dm.MaxSeen
		}
	}
	if p.dist > p.maxSeen {
		p.maxSeen = p.dist
	}
}

// UpperBoundResult reports an upper-bound counting run.
type UpperBoundResult struct {
	// Bound is the computed upper bound on |V|.
	Bound int
	// Depth is the largest distance the leader learned about.
	Depth int
	// Rounds is the number of rounds executed.
	Rounds int
}

// UpperBoundCount runs distance propagation for the given number of rounds
// and returns the leader's size upper bound. maxDegree must genuinely bound
// every node's degree over the executed rounds; this is validated and an
// error returned otherwise (the algorithm's soundness depends on it).
// rounds should be at least twice the network depth for the depth estimate
// to settle; on persistent-distance networks 2·h rounds always suffice.
func UpperBoundCount(net dynet.Dynamic, leader graph.NodeID, maxDegree, rounds int, run Runner) (UpperBoundResult, error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return UpperBoundResult{}, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if maxDegree < 1 {
		return UpperBoundResult{}, fmt.Errorf("counting: max degree must be >= 1, got %d", maxDegree)
	}
	if rounds < 1 {
		return UpperBoundResult{}, fmt.Errorf("counting: rounds must be >= 1, got %d", rounds)
	}
	for r := 0; r < rounds; r++ {
		g := net.Snapshot(r)
		for v := 0; v < n; v++ {
			if deg := g.Degree(graph.NodeID(v)); deg > maxDegree {
				return UpperBoundResult{}, fmt.Errorf("counting: node %d has degree %d > claimed bound %d at round %d",
					v, deg, maxDegree, r)
			}
		}
	}
	procs := make([]runtime.Process, n)
	var lp *distProc
	for i := range procs {
		p := newDistProc(graph.NodeID(i) == leader)
		if graph.NodeID(i) == leader {
			lp = p
		}
		procs[i] = p
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canon,
		MaxRounds: rounds,
	}
	executed, err := run(cfg)
	if err != nil {
		return UpperBoundResult{}, err
	}
	depth := lp.maxSeen
	const maxInt = int(^uint(0) >> 1)
	bound := 1
	term := 1
	for i := 0; i < depth; i++ {
		if term > maxInt/maxDegree || bound > maxInt-term*maxDegree {
			// Geometric-sum overflow for deep networks with large d.
			return UpperBoundResult{}, fmt.Errorf("counting: upper bound overflows int at depth %d", i+1)
		}
		term *= maxDegree
		bound += term
	}
	return UpperBoundResult{Bound: bound, Depth: depth, Rounds: executed}, nil
}
