package counting_test

import (
	"fmt"

	"anondyn/internal/counting"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// At persistent distance 1 (a star), the leader counts in one round.
func ExampleStarCount() {
	star, err := graph.Star(6, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	count, rounds, err := counting.StarCount(dynet.NewStatic(star), 0, runtime.RunSequential)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(count, rounds)
	// Output: 6 1
}

// With unique IDs, the growth rule terminates within the dynamic-diameter
// order: the first round with no new ID proves the set complete.
func ExampleIDCount() {
	count, rounds, err := counting.IDCount(dynet.NewStatic(graph.Path(5)), 0, 20, runtime.RunSequential)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(count, rounds)
	// Output: 5 5
}
