// Package counting implements counting algorithms for anonymous dynamic
// networks, as message-passing processes on the runtime engine:
//
//   - StarCount: exact one-round counting on 𝒢(PD)₁ star networks — the
//     paper's observation that at persistent distance 1 anonymity is free.
//   - OracleCount: the Discussion's O(1)-round exact algorithm for
//     restricted 𝒢(PD)₂ networks whose nodes have a local degree oracle
//     (the model of [13]): V₂ nodes send 1/|N(v,r)| of a unit mass, V₁
//     relays aggregate, the leader sums exactly with rational arithmetic.
//   - PushSumEstimate: the gossip-style approximate size estimation of
//     Kempe et al. [8] under fair adversaries, as a baseline illustrating
//     what weaker adversaries permit.
//
// The exact counter matching the paper's lower bound lives in
// internal/core (CountOnMultigraph); this package holds the comparators.
package counting

import (
	"fmt"
	"math/big"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// Runner is an execution engine: runtime.RunSequential or
// runtime.RunConcurrent.
type Runner func(*runtime.Config) (int, error)

// canon canonicalizes this package's message types for deterministic
// delivery order.
func canon(m runtime.Message) string {
	switch v := m.(type) {
	case nil:
		return ""
	case string:
		return "s:" + v
	case *big.Rat:
		return "r:" + v.RatString()
	case float64:
		return fmt.Sprintf("f:%g", v)
	case [2]float64:
		return fmt.Sprintf("p:%g,%g", v[0], v[1])
	case distMsg:
		return fmt.Sprintf("d:%d,%d", v.Dist, v.MaxSeen)
	case incMsg:
		return fmt.Sprintf("n:%g,%d", v.Share, v.AlarmK)
	default:
		return runtime.DefaultCanon(m)
	}
}

// helloProc broadcasts a constant beacon every round; used by leaf nodes of
// the star counter.
type helloProc struct{}

func (helloProc) Send(int) runtime.Message       { return "hello" }
func (helloProc) Receive(int, []runtime.Message) {}

// starLeader counts the beacons it hears in the first round. On a star
// (𝒢(PD)₁) every non-leader node is a neighbor, so the inbox size is
// |V| - 1 immediately: counting at persistent distance 1 costs one round,
// independent of anonymity.
type starLeader struct {
	count int
	done  bool
}

func (l *starLeader) Send(int) runtime.Message { return "hello" }

func (l *starLeader) Receive(r int, msgs []runtime.Message) {
	if r == 0 {
		l.count = len(msgs) + 1 // neighbors plus the leader itself
		l.done = true
	}
}

func (l *starLeader) Output() (int, bool) { return l.count, l.done }

// StarCount runs the one-round star counting protocol: the leader counts
// its round-0 inbox. The network must keep the leader connected to every
// other node at round 0 (any 𝒢(PD)₁ network qualifies; the adversary cannot
// alter a star without disconnecting it). Returns the total node count
// |V| and the number of rounds used.
func StarCount(net dynet.Dynamic, leader graph.NodeID, run Runner) (count, rounds int, err error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return 0, 0, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if deg := net.Snapshot(0).Degree(leader); deg != n-1 {
		return 0, 0, fmt.Errorf("counting: leader degree %d at round 0; star counting needs %d", deg, n-1)
	}
	procs := make([]runtime.Process, n)
	for i := range procs {
		if graph.NodeID(i) == leader {
			procs[i] = &starLeader{}
		} else {
			procs[i] = helloProc{}
		}
	}
	cfg := &runtime.Config{Net: net, Procs: procs, Canon: canon, MaxRounds: 2}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("counting: star leader did not terminate")
	}
	return value, rounds, nil
}
