package counting

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// IDCount is the non-anonymous comparison point from the paper's
// conclusion: in dynamic networks WITH unique identifiers and unlimited
// bandwidth, counting costs the same order as the dynamic diameter [9].
//
// Protocol: every node floods the set of IDs it has heard. In a 1-interval
// connected network the leader's known-ID set grows by at least one node
// per round until complete (the standard causal-influence argument: each
// round some edge crosses the cut between reached and unreached nodes), so
// the FIRST round in which the leader's set does not grow proves the set
// complete, and the leader outputs its size. Termination is thus at most
// one round past the flood time — no Ω(log n) anonymity surcharge.
//
// The contrast with core.WorstCaseCountRounds on the same topologies is
// the measured cost of anonymity.

// idSetMsg carries a sorted set of node IDs.
type idSetMsg []int

func encodeIDs(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// idProc floods its known-ID set.
type idProc struct {
	id    int
	known map[int]struct{}
}

func newIDProc(id int) *idProc {
	return &idProc{id: id, known: map[int]struct{}{id: {}}}
}

func (p *idProc) sorted() []int {
	out := make([]int, 0, len(p.known))
	for id := range p.known {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (p *idProc) Send(int) runtime.Message { return idSetMsg(p.sorted()) }

func (p *idProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if ids, ok := m.(idSetMsg); ok {
			for _, id := range ids {
				p.known[id] = struct{}{}
			}
		}
	}
}

// idLeader additionally watches for the first non-growing round.
type idLeader struct {
	idProc
	count int
	done  bool
}

func (l *idLeader) Receive(r int, msgs []runtime.Message) {
	if l.done {
		return
	}
	before := len(l.known)
	l.idProc.Receive(r, msgs)
	if len(l.known) == before {
		// No growth: by 1-interval connectivity the set is complete.
		l.count = len(l.known)
		l.done = true
	}
}

func (l *idLeader) Output() (int, bool) { return l.count, l.done }

// IDCount runs the ID-flooding counter and returns the exact node count
// and the rounds used. The network must be 1-interval connected over the
// execution (validated); the result is exact under that assumption.
func IDCount(net dynet.Dynamic, leader graph.NodeID, maxRounds int, run Runner) (count, rounds int, err error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return 0, 0, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if maxRounds < 1 {
		return 0, 0, fmt.Errorf("counting: maxRounds must be >= 1, got %d", maxRounds)
	}
	if err := dynet.VerifyIntervalConnectivity(net, maxRounds); err != nil {
		return 0, 0, fmt.Errorf("counting: ID counting requires 1-interval connectivity: %w", err)
	}
	procs := make([]runtime.Process, n)
	var lp *idLeader
	for i := range procs {
		if graph.NodeID(i) == leader {
			lp = &idLeader{idProc: *newIDProc(i)}
			procs[i] = lp
		} else {
			procs[i] = newIDProc(i)
		}
	}
	cfg := &runtime.Config{
		Net:   net,
		Procs: procs,
		Canon: func(m runtime.Message) string {
			if ids, ok := m.(idSetMsg); ok {
				return "i:" + encodeIDs(ids)
			}
			return canon(m)
		},
		MaxRounds: maxRounds,
	}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("counting: ID counter did not terminate within %d rounds", maxRounds)
	}
	return value, rounds, nil
}
