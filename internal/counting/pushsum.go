package counting

import (
	"fmt"
	"math"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// PushSum is the gossip-based size estimator in the style of Kempe, Dobra
// and Gehrke [8], adapted to the anonymous broadcast model with a degree
// oracle. Every node starts with value 1; the leader additionally starts
// with weight 1. Each round a node splits its (value, weight) mass into
// |N(v,r)|+1 equal shares, keeps one, and broadcasts one to each neighbor.
// Mass is conserved, so every node's value/weight ratio converges to
// Σvalues / Σweights = |V| under fair adversaries that keep the network
// well-mixed. Under the worst-case adversary convergence can be delayed
// arbitrarily — which is exactly why the paper's exact bound matters.
type pushSumProc struct {
	value, weight float64
	degree        int
}

func (p *pushSumProc) SetDegree(r, d int) { p.degree = d }

func (p *pushSumProc) Send(int) runtime.Message {
	shares := float64(p.degree + 1)
	out := [2]float64{p.value / shares, p.weight / shares}
	p.value /= shares
	p.weight /= shares
	return out
}

func (p *pushSumProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if pair, ok := m.([2]float64); ok {
			p.value += pair[0]
			p.weight += pair[1]
		}
	}
}

// estimate returns the node's current size estimate, or NaN with no weight.
func (p *pushSumProc) estimate() float64 {
	if p.weight <= 0 {
		return math.NaN()
	}
	return p.value / p.weight
}

// PushSumResult reports a push-sum run.
type PushSumResult struct {
	// Estimate is the leader's final size estimate.
	Estimate float64
	// Rounds is the number of rounds executed until stabilization (or the
	// round limit).
	Rounds int
	// Converged is true when the stopping rule (stable within tolerance
	// for `patience` consecutive rounds) fired before the round limit.
	Converged bool
}

// PushSumEstimate runs push-sum until the leader's estimate changes by less
// than tol for patience consecutive rounds, or maxRounds elapse.
func PushSumEstimate(net dynet.Dynamic, leader graph.NodeID, tol float64, patience, maxRounds int, run Runner) (PushSumResult, error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return PushSumResult{}, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if tol <= 0 || patience < 1 || maxRounds < 1 {
		return PushSumResult{}, fmt.Errorf("counting: bad parameters tol=%v patience=%d maxRounds=%d", tol, patience, maxRounds)
	}
	procs := make([]runtime.Process, n)
	var lp *pushSumProc
	for i := range procs {
		p := &pushSumProc{value: 1}
		if graph.NodeID(i) == leader {
			p.weight = 1
			lp = p
		}
		procs[i] = p
	}
	prev := math.NaN()
	stable := 0
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canon,
		MaxRounds: maxRounds,
		Stop: func(int) bool {
			est := lp.estimate()
			if !math.IsNaN(prev) && !math.IsNaN(est) && math.Abs(est-prev) < tol {
				stable++
			} else {
				stable = 0
			}
			prev = est
			return stable >= patience
		},
	}
	rounds, err := run(cfg)
	if err != nil {
		return PushSumResult{}, err
	}
	return PushSumResult{
		Estimate:  lp.estimate(),
		Rounds:    rounds,
		Converged: stable >= patience,
	}, nil
}
