package counting

import (
	"context"
	"fmt"
	"math"
	"sort"

	"anondyn/internal/chainnet"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/histtree"
	"anondyn/internal/multigraph"
	"anondyn/internal/runtime"
)

// This file is the counting-algorithm zoo: a registry unifying every
// counting protocol in the repository — the paper's own leader-state
// counter and its follow-up literature — behind one name → (constructor,
// termination semantics, model requirements) mapping, so cmd/anondyn,
// sweep campaigns, and check oracles can enumerate and run all of them on
// any dynet adversary whose model assumptions hold.

// Semantics classifies what an algorithm's output promises.
type Semantics string

const (
	// SemExact: the output equals |V| whenever the requirements hold.
	SemExact Semantics = "exact"
	// SemUpperBound: the output is an upper bound on |V|.
	SemUpperBound Semantics = "upper-bound"
	// SemEstimate: the output converges to |V| but carries no hard
	// guarantee (gossip-style estimation).
	SemEstimate Semantics = "estimate"
)

// Requirements states the model assumptions an algorithm needs. Validate
// rejects instances that do not carry them, with an error naming the
// missing assumption — the satellite contract for cmd/anondyn's
// algorithm/adversary matching.
type Requirements struct {
	// IntervalConnected: every round's snapshot must be connected
	// (1-interval connectivity). Algorithms verify this over the actual
	// execution themselves; it is recorded here for -help output.
	IntervalConnected bool
	// RestrictedPD2: the instance must carry a restricted 𝒢(PD)₂ layer
	// layout (V₁ relays, V₂ outer nodes).
	RestrictedPD2 bool
	// DegreeOracle: processes learn their degree before sending (the
	// model of [13]; incompatible with adaptive adversaries).
	DegreeOracle bool
	// DegreeBound: the instance must carry an a-priori bound on node
	// degrees (MaxDegree).
	DegreeBound bool
	// Star: the leader must be adjacent to every node at round 0.
	Star bool
	// Fair: the adversary must be fair/randomized, not worst-case —
	// required by convergence-based estimators.
	Fair bool
	// Multigraph: the instance must carry the underlying ℳ(DBL)₂
	// multigraph schedule (abstract leader-view algorithms).
	Multigraph bool
}

// Validate reports nil when inst satisfies the requirements, else an error
// naming the first violated assumption.
func (rq Requirements) Validate(inst *Instance) error {
	if inst == nil {
		return fmt.Errorf("counting: nil instance")
	}
	if inst.Net == nil && !rq.Multigraph {
		return fmt.Errorf("counting: instance %q carries no dynamic network", inst.Name)
	}
	if rq.IntervalConnected && inst.Props != nil {
		// Declared adversary-family properties are authoritative: a family
		// that does not guarantee connected snapshots — or that guarantees
		// it only on the live-induced subgraph, leaving churned-out nodes
		// isolated — cannot serve a 1-interval-connected algorithm.
		if !inst.Props.IntervalConnected {
			return fmt.Errorf("counting: algorithm needs 1-interval connectivity, which instance %q's adversary family does not declare", inst.Name)
		}
		if inst.Props.LiveAccounting {
			return fmt.Errorf("counting: algorithm needs every snapshot connected, but instance %q's join/leave adversary isolates churned-out nodes", inst.Name)
		}
	}
	if rq.Multigraph && inst.M == nil {
		return fmt.Errorf("counting: algorithm needs the ℳ(DBL)₂ multigraph schedule, which instance %q does not carry", inst.Name)
	}
	if rq.RestrictedPD2 && (len(inst.V1) == 0 || len(inst.V2) == 0) {
		return fmt.Errorf("counting: algorithm needs a restricted 𝒢(PD)₂ layer layout (V₁/V₂), which instance %q does not carry", inst.Name)
	}
	if rq.DegreeBound && inst.MaxDegree <= 0 {
		return fmt.Errorf("counting: algorithm needs an a-priori degree bound, which instance %q does not carry", inst.Name)
	}
	if rq.Star && inst.Net != nil {
		if deg := inst.Net.Snapshot(0).Degree(inst.Leader); deg != inst.Net.N()-1 {
			return fmt.Errorf("counting: algorithm needs the leader adjacent to all %d nodes at round 0, but instance %q gives it degree %d",
				inst.Net.N()-1, inst.Name, deg)
		}
	}
	if rq.Fair && !inst.Fair {
		return fmt.Errorf("counting: algorithm needs a fair (randomized) adversary, but instance %q is worst-case", inst.Name)
	}
	return nil
}

// Instance is one runnable counting scenario: an adversary plus the
// side information the various model extensions consume. Builders for the
// standard families live in instances.go.
type Instance struct {
	// Name identifies the adversary family in error messages and tables.
	Name string
	// Net is the dynamic network; nil only for purely abstract instances.
	Net dynet.Dynamic
	// Leader is the distinguished counting node.
	Leader graph.NodeID
	// V1, V2 are the restricted-PD₂ layers when the family provides them.
	V1, V2 []graph.NodeID
	// M is the underlying ℳ(DBL)₂ schedule when the family provides it.
	M *multigraph.Multigraph
	// MaxDegree is an a-priori degree bound when the family provides one.
	MaxDegree int
	// Horizon is the round budget offered to the algorithms.
	Horizon int
	// TrueN is the ground-truth node count, for drivers and tables — it
	// is never handed to an algorithm.
	TrueN int
	// Fair marks randomized (non-worst-case) adversaries.
	Fair bool
	// Props, when non-nil, are the declared (and conformance-verified)
	// dynet adversary-family properties of Net; Validate enforces
	// connectivity requirements against them.
	Props *dynet.Properties
}

// Result is an algorithm's outcome on an instance. Count is always in
// units of total network size |V|, whatever the protocol's native output.
type Result struct {
	Count  int
	Rounds int
}

// Algorithm is one registry entry.
type Algorithm struct {
	// Name selects the algorithm in cmd/anondyn and sweep specs.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Semantics classifies the output promise.
	Semantics Semantics
	// Requires are the model assumptions, checked before Run.
	Requires Requirements
	// Run executes the algorithm on the instance with the given engine.
	Run func(inst *Instance, run Runner) (Result, error)
}

// Registry returns every counting algorithm in deterministic order.
func Registry() []Algorithm {
	return []Algorithm{
		{
			Name:      "histtree",
			Doc:       "history-tree exact counter, O(n) rounds on any 1-interval-connected network (arXiv:2204.02128)",
			Semantics: SemExact,
			Requires:  Requirements{IntervalConnected: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				c, r, err := histtree.Count(inst.Net, inst.Leader, inst.Horizon, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "idcount",
			Doc:       "non-anonymous ID-flooding counter, the unique-identifier baseline [9]",
			Semantics: SemExact,
			Requires:  Requirements{IntervalConnected: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				c, r, err := IDCount(inst.Net, inst.Leader, inst.Horizon, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "incremental",
			Doc:       "guess-and-verify incremental counter, polynomial rounds (arXiv:1603.05459)",
			Semantics: SemExact,
			Requires:  Requirements{IntervalConnected: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				// The guess schedule is polynomial, so the budget must be
				// too: extend the instance budget to cover guesses up to
				// 3·|V| (budget sizing only — the protocol never sees n).
				budget := inst.Horizon
				if b := IncrementalRounds(3 * inst.Net.N()); b > budget {
					budget = b
				}
				c, r, err := IncrementalCount(inst.Net, inst.Leader, budget, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "leaderstate",
			Doc:       "the paper's optimal leader-state exact counter on the ℳ(DBL)₂ schedule, ⌊log₃(2|W|+1)⌋+1 rounds",
			Semantics: SemExact,
			Requires:  Requirements{Multigraph: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				// Message-level execution via the chain network with zero
				// delay; the native count is |W|, reported as |V| = |W|+k+1.
				nw, err := chainnet.BuildFromSchedule(inst.M, 0)
				if err != nil {
					return Result{}, err
				}
				res, err := chainnet.RunCount(nw, inst.Horizon, run)
				if err != nil {
					return Result{}, err
				}
				return Result{Count: res.Count + inst.M.K() + 1, Rounds: res.Rounds}, nil
			},
		},
		{
			Name:      "upperbound",
			Doc:       "degree-bound geometric-sum upper bound [15], constant rounds, over-counts",
			Semantics: SemUpperBound,
			Requires:  Requirements{DegreeBound: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				depth := 8
				if inst.Horizon < depth {
					depth = inst.Horizon
				}
				res, err := UpperBoundCount(inst.Net, inst.Leader, inst.MaxDegree, depth, run)
				if err != nil {
					return Result{}, err
				}
				return Result{Count: res.Bound, Rounds: res.Rounds}, nil
			},
		},
		{
			Name:      "oracle",
			Doc:       "degree-oracle O(1) exact counter on restricted 𝒢(PD)₂ (the paper's Discussion)",
			Semantics: SemExact,
			Requires:  Requirements{RestrictedPD2: true, DegreeOracle: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				c, r, err := OracleCount(inst.Net, inst.Leader, inst.V1, inst.V2, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "degreeoracle",
			Doc:       "role-discovering degree-oracle O(1) exact counter, 4 rounds with no layout side-channel",
			Semantics: SemExact,
			Requires:  Requirements{RestrictedPD2: true, DegreeOracle: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				c, r, err := DegreeOracleCount(inst.Net, inst.Leader, inst.V1, inst.V2, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "star",
			Doc:       "one-round exact counter on 𝒢(PD)₁ stars — anonymity is free at distance 1",
			Semantics: SemExact,
			Requires:  Requirements{Star: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				c, r, err := StarCount(inst.Net, inst.Leader, run)
				return Result{Count: c, Rounds: r}, err
			},
		},
		{
			Name:      "pushsum",
			Doc:       "push-sum gossip size estimation under fair adversaries (Kempe et al. [8])",
			Semantics: SemEstimate,
			Requires:  Requirements{Fair: true},
			Run: func(inst *Instance, run Runner) (Result, error) {
				res, err := PushSumEstimate(inst.Net, inst.Leader, 1e-6, 3, inst.Horizon, run)
				if err != nil {
					return Result{}, err
				}
				return Result{Count: int(math.Round(res.Estimate)), Rounds: res.Rounds}, nil
			},
		},
	}
}

// Names returns the sorted registry names.
func Names() []string {
	algos := Registry()
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// Lookup resolves one algorithm by name.
func Lookup(name string) (*Algorithm, error) {
	for _, a := range Registry() {
		if a.Name == name {
			a := a
			return &a, nil
		}
	}
	return nil, fmt.Errorf("counting: unknown algorithm %q (have %v)", name, Names())
}

// RunAlgorithm validates inst against the algorithm's requirements and
// executes it — the single entry point used by cmd/anondyn and the zoo
// sweep campaign.
func RunAlgorithm(name string, inst *Instance, run Runner) (Result, error) {
	a, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	if err := a.Requires.Validate(inst); err != nil {
		return Result{}, fmt.Errorf("%w (algorithm %q)", err, name)
	}
	return a.Run(inst, run)
}

// EngineByName resolves the shared -engine flag value to a Runner bound to
// ctx: "" or "sequential", "concurrent", or "sharded".
func EngineByName(ctx context.Context, name string) (Runner, error) {
	switch name {
	case "", "sequential":
		return Runner(runtime.SequentialEngine(ctx)), nil
	case "concurrent":
		return Runner(runtime.ConcurrentEngine(ctx)), nil
	case "sharded":
		return Runner(runtime.ShardedEngine(ctx)), nil
	default:
		return nil, fmt.Errorf("counting: unknown engine %q (want sequential, concurrent, or sharded)", name)
	}
}
