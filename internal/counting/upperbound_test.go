package counting

import (
	"math/rand"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func TestUpperBoundStar(t *testing.T) {
	// Star with leader at the center: depth 1, degree bound n-1, so the
	// bound 1 + (n-1) is exact.
	for _, n := range []int{2, 5, 12} {
		star, err := graph.Star(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := UpperBoundCount(dynet.NewStatic(star), 0, n-1, 4, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if res.Depth != 1 {
			t.Fatalf("n=%d: depth = %d, want 1", n, res.Depth)
		}
		if res.Bound != n {
			t.Fatalf("n=%d: bound = %d, want exactly %d", n, res.Bound, n)
		}
	}
}

func TestUpperBoundPath(t *testing.T) {
	// Path with leader at one end: depth n-1, degree bound 2, bound
	// 1 + 2 + 4 + ... = 2^n - 1 >= n but far from tight — the looseness
	// [15]-style bounds pay.
	const n = 5
	res, err := UpperBoundCount(dynet.NewStatic(graph.Path(n)), 0, 2, 2*n, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != n-1 {
		t.Fatalf("depth = %d, want %d", res.Depth, n-1)
	}
	if res.Bound < n {
		t.Fatalf("bound %d below true size %d", res.Bound, n)
	}
	if res.Bound != 31 { // 1+2+4+8+16
		t.Fatalf("bound = %d, want 31", res.Bound)
	}
}

func TestUpperBoundSoundOnRandomStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(15) + 2
		g := graph.RandomConnected(n, 0.3, rng)
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := g.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
		res, err := UpperBoundCount(dynet.NewStatic(g), 0, maxDeg, 3*n, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bound < n {
			t.Fatalf("trial %d: UNSOUND bound %d < n=%d (depth %d, maxDeg %d)",
				trial, res.Bound, n, res.Depth, maxDeg)
		}
	}
}

func TestUpperBoundEnginesAgree(t *testing.T) {
	g := graph.Path(6)
	a, err := UpperBoundCount(dynet.NewStatic(g), 2, 2, 12, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UpperBoundCount(dynet.NewStatic(g), 2, 2, 12, runtime.RunConcurrent)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("engines disagree: %+v vs %+v", a, b)
	}
}

func TestUpperBoundValidation(t *testing.T) {
	g := dynet.NewStatic(graph.Complete(4))
	if _, err := UpperBoundCount(g, 9, 3, 5, runtime.RunSequential); err == nil {
		t.Fatal("bad leader should error")
	}
	if _, err := UpperBoundCount(g, 0, 0, 5, runtime.RunSequential); err == nil {
		t.Fatal("degree bound 0 should error")
	}
	if _, err := UpperBoundCount(g, 0, 3, 0, runtime.RunSequential); err == nil {
		t.Fatal("rounds 0 should error")
	}
	// A lying degree bound is rejected: K4 has degree 3, claim 2.
	if _, err := UpperBoundCount(g, 0, 2, 5, runtime.RunSequential); err == nil {
		t.Fatal("violated degree bound should error")
	}
}

func TestUpperBoundOverflow(t *testing.T) {
	// Deep path with a huge claimed degree bound overflows the geometric
	// sum and must error rather than return garbage.
	n := 64
	if _, err := UpperBoundCount(dynet.NewStatic(graph.Path(n)), 0, 1<<20, 2*n, runtime.RunSequential); err == nil {
		t.Fatal("overflow should error")
	}
}

func TestUpperBoundVsExactCounterLooseness(t *testing.T) {
	// On a restricted PD2 network the depth is 2, so the [15]-style bound
	// is 1 + d + d²; the exact leader-state counter gets the true size.
	// This quantifies the baseline's looseness.
	net, _, v2 := restrictedPD2(2, 20, 1)
	maxDeg := 0
	for r := 0; r < 10; r++ {
		g := net.Snapshot(r)
		for v := 0; v < net.N(); v++ {
			if d := g.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
	}
	res, err := UpperBoundCount(net, 0, maxDeg, 10, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	truth := 1 + 2 + len(v2)
	if res.Bound < truth {
		t.Fatalf("unsound: bound %d < %d", res.Bound, truth)
	}
	if res.Bound == truth {
		t.Fatalf("upper bound should be loose here, got exact %d", res.Bound)
	}
}
