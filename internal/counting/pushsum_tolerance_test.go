package counting

import (
	"math"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/runtime"
)

// The convergence tolerance is push-sum's only knob: the estimator has no
// termination proof, just "stop when the estimate moves less than tol for
// patience rounds". These tests pin the knob's contract on fair
// adversaries — the one model where the estimator's requirements hold.

// A tighter tolerance must buy accuracy: on fair churn the loose run may
// stop early, but the tight run's final estimate has to land within a
// fraction of a node of the truth, and it can never use fewer rounds than
// the loose run on the same adversary.
func TestPushSumToleranceControlsAccuracy(t *testing.T) {
	const n = 12
	for seed := int64(1); seed <= 4; seed++ {
		loose, err := dynet.NewRandomChurn(n, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		tight, err := dynet.NewRandomChurn(n, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		resLoose, err := PushSumEstimate(loose, 0, 1e-2, 3, 5000, runtime.RunSequential)
		if err != nil {
			t.Fatalf("seed=%d loose: %v", seed, err)
		}
		resTight, err := PushSumEstimate(tight, 0, 1e-8, 3, 5000, runtime.RunSequential)
		if err != nil {
			t.Fatalf("seed=%d tight: %v", seed, err)
		}
		if !resLoose.Converged || !resTight.Converged {
			t.Fatalf("seed=%d: converged loose=%v tight=%v", seed, resLoose.Converged, resTight.Converged)
		}
		if resTight.Rounds < resLoose.Rounds {
			t.Fatalf("seed=%d: tight tolerance stopped after %d rounds, loose after %d",
				seed, resTight.Rounds, resLoose.Rounds)
		}
		if err := math.Abs(resTight.Estimate - n); err > 0.25 {
			t.Fatalf("seed=%d: tight estimate %.4f off the truth %d by %.4f",
				seed, resTight.Estimate, n, err)
		}
	}
}

// At a fixed tolerance the estimate must stabilize on the truth across
// independent fair adversaries: fairness, not the specific churn draw, is
// what the convergence rests on.
func TestPushSumToleranceAcrossFairSeeds(t *testing.T) {
	const n = 9
	for seed := int64(1); seed <= 6; seed++ {
		net, err := dynet.NewRandomChurn(n, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PushSumEstimate(net, 0, 1e-6, 3, 5000, runtime.RunSequential)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed=%d: did not converge in %d rounds", seed, res.Rounds)
		}
		if got := math.Round(res.Estimate); got != n {
			t.Fatalf("seed=%d: estimate %.4f rounds to %g, want %d", seed, res.Estimate, got, n)
		}
	}
}

// Patience guards against premature stops: a single quiet round must not
// end the run when a longer patience window would keep refining. The
// patience-5 run can never stop before the patience-1 run.
func TestPushSumPatienceDelaysStop(t *testing.T) {
	const n = 10
	for seed := int64(1); seed <= 3; seed++ {
		a, err := dynet.NewRandomChurn(n, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dynet.NewRandomChurn(n, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		hasty, err := PushSumEstimate(a, 0, 1e-4, 1, 5000, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		careful, err := PushSumEstimate(b, 0, 1e-4, 5, 5000, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if careful.Rounds < hasty.Rounds {
			t.Fatalf("seed=%d: patience 5 stopped after %d rounds, patience 1 after %d",
				seed, careful.Rounds, hasty.Rounds)
		}
	}
}
