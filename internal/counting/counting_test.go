package counting

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func engines() map[string]Runner {
	return map[string]Runner{
		"sequential": runtime.RunSequential,
		"concurrent": runtime.RunConcurrent,
	}
}

func TestStarCountExactOneRound(t *testing.T) {
	for name, run := range engines() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{2, 3, 10, 25} {
				star, err := graph.Star(n, 0)
				if err != nil {
					t.Fatal(err)
				}
				count, rounds, err := StarCount(dynet.NewStatic(star), 0, run)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if count != n {
					t.Fatalf("n=%d: counted %d", n, count)
				}
				if rounds != 1 {
					t.Fatalf("n=%d: %d rounds, want 1 (PD_1 counting is free)", n, rounds)
				}
			}
		})
	}
}

func TestStarCountOffCenterLeader(t *testing.T) {
	star, err := graph.Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	count, rounds, err := StarCount(dynet.NewStatic(star), 2, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 || rounds != 1 {
		t.Fatalf("count=%d rounds=%d", count, rounds)
	}
}

func TestStarCountRejectsNonStar(t *testing.T) {
	// Leader not adjacent to everyone: the precondition fails.
	if _, _, err := StarCount(dynet.NewStatic(graph.Path(4)), 0, runtime.RunSequential); err == nil {
		t.Fatal("path network should be rejected")
	}
	if _, _, err := StarCount(dynet.NewStatic(graph.Path(4)), 9, runtime.RunSequential); err == nil {
		t.Fatal("bad leader should be rejected")
	}
}

// restrictedPD2 builds a restricted G(PD)_2 network: leader 0, relays 1..k,
// outer nodes attach to round-varying nonempty relay subsets.
func restrictedPD2(k, outer int, seed int64) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	n := 1 + k + outer
	v1 := make([]graph.NodeID, k)
	for i := range v1 {
		v1[i] = graph.NodeID(1 + i)
	}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			// Deterministic, round-varying relay subset: node i uses
			// relay (i+r) mod k, plus relay (i+r+1) mod k when i is odd.
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		_ = seed
		return g
	})
	return net, v1, v2
}

func TestOracleCountExactTwoRounds(t *testing.T) {
	for name, run := range engines() {
		t.Run(name, func(t *testing.T) {
			for _, outer := range []int{1, 2, 5, 12, 30} {
				net, v1, v2 := restrictedPD2(2, outer, 7)
				count, rounds, err := OracleCount(net, 0, v1, v2, run)
				if err != nil {
					t.Fatalf("outer=%d: %v", outer, err)
				}
				if want := 1 + 2 + outer; count != want {
					t.Fatalf("outer=%d: counted %d, want %d", outer, count, want)
				}
				if rounds != 2 {
					t.Fatalf("outer=%d: %d rounds, want 2 (O(1) with the oracle)", outer, rounds)
				}
			}
		})
	}
}

func TestOracleCountConstantRoundsAcrossSizes(t *testing.T) {
	// The whole point of the Discussion: rounds stay constant as |V| grows,
	// while the anonymous bound grows as log |V|.
	for _, outer := range []int{3, 30, 90} {
		net, v1, v2 := restrictedPD2(3, outer, 1)
		_, rounds, err := OracleCount(net, 0, v1, v2, runtime.RunSequential)
		if err != nil {
			t.Fatalf("outer=%d: %v", outer, err)
		}
		if rounds != 2 {
			t.Fatalf("outer=%d: rounds = %d", outer, rounds)
		}
	}
}

func TestOracleCountValidation(t *testing.T) {
	net, v1, v2 := restrictedPD2(2, 4, 3)
	if _, _, err := OracleCount(net, 0, v1, v2[:2], runtime.RunSequential); err == nil {
		t.Fatal("missing nodes should be rejected")
	}
	// Overlapping layers.
	if _, _, err := OracleCount(net, 0, v1, append([]graph.NodeID{v1[0]}, v2[:3]...), runtime.RunSequential); err == nil {
		t.Fatal("overlapping layers should be rejected")
	}
	// Unrestricted network: V2-V2 edge.
	bad := dynet.NewFunc(net.N(), func(r int) *graph.Graph {
		g := net.Snapshot(r).Clone()
		_ = g.AddEdge(v2[0], v2[1])
		return g
	})
	if _, _, err := OracleCount(bad, 0, v1, v2, runtime.RunSequential); err == nil {
		t.Fatal("V2-V2 edge should be rejected")
	}
	// Leader adjacent to an outer node.
	bad2 := dynet.NewFunc(net.N(), func(r int) *graph.Graph {
		g := net.Snapshot(r).Clone()
		_ = g.AddEdge(0, v2[0])
		return g
	})
	if _, _, err := OracleCount(bad2, 0, v1, v2, runtime.RunSequential); err == nil {
		t.Fatal("leader-V2 edge should be rejected")
	}
	// Isolated V2 node.
	bad3 := dynet.NewFunc(net.N(), func(r int) *graph.Graph {
		g := net.Snapshot(r).Clone()
		for _, u := range g.Neighbors(v2[0]) {
			_ = g.RemoveEdge(v2[0], u)
		}
		return g
	})
	if _, _, err := OracleCount(bad3, 0, v1, v2, runtime.RunSequential); err == nil {
		t.Fatal("isolated V2 node should be rejected")
	}
}

func TestOracleMassConservationExact(t *testing.T) {
	// big.Rat keeps the aggregation exact even with many odd degrees:
	// 1/3 + 1/3 + 1/3 must be exactly 1, not 0.9999....
	sum := new(big.Rat)
	third := big.NewRat(1, 3)
	for i := 0; i < 3; i++ {
		sum.Add(sum, third)
	}
	if !sum.IsInt() || sum.Num().Int64() != 1 {
		t.Fatalf("rational mass lost: %s", sum)
	}
}

func TestPushSumConvergesOnStatic(t *testing.T) {
	g := graph.Complete(8)
	res, err := PushSumEstimate(dynet.NewStatic(g), 0, 1e-9, 3, 500, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("push-sum did not converge: %+v", res)
	}
	if math.Abs(res.Estimate-8) > 0.01 {
		t.Fatalf("estimate = %v, want ~8", res.Estimate)
	}
}

func TestPushSumConvergesUnderChurn(t *testing.T) {
	net, err := dynet.NewRandomChurn(12, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PushSumEstimate(net, 0, 1e-6, 3, 2000, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("push-sum under churn did not converge: %+v", res)
	}
	if math.Abs(res.Estimate-12) > 0.5 {
		t.Fatalf("estimate = %v, want ~12", res.Estimate)
	}
}

func TestPushSumParamValidation(t *testing.T) {
	g := graph.Complete(3)
	net := dynet.NewStatic(g)
	if _, err := PushSumEstimate(net, 9, 1e-6, 3, 10, runtime.RunSequential); err == nil {
		t.Fatal("bad leader should error")
	}
	if _, err := PushSumEstimate(net, 0, 0, 3, 10, runtime.RunSequential); err == nil {
		t.Fatal("tol=0 should error")
	}
	if _, err := PushSumEstimate(net, 0, 1e-6, 0, 10, runtime.RunSequential); err == nil {
		t.Fatal("patience=0 should error")
	}
	if _, err := PushSumEstimate(net, 0, 1e-6, 1, 0, runtime.RunSequential); err == nil {
		t.Fatal("maxRounds=0 should error")
	}
}

func TestPushSumRoundLimit(t *testing.T) {
	// A two-node path with a huge tolerance demand and tiny round budget:
	// should return unconverged rather than error.
	res, err := PushSumEstimate(dynet.NewStatic(graph.Path(2)), 0, 1e-15, 5, 3, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge in 3 rounds at 1e-15")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestCanonCoversMessageTypes(t *testing.T) {
	cases := []struct {
		m    runtime.Message
		want string
	}{
		{nil, ""},
		{"x", "s:x"},
		{big.NewRat(1, 3), "r:1/3"},
		{2.5, "f:2.5"},
		{[2]float64{1, 2}, "p:1,2"},
	}
	for _, tc := range cases {
		if got := canon(tc.m); got != tc.want {
			t.Fatalf("canon(%v) = %q, want %q", tc.m, got, tc.want)
		}
	}
	// Unknown types fall back to the default canonicalizer.
	if canon(struct{ X int }{1}) == "" {
		t.Fatal("fallback canon empty")
	}
}

func TestOracleCountThreeRelays(t *testing.T) {
	// The oracle algorithm is label-agnostic: it works for any relay
	// count, here k=3.
	net, v1, v2 := restrictedPD2(3, 17, 5)
	count, rounds, err := OracleCount(net, 0, v1, v2, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1+3+17 || rounds != 2 {
		t.Fatalf("count=%d rounds=%d", count, rounds)
	}
}

// Property: the oracle counter is exact on random restricted PD2 shapes.
func TestOracleCountProperty(t *testing.T) {
	f := func(rawK, rawOuter uint8) bool {
		k := int(rawK%3) + 2
		outer := int(rawOuter%30) + 1
		net, v1, v2 := restrictedPD2(k, outer, 1)
		count, rounds, err := OracleCount(net, 0, v1, v2, runtime.RunSequential)
		if err != nil {
			return false
		}
		return count == 1+k+outer && rounds == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
