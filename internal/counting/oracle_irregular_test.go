package counting

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// irregularPD2 builds a restricted 𝒢(PD)₂ network whose V₂ degrees are
// deliberately uneven: node i attaches to 1 + (i mod k) relays, rotating
// with the round, so the same snapshot mixes degree-1, degree-2, …,
// degree-k outer nodes. The degree-oracle counter sums shares of 1/d with
// d varying per node and per round — exactly the arithmetic a float
// implementation (1/1 + 1/3 + …) would get wrong and the big.Rat path must
// get exact.
func irregularPD2(k, outer int) (dynet.Dynamic, []graph.NodeID, []graph.NodeID) {
	n := 1 + k + outer
	v1 := make([]graph.NodeID, k)
	for i := range v1 {
		v1[i] = graph.NodeID(1 + i)
	}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			deg := 1 + i%k
			for j := 0; j < deg; j++ {
				_ = g.AddEdge(v1[(i+r+j)%k], w)
			}
		}
		return g
	})
	return net, v1, v2
}

// OracleCount must stay exact when V₂ degrees are uneven within one round
// and change across rounds — the irregular layouts the restricted-PD₂
// definition permits, not just the symmetric rotating family.
func TestOracleCountIrregularDegrees(t *testing.T) {
	for name, run := range engines() {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{2, 3, 4} {
				for _, outer := range []int{1, 5, 11, 23} {
					net, v1, v2 := irregularPD2(k, outer)
					count, rounds, err := OracleCount(net, 0, v1, v2, run)
					if err != nil {
						t.Fatalf("k=%d outer=%d: %v", k, outer, err)
					}
					if want := 1 + k + outer; count != want {
						t.Fatalf("k=%d outer=%d: counted %d, want %d", k, outer, count, want)
					}
					if rounds != 2 {
						t.Fatalf("k=%d outer=%d: %d rounds, want 2", k, outer, rounds)
					}
				}
			}
		})
	}
}

// The extreme irregular case: one V₂ node adjacent to every relay, the
// rest to exactly one, all shifting every round. Shares of 1/k and 1/1
// must still sum to exactly |V₂|.
func TestOracleCountFullFanAndLeaves(t *testing.T) {
	const k, outer = 4, 9
	n := 1 + k + outer
	v1 := make([]graph.NodeID, k)
	for i := range v1 {
		v1[i] = graph.NodeID(1 + i)
	}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(n, func(r int) *graph.Graph {
		g := graph.New(n)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			if i == 0 {
				for _, rel := range v1 {
					_ = g.AddEdge(rel, w)
				}
				continue
			}
			_ = g.AddEdge(v1[(i+r)%k], w)
		}
		return g
	})
	count, rounds, err := OracleCount(net, 0, v1, v2, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + k + outer; count != want {
		t.Fatalf("counted %d, want %d", count, want)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
}
