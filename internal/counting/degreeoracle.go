package counting

import (
	"fmt"
	"math/big"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// The role-discovering degree-oracle counter: the paper's Discussion-section
// O(1) protocol without the layout side-channel. OracleCount (oracle.go)
// hands every process its layer up front and finishes in 2 rounds; here the
// only distinguished process is the leader — every other node runs the same
// anonymous code and learns its layer from the message flow, at the cost of
// two extra announcement rounds:
//
//	round 0: the leader broadcasts "L"; in restricted 𝒢(PD)₂ exactly the
//	         V₁ relays hear it. The leader records |V₁| = its own degree.
//	round 1: self-identified relays broadcast "R"; exactly the V₂ outer
//	         nodes (and the leader, which ignores it) hear it.
//	round 2: self-identified outer nodes broadcast their mass share
//	         1/|N(v,2)|, known via the degree oracle before sending.
//	round 3: relays broadcast the exact rational sum they collected; the
//	         leader adds them up — mass conservation gives Σ = |V₂| — and
//	         outputs 1 + |V₁| + |V₂|.
//
// Four rounds for any |V|: still O(1), so the paper's contrast with the
// Ω(log |V|) anonymous bound survives removing the layout oracle. Messages
// are strings ("L", "R", "m:<rat>", "s:<rat>") so the engines' canonical
// ordering applies unchanged.

// degOracleWorker is every non-leader node: an anonymous process that
// discovers whether it is a relay or an outer node from the announcements.
type degOracleWorker struct {
	relay, outer bool
	degree       int // latest oracle reading, consumed at round 2
	sum          *big.Rat
}

func (w *degOracleWorker) SetDegree(r, d int) { w.degree = d }

func (w *degOracleWorker) Send(r int) runtime.Message {
	switch {
	case r == 1 && w.relay:
		return "R"
	case r == 2 && w.outer:
		if w.degree <= 0 {
			// Disconnected at the mass round: contributes nothing (the
			// driver validates the network, so this is defensive).
			return nil
		}
		return "m:" + new(big.Rat).SetFrac64(1, int64(w.degree)).RatString()
	case r == 3 && w.relay:
		sum := w.sum
		if sum == nil {
			sum = new(big.Rat)
		}
		return "s:" + sum.RatString()
	}
	return nil
}

func (w *degOracleWorker) Receive(r int, msgs []runtime.Message) {
	switch r {
	case 0:
		for _, m := range msgs {
			if m == "L" {
				w.relay = true
			}
		}
	case 1:
		if w.relay {
			return
		}
		for _, m := range msgs {
			if m == "R" {
				w.outer = true
			}
		}
	case 2:
		if !w.relay {
			return
		}
		w.sum = new(big.Rat)
		for _, m := range msgs {
			if s, ok := m.(string); ok && len(s) > 2 && s[:2] == "m:" {
				q, ok := new(big.Rat).SetString(s[2:])
				if !ok {
					continue
				}
				w.sum.Add(w.sum, q)
			}
		}
	}
}

// degOracleLeader announces itself in round 0, learns |V₁| from its degree
// oracle, and sums the relay aggregates arriving in round 3.
type degOracleLeader struct {
	v1    int
	total *big.Rat
	done  bool
}

func (l *degOracleLeader) SetDegree(r, d int) {
	if r == 0 {
		l.v1 = d
	}
}

func (l *degOracleLeader) Send(r int) runtime.Message {
	if r == 0 {
		return "L"
	}
	return nil
}

func (l *degOracleLeader) Receive(r int, msgs []runtime.Message) {
	if r != 3 {
		return
	}
	l.total = new(big.Rat)
	for _, m := range msgs {
		if s, ok := m.(string); ok && len(s) > 2 && s[:2] == "s:" {
			q, ok := new(big.Rat).SetString(s[2:])
			if !ok {
				continue
			}
			l.total.Add(l.total, q)
		}
	}
	l.done = true
}

func (l *degOracleLeader) Output() (int, bool) {
	if !l.done || !l.total.IsInt() {
		// A fractional total means the network violated the restriction;
		// mass conservation guarantees integrality on valid instances.
		return 0, false
	}
	return 1 + l.v1 + int(l.total.Num().Int64()), true
}

// DegreeOracleCount runs the role-discovering degree-oracle counter on a
// restricted 𝒢(PD)₂ network. The layers v1/v2 are used only to validate the
// restriction over the protocol's four rounds — unlike OracleCount, no
// process is told its layer. Returns the exact |V| and rounds used (always
// 4).
func DegreeOracleCount(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID, run Runner) (count, rounds int, err error) {
	n := net.N()
	if 1+len(v1)+len(v2) != n {
		return 0, 0, fmt.Errorf("counting: layers cover %d nodes, network has %d", 1+len(v1)+len(v2), n)
	}
	role := make(map[graph.NodeID]int, n) // 0 leader, 1 relay, 2 outer
	role[leader] = 0
	for _, v := range v1 {
		role[v] = 1
	}
	for _, v := range v2 {
		role[v] = 2
	}
	if len(role) != n {
		return 0, 0, fmt.Errorf("counting: layers overlap or miss nodes")
	}
	for r := 0; r < 4; r++ {
		g := net.Snapshot(r)
		for _, v := range v2 {
			if g.Degree(v) == 0 {
				return 0, 0, fmt.Errorf("counting: V2 node %d isolated at round %d", v, r)
			}
			for _, u := range g.Neighbors(v) {
				if role[u] != 1 {
					return 0, 0, fmt.Errorf("counting: V2 node %d adjacent to non-relay %d at round %d (network not restricted)", v, u, r)
				}
			}
		}
		// The leader must touch every relay: round 0 tells each relay its
		// role, round 3 delivers each relay's aggregate back.
		if g.Degree(leader) != len(v1) {
			return 0, 0, fmt.Errorf("counting: leader has degree %d at round %d, want all %d relays", g.Degree(leader), r, len(v1))
		}
		for _, u := range g.Neighbors(leader) {
			if role[u] != 1 {
				return 0, 0, fmt.Errorf("counting: leader adjacent to non-relay %d at round %d", u, r)
			}
		}
	}
	procs := make([]runtime.Process, n)
	for i := 0; i < n; i++ {
		if graph.NodeID(i) == leader {
			procs[i] = &degOracleLeader{}
		} else {
			procs[i] = &degOracleWorker{}
		}
	}
	cfg := &runtime.Config{Net: net, Procs: procs, Canon: canon, MaxRounds: 6}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("counting: degree-oracle leader did not terminate")
	}
	return value, rounds, nil
}
