package counting

import (
	"context"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func TestIncrementalClockSchedule(t *testing.T) {
	c := newIncClock()
	// Guess 1: 12 drain rounds then 2 verdict rounds.
	for i := 0; i < 12; i++ {
		if k, drain, last := c.phase(); k != 1 || !drain || last {
			t.Fatalf("round %d: phase (%d, %v, %v)", i, k, drain, last)
		}
		c.tick()
	}
	if k, drain, last := c.phase(); k != 1 || drain || last {
		t.Fatalf("first verdict round: phase (%d, %v, %v)", k, drain, last)
	}
	c.tick()
	if k, drain, last := c.phase(); k != 1 || drain || !last {
		t.Fatalf("deciding round: phase (%d, %v, %v)", k, drain, last)
	}
	c.tick()
	if k, drain, _ := c.phase(); k != 2 || !drain {
		t.Fatalf("after guess 1: phase (%d, %v)", k, drain)
	}
	if got, want := IncrementalRounds(1), 14; got != want {
		t.Fatalf("IncrementalRounds(1) = %d, want %d", got, want)
	}
	if got, want := IncrementalRounds(3), 14+30+52; got != want {
		t.Fatalf("IncrementalRounds(3) = %d, want %d", got, want)
	}
}

func TestIncrementalCountExact(t *testing.T) {
	run := runtime.RunSequential
	t.Run("single", func(t *testing.T) {
		count, rounds, err := IncrementalCount(dynet.NewStatic(graph.New(1)), 0, 100, run)
		if err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Fatalf("count = %d, want 1", count)
		}
		if rounds != IncrementalRounds(1) {
			t.Fatalf("rounds = %d, want %d", rounds, IncrementalRounds(1))
		}
	})
	t.Run("complete", func(t *testing.T) {
		for n := 2; n <= 8; n++ {
			net := dynet.NewStatic(graph.Complete(n))
			count, rounds, err := IncrementalCount(net, 0, 4*IncrementalRounds(n), run)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if count != n {
				t.Fatalf("n=%d: count = %d", n, count)
			}
			if rounds > IncrementalRounds(2*n) {
				t.Fatalf("n=%d: rounds = %d above the polynomial budget %d",
					n, rounds, IncrementalRounds(2*n))
			}
		}
	})
	t.Run("star", func(t *testing.T) {
		for _, n := range []int{3, 6, 10} {
			g, err := graph.Star(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			count, _, err := IncrementalCount(dynet.NewStatic(g), 0, 8*IncrementalRounds(n), run)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if count != n {
				t.Fatalf("n=%d: count = %d", n, count)
			}
		}
	})
	t.Run("churn", func(t *testing.T) {
		for seed := int64(1); seed <= 3; seed++ {
			const n = 6
			net, err := dynet.NewRandomChurn(n, 0.4, seed)
			if err != nil {
				t.Fatal(err)
			}
			count, _, err := IncrementalCount(net, 0, 8*IncrementalRounds(2*n), run)
			if err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			if count != n {
				t.Fatalf("seed=%d: count = %d", seed, count)
			}
		}
	})
}

// The incremental counter's decisions depend only on sums of shares and
// maxima of alarm tags — both commutative — so every engine must produce
// the identical (count, rounds).
func TestIncrementalCountEngineIndependent(t *testing.T) {
	ctx := context.Background()
	engines := map[string]Runner{
		"sequential": runtime.SequentialEngine(ctx),
		"concurrent": runtime.ConcurrentEngine(ctx),
		"sharded":    runtime.ShardedEngine(ctx),
	}
	g, err := graph.Cycle(7)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct{ count, rounds int }
	var want outcome
	first := true
	for name, run := range engines {
		count, rounds, err := IncrementalCount(dynet.NewStatic(g), 0, 100000, run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := outcome{count, rounds}
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Fatalf("%s: %+v differs from %+v", name, got, want)
		}
	}
	if want.count != 7 {
		t.Fatalf("count = %d, want 7", want.count)
	}
}

func TestIncrementalCountErrors(t *testing.T) {
	run := runtime.RunSequential
	net := dynet.NewStatic(graph.Complete(3))
	if _, _, err := IncrementalCount(net, 5, 100, run); err == nil {
		t.Fatal("out-of-range leader accepted")
	}
	if _, _, err := IncrementalCount(net, 0, 0, run); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, _, err := IncrementalCount(dynet.NewStatic(graph.New(2)), 0, 20, run); err == nil {
		t.Fatal("disconnected network accepted")
	}
	if _, _, err := IncrementalCount(net, 0, 5, run); err == nil {
		t.Fatal("expected budget exhaustion before the first verdict")
	}
}
