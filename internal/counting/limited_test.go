package counting

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func TestLimitedIDCountCompletes(t *testing.T) {
	net := dynet.NewStatic(graph.Complete(10))
	res, err := LimitedIDCount(net, 0, 1, 200, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteAt == 0 {
		t.Fatalf("never completed: %+v", res)
	}
}

// leaderLeafStar builds a star centered at node 1 with the leader at leaf
// node 0: every other leaf's ID must funnel through the center, whose
// capped broadcast is the bottleneck — the [10]-style bandwidth effect at
// constant diameter 2.
func leaderLeafStar(t *testing.T, n int) dynet.Dynamic {
	t.Helper()
	star, err := graph.Star(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return dynet.NewStatic(star)
}

func TestLimitedBandwidthSlowerThanUnlimited(t *testing.T) {
	// At constant diameter, unlimited-bandwidth ID counting finishes in
	// O(D) rounds; with cap 1 the bottleneck center forwards one ID per
	// round and completion grows with n.
	for _, n := range []int{6, 12, 24} {
		net := leaderLeafStar(t, n)
		_, unlRounds, err := IDCount(net, 0, 50, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		lim, err := LimitedIDCount(net, 0, 1, 50*n, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if lim.CompleteAt == 0 {
			t.Fatalf("n=%d: limited run never completed", n)
		}
		if unlRounds > 3 {
			t.Fatalf("n=%d: unlimited took %d rounds at diameter 2", n, unlRounds)
		}
		if lim.CompleteAt <= unlRounds {
			t.Fatalf("n=%d: limited (%d) not slower than unlimited (%d)", n, lim.CompleteAt, unlRounds)
		}
	}
}

func TestLimitedBandwidthGrowsWithN(t *testing.T) {
	prev := 0
	for _, n := range []int{8, 16, 32} {
		res, err := LimitedIDCount(leaderLeafStar(t, n), 0, 1, 100*n, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if res.CompleteAt == 0 {
			t.Fatalf("n=%d never completed", n)
		}
		if res.CompleteAt <= prev {
			t.Fatalf("completion time did not grow: n=%d at %d (prev %d)", n, res.CompleteAt, prev)
		}
		prev = res.CompleteAt
	}
}

func TestLimitedIDCountWideCapMatchesUnlimited(t *testing.T) {
	// With a cap at least n the protocol degenerates to full flooding.
	const n = 8
	net := dynet.NewStatic(graph.Path(n))
	res, err := LimitedIDCount(net, 0, n, 50, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	// Completion equals the flood time (eccentricity of node 0 = n-1).
	if res.CompleteAt != n-1 {
		t.Fatalf("completion at %d, want %d", res.CompleteAt, n-1)
	}
}

func TestLimitedIDCountErrors(t *testing.T) {
	net := dynet.NewStatic(graph.Path(3))
	if _, err := LimitedIDCount(net, 9, 1, 10, runtime.RunSequential); err == nil {
		t.Fatal("bad leader should error")
	}
	if _, err := LimitedIDCount(net, 0, 0, 10, runtime.RunSequential); err == nil {
		t.Fatal("cap 0 should error")
	}
	if _, err := LimitedIDCount(net, 0, 1, 0, runtime.RunSequential); err == nil {
		t.Fatal("maxRounds 0 should error")
	}
}

func TestLimitedIDCountBudgetExpires(t *testing.T) {
	net := dynet.NewStatic(graph.Path(20))
	res, err := LimitedIDCount(net, 0, 1, 3, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompleteAt != 0 || res.Rounds != 3 {
		t.Fatalf("budget run = %+v", res)
	}
}
