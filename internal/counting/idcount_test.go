package counting

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func TestIDCountStatic(t *testing.T) {
	for _, tc := range []struct {
		name   string
		net    dynet.Dynamic
		n      int
		maxRds int
	}{
		{"path5", dynet.NewStatic(graph.Path(5)), 5, 20},
		{"complete8", dynet.NewStatic(graph.Complete(8)), 8, 20},
		{"single", dynet.NewStatic(graph.New(1)), 1, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			count, rounds, err := IDCount(tc.net, 0, tc.maxRds, runtime.RunSequential)
			if err != nil {
				t.Fatal(err)
			}
			if count != tc.n {
				t.Fatalf("counted %d, want %d", count, tc.n)
			}
			if rounds > tc.n+1 {
				t.Fatalf("rounds = %d, want <= n+1 = %d", rounds, tc.n+1)
			}
		})
	}
}

func TestIDCountTerminationIsFloodTimePlusOne(t *testing.T) {
	// On a static path with the leader at one end, the last ID arrives at
	// round eccentricity-1; the silent round is the next one, so the
	// counter uses eccentricity+1 rounds.
	net := dynet.NewStatic(graph.Path(6))
	_, rounds, err := IDCount(net, 0, 30, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 6 { // eccentricity 5, +1 silent round
		t.Fatalf("rounds = %d, want 6", rounds)
	}
}

func TestIDCountUnderChurn(t *testing.T) {
	net, err := dynet.NewRandomChurn(12, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	count, rounds, err := IDCount(net, 0, 40, runtime.RunConcurrent)
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Fatalf("counted %d, want 12", count)
	}
	if rounds > 13 {
		t.Fatalf("rounds = %d, want <= 13", rounds)
	}
}

func TestIDCountUnderFloodDelayingAdversary(t *testing.T) {
	// Even the maximally-delaying adversary cannot push ID counting past
	// n rounds: growth is guaranteed every round.
	const n = 10
	fd, err := dynet.NewFloodDelaying(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	count, rounds, err := IDCount(fd, 0, 5*n, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("counted %d, want %d", count, n)
	}
	if rounds > n {
		t.Fatalf("rounds = %d, want <= %d", rounds, n)
	}
}

func TestIDCountErrors(t *testing.T) {
	net := dynet.NewStatic(graph.Path(3))
	if _, _, err := IDCount(net, 9, 10, runtime.RunSequential); err == nil {
		t.Fatal("bad leader should error")
	}
	if _, _, err := IDCount(net, 0, 0, runtime.RunSequential); err == nil {
		t.Fatal("maxRounds 0 should error")
	}
	disc := dynet.NewStatic(graph.New(3))
	if _, _, err := IDCount(disc, 0, 10, runtime.RunSequential); err == nil {
		t.Fatal("disconnected network should be rejected")
	}
}

func TestIDCountEnginesAgree(t *testing.T) {
	net := dynet.NewStatic(graph.Path(5))
	ca, ra, err := IDCount(net, 2, 20, runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	cb, rb, err := IDCount(net, 2, 20, runtime.RunConcurrent)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb || ra != rb {
		t.Fatalf("engines disagree: (%d,%d) vs (%d,%d)", ca, ra, cb, rb)
	}
}
