package counting

import (
	"fmt"
	"math"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// IncrementalCount implements the guess-and-verify Incremental Counting
// scheme of Chakraborty, Milani and Mosteiro ("A Faster Exact-Counting
// Protocol for Anonymous Dynamic Networks", arXiv:1603.05459): the first
// counting algorithm for anonymous 1-interval-connected networks with
// polynomially many rounds, the practical midpoint between the paper's
// exponential leader-state counter and the linear history-tree algorithm.
//
// The leader drives candidate sizes k = 1, 2, 3, …. Each guess runs two
// deterministically scheduled subphases every process derives from the
// round number alone:
//
//   - drain, 3(k+1)² rounds: every non-leader holds a potential ρ
//     (initially 1) and each round broadcasts the share s = ρ/(k+1),
//     keeping ρ − d·s where d is its current degree; the leader absorbs
//     every share it hears into its mass m. Potential is conserved, so m
//     climbs toward n−1 exactly. A process whose degree ever exceeds k has
//     more neighbors than a size-(k+1) network allows, and a process whose
//     residual still exceeds 1/(8(k+1)) at the end of the drain has not
//     finished draining; either observation raises an alarm tagged with k.
//   - verdict, k+1 rounds: shares freeze and alarms flood (alarm tags ride
//     every message of both subphases and are latched to the maximum).
//
// At the end of guess k's verdict the leader accepts n̂ = round(m)+1 iff no
// alarm tagged ≥ k arrived, m is within ¼ of an integer, and n̂ ≤ k+1;
// otherwise every process resets its potential to 1 and guess k+1 restarts
// the drain from scratch. The restart is load-bearing: during a failed
// guess a node with degree d > k+1 over-subscribes its shares and its
// potential goes negative, so the leader's (one-way) mass absorbs garbage;
// a process that observes d > k therefore also freezes its sharing for the
// rest of the guess, and nothing from a failed guess pollutes the next. The
// acceptance is sound whenever alarms reach the leader within the k+1
// verdict rounds — guaranteed once k ≥ n−2 by 1-interval connectivity, and
// on every family in this repository's suite much earlier; the full
// adversarial analysis of arXiv:1603.05459 sets far larger (but still
// polynomial) subphase lengths and is beyond this reproduction. The
// measured round counts (see the zoo campaign in EXPERIMENTS.md) grow
// polynomially, vs linear for histtree.Count — the comparison the zoo
// figure freezes.

// incMsg is the per-round broadcast of the incremental counter.
type incMsg struct {
	// Share is the potential share offered to each neighbor this round.
	Share float64
	// AlarmK is the largest guess index at which the sender (or anyone it
	// heard) observed a violation; -1 when none.
	AlarmK int
}

// incClock derives (guess, subphase) from consecutive round numbers.
type incClock struct {
	k   int // current guess, starting at 1
	off int // rounds completed within the current guess
}

func newIncClock() incClock { return incClock{k: 1} }

func incDrainLen(k int) int   { return 3 * (k + 1) * (k + 1) }
func incVerdictLen(k int) int { return k + 1 }

// phase reports the current guess, whether the round is a drain round, and
// whether it is the guess's final (deciding) round.
func (c *incClock) phase() (k int, drain, last bool) {
	return c.k, c.off < incDrainLen(c.k), c.off == incDrainLen(c.k)+incVerdictLen(c.k)-1
}

// tick advances to the next round, rolling into the next guess at the end
// of the verdict subphase; it reports whether a new guess just began (the
// moment every process resets its drain state).
func (c *incClock) tick() bool {
	c.off++
	if c.off == incDrainLen(c.k)+incVerdictLen(c.k) {
		c.k++
		c.off = 0
		return true
	}
	return false
}

// incProc is a non-leader process of the incremental counter.
type incProc struct {
	clock  incClock
	rho    float64
	share  float64 // the share broadcast this round, to settle in Receive
	alarmK int
	bad    bool // degree violation seen in the current guess: freeze sharing
}

func newIncProc() *incProc { return &incProc{clock: newIncClock(), rho: 1, alarmK: -1} }

func (p *incProc) Send(int) runtime.Message {
	k, drain, _ := p.clock.phase()
	p.share = 0
	if drain && !p.bad {
		p.share = p.rho / float64(k+1)
	}
	return incMsg{Share: p.share, AlarmK: p.alarmK}
}

func (p *incProc) Receive(_ int, msgs []runtime.Message) {
	k, drain, _ := p.clock.phase()
	d := 0
	recv := 0.0
	for _, m := range msgs {
		im, ok := m.(incMsg)
		if !ok {
			continue
		}
		d++
		recv += im.Share
		if im.AlarmK > p.alarmK {
			p.alarmK = im.AlarmK
		}
	}
	p.rho += recv - float64(d)*p.share
	if d > k {
		p.bad = true
		if k > p.alarmK {
			p.alarmK = k
		}
	}
	if drain && p.clock.off == incDrainLen(k)-1 {
		// End of the drain: an unfinished residual taints this guess.
		if math.Abs(p.rho) >= 1/(8*float64(k+1)) && k > p.alarmK {
			p.alarmK = k
		}
	}
	if p.clock.tick() {
		p.rho = 1
		p.bad = false
	}
}

// incLeader absorbs mass and decides at the end of each verdict subphase.
type incLeader struct {
	clock  incClock
	mass   float64
	alarmK int
	count  int
	done   bool
}

func newIncLeader() *incLeader { return &incLeader{clock: newIncClock(), alarmK: -1} }

func (l *incLeader) Send(int) runtime.Message {
	return incMsg{Share: 0, AlarmK: l.alarmK}
}

func (l *incLeader) Receive(_ int, msgs []runtime.Message) {
	if l.done {
		return
	}
	k, _, last := l.clock.phase()
	d := 0
	for _, m := range msgs {
		im, ok := m.(incMsg)
		if !ok {
			continue
		}
		d++
		l.mass += im.Share
		if im.AlarmK > l.alarmK {
			l.alarmK = im.AlarmK
		}
	}
	if d > k && k > l.alarmK {
		l.alarmK = k
	}
	if last {
		cand := math.Round(l.mass)
		if l.alarmK < k && math.Abs(l.mass-cand) <= 0.25 && int(cand) <= k {
			l.count = int(cand) + 1
			l.done = true
		}
	}
	if l.clock.tick() {
		l.mass = 0
	}
}

func (l *incLeader) Output() (int, bool) { return l.count, l.done }

// IncrementalCount runs the incremental counter and returns the exact node
// count and the rounds used. The network must be 1-interval connected over
// the execution (validated up front). The round budget must cover the full
// guess schedule up to the true size — IncrementalRounds(n) bounds the
// budget needed for a size-n network whose drains complete on schedule.
func IncrementalCount(net dynet.Dynamic, leader graph.NodeID, maxRounds int, run Runner) (count, rounds int, err error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return 0, 0, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if maxRounds < 1 {
		return 0, 0, fmt.Errorf("counting: maxRounds must be >= 1, got %d", maxRounds)
	}
	if err := dynet.VerifyIntervalConnectivity(net, maxRounds); err != nil {
		return 0, 0, fmt.Errorf("counting: incremental counting requires 1-interval connectivity: %w", err)
	}
	procs := make([]runtime.Process, n)
	for i := range procs {
		if graph.NodeID(i) == leader {
			procs[i] = newIncLeader()
		} else {
			procs[i] = newIncProc()
		}
	}
	cfg := &runtime.Config{Net: net, Procs: procs, Canon: canon, MaxRounds: maxRounds}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("counting: incremental counter did not terminate within %d rounds", maxRounds)
	}
	return value, rounds, nil
}

// IncrementalRounds returns the round budget consumed by guesses 1..k:
// a network of size n whose drains complete on schedule terminates within
// IncrementalRounds(n-1) rounds (n >= 2); slow-mixing topologies need
// larger guesses because the τ(k) = 3(k+1)² drain must outlast the mixing
// time. Measured accepting guesses: the fast-mixing worst-case 𝒢(PD)₂
// family stays within k ≤ 2.2·n through |V| = 43, while static cycles grow
// roughly quadratically (n=12→k=27, n=16→54, n=20→92, n=24→141) and
// outgrow an IncrementalRounds(3n) budget from n ≈ 16. Useful for sizing
// maxRounds.
func IncrementalRounds(k int) int {
	total := 0
	for g := 1; g <= k; g++ {
		total += incDrainLen(g) + incVerdictLen(g)
	}
	return total
}
