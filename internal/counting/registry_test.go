package counting

import (
	"context"
	"strings"
	"testing"

	"anondyn/internal/runtime"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"degreeoracle", "histtree", "idcount", "incremental", "leaderstate", "oracle", "pushsum", "star", "upperbound"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		a, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if a.Doc == "" || a.Semantics == "" || a.Run == nil {
			t.Fatalf("Lookup(%q): incomplete entry %+v", name, a)
		}
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("Lookup(nope) = %v, want unknown-algorithm error", err)
	}
}

// Every exact algorithm must report the total network size |V| on an
// instance satisfying its requirements — the zoo's unit-consistency
// contract: whatever the protocol's native output (|W| for leaderstate,
// V₂ mass for oracle), Result.Count is |V|.
func TestRegistryExactAlgorithmsAgree(t *testing.T) {
	run := Runner(runtime.RunSequential)

	inst, err := WorstCaseInstance(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"histtree", "idcount", "incremental", "leaderstate"} {
		res, err := RunAlgorithm(name, inst, run)
		if err != nil {
			t.Fatalf("%s on %s: %v", name, inst.Name, err)
		}
		if res.Count != inst.TrueN {
			t.Fatalf("%s on %s: count = %d, want %d", name, inst.Name, res.Count, inst.TrueN)
		}
		if res.Rounds < 1 {
			t.Fatalf("%s on %s: rounds = %d", name, inst.Name, res.Rounds)
		}
	}

	rp, err := RestrictedPD2Instance(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAlgorithm("oracle", rp, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != rp.TrueN {
		t.Fatalf("oracle: count = %d, want %d", res.Count, rp.TrueN)
	}

	st, err := StarInstance(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err = RunAlgorithm("star", st, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != st.TrueN || res.Rounds != 1 {
		t.Fatalf("star: (%d, %d), want (%d, 1)", res.Count, res.Rounds, st.TrueN)
	}
}

func TestRegistryUpperBoundSemantics(t *testing.T) {
	run := Runner(runtime.RunSequential)
	inst, err := RestrictedPD2Instance(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAlgorithm("upperbound", inst, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < inst.TrueN {
		t.Fatalf("upperbound: %d below the true size %d", res.Count, inst.TrueN)
	}
}

func TestRegistryPushSumEstimate(t *testing.T) {
	run := Runner(runtime.RunSequential)
	inst, err := ChurnInstance(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAlgorithm("pushsum", inst, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < inst.TrueN-1 || res.Count > inst.TrueN+1 {
		t.Fatalf("pushsum: rounded estimate %d far from %d", res.Count, inst.TrueN)
	}
}

// Invalid algorithm/instance combinations must be rejected before the run,
// with errors naming the missing model assumption — the contract behind
// cmd/anondyn's clear rejection messages.
func TestRegistryValidateRejections(t *testing.T) {
	run := Runner(runtime.RunSequential)

	cycle, err := CycleInstance(6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		algo string
		inst *Instance
		want string
	}{
		{"oracle", cycle, "restricted 𝒢(PD)₂ layer layout"},
		{"leaderstate", cycle, "multigraph schedule"},
		{"star", cycle, "adjacent to all"},
		{"pushsum", cycle, "fair (randomized) adversary"},
	}
	for _, tc := range cases {
		_, err := RunAlgorithm(tc.algo, tc.inst, run)
		if err == nil {
			t.Fatalf("%s on %s: accepted, want rejection", tc.algo, tc.inst.Name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s on %s: error %q does not name %q", tc.algo, tc.inst.Name, err, tc.want)
		}
		if !strings.Contains(err.Error(), tc.algo) {
			t.Fatalf("%s: error %q does not name the algorithm", tc.algo, err)
		}
	}

	nodeg := *cycle
	nodeg.MaxDegree = 0
	if _, err := RunAlgorithm("upperbound", &nodeg, run); err == nil ||
		!strings.Contains(err.Error(), "degree bound") {
		t.Fatalf("upperbound without MaxDegree: %v", err)
	}
	if err := (Requirements{}).Validate(nil); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestEngineByName(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"", "sequential", "concurrent", "sharded"} {
		if _, err := EngineByName(ctx, name); err != nil {
			t.Fatalf("EngineByName(%q): %v", name, err)
		}
	}
	if _, err := EngineByName(ctx, "warp"); err == nil {
		t.Fatal("EngineByName(warp) accepted")
	}
}

// Each instance family must satisfy at least one registry entry, and the
// worst-case family must satisfy all five comparable exact/bound
// algorithms — the precondition for the zoo campaign's comparative table.
func TestWorstCaseInstanceCoversZoo(t *testing.T) {
	inst, err := WorstCaseInstance(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"histtree", "idcount", "incremental", "leaderstate", "upperbound"} {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Requires.Validate(inst); err != nil {
			t.Fatalf("%s rejects the worst-case instance: %v", name, err)
		}
	}
}
