package counting

import (
	"fmt"
	"sort"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// LimitedIDCount measures ID-based counting when the per-round broadcast is
// capped at `cap` identifiers — the limited-bandwidth regime of the related
// work ([10]: with IDs and limited bandwidth, counting time is a function
// of n even at constant diameter). Each node broadcasts the cap-many
// smallest IDs it knows, rotating through its known set across rounds so
// every ID is eventually forwarded.
//
// With limited bandwidth the unlimited model's growth lemma fails, so the
// leader has no sound local termination rule; the driver instead measures,
// with ground-truth access, the first round at which the leader's known
// set is complete. The contrast with IDCount (completion within the
// dynamic-diameter order) is the bandwidth analogue of the paper's
// anonymity gap.
type limitedIDProc struct {
	id     int
	cap    int
	known  map[int]struct{}
	cursor int
}

func newLimitedIDProc(id, cap int) *limitedIDProc {
	return &limitedIDProc{id: id, cap: cap, known: map[int]struct{}{id: {}}}
}

func (p *limitedIDProc) sorted() []int {
	out := make([]int, 0, len(p.known))
	for id := range p.known {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (p *limitedIDProc) Send(int) runtime.Message {
	owned := p.sorted()
	if len(owned) <= p.cap {
		return idSetMsg(owned)
	}
	// Rotate a window of cap IDs through the known set.
	out := make([]int, 0, p.cap)
	for i := 0; i < p.cap; i++ {
		out = append(out, owned[(p.cursor+i)%len(owned)])
	}
	p.cursor = (p.cursor + p.cap) % len(owned)
	return idSetMsg(out)
}

func (p *limitedIDProc) Receive(_ int, msgs []runtime.Message) {
	for _, m := range msgs {
		if ids, ok := m.(idSetMsg); ok {
			for _, id := range ids {
				p.known[id] = struct{}{}
			}
		}
	}
}

// LimitedIDResult reports a limited-bandwidth run.
type LimitedIDResult struct {
	// CompleteAt is the first completed round at which the leader knew
	// every ID (1-based), or 0 if never within the budget.
	CompleteAt int
	// Rounds is the number of rounds executed.
	Rounds int
}

// LimitedIDCount floods IDs under a per-message cap and reports when the
// leader's knowledge became complete (measured by the driver, since the
// leader itself cannot detect completion soundly in this regime).
func LimitedIDCount(net dynet.Dynamic, leader graph.NodeID, cap, maxRounds int, run Runner) (LimitedIDResult, error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return LimitedIDResult{}, fmt.Errorf("counting: leader %d out of range [0,%d)", leader, n)
	}
	if cap < 1 {
		return LimitedIDResult{}, fmt.Errorf("counting: cap must be >= 1, got %d", cap)
	}
	if maxRounds < 1 {
		return LimitedIDResult{}, fmt.Errorf("counting: maxRounds must be >= 1, got %d", maxRounds)
	}
	procs := make([]runtime.Process, n)
	var lp *limitedIDProc
	for i := range procs {
		p := newLimitedIDProc(i, cap)
		if graph.NodeID(i) == leader {
			lp = p
		}
		procs[i] = p
	}
	completeAt := 0
	cfg := &runtime.Config{
		Net:   net,
		Procs: procs,
		Canon: func(m runtime.Message) string {
			if ids, ok := m.(idSetMsg); ok {
				return "i:" + encodeIDs(ids)
			}
			return canon(m)
		},
		MaxRounds: maxRounds,
		Stop: func(r int) bool {
			if completeAt == 0 && len(lp.known) == n {
				completeAt = r + 1
			}
			return completeAt != 0
		},
	}
	rounds, err := run(cfg)
	if err != nil {
		return LimitedIDResult{}, err
	}
	return LimitedIDResult{CompleteAt: completeAt, Rounds: rounds}, nil
}
