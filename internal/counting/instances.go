package counting

import (
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/dynet"
	"anondyn/internal/graph"
)

// Builders for the standard adversary families the registry is exercised
// on. Every builder returns an Instance carrying the ground truth in TrueN
// and a Horizon generous enough for the exact linear-round algorithms
// (histtree needs at most 3n+8 rounds, idcount at most n, leaderstate at
// most ~2n; the incremental adapter extends its own polynomial budget).

func linearHorizon(n int) int { return 3*n + 10 }

// WorstCaseInstance builds the paper's worst-case ℳ(DBL)₂ adversary for
// |W| = w outer nodes, transformed to its restricted 𝒢(PD)₂ network via
// Lemma 1 and extended past the indistinguishability horizon so counting
// can finish. It carries both the network and the multigraph schedule, so
// every exact algorithm in the registry can run on it — the comparable
// family the zoo campaign sweeps.
func WorstCaseInstance(w int) (*Instance, error) {
	p, err := core.WorstCasePair(w)
	if err != nil {
		return nil, err
	}
	ext, err := p.Extend(p.Rounds + 2)
	if err != nil {
		return nil, err
	}
	m := ext.M
	net, layout, err := m.ToPD2()
	if err != nil {
		return nil, err
	}
	total := layout.N()
	inst := &Instance{
		Name:    fmt.Sprintf("worstcase-%d", w),
		Net:     net,
		Leader:  layout.Leader,
		V1:      layout.V1,
		V2:      layout.V2,
		M:       m,
		Horizon: linearHorizon(total),
		TrueN:   total,
	}
	inst.MaxDegree = observedMaxDegree(net, 8)
	return inst, nil
}

// CycleInstance is a static n-cycle — the symmetric family used for the
// histtree linear-slope measurements.
func CycleInstance(n int) (*Instance, error) {
	g, err := graph.Cycle(n)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("cycle-%d", n),
		Net:       dynet.NewStatic(g),
		Leader:    0,
		MaxDegree: 2,
		Horizon:   linearHorizon(n),
		TrueN:     n,
	}, nil
}

// StarInstance is a static star with the leader at the hub — the 𝒢(PD)₁
// family where counting costs one round.
func StarInstance(n int) (*Instance, error) {
	g, err := graph.Star(n, 0)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("star-%d", n),
		Net:       dynet.NewStatic(g),
		Leader:    0,
		MaxDegree: n - 1,
		Horizon:   linearHorizon(n),
		TrueN:     n,
	}, nil
}

// ChurnInstance is the fair randomized-churn adversary: each round is an
// independent connected random graph, satisfying the Fair requirement of
// convergence-based estimators.
func ChurnInstance(n int, seed int64) (*Instance, error) {
	net, err := dynet.NewRandomChurn(n, 0.3, seed)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("churn-%d-seed%d", n, seed),
		Net:       net,
		Leader:    0,
		MaxDegree: n - 1,
		Horizon:   10 * linearHorizon(n),
		TrueN:     n,
		Fair:      true,
	}, nil
}

// TIntervalInstance is the stability-window adversary: a fresh random
// connected topology held constant for windows of T rounds. The declared
// dynet.Properties ride along so Validate can match algorithms to the
// family's actual guarantees.
func TIntervalInstance(n, T int, seed int64) (*Instance, error) {
	net, err := dynet.NewTInterval(n, T, 0.2, seed)
	if err != nil {
		return nil, err
	}
	props := net.Properties()
	return &Instance{
		Name:      fmt.Sprintf("tinterval%d-%d-seed%d", T, n, seed),
		Net:       net,
		Leader:    0,
		MaxDegree: observedMaxDegree(net, 2*T),
		Horizon:   linearHorizon(n),
		TrueN:     n,
		Props:     &props,
	}, nil
}

// JoinLeaveInstance is the join/leave churn adversary: a stable core of
// ~n/3 nodes plus transients cycling through dwell-2 live/dead stints, with
// live-set accounting. Churned-out nodes are isolated, so the declared
// properties make Validate reject algorithms needing every snapshot
// connected; estimators run with TrueN as the full slot universe.
func JoinLeaveInstance(n int, seed int64) (*Instance, error) {
	coreSize := n / 3
	if coreSize < 1 {
		coreSize = 1
	}
	net, err := dynet.NewChurn(n, coreSize, 2, dynet.RejoinCycle, 0.15, seed)
	if err != nil {
		return nil, err
	}
	props := net.Properties()
	return &Instance{
		Name:      fmt.Sprintf("joinleave-%d-seed%d", n, seed),
		Net:       net,
		Leader:    0,
		MaxDegree: n - 1,
		Horizon:   10 * linearHorizon(n),
		TrueN:     n,
		Fair:      true,
		Props:     &props,
	}, nil
}

// RandomizedInstance is the seed-deterministic randomized adversary: an
// independent connected random graph every round, fair in the estimator
// sense and 1-interval connected for the exact algorithms.
func RandomizedInstance(n int, seed int64) (*Instance, error) {
	net, err := dynet.NewRandomized(n, 0.3, seed)
	if err != nil {
		return nil, err
	}
	props := net.Properties()
	return &Instance{
		Name:      fmt.Sprintf("randomized-%d-seed%d", n, seed),
		Net:       net,
		Leader:    0,
		MaxDegree: n - 1,
		Horizon:   linearHorizon(n),
		TrueN:     n,
		Fair:      true,
		Props:     &props,
	}, nil
}

// FloodDelayInstance is the adaptive flood-delaying adversary, the
// worst-case 1-interval-connected family for flooding-based algorithms.
func FloodDelayInstance(n int) (*Instance, error) {
	net, err := dynet.NewFloodDelaying(n, 0)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:      fmt.Sprintf("flood-delay-%d", n),
		Net:       net,
		Leader:    0,
		MaxDegree: n - 1,
		Horizon:   linearHorizon(n),
		TrueN:     n,
	}, nil
}

// RestrictedPD2Instance is the rotating restricted 𝒢(PD)₂ network with k=2
// relays and `outer` V₂ nodes (moved here from cmd/anondyn so the oracle
// and upper-bound algorithms have a registry-native family). Odd-indexed V₂
// nodes touch both relays each round, so V₂ degrees are uneven — the
// irregular layout the degree-oracle counter must still sum exactly.
func RestrictedPD2Instance(outer int) (*Instance, error) {
	if outer < 1 {
		return nil, fmt.Errorf("counting: restricted PD2 instance needs at least 1 outer node, got %d", outer)
	}
	const k = 2
	total := 1 + k + outer
	v1 := []graph.NodeID{1, 2}
	v2 := make([]graph.NodeID, outer)
	for i := range v2 {
		v2[i] = graph.NodeID(1 + k + i)
	}
	net := dynet.NewFunc(total, func(r int) *graph.Graph {
		g := graph.New(total)
		for _, rel := range v1 {
			_ = g.AddEdge(0, rel)
		}
		for i, w := range v2 {
			_ = g.AddEdge(v1[(i+r)%k], w)
			if i%2 == 1 {
				_ = g.AddEdge(v1[(i+r+1)%k], w)
			}
		}
		return g
	})
	return &Instance{
		Name:      fmt.Sprintf("restricted-pd2-%d", outer),
		Net:       net,
		Leader:    0,
		V1:        v1,
		V2:        v2,
		MaxDegree: observedMaxDegree(net, 8),
		Horizon:   linearHorizon(total),
		TrueN:     total,
	}, nil
}

// observedMaxDegree scans the first `rounds` snapshots for the maximum
// degree, standing in for an a-priori degree bound on families that do not
// have a closed form.
func observedMaxDegree(net dynet.Dynamic, rounds int) int {
	maxDeg := 0
	for r := 0; r < rounds; r++ {
		g := net.Snapshot(r)
		for v := 0; v < net.N(); v++ {
			if d := g.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
	}
	return maxDeg
}
