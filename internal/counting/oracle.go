package counting

import (
	"fmt"
	"math/big"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// The degree-oracle counter (paper, Discussion section). In a restricted
// 𝒢(PD)₂ network — no edges inside a layer, every V₂ node adjacent only to
// V₁ nodes — where every node knows |N(v,r)| before the send phase, the
// count is computable in a constant number of rounds:
//
//	round 0: each V₂ node broadcasts 1/|N(v,0)|; relays collect.
//	round 1: each V₁ relay broadcasts the exact rational sum it received;
//	         the leader adds the sums — Σ_v |N(v,0)|·(1/|N(v,0)|) = |V₂| —
//	         and already knows |V₁| from its own degree oracle.
//
// The leader outputs 1 + |V₁| + |V₂| after two rounds, for any |V|. The
// contrast with LowerBoundRounds is the paper's point: one bit of local
// knowledge (the degree, before sending) collapses Ω(log |V|) to O(1).

// oracleOuter is a V₂ node: it learns its degree via the oracle and sends
// its mass share in round 0.
type oracleOuter struct {
	degree int
}

func (o *oracleOuter) SetDegree(r, d int) {
	if r == 0 {
		o.degree = d
	}
}

func (o *oracleOuter) Send(r int) runtime.Message {
	if r != 0 {
		return nil
	}
	if o.degree <= 0 {
		// Disconnected at round 0: contributes nothing (the driver
		// validates the network, so this is defensive).
		return nil
	}
	return new(big.Rat).SetFrac64(1, int64(o.degree))
}

func (o *oracleOuter) Receive(int, []runtime.Message) {}

// oracleRelay is a V₁ node: it sums the rational shares received in round 0
// and forwards the exact sum in round 1.
type oracleRelay struct {
	sum *big.Rat
}

func (rl *oracleRelay) Send(r int) runtime.Message {
	if r == 1 {
		if rl.sum == nil {
			return new(big.Rat)
		}
		return rl.sum
	}
	return nil
}

func (rl *oracleRelay) Receive(r int, msgs []runtime.Message) {
	if r != 0 {
		return
	}
	rl.sum = new(big.Rat)
	for _, m := range msgs {
		if q, ok := m.(*big.Rat); ok {
			rl.sum.Add(rl.sum, q)
		}
	}
}

// oracleLeader learns |V₁| from its degree oracle and sums the relay
// aggregates received in round 1.
type oracleLeader struct {
	v1    int
	total *big.Rat
	done  bool
}

func (l *oracleLeader) SetDegree(r, d int) {
	if r == 0 {
		l.v1 = d
	}
}

func (l *oracleLeader) Send(int) runtime.Message { return nil }

func (l *oracleLeader) Receive(r int, msgs []runtime.Message) {
	if r != 1 {
		return
	}
	l.total = new(big.Rat)
	for _, m := range msgs {
		if q, ok := m.(*big.Rat); ok {
			l.total.Add(l.total, q)
		}
	}
	l.done = true
}

func (l *oracleLeader) Output() (int, bool) {
	if !l.done {
		return 0, false
	}
	if !l.total.IsInt() {
		// Mass conservation guarantees integrality on valid restricted
		// PD₂ networks; a fractional total means the network violated the
		// restriction.
		return 0, false
	}
	return 1 + l.v1 + int(l.total.Num().Int64()), true
}

// OracleCount runs the degree-oracle algorithm on a restricted 𝒢(PD)₂
// network with the given layer partition (V₁ relays and V₂ outer nodes).
// It validates the restriction on round 0 and 1 snapshots: V₂ nodes must
// touch only V₁ nodes, and the leader only V₁ nodes. Returns the exact
// total count |V| and the rounds used (always 2).
func OracleCount(net dynet.Dynamic, leader graph.NodeID, v1, v2 []graph.NodeID, run Runner) (count, rounds int, err error) {
	n := net.N()
	if 1+len(v1)+len(v2) != n {
		return 0, 0, fmt.Errorf("counting: layers cover %d nodes, network has %d", 1+len(v1)+len(v2), n)
	}
	role := make(map[graph.NodeID]int, n) // 0 leader, 1 relay, 2 outer
	role[leader] = 0
	for _, v := range v1 {
		role[v] = 1
	}
	for _, v := range v2 {
		role[v] = 2
	}
	if len(role) != n {
		return 0, 0, fmt.Errorf("counting: layers overlap or miss nodes")
	}
	for r := 0; r < 2; r++ {
		g := net.Snapshot(r)
		for _, v := range v2 {
			if g.Degree(v) == 0 {
				return 0, 0, fmt.Errorf("counting: V2 node %d isolated at round %d", v, r)
			}
			for _, u := range g.Neighbors(v) {
				if role[u] != 1 {
					return 0, 0, fmt.Errorf("counting: V2 node %d adjacent to non-relay %d at round %d (network not restricted)", v, u, r)
				}
			}
		}
		for _, u := range g.Neighbors(leader) {
			if role[u] != 1 {
				return 0, 0, fmt.Errorf("counting: leader adjacent to non-relay %d at round %d", u, r)
			}
		}
	}
	procs := make([]runtime.Process, n)
	for i := 0; i < n; i++ {
		switch role[graph.NodeID(i)] {
		case 0:
			procs[i] = &oracleLeader{}
		case 1:
			procs[i] = &oracleRelay{}
		default:
			procs[i] = &oracleOuter{}
		}
	}
	cfg := &runtime.Config{Net: net, Procs: procs, Canon: canon, MaxRounds: 3}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("counting: oracle leader did not terminate")
	}
	return value, rounds, nil
}
