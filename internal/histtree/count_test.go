package histtree

import (
	"context"
	"fmt"
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

func seqEngine() Runner { return runtime.RunSequential }

// cycleNet is a static n-cycle (n >= 3), the symmetric family used for the
// linear-scaling measurements: the partition stabilizes into distance
// classes, so the tree stays small at every n.
func cycleNet(t *testing.T, n int) dynet.Dynamic {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatalf("cycle(%d): %v", n, err)
	}
	return dynet.NewStatic(g)
}

func TestCountExactSmallFamilies(t *testing.T) {
	cases := []struct {
		name string
		net  func(t *testing.T) dynet.Dynamic
		n    int
	}{
		{"single", func(t *testing.T) dynet.Dynamic {
			return dynet.NewStatic(graph.New(1))
		}, 1},
		{"pair", func(t *testing.T) dynet.Dynamic {
			g := graph.New(2)
			if err := g.AddEdge(0, 1); err != nil {
				t.Fatal(err)
			}
			return dynet.NewStatic(g)
		}, 2},
		{"path-5", func(t *testing.T) dynet.Dynamic {
			return dynet.NewStatic(graph.Path(5))
		}, 5},
		{"cycle-9", func(t *testing.T) dynet.Dynamic { return cycleNet(t, 9) }, 9},
		{"star-12", func(t *testing.T) dynet.Dynamic {
			g, err := graph.Star(12, 0)
			if err != nil {
				t.Fatal(err)
			}
			return dynet.NewStatic(g)
		}, 12},
		{"complete-7", func(t *testing.T) dynet.Dynamic {
			return dynet.NewStatic(graph.Complete(7))
		}, 7},
		{"flood-delay-11", func(t *testing.T) dynet.Dynamic {
			d, err := dynet.NewFloodDelaying(11, 0)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := tc.net(t)
			count, rounds, err := Count(net, 0, 3*tc.n+10, seqEngine())
			if err != nil {
				t.Fatalf("Count: %v", err)
			}
			if count != tc.n {
				t.Fatalf("count = %d, want %d", count, tc.n)
			}
			if rounds > 3*tc.n+8 {
				t.Fatalf("rounds = %d exceeds the 3n+8 = %d linear bound", rounds, 3*tc.n+8)
			}
		})
	}
}

func TestCountExactRandomChurn(t *testing.T) {
	for _, n := range []int{4, 6, 9} {
		for seed := int64(1); seed <= 3; seed++ {
			net, err := dynet.NewRandomChurn(n, 0.4, seed)
			if err != nil {
				t.Fatal(err)
			}
			count, rounds, err := Count(net, 0, 3*n+10, seqEngine())
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if count != n {
				t.Fatalf("n=%d seed=%d: count = %d", n, seed, count)
			}
			if rounds > 3*n+8 {
				t.Fatalf("n=%d seed=%d: rounds = %d exceeds 3n+8", n, seed, rounds)
			}
		}
	}
}

// TestCountLinearSlope is the acceptance-criteria check: on
// 1-interval-connected instances with n ∈ {10, 50, 100, 364} the protocol
// terminates with the exact count within 3n+8 rounds, and the measured
// rounds grow linearly — the per-node slope stays within a fixed constant
// band across a 36x size range, which a super-linear algorithm cannot do.
func TestCountLinearSlope(t *testing.T) {
	sizes := []int{10, 50, 100, 364}
	slopes := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		net := cycleNet(t, n)
		count, rounds, err := Count(net, 0, 3*n+10, seqEngine())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if count != n {
			t.Fatalf("n=%d: count = %d", n, count)
		}
		if rounds > 3*n+8 {
			t.Fatalf("n=%d: rounds = %d exceeds the linear bound 3n+8 = %d", n, rounds, 3*n+8)
		}
		slope := float64(rounds) / float64(n)
		slopes = append(slopes, slope)
		t.Logf("n=%4d: %4d rounds (slope %.2f)", n, rounds, slope)
	}
	for i, s := range slopes {
		if s < 1 || s > 3.2 {
			t.Fatalf("n=%d: slope %.2f outside the linear band [1, 3.2]", sizes[i], s)
		}
	}
}

// TestCountEngineIndependent is the satellite regression: the protocol's
// merges are commutative and its canonical ordering is id-free, so the
// sequential, concurrent, and sharded engines must produce the identical
// (count, rounds) on the same network.
func TestCountEngineIndependent(t *testing.T) {
	ctx := context.Background()
	engines := map[string]Runner{
		"sequential": runtime.SequentialEngine(ctx),
		"concurrent": runtime.ConcurrentEngine(ctx),
		"sharded":    runtime.ShardedEngine(ctx),
	}
	nets := map[string]func(t *testing.T) dynet.Dynamic{
		"cycle-24": func(t *testing.T) dynet.Dynamic { return cycleNet(t, 24) },
		"churn-8": func(t *testing.T) dynet.Dynamic {
			net, err := dynet.NewRandomChurn(8, 0.4, 7)
			if err != nil {
				t.Fatal(err)
			}
			return net
		},
		"flood-delay-13": func(t *testing.T) dynet.Dynamic {
			d, err := dynet.NewFloodDelaying(13, 0)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
	for netName, mk := range nets {
		t.Run(netName, func(t *testing.T) {
			type outcome struct{ count, rounds int }
			var want outcome
			first := true
			for name, run := range engines {
				net := mk(t)
				count, rounds, err := Count(net, 0, 200, run)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := outcome{count, rounds}
				if first {
					want, first = got, false
					continue
				}
				if got != want {
					t.Fatalf("%s: (count=%d, rounds=%d) differs from %+v", name, got.count, got.rounds, want)
				}
			}
		})
	}
}

func TestCountErrors(t *testing.T) {
	net := cycleNet(t, 5)
	if _, _, err := Count(net, 9, 40, seqEngine()); err == nil {
		t.Fatal("out-of-range leader accepted")
	}
	if _, _, err := Count(net, 0, 0, seqEngine()); err == nil {
		t.Fatal("zero round budget accepted")
	}
	// Disconnected network: two isolated nodes.
	if _, _, err := Count(dynet.NewStatic(graph.New(2)), 0, 10, seqEngine()); err == nil {
		t.Fatal("disconnected network accepted")
	}
	// Budget too small to terminate.
	if _, rounds, err := Count(net, 0, 3, seqEngine()); err == nil {
		t.Fatal("expected budget exhaustion")
	} else if rounds != 3 {
		t.Fatalf("budget exhaustion after %d rounds, want 3", rounds)
	}
}

func TestTreeInterning(t *testing.T) {
	tr := New()
	leaderRoot := tr.Root(true)
	otherRoot := tr.Root(false)
	if leaderRoot == otherRoot {
		t.Fatal("leader and non-leader roots interned identically")
	}
	if tr.Root(true) != leaderRoot {
		t.Fatal("re-interning the leader root produced a new id")
	}
	if !tr.Leader(leaderRoot) || tr.Leader(otherRoot) {
		t.Fatal("Leader bit mismatch on roots")
	}
	a := tr.Extend(leaderRoot, []RedEdge{{Class: otherRoot, Mult: 2}})
	b := tr.Extend(leaderRoot, []RedEdge{{Class: otherRoot, Mult: 2}})
	if a != b {
		t.Fatal("identical extensions interned to different ids")
	}
	c := tr.Extend(leaderRoot, []RedEdge{{Class: otherRoot, Mult: 3}})
	if c == a {
		t.Fatal("different multiplicities interned to the same id")
	}
	if lv, parent, red := tr.Info(a); lv != 1 || parent != leaderRoot || len(red) != 1 || red[0].Mult != 2 {
		t.Fatalf("Info(a) = (%d, %d, %v)", lv, parent, red)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Hash(a) == tr.Hash(c) {
		t.Fatal("structural hashes collide on distinct classes")
	}
	// Structural hashes are id-free: a fresh tree interning the same
	// structure in a different order produces identical hashes.
	tr2 := New()
	o2 := tr2.Root(false)
	l2 := tr2.Root(true)
	a2 := tr2.Extend(l2, []RedEdge{{Class: o2, Mult: 2}})
	if tr2.Hash(a2) != tr.Hash(a) {
		t.Fatal("structural hash depends on interning order")
	}
}

func TestViewBitset(t *testing.T) {
	var v View
	if v.Has(0) || v.Count() != 0 {
		t.Fatal("zero view not empty")
	}
	if !v.Add(70) || v.Add(70) {
		t.Fatal("Add newly-added reporting wrong")
	}
	if !v.Has(70) || v.Has(69) || v.Count() != 1 {
		t.Fatal("membership wrong after Add")
	}
	var w View
	w.Add(3)
	w.Add(130)
	var added []int32
	added = v.MergeCollect(w.Snapshot(), added)
	if len(added) != 2 || added[0] != 3 || added[1] != 130 {
		t.Fatalf("MergeCollect added %v", added)
	}
	if v.Count() != 3 {
		t.Fatalf("Count = %d after merge, want 3", v.Count())
	}
	// Merging again adds nothing.
	if added = v.MergeCollect(w.Snapshot(), added[:0]); len(added) != 0 {
		t.Fatalf("re-merge added %v", added)
	}
	v.Merge(w.Snapshot())
	if v.Count() != 3 {
		t.Fatal("plain Merge changed the view")
	}
	snap := v.Snapshot()
	v.Add(7)
	if len(snap) > 0 && snap[0]&(1<<7) != 0 {
		t.Fatal("Snapshot aliases the live view")
	}
}

func ExampleCount() {
	g, _ := graph.Cycle(10)
	count, rounds, _ := Count(dynet.NewStatic(g), 0, 50, runtime.RunSequential)
	fmt.Println(count, rounds <= 38)
	// Output:
	// 10 true
}
