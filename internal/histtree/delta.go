package histtree

// Delta-view broadcasting.
//
// A process's view only ever grows, so instead of snapshotting the whole
// bitset into every message (O(classes) words copied per edge per round),
// each process keeps one immutable snapshot — the base — shared by
// reference across rounds, plus the bits added since the base was taken —
// the delta. A message is (base, delta), and base ∪ delta is exactly the
// full view, so the encoding is semantically identical to the old full
// snapshot on any topology, including adversarial ones.
//
// The delta is a list of (word, mask) entries rather than individual class
// ids: intern ids are assigned densely ascending, so a round's additions
// cluster into a handful of words, and both the storage and the receiver's
// merge walk are per-word instead of per-id. Entries with the same word
// index may repeat; merging is an idempotent OR, so that is only a minor
// redundancy, never an error.
//
// Receivers remember which bases they have already merged (mergeCache) and
// how much of the accompanying delta they consumed, so a repeat sender
// costs O(new delta entries) instead of O(view words). The concurrency
// argument for sharing mutable sender state through a message:
//
//   - base is stable for the duration of its epoch: the sender writes it
//     only during a rebase, and alternates between two buffers, so the
//     buffer being overwritten was last published two epochs ago — every
//     message referencing it was consumed before the intervening epoch's
//     Sends began (the engines' phase barriers order all Receives of
//     round r before any Send of round r+1, and all Sends of a round
//     before its Receives).
//   - delta entries below the sender's published mark — the length at the
//     most recent Send — are frozen: addDelta only appends, or ORs into
//     the tail entry when its index is >= published. A receiver holds a
//     slice whose len was fixed at Send time, which equals published, so
//     the sender's later appends and in-place ORs touch only indices >=
//     that len (or a new backing array) and never overlap the receiver's
//     reads.
//   - a cache hit requires pointer identity on base AND an equal epoch.
//     A live cache entry retains the base slice, so the allocator cannot
//     hand its address to an unrelated allocation while the entry exists;
//     the same sender does revisit the address when its buffer
//     alternation comes back around, which is why the epoch — bumped on
//     every rebase — is part of the match. Entries never read the
//     retained contents, only compare the address.
//   - delta resets only at a rebase, which also bumps the epoch, so under
//     a matching (base, epoch) the cached consumed-prefix length is
//     always <= the message's delta length and the prefix entries are
//     frozen (append may move the backing array but copies the prefix
//     verbatim).

// wordMask is one delta entry: the bits of view word w added since the
// sender's base was snapshotted.
type wordMask struct {
	w    int32
	mask uint64
}

// viewDelta is the delta-encoded per-round broadcast: the sender's current
// class, its id-free structural hash (for engine-independent canonical
// ordering), and the view as base snapshot plus additions. Senders reuse
// one viewDelta value and return its address from Send; see the package
// comment above for why that is safe under the round barriers.
type viewDelta struct {
	cur   int32
	hash  uint64
	epoch int32      // rebase counter; qualifies base for cache matching
	base  []uint64   // snapshot of the view at the last rebase
	delta []wordMask // view bits added since base was taken
}

// rebaseThreshold is the delta entry count at which a sender folds the
// delta into a fresh base snapshot. Entries are two words each, so bounding
// them by O(view words) keeps a cold receiver's merge within a constant
// factor of the plain-snapshot cost, while warm receivers pay only the
// delta suffix. The absolute cap bounds per-process delta memory at large
// n — rebases reuse the two base buffers, so their only recurring cost is
// the occasional full re-merge at each warm receiver.
func rebaseThreshold(words int) int {
	t := 2 * words
	if t < 256 {
		return 256
	}
	if t > 8192 {
		return 8192
	}
	return t
}

// mergeCacheSize bounds the per-receiver skip cache. Entries are evicted
// in ring order; a miss is never wrong, just a full re-merge.
const mergeCacheSize = 8

// mergeRef records that a base snapshot has been fully merged into the
// owning view, along with how many entries of its accompanying delta were
// consumed. ptr duplicates &base[0] so the per-message cache scan is a
// pointer-and-epoch comparison per entry; base is retained to keep the
// snapshot's address from being handed to an unrelated allocation (see
// the ABA note above).
type mergeRef struct {
	ptr   *uint64
	epoch int32
	base  []uint64
	dlen  int
}

type mergeCache struct {
	refs [mergeCacheSize]mergeRef
	next int
}

func (c *mergeCache) find(base []uint64, epoch int32) *mergeRef {
	if len(base) == 0 {
		return nil
	}
	p := &base[0]
	for i := range c.refs {
		if c.refs[i].ptr == p && c.refs[i].epoch == epoch {
			return &c.refs[i]
		}
	}
	return nil
}

func (c *mergeCache) insert(base []uint64, epoch int32, dlen int) {
	if len(base) == 0 {
		return
	}
	c.refs[c.next] = mergeRef{ptr: &base[0], epoch: epoch, base: base, dlen: dlen}
	c.next = (c.next + 1) % mergeCacheSize
}

// addDelta records freshly added view bits in the outgoing delta. It ORs
// into the tail entry when the word matches and the entry has not been
// published by a Send yet; otherwise it appends, keeping every published
// prefix frozen (see the concurrency argument above). Only the tail is
// probed: intern ids ascend, so a burst of same-round classes lands in a
// run of same-word adds, which the tail probe compacts; scanning deeper
// buys little once additions scatter across words (large views receive
// ids across the whole distance spectrum each round) and taxes every add.
func (p *proc) addDelta(w int32, mask uint64) {
	if n := len(p.delta); n > p.published && p.delta[n-1].w == w {
		p.delta[n-1].mask |= mask
		return
	}
	p.delta = append(p.delta, wordMask{w: w, mask: mask})
}

// mergeEntries folds delta entries into the view, recording every newly
// set bit in p.delta.
func (p *proc) mergeEntries(entries []wordMask) {
	for _, e := range entries {
		w := int(e.w)
		if w >= len(p.view.bits) {
			p.view.grow(w)
		}
		if fresh := e.mask &^ p.view.bits[w]; fresh != 0 {
			p.view.bits[w] |= fresh
			p.addDelta(e.w, fresh)
		}
	}
}

// mergeWords folds a full snapshot into the view, recording every newly
// set bit in p.delta.
func (p *proc) mergeWords(other []uint64) {
	if len(other) > len(p.view.bits) {
		p.view.grow(len(other) - 1)
	}
	for i, w := range other {
		if diff := w &^ p.view.bits[i]; diff != 0 {
			p.view.bits[i] |= diff
			p.addDelta(int32(i), diff)
		}
	}
}

// mergeMsg folds one received message into the view. Every newly visible
// bit lands in p.delta, which doubles as the leader's incremental index
// and the process's own outgoing delta.
func (p *proc) mergeMsg(m any) {
	switch vm := m.(type) {
	case *viewDelta:
		if ref := p.seen.find(vm.base, vm.epoch); ref != nil {
			if ref.dlen > len(vm.delta) {
				// A sender shrank its delta without rebasing. Protocol
				// senders never do; reprocess the whole delta defensively.
				ref.dlen = 0
			}
			p.mergeEntries(vm.delta[ref.dlen:])
			ref.dlen = len(vm.delta)
			return
		}
		p.mergeWords(vm.base)
		p.mergeEntries(vm.delta)
		p.seen.insert(vm.base, vm.epoch, len(vm.delta))
	case viewMsg:
		// Wire-compat fallback: a full-snapshot sender.
		p.mergeWords(vm.bits)
	}
}
