// Package histtree implements the history-tree data structure of Di Luna
// and Viglietta ("Computing in Anonymous Dynamic Networks Is Linear",
// arXiv:2204.02128) and, on top of it, an exact counting protocol for
// anonymous 1-interval-connected dynamic networks that terminates in O(n)
// rounds — the algorithm that closed the problem the source paper's
// Ω(log n) anonymity lower bound opened.
//
// A history tree is a per-execution structure whose level-t nodes are the
// anonymity classes after t completed rounds: the sets of processes whose
// views of the execution are identical. Level 0 partitions processes by
// input (leader / non-leader); the class of a process after round t+1 is
// determined by its class after round t together with the multiset of
// classes it heard from in round t+1. Two edge kinds connect consecutive
// levels:
//
//   - black edges (the tree edges, Node parent links) connect a class to
//     the classes that refine it one round later;
//   - red edges (RedEdge) connect a level-(t+1) class B' to every level-t
//     class A whose members were heard by B' members in round t+1, with
//     multiplicity = how many such messages each B' member received.
//
// Because the level-(t+1) partition always refines the level-t partition,
// the number of classes per level is non-decreasing and bounded by n, so
// at most n-1 levels can split a class: some pair of consecutive levels
// with identical partitions (a "stable pair") exists within the first n
// levels, and at a stable pair the red-edge multiplicities determine every
// class cardinality exactly (see count.go).
//
// Tree is a shared intern table: every distinct class is stored once and
// identified by a dense int32 id, processes' views are bitsets (View) over
// those ids, and the per-round "chunk merge" of the paper becomes a bitset
// OR — the hot path of the protocol. The table is safe for concurrent use
// so the same Count run executes unchanged on the sequential, concurrent,
// and sharded engines; the structural Hash is id-free, so canonical
// message ordering does not depend on the engine's interning order.
package histtree

import (
	"math/bits"
	"sort"
	"strconv"
	"sync"
)

// RedEdge records that members of the class owning the edge received Mult
// messages from members of class Class (one level below) in the round that
// created the owning class.
type RedEdge struct {
	// Class is the intern id of the observed class.
	Class int32
	// Mult is the per-member message multiplicity.
	Mult int32
}

// node is one interned history-tree node: an anonymity class.
type node struct {
	level  int32
	parent int32 // black edge to the refined class; -1 at level 0
	leader bool  // level-0 input bit (the unique leader)
	red    []RedEdge
	hash   uint64 // id-free structural fingerprint
}

// Tree is the shared intern table of history-tree nodes for one execution.
// Ids are dense and assigned in interning order, which may differ between
// engines; anything observable across engines must go through the
// structural Hash or through id-free comparisons.
type Tree struct {
	mu    sync.RWMutex
	nodes []node
	index map[string]int32
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{index: make(map[string]int32)}
}

// fnv1a is the 64-bit FNV-1a step, used to chain structural hashes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Root interns (or finds) the level-0 class for the given input bit and
// returns its id. Every execution has exactly two possible roots: the
// leader's singleton class and the shared non-leader class.
func (t *Tree) Root(leader bool) int32 {
	key := "F"
	if leader {
		key = "L"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[key]; ok {
		return id
	}
	h := fnvUint64(fnvOffset, 0)
	if leader {
		h = fnvUint64(h, 1)
	} else {
		h = fnvUint64(h, 2)
	}
	return t.insert(key, node{level: 0, parent: -1, leader: leader, hash: h})
}

// Extend interns (or finds) the child class of parent whose members heard
// the multiset described by heard, and returns its id. heard must reference
// classes at the parent's level with distinct Class entries; it is copied,
// so the caller may reuse its slice. A process calls Extend once per round
// with the multiset of classes observed in its inbox.
func (t *Tree) Extend(parent int32, heard []RedEdge) int32 {
	red := make([]RedEdge, len(heard))
	copy(red, heard)
	sort.Slice(red, func(i, j int) bool { return red[i].Class < red[j].Class })

	// Intern key: parent id plus the id-sorted multiset. Ids are stable
	// within a run, so the key is canonical per tree instance.
	buf := make([]byte, 0, 16+12*len(red))
	buf = strconv.AppendInt(buf, int64(parent), 10)
	for _, e := range red {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(e.Class), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(e.Mult), 10)
	}
	key := string(buf)

	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[key]; ok {
		return id
	}
	p := t.nodes[parent]
	// Structural hash: chain the parent's hash with the multiset of
	// (child-class hash, multiplicity) pairs sorted by hash — id-free, so
	// equal classes hash equally regardless of interning order.
	type hm struct {
		h uint64
		m int32
	}
	hs := make([]hm, len(red))
	for i, e := range red {
		hs[i] = hm{h: t.nodes[e.Class].hash, m: e.Mult}
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].h != hs[j].h {
			return hs[i].h < hs[j].h
		}
		return hs[i].m < hs[j].m
	})
	h := fnvUint64(fnvOffset, uint64(p.level)+1)
	h = fnvUint64(h, p.hash)
	for _, e := range hs {
		h = fnvUint64(h, e.h)
		h = fnvUint64(h, uint64(e.m))
	}
	return t.insert(key, node{level: p.level + 1, parent: parent, red: red, hash: h})
}

// insert appends a node under the write lock.
func (t *Tree) insert(key string, n node) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	t.index[key] = id
	return id
}

// Len returns the number of interned classes.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// Info returns the structural fields of a class: its level, its black-edge
// parent (-1 at level 0), and its red edges sorted by Class. The returned
// slice is owned by the tree and must not be modified.
func (t *Tree) Info(id int32) (level int, parent int32, red []RedEdge) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.nodes[id]
	return int(n.level), n.parent, n.red
}

// Hash returns the id-free structural fingerprint of a class: equal across
// engines and interning orders for structurally equal classes.
func (t *Tree) Hash(id int32) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[id].hash
}

// Leader reports whether id is the level-0 leader class.
func (t *Tree) Leader(id int32) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.nodes[id]
	return n.level == 0 && n.leader
}

// View is a process's knowledge of the execution: the set of history-tree
// classes it has created or heard about, as a bitset over intern ids. The
// per-round merge of two views — the protocol's hot path — is a word-wise
// OR. The zero View is empty and ready for use.
type View struct {
	bits []uint64
}

// grow ensures the bitset covers word index w.
func (v *View) grow(w int) {
	for len(v.bits) <= w {
		v.bits = append(v.bits, 0)
	}
}

// Has reports whether the class is in the view.
func (v *View) Has(id int32) bool {
	w := int(id >> 6)
	return w < len(v.bits) && v.bits[w]&(1<<uint(id&63)) != 0
}

// Add inserts a class and reports whether it was newly added.
func (v *View) Add(id int32) bool {
	w := int(id >> 6)
	v.grow(w)
	m := uint64(1) << uint(id&63)
	if v.bits[w]&m != 0 {
		return false
	}
	v.bits[w] |= m
	return true
}

// Merge ORs another view's snapshot into v.
func (v *View) Merge(other []uint64) {
	if len(other) > len(v.bits) {
		v.grow(len(other) - 1)
	}
	for i, w := range other {
		v.bits[i] |= w
	}
}

// MergeCollect ORs other into v and appends every newly set id to out,
// returning the extended slice. It is the leader-side merge: the caller
// indexes the new classes incrementally instead of rescanning the bitset.
func (v *View) MergeCollect(other []uint64, out []int32) []int32 {
	if len(other) > len(v.bits) {
		v.grow(len(other) - 1)
	}
	for i, w := range other {
		diff := w &^ v.bits[i]
		v.bits[i] |= w
		for diff != 0 {
			b := bits.TrailingZeros64(diff)
			out = append(out, int32(i<<6+b))
			diff &= diff - 1
		}
	}
	return out
}

// Snapshot returns a copy of the bitset, safe to hand to another process.
func (v *View) Snapshot() []uint64 {
	out := make([]uint64, len(v.bits))
	copy(out, v.bits)
	return out
}

// Count returns the number of classes in the view.
func (v *View) Count() int {
	n := 0
	for _, w := range v.bits {
		n += bits.OnesCount64(w)
	}
	return n
}
