// Package histtree implements the history-tree data structure of Di Luna
// and Viglietta ("Computing in Anonymous Dynamic Networks Is Linear",
// arXiv:2204.02128) and, on top of it, an exact counting protocol for
// anonymous 1-interval-connected dynamic networks that terminates in O(n)
// rounds — the algorithm that closed the problem the source paper's
// Ω(log n) anonymity lower bound opened.
//
// A history tree is a per-execution structure whose level-t nodes are the
// anonymity classes after t completed rounds: the sets of processes whose
// views of the execution are identical. Level 0 partitions processes by
// input (leader / non-leader); the class of a process after round t+1 is
// determined by its class after round t together with the multiset of
// classes it heard from in round t+1. Two edge kinds connect consecutive
// levels:
//
//   - black edges (the tree edges, Node parent links) connect a class to
//     the classes that refine it one round later;
//   - red edges (RedEdge) connect a level-(t+1) class B' to every level-t
//     class A whose members were heard by B' members in round t+1, with
//     multiplicity = how many such messages each B' member received.
//
// Because the level-(t+1) partition always refines the level-t partition,
// the number of classes per level is non-decreasing and bounded by n, so
// at most n-1 levels can split a class: some pair of consecutive levels
// with identical partitions (a "stable pair") exists within the first n
// levels, and at a stable pair the red-edge multiplicities determine every
// class cardinality exactly (see count.go).
//
// Tree is a shared intern table: every distinct class is stored once and
// identified by a dense int32 id, processes' views are bitsets (View) over
// those ids, and the per-round "chunk merge" of the paper becomes a bitset
// OR — the hot path of the protocol. The table is safe for concurrent use
// so the same Count run executes unchanged on the sequential, concurrent,
// and sharded engines; the structural Hash is id-free, so canonical
// message ordering does not depend on the engine's interning order.
package histtree

import (
	"math/bits"
	"slices"
	"sync"
)

// RedEdge records that members of the class owning the edge received Mult
// messages from members of class Class (one level below) in the round that
// created the owning class.
type RedEdge struct {
	// Class is the intern id of the observed class.
	Class int32
	// Mult is the per-member message multiplicity.
	Mult int32
}

// node is one interned history-tree node: an anonymity class. Its red
// edges live in the tree's arena at [redOff, redOff+redLen); keeping the
// node pointer-free makes the nodes slice invisible to the garbage
// collector — no scan work, no write barriers on growth.
type node struct {
	hash   uint64 // id-free structural fingerprint
	redOff int32
	redLen int32
	level  int32
	parent int32 // black edge to the refined class; -1 at level 0
	leader bool  // level-0 input bit (the unique leader)
}

// Tree is the shared intern table of history-tree nodes for one execution.
// Ids are dense and assigned in interning order, which may differ between
// engines; anything observable across engines must go through the
// structural Hash or through id-free comparisons.
//
// The intern index is keyed by an id-based content hash of (parent, red
// multiset) instead of an encoded string, and the nodes' red slices live in
// a chunked arena, so the hit path of Extend — the one every process takes
// every round once its class exists — performs zero allocations, and a miss
// costs O(1) amortized allocations rather than one per slice.
type Tree struct {
	mu    sync.RWMutex
	nodes []node
	index idTable            // content hash -> first interned id
	clash map[uint64][]int32 // further ids on the (rare) colliding hashes
	// arena holds every node's red edges contiguously, addressed by
	// (redOff, redLen). Appends may reallocate it, but previously returned
	// sub-slices stay valid (the old backing array is immutable) and
	// offsets stay correct (append copies the prefix verbatim).
	arena []RedEdge
	hsBuf []hashMult // write-lock scratch for the miss-path structural sort
}

// hashMult pairs a child-class structural hash with its multiplicity for
// the id-free ordering inside the structural hash computation.
type hashMult struct {
	h uint64
	m int32
}

// red returns node n's red edges as a capacity-clamped view of the arena.
// Callers must hold at least the read lock.
func (t *Tree) red(n *node) []RedEdge {
	end := n.redOff + n.redLen
	return t.arena[n.redOff:end:end]
}

// New returns an empty tree. Capacity is pre-sized for the common case of
// a full protocol run, where the table reaches thousands of classes;
// per-execution trees make the up-front cost trivial next to the growth
// churn it avoids.
func New() *Tree {
	return &Tree{
		nodes: make([]node, 0, 1024),
		index: newIDTable(2048),
	}
}

// idTable is an open-addressing index from content hash to intern id,
// specialized for the hot lookup in Extend: keys are already well-mixed
// mixFold outputs, so the probe start is the key itself masked to the
// power-of-two table size, with linear probing on (rare) slot collisions.
// Compared to a Go map this skips rehashing the key and the bucket
// machinery — the lookup is two array reads in the common case. Values
// store id+1 so the zero value of a slot means empty; deletion is never
// needed (the intern table only grows).
type idTable struct {
	keys []uint64
	vals []int32 // id+1; 0 marks an empty slot
	used int
}

func newIDTable(slots int) idTable {
	return idTable{keys: make([]uint64, slots), vals: make([]int32, slots)}
}

func (tb *idTable) get(h uint64) (int32, bool) {
	if len(tb.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(tb.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		v := tb.vals[i]
		if v == 0 {
			return 0, false
		}
		if tb.keys[i] == h {
			return v - 1, true
		}
	}
}

// put inserts h -> id. The caller has already checked that h is absent
// (a present hash goes to the clash table instead, preserving the
// first-interned binding).
func (tb *idTable) put(h uint64, id int32) {
	if 4*(tb.used+1) > 3*len(tb.keys) {
		tb.grow()
	}
	mask := uint64(len(tb.keys) - 1)
	i := h & mask
	for tb.vals[i] != 0 {
		i = (i + 1) & mask
	}
	tb.keys[i], tb.vals[i] = h, id+1
	tb.used++
}

func (tb *idTable) grow() {
	slots := 2 * len(tb.keys)
	if slots == 0 {
		slots = 16
	}
	oldKeys, oldVals := tb.keys, tb.vals
	tb.keys = make([]uint64, slots)
	tb.vals = make([]int32, slots)
	mask := uint64(slots - 1)
	for j, v := range oldVals {
		if v == 0 {
			continue
		}
		i := oldKeys[j] & mask
		for tb.vals[i] != 0 {
			i = (i + 1) & mask
		}
		tb.keys[i], tb.vals[i] = oldKeys[j], v
	}
}

// hashSeed seeds both hash chains (the FNV-1a offset basis, kept for its
// provenance as a well-spread constant).
const hashSeed = 14695981039346656037

// mixFold folds v into h with one multiply and a rotate. It backs both the
// intern index's content hash — where candidates are always verified
// structurally, so a collision costs a probe, never a wrong id — and the
// id-free structural hash, where a collision merely perturbs canonical
// message ordering, which the protocol's commutative merges tolerate.
func mixFold(h, v uint64) uint64 {
	h ^= v
	h *= 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	return bits.RotateLeft64(h, 29)
}

// contentHash fingerprints (parent, id-sorted red multiset) for the intern
// index. It is id-based — ids are stable within a run, so the hash is
// canonical per tree instance — unlike the structural hash, which chains
// id-free inputs (see ExtendHash) so it agrees across engines.
func contentHash(parent int32, red []RedEdge) uint64 {
	h := mixFold(hashSeed, uint64(uint32(parent)))
	for _, e := range red {
		h = mixFold(h, uint64(uint32(e.Class))<<32|uint64(uint32(e.Mult)))
	}
	return h
}

// Root interns (or finds) the level-0 class for the given input bit and
// returns its id. Every execution has exactly two possible roots: the
// leader's singleton class and the shared non-leader class.
func (t *Tree) Root(leader bool) int32 {
	// Fold the root's parent "id" (-1) the same way contentHash folds a
	// real parent: as its uint32 bit pattern, 0xFFFFFFFF, which no valid
	// node id (< 2^31) can produce.
	h := mixFold(hashSeed, 0xFFFFFFFF)
	bit := uint64(2)
	if leader {
		bit = 1
	}
	h = mixFold(h, bit)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index.get(h); ok && t.matchRoot(id, leader) {
		return id
	} else if ok {
		for _, cid := range t.clash[h] {
			if t.matchRoot(cid, leader) {
				return cid
			}
		}
	}
	sh := mixFold(hashSeed, 0)
	sh = mixFold(sh, bit)
	return t.insert(h, node{level: 0, parent: -1, leader: leader, hash: sh})
}

func (t *Tree) matchRoot(id int32, leader bool) bool {
	n := &t.nodes[id]
	return n.level == 0 && n.parent == -1 && n.leader == leader
}

// matchExtend reports whether interned node id is exactly (parent, red).
func (t *Tree) matchExtend(id, parent int32, red []RedEdge) bool {
	n := &t.nodes[id]
	if n.parent != parent || int(n.redLen) != len(red) {
		return false
	}
	for i, e := range t.red(n) {
		if e != red[i] {
			return false
		}
	}
	return true
}

// findExtend looks (parent, red) up under whichever lock the caller holds.
func (t *Tree) findExtend(h uint64, parent int32, red []RedEdge) (int32, bool) {
	id, ok := t.index.get(h)
	if !ok {
		return 0, false
	}
	if t.matchExtend(id, parent, red) {
		return id, true
	}
	for _, cid := range t.clash[h] {
		if t.matchExtend(cid, parent, red) {
			return cid, true
		}
	}
	return 0, false
}

// Extend interns (or finds) the child class of parent whose members heard
// the multiset described by heard, and returns its id. heard must reference
// classes at the parent's level with distinct Class entries; it is copied,
// so the caller may reuse its slice. A process calls Extend once per round
// with the multiset of classes observed in its inbox.
//
// The hit path — the class already exists, which is every call but the
// first per distinct class — takes a read lock and allocates nothing when
// heard is already sorted by Class (the protocol's absorb always sorts).
func (t *Tree) Extend(parent int32, heard []RedEdge) int32 {
	id, _ := t.ExtendHash(parent, heard)
	return id
}

// ExtendHash is Extend plus the child's structural hash, resolved under a
// single lock acquisition. The counting protocol needs both every round
// for every process, so fusing the lookups halves the lock traffic of the
// hot path.
func (t *Tree) ExtendHash(parent int32, heard []RedEdge) (int32, uint64) {
	red := heard
	if !slices.IsSortedFunc(red, cmpRedEdge) {
		red = slices.Clone(heard)
		slices.SortFunc(red, cmpRedEdge)
	}
	h := contentHash(parent, red)

	t.mu.RLock()
	if id, ok := t.findExtend(h, parent, red); ok {
		sh := t.nodes[id].hash
		t.mu.RUnlock()
		return id, sh
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.findExtend(h, parent, red); ok {
		// Raced with another intern of the same class between the locks.
		return id, t.nodes[id].hash
	}
	p := t.nodes[parent]
	// Structural hash: chain the parent's hash with the multiset of
	// (child-class hash, multiplicity) pairs sorted by hash — id-free, so
	// equal classes hash equally regardless of interning order. hsBuf is
	// write-lock-protected scratch, so the miss path allocates only on its
	// high-water mark.
	hs := t.hsBuf[:0]
	for _, e := range red {
		hs = append(hs, hashMult{h: t.nodes[e.Class].hash, m: e.Mult})
	}
	t.hsBuf = hs
	slices.SortFunc(hs, func(a, b hashMult) int {
		if a.h != b.h {
			if a.h < b.h {
				return -1
			}
			return 1
		}
		return int(a.m) - int(b.m)
	})
	sh := mixFold(hashSeed, uint64(p.level)+1)
	sh = mixFold(sh, p.hash)
	for _, e := range hs {
		sh = mixFold(sh, e.h)
		sh = mixFold(sh, uint64(e.m))
	}
	// Persist the red multiset in the shared arena and address it by
	// offset: one amortized allocation, and the node stays pointer-free.
	off := int32(len(t.arena))
	t.arena = append(t.arena, red...)
	n := node{hash: sh, redOff: off, redLen: int32(len(red)), level: p.level + 1, parent: parent}
	return t.insert(h, n), sh
}

func cmpRedEdge(a, b RedEdge) int { return int(a.Class) - int(b.Class) }

// insert appends a node under the write lock and indexes its content hash.
func (t *Tree) insert(h uint64, n node) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	if _, taken := t.index.get(h); taken {
		if t.clash == nil {
			t.clash = make(map[uint64][]int32)
		}
		t.clash[h] = append(t.clash[h], id)
	} else {
		t.index.put(h, id)
	}
	return id
}

// Len returns the number of interned classes.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// Info returns the structural fields of a class: its level, its black-edge
// parent (-1 at level 0), and its red edges sorted by Class. The returned
// slice is owned by the tree and must not be modified; it stays valid (and
// immutable) across later interning.
func (t *Tree) Info(id int32) (level int, parent int32, red []RedEdge) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := &t.nodes[id]
	return int(n.level), n.parent, t.red(n)
}

// Hash returns the id-free structural fingerprint of a class: equal across
// engines and interning orders for structurally equal classes.
func (t *Tree) Hash(id int32) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[id].hash
}

// Leader reports whether id is the level-0 leader class.
func (t *Tree) Leader(id int32) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.nodes[id]
	return n.level == 0 && n.leader
}

// View is a process's knowledge of the execution: the set of history-tree
// classes it has created or heard about, as a bitset over intern ids. The
// per-round merge of two views — the protocol's hot path — is a word-wise
// OR. The zero View is empty and ready for use.
type View struct {
	bits []uint64
}

// grow ensures the bitset covers word index w.
func (v *View) grow(w int) {
	for len(v.bits) <= w {
		v.bits = append(v.bits, 0)
	}
}

// Has reports whether the class is in the view.
func (v *View) Has(id int32) bool {
	w := int(id >> 6)
	return w < len(v.bits) && v.bits[w]&(1<<uint(id&63)) != 0
}

// Add inserts a class and reports whether it was newly added.
func (v *View) Add(id int32) bool {
	w := int(id >> 6)
	m := uint64(1) << uint(id&63)
	if w < len(v.bits) {
		old := v.bits[w]
		if old&m != 0 {
			return false
		}
		v.bits[w] = old | m
		return true
	}
	v.grow(w)
	v.bits[w] |= m
	return true
}

// Merge ORs another view's snapshot into v.
func (v *View) Merge(other []uint64) {
	if len(other) > len(v.bits) {
		v.grow(len(other) - 1)
	}
	for i, w := range other {
		v.bits[i] |= w
	}
}

// MergeCollect ORs other into v and appends every newly set id to out,
// returning the extended slice. It is the leader-side merge: the caller
// indexes the new classes incrementally instead of rescanning the bitset.
func (v *View) MergeCollect(other []uint64, out []int32) []int32 {
	if len(other) > len(v.bits) {
		v.grow(len(other) - 1)
	}
	for i, w := range other {
		diff := w &^ v.bits[i]
		v.bits[i] |= w
		for diff != 0 {
			b := bits.TrailingZeros64(diff)
			out = append(out, int32(i<<6+b))
			diff &= diff - 1
		}
	}
	return out
}

// Snapshot returns a copy of the bitset, safe to hand to another process.
func (v *View) Snapshot() []uint64 {
	out := make([]uint64, len(v.bits))
	copy(out, v.bits)
	return out
}

// Count returns the number of classes in the view.
func (v *View) Count() int {
	n := 0
	for _, w := range v.bits {
		n += bits.OnesCount64(w)
	}
	return n
}
