package histtree

import (
	"math/rand"
	"testing"
)

// buildChainLeader builds a synthetic stable pair at levels (1, 2): k
// level-1 classes in a chain X[0] — X[1] — ... — X[k-1], X[0] being the
// leader's class, each with a unique level-2 child. The child of X[i]
// heard fwd[i] messages from X[i+1] members and back[i-1] messages from
// X[i-1] members, so the solve propagates |X[i+1]| = |X[i]|·fwd[i]/back[i].
// The returned leader has classified the pair as stable and is ready for
// solveFast/solveRat.
func buildChainLeader(t *testing.T, fwd, back []int32) *leaderProc {
	t.Helper()
	if len(fwd) != len(back) {
		t.Fatal("fwd and back must pair up per link")
	}
	k := len(fwd) + 1
	tr := New()
	l0 := tr.Root(true)
	a0 := tr.Root(false)
	xs := make([]int32, k)
	xs[0] = tr.Extend(l0, []RedEdge{{Class: a0, Mult: 1}})
	for i := 1; i < k; i++ {
		// Distinct heard multisets keep the level-1 classes distinct.
		xs[i] = tr.Extend(a0, []RedEdge{{Class: a0, Mult: int32(i)}})
	}
	for i := 0; i < k; i++ {
		var red []RedEdge
		if i > 0 {
			red = append(red, RedEdge{Class: xs[i-1], Mult: back[i-1]})
		}
		if i < k-1 {
			red = append(red, RedEdge{Class: xs[i+1], Mult: fwd[i]})
		}
		tr.Extend(xs[i], red)
	}
	l := newLeaderProc(tr)
	for id := int32(1); id < int32(tr.Len()); id++ {
		l.note(id)
	}
	l.own = append(l.own, xs[0])
	if st := l.classify(1); st != pairStable {
		t.Fatalf("synthetic chain not classified stable: %v", st)
	}
	return l
}

// TestSolveFastMatchesRatDifferential pins solveFast bit-for-bit against
// the big.Rat reference on randomized chains: integral chains (both must
// return the identical count), non-integral and one-way-edge chains (both
// must reject), and large-value chains near the int64 range. Whenever
// solveFast does not spill, its (n, ok) must equal solveRat's exactly.
func TestSolveFastMatchesRatDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 80; c++ {
		links := 1 + rng.Intn(4)
		fwd := make([]int32, links)
		back := make([]int32, links)
		for i := range fwd {
			g := int32(1 + rng.Intn(1<<16))
			f := int32(1 + rng.Intn(8))
			fwd[i], back[i] = f*g, g // integral growth factor f, gcd g
		}
		switch c % 4 {
		case 1: // non-integral link: some cardinality gets denominator 2
			fwd[rng.Intn(links)], back[rng.Intn(links)] = 3, 2
		case 2: // one-way edge: no back multiplicity
			back[links-1] = 0
		}
		l := buildChainLeader(t, fwd, back)
		nF, okF := l.solveFast(1)
		nR, okR := l.solveRat(1)
		if nF == -1 {
			continue // spill; covered by TestSolveSpillFallback
		}
		if nF != nR || okF != okR {
			t.Fatalf("case %d (fwd=%v back=%v): solveFast=(%d,%v) solveRat=(%d,%v)",
				c, fwd, back, nF, okF, nR, okR)
		}
	}
}

func TestSolveLargeIntegralChain(t *testing.T) {
	// Cards 1, 2^20, 2^40, 2^60: near the int64 range but never over it.
	l := buildChainLeader(t, []int32{1 << 20, 1 << 20, 1 << 20}, []int32{1, 1, 1})
	want := 1 + 1<<20 + 1<<40 + 1<<60
	nF, okF := l.solveFast(1)
	nR, okR := l.solveRat(1)
	if nF != want || !okF {
		t.Fatalf("solveFast = (%d,%v), want (%d,true)", nF, okF, want)
	}
	if nR != want || !okR {
		t.Fatalf("solveRat = (%d,%v), want (%d,true)", nR, okR, want)
	}
}

// TestSolveSpillFallback forces the int64 fast path to overflow on an
// input whose exact answer still fits: the last link multiplies a 2^40
// cardinality by 3·2^22 before dividing by 3, so the int64 intermediate
// overflows (solveFast must signal -1) while the true cardinality, 2^62,
// and the total are representable — the big.Rat fallback must deliver
// them, and the public solve() must transparently return its result.
func TestSolveSpillFallback(t *testing.T) {
	l := buildChainLeader(t, []int32{1 << 20, 1 << 20, 3 << 22}, []int32{1, 1, 3})
	want := 1 + 1<<20 + 1<<40 + 1<<62
	if n, ok := l.solveFast(1); n != -1 || ok {
		t.Fatalf("solveFast = (%d,%v), want overflow signal (-1,false)", n, ok)
	}
	if n, ok := l.solveRat(1); n != want || !ok {
		t.Fatalf("solveRat = (%d,%v), want (%d,true)", n, ok, want)
	}
	if n, ok := l.solve(1); n != want || !ok {
		t.Fatalf("solve = (%d,%v), want (%d,true) via spill", n, ok, want)
	}
	// The spilled result is cached like any other.
	if n, ok := l.solve(1); n != want || !ok {
		t.Fatalf("cached solve = (%d,%v), want (%d,true)", n, ok, want)
	}
}

// TestSolveQueueCapacityReuse guards the index-cursor BFS: the scratch
// queue must keep one backing array across repeated solves instead of
// re-slicing its head away (the l.queue = l.queue[1:] pattern leaks the
// front of the array every pop and forces a fresh allocation per solve).
func TestSolveQueueCapacityReuse(t *testing.T) {
	l := buildChainLeader(t, []int32{2, 3, 4, 5}, []int32{1, 1, 1, 1})
	if n, ok := l.solveFast(1); !ok {
		t.Fatalf("solveFast failed: (%d,%v)", n, ok)
	}
	if len(l.queue) != 5 {
		t.Fatalf("queue holds %d solved classes, want 5", len(l.queue))
	}
	c0 := cap(l.queue)
	p0 := &l.queue[0]
	for i := 0; i < 200; i++ {
		l.solveFast(1)
	}
	if cap(l.queue) != c0 || &l.queue[0] != p0 {
		t.Fatalf("queue backing array not reused: cap %d -> %d", c0, cap(l.queue))
	}
}
