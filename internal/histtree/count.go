package histtree

import (
	"fmt"
	"math/big"
	"slices"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// Runner is an execution engine; the alias keeps Count runnable on any of
// runtime's engines and interchangeable with counting.Runner values.
type Runner = runtime.Engine

// viewMsg is the per-round broadcast: the sender's current class, its
// id-free hash (for engine-independent canonical ordering), and a snapshot
// of its view bitset.
type viewMsg struct {
	cur  int32
	hash uint64
	bits []uint64
}

// canonMsg orders inboxes by the structural hash of the sender's class.
// Ties are broken by the engines' stable sort; the protocol's merges are
// commutative, so delivery order never affects the outcome.
func canonMsg(m runtime.Message) string {
	vm, ok := m.(viewMsg)
	if !ok {
		return runtime.DefaultCanon(m)
	}
	return fmt.Sprintf("h:%016x:%d", vm.hash, len(vm.bits))
}

// proc is a non-leader process: it tracks its current class and its view,
// and each round extends the tree with the class multiset it heard.
type proc struct {
	tree    *Tree
	view    View
	cur     int32
	curHash uint64
	heard   []int32   // scratch: sender classes this round
	pairs   []RedEdge // scratch: the multiset passed to Extend
}

func newProc(t *Tree, leader bool) proc {
	p := proc{tree: t, cur: t.Root(leader)}
	p.curHash = t.Hash(p.cur)
	p.view.Add(p.cur)
	return p
}

func (p *proc) Send(int) runtime.Message {
	return viewMsg{cur: p.cur, hash: p.curHash, bits: p.view.Snapshot()}
}

// absorb performs the round's receive: intern the new class, merge the
// received views, and record the new class in the view. When added is
// non-nil, every newly visible class id is appended to it (the leader's
// incremental index); the returned slice is the extended scratch.
func (p *proc) absorb(msgs []runtime.Message, added []int32) []int32 {
	p.heard = p.heard[:0]
	for _, m := range msgs {
		if vm, ok := m.(viewMsg); ok {
			p.heard = append(p.heard, vm.cur)
		}
	}
	slices.Sort(p.heard)
	p.pairs = p.pairs[:0]
	for i := 0; i < len(p.heard); {
		j := i
		for j < len(p.heard) && p.heard[j] == p.heard[i] {
			j++
		}
		p.pairs = append(p.pairs, RedEdge{Class: p.heard[i], Mult: int32(j - i)})
		i = j
	}
	p.cur = p.tree.Extend(p.cur, p.pairs)
	p.curHash = p.tree.Hash(p.cur)
	for _, m := range msgs {
		if vm, ok := m.(viewMsg); ok {
			if added != nil {
				added = p.view.MergeCollect(vm.bits, added)
			} else {
				p.view.Merge(vm.bits)
			}
		}
	}
	if p.view.Add(p.cur) && added != nil {
		added = append(added, p.cur)
	}
	return added
}

func (p *proc) Receive(_ int, msgs []runtime.Message) {
	p.absorb(msgs, nil)
}

// classInfo is the leader's lock-free cache of a class's structure.
type classInfo struct {
	level  int32
	parent int32
	red    []RedEdge
}

// pairState classifies a level pair in the leader's current view.
type pairState int

const (
	// pairStable: every visible level-t class has exactly one visible
	// child — the pair looks stable and can be solved.
	pairStable pairState = iota
	// pairUnstable: some level-t class has two or more visible children.
	// Views only grow, so the pair is unstable forever.
	pairUnstable
	// pairIncomplete: some level-t class has no visible child yet; more
	// information must arrive before the pair can be classified.
	pairIncomplete
)

// leaderProc is the leader: besides the shared process behavior it indexes
// visible classes by level, detects the earliest stable level pair, solves
// the red-edge cardinality equations, and applies a conservative
// acceptance rule before terminating with the count.
type leaderProc struct {
	proc
	perLevel [][]int32   // visible class ids, grouped by level
	info     []classInfo // cache indexed by class id
	own      []int32     // own[t] = the leader's class at level t
	added    []int32     // scratch for MergeCollect

	childOf map[int32]int32   // scratch: level-t class -> unique child
	cards   map[int32]big.Rat // scratch: solved cardinalities
	queue   []int32           // scratch: BFS frontier

	minUnstable int // levels below this are proven unstable forever

	haveCand    bool
	candT       int // candidate stable level
	candN       int // candidate count
	candPrefix  int // visible classes at levels <= candT+1 when adopted
	stableSince int // round index at which the candidate was adopted

	count int
	done  bool
}

func newLeaderProc(t *Tree) *leaderProc {
	l := &leaderProc{
		proc: newProc(t, true),
		// added must start non-nil: absorb treats a nil slice as "do not
		// collect", which is the non-leader path.
		added:   make([]int32, 0, 64),
		childOf: make(map[int32]int32),
		cards:   make(map[int32]big.Rat),
	}
	l.own = append(l.own, l.cur)
	l.note(l.cur)
	return l
}

// note indexes a newly visible class by level and caches its structure.
func (l *leaderProc) note(id int32) {
	for int(id) >= len(l.info) {
		l.info = append(l.info, classInfo{level: -1})
	}
	if l.info[id].level < 0 {
		lv, parent, red := l.tree.Info(id)
		l.info[id] = classInfo{level: int32(lv), parent: parent, red: red}
	}
	lv := int(l.info[id].level)
	for lv >= len(l.perLevel) {
		l.perLevel = append(l.perLevel, nil)
	}
	l.perLevel[lv] = append(l.perLevel[lv], id)
}

func (l *leaderProc) Receive(r int, msgs []runtime.Message) {
	if l.done {
		return
	}
	l.added = l.absorb(msgs, l.added[:0])
	for _, id := range l.added {
		l.note(id)
	}
	l.own = append(l.own, l.cur)
	l.evaluate(r)
}

func (l *leaderProc) Output() (int, bool) { return l.count, l.done }

// evaluate runs the termination rule after round r: find the earliest
// stable, solvable level pair and accept its count n̂ once (a) at least
// candT+1+2n̂ rounds have completed, and (b) the view restricted to levels
// <= candT+1 has not changed for n̂ consecutive rounds.
//
// Rationale: every class is flooded to the leader within n-1 rounds of its
// creation (1-interval connectivity), so a hidden class split below the
// candidate pair — the only way the candidate can be wrong — surfaces
// within n-1 rounds and resets the candidate. The rule is therefore sound
// whenever n <= 2n̂+1, i.e. whenever the accepted candidate accounts for
// at least half the network; the candidate derived from the true stable
// pair (which exists at level <= n-2) always does, with n̂ = n. Both
// thresholds are <= 3n+O(1) when the candidate is true, which is the O(n)
// termination the slope tests assert. The full adversarial termination
// analysis of arXiv:2204.02128 §4 is beyond this reproduction; the
// histtree-count check oracle cross-validates the rule against ground
// truth on randomized ℳ(DBL)₂ schedules.
func (l *leaderProc) evaluate(r int) {
	t, n, ok := l.candidate()
	if !ok {
		l.haveCand = false
		return
	}
	prefix := 0
	for lv := 0; lv <= t+1 && lv < len(l.perLevel); lv++ {
		prefix += len(l.perLevel[lv])
	}
	if !l.haveCand || t != l.candT || n != l.candN || prefix != l.candPrefix {
		l.haveCand = true
		l.candT, l.candN, l.candPrefix = t, n, prefix
		l.stableSince = r
	}
	if r+1 >= t+1+2*n && r-l.stableSince+1 >= n {
		l.count, l.done = n, true
	}
}

// candidate returns the earliest level pair that is stable and solvable in
// the current view, with its solved count.
func (l *leaderProc) candidate() (t, n int, ok bool) {
	for t := l.minUnstable; t+1 < len(l.perLevel); t++ {
		switch l.classify(t) {
		case pairUnstable:
			l.minUnstable = t + 1
		case pairIncomplete:
			return 0, 0, false
		case pairStable:
			if n, ok := l.solve(t); ok {
				return t, n, true
			}
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// classify inspects the pair (t, t+1), filling childOf when stable.
func (l *leaderProc) classify(t int) pairState {
	clear(l.childOf)
	for _, id := range l.perLevel[t+1] {
		p := l.info[id].parent
		if prev, seen := l.childOf[p]; seen && prev != id {
			return pairUnstable
		}
		l.childOf[p] = id
	}
	for _, id := range l.perLevel[t] {
		if _, seen := l.childOf[id]; !seen {
			return pairIncomplete
		}
	}
	return pairStable
}

// solve derives every class cardinality at the stable pair (t, t+1) and
// returns their sum. At a stable pair |A'| = |A| for the unique child A'
// of every class A, so counting the round-(t+1) messages between classes
// A and B both ways gives |A|·mult(A'→B) = |B|·mult(B'→A). The leader's
// class has cardinality 1 (its input is unique), and the round-(t+1)
// communication graph is connected, so a BFS over red edges determines
// every cardinality; the solution must be positive integers consistent on
// every edge and must cover every visible class, else the view is still
// incomplete and there is no candidate this round.
func (l *leaderProc) solve(t int) (int, bool) {
	clear(l.cards)
	start := l.own[t]
	var one big.Rat
	one.SetInt64(1)
	l.cards[start] = one
	l.queue = append(l.queue[:0], start)
	for len(l.queue) > 0 {
		a := l.queue[0]
		l.queue = l.queue[1:]
		ca := l.cards[a]
		for _, e := range l.info[l.childOf[a]].red {
			b := e.Class
			if b == a {
				continue
			}
			// mult(B'→A): how many messages each B member heard from A.
			var back int32
			for _, be := range l.info[l.childOf[b]].red {
				if be.Class == a {
					back = be.Mult
					break
				}
			}
			if back == 0 {
				// A heard B but no B member heard A: impossible over
				// undirected edges at a true stable pair.
				return 0, false
			}
			// |B| = |A| · mult(A'→B) / mult(B'→A).
			var cb big.Rat
			cb.Mul(&ca, big.NewRat(int64(e.Mult), int64(back)))
			if prev, seen := l.cards[b]; seen {
				if prev.Cmp(&cb) != 0 {
					return 0, false
				}
				continue
			}
			l.cards[b] = cb
			l.queue = append(l.queue, b)
		}
	}
	if len(l.cards) != len(l.perLevel[t]) {
		// Some visible class is not yet red-connected to the leader's:
		// the view is missing edges, wait for more information.
		return 0, false
	}
	total := 0
	for _, c := range l.cards {
		if !c.IsInt() || c.Sign() <= 0 {
			return 0, false
		}
		total += int(c.Num().Int64())
	}
	return total, true
}

// Count runs the history-tree counting protocol on net with the given
// leader and returns the exact node count and the rounds used. The network
// must be 1-interval connected over the execution (validated up front);
// termination is O(n) rounds — at most ~3n — on every such network for
// which the conservative acceptance rule (see evaluate) applies, which
// includes all families exercised in this repository.
func Count(net dynet.Dynamic, leader graph.NodeID, maxRounds int, run Runner) (count, rounds int, err error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return 0, 0, fmt.Errorf("histtree: leader %d out of range [0,%d)", leader, n)
	}
	if maxRounds < 1 {
		return 0, 0, fmt.Errorf("histtree: maxRounds must be >= 1, got %d", maxRounds)
	}
	if err := dynet.VerifyIntervalConnectivity(net, maxRounds); err != nil {
		return 0, 0, fmt.Errorf("histtree: counting requires 1-interval connectivity: %w", err)
	}
	tree := New()
	procs := make([]runtime.Process, n)
	for i := range procs {
		if graph.NodeID(i) == leader {
			procs[i] = newLeaderProc(tree)
		} else {
			p := newProc(tree, false)
			procs[i] = &p
		}
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canonMsg,
		MaxRounds: maxRounds,
	}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("histtree: leader did not terminate within %d rounds", maxRounds)
	}
	return value, rounds, nil
}
