package histtree

import (
	"fmt"
	"math/big"
	"math/bits"
	"slices"
	"strconv"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// Runner is an execution engine; the alias keeps Count runnable on any of
// runtime's engines and interchangeable with counting.Runner values.
type Runner = runtime.Engine

// viewMsg is the legacy full-snapshot broadcast: the sender's current
// class, its id-free hash, and a copy of its view bitset. Current senders
// broadcast *viewDelta (see delta.go); viewMsg remains accepted by every
// receiver and ordered by the same canon, so full-snapshot and delta
// senders interoperate within one execution.
type viewMsg struct {
	cur  int32
	hash uint64
	bits []uint64
}

// canonKey orders inboxes by the structural hash of the sender's class —
// the allocation-free uint64 fast path the engines prefer over canonMsg.
// Ties (hash collisions, or two members of the same class) are broken by
// the engines' stable sort on sender id; the protocol's merges are
// commutative, so delivery order never affects the outcome. Non-protocol
// messages never occur in a Count run; they all map to key 0.
func canonKey(m runtime.Message) uint64 {
	switch vm := m.(type) {
	case *viewDelta:
		return vm.hash
	case viewMsg:
		return vm.hash
	}
	return 0
}

// canonMsg is the string canon retained as the engines' fallback when no
// CanonKey is configured (and for mixed-protocol runs that need
// DefaultCanon for foreign messages). It performs exactly one allocation —
// the final string — instead of going through fmt.
func canonMsg(m runtime.Message) string {
	var h uint64
	var n int
	switch vm := m.(type) {
	case *viewDelta:
		h, n = vm.hash, len(vm.base)
	case viewMsg:
		h, n = vm.hash, len(vm.bits)
	default:
		return runtime.DefaultCanon(m)
	}
	const hexdigits = "0123456789abcdef"
	var buf [40]byte
	b := append(buf[:0], 'h', ':')
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexdigits[(h>>uint(shift))&0xf])
	}
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(n), 10)
	return string(b)
}

// proc is a non-leader process: it tracks its current class and its view,
// and each round extends the tree with the class multiset it heard. Its
// broadcast is delta-encoded: base is the immutable snapshot shared by
// every message since the last rebase, delta the class ids added since.
type proc struct {
	tree    *Tree
	view    View
	cur     int32
	curHash uint64
	heard   []int32   // scratch: sender classes this round
	pairs   []RedEdge // scratch: the multiset passed to Extend

	base      []uint64    // current base snapshot (one of baseBufs)
	baseBufs  [2][]uint64 // alternating rebase targets; see delta.go
	baseIdx   int         // which buffer base points at
	epoch     int32       // rebase counter carried in outgoing messages
	delta     []wordMask  // view bits added since base was taken
	published int         // delta entries frozen by the last Send
	out       viewDelta   // reused outgoing message (see delta.go)
	seen      mergeCache  // bases already merged, for delta-suffix skipping
}

func newProc(t *Tree, leader bool) proc {
	p := proc{tree: t, cur: t.Root(leader)}
	p.curHash = t.Hash(p.cur)
	p.view.Add(p.cur)
	p.delta = append(p.delta, wordMask{w: p.cur >> 6, mask: 1 << uint(p.cur&63)})
	return p
}

func (p *proc) Send(int) runtime.Message {
	if p.base == nil || len(p.delta) >= rebaseThreshold(len(p.view.bits)) {
		// Rebase into the buffer published two epochs ago — no message
		// referencing it is still live (see delta.go) — so the steady
		// state recycles two buffers instead of allocating snapshots.
		p.baseIdx ^= 1
		buf := append(p.baseBufs[p.baseIdx][:0], p.view.bits...)
		p.baseBufs[p.baseIdx] = buf
		p.base = buf
		p.epoch++
		p.delta = p.delta[:0]
		p.out.base = p.base
		p.out.epoch = p.epoch
	}
	p.out.cur, p.out.hash = p.cur, p.curHash
	// Refresh the delta header only when it changed: its length grows
	// strictly between Sends (so equal length means no append happened and
	// the backing array is unchanged), and skipping the store avoids a
	// pointer write barrier on every per-neighbor Send.
	if len(p.out.delta) != len(p.delta) {
		p.out.delta = p.delta
	}
	p.published = len(p.delta)
	return &p.out
}

// absorb performs the round's receive: intern the new class, merge the
// received views, and record the new class in the view. Every newly
// visible class id lands in p.delta; the returned index marks where this
// round's additions start, so the leader can index them incrementally.
// Entries below the returned index are never mutated during the receive:
// addDelta coalesces only into entries past the published mark, which
// equals len(p.delta) when the receive begins.
func (p *proc) absorb(msgs []runtime.Message) int {
	p.heard = p.heard[:0]
	for _, m := range msgs {
		switch vm := m.(type) {
		case *viewDelta:
			p.heard = append(p.heard, vm.cur)
		case viewMsg:
			p.heard = append(p.heard, vm.cur)
		}
	}
	slices.Sort(p.heard)
	p.pairs = p.pairs[:0]
	for i := 0; i < len(p.heard); {
		j := i
		for j < len(p.heard) && p.heard[j] == p.heard[i] {
			j++
		}
		p.pairs = append(p.pairs, RedEdge{Class: p.heard[i], Mult: int32(j - i)})
		i = j
	}
	p.cur, p.curHash = p.tree.ExtendHash(p.cur, p.pairs)
	start := len(p.delta)
	for _, m := range msgs {
		p.mergeMsg(m)
	}
	w := int(p.cur >> 6)
	m := uint64(1) << uint(p.cur&63)
	if w >= len(p.view.bits) {
		p.view.grow(w)
	}
	if p.view.bits[w]&m == 0 {
		p.view.bits[w] |= m
		p.addDelta(int32(w), m)
	}
	return start
}

func (p *proc) Receive(_ int, msgs []runtime.Message) {
	p.absorb(msgs)
}

// classInfo is the leader's lock-free cache of a class's structure.
type classInfo struct {
	level  int32
	parent int32
	red    []RedEdge
}

// pairState classifies a level pair in the leader's current view.
type pairState int

const (
	// pairStable: every visible level-t class has exactly one visible
	// child — the pair looks stable and can be solved.
	pairStable pairState = iota
	// pairUnstable: some level-t class has two or more visible children.
	// Views only grow, so the pair is unstable forever.
	pairUnstable
	// pairIncomplete: some level-t class has no visible child yet; more
	// information must arrive before the pair can be classified.
	pairIncomplete
)

// pairCache memoizes the last classify/solve of one level pair. Both
// computations depend only on the classes visible at levels t and t+1 —
// sets that are append-only — and on immutable per-class structure, so
// (t, len(perLevel[t]), len(perLevel[t+1])) identifies the inputs exactly:
// while the candidate pair hasn't moved and no new class has surfaced at
// its levels, the previous verdict (and solved count) is reused verbatim.
// candidate() probes levels in ascending order ending at the level it
// reports on, so the single slot always holds the pair the next round
// probes first.
type pairCache struct {
	t           int
	tLen, t1Len int
	state       pairState
	solved      bool
	solvedN     int
	solvedOK    bool
}

// leaderProc is the leader: besides the shared process behavior it indexes
// visible classes by level, detects the earliest stable level pair, solves
// the red-edge cardinality equations, and applies a conservative
// acceptance rule before terminating with the count.
type leaderProc struct {
	proc
	perLevel [][]int32   // visible class ids, grouped by level
	info     []classInfo // cache indexed by class id
	own      []int32     // own[t] = the leader's class at level t

	// childOf/fcards are dense per-class-id scratch tables with generation
	// stamps: an entry is live only when its stamp equals the current
	// generation, so "clearing" is one counter increment instead of a map
	// clear, and lookups are array indexing instead of map probes. Ids are
	// dense intern ids, bounded by len(info).
	childOf  []int32  // scratch: level-t class -> unique child
	childGen []uint32 // stamp validating childOf entries
	chGen    uint32   // current childOf generation
	fcards   []frac   // scratch: int64 solve cardinalities
	fcGen    []uint32 // stamp validating fcards entries
	fcGenID  uint32   // current fcards generation
	queue    []int32  // scratch: BFS frontier (index-cursor, reused)

	cards   map[int32]*big.Rat // scratch: big.Rat spill-path cardinalities
	ratPool []*big.Rat         // persistent pool backing cards values
	ratio   big.Rat            // scratch: per-edge mult ratio

	cache pairCache

	minUnstable int // levels below this are proven unstable forever

	haveCand    bool
	candT       int // candidate stable level
	candN       int // candidate count
	candPrefix  int // visible classes at levels <= candT+1 when adopted
	stableSince int // round index at which the candidate was adopted

	count int
	done  bool
}

func newLeaderProc(t *Tree) *leaderProc {
	l := &leaderProc{
		proc:  newProc(t, true),
		info:  make([]classInfo, 0, 1024),
		cards: make(map[int32]*big.Rat),
		cache: pairCache{t: -1},
	}
	l.own = append(l.own, l.cur)
	l.note(l.cur)
	return l
}

// note indexes a newly visible class by level and caches its structure.
func (l *leaderProc) note(id int32) {
	l.tree.mu.RLock()
	l.noteLocked(id)
	l.tree.mu.RUnlock()
}

// noteLocked is note under the tree's read lock, so a batch of newly
// visible classes costs one lock acquisition (same-package access; the
// tree's nodes and arena are append-only under the write lock).
func (l *leaderProc) noteLocked(id int32) {
	for int(id) >= len(l.info) {
		l.info = append(l.info, classInfo{level: -1})
	}
	if l.info[id].level < 0 {
		n := &l.tree.nodes[id]
		l.info[id] = classInfo{level: n.level, parent: n.parent, red: l.tree.red(n)}
	}
	lv := int(l.info[id].level)
	for lv >= len(l.perLevel) {
		l.perLevel = append(l.perLevel, nil)
	}
	l.perLevel[lv] = append(l.perLevel[lv], id)
}

func (l *leaderProc) Receive(r int, msgs []runtime.Message) {
	if l.done {
		return
	}
	start := l.absorb(msgs)
	// p.delta accumulates across rounds (until a rebase at Send); the
	// suffix past start is exactly this round's newly visible classes.
	if start < len(l.delta) {
		l.tree.mu.RLock()
		for _, e := range l.delta[start:] {
			base := e.w << 6
			for m := e.mask; m != 0; m &= m - 1 {
				l.noteLocked(base + int32(bits.TrailingZeros64(m)))
			}
		}
		l.tree.mu.RUnlock()
	}
	l.own = append(l.own, l.cur)
	l.evaluate(r)
}

func (l *leaderProc) Output() (int, bool) { return l.count, l.done }

// evaluate runs the termination rule after round r: find the earliest
// stable, solvable level pair and accept its count n̂ once (a) at least
// candT+1+2n̂ rounds have completed, and (b) the view restricted to levels
// <= candT+1 has not changed for n̂ consecutive rounds.
//
// Rationale: every class is flooded to the leader within n-1 rounds of its
// creation (1-interval connectivity), so a hidden class split below the
// candidate pair — the only way the candidate can be wrong — surfaces
// within n-1 rounds and resets the candidate. The rule is therefore sound
// whenever n <= 2n̂+1, i.e. whenever the accepted candidate accounts for
// at least half the network; the candidate derived from the true stable
// pair (which exists at level <= n-2) always does, with n̂ = n. Both
// thresholds are <= 3n+O(1) when the candidate is true, which is the O(n)
// termination the slope tests assert. The full adversarial termination
// analysis of arXiv:2204.02128 §4 is beyond this reproduction; the
// histtree-count check oracle cross-validates the rule against ground
// truth on randomized ℳ(DBL)₂ schedules.
func (l *leaderProc) evaluate(r int) {
	t, n, ok := l.candidate()
	if !ok {
		l.haveCand = false
		return
	}
	prefix := 0
	for lv := 0; lv <= t+1 && lv < len(l.perLevel); lv++ {
		prefix += len(l.perLevel[lv])
	}
	if !l.haveCand || t != l.candT || n != l.candN || prefix != l.candPrefix {
		l.haveCand = true
		l.candT, l.candN, l.candPrefix = t, n, prefix
		l.stableSince = r
	}
	if r+1 >= t+1+2*n && r-l.stableSince+1 >= n {
		l.count, l.done = n, true
	}
}

// candidate returns the earliest level pair that is stable and solvable in
// the current view, with its solved count.
func (l *leaderProc) candidate() (t, n int, ok bool) {
	for t := l.minUnstable; t+1 < len(l.perLevel); t++ {
		switch l.classify(t) {
		case pairUnstable:
			l.minUnstable = t + 1
		case pairIncomplete:
			return 0, 0, false
		case pairStable:
			if n, ok := l.solve(t); ok {
				return t, n, true
			}
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// classify inspects the pair (t, t+1), filling childOf when the verdict is
// not cached. A cache hit leaves childOf untouched: its contents still
// describe the cached pair, because no class has appeared at either level
// since it was filled.
func (l *leaderProc) classify(t int) pairState {
	if l.cache.t == t && l.cache.tLen == len(l.perLevel[t]) && l.cache.t1Len == len(l.perLevel[t+1]) {
		return l.cache.state
	}
	l.cache = pairCache{t: t, tLen: len(l.perLevel[t]), t1Len: len(l.perLevel[t+1])}
	for len(l.childOf) < len(l.info) {
		l.childOf = append(l.childOf, 0)
		l.childGen = append(l.childGen, 0)
	}
	l.chGen++
	st := pairStable
	for _, id := range l.perLevel[t+1] {
		p := l.info[id].parent
		if l.childGen[p] == l.chGen && l.childOf[p] != id {
			st = pairUnstable
			break
		}
		l.childOf[p] = id
		l.childGen[p] = l.chGen
	}
	if st == pairStable {
		for _, id := range l.perLevel[t] {
			if l.childGen[id] != l.chGen {
				st = pairIncomplete
				break
			}
		}
	}
	l.cache.state = st
	return st
}

// Count runs the history-tree counting protocol on net with the given
// leader and returns the exact node count and the rounds used. The network
// must be 1-interval connected over the execution (validated up front);
// termination is O(n) rounds — at most ~3n — on every such network for
// which the conservative acceptance rule (see evaluate) applies, which
// includes all families exercised in this repository.
func Count(net dynet.Dynamic, leader graph.NodeID, maxRounds int, run Runner) (count, rounds int, err error) {
	n := net.N()
	if int(leader) < 0 || int(leader) >= n {
		return 0, 0, fmt.Errorf("histtree: leader %d out of range [0,%d)", leader, n)
	}
	if maxRounds < 1 {
		return 0, 0, fmt.Errorf("histtree: maxRounds must be >= 1, got %d", maxRounds)
	}
	if err := dynet.VerifyIntervalConnectivity(net, maxRounds); err != nil {
		return 0, 0, fmt.Errorf("histtree: counting requires 1-interval connectivity: %w", err)
	}
	tree := New()
	procs := make([]runtime.Process, n)
	for i := range procs {
		if graph.NodeID(i) == leader {
			procs[i] = newLeaderProc(tree)
		} else {
			p := newProc(tree, false)
			procs[i] = &p
		}
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canonMsg,
		CanonKey:  canonKey,
		MaxRounds: maxRounds,
	}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), run)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, rounds, fmt.Errorf("histtree: leader did not terminate within %d rounds", maxRounds)
	}
	return value, rounds, nil
}
