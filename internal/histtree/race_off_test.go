//go:build !race

package histtree

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under it (the detector's shadow memory inflates
// alloc counts).
const raceEnabled = false
