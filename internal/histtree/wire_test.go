package histtree

import (
	"testing"

	"anondyn/internal/dynet"
	"anondyn/internal/graph"
	"anondyn/internal/runtime"
)

// snapshotProc is a legacy full-snapshot sender: same protocol state
// machine, but every broadcast is a viewMsg carrying a fresh copy of the
// whole bitset, as the pre-delta wire format did.
type snapshotProc struct {
	proc
}

func (p *snapshotProc) Send(int) runtime.Message {
	return viewMsg{cur: p.cur, hash: p.curHash, bits: p.view.Snapshot()}
}

// runMixed replicates Count's harness with every third process (leader
// excluded) demoted to the legacy full-snapshot wire format.
func runMixed(t *testing.T, net dynet.Dynamic, leader graph.NodeID, maxRounds int) (int, int) {
	t.Helper()
	n := net.N()
	tree := New()
	procs := make([]runtime.Process, n)
	for i := range procs {
		switch {
		case graph.NodeID(i) == leader:
			procs[i] = newLeaderProc(tree)
		case i%3 == 0:
			procs[i] = &snapshotProc{proc: newProc(tree, false)}
		default:
			p := newProc(tree, false)
			procs[i] = &p
		}
	}
	cfg := &runtime.Config{
		Net:       net,
		Procs:     procs,
		Canon:     canonMsg,
		CanonKey:  canonKey,
		MaxRounds: maxRounds,
	}
	value, rounds, ok, err := runtime.RunUntilOutput(cfg, int(leader), runtime.RunSequential)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("mixed-wire leader did not terminate within %d rounds", maxRounds)
	}
	return value, rounds
}

// TestWireCompatMixedSenders runs the counting protocol with delta-encoded
// and legacy full-snapshot senders side by side. base ∪ delta is the full
// view, so a receiver must compute the identical result — same count, same
// round — whichever encoding each neighbor speaks.
func TestWireCompatMixedSenders(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25} {
		g, err := graph.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		net := dynet.NewStatic(g)
		budget := 4*n + 10
		count, rounds, err := Count(net, 0, budget, runtime.RunSequential)
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("n=%d: pure-delta Count = %d", n, count)
		}
		mixedCount, mixedRounds := runMixed(t, net, 0, budget)
		if mixedCount != count || mixedRounds != rounds {
			t.Fatalf("n=%d: mixed wire = (%d, %d rounds), pure delta = (%d, %d rounds)",
				n, mixedCount, mixedRounds, count, rounds)
		}
	}
}
