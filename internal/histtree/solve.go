package histtree

import (
	"math/big"
	"math/bits"
)

// Red-edge cardinality solve. At a stable pair (t, t+1), |A|·mult(A'→B) =
// |B|·mult(B'→A) for every red edge between the unique children A', B' of
// level-t classes A, B, the leader's class has cardinality 1, and the
// round-(t+1) communication graph is connected — so a BFS over red edges
// determines every cardinality. The fast path propagates exact rationals
// in int64 numerator/denominator pairs (kept reduced, so equality is
// struct equality); any multiplication that would overflow spills the
// whole solve to the retained big.Rat reference implementation, mirroring
// linalg's Bareiss elimination. Cardinalities are positive throughout, so
// the fast path never needs sign handling.

// frac is a positive rational in lowest terms (num, den > 0, gcd 1).
type frac struct{ num, den int64 }

// mulPos64 multiplies two positive int64s, reporting overflow.
func mulPos64(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1<<63-1) {
		return 0, false
	}
	return int64(lo), true
}

// addPos64 adds two positive int64s, reporting overflow.
func addPos64(a, b int64) (int64, bool) {
	s := a + b
	if s < a {
		return 0, false
	}
	return s, true
}

// gcdPos64 is Euclid's algorithm on positive int64s.
func gcdPos64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mulFrac computes a · (num/den) in lowest terms, reporting overflow.
// Cross-reducing before the multiplications keeps intermediates minimal,
// so the fast path spills only when the reduced result itself is near the
// int64 range. The final gcd pass is still required: cross-reduction only
// cancels across the two factors (a.num with den, num with a.den), so a
// common factor within one factor — e.g. 1/1 · 10650/1775 — survives it,
// and an unreduced result would break both the den==1 integrality check
// and frac's equality-by-struct-comparison invariant.
func mulFrac(a frac, num, den int64) (frac, bool) {
	if g := gcdPos64(a.num, den); g > 1 {
		a.num /= g
		den /= g
	}
	if g := gcdPos64(num, a.den); g > 1 {
		num /= g
		a.den /= g
	}
	n, ok := mulPos64(a.num, num)
	if !ok {
		return frac{}, false
	}
	d, ok := mulPos64(a.den, den)
	if !ok {
		return frac{}, false
	}
	if g := gcdPos64(n, d); g > 1 {
		n /= g
		d /= g
	}
	return frac{num: n, den: d}, true
}

// solve derives every class cardinality at the stable pair (t, t+1) and
// returns their sum, answering from the single-slot cache when the pair's
// visible classes have not changed since the last solve (see pairCache).
// classify(t) must have returned pairStable immediately before, so childOf
// holds the unique-child map for level t.
func (l *leaderProc) solve(t int) (int, bool) {
	if l.cache.solved {
		// classify(t) just cache-hit on (t, level sizes), so the solve
		// inputs — childOf, the red edges, own[t] — are also unchanged.
		return l.cache.solvedN, l.cache.solvedOK
	}
	n, ok := l.solveFast(t)
	if n < 0 {
		// An int64 overflow: redo with exact big rationals.
		n, ok = l.solveRat(t)
	}
	l.cache.solved, l.cache.solvedN, l.cache.solvedOK = true, n, ok
	return n, ok
}

// backMult returns mult(B'→A): how many messages each member of class b
// heard from class a in round t+1, or 0 if none (including when b has no
// live childOf entry — defensively treated as "no back edge", which makes
// the solve report the view incomplete).
func (l *leaderProc) backMult(a, b int32) int32 {
	if int(b) >= len(l.childGen) || l.childGen[b] != l.chGen {
		return 0
	}
	for _, be := range l.info[l.childOf[b]].red {
		if be.Class == a {
			return be.Mult
		}
	}
	return 0
}

// solveFast is the int64 solve. It returns (-1, false) when any step
// overflows int64, in which case the caller must fall back to solveRat;
// on every non-overflowing input it returns bit-for-bit the same result
// as solveRat.
func (l *leaderProc) solveFast(t int) (int, bool) {
	for len(l.fcards) < len(l.info) {
		l.fcards = append(l.fcards, frac{})
		l.fcGen = append(l.fcGen, 0)
	}
	l.fcGenID++
	start := l.own[t]
	l.fcards[start] = frac{num: 1, den: 1}
	l.fcGen[start] = l.fcGenID
	l.queue = append(l.queue[:0], start)
	// Index-cursor BFS: the queue slice is never re-sliced from the head,
	// so its capacity is reused across rounds instead of leaking away.
	// Every carded class is enqueued exactly once, so after the BFS the
	// queue is the set of solved classes in deterministic order.
	for qi := 0; qi < len(l.queue); qi++ {
		a := l.queue[qi]
		ca := l.fcards[a]
		for _, e := range l.info[l.childOf[a]].red {
			b := e.Class
			if b == a {
				continue
			}
			back := l.backMult(a, b)
			if back == 0 {
				// A heard B but no B member heard A: impossible over
				// undirected edges at a true stable pair.
				return 0, false
			}
			// |B| = |A| · mult(A'→B) / mult(B'→A).
			cb, ok := mulFrac(ca, int64(e.Mult), int64(back))
			if !ok {
				return -1, false
			}
			if l.fcGen[b] == l.fcGenID {
				if l.fcards[b] != cb {
					return 0, false
				}
				continue
			}
			l.fcards[b] = cb
			l.fcGen[b] = l.fcGenID
			l.queue = append(l.queue, b)
		}
	}
	if len(l.queue) != len(l.perLevel[t]) {
		// Some visible class is not yet red-connected to the leader's:
		// the view is missing edges, wait for more information.
		return 0, false
	}
	total := int64(0)
	for _, id := range l.queue {
		c := l.fcards[id]
		if c.den != 1 {
			return 0, false
		}
		var ok bool
		if total, ok = addPos64(total, c.num); !ok {
			return -1, false
		}
	}
	if total > int64(int(^uint(0)>>1)) {
		return -1, false
	}
	return int(total), true
}

// ratAt returns the i-th pooled big.Rat, growing the pool as needed. The
// pool persists across solves so the fallback path allocates rationals
// only on its high-water mark.
func (l *leaderProc) ratAt(i int) *big.Rat {
	for len(l.ratPool) <= i {
		l.ratPool = append(l.ratPool, new(big.Rat))
	}
	return l.ratPool[i]
}

// solveRat is the exact reference solve over big.Rat, used directly when
// solveFast overflows and kept as the differential-testing oracle. It
// allocates only via the persistent rat pool (plus big.Int growth inside
// the pooled values).
func (l *leaderProc) solveRat(t int) (int, bool) {
	clear(l.cards)
	used := 0
	start := l.own[t]
	one := l.ratAt(used)
	used++
	one.SetInt64(1)
	l.cards[start] = one
	l.queue = append(l.queue[:0], start)
	for qi := 0; qi < len(l.queue); qi++ {
		a := l.queue[qi]
		ca := l.cards[a]
		for _, e := range l.info[l.childOf[a]].red {
			b := e.Class
			if b == a {
				continue
			}
			back := l.backMult(a, b)
			if back == 0 {
				return 0, false
			}
			l.ratio.SetFrac64(int64(e.Mult), int64(back))
			cb := l.ratAt(used)
			cb.Mul(ca, &l.ratio)
			if prev, seen := l.cards[b]; seen {
				if prev.Cmp(cb) != 0 {
					return 0, false
				}
				continue
			}
			used++
			l.cards[b] = cb
			l.queue = append(l.queue, b)
		}
	}
	if len(l.queue) != len(l.perLevel[t]) {
		return 0, false
	}
	total := 0
	for _, id := range l.queue {
		c := l.cards[id]
		if !c.IsInt() || c.Sign() <= 0 {
			return 0, false
		}
		num := c.Num()
		if !num.IsInt64() {
			// A cardinality beyond int64 cannot be a real class size on
			// any network this harness can represent; reject rather than
			// truncate.
			return 0, false
		}
		v := num.Int64()
		if v > int64(int(^uint(0)>>1))-int64(total) {
			return 0, false
		}
		total += int(v)
	}
	return total, true
}
