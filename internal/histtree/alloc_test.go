package histtree

import (
	"testing"

	"anondyn/internal/runtime"
)

// TestNonLeaderRoundAllocCeiling locks the amortized allocation budget of
// the non-leader hot path: Send plus absorb, round after round. Two
// processes exchange delta views on a shared tree for many rounds; each
// round interns one new class per process (the miss path) and merges two
// messages, so the ceiling covers the amortized cost of every append the
// path performs — tree growth, arena growth, view growth, delta growth,
// and rebase snapshots — and fails if any of them stops amortizing (for
// example, a per-message snapshot or a per-round map would blow through
// it immediately: the pre-rework protocol spent ~14 allocations per
// process-round on snapshots alone).
func TestNonLeaderRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const rounds = 400
	tree := New()
	a := newProc(tree, true)
	b := newProc(tree, false)
	avg := testing.AllocsPerRun(1, func() {
		for r := 0; r < rounds; r++ {
			ma := a.Send(0)
			mb := b.Send(0)
			a.Receive(r, []runtime.Message{mb})
			b.Receive(r, []runtime.Message{ma})
		}
	})
	perRound := avg / (2 * rounds)
	if perRound > 1.0 {
		t.Fatalf("non-leader round path: %.2f allocs per process-round, want <= 1.0 (total %v over %d rounds)",
			perRound, avg, rounds)
	}
}

// TestCanonAllocCeiling pins the canonicalization costs the engines pay per
// message: the uint64 fast path must be allocation-free, and the string
// fallback must perform exactly its one documented allocation (the final
// string), not an fmt round trip.
func TestCanonAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	msg := &viewDelta{cur: 3, hash: 0x1234abcd5678ef90, base: make([]uint64, 7)}
	var sinkKey uint64
	if avg := testing.AllocsPerRun(100, func() {
		sinkKey += canonKey(msg)
	}); avg != 0 {
		t.Fatalf("canonKey: %v allocs/op, want 0", avg)
	}
	var sinkLen int
	if avg := testing.AllocsPerRun(100, func() {
		sinkLen += len(canonMsg(msg))
	}); avg > 1 {
		t.Fatalf("canonMsg: %v allocs/op, want <= 1", avg)
	}
	_ = sinkKey
	_ = sinkLen
}
