package linalg

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// benchMatrix draws a dense r x c matrix with entries in [-mag, mag]\{0}.
// mag selects the arithmetic regime: small magnitudes keep the whole
// elimination on the int64 fast path; magnitudes near 2^32 make the first
// pivot products overflow, so the run spills to big.Int almost immediately.
// Benchmarking both sides makes the fallback cliff visible in the output.
func benchMatrix(seed int64, r, c int, mag int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m, err := NewMatrix(r, c)
	if err != nil {
		panic(err)
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := rng.Int63n(2*mag) - mag
			if v >= 0 {
				v++
			}
			m.SetInt64(i, j, v)
		}
	}
	return m
}

func BenchmarkRREF(b *testing.B) {
	cases := []struct {
		name string
		mag  int64
	}{
		{"int64", 9},              // stays on the int64 fast path throughout
		{"spill", int64(1) << 32}, // overflows at the first pivot, runs big
	}
	for _, tc := range cases {
		for _, n := range []int{8, 16} {
			m := benchMatrix(1, n, n+1, tc.mag)
			b.Run(fmt.Sprintf("%s/%dx%d", tc.name, n, n+1), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.RREF()
				}
			})
		}
	}
}

func BenchmarkRREFReference(b *testing.B) {
	m := benchMatrix(1, 16, 17, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RREFReference()
	}
}

func BenchmarkDet(b *testing.B) {
	cases := []struct {
		name string
		mag  int64
	}{
		{"int64", 9},
		{"spill", int64(1) << 32},
	}
	for _, tc := range cases {
		for _, n := range []int{8, 16} {
			m := benchMatrix(2, n, n, tc.mag)
			b.Run(fmt.Sprintf("%s/%dx%d", tc.name, n, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.Det(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

var sinkRat [][]*big.Rat

func BenchmarkKernelBasis(b *testing.B) {
	m := benchMatrix(3, 12, 16, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.KernelBasis()
	}
	_ = sinkRat
}
