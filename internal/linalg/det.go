package linalg

import (
	"fmt"
	"math"
	"math/big"
)

// Det returns the determinant of a square matrix, computed with the
// fraction-free Bareiss algorithm: all intermediate values stay integral,
// so the result is exact. Used by tests of Lemma 2's base case
// (det(M_0 minor) = 1) and by consumers needing exact singularity checks.
//
// The computation first runs on native int64 with overflow checks and
// restarts on the big.Int path only if an intermediate product would not
// fit (the same fast-path/fallback design as rref; see bareiss.go).
func (m *Matrix) Det() (*big.Int, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: determinant of non-square %dx%d matrix", m.rows, m.cols)
	}
	if m.rows == 0 {
		return big.NewInt(1), nil
	}
	if d, ok := m.det64(); ok {
		return d, nil
	}
	return m.detBig(), nil
}

// det64 runs Bareiss forward elimination on int64. It reports false if any
// input entry or intermediate value does not fit, in which case the caller
// restarts on the big.Int path (a det call is cheap enough that resuming
// mid-stream, as rref does, is not worth the bookkeeping here).
func (m *Matrix) det64() (*big.Int, bool) {
	n := m.rows
	a := make([]int64, n*n)
	for i, e := range m.a {
		if !e.IsInt64() {
			return nil, false
		}
		a[i] = e.Int64()
	}
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if a[k*n+k] == 0 {
			swapped := false
			for i := k + 1; i < n; i++ {
				if a[i*n+k] != 0 {
					swapRows64(a, n, i, k)
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return new(big.Int), true // singular
			}
		}
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			f := a[i*n+k]
			for j := k + 1; j < n; j++ {
				t1, ok := mul64(piv, a[i*n+j])
				if !ok {
					return nil, false
				}
				t2, ok := mul64(f, a[k*n+j])
				if !ok {
					return nil, false
				}
				t3, ok := sub64(t1, t2)
				if !ok {
					return nil, false
				}
				if t3 == math.MinInt64 && prev == -1 {
					return nil, false
				}
				a[i*n+j] = t3 / prev // exact by Bareiss' theorem
			}
			a[i*n+k] = 0
		}
		prev = piv
	}
	det := a[n*n-1]
	if sign < 0 {
		if det == math.MinInt64 {
			return nil, false
		}
		det = -det
	}
	return big.NewInt(det), true
}

// detBig is the retained arbitrary-precision Bareiss elimination.
func (m *Matrix) detBig() *big.Int {
	n := m.rows
	// Work on a copy.
	a := make([][]*big.Int, n)
	for i := 0; i < n; i++ {
		a[i] = make([]*big.Int, n)
		for j := 0; j < n; j++ {
			a[i][j] = new(big.Int).Set(m.a[i*m.cols+j])
		}
	}
	sign := 1
	prev := big.NewInt(1)
	tmp := new(big.Int)
	for k := 0; k < n-1; k++ {
		// Pivot: find a non-zero entry in column k at or below row k.
		if a[k][k].Sign() == 0 {
			swapped := false
			for i := k + 1; i < n; i++ {
				if a[i][k].Sign() != 0 {
					a[k], a[i] = a[i], a[k]
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return new(big.Int) // singular
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				// a[i][j] = (a[i][j]*a[k][k] - a[i][k]*a[k][j]) / prev
				a[i][j].Mul(a[i][j], a[k][k])
				tmp.Mul(a[i][k], a[k][j])
				a[i][j].Sub(a[i][j], tmp)
				a[i][j].Quo(a[i][j], prev) // exact by Bareiss' theorem
			}
		}
		for i := k + 1; i < n; i++ {
			a[i][k].SetInt64(0)
		}
		prev.Set(a[k][k])
	}
	det := new(big.Int).Set(a[n-1][n-1])
	if sign < 0 {
		det.Neg(det)
	}
	return det
}
