package linalg

import (
	"fmt"
	"math/big"
)

// Det returns the determinant of a square matrix, computed with the
// fraction-free Bareiss algorithm: all intermediate values stay integral,
// so the result is exact. Used by tests of Lemma 2's base case
// (det(M_0 minor) = 1) and by consumers needing exact singularity checks.
func (m *Matrix) Det() (*big.Int, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: determinant of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	if n == 0 {
		return big.NewInt(1), nil
	}
	// Work on a copy.
	a := make([][]*big.Int, n)
	for i := 0; i < n; i++ {
		a[i] = make([]*big.Int, n)
		for j := 0; j < n; j++ {
			a[i][j] = new(big.Int).Set(m.a[i*m.cols+j])
		}
	}
	sign := 1
	prev := big.NewInt(1)
	tmp := new(big.Int)
	for k := 0; k < n-1; k++ {
		// Pivot: find a non-zero entry in column k at or below row k.
		if a[k][k].Sign() == 0 {
			swapped := false
			for i := k + 1; i < n; i++ {
				if a[i][k].Sign() != 0 {
					a[k], a[i] = a[i], a[k]
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return new(big.Int), nil // singular
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				// a[i][j] = (a[i][j]*a[k][k] - a[i][k]*a[k][j]) / prev
				a[i][j].Mul(a[i][j], a[k][k])
				tmp.Mul(a[i][k], a[k][j])
				a[i][j].Sub(a[i][j], tmp)
				a[i][j].Quo(a[i][j], prev) // exact by Bareiss' theorem
			}
		}
		for i := k + 1; i < n; i++ {
			a[i][k].SetInt64(0)
		}
		prev.Set(a[k][k])
	}
	det := new(big.Int).Set(a[n-1][n-1])
	if sign < 0 {
		det.Neg(det)
	}
	return det, nil
}
