package linalg

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDetKnownValues(t *testing.T) {
	cases := []struct {
		name string
		m    *Matrix
		want int64
	}{
		{"empty", MustFromInts(nil), 1},
		{"1x1", MustFromInts([][]int{{7}}), 7},
		{"identity3", MustFromInts([][]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}), 1},
		{"2x2", MustFromInts([][]int{{1, 2}, {3, 4}}), -2},
		{"singular", MustFromInts([][]int{{1, 2}, {2, 4}}), 0},
		{"needs pivot swap", MustFromInts([][]int{{0, 1}, {1, 0}}), -1},
		{"all-zero column", MustFromInts([][]int{{0, 1}, {0, 2}}), 0},
		// The square submatrix of the paper's M_0 dropping column 3.
		{"M0 minor", MustFromInts([][]int{{1, 0}, {0, 1}}), 1},
		{"3x3", MustFromInts([][]int{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}}), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.m.Det()
			if err != nil {
				t.Fatal(err)
			}
			if got.Int64() != tc.want {
				t.Fatalf("Det = %s, want %d", got, tc.want)
			}
		})
	}
}

func TestDetNonSquare(t *testing.T) {
	m := MustFromInts([][]int{{1, 2, 3}})
	if _, err := m.Det(); err == nil {
		t.Fatal("non-square determinant should error")
	}
}

// Property: det != 0 iff full rank, and det(A) is multilinear enough to
// flip sign under a row swap.
func TestDetRankConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		m, err := NewMatrix(n, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.SetInt64(i, j, int64(rng.Intn(7)-3))
			}
		}
		det, err := m.Det()
		if err != nil {
			return false
		}
		fullRank := m.Rank() == n
		if (det.Sign() != 0) != fullRank {
			return false
		}
		if n < 2 {
			return true
		}
		// Swap two rows: determinant negates.
		sw := m.Clone()
		for j := 0; j < n; j++ {
			a, b := sw.At(0, j), sw.At(1, j)
			sw.Set(0, j, b)
			sw.Set(1, j, a)
		}
		det2, err := sw.Det()
		if err != nil {
			return false
		}
		return det2.Cmp(new(big.Int).Neg(det)) == 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
