package linalg

import (
	"math/big"
	"strings"
)

// Vector is a slice of arbitrary-precision integers. It represents both the
// solution vectors s_r (non-negative node counts per state history) and the
// kernel vectors k_r of the paper.
type Vector []*big.Int

// NewVector returns a zero vector of the given length.
func NewVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

// VecFromInts builds a vector from int64 components.
func VecFromInts(vals ...int64) Vector {
	v := make(Vector, len(vals))
	for i, x := range vals {
		v[i] = big.NewInt(x)
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for i := range v {
		c[i] = new(big.Int).Set(v[i])
	}
	return c
}

// Add returns v + w. Panics if lengths differ (programmer error in this
// package's internal use; exported callers validate sizes upstream).
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic("linalg: vector length mismatch")
	}
	out := NewVector(len(v))
	for i := range v {
		out[i].Add(v[i], w[i])
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic("linalg: vector length mismatch")
	}
	out := NewVector(len(v))
	for i := range v {
		out[i].Sub(v[i], w[i])
	}
	return out
}

// Scale returns t*v.
func (v Vector) Scale(t *big.Int) Vector {
	out := NewVector(len(v))
	for i := range v {
		out[i].Mul(v[i], t)
	}
	return out
}

// Neg returns -v.
func (v Vector) Neg() Vector {
	out := NewVector(len(v))
	for i := range v {
		out[i].Neg(v[i])
	}
	return out
}

// Sum returns Σv, the sum of all components (the paper's Σa notation).
// For a solution vector s_r this is the number of non-leader processes.
func (v Vector) Sum() *big.Int {
	s := new(big.Int)
	for i := range v {
		s.Add(s, v[i])
	}
	return s
}

// SumPositive returns Σ⁺v, the sum of the positive components only.
func (v Vector) SumPositive() *big.Int {
	s := new(big.Int)
	for i := range v {
		if v[i].Sign() > 0 {
			s.Add(s, v[i])
		}
	}
	return s
}

// SumNegative returns |Σ⁻v|: the absolute value of the sum of the negative
// components. The paper's Lemma 4 uses Σ⁻k_r as a magnitude (the number of
// processes the adversary must place on the negative support), so we return
// it as a non-negative quantity.
func (v Vector) SumNegative() *big.Int {
	s := new(big.Int)
	for i := range v {
		if v[i].Sign() < 0 {
			s.Add(s, v[i])
		}
	}
	return s.Neg(s)
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i].Sign() != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is >= 0, i.e. whether the
// vector is realizable as a configuration of node counts.
func (v Vector) NonNegative() bool {
	for i := range v {
		if v[i].Sign() < 0 {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Cmp(w[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the vector as "[a b c]".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(v[i].String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// Append returns the concatenation [v; w], the paper's stacked-vector
// notation used in Lemma 3's recursive kernel construction.
func (v Vector) Append(w Vector) Vector {
	out := make(Vector, 0, len(v)+len(w))
	for i := range v {
		out = append(out, new(big.Int).Set(v[i]))
	}
	for i := range w {
		out = append(out, new(big.Int).Set(w[i]))
	}
	return out
}
