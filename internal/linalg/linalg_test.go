package linalg

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrix(t *testing.T) {
	m, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2).Sign() != 0 {
		t.Fatal("new matrix not zero")
	}
}

func TestNewMatrixNegative(t *testing.T) {
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Fatal("negative dims should error")
	}
}

func TestFromIntsRagged(t *testing.T) {
	if _, err := FromInts([][]int{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input should error")
	}
}

func TestMustFromIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromInts did not panic")
		}
	}()
	MustFromInts([][]int{{1}, {2, 3}})
}

func TestSetAndAt(t *testing.T) {
	m := MustFromInts([][]int{{0, 0}, {0, 0}})
	m.Set(0, 1, big.NewInt(7))
	m.SetInt64(1, 0, -3)
	if m.At(0, 1).Int64() != 7 || m.At(1, 0).Int64() != -3 {
		t.Fatalf("Set/At mismatch: %s", m)
	}
	// At returns a copy: mutating it must not affect the matrix.
	m.At(0, 1).SetInt64(99)
	if m.At(0, 1).Int64() != 7 {
		t.Fatal("At leaked internal storage")
	}
}

func TestCloneMatrix(t *testing.T) {
	m := MustFromInts([][]int{{1, 2}, {3, 4}})
	c := m.Clone()
	c.SetInt64(0, 0, 99)
	if m.At(0, 0).Int64() != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	// The paper's M_0 = [1 0 1; 0 1 1] with s = [0 0 2] gives m = [2 2]
	// (Figure 3's system of equations at round 0).
	m0 := MustFromInts([][]int{{1, 0, 1}, {0, 1, 1}})
	s := VecFromInts(0, 0, 2)
	got, err := m0.MulVec(s)
	if err != nil {
		t.Fatal(err)
	}
	want := VecFromInts(2, 2)
	if !got.Equal(want) {
		t.Fatalf("M0*s = %s, want %s", got, want)
	}
}

func TestMulVecBadLength(t *testing.T) {
	m := MustFromInts([][]int{{1, 2}})
	if _, err := m.MulVec(VecFromInts(1)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestRankFullAndDeficient(t *testing.T) {
	cases := []struct {
		name string
		m    *Matrix
		want int
	}{
		{"identity", MustFromInts([][]int{{1, 0}, {0, 1}}), 2},
		{"M0 of the paper", MustFromInts([][]int{{1, 0, 1}, {0, 1, 1}}), 2},
		{"dependent rows", MustFromInts([][]int{{1, 2}, {2, 4}}), 1},
		{"zero", MustFromInts([][]int{{0, 0}, {0, 0}}), 0},
		{"tall", MustFromInts([][]int{{1}, {2}, {3}}), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.Rank(); got != tc.want {
				t.Fatalf("Rank = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestKernelBasisM0(t *testing.T) {
	// ker(M_0) = span([1 1 -1]) — the paper's k_0.
	m0 := MustFromInts([][]int{{1, 0, 1}, {0, 1, 1}})
	basis := m0.KernelBasis()
	if len(basis) != 1 {
		t.Fatalf("kernel dim = %d, want 1", len(basis))
	}
	k := basis[0]
	// The basis vector is primitive and proportional to [1 1 -1];
	// accept either sign.
	want := VecFromInts(1, 1, -1)
	if !k.Equal(want) && !k.Equal(want.Neg()) {
		t.Fatalf("kernel = %s, want ±%s", k, want)
	}
	// And it is actually in the kernel.
	prod, err := m0.MulVec(k)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.IsZero() {
		t.Fatalf("M0*k = %s, want 0", prod)
	}
}

func TestKernelBasisTrivial(t *testing.T) {
	id := MustFromInts([][]int{{1, 0}, {0, 1}})
	if basis := id.KernelBasis(); len(basis) != 0 {
		t.Fatalf("identity kernel dim = %d, want 0", len(basis))
	}
}

func TestKernelBasisFractionalPivots(t *testing.T) {
	// Rows force a fractional RREF; the returned basis must still be a
	// primitive integer vector.
	m := MustFromInts([][]int{{2, 0, 3}, {0, 2, 5}})
	basis := m.KernelBasis()
	if len(basis) != 1 {
		t.Fatalf("kernel dim = %d, want 1", len(basis))
	}
	prod, err := m.MulVec(basis[0])
	if err != nil {
		t.Fatal(err)
	}
	if !prod.IsZero() {
		t.Fatalf("m*k = %s, want 0", prod)
	}
	// Primitivity: gcd of components is 1.
	g := new(big.Int)
	for _, c := range basis[0] {
		g.GCD(nil, nil, g, new(big.Int).Abs(c))
	}
	if g.Int64() != 1 {
		t.Fatalf("kernel vector %s not primitive (gcd %s)", basis[0], g)
	}
}

func TestSolveParticularConsistent(t *testing.T) {
	m0 := MustFromInts([][]int{{1, 0, 1}, {0, 1, 1}})
	b := VecFromInts(2, 2)
	x, ok, err := m0.SolveParticular(b)
	if err != nil || !ok {
		t.Fatalf("SolveParticular: ok=%v err=%v", ok, err)
	}
	prod, err := m0.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(b) {
		t.Fatalf("m*x = %s, want %s", prod, b)
	}
}

func TestSolveParticularInconsistent(t *testing.T) {
	m := MustFromInts([][]int{{1, 0}, {1, 0}})
	b := VecFromInts(1, 2)
	_, ok, err := m.SolveParticular(b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestSolveParticularBadLength(t *testing.T) {
	m := MustFromInts([][]int{{1, 0}})
	if _, _, err := m.SolveParticular(VecFromInts(1, 2)); err == nil {
		t.Fatal("rhs length mismatch should error")
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := VecFromInts(1, -2, 3)
	w := VecFromInts(4, 5, -6)
	if got := v.Add(w); !got.Equal(VecFromInts(5, 3, -3)) {
		t.Fatalf("Add = %s", got)
	}
	if got := v.Sub(w); !got.Equal(VecFromInts(-3, -7, 9)) {
		t.Fatalf("Sub = %s", got)
	}
	if got := v.Scale(big.NewInt(2)); !got.Equal(VecFromInts(2, -4, 6)) {
		t.Fatalf("Scale = %s", got)
	}
	if got := v.Neg(); !got.Equal(VecFromInts(-1, 2, -3)) {
		t.Fatalf("Neg = %s", got)
	}
}

func TestVectorSums(t *testing.T) {
	// The paper's k_1 = [1 1 -1 1 1 -1 -1 -1 1]:
	// Σ = 1, Σ⁺ = 5, Σ⁻ = 4.
	k1 := VecFromInts(1, 1, -1, 1, 1, -1, -1, -1, 1)
	if s := k1.Sum(); s.Int64() != 1 {
		t.Fatalf("Sum = %s, want 1", s)
	}
	if s := k1.SumPositive(); s.Int64() != 5 {
		t.Fatalf("SumPositive = %s, want 5", s)
	}
	if s := k1.SumNegative(); s.Int64() != 4 {
		t.Fatalf("SumNegative = %s, want 4", s)
	}
}

func TestVectorPredicates(t *testing.T) {
	if !NewVector(3).IsZero() {
		t.Fatal("zero vector not IsZero")
	}
	if VecFromInts(0, 1).IsZero() {
		t.Fatal("nonzero vector IsZero")
	}
	if !VecFromInts(0, 2).NonNegative() {
		t.Fatal("[0 2] should be NonNegative")
	}
	if VecFromInts(0, -1).NonNegative() {
		t.Fatal("[0 -1] should not be NonNegative")
	}
}

func TestVectorAppend(t *testing.T) {
	v := VecFromInts(1, 2)
	w := VecFromInts(3)
	got := v.Append(w)
	if !got.Equal(VecFromInts(1, 2, 3)) {
		t.Fatalf("Append = %s", got)
	}
	// Append copies: mutating the result must not affect inputs.
	got[0].SetInt64(99)
	if v[0].Int64() != 1 {
		t.Fatal("Append aliased input storage")
	}
}

func TestVectorEqualLengthMismatch(t *testing.T) {
	if VecFromInts(1).Equal(VecFromInts(1, 2)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestVectorString(t *testing.T) {
	if s := VecFromInts(1, -2).String(); s != "[1 -2]" {
		t.Fatalf("String = %q", s)
	}
}

func TestVectorAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add length mismatch did not panic")
		}
	}()
	VecFromInts(1).Add(VecFromInts(1, 2))
}

// Property: every kernel basis vector of a random small integer matrix
// multiplies to zero, and rank + kernel dim = cols (rank-nullity, the fact
// Lemma 2's proof closes with).
func TestRankNullityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(5) + 1
		cols := rng.Intn(5) + 1
		m, err := NewMatrix(rows, cols)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.SetInt64(i, j, int64(rng.Intn(7)-3))
			}
		}
		basis := m.KernelBasis()
		if m.Rank()+len(basis) != cols {
			return false
		}
		for _, k := range basis {
			prod, err := m.MulVec(k)
			if err != nil || !prod.IsZero() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveParticular returns a genuine solution whenever b is in the
// column space (constructed as b = m*x for random integer x).
func TestSolveParticularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(4) + 1
		cols := rng.Intn(4) + 1
		m, err := NewMatrix(rows, cols)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.SetInt64(i, j, int64(rng.Intn(5)-2))
			}
		}
		x := NewVector(cols)
		for j := 0; j < cols; j++ {
			x[j].SetInt64(int64(rng.Intn(9) - 4))
		}
		b, err := m.MulVec(x)
		if err != nil {
			return false
		}
		sol, ok, err := m.SolveParticular(b)
		if err != nil {
			// A fractional particular solution can occur for arbitrary
			// random matrices; the contract only promises integrality for
			// the paper's node-count systems. Treat as vacuous.
			return true
		}
		if !ok {
			return false
		}
		prod, err := m.MulVec(sol)
		return err == nil && prod.Equal(b)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
