package linalg

import (
	"fmt"
	"math/big"
)

// rref computes the reduced row echelon form of m over the rationals.
// It returns the RREF entries and the list of pivot columns.
//
// Since PR 5 this dispatches to the fraction-free int64 fast path in
// bareiss.go, which falls back to big.Int arithmetic only when a pivot
// product would overflow. The classical big.Rat elimination below is
// retained as rrefReference: the two are bit-for-bit equivalent, which the
// linalg-fastpath check oracle verifies on randomized matrices.
//
// When a process-wide obs collector is installed, rref reports the number
// of elimination pivots it consumes and the peak integer bit-length it
// encounters in pivot rows (the quantity that governs exact-arithmetic
// cost). Unobserved processes pay one nil check per rref call.
func rref(m *Matrix) ([][]*big.Rat, []int) {
	return rrefFast(m)
}

// RREF returns the reduced row echelon form of m over the rationals and the
// list of pivot columns, computed by the fraction-free fast path. Exported
// for differential testing (internal/check's linalg-fastpath oracle).
func (m *Matrix) RREF() ([][]*big.Rat, []int) {
	return rrefFast(m)
}

// RREFReference returns the same result as RREF, computed by the retained
// classical big.Rat elimination. It is the slow, obviously-correct reference
// the fast path is checked against; production callers use RREF.
func (m *Matrix) RREFReference() ([][]*big.Rat, []int) {
	return rrefReference(m)
}

// rrefReference is the pre-PR-5 big.Rat Gauss-Jordan elimination, kept as
// the reference implementation for differential checks. Uninstrumented: obs
// pivot/peak-bits metrics are reported by the production path only.
func rrefReference(m *Matrix) ([][]*big.Rat, []int) {
	rows, cols := m.rows, m.cols
	a := make([][]*big.Rat, rows)
	for i := 0; i < rows; i++ {
		a[i] = make([]*big.Rat, cols)
		for j := 0; j < cols; j++ {
			a[i][j] = new(big.Rat).SetInt(m.a[i*cols+j])
		}
	}
	pivots := make([]int, 0, min(rows, cols))
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for i := r; i < rows; i++ {
			if a[i][c].Sign() != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		a[r], a[p] = a[p], a[r]
		// Normalize pivot row.
		inv := new(big.Rat).Inv(a[r][c])
		for j := c; j < cols; j++ {
			a[r][j].Mul(a[r][j], inv)
		}
		// Eliminate the column everywhere else.
		for i := 0; i < rows; i++ {
			if i == r || a[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(a[i][c])
			for j := c; j < cols; j++ {
				t := new(big.Rat).Mul(f, a[r][j])
				a[i][j].Sub(a[i][j], t)
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return a, pivots
}

// Rank returns the rank of m over the rationals.
func (m *Matrix) Rank() int {
	_, pivots := rref(m)
	return len(pivots)
}

// KernelBasis returns a basis of ker(m) = {x : m*x = 0} as primitive integer
// vectors (each scaled to clear denominators and divided by the gcd of its
// components). The basis has dimension Cols - Rank; an empty slice means the
// kernel is trivial.
func (m *Matrix) KernelBasis() []Vector {
	a, pivots := rref(m)
	isPivot := make(map[int]int, len(pivots)) // column -> pivot row
	for r, c := range pivots {
		isPivot[c] = r
	}
	var basis []Vector
	for c := 0; c < m.cols; c++ {
		if _, ok := isPivot[c]; ok {
			continue
		}
		// Free column c: back-substitute with x[c] = 1.
		rat := make([]*big.Rat, m.cols)
		for j := range rat {
			rat[j] = new(big.Rat)
		}
		rat[c].SetInt64(1)
		for pc, pr := range isPivot {
			// Pivot variable pc = -a[pr][c] * x[c].
			rat[pc].Neg(a[pr][c])
		}
		basis = append(basis, ratToPrimitiveInt(rat))
	}
	return basis
}

// ratToPrimitiveInt clears denominators with the lcm and divides by the gcd
// of the numerators, producing a primitive integer vector in the same
// direction.
func ratToPrimitiveInt(rat []*big.Rat) Vector {
	lcm := big.NewInt(1)
	t := new(big.Int)
	for _, q := range rat {
		d := q.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Mul(lcm, t.Quo(d, g))
	}
	out := NewVector(len(rat))
	gcd := new(big.Int)
	for i, q := range rat {
		out[i].Mul(q.Num(), t.Quo(lcm, q.Denom()))
		if out[i].Sign() != 0 {
			gcd.GCD(nil, nil, gcd, t.Abs(out[i]))
		}
	}
	if gcd.Sign() != 0 && gcd.Cmp(big.NewInt(1)) != 0 {
		for i := range out {
			out[i].Quo(out[i], gcd)
		}
	}
	return out
}

// SolveParticular returns one rational solution x of m*x = b, converted to a
// Vector if it is integral, together with true; if the system is
// inconsistent it returns (nil, false, nil). A non-integral rational solution
// is an error: the systems this package serves (node-count systems) always
// admit integral particular solutions when consistent, so a fractional
// result indicates a malformed input matrix.
func (m *Matrix) SolveParticular(b Vector) (Vector, bool, error) {
	if len(b) != m.rows {
		return nil, false, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m.rows)
	}
	// Augment [m | b] and reduce.
	aug, err := NewMatrix(m.rows, m.cols+1)
	if err != nil {
		return nil, false, err
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			aug.Set(i, j, m.a[i*m.cols+j])
		}
		aug.Set(i, m.cols, b[i])
	}
	a, pivots := rref(aug)
	// Inconsistent iff a pivot lands in the augmented column.
	for _, c := range pivots {
		if c == m.cols {
			return nil, false, nil
		}
	}
	rat := make([]*big.Rat, m.cols)
	for j := range rat {
		rat[j] = new(big.Rat)
	}
	for r, c := range pivots {
		rat[c].Set(a[r][m.cols])
	}
	out := NewVector(m.cols)
	for i, q := range rat {
		if !q.IsInt() {
			return nil, false, fmt.Errorf("linalg: non-integral particular solution component %d = %s", i, q)
		}
		out[i].Set(q.Num())
	}
	return out, true, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
