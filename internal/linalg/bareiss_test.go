package linalg

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// randMatrix draws an r x c matrix with entries in [-mag, mag], with an
// elevated chance of zeros (rank deficiency) and duplicated rows (linear
// dependence), the regimes where elimination bookkeeping is subtle.
func randMatrix(rng *rand.Rand, r, c int, mag int64) *Matrix {
	m, err := NewMatrix(r, c)
	if err != nil {
		panic(err)
	}
	for i := 0; i < r; i++ {
		if i > 0 && rng.Intn(4) == 0 {
			src := rng.Intn(i)
			for j := 0; j < c; j++ {
				m.Set(i, j, m.At(src, j))
			}
			continue
		}
		for j := 0; j < c; j++ {
			if rng.Intn(3) == 0 {
				continue // leave zero
			}
			v := rng.Int63n(2*mag+1) - mag
			m.Set(i, j, big.NewInt(v))
		}
	}
	return m
}

func sameRREF(t *testing.T, m *Matrix) {
	t.Helper()
	fa, fp := m.RREF()
	ra, rp := m.RREFReference()
	if len(fp) != len(rp) {
		t.Fatalf("pivot count: fast %v, reference %v", fp, rp)
	}
	for i := range fp {
		if fp[i] != rp[i] {
			t.Fatalf("pivot columns: fast %v, reference %v", fp, rp)
		}
	}
	for i := range fa {
		for j := range fa[i] {
			if fa[i][j].Cmp(ra[i][j]) != 0 {
				t.Fatalf("entry (%d,%d): fast %s, reference %s", i, j, fa[i][j], ra[i][j])
			}
		}
	}
}

func TestRREFFastMatchesReferenceSmallEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		r, c := 1+rng.Intn(7), 1+rng.Intn(7)
		sameRREF(t, randMatrix(rng, r, c, 9))
	}
}

func TestRREFFastMatchesReferenceOverflowBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 120; iter++ {
		r, c := 2+rng.Intn(5), 2+rng.Intn(5)
		// Entries near 2^32: the first pivot products land near 2^64, so
		// runs straddle the int64→big.Int spill nondeterministically.
		sameRREF(t, randMatrix(rng, r, c, int64(1)<<32))
	}
}

func TestRREFFastMatchesReferenceHugeEntries(t *testing.T) {
	// Entries beyond int64 force big mode from the load.
	m := MustFromInts([][]int{{1, 2}, {3, 4}})
	huge := new(big.Int).Lsh(big.NewInt(1), 80)
	m.Set(0, 0, huge)
	sameRREF(t, m)
}

func TestRREFFastMinInt64Entries(t *testing.T) {
	// MinInt64 loads into the int64 path but almost any product spills.
	m, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, big.NewInt(math.MinInt64))
	m.Set(0, 1, big.NewInt(3))
	m.Set(1, 0, big.NewInt(7))
	m.Set(1, 1, big.NewInt(math.MaxInt64))
	sameRREF(t, m)
}

func TestDetFastMatchesBigPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		mag := int64(9)
		if iter%3 == 0 {
			mag = int64(1) << 31 // straddles the spill
		}
		m := randMatrix(rng, n, n, mag)
		got, err := m.Det()
		if err != nil {
			t.Fatal(err)
		}
		want := m.detBig()
		if got.Cmp(want) != 0 {
			t.Fatalf("det: fast %s, big %s", got, want)
		}
	}
}

func TestCheckedOps(t *testing.T) {
	cases := []struct {
		a, b int64
		ok   bool
	}{
		{0, math.MinInt64, true},
		{1, math.MinInt64, true},
		{math.MinInt64, 1, true},
		{math.MinInt64, -1, false},
		{-1, math.MinInt64, false},
		{math.MinInt64, 2, false},
		{1 << 32, 1 << 32, false},
		{1 << 31, 1 << 31, true},
		{math.MaxInt64, 1, true},
		{math.MaxInt64, 2, false},
	}
	for _, tc := range cases {
		if _, ok := mul64(tc.a, tc.b); ok != tc.ok {
			t.Errorf("mul64(%d,%d) ok=%v, want %v", tc.a, tc.b, ok, tc.ok)
		}
	}
	if v, ok := mul64(3, -7); !ok || v != -21 {
		t.Errorf("mul64(3,-7) = %d,%v", v, ok)
	}
	if _, ok := sub64(math.MinInt64, 1); ok {
		t.Error("sub64(MinInt64,1) should overflow")
	}
	if _, ok := sub64(math.MaxInt64, -1); ok {
		t.Error("sub64(MaxInt64,-1) should overflow")
	}
	if v, ok := sub64(5, 9); !ok || v != -4 {
		t.Errorf("sub64(5,9) = %d,%v", v, ok)
	}
	if abs64(math.MinInt64) != 1<<63 {
		t.Error("abs64(MinInt64)")
	}
	if abs64(-5) != 5 || abs64(5) != 5 {
		t.Error("abs64 small values")
	}
}
